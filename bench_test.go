package origin2000

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (DESIGN.md section 4 maps each to its experiment). Benchmarks
// run at a reduced scale — problem sizes and the 4MB cache divided by the
// same factor, preserving working-set-to-cache ratios — so a full
// `go test -bench=. -benchmem` completes in minutes. Use
// cmd/origin-experiments -full for paper-scale runs.

import (
	"io"
	"os"
	"testing"

	"origin2000/internal/experiments"
)

// benchOut streams experiment tables to stdout when ORIGIN_BENCH_VERBOSE
// is set; otherwise the output is discarded and only timings are reported.
func benchOut() io.Writer {
	if os.Getenv("ORIGIN_BENCH_VERBOSE") != "" {
		return os.Stdout
	}
	return io.Discard
}

// benchScale is the default reduction for the benchmark harness.
func benchScale() experiments.Scale {
	return experiments.Scale{Div: 16, CacheDiv: 16}
}

// sweepScale further trims the expensive size sweeps: the same size
// scaling but only the end-point machine sizes.
func sweepScale() experiments.Scale {
	return experiments.Scale{Div: 16, CacheDiv: 16, Procs: []int{32, 128}}
}

func runExperiment(b *testing.B, s experiments.Scale, name string) {
	b.Helper()
	w := benchOut()
	for i := 0; i < b.N; i++ {
		se := experiments.NewSession(s)
		if err := experiments.Run(name, se, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Latency regenerates Table 1 (machine latency comparison).
func BenchmarkTable1Latency(b *testing.B) { runExperiment(b, benchScale(), "table1") }

// BenchmarkTable2Sequential regenerates Table 2 (basic sizes, sequential times).
func BenchmarkTable2Sequential(b *testing.B) { runExperiment(b, benchScale(), "table2") }

// BenchmarkFigure2Speedups regenerates Figure 2 (speedups for basic sizes).
func BenchmarkFigure2Speedups(b *testing.B) { runExperiment(b, benchScale(), "fig2") }

// BenchmarkFigure3Breakdown regenerates Figure 3 (128-processor breakdowns).
func BenchmarkFigure3Breakdown(b *testing.B) { runExperiment(b, benchScale(), "fig3") }

// BenchmarkFigure4ProblemSize regenerates Figure 4 (efficiency vs size).
func BenchmarkFigure4ProblemSize(b *testing.B) { runExperiment(b, sweepScale(), "fig4") }

// BenchmarkFigure5to8Breakdowns regenerates the per-processor breakdown
// continua for Water-Spatial, FFT, Shear-Warp and Raytrace.
func BenchmarkFigure5to8Breakdowns(b *testing.B) { runExperiment(b, benchScale(), "fig5-8") }

// BenchmarkFigure9Restructured regenerates Figure 9 (restructured vs original).
func BenchmarkFigure9Restructured(b *testing.B) { runExperiment(b, sweepScale(), "fig9") }

// BenchmarkFigure10Restructured regenerates Figure 10 (breakdown comparison).
func BenchmarkFigure10Restructured(b *testing.B) { runExperiment(b, sweepScale(), "fig10") }

// BenchmarkTable3Placement regenerates Table 3 (placement policies) and
// with it the Section 6.2 page-migration result.
func BenchmarkTable3Placement(b *testing.B) { runExperiment(b, benchScale(), "table3") }

// BenchmarkSec61Prefetch regenerates the Section 6.1 prefetching study.
func BenchmarkSec61Prefetch(b *testing.B) { runExperiment(b, benchScale(), "sec61") }

// BenchmarkSec63Synchronization regenerates the Section 6.3 study of
// barrier/lock algorithms and the at-memory fetch&op.
func BenchmarkSec63Synchronization(b *testing.B) { runExperiment(b, benchScale(), "sec63") }

// BenchmarkSec71Mapping regenerates the Section 7.1 topology-mapping study.
func BenchmarkSec71Mapping(b *testing.B) { runExperiment(b, sweepScale(), "sec71") }

// BenchmarkSec72ProcsPerNode regenerates the Section 7.2 study of one
// versus two processors per node.
func BenchmarkSec72ProcsPerNode(b *testing.B) { runExperiment(b, benchScale(), "sec72") }

// BenchmarkAblation quantifies the machine model's design choices:
// contention on/off, scheduler quantum, cache capacity.
func BenchmarkAblation(b *testing.B) { runExperiment(b, benchScale(), "ablation") }
