package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// regressionThreshold is the ns/op slowdown ratio that fails -compare.
const regressionThreshold = 0.10

// Diff is one per-measurement comparison against the baseline snapshot.
type Diff struct {
	Name      string
	OldNs     float64
	NewNs     float64
	Ratio     float64 // NewNs/OldNs - 1; positive = slower
	OldAllocs int64
	NewAllocs int64
	// Regressed marks a ns/op slowdown beyond the threshold.
	Regressed bool
	// HostChanged marks a wall-clock row whose recorded core counts
	// differ between the snapshots: the numbers are not like-for-like,
	// so the movement is reported but never counted as a regression.
	HostChanged bool
	// ScenarioChanged marks a name-matched pair whose scenario hashes
	// differ: the rows simulated different machines, so the movement is
	// a machine property, never a code regression.
	ScenarioChanged bool
}

func (d Diff) String() string {
	status := "ok"
	switch {
	case d.Regressed:
		status = "REGRESSED"
	case d.ScenarioChanged:
		status = "scenario changed; informational"
	case d.HostChanged:
		status = "host changed; informational"
	}
	s := fmt.Sprintf("%-32s %12.1f -> %12.1f ns/op  %+6.1f%%  [%s]",
		d.Name, d.OldNs, d.NewNs, 100*d.Ratio, status)
	if d.NewAllocs != d.OldAllocs {
		s += fmt.Sprintf("  allocs %d -> %d", d.OldAllocs, d.NewAllocs)
	}
	return s
}

// rowCPUs resolves the core count a row was measured on: the per-row
// field when recorded (engine rows), else the snapshot-level one.
func rowCPUs(s Snapshot, r Result) int {
	if r.CPUs > 0 {
		return r.CPUs
	}
	return s.CPUs
}

// compareSnapshots matches results by exact name — "engine:serial" rows
// compare only against "engine:serial", "workers=4" only against
// "workers=4" — and computes the ns/op movement of each measurement
// present in both snapshots. Wall-clock-dominated entries (the experiment
// and app throughput rows) are compared too — they are noisier, so only
// the threshold decides, not the noise model. A matched pair measured on
// hosts with different core counts is reported but marked informational:
// a wall-clock delta between a 1-core and an 8-core host is a host
// property, not a code regression.
func compareSnapshots(old, cur Snapshot, threshold float64) []Diff {
	base := map[string]Result{}
	for _, r := range old.Results {
		base[r.Name] = r
	}
	var diffs []Diff
	for _, r := range cur.Results {
		b, ok := base[r.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		d := Diff{
			Name:      r.Name,
			OldNs:     b.NsPerOp,
			NewNs:     r.NsPerOp,
			Ratio:     r.NsPerOp/b.NsPerOp - 1,
			OldAllocs: b.AllocsPerOp,
			NewAllocs: r.AllocsPerOp,
		}
		d.HostChanged = rowCPUs(old, b) != rowCPUs(cur, r)
		// Rows from different machines are never like-for-like, whatever
		// their names say (an empty hash is the default Origin machine).
		d.ScenarioChanged = b.ScenarioHash != r.ScenarioHash
		// Multiplicative form avoids float artifacts right at the
		// threshold (110/100-1 is not exactly 0.10).
		d.Regressed = !d.HostChanged && !d.ScenarioChanged && r.NsPerOp > b.NsPerOp*(1+threshold)
		diffs = append(diffs, d)
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i].Ratio > diffs[j].Ratio })
	return diffs
}

// missingFromCurrent lists baseline measurements with no counterpart in
// the current snapshot. A vanished row means the suite silently lost
// coverage — the failure mode -compare exists to catch — so the caller
// treats any entry here as an error, not a skip.
func missingFromCurrent(old, cur Snapshot) []string {
	have := map[string]bool{}
	for _, r := range cur.Results {
		have[r.Name] = true
	}
	var missing []string
	for _, r := range old.Results {
		if !have[r.Name] {
			missing = append(missing, r.Name)
		}
	}
	return missing
}

// newInCurrent lists current measurements with no baseline counterpart
// (freshly added rows). They cannot be compared yet, but they are
// reported so a typo'd row name shows up as one new + one missing row
// instead of disappearing from the report entirely.
func newInCurrent(old, cur Snapshot) []string {
	have := map[string]bool{}
	for _, r := range old.Results {
		have[r.Name] = true
	}
	var fresh []string
	for _, r := range cur.Results {
		if !have[r.Name] {
			fresh = append(fresh, r.Name)
		}
	}
	return fresh
}

// regressions filters diffs down to the failures.
func regressions(diffs []Diff) []Diff {
	var bad []Diff
	for _, d := range diffs {
		if d.Regressed {
			bad = append(bad, d)
		}
	}
	return bad
}

// latestSnapshotPath returns the highest-numbered BENCH_<n>.json in dir, or
// "" when none exists.
func latestSnapshotPath(dir string) string {
	best, bestN := "", 0
	for n := 1; ; n++ {
		name := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(dir + "/" + name); err != nil {
			break
		}
		best, bestN = name, n
	}
	_ = bestN
	if best == "" {
		return ""
	}
	return dir + "/" + best
}

func loadSnapshot(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// compareAgainstBaseline loads the baseline at path and renders the full
// comparison. It returns an error listing every regression when any
// measurement slowed by more than the threshold.
func compareAgainstBaseline(path string, cur Snapshot, threshold float64) (report string, err error) {
	base, err := loadSnapshot(path)
	if err != nil {
		return "", err
	}
	diffs := compareSnapshots(base, cur, threshold)
	var b strings.Builder
	fmt.Fprintf(&b, "comparison vs %s (threshold %+.0f%%):\n", path, 100*threshold)
	for _, d := range diffs {
		fmt.Fprintln(&b, " ", d)
	}
	for _, name := range newInCurrent(base, cur) {
		fmt.Fprintf(&b, "  %-32s new measurement, no baseline\n", name)
	}
	missing := missingFromCurrent(base, cur)
	for _, name := range missing {
		fmt.Fprintf(&b, "  %-32s MISSING: present in baseline, absent now\n", name)
	}
	if len(missing) != 0 {
		return b.String(), fmt.Errorf("%d baseline measurement(s) missing from the new snapshot: %s",
			len(missing), strings.Join(missing, ", "))
	}
	if bad := regressions(diffs); len(bad) != 0 {
		names := make([]string, len(bad))
		for i, d := range bad {
			names[i] = fmt.Sprintf("%s (%+.1f%%)", d.Name, 100*d.Ratio)
		}
		return b.String(), fmt.Errorf("%d measurement(s) regressed beyond %.0f%%: %s",
			len(bad), 100*threshold, strings.Join(names, ", "))
	}
	return b.String(), nil
}
