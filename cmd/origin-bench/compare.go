package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// regressionThreshold is the ns/op slowdown ratio that fails -compare.
const regressionThreshold = 0.10

// Diff is one per-measurement comparison against the baseline snapshot.
type Diff struct {
	Name      string
	OldNs     float64
	NewNs     float64
	Ratio     float64 // NewNs/OldNs - 1; positive = slower
	OldAllocs int64
	NewAllocs int64
	// Regressed marks a ns/op slowdown beyond the threshold.
	Regressed bool
}

func (d Diff) String() string {
	status := "ok"
	if d.Regressed {
		status = "REGRESSED"
	}
	s := fmt.Sprintf("%-32s %12.1f -> %12.1f ns/op  %+6.1f%%  [%s]",
		d.Name, d.OldNs, d.NewNs, 100*d.Ratio, status)
	if d.NewAllocs != d.OldAllocs {
		s += fmt.Sprintf("  allocs %d -> %d", d.OldAllocs, d.NewAllocs)
	}
	return s
}

// compareSnapshots matches results by name and computes the ns/op movement
// of each measurement present in both snapshots. Wall-clock-dominated
// entries (the experiment and app throughput rows) are compared too — they
// are noisier, so only the threshold decides, not the noise model.
func compareSnapshots(old, cur Snapshot, threshold float64) []Diff {
	base := map[string]Result{}
	for _, r := range old.Results {
		base[r.Name] = r
	}
	var diffs []Diff
	for _, r := range cur.Results {
		b, ok := base[r.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		d := Diff{
			Name:      r.Name,
			OldNs:     b.NsPerOp,
			NewNs:     r.NsPerOp,
			Ratio:     r.NsPerOp/b.NsPerOp - 1,
			OldAllocs: b.AllocsPerOp,
			NewAllocs: r.AllocsPerOp,
		}
		// Multiplicative form avoids float artifacts right at the
		// threshold (110/100-1 is not exactly 0.10).
		d.Regressed = r.NsPerOp > b.NsPerOp*(1+threshold)
		diffs = append(diffs, d)
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i].Ratio > diffs[j].Ratio })
	return diffs
}

// regressions filters diffs down to the failures.
func regressions(diffs []Diff) []Diff {
	var bad []Diff
	for _, d := range diffs {
		if d.Regressed {
			bad = append(bad, d)
		}
	}
	return bad
}

// latestSnapshotPath returns the highest-numbered BENCH_<n>.json in dir, or
// "" when none exists.
func latestSnapshotPath(dir string) string {
	best, bestN := "", 0
	for n := 1; ; n++ {
		name := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(dir + "/" + name); err != nil {
			break
		}
		best, bestN = name, n
	}
	_ = bestN
	if best == "" {
		return ""
	}
	return dir + "/" + best
}

func loadSnapshot(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// compareAgainstBaseline loads the baseline at path and renders the full
// comparison. It returns an error listing every regression when any
// measurement slowed by more than the threshold.
func compareAgainstBaseline(path string, cur Snapshot, threshold float64) (report string, err error) {
	base, err := loadSnapshot(path)
	if err != nil {
		return "", err
	}
	diffs := compareSnapshots(base, cur, threshold)
	var b strings.Builder
	fmt.Fprintf(&b, "comparison vs %s (threshold %+.0f%%):\n", path, 100*threshold)
	for _, d := range diffs {
		fmt.Fprintln(&b, " ", d)
	}
	if bad := regressions(diffs); len(bad) != 0 {
		names := make([]string, len(bad))
		for i, d := range bad {
			names[i] = fmt.Sprintf("%s (%+.1f%%)", d.Name, 100*d.Ratio)
		}
		return b.String(), fmt.Errorf("%d measurement(s) regressed beyond %.0f%%: %s",
			len(bad), 100*threshold, strings.Join(names, ", "))
	}
	return b.String(), nil
}
