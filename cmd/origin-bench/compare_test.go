package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func snap(results ...Result) Snapshot {
	return Snapshot{Schema: "origin-bench/v1", Results: results}
}

func TestCompareFlagsOnlyRegressionsBeyondThreshold(t *testing.T) {
	old := snap(
		Result{Name: "access:hit", NsPerOp: 100, AllocsPerOp: 0},
		Result{Name: "access:local-miss", NsPerOp: 1000},
		Result{Name: "scheduler:round-trip", NsPerOp: 500},
		Result{Name: "gone", NsPerOp: 50},
	)
	cur := snap(
		Result{Name: "access:hit", NsPerOp: 109, AllocsPerOp: 0}, // +9%: ok
		Result{Name: "access:local-miss", NsPerOp: 1201},         // +20.1%: regressed
		Result{Name: "scheduler:round-trip", NsPerOp: 400},       // improvement
		Result{Name: "new-measurement", NsPerOp: 1},              // no baseline
	)
	diffs := compareSnapshots(old, cur, regressionThreshold)
	if len(diffs) != 3 {
		t.Fatalf("got %d diffs, want 3 (matched names only): %v", len(diffs), diffs)
	}
	// Sorted worst-first.
	if diffs[0].Name != "access:local-miss" || !diffs[0].Regressed {
		t.Fatalf("worst diff = %+v, want access:local-miss regressed", diffs[0])
	}
	for _, d := range diffs[1:] {
		if d.Regressed {
			t.Errorf("%s flagged at %+.1f%%, below threshold", d.Name, 100*d.Ratio)
		}
	}
	bad := regressions(diffs)
	if len(bad) != 1 || bad[0].Name != "access:local-miss" {
		t.Fatalf("regressions = %v", bad)
	}
}

func TestCompareExactThresholdIsNotRegression(t *testing.T) {
	old := snap(Result{Name: "x", NsPerOp: 100})
	cur := snap(Result{Name: "x", NsPerOp: 110}) // exactly +10%
	if bad := regressions(compareSnapshots(old, cur, 0.10)); len(bad) != 0 {
		t.Fatalf("exact threshold flagged as regression: %v", bad)
	}
	cur = snap(Result{Name: "x", NsPerOp: 110.2})
	if bad := regressions(compareSnapshots(old, cur, 0.10)); len(bad) != 1 {
		t.Fatal("just past threshold not flagged")
	}
}

func TestCompareReportsAllocChanges(t *testing.T) {
	old := snap(Result{Name: "access:hit", NsPerOp: 100, AllocsPerOp: 0})
	cur := snap(Result{Name: "access:hit", NsPerOp: 100, AllocsPerOp: 2})
	d := compareSnapshots(old, cur, 0.10)[0]
	if !strings.Contains(d.String(), "allocs 0 -> 2") {
		t.Fatalf("alloc change not rendered: %s", d)
	}
}

func TestLatestSnapshotPathPicksHighestContiguous(t *testing.T) {
	dir := t.TempDir()
	if got := latestSnapshotPath(dir); got != "" {
		t.Fatalf("empty dir returned %q", got)
	}
	for _, n := range []string{"BENCH_1.json", "BENCH_2.json", "BENCH_3.json"} {
		if err := os.WriteFile(filepath.Join(dir, n), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if got := latestSnapshotPath(dir); got != filepath.Join(dir, "BENCH_3.json") {
		t.Fatalf("latest = %q, want BENCH_3.json", got)
	}
}

func TestCompareAgainstBaselineEndToEnd(t *testing.T) {
	dir := t.TempDir()
	base := snap(
		Result{Name: "access:hit", NsPerOp: 100},
		Result{Name: "directory:write-fanout", NsPerOp: 200},
	)
	data, _ := json.Marshal(base)
	path := filepath.Join(dir, "BENCH_1.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	healthy := snap(
		Result{Name: "access:hit", NsPerOp: 104},
		Result{Name: "directory:write-fanout", NsPerOp: 190},
	)
	report, err := compareAgainstBaseline(path, healthy, regressionThreshold)
	if err != nil {
		t.Fatalf("healthy snapshot failed: %v\n%s", err, report)
	}
	if !strings.Contains(report, "access:hit") {
		t.Fatalf("report lacks per-measurement rows:\n%s", report)
	}

	slow := snap(
		Result{Name: "access:hit", NsPerOp: 150},
		Result{Name: "directory:write-fanout", NsPerOp: 190},
	)
	report, err = compareAgainstBaseline(path, slow, regressionThreshold)
	if err == nil {
		t.Fatal("50% regression not failed")
	}
	if !strings.Contains(err.Error(), "access:hit") || !strings.Contains(err.Error(), "+50.0%") {
		t.Fatalf("diff not clear: %v", err)
	}
	if !strings.Contains(report, "REGRESSED") {
		t.Fatalf("report does not mark the regression:\n%s", report)
	}

	if _, err := compareAgainstBaseline(filepath.Join(dir, "BENCH_9.json"), healthy, 0.1); err == nil {
		t.Fatal("missing baseline not an error")
	}
}

func TestCompareFailsOnMissingBaselineRow(t *testing.T) {
	dir := t.TempDir()
	base := snap(
		Result{Name: "access:hit", NsPerOp: 100},
		Result{Name: "engine:serial fig2-128", NsPerOp: 5e9},
	)
	data, _ := json.Marshal(base)
	path := filepath.Join(dir, "BENCH_1.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// The engine row vanished: must fail loudly, not silently skip.
	cur := snap(Result{Name: "access:hit", NsPerOp: 100})
	report, err := compareAgainstBaseline(path, cur, regressionThreshold)
	if err == nil {
		t.Fatal("vanished baseline row not an error")
	}
	if !strings.Contains(err.Error(), "engine:serial fig2-128") {
		t.Fatalf("error does not name the missing row: %v", err)
	}
	if !strings.Contains(report, "MISSING") {
		t.Fatalf("report does not mark the missing row:\n%s", report)
	}
	// New rows are reported but never fatal (a growing suite is healthy).
	grown := snap(
		Result{Name: "access:hit", NsPerOp: 100},
		Result{Name: "engine:serial fig2-128", NsPerOp: 5e9},
		Result{Name: "engine:serial adaptive fig2-128", NsPerOp: 4e9},
	)
	report, err = compareAgainstBaseline(path, grown, regressionThreshold)
	if err != nil {
		t.Fatalf("new row failed the comparison: %v", err)
	}
	if !strings.Contains(report, "new measurement, no baseline") {
		t.Fatalf("report does not announce the new row:\n%s", report)
	}
}

func TestCompareHostChangeIsInformational(t *testing.T) {
	// Same row, 1-core baseline vs 8-core current: a 3x wall-clock shift
	// is a host property, not a regression.
	old := snap(Result{Name: "engine:parallel workers=4 fig2-128", NsPerOp: 9e9, CPUs: 1})
	old.CPUs = 1
	cur := snap(Result{Name: "engine:parallel workers=4 fig2-128", NsPerOp: 2.7e10, CPUs: 8})
	cur.CPUs = 8
	diffs := compareSnapshots(old, cur, regressionThreshold)
	if len(diffs) != 1 {
		t.Fatalf("got %d diffs, want 1", len(diffs))
	}
	d := diffs[0]
	if !d.HostChanged {
		t.Fatal("cpu mismatch not marked HostChanged")
	}
	if d.Regressed {
		t.Fatal("cpu-mismatched row counted as regression")
	}
	if !strings.Contains(d.String(), "host changed") {
		t.Fatalf("rendering does not flag the host change: %s", d)
	}
	// Per-row CPUs beats the snapshot-level field when present.
	if got := rowCPUs(old, old.Results[0]); got != 1 {
		t.Fatalf("rowCPUs = %d, want per-row 1", got)
	}
	if got := rowCPUs(old, Result{Name: "x"}); got != 1 {
		t.Fatalf("rowCPUs fallback = %d, want snapshot-level 1", got)
	}
}

func TestCompareScenarioChangeIsInformational(t *testing.T) {
	// Same row name, but the machines differ (a scenario rename kept the
	// name while the spec changed): a 3x shift is a machine property, not
	// a code regression.
	old := snap(Result{Name: "scenario:mesh fig2-128", NsPerOp: 1e9, Scenario: "mesh", ScenarioHash: "aaaaaaaaaaaa"})
	cur := snap(Result{Name: "scenario:mesh fig2-128", NsPerOp: 3e9, Scenario: "mesh", ScenarioHash: "bbbbbbbbbbbb"})
	diffs := compareSnapshots(old, cur, regressionThreshold)
	if len(diffs) != 1 {
		t.Fatalf("got %d diffs, want 1", len(diffs))
	}
	d := diffs[0]
	if !d.ScenarioChanged {
		t.Fatal("scenario-hash mismatch not marked ScenarioChanged")
	}
	if d.Regressed {
		t.Fatal("cross-scenario row counted as regression")
	}
	if !strings.Contains(d.String(), "scenario changed") {
		t.Fatalf("rendering does not flag the scenario change: %s", d)
	}
	// An empty hash is the default machine: default-vs-default still
	// compares like-for-like and regresses normally.
	old = snap(Result{Name: "access:hit", NsPerOp: 100})
	cur = snap(Result{Name: "access:hit", NsPerOp: 150})
	if bad := regressions(compareSnapshots(old, cur, regressionThreshold)); len(bad) != 1 {
		t.Fatalf("default-machine regression not flagged: %v", bad)
	}
	// Default baseline vs a scenario-stamped current row: different
	// machines, informational.
	old = snap(Result{Name: "scenario:mesh fig2-128", NsPerOp: 1e9})
	cur = snap(Result{Name: "scenario:mesh fig2-128", NsPerOp: 3e9, Scenario: "mesh", ScenarioHash: "cccccccccccc"})
	if bad := regressions(compareSnapshots(old, cur, regressionThreshold)); len(bad) != 0 {
		t.Fatalf("cross-machine pair flagged as regression: %v", bad)
	}
}

func TestSpeedupClaim(t *testing.T) {
	if got := speedupClaim(1); got != "unproven" {
		t.Fatalf("speedupClaim(1) = %q", got)
	}
	if got := speedupClaim(8); got != "measured" {
		t.Fatalf("speedupClaim(8) = %q", got)
	}
}

func TestNextOutRecordsSlotNumber(t *testing.T) {
	dir := t.TempDir()
	wd, _ := os.Getwd()
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	name, n := nextOut()
	if name != "BENCH_1.json" || n != 1 {
		t.Fatalf("empty dir: nextOut() = %q, %d", name, n)
	}
	for _, f := range []string{"BENCH_1.json", "BENCH_2.json"} {
		if err := os.WriteFile(f, []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	name, n = nextOut()
	if name != "BENCH_3.json" || n != 3 {
		t.Fatalf("after 1,2: nextOut() = %q, %d", name, n)
	}
}

func TestSeqOfParsesSlotFromPath(t *testing.T) {
	for _, tc := range []struct {
		path string
		want int
	}{
		{"BENCH_7.json", 7},
		{filepath.Join("some", "dir", "BENCH_12.json"), 12},
		{"custom.json", 0},
	} {
		if got := seqOf(tc.path); got != tc.want {
			t.Errorf("seqOf(%q) = %d, want %d", tc.path, got, tc.want)
		}
	}
}
