// Command origin-bench runs the tracked performance suite for the
// simulator's hot path and appends a BENCH_<n>.json snapshot, so successive
// PRs can see the perf trajectory. It reports wall-clock per experiment,
// simulated-accesses/sec, and allocations per access (via
// testing.Benchmark).
//
// Usage, from the repository root:
//
//	go run ./cmd/origin-bench           # writes BENCH_<n>.json (next free n)
//	go run ./cmd/origin-bench -out x.json -note "after directory rework"
//	go run ./cmd/origin-bench -compare  # also fail on >10% ns/op regression
//	go run ./cmd/origin-bench -check    # run fig2+ablation with the
//	                                    # coherence checker on; no snapshot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"origin2000/internal/core"
	"origin2000/internal/directory"
	"origin2000/internal/experiments"
	"origin2000/internal/hostprof"
	"origin2000/internal/metrics"
	"origin2000/internal/scenario"
	"origin2000/internal/sim"
	"origin2000/internal/snapshot"
	"origin2000/internal/trace"
	"origin2000/internal/workload"
)

// Result is one benchmark measurement in the snapshot.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// SimAccessesPerSec is simulated memory references processed per
	// wall-clock second (only for measurements with a defined access
	// count).
	SimAccessesPerSec float64 `json:"sim_accesses_per_sec,omitempty"`
	// WallSeconds is the wall-clock cost of a single operation, for the
	// experiment-scale entries.
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	// SpeedupVsSerial is wall-clock speedup over the serial engine row
	// (engine:parallel rows only; bounded by the host's core count).
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
	// ShardChainsPerWindow is the schedule's average number of phase-1
	// chains per window — the parallelism the workload exposes to the
	// engine, independent of how many host cores are available to use it.
	ShardChainsPerWindow float64 `json:"shard_chains_per_window,omitempty"`
	// CommitRunsPerWindow is the average number of serial commit-chain
	// resumes per window: how much of each window fell back to serialized
	// execution.
	CommitRunsPerWindow float64 `json:"commit_runs_per_window,omitempty"`
	// CommitShare is CommitRuns/(CommitRuns+ShardChains): the serialized
	// fraction of all chain dispatches. 0 = perfectly shard-parallel,
	// 1 = fully serialized.
	CommitShare float64 `json:"commit_share,omitempty"`
	// AvgWindowNS is the average conservative-window width in virtual
	// nanoseconds (engine rows; varies only under -window adaptive).
	AvgWindowNS float64 `json:"avg_window_ns,omitempty"`
	// CPUs is the host core count the row was measured on. Wall-clock
	// rows are only comparable across snapshots when it matches.
	CPUs int `json:"cpus,omitempty"`
	// SpeedupClaim qualifies SpeedupVsSerial: "measured" when the host
	// had cores to demonstrate it, "unproven" on a single-core host
	// (where a parallel engine can only tie or lose and the claim says
	// nothing about multi-core behavior).
	SpeedupClaim string `json:"speedup_claim,omitempty"`
	// WorkerUtil, CommitHostShare and StealHitRate are the host-time
	// profiler's aggregate engine-health columns (hostprof:on rows only):
	// mean phase-1 lane utilization, the serialized commit phase's share
	// of profiled host wall, and steal hits over attempts.
	WorkerUtil      float64 `json:"worker_util,omitempty"`
	CommitHostShare float64 `json:"commit_host_share,omitempty"`
	StealHitRate    float64 `json:"steal_hit_rate,omitempty"`
	// Scenario and ScenarioHash identify the machine a row simulated.
	// Empty = the default Origin machine. -compare refuses to treat rows
	// from different machines as the same measurement.
	Scenario     string `json:"scenario,omitempty"`
	ScenarioHash string `json:"scenario_hash,omitempty"`
}

// speedupClaim labels a wall-clock speedup row for the host it ran on.
func speedupClaim(cpus int) string {
	if cpus < 2 {
		return "unproven"
	}
	return "measured"
}

// Snapshot is the schema of a BENCH_<n>.json file.
type Snapshot struct {
	Schema string `json:"schema"`
	// Seq is the <n> of the BENCH_<n>.json slot this snapshot was written
	// to, so the file's position in the perf trajectory survives renames
	// and copies. Zero when the output name carries no number.
	Seq       int    `json:"seq,omitempty"`
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	CPUs      int    `json:"cpus"`
	// GoMaxProcs and CPUModel record the host the wall-clock rows ran on:
	// snapshots from different hosts are not comparable, and the header
	// should say so without archaeology.
	GoMaxProcs int      `json:"gomaxprocs"`
	CPUModel   string   `json:"cpu_model,omitempty"`
	Note       string   `json:"note,omitempty"`
	Results    []Result `json:"results"`
}

// cpuModel returns the host CPU's model name from /proc/cpuinfo, or "" on
// hosts where that file is missing or unreadable (non-Linux).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

func fromBenchmark(name string, r testing.BenchmarkResult, accessesPerOp int64) Result {
	res := Result{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if accessesPerOp > 0 && res.NsPerOp > 0 {
		res.SimAccessesPerSec = float64(accessesPerOp) * 1e9 / res.NsPerOp
	}
	return res
}

// benchAccess measures the demand-access path: hit, local miss, or remote
// miss, one simulated reference per op.
func benchAccess(mode string) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		cfg := core.Origin2000(1)
		if mode != "hit" {
			cfg.Cache.SizeBytes = 32 << 10 // small cache: strided reads miss
		}
		if mode == "remote" {
			cfg = core.Origin2000(64)
			cfg.Cache.SizeBytes = 32 << 10
		}
		m := core.New(cfg)
		arr := m.Alloc("a", 1<<20, 8)
		if mode == "remote" {
			arr.PlaceAtNode(17)
		}
		if err := m.RunOne(func(p *core.Proc) {
			p.Read(arr.Addr(0))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode == "hit" {
					p.Read(arr.Addr(0))
				} else {
					p.Read(arr.Addr((i * 16) % (1 << 20)))
				}
			}
		}); err != nil {
			b.Fatal(err)
		}
	})
}

// benchSchedulerRoundTrip measures one direct goroutine handoff between two
// simulated processors.
func benchSchedulerRoundTrip() testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		e := sim.NewEngine(2, sim.Nanosecond)
		if err := e.Run(func(p *sim.Proc) {
			for i := 0; i < b.N; i++ {
				p.Advance(10*sim.Nanosecond, sim.StatBusy)
			}
		}); err != nil {
			b.Fatal(err)
		}
	})
}

// benchDirectoryWrite measures the shared-write invalidation fan-out (16
// sharers), the protocol's allocation-prone transition.
func benchDirectoryWrite() testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		d := directory.New()
		for s := 0; s < 16; s++ {
			d.Read(1, s)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Write(1, 0)
			for s := 1; s < 16; s++ {
				d.Read(1, s)
			}
		}
	})
}

// benchExperiment measures one full experiment regeneration at the reduced
// benchmark scale (the same scale bench_test.go uses).
func benchExperiment(name string, s experiments.Scale) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			se := experiments.NewSession(s)
			if err := experiments.Run(name, se, discard{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// appThroughput runs one application end to end and reports simulated
// accesses per wall-clock second — the end-to-end figure of merit for the
// whole hot path (engine + cache + directory + placement together).
func appThroughput(appName string, procs int, s experiments.Scale) (Result, error) {
	app := experiments.AppByName(appName)
	if app == nil {
		return Result{}, fmt.Errorf("unknown app %q", appName)
	}
	params := workload.Params{Size: s.BasicSize(app), Seed: 42}
	start := time.Now()
	r, err := s.Run(app, procs, params)
	if err != nil {
		return Result{}, err
	}
	wall := time.Since(start).Seconds()
	accesses := r.Result.Counters.Reads + r.Result.Counters.Writes
	return Result{
		Name:              fmt.Sprintf("app:%s procs=%d", appName, procs),
		NsPerOp:           wall * 1e9,
		WallSeconds:       wall,
		SimAccessesPerSec: float64(accesses) / wall,
	}, nil
}

// traceOverhead measures the tracing subsystem's end-to-end wall-clock cost
// on one application run (FFT, 32 processors): tracing off, ring-only
// recording, and lossless recording plus a full Perfetto export. The
// trace:off entry doubles as the regression guard — it must stay within
// noise of the untraced app throughput above.
func traceOverhead(mode string, s experiments.Scale) (Result, error) {
	app := experiments.AppByName("FFT")
	if app == nil {
		return Result{}, fmt.Errorf("FFT app missing")
	}
	params := workload.Params{Size: s.BasicSize(app), Seed: 42}
	var m *core.Machine
	switch mode {
	case "ring":
		s.Trace = trace.Options{Enabled: true}
	case "full":
		s.Trace = trace.Options{Enabled: true, Lossless: true}
	}
	if s.Trace.Enabled {
		s.TraceSink = func(_ string, mm *core.Machine) { m = mm }
	}
	start := time.Now()
	r, err := s.Run(app, 32, params)
	if err != nil {
		return Result{}, err
	}
	if mode == "full" {
		if err := m.Tracer().WritePerfetto(io.Discard); err != nil {
			return Result{}, err
		}
	}
	wall := time.Since(start).Seconds()
	accesses := r.Result.Counters.Reads + r.Result.Counters.Writes
	return Result{
		Name:              "trace:" + mode,
		NsPerOp:           wall * 1e9,
		WallSeconds:       wall,
		SimAccessesPerSec: float64(accesses) / wall,
	}, nil
}

// metricsOverhead measures the virtual-time metrics sampler's end-to-end
// wall-clock cost on one application run (FFT, 32 processors): sampling off,
// and sampling at the default 50µs interval and at an aggressive 5µs one.
// The metrics:off entry is the regression guard for the disabled-path cost
// (a nil check per virtual-clock advance); the sampled entries bound what a
// dashboard-grade interval costs.
func metricsOverhead(mode string, s experiments.Scale) (Result, error) {
	app := experiments.AppByName("FFT")
	if app == nil {
		return Result{}, fmt.Errorf("FFT app missing")
	}
	params := workload.Params{Size: s.BasicSize(app), Seed: 42}
	switch mode {
	case "50us":
		s.Metrics = metrics.Options{Enabled: true, Interval: 50 * sim.Microsecond}
	case "5us":
		s.Metrics = metrics.Options{Enabled: true, Interval: 5 * sim.Microsecond}
	}
	start := time.Now()
	r, err := s.Run(app, 32, params)
	if err != nil {
		return Result{}, err
	}
	wall := time.Since(start).Seconds()
	accesses := r.Result.Counters.Reads + r.Result.Counters.Writes
	return Result{
		Name:              "metrics:" + mode,
		NsPerOp:           wall * 1e9,
		WallSeconds:       wall,
		SimAccessesPerSec: float64(accesses) / wall,
	}, nil
}

// sharingOverhead measures the sharing classifier's end-to-end wall-clock
// cost on one application run (FFT, 32 processors): classifier off and on.
// The sharing:off entry is the regression guard for the disabled path — a
// nil check per access — and sharing:on bounds the classifier's capture
// cost: the hooks log packed event records and the classification fold
// runs at report time, off the measured clock (budget: <=1.15x off).
func sharingOverhead(mode string, s experiments.Scale) (Result, error) {
	app := experiments.AppByName("FFT")
	if app == nil {
		return Result{}, fmt.Errorf("FFT app missing")
	}
	params := workload.Params{Size: s.BasicSize(app), Seed: 42}
	s.Sharing = mode == "on"
	start := time.Now()
	r, err := s.Run(app, 32, params)
	if err != nil {
		return Result{}, err
	}
	wall := time.Since(start).Seconds()
	accesses := r.Result.Counters.Reads + r.Result.Counters.Writes
	return Result{
		Name:              "sharing:" + mode,
		NsPerOp:           wall * 1e9,
		WallSeconds:       wall,
		SimAccessesPerSec: float64(accesses) / wall,
	}, nil
}

// ckptOverhead measures checkpoint capture's end-to-end wall-clock cost on
// one application run (FFT, 32 processors): capture off, and capture on a
// 1ms and an aggressive 100µs virtual-time grid, each snapshot fully
// serialized to originckpt/v1 bytes (the cost a user writing files pays).
// The ckpt:off entry is the regression guard for the disabled path — an
// unarmed quiescent hook per window.
func ckptOverhead(mode string, s experiments.Scale) (Result, error) {
	app := experiments.AppByName("FFT")
	if app == nil {
		return Result{}, fmt.Errorf("FFT app missing")
	}
	params := workload.Params{Size: s.BasicSize(app), Seed: 42}
	var every sim.Time
	switch mode {
	case "1ms":
		every = sim.Millisecond
	case "100us":
		every = 100 * sim.Microsecond
	}
	start := time.Now()
	var r experiments.RunResult
	var err error
	if every == 0 {
		r, err = s.Run(app, 32, params)
	} else {
		cfg := s.Machine(32)
		cfg.Checkpoint.Every = every
		cfg.Checkpoint.Spec = s.RunSpec(app, params)
		cfg.Checkpoint.Sink = func(sn *snapshot.Snapshot) error {
			_, eerr := sn.Encode()
			return eerr
		}
		r, err = s.RunConfig(app, cfg, params)
	}
	if err != nil {
		return Result{}, err
	}
	wall := time.Since(start).Seconds()
	accesses := r.Result.Counters.Reads + r.Result.Counters.Writes
	return Result{
		Name:              "ckpt:" + mode,
		NsPerOp:           wall * 1e9,
		WallSeconds:       wall,
		SimAccessesPerSec: float64(accesses) / wall,
	}, nil
}

// ckptBytesPerBlock reports the serialized snapshot's size relative to the
// simulated state it covers: encoded originckpt bytes divided by directory-
// tracked blocks, from the last checkpoint of an FFT/32 run. The ratio is
// the NsPerOp field so -compare tracks format growth like a perf number;
// BytesPerOp records the absolute snapshot size. Deterministic, so a single
// shot suffices.
func ckptBytesPerBlock(s experiments.Scale) (Result, error) {
	app := experiments.AppByName("FFT")
	if app == nil {
		return Result{}, fmt.Errorf("FFT app missing")
	}
	params := workload.Params{Size: s.BasicSize(app), Seed: 42}
	var last *snapshot.Snapshot
	cfg := s.Machine(32)
	cfg.Checkpoint.Every = sim.Millisecond
	cfg.Checkpoint.Spec = s.RunSpec(app, params)
	cfg.Checkpoint.Sink = func(sn *snapshot.Snapshot) error {
		last = sn
		return nil
	}
	if _, err := s.RunConfig(app, cfg, params); err != nil {
		return Result{}, err
	}
	if last == nil {
		return Result{}, fmt.Errorf("ckpt:bytes-per-block: run too short, no snapshot captured")
	}
	data, err := last.Encode()
	if err != nil {
		return Result{}, err
	}
	blocks := 0
	for _, d := range last.Directories {
		blocks += len(d.Blocks)
	}
	if blocks == 0 {
		return Result{}, fmt.Errorf("ckpt:bytes-per-block: snapshot tracks no blocks")
	}
	return Result{
		Name:       "ckpt:bytes-per-block",
		NsPerOp:    float64(len(data)) / float64(blocks),
		BytesPerOp: int64(len(data)),
	}, nil
}

// bestOf runs a single-shot wall-clock measurement n times and keeps the
// fastest. The simulated run is deterministic, so every attempt measures
// the identical workload; the minimum is the attempt least disturbed by
// whatever else the host was doing, which matters on the small shared
// containers these snapshots are usually taken on (run-to-run spread on
// one of those exceeds 15% single-shot).
func bestOf(n int, run func() (Result, error)) (Result, error) {
	best, err := run()
	if err != nil {
		return Result{}, err
	}
	for i := 1; i < n; i++ {
		r, err := run()
		if err != nil {
			return Result{}, err
		}
		if r.NsPerOp < best.NsPerOp {
			best = r
		}
	}
	return best, nil
}

// bestBench is bestOf for testing.Benchmark-based measurements: it keeps
// the attempt with the lowest ns/op.
func bestBench(n int, run func() testing.BenchmarkResult) testing.BenchmarkResult {
	best := run()
	for i := 1; i < n; i++ {
		r := run()
		if r.N > 0 && best.N > 0 &&
			float64(r.T.Nanoseconds())/float64(r.N) < float64(best.T.Nanoseconds())/float64(best.N) {
			best = r
		}
	}
	return best
}

// engineSweepApps is the Figure 2 sweep's largest point: three
// memory-system-bound applications at 128 processors.
var engineSweepApps = []string{"FFT", "Ocean", "Radix"}

// hostAgg accumulates host-time-profiler reports across a sweep's runs
// (zero when the sweep ran unprofiled).
type hostAgg struct {
	wallNS, busyNS, commitNS int64
	attempts, hits           int64
	workers                  int
}

func (h *hostAgg) add(r *hostprof.Report) {
	h.wallNS += r.WallNS
	for _, l := range r.Lanes {
		h.busyNS += l.BusyNS
	}
	h.commitNS += r.CommitNS
	h.attempts += r.StealAttempts
	h.hits += r.StealHits
	h.workers = r.Workers
}

func (h hostAgg) workerUtil() float64 {
	if h.wallNS == 0 || h.workers == 0 {
		return 0
	}
	return float64(h.busyNS) / (float64(h.wallNS) * float64(h.workers))
}

func (h hostAgg) commitShare() float64 {
	if h.wallNS == 0 {
		return 0
	}
	return float64(h.commitNS) / float64(h.wallNS)
}

func (h hostAgg) stealHitRate() float64 {
	if h.attempts == 0 {
		return 0
	}
	return float64(h.hits) / float64(h.attempts)
}

// engineSweep runs the 128-processor Figure 2 sweep under the given engine,
// worker count, and window policy, returning the total wall-clock, every
// run's result (for the bit-identity guard against the serial engine), the
// aggregated schedule shape across the sweep's runs, and — when the scale
// had HostProf set — the aggregated host-time profile.
func engineSweep(engine string, workers int, window string, s experiments.Scale) (wall float64, results []experiments.RunResult, shape sim.SchedShape, host hostAgg, err error) {
	s.Engine, s.Workers, s.Window = engine, workers, window
	var m *core.Machine
	s.TraceSink = func(_ string, mm *core.Machine) { m = mm }
	start := time.Now()
	for _, name := range engineSweepApps {
		app := experiments.AppByName(name)
		if app == nil {
			return 0, nil, shape, host, fmt.Errorf("unknown app %q", name)
		}
		params := workload.Params{Size: s.BasicSize(app), Seed: 42}
		r, rerr := s.Run(app, 128, params)
		if rerr != nil {
			return 0, nil, shape, host, rerr
		}
		results = append(results, r)
		sh := m.SchedShape()
		shape.Windows += sh.Windows
		shape.ShardChains += sh.ShardChains
		shape.Commits += sh.Commits
		shape.CommitRuns += sh.CommitRuns
		shape.RunAheadSpans += sh.RunAheadSpans
		shape.RunAheadHandoffs += sh.RunAheadHandoffs
		shape.WindowWidthSum += sh.WindowWidthSum
		if hp := m.HostProf(); hp != nil {
			host.add(hp.Report())
		}
	}
	wall = time.Since(start).Seconds()
	return wall, results, shape, host, nil
}

// engineRow assembles one engine-sweep snapshot row from a sweep's wall
// clock and aggregated schedule shape.
func engineRow(name string, wall float64, shape sim.SchedShape) Result {
	r := Result{
		Name:        name,
		NsPerOp:     wall * 1e9,
		WallSeconds: wall,
		CPUs:        runtime.NumCPU(),
	}
	if shape.Windows > 0 {
		r.ShardChainsPerWindow = float64(shape.ShardChains) / float64(shape.Windows)
		r.CommitRunsPerWindow = float64(shape.CommitRuns) / float64(shape.Windows)
		r.AvgWindowNS = float64(shape.WindowWidthSum) / float64(shape.Windows) / float64(sim.Nanosecond)
	}
	if total := shape.CommitRuns + shape.ShardChains; total > 0 {
		r.CommitShare = float64(shape.CommitRuns) / float64(total)
	}
	return r
}

// nextOut returns the first unused BENCH_<n>.json name and its slot number.
func nextOut() (string, int) {
	for n := 1; ; n++ {
		name := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(name); os.IsNotExist(err) {
			return name, n
		}
	}
}

// seqOf extracts the <n> from a BENCH_<n>.json path, or 0 if the name does
// not follow the scheme.
func seqOf(path string) int {
	var n int
	if _, err := fmt.Sscanf(filepath.Base(path), "BENCH_%d.json", &n); err != nil {
		return 0
	}
	return n
}

func main() {
	out := flag.String("out", "", "output file (default: next free BENCH_<n>.json)")
	note := flag.String("note", "", "free-form note recorded in the snapshot")
	compare := flag.Bool("compare", false,
		"compare against the latest BENCH_<n>.json and fail on a >10% ns/op regression")
	check := flag.Bool("check", false,
		"run the fig2 and ablation suites with the online coherence checker enabled, then exit")
	traceOnly := flag.Bool("trace", false,
		"run only the tracing-overhead measurements (off/ring/full), print them, and exit without a snapshot")
	artifacts := flag.String("artifacts", "",
		"with -check: record ring traces and write the failing run's Perfetto trace to this directory")
	flag.Parse()

	if *check {
		runChecked(*artifacts)
		return
	}

	benchScaleEarly := experiments.Scale{Div: 16, CacheDiv: 16}
	if *traceOnly {
		for _, mode := range []string{"off", "ring", "full"} {
			r, err := traceOverhead(mode, benchScaleEarly)
			if err != nil {
				fmt.Fprintln(os.Stderr, "origin-bench:", err)
				os.Exit(1)
			}
			fmt.Printf("%-32s %12.1f ns/op  %10.2e accesses/s\n",
				r.Name, r.NsPerOp, r.SimAccessesPerSec)
		}
		return
	}

	// Resolve the baseline before writing the new snapshot, so -compare
	// never diffs a file against itself.
	baseline := ""
	if *compare {
		baseline = latestSnapshotPath(".")
		if baseline == "" {
			fmt.Fprintln(os.Stderr, "origin-bench: -compare: no BENCH_<n>.json baseline found")
			os.Exit(1)
		}
	}
	seq := 0
	if *out == "" {
		*out, seq = nextOut()
	} else {
		seq = seqOf(*out)
	}
	// Fail on an unwritable output path now, not after a 40-second suite.
	if f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "origin-bench:", err)
		os.Exit(1)
	} else {
		f.Close()
	}
	// Announce the slot up front, before the suite's minutes of work, so an
	// interrupted run never leaves doubt about which file it was writing
	// (the numbering scheme is documented in README.md).
	fmt.Printf("snapshot slot: %s (seq %d)\n", *out, seq)

	benchScale := experiments.Scale{Div: 16, CacheDiv: 16}
	snap := Snapshot{
		Schema:    "origin-bench/v1",
		Seq:       seq,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
		Note:       *note,
	}

	add := func(r Result) {
		snap.Results = append(snap.Results, r)
		fmt.Printf("%-32s %12.1f ns/op  %3d allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
		if r.SimAccessesPerSec > 0 {
			fmt.Printf("  %10.2e accesses/s", r.SimAccessesPerSec)
		}
		if r.SpeedupVsSerial > 0 {
			fmt.Printf("  %.2fx vs serial (%s)", r.SpeedupVsSerial, r.SpeedupClaim)
		}
		fmt.Println()
	}

	for _, mode := range []string{"hit", "local", "remote"} {
		mode := mode
		name := map[string]string{"hit": "access:hit", "local": "access:local-miss", "remote": "access:remote-miss"}[mode]
		add(fromBenchmark(name, bestBench(3, func() testing.BenchmarkResult { return benchAccess(mode) }), 1))
	}
	add(fromBenchmark("scheduler:round-trip", bestBench(3, benchSchedulerRoundTrip), 0))
	add(fromBenchmark("directory:write-fanout", bestBench(3, benchDirectoryWrite), 0))

	for _, name := range []string{"fig2", "ablation"} {
		name := name
		r := fromBenchmark("experiment:"+name,
			bestBench(3, func() testing.BenchmarkResult { return benchExperiment(name, benchScale) }), 0)
		r.WallSeconds = r.NsPerOp / 1e9
		add(r)
	}

	for _, spec := range []struct {
		app   string
		procs int
	}{{"FFT", 32}, {"Radix", 32}} {
		spec := spec
		r, err := bestOf(3, func() (Result, error) {
			return appThroughput(spec.app, spec.procs, benchScale)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "origin-bench:", err)
			os.Exit(1)
		}
		add(r)
	}

	for _, mode := range []string{"off", "ring", "full"} {
		mode := mode
		r, err := bestOf(3, func() (Result, error) {
			return traceOverhead(mode, benchScale)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "origin-bench:", err)
			os.Exit(1)
		}
		add(r)
	}

	for _, mode := range []string{"off", "50us", "5us"} {
		mode := mode
		r, err := bestOf(3, func() (Result, error) {
			return metricsOverhead(mode, benchScale)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "origin-bench:", err)
			os.Exit(1)
		}
		add(r)
	}

	for _, mode := range []string{"off", "on"} {
		mode := mode
		r, err := bestOf(3, func() (Result, error) {
			return sharingOverhead(mode, benchScale)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "origin-bench:", err)
			os.Exit(1)
		}
		add(r)
	}

	for _, mode := range []string{"off", "1ms", "100us"} {
		mode := mode
		r, err := bestOf(3, func() (Result, error) {
			return ckptOverhead(mode, benchScale)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "origin-bench:", err)
			os.Exit(1)
		}
		add(r)
	}
	if r, err := ckptBytesPerBlock(benchScale); err != nil {
		fmt.Fprintln(os.Stderr, "origin-bench:", err)
		os.Exit(1)
	} else {
		add(r)
	}

	// Engine speedup rows: the 128-processor Figure 2 sweep under the
	// serial reference engine and under the parallel engine at 1/2/4/8
	// host workers. Every parallel run is guarded bit-for-bit against the
	// serial results before its timing is recorded — a wall-clock win that
	// changes a single counter is a bug, not a speedup. Wall-clock gain is
	// bounded by the host's cores (the CPUs field above); the
	// shard-chains-per-window column records the parallelism the schedule
	// exposes regardless.
	// The sweeps are deterministic, so repeats measure the identical
	// schedule; keep the fastest of three to damp host noise (the
	// bit-identity guard still checks every attempt).
	const sweepAttempts = 3
	sweepSerial := func(window string) (float64, []experiments.RunResult, sim.SchedShape) {
		wall, res, shape, _, err := engineSweep("serial", 0, window, benchScale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "origin-bench:", err)
			os.Exit(1)
		}
		for i := 1; i < sweepAttempts; i++ {
			w, _, _, _, err := engineSweep("serial", 0, window, benchScale)
			if err != nil {
				fmt.Fprintln(os.Stderr, "origin-bench:", err)
				os.Exit(1)
			}
			if w < wall {
				wall = w
			}
		}
		return wall, res, shape
	}
	sweepParallel := func(scale experiments.Scale, workers int, window string, ref []experiments.RunResult) (float64, sim.SchedShape, hostAgg) {
		var bestWall float64
		var bestShape sim.SchedShape
		var bestHost hostAgg
		for i := 0; i < sweepAttempts; i++ {
			wall, res, shape, host, err := engineSweep("parallel", workers, window, scale)
			if err != nil {
				fmt.Fprintln(os.Stderr, "origin-bench:", err)
				os.Exit(1)
			}
			if !reflect.DeepEqual(res, ref) {
				fmt.Fprintf(os.Stderr, "origin-bench: parallel engine (workers=%d window=%q hostprof=%v) diverged from serial results\n", workers, window, scale.HostProf)
				os.Exit(1)
			}
			if i == 0 || wall < bestWall {
				bestWall, bestShape, bestHost = wall, shape, host
			}
		}
		return bestWall, bestShape, bestHost
	}

	serialWall, serialRes, serialShape := sweepSerial("")
	add(engineRow("engine:serial fig2-128", serialWall, serialShape))
	var wall4 float64
	var shape4 sim.SchedShape
	for _, w := range []int{1, 2, 4, 8} {
		wall, shape, _ := sweepParallel(benchScale, w, "", serialRes)
		if w == 4 {
			wall4, shape4 = wall, shape
		}
		r := engineRow(fmt.Sprintf("engine:parallel workers=%d fig2-128", w), wall, shape)
		r.SpeedupVsSerial = serialWall / wall
		r.SpeedupClaim = speedupClaim(runtime.NumCPU())
		add(r)
	}

	// Adaptive-window sweep: same fig2-128 runs under -window adaptive.
	// Adaptive widths change the schedule (and so the simulated results),
	// so the bit-identity guard for its parallel row is the adaptive
	// serial run, never the fixed-window one.
	adWall, adRes, adShape := sweepSerial("adaptive")
	add(engineRow("engine:serial adaptive fig2-128", adWall, adShape))
	{
		wall, shape, _ := sweepParallel(benchScale, 4, "adaptive", adRes)
		r := engineRow("engine:parallel workers=4 adaptive fig2-128", wall, shape)
		r.SpeedupVsSerial = adWall / wall
		r.SpeedupClaim = speedupClaim(runtime.NumCPU())
		add(r)
	}

	// Hostprof overhead pair: the workers=4 fig2-128 sweep with the
	// host-time profiler off and on. The off row reuses the workers=4
	// measurement above (identical configuration — hostprof off IS the
	// default; re-running it would only add noise), so the pair costs one
	// extra sweep. The on row bounds the profiler's cost and carries the
	// engine-health columns its report feeds; its runs stay under the
	// serial bit-identity guard — host profiling must never perturb the
	// schedule.
	add(engineRow("hostprof:off workers=4 fig2-128", wall4, shape4))
	{
		profScale := benchScale
		profScale.HostProf = true
		wall, shape, host := sweepParallel(profScale, 4, "", serialRes)
		r := engineRow("hostprof:on workers=4 fig2-128", wall, shape)
		r.SpeedupVsSerial = serialWall / wall
		r.SpeedupClaim = speedupClaim(runtime.NumCPU())
		r.WorkerUtil = host.workerUtil()
		r.CommitHostShare = host.commitShare()
		r.StealHitRate = host.stealHitRate()
		add(r)
	}

	// Scenario rows: the same fig2-128 sweep on each non-default machine —
	// the new topologies and directory formats — under the serial engine.
	// These sweeps are deterministic like the rest, but they exist to track
	// each machine's cost trajectory, not to race the host, so a single
	// attempt each keeps the suite's runtime bounded. Every row carries the
	// scenario name and hash so -compare never diffs different machines.
	for _, scn := range []string{"mesh", "fattree", "limited", "coarse"} {
		spec, err := scenario.Load(scn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "origin-bench:", err)
			os.Exit(1)
		}
		scnScale := benchScale
		scnScale.Scenario = &spec
		wall, _, shape, _, err := engineSweep("serial", 0, "", scnScale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "origin-bench:", err)
			os.Exit(1)
		}
		r := engineRow("scenario:"+scn+" fig2-128", wall, shape)
		r.Scenario = spec.Name
		r.ScenarioHash = spec.Hash()
		add(r)
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "origin-bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "origin-bench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)

	if baseline != "" {
		report, err := compareAgainstBaseline(baseline, snap, regressionThreshold)
		fmt.Print(report)
		if err != nil {
			fmt.Fprintln(os.Stderr, "origin-bench:", err)
			os.Exit(1)
		}
	}
}

// runChecked executes the fig2 and ablation suites with the online
// coherence-invariant checker attached to every machine; any protocol
// violation fails the run with the checker's full report. With an artifacts
// directory, every machine also records a ring trace, and the failing run's
// trace — a failed run aborts its experiment, so it is the last machine the
// sink saw — is exported as a Perfetto artifact.
func runChecked(artifacts string) {
	s := experiments.Scale{Div: 16, CacheDiv: 16, Check: true}
	var lastLabel string
	var lastMachine *core.Machine
	if artifacts != "" {
		s.Trace = trace.Options{Enabled: true}
		s.TraceSink = func(label string, m *core.Machine) { lastLabel, lastMachine = label, m }
	}
	for _, name := range []string{"fig2", "ablation"} {
		fmt.Printf("checked %s...\n", name)
		se := experiments.NewSession(s)
		if err := experiments.Run(name, se, discard{}); err != nil {
			fmt.Fprintln(os.Stderr, "origin-bench: coherence violation:", err)
			if lastMachine != nil && lastMachine.Tracer() != nil {
				if path, werr := trace.WriteArtifact(artifacts, lastLabel, lastMachine.Tracer()); werr != nil {
					fmt.Fprintln(os.Stderr, "origin-bench: trace artifact:", werr)
				} else {
					fmt.Fprintln(os.Stderr, "origin-bench: failing run's trace:", path)
				}
			}
			os.Exit(1)
		}
	}
	fmt.Println("checked fig2+ablation: zero coherence violations")
}
