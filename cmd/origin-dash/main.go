// Command origin-dash serves a live dashboard for simulator sweeps: it runs
// applications across processor counts with the virtual-time metrics sampler
// enabled and streams per-sample series and run progress to a single-file
// HTML dashboard over Server-Sent Events. Each finished run's series is also
// available as CSV, a saved run artifact (origin-diff input), and Prometheus
// text exposition.
//
//	origin-dash -addr :8080
//	open http://localhost:8080/
//
// Endpoints:
//
//	GET /                 the dashboard
//	GET /api/start?app=FFT&procs=4,8&scale=64[&scenario=mesh]  start a sweep
//	GET /api/runs         all runs as JSON
//	GET /api/events       SSE stream: "run" and "sample" events
//	GET /api/csv?run=N    one run's machine-sample series as CSV
//	GET /api/artifact?run=N  one run's artifact JSON (origin-diff input)
//	GET /metrics          Prometheus text exposition of the latest state
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"origin2000/internal/core"
	"origin2000/internal/scenario"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:8080", "listen address")
		scale   = flag.Int("scale", 64, "default problem/cache scale divisor for sweeps")
		engine  = flag.String("engine", "serial", "execution engine for sweeps: serial or parallel")
		workers = flag.Int("workers", 0, "host workers for -engine=parallel (0 = GOMAXPROCS)")
		window  = flag.String("window", "fixed", "window policy: fixed, fixed:<dur>, adaptive, adaptive:<dur>")
		scenF   = flag.String("scenario", "", "default machine scenario for sweeps (preset name or spec .json); /api/start?scenario= overrides per sweep")
	)
	flag.Parse()

	if *engine != "serial" && *engine != "parallel" {
		fmt.Fprintf(os.Stderr, "unknown engine %q (serial or parallel)\n", *engine)
		os.Exit(2)
	}
	if _, _, _, err := core.ParseWindowSpec(*window); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	spec, err := scenario.Load(*scenF)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	srv := newServer(*scale, *engine, *workers, *window)
	srv.scenario = spec
	log.Printf("origin-dash listening on http://%s/", *addr)
	if err := http.ListenAndServe(*addr, srv.mux()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
