package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"origin2000/internal/metrics"
	"origin2000/internal/sharing"
	"origin2000/internal/sim"
)

// TestMetricsExpositionFormat is the scrape-format regression test for the
// /metrics endpoint: Prometheus rejects an exposition whose sample lines
// are not preceded by their metric's # HELP and # TYPE comments, and
// rejects duplicated metadata, so a handler edit that appends a gauge
// without them (or emits a family twice) breaks every scraper silently —
// the dashboard smoke test only greps for a few known names. This test
// builds a server with a finished, sampled, sharing-classified run
// entirely in-process and checks the exposition structurally: every
// sample's metric name must have exactly one HELP and one TYPE line, both
// before the first sample of that family, and the sharing gauges must be
// present for a run that carries a report.
func TestMetricsExpositionFormat(t *testing.T) {
	srv := newServer(64, "", 0, "")
	srv.runs = []*runState{
		{
			ID: 0, Label: "FFT-p4", App: "FFT", Procs: 4, Size: 4096,
			Status: "done", ElapsedMs: 12.5,
			samples: []metrics.MachineSample{{
				At:   3 * sim.Millisecond,
				Busy: 2 * sim.Millisecond,
			}},
			sharing: &sharing.Report{
				Procs: 4, Nodes: 2, Blocks: 8,
				Split:     sharing.Split{Coherence: 10, TrueSharing: 6, FalseSharing: 3, Pending: 1},
				Imbalance: 1.5,
			},
		},
		// A second run that is still running, has no samples and no sharing
		// report: families must still emit their metadata exactly once, and
		// per-run lines must simply be absent, never emitted with defaults.
		{ID: 1, Label: "FFT-p8", App: "FFT", Procs: 8, Status: "running"},
	}

	ts := httptest.NewServer(srv.mux())
	defer ts.Close()
	body := get(t, ts.URL+"/metrics")

	type meta struct{ help, typ, sample bool }
	families := map[string]*meta{}
	fam := func(name string) *meta {
		if families[name] == nil {
			families[name] = &meta{}
		}
		return families[name]
	}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name, rest, _ := strings.Cut(strings.TrimPrefix(line, "# HELP "), " ")
			f := fam(name)
			if f.help {
				t.Errorf("duplicate # HELP for %s", name)
			}
			if f.sample {
				t.Errorf("# HELP for %s appears after its samples", name)
			}
			if strings.TrimSpace(rest) == "" {
				t.Errorf("empty help text for %s", name)
			}
			f.help = true
		case strings.HasPrefix(line, "# TYPE "):
			name, typ, _ := strings.Cut(strings.TrimPrefix(line, "# TYPE "), " ")
			f := fam(name)
			if f.typ {
				t.Errorf("duplicate # TYPE for %s", name)
			}
			if f.sample {
				t.Errorf("# TYPE for %s appears after its samples", name)
			}
			if typ != "gauge" {
				t.Errorf("%s has type %q, want gauge", name, typ)
			}
			f.typ = true
		case strings.HasPrefix(line, "#") || strings.TrimSpace(line) == "":
			// other comments / blank lines are fine
		default:
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			f := fam(name)
			if !f.help || !f.typ {
				t.Errorf("sample for %s not preceded by # HELP and # TYPE: %q", name, line)
			}
			f.sample = true
		}
	}
	// The sharing gauges must be exposed for the classified run — with the
	// false-sharing gauge including unsettled (pending) misses — and only
	// for it: run 1 has no report, so no line with run="1".
	for line, want := range map[string]string{
		`origin_coherence_misses{run="0",app="FFT",procs="4"} 10`:    "coherence gauge",
		`origin_true_sharing_misses{run="0",app="FFT",procs="4"} 6`:  "true-sharing gauge",
		`origin_false_sharing_misses{run="0",app="FFT",procs="4"} 4`: "false-sharing gauge (3 settled + 1 pending)",
		`origin_home_imbalance{run="0",app="FFT",procs="4"} 1.5`:     "imbalance gauge",
	} {
		if !strings.Contains(body, line) {
			t.Errorf("/metrics missing %s: %q\n%s", want, line, body)
		}
	}
	for _, name := range []string{
		"origin_coherence_misses", "origin_true_sharing_misses",
		"origin_false_sharing_misses", "origin_home_imbalance",
	} {
		if strings.Contains(body, name+`{run="1"`) {
			t.Errorf("%s emitted for a run without a sharing report", name)
		}
	}
	if !strings.Contains(body, `origin_run_status{run="1",app="FFT",procs="8"} 0`) {
		t.Error("running run missing its status gauge")
	}
}
