package main

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"origin2000/internal/core"
	"origin2000/internal/experiments"
	"origin2000/internal/hostprof"
	"origin2000/internal/metrics"
	"origin2000/internal/scenario"
	"origin2000/internal/sharing"
	"origin2000/internal/sim"
	"origin2000/internal/workload"
)

//go:embed dash.html
var dashHTML []byte

// runState is one sweep run's dashboard-visible state. The embedded series
// grows while the run is live; the mutex-protected server owns all of it.
type runState struct {
	ID        int     `json:"id"`
	Label     string  `json:"label"`
	App       string  `json:"app"`
	Procs     int     `json:"procs"`
	Size      int     `json:"size"`
	Status    string  `json:"status"` // "running", "done", "failed"
	Error     string  `json:"error,omitempty"`
	ElapsedMs float64 `json:"elapsed_ms"`
	// Scenario attribution: which machine this run simulated. Rows from
	// different scenarios carry different hashes, so dashboard clients can
	// group or separate curves per machine.
	Scenario     string `json:"scenario,omitempty"`
	ScenarioHash string `json:"scenario_hash,omitempty"`

	samples  []metrics.MachineSample
	artifact metrics.Artifact
	hostprof *hostprof.Report
	sharing  *sharing.Report
}

// sseEvent is one Server-Sent Event: a named payload.
type sseEvent struct {
	name string
	data []byte
}

// server owns the runs and the SSE subscriber set.
type server struct {
	defaultScale int
	engine       string
	workers      int
	window       string
	scenario     scenario.Spec // default machine for sweeps; per-sweep override via ?scenario=

	mu   sync.Mutex
	runs []*runState
	subs map[chan sseEvent]struct{}
}

func newServer(defaultScale int, engine string, workers int, window string) *server {
	if defaultScale < 1 {
		defaultScale = 64
	}
	return &server{
		defaultScale: defaultScale,
		engine:       engine,
		workers:      workers,
		window:       window,
		scenario:     scenario.Default(),
		subs:         make(map[chan sseEvent]struct{}),
	}
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/api/start", s.handleStart)
	mux.HandleFunc("/api/runs", s.handleRuns)
	mux.HandleFunc("/api/events", s.handleEvents)
	mux.HandleFunc("/api/csv", s.handleCSV)
	mux.HandleFunc("/api/artifact", s.handleArtifact)
	mux.HandleFunc("/api/hostprof", s.handleHostprof)
	mux.HandleFunc("/api/sharing", s.handleSharing)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(dashHTML)
}

// broadcast fans an event out to every subscriber; slow subscribers drop
// events rather than stall the simulation.
func (s *server) broadcast(ev sseEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for ch := range s.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

func (s *server) runEvent(rs *runState) sseEvent {
	b, _ := json.Marshal(rs)
	return sseEvent{name: "run", data: b}
}

// handleStart launches a sweep: one run per requested processor count.
func (s *server) handleStart(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	appName := q.Get("app")
	if appName == "" {
		appName = "FFT"
	}
	app := experiments.AppByName(appName)
	if app == nil {
		http.Error(w, fmt.Sprintf("unknown app %q", appName), http.StatusBadRequest)
		return
	}
	var procCounts []int
	procSpec := q.Get("procs")
	if procSpec == "" {
		procSpec = "4,8"
	}
	for _, f := range strings.Split(procSpec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("bad procs %q", f), http.StatusBadRequest)
			return
		}
		procCounts = append(procCounts, n)
	}
	scaleDiv := s.defaultScale
	if v := q.Get("scale"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("bad scale %q", v), http.StatusBadRequest)
			return
		}
		scaleDiv = n
	}
	var interval sim.Time
	if v := q.Get("interval_us"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("bad interval_us %q", v), http.StatusBadRequest)
			return
		}
		interval = sim.Time(n) * sim.Microsecond
	}
	spec := s.scenario
	if v := q.Get("scenario"); v != "" {
		sc, err := scenario.Load(v)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		spec = sc
	}
	for _, procs := range procCounts {
		if err := spec.Validate(procs); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}

	ids := make([]int, 0, len(procCounts))
	s.mu.Lock()
	for _, procs := range procCounts {
		label := fmt.Sprintf("%s p%d /%d", appName, procs, scaleDiv)
		if !spec.IsDefault() {
			label += " @" + spec.Name
		}
		rs := &runState{
			ID:           len(s.runs),
			Label:        label,
			App:          appName,
			Procs:        procs,
			Status:       "running",
			Scenario:     spec.Name,
			ScenarioHash: spec.Hash(),
		}
		s.runs = append(s.runs, rs)
		ids = append(ids, rs.ID)
	}
	s.mu.Unlock()

	go s.sweep(app, spec, ids, procCounts, scaleDiv, interval)

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"runs": ids})
}

// sweep executes the requested runs sequentially, streaming samples as the
// simulation produces them.
func (s *server) sweep(wapp workload.App, spec scenario.Spec, ids, procCounts []int, scaleDiv int, interval sim.Time) {
	for i, procs := range procCounts {
		id := ids[i]
		// Dashboard sweeps always sample metrics, which pins the parallel
		// engine to one worker (observer policy); the flag still selects the
		// engine so the windowed scheduler path gets exercised end to end.
		sc := experiments.Scale{Div: scaleDiv, CacheDiv: scaleDiv,
			Engine: s.engine, Workers: s.workers, Window: s.window, Scenario: &spec}
		sc.Trace.Enabled = true
		// Host-time profiling is schedule-neutral, so it is always on for
		// dashboard runs; the panel shows where the engine spends host time.
		sc.HostProf = true
		// Metrics already pin the run to one worker, so the sharing
		// classifier rides along for free; its report feeds /api/sharing
		// and the sharing panel.
		sc.Sharing = true
		sc.Metrics = metrics.Options{
			Enabled:  true,
			Interval: interval,
			OnMachineSample: func(ms metrics.MachineSample) {
				s.mu.Lock()
				rs := s.runs[id]
				rs.samples = append(rs.samples, ms)
				s.mu.Unlock()
				b, _ := json.Marshal(struct {
					Run int `json:"run"`
					metrics.MachineSample
				}{Run: id, MachineSample: ms})
				s.broadcast(sseEvent{name: "sample", data: b})
			},
		}
		params := sc.Params(wapp, wapp.BasicSize(), "")
		sc.TraceSink = func(label string, m *core.Machine) {
			art := experiments.BuildArtifact(label, wapp, params, m)
			var hp *hostprof.Report
			if p := m.HostProf(); p != nil {
				hp = p.Report()
			}
			s.mu.Lock()
			s.runs[id].artifact = art
			s.runs[id].hostprof = hp
			s.runs[id].sharing = art.Sharing
			s.runs[id].Size = params.Size
			s.mu.Unlock()
		}
		s.broadcastRun(id)
		r, err := sc.Run(wapp, procs, params)
		s.mu.Lock()
		rs := s.runs[id]
		if err != nil {
			rs.Status = "failed"
			rs.Error = err.Error()
		} else {
			rs.Status = "done"
			rs.ElapsedMs = r.Elapsed.Milliseconds()
		}
		s.mu.Unlock()
		s.broadcastRun(id)
	}
}

func (s *server) broadcastRun(id int) {
	s.mu.Lock()
	ev := s.runEvent(s.runs[id])
	s.mu.Unlock()
	s.broadcast(ev)
}

func (s *server) handleRuns(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]runState, len(s.runs))
	for i, rs := range s.runs {
		out[i] = *rs
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleEvents is the SSE stream: on connect it replays every run's current
// state, then forwards live run/sample events until the client leaves.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	// Commit the response headers before blocking on events: with no runs to
	// replay, nothing else would be written, and the client's GET would hang
	// waiting for a response that never starts.
	fmt.Fprint(w, ": connected\n\n")
	fl.Flush()

	ch := make(chan sseEvent, 256)
	s.mu.Lock()
	s.subs[ch] = struct{}{}
	replay := make([]sseEvent, 0, len(s.runs))
	for _, rs := range s.runs {
		replay = append(replay, s.runEvent(rs))
	}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.subs, ch)
		s.mu.Unlock()
	}()

	write := func(ev sseEvent) bool {
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, ev := range replay {
		if !write(ev) {
			return
		}
	}
	for {
		select {
		case ev := <-ch:
			if !write(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// runByQuery resolves the ?run=N parameter.
func (s *server) runByQuery(w http.ResponseWriter, r *http.Request) *runState {
	id, err := strconv.Atoi(r.URL.Query().Get("run"))
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil || id < 0 || id >= len(s.runs) {
		http.Error(w, "unknown run", http.StatusNotFound)
		return nil
	}
	return s.runs[id]
}

func (s *server) handleCSV(w http.ResponseWriter, r *http.Request) {
	rs := s.runByQuery(w, r)
	if rs == nil {
		return
	}
	s.mu.Lock()
	samples := append([]metrics.MachineSample(nil), rs.samples...)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", fmt.Sprintf("run%d.csv", rs.ID)))
	metrics.WriteMachineCSV(w, samples)
}

func (s *server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	rs := s.runByQuery(w, r)
	if rs == nil {
		return
	}
	s.mu.Lock()
	art := rs.artifact
	s.mu.Unlock()
	if art.Schema == "" {
		http.Error(w, "run has no artifact yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	art.WriteJSON(w)
}

// handleHostprof serves a finished run's aggregate host-time report: where
// the engine spent real time (worker chains, commit, run-ahead, turnover)
// while producing the run's virtual-time results.
func (s *server) handleHostprof(w http.ResponseWriter, r *http.Request) {
	rs := s.runByQuery(w, r)
	if rs == nil {
		return
	}
	s.mu.Lock()
	hp := rs.hostprof
	s.mu.Unlock()
	if hp == nil {
		http.Error(w, "run has no host profile yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(hp)
}

// handleSharing serves a finished run's sharing-classifier report: the
// pattern census, the true/false coherence-miss split, the false-sharing
// suspects and the home-imbalance table rendered by the sharing panel.
func (s *server) handleSharing(w http.ResponseWriter, r *http.Request) {
	rs := s.runByQuery(w, r)
	if rs == nil {
		return
	}
	s.mu.Lock()
	sh := rs.sharing
	s.mu.Unlock()
	if sh == nil {
		http.Error(w, "run has no sharing report yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(sh)
}

// handleMetrics serves Prometheus text exposition: per-run gauges from the
// latest machine sample. Virtual-time quantities are exported in
// milliseconds of simulated time.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	type snap struct {
		rs     runState
		latest *metrics.MachineSample
	}
	snaps := make([]snap, 0, len(s.runs))
	for _, rs := range s.runs {
		sn := snap{rs: *rs}
		if n := len(rs.samples); n > 0 {
			ms := rs.samples[n-1]
			sn.latest = &ms
		}
		snaps = append(snaps, sn)
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	gauge := func(name, help string, emit func(sn snap) (float64, bool)) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, sn := range snaps {
			v, ok := emit(sn)
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "%s{run=\"%d\",app=%q,procs=\"%d\"} %g\n",
				name, sn.rs.ID, sn.rs.App, sn.rs.Procs, v)
		}
	}
	gauge("origin_run_status", "Run status: 0 running, 1 done, 2 failed.", func(sn snap) (float64, bool) {
		switch sn.rs.Status {
		case "done":
			return 1, true
		case "failed":
			return 2, true
		}
		return 0, true
	})
	gauge("origin_run_elapsed_ms", "Simulated elapsed time of a finished run.", func(sn snap) (float64, bool) {
		return sn.rs.ElapsedMs, sn.rs.Status == "done"
	})
	gauge("origin_virtual_time_ms", "Virtual time of the latest sample.", func(sn snap) (float64, bool) {
		if sn.latest == nil {
			return 0, false
		}
		return sn.latest.At.Milliseconds(), true
	})
	forLatest := func(f func(*metrics.MachineSample) float64) func(snap) (float64, bool) {
		return func(sn snap) (float64, bool) {
			if sn.latest == nil {
				return 0, false
			}
			return f(sn.latest), true
		}
	}
	gauge("origin_busy_ms", "Cumulative busy time summed over processors.",
		forLatest(func(ms *metrics.MachineSample) float64 { return ms.Busy.Milliseconds() }))
	gauge("origin_memory_stall_ms", "Cumulative memory-stall time summed over processors.",
		forLatest(func(ms *metrics.MachineSample) float64 { return ms.Memory.Milliseconds() }))
	gauge("origin_sync_ms", "Cumulative synchronization time summed over processors.",
		forLatest(func(ms *metrics.MachineSample) float64 { return ms.Sync.Milliseconds() }))
	gauge("origin_local_misses", "Cumulative local misses.",
		forLatest(func(ms *metrics.MachineSample) float64 { return float64(ms.LocalMisses) }))
	gauge("origin_remote_misses", "Cumulative remote (clean+dirty) misses.",
		forLatest(func(ms *metrics.MachineSample) float64 { return float64(ms.RemoteClean + ms.RemoteDirty) }))
	gauge("origin_dir_shared_blocks", "Directory entries in the Shared state.",
		forLatest(func(ms *metrics.MachineSample) float64 { return float64(ms.DirShared) }))
	gauge("origin_dir_exclusive_blocks", "Directory entries in the Exclusive state.",
		forLatest(func(ms *metrics.MachineSample) float64 { return float64(ms.DirExclusive) }))
	gauge("origin_hub_queued_ms", "Cumulative Hub queueing delay, all nodes.",
		forLatest(func(ms *metrics.MachineSample) float64 { return ms.HubQueuedTotal().Milliseconds() }))
	gauge("origin_mem_queued_ms", "Cumulative memory queueing delay, all nodes.",
		forLatest(func(ms *metrics.MachineSample) float64 { return ms.MemQueuedTotal().Milliseconds() }))
	gauge("origin_hottest_hub_node", "Node id with the most cumulative Hub queueing.",
		forLatest(func(ms *metrics.MachineSample) float64 { n, _ := ms.HottestHub(); return float64(n) }))
	forSharing := func(f func(*sharing.Report) float64) func(snap) (float64, bool) {
		return func(sn snap) (float64, bool) {
			if sn.rs.sharing == nil {
				return 0, false
			}
			return f(sn.rs.sharing), true
		}
	}
	gauge("origin_coherence_misses", "Coherence misses classified by the sharing observer.",
		forSharing(func(r *sharing.Report) float64 { return float64(r.Split.Coherence) }))
	gauge("origin_true_sharing_misses", "Coherence misses on words another processor wrote.",
		forSharing(func(r *sharing.Report) float64 { return float64(r.Split.TrueSharing) }))
	gauge("origin_false_sharing_misses", "Coherence misses on unmodified words (incl. unsettled).",
		forSharing(func(r *sharing.Report) float64 { return float64(r.Split.FalseTotal()) }))
	gauge("origin_home_imbalance", "Max-over-mean remote misses served per home node.",
		forSharing(func(r *sharing.Report) float64 { return r.Imbalance }))
	w.Write([]byte(b.String()))
}
