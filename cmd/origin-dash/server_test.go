package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"origin2000/internal/hostprof"
	"origin2000/internal/metrics"
	"origin2000/internal/scenario"
	"origin2000/internal/trace"
)

// TestDashSmoke is the CI headless smoke test: boot the server on an
// ephemeral port, start a 4-processor FFT sweep, and assert that the SSE
// stream, the Prometheus endpoint, the CSV export and the artifact export
// all deliver well-formed payloads. On failure the run's CSV series is
// written to the ORIGIN_TRACE_ARTIFACTS directory (when set) so CI uploads
// it with the failure.
func TestDashSmoke(t *testing.T) {
	srv := newServer(64, "parallel", 2, "adaptive")
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	saveSeriesOnFailure := func() {
		dir := trace.ArtifactDir()
		if !t.Failed() || dir == "" {
			return
		}
		srv.mu.Lock()
		defer srv.mu.Unlock()
		if len(srv.runs) == 0 {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("artifact dir: %v", err)
			return
		}
		path := filepath.Join(dir, "dash-smoke-run0.csv")
		f, err := os.Create(path)
		if err != nil {
			t.Logf("artifact create: %v", err)
			return
		}
		metrics.WriteMachineCSV(f, srv.runs[0].samples)
		f.Close()
		t.Logf("wrote failing run's series to %s", path)
	}
	defer saveSeriesOnFailure()

	// Subscribe to SSE before starting, so no event can be missed.
	evResp, err := http.Get(ts.URL + "/api/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	if ct := evResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type = %q", ct)
	}

	// The dashboard page must be served.
	page := get(t, ts.URL+"/")
	if !strings.Contains(page, "origin-dash") || !strings.Contains(page, "EventSource") {
		t.Error("dashboard HTML missing expected content")
	}

	// Start a 4-processor FFT sweep.
	var started struct {
		Runs []int `json:"runs"`
	}
	if err := json.Unmarshal([]byte(get(t, ts.URL+"/api/start?app=FFT&procs=4&scale=64")), &started); err != nil {
		t.Fatalf("start response: %v", err)
	}
	if len(started.Runs) != 1 {
		t.Fatalf("started runs = %v, want one", started.Runs)
	}

	// Read SSE until the run completes: we must see at least one
	// well-formed sample event and the final done run event.
	type sampleEvent struct {
		Run int `json:"run"`
		metrics.MachineSample
	}
	var sawSample, sawDone bool
	deadline := time.After(60 * time.Second)
	events := make(chan [2]string, 64)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(evResp.Body)
		var name string
		for sc.Scan() {
			line := sc.Text()
			if v, ok := strings.CutPrefix(line, "event: "); ok {
				name = v
			} else if v, ok := strings.CutPrefix(line, "data: "); ok {
				events <- [2]string{name, v}
			}
		}
	}()
	for !(sawSample && sawDone) {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("SSE stream closed before the run finished")
			}
			switch ev[0] {
			case "sample":
				var se sampleEvent
				if err := json.Unmarshal([]byte(ev[1]), &se); err != nil {
					t.Fatalf("malformed sample event %q: %v", ev[1], err)
				}
				if se.At <= 0 {
					t.Fatalf("sample with non-positive virtual time: %+v", se)
				}
				sawSample = true
			case "run":
				var rs runState
				if err := json.Unmarshal([]byte(ev[1]), &rs); err != nil {
					t.Fatalf("malformed run event %q: %v", ev[1], err)
				}
				if rs.Status == "failed" {
					t.Fatalf("run failed: %s", rs.Error)
				}
				if rs.Status == "done" {
					if rs.ElapsedMs <= 0 {
						t.Fatalf("done run with no elapsed time: %+v", rs)
					}
					sawDone = true
				}
			}
		case <-deadline:
			t.Fatalf("timed out waiting for SSE (sample=%v done=%v)", sawSample, sawDone)
		}
	}

	// Prometheus exposition must carry the run's gauges.
	prom := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"# TYPE origin_run_status gauge",
		`origin_run_status{run="0",app="FFT",procs="4"} 1`,
		`origin_run_elapsed_ms{run="0",app="FFT",procs="4"}`,
		"# TYPE origin_busy_ms gauge",
		"origin_virtual_time_ms",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q\n%s", want, prom)
		}
	}

	// CSV export: header plus at least one row, rectangular.
	csv := get(t, ts.URL+"/api/csv?run=0")
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) < 2 {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "at_ps,epoch,busy_ps") {
		t.Errorf("CSV header = %q", lines[0])
	}
	cols := strings.Count(lines[0], ",")
	for i, line := range lines[1:] {
		if strings.Count(line, ",") != cols {
			t.Errorf("CSV row %d not rectangular: %q", i, line)
		}
	}

	// Artifact export: schema-valid JSON usable as an origin-diff side.
	var art metrics.Artifact
	if err := json.Unmarshal([]byte(get(t, ts.URL+"/api/artifact?run=0")), &art); err != nil {
		t.Fatalf("artifact: %v", err)
	}
	if art.Schema != metrics.ArtifactSchema || len(art.PerProc) != 4 || len(art.Machine) == 0 {
		t.Errorf("artifact malformed: schema=%q procs=%d samples=%d",
			art.Schema, len(art.PerProc), len(art.Machine))
	}

	// Host-time profile: the engine self-observability report must be
	// served for a finished run (dash sweeps always profile).
	var hp hostprof.Report
	if err := json.Unmarshal([]byte(get(t, ts.URL+"/api/hostprof?run=0")), &hp); err != nil {
		t.Fatalf("hostprof: %v", err)
	}
	if hp.WallNS <= 0 || hp.Workers < 1 {
		t.Errorf("hostprof report malformed: wall_ns=%d workers=%d", hp.WallNS, hp.Workers)
	}

	// Unknown run ids are 404s, not panics.
	if resp, err := http.Get(ts.URL + "/api/csv?run=99"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("csv for unknown run: %v %v", resp.Status, err)
	}
}

// TestStartScenarioAttribution pins per-scenario attribution in the
// dashboard: a sweep started with ?scenario= must carry the scenario's name
// and spec hash on its run state (so two machines' curves are never
// conflated), label the run with the machine, and still run to completion;
// an unknown scenario must be rejected up front, not fail mid-sweep.
func TestStartScenarioAttribution(t *testing.T) {
	srv := newServer(64, "", 0, "")
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	mesh, ok := scenario.Named("mesh")
	if !ok {
		t.Fatal("mesh preset missing")
	}
	get(t, ts.URL+"/api/start?app=FFT&procs=4&scale=64&scenario=mesh")

	var runs []runState
	deadline := time.Now().Add(60 * time.Second)
	for {
		if err := json.Unmarshal([]byte(get(t, ts.URL+"/api/runs")), &runs); err != nil {
			t.Fatal(err)
		}
		if len(runs) == 1 && runs[0].Status != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run did not finish: %+v", runs)
		}
		time.Sleep(50 * time.Millisecond)
	}
	rs := runs[0]
	if rs.Status != "done" {
		t.Fatalf("mesh run %s: %s", rs.Status, rs.Error)
	}
	if rs.Scenario != "mesh" || rs.ScenarioHash != mesh.Hash() {
		t.Errorf("run attribution = %q [%s], want mesh [%s]", rs.Scenario, rs.ScenarioHash, mesh.Hash())
	}
	if !strings.Contains(rs.Label, "@mesh") {
		t.Errorf("label %q does not name the machine", rs.Label)
	}

	// Unknown scenarios are a client error at start time.
	resp, err := http.Get(ts.URL + "/api/start?app=FFT&procs=4&scenario=no-such-machine")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown scenario: %s, want 400", resp.Status)
	}
}

// TestEventsDisconnect is the goroutine-leak regression test for the SSE
// endpoint: a handler blocked waiting for events must exit promptly when its
// client disconnects (it unregisters its subscription on the way out), even
// though no event ever arrives to wake it. A leaked handler would pin its
// subscriber channel forever and the server would slowly accumulate both.
func TestEventsDisconnect(t *testing.T) {
	srv := newServer(64, "", 0, "")
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	subsLen := func() int {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return len(srv.subs)
	}
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (subscribers=%d)", what, subsLen())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	before := runtime.NumGoroutine()

	// Connect several SSE clients through cancellable requests and wait for
	// each handler to register its subscription (the preamble is written
	// before registration, so reading it alone is not enough).
	const clients = 4
	var cancels []context.CancelFunc
	var bodies []io.Closer
	for i := 0; i < clients; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels = append(cancels, cancel)
		req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/api/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, resp.Body)
	}
	defer func() {
		for _, c := range cancels {
			c()
		}
		for _, b := range bodies {
			b.Close()
		}
	}()
	waitFor("all clients to subscribe", func() bool { return subsLen() == clients })

	// Drop every client. The handlers are parked in their event select; only
	// the request context's cancellation can free them.
	for _, c := range cancels {
		c()
	}
	for _, b := range bodies {
		b.Close()
	}
	waitFor("handlers to unsubscribe after disconnect", func() bool { return subsLen() == 0 })

	// The handler goroutines themselves must be gone too, not just their
	// subscriptions. Allow slack for the test server's own pool churn.
	waitFor("handler goroutines to exit", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s\n%s", url, resp.Status, body)
	}
	return string(body)
}
