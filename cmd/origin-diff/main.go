// Command origin-diff attributes the virtual-time difference between two
// runs: it aligns them by phase epochs (barrier releases) and decomposes the
// wall-clock delta into busy/memory/sync components — exactly, the
// component deltas sum to the measured delta — then localizes it to the top
// moving pages and synchronization objects.
//
// Each side is either a saved run artifact (a JSON file produced by
// -save-a/-save-b or by origin-dash) or a live run spec:
//
//	origin-diff -app FFT -procs 32 \
//	    -a placement=ft -b placement=rr -save-b rr.json
//	origin-diff -a first.json -b second.json
//	origin-diff -app Ocean -procs 32 -critpath -a placement=ft -b placement=rr
//
// -critpath additionally extracts each side's critical path — the longest
// dependency chain bounding elapsed virtual time — and decomposes it
// exactly (busy / memory / queueing / sync / release, residual zero).
//
// Run specs are comma-separated key[=value] pairs: placement=ft|rr,
// migrate=<threshold>, ppn=<n>, procs=<n>, variant=<v>, prefetch,
// barrier=tournament|central|fetchop, lock=llsc|fetchop|array.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"origin2000/internal/core"
	"origin2000/internal/experiments"
	"origin2000/internal/mempolicy"
	"origin2000/internal/metrics"
	"origin2000/internal/perf"
	"origin2000/internal/sim"
	"origin2000/internal/synchro"
	"origin2000/internal/workload"
)

func main() {
	var (
		appName  = flag.String("app", "FFT", "application for live run specs")
		procs    = flag.Int("procs", 32, "processor count for live run specs")
		size     = flag.Int("size", 0, "problem size in app units (0 = basic size)")
		scale    = flag.Int("scale", 8, "divide problem sizes and cache by this factor")
		steps    = flag.Int("steps", 0, "timesteps/frames (0 = app default)")
		seed     = flag.Int64("seed", 42, "input seed")
		interval = flag.Int64("interval", 0, "sampling interval in microseconds (0 = default)")
		top      = flag.Int("top", 8, "rows in the epoch/page/sync tables")
		sideA    = flag.String("a", "placement=ft", "side A: artifact JSON path or run spec")
		sideB    = flag.String("b", "placement=rr", "side B: artifact JSON path or run spec")
		saveA    = flag.String("save-a", "", "write side A's artifact JSON here")
		saveB    = flag.String("save-b", "", "write side B's artifact JSON here")
		critF    = flag.Bool("critpath", false, "analyze each side's critical path: exact decomposition of elapsed time")
	)
	flag.Parse()

	base := runBase{
		appName: *appName, procs: *procs, size: *size, scale: *scale,
		steps: *steps, seed: *seed, interval: sim.Time(*interval) * sim.Microsecond,
		critpath: *critF,
	}
	a, err := resolveSide(*sideA, base)
	if err != nil {
		fatal("side A: %v", err)
	}
	b, err := resolveSide(*sideB, base)
	if err != nil {
		fatal("side B: %v", err)
	}
	if *saveA != "" {
		if err := a.WriteFile(*saveA); err != nil {
			fatal("save-a: %v", err)
		}
	}
	if *saveB != "" {
		if err := b.WriteFile(*saveB); err != nil {
			fatal("save-b: %v", err)
		}
	}

	r := metrics.Diff(a, b)
	fmt.Printf("A: %s  (%s procs=%d size=%d)  elapsed %.3f ms\n",
		r.LabelA, a.App, a.Procs, a.Size, r.ElapsedA.Milliseconds())
	fmt.Printf("B: %s  (%s procs=%d size=%d)  elapsed %.3f ms\n",
		r.LabelB, b.App, b.Procs, b.Size, r.ElapsedB.Milliseconds())
	fmt.Printf("delta: %+.3f ms  (critical proc %d vs %d)\n\n",
		r.Delta.Milliseconds(), r.CriticalA, r.CriticalB)
	fmt.Println(perf.Table(r.ComponentRows()))
	fmt.Println(perf.Table(r.SubMemoryRows()))
	fmt.Println(perf.Table(r.SubSyncRows()))
	if len(r.Epochs) > 0 {
		fmt.Println(perf.Table(r.EpochRows(*top)))
	} else if r.EpochNote != "" {
		fmt.Printf("epochs: %s\n\n", r.EpochNote)
	}
	if len(r.Pages) > 0 {
		fmt.Println(perf.Table(r.PageRows(*top)))
	}
	if len(r.Syncs) > 0 {
		fmt.Println(perf.Table(r.SyncRows(*top)))
	}
	if len(r.Sharing) > 0 {
		fmt.Println(perf.Table(r.SharingRows()))
	}
	if r.SharingNote != "" {
		fmt.Printf("sharing: %s\n\n", r.SharingNote)
	}
	if *critF {
		printCritPath("A", r.LabelA, a, *top)
		printCritPath("B", r.LabelB, b, *top)
	}
}

// printCritPath analyzes and prints one side's critical path. Artifacts
// from runs without CritPath enabled get a note instead of tables (old
// saved artifacts stay usable).
func printCritPath(side, label string, a metrics.Artifact, top int) {
	p, err := metrics.CritPath(&a)
	if err != nil {
		fmt.Printf("critical path %s: %v\n\n", side, err)
		return
	}
	fmt.Printf("critical path %s: %s — %s-bound (%d segments, elapsed %.3f ms)\n\n",
		side, label, p.Dominant(), len(p.Segments), p.Elapsed.Milliseconds())
	fmt.Println(perf.Table(p.ComponentRows()))
	fmt.Println(perf.Table(p.SegmentRows(top)))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// runBase holds the flags shared by both sides' live runs.
type runBase struct {
	appName  string
	procs    int
	size     int
	scale    int
	steps    int
	seed     int64
	interval sim.Time
	critpath bool
}

// resolveSide loads an artifact file if arg names one, otherwise runs the
// spec live.
func resolveSide(arg string, base runBase) (metrics.Artifact, error) {
	if st, err := os.Stat(arg); err == nil && !st.IsDir() {
		return metrics.ReadArtifact(arg)
	}
	if strings.HasSuffix(arg, ".json") {
		return metrics.Artifact{}, fmt.Errorf("artifact %s not found", arg)
	}
	return runSpec(arg, base)
}

// runSpec executes one live run described by a spec string, with the
// sampler and tracer on so the artifact carries series and attribution.
func runSpec(spec string, base runBase) (metrics.Artifact, error) {
	app := experiments.AppByName(base.appName)
	if app == nil {
		return metrics.Artifact{}, fmt.Errorf("unknown app %q", base.appName)
	}
	s := experiments.Scale{Div: base.scale, CacheDiv: base.scale, Steps: base.steps, Seed: base.seed}
	s.Metrics = metrics.Options{Enabled: true, Interval: base.interval}
	s.Trace.Enabled = true
	s.CritPath = base.critpath
	// Metrics already pin the run to one worker; the sharing classifier
	// rides along so the diff can attribute deltas to pattern shifts.
	s.Sharing = true

	paperSize := base.size
	if paperSize == 0 {
		paperSize = app.BasicSize()
	}
	params := s.Params(app, paperSize, "")
	cfg := s.Machine(base.procs)
	if err := applySpec(spec, &cfg, &params); err != nil {
		return metrics.Artifact{}, err
	}

	var art metrics.Artifact
	s.TraceSink = func(label string, m *core.Machine) {
		art = experiments.BuildArtifact(spec, app, params, m)
	}
	if _, err := s.RunConfig(app, cfg, params); err != nil {
		return metrics.Artifact{}, err
	}
	return art, nil
}

// applySpec parses "key=value,key,..." into config and params overrides.
func applySpec(spec string, cfg *core.Config, params *workload.Params) error {
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, _ := strings.Cut(kv, "=")
		switch key {
		case "placement":
			switch val {
			case "ft", "first-touch":
				cfg.Placement = mempolicy.FirstTouch
				cfg.IgnorePlacement = false
			case "rr", "round-robin":
				cfg.Placement = mempolicy.RoundRobin
				cfg.IgnorePlacement = true
			default:
				return fmt.Errorf("placement=%q (want ft or rr)", val)
			}
		case "migrate":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("migrate=%q: %v", val, err)
			}
			cfg.MigrationThreshold = n
		case "ppn":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("ppn=%q: %v", val, err)
			}
			cfg.ProcsPerNode = n
		case "procs":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("procs=%q: %v", val, err)
			}
			cfg.Procs = n
		case "variant":
			params.Variant = val
		case "prefetch":
			params.Prefetch = true
		case "barrier":
			switch val {
			case "tournament", "":
				params.Barrier = synchro.BarrierTournament
			case "central", "centralized":
				params.Barrier = synchro.BarrierCentralized
			case "fetchop":
				params.Barrier = synchro.BarrierFetchOp
			default:
				return fmt.Errorf("barrier=%q", val)
			}
		case "lock":
			alg, err := lockAlg(val)
			if err != nil {
				return err
			}
			params.Lock = alg
		default:
			return fmt.Errorf("unknown spec key %q", key)
		}
	}
	return nil
}

func lockAlg(val string) (synchro.LockAlgorithm, error) {
	switch val {
	case "llsc", "ticket", "":
		return synchro.LockTicketLLSC, nil
	case "fetchop":
		return synchro.LockTicketFetchOp, nil
	case "array":
		return synchro.LockArray, nil
	}
	return 0, fmt.Errorf("lock=%q", val)
}
