package main

import (
	"testing"

	"origin2000/internal/metrics"
)

// TestDiffExactAttribution is the PR's acceptance criterion for origin-diff:
// comparing a first-touch FFT run against a round-robin one must produce a
// component breakdown whose total equals the measured virtual-time delta
// exactly — not approximately.
func TestDiffExactAttribution(t *testing.T) {
	base := runBase{appName: "FFT", procs: 8, scale: 64, seed: 42}
	a, err := runSpec("placement=ft", base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runSpec("placement=rr", base)
	if err != nil {
		t.Fatal(err)
	}
	r := metrics.Diff(a, b)
	if r.Delta == 0 {
		t.Fatal("first-touch and round-robin runs have identical elapsed time; the comparison is vacuous")
	}
	if got := r.ComponentTotal(); got != r.Delta {
		t.Errorf("ComponentTotal() = %d, want exactly Delta = %d", got, r.Delta)
	}
	if len(r.Epochs) == 0 {
		t.Errorf("no aligned epochs (note: %q); FFT runs the same barrier structure under both placements", r.EpochNote)
	}
	if len(r.Pages) == 0 || len(r.Syncs) == 0 {
		t.Errorf("attribution tables empty: pages=%d syncs=%d", len(r.Pages), len(r.Syncs))
	}
	// Round-robin on FFT costs time through remote misses; the memory
	// component should carry most of the delta.
	var mem metrics.Component
	for _, c := range r.Components {
		if c.Name == "memory stall" {
			mem = c
		}
	}
	if r.Delta > 0 && mem.Delta <= 0 {
		t.Errorf("expected the delta to be memory-driven, got components %+v", r.Components)
	}
}

// TestApplySpecRejectsUnknownKeys pins spec parsing errors.
func TestApplySpecRejectsUnknownKeys(t *testing.T) {
	base := runBase{appName: "FFT", procs: 4, scale: 64, seed: 42}
	if _, err := runSpec("bogus=1", base); err == nil {
		t.Error("unknown spec key accepted")
	}
	if _, err := runSpec("placement=diagonal", base); err == nil {
		t.Error("bad placement value accepted")
	}
}
