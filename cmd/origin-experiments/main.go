// Command origin-experiments regenerates the paper's tables and figures on
// the simulated machine.
//
// Usage:
//
//	origin-experiments [-run name] [-scale N] [-cachescale N] [-procs list] [-steps N] [-full]
//
// -run selects one experiment (table1, table2, table3, fig2, fig3, fig4,
// fig5-8, fig9, fig10, sec61, sec63, sec71, sec72, all). -scale divides
// problem sizes (default 8); -cachescale divides the 4MB cache by the same
// factor unless overridden; -full runs the paper's input sizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"origin2000/internal/experiments"
)

func main() {
	var (
		name       = flag.String("run", "all", "experiment to run: "+strings.Join(experiments.Names(), ", "))
		scale      = flag.Int("scale", 8, "divide problem sizes by this factor")
		cacheScale = flag.Int("cachescale", 0, "divide the cache by this factor (default: same as -scale)")
		procsList  = flag.String("procs", "", "comma-separated processor counts (default: the paper's)")
		steps      = flag.Int("steps", 0, "override timesteps/frames (0 = app defaults)")
		seed       = flag.Int64("seed", 42, "input generation seed")
		full       = flag.Bool("full", false, "run at the paper's input sizes (expensive)")
	)
	flag.Parse()

	s := experiments.Scale{Div: *scale, CacheDiv: *cacheScale, Steps: *steps, Seed: *seed}
	if s.CacheDiv == 0 {
		s.CacheDiv = s.Div
	}
	if *full {
		s.Div, s.CacheDiv = 1, 1
	}
	if *procsList != "" {
		for _, tok := range strings.Split(*procsList, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "bad -procs entry %q\n", tok)
				os.Exit(2)
			}
			s.Procs = append(s.Procs, v)
		}
	}
	se := experiments.NewSession(s)
	fmt.Printf("origin2000 experiments: %s (size scale 1/%d, cache scale 1/%d)\n\n",
		*name, se.Scale.Div, se.Scale.CacheDiv)
	if err := experiments.Run(*name, se, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
