// Command origin-explain runs one application — or the whole study — with
// the per-block sharing-pattern classifier enabled and prints a "why
// doesn't it scale" report: the sharing-pattern census (read-only, private,
// migratory, producer-consumer, widely-shared), the exact miss-cause
// decomposition with coherence misses split into true vs false sharing,
// the false-sharing suspects with padding/placement advice, the home-node
// remote-miss distribution with its hotspot index, and a one-line verdict
// naming the dominant scaling limiter.
//
// Usage:
//
//	origin-explain -app Ocean [-procs 32] [-size 0] [-variant ""] [-scale 8]
//	               [-steps N] [-seed 42] [-prefetch] [-top 10] [-json FILE]
//	origin-explain -all [-procs 32] ...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"origin2000/internal/core"
	"origin2000/internal/experiments"
	"origin2000/internal/perf"
	"origin2000/internal/scenario"
	"origin2000/internal/sharing"
	"origin2000/internal/workload"
)

func main() {
	var (
		appName  = flag.String("app", "Ocean", "application name (origin-run -list)")
		all      = flag.Bool("all", false, "explain every application in the study")
		procs    = flag.Int("procs", 32, "processor count")
		size     = flag.Int("size", 0, "problem size in app units (0 = basic size)")
		variant  = flag.String("variant", "", "algorithm variant")
		scale    = flag.Int("scale", 8, "divide problem sizes and cache by this factor")
		steps    = flag.Int("steps", 0, "timesteps/frames (0 = app default)")
		seed     = flag.Int64("seed", 42, "input seed")
		prefetch = flag.Bool("prefetch", false, "enable remote-data prefetching")
		top      = flag.Int("top", 10, "rows per report table")
		jsonOut  = flag.String("json", "", "also write the reports as JSON (app name -> report)")
		scenF    = flag.String("scenario", "", "machine scenario: a preset name or a spec .json file; empty = the default Origin machine")
	)
	flag.Parse()

	var apps []workload.App
	if *all {
		apps = experiments.Apps()
	} else {
		app := experiments.AppByName(*appName)
		if app == nil {
			fmt.Fprintf(os.Stderr, "origin-explain: unknown app %q; see origin-run -list\n", *appName)
			os.Exit(2)
		}
		apps = []workload.App{app}
	}

	spec, err := scenario.Load(*scenF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "origin-explain:", err)
		os.Exit(2)
	}
	if err := spec.Validate(*procs); err != nil {
		fmt.Fprintln(os.Stderr, "origin-explain:", err)
		os.Exit(2)
	}
	if !spec.IsDefault() {
		fmt.Printf("scenario %s [%s]: %s\n\n", spec.Name, spec.Hash(), spec.Describe())
	}
	s := experiments.Scale{Div: *scale, CacheDiv: *scale, Steps: *steps, Seed: *seed, Scenario: &spec}
	reports := make(map[string]*sharing.Report, len(apps))
	for _, app := range apps {
		r, elapsed, err := explainOne(s, app, *procs, *size, *variant, *prefetch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "origin-explain: %s: %v\n", app.Name(), err)
			os.Exit(1)
		}
		reports[app.Name()] = r
		printReport(os.Stdout, app.Name(), *procs, *scale, elapsed, r, *top)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err == nil {
			enc := json.NewEncoder(f)
			enc.SetIndent("", " ")
			err = enc.Encode(reports)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "origin-explain:", err)
			os.Exit(1)
		}
	}
}

// explainOne runs app once with the sharing classifier on and returns its
// report (top tables unbounded; printing applies the display cut).
func explainOne(s experiments.Scale, app workload.App, procs, size int, variant string, prefetch bool) (*sharing.Report, float64, error) {
	paperSize := size
	if paperSize == 0 {
		paperSize = app.BasicSize()
	}
	params := s.Params(app, paperSize, variant)
	params.Prefetch = prefetch

	cfg := s.Machine(procs)
	cfg.Sharing.Enabled = true
	m := core.New(cfg)
	if err := app.Run(m, params); err != nil {
		return nil, 0, err
	}
	return m.SharingReport(0), m.Elapsed().Milliseconds(), nil
}

// printReport renders one application's diagnosis.
func printReport(w io.Writer, app string, procs, scale int, elapsedMS float64, r *sharing.Report, top int) {
	fmt.Fprintf(w, "== %s at %d processors (scale 1/%d): %.3f ms simulated ==\n",
		app, procs, scale, elapsedMS)
	fmt.Fprintf(w, "%d blocks touched; misses local=%d remote-clean=%d remote-dirty=%d upgrades=%d\n",
		r.Blocks, r.Misses[0], r.Misses[1], r.Misses[2], r.Misses[3])

	section := func(title string, rows [][]string) {
		if len(rows) <= 1 {
			return
		}
		fmt.Fprintf(w, "\n%s\n%s", title, perf.Table(rows))
	}
	section("Sharing patterns", r.PatternRows())
	section("Miss causes (coherence split exactly)", r.SplitRows())
	section("Hottest blocks", r.TopBlockRows(top))
	section("False-sharing suspects", r.SuspectRows(top))
	section("Remote misses by home node", r.NodeRows())
	section("Hottest pages", r.PageRows(top))
	for _, b := range r.Suspects {
		if b.Advice != "" {
			fmt.Fprintf(w, "\nadvice for block %#x: %s\n", b.Block, b.Advice)
			break
		}
	}
	fmt.Fprintf(w, "\nhome imbalance index: %.2f (1.0 = balanced)\n", r.Imbalance)
	fmt.Fprintf(w, "verdict: %s\n\n", r.Verdict)
}
