// Command origin-latency reproduces the paper's Table 1: local and remote
// read-miss latencies for the five CC-NUMA machine presets, measured with
// pointer-probe microbenchmarks on the simulator.
package main

import (
	"fmt"
	"os"

	"origin2000/internal/experiments"
)

func main() {
	if err := experiments.Table1(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
