// Command origin-run executes one application on the simulated machine and
// prints its speedup and execution-time breakdown.
//
// Usage:
//
//	origin-run -app FFT [-procs 64] [-size 1048576] [-variant ""] [-prefetch]
//	           [-scale 8] [-breakdown] [-ppn 2] [-mapping linear|random|gray|split]
//	           [-engine serial|parallel] [-workers 0] [-hostprof hostprof.json]
//	           [-checkpoint-every 1ms] [-checkpoint-dir checkpoints]
//	origin-run -resume checkpoints/ckpt-000002.originckpt [-engine parallel]
//	origin-run -bisect checkpoints [-fault-drop-inval N]
//
// -checkpoint-every captures an originckpt/v1 snapshot of the whole machine
// at each quiescent window boundary on the given virtual-time grid.
// -resume replays the run deterministically to the snapshot's quiescent
// point, proves byte-equality of the live state against the recorded state,
// and continues — producing output identical to the uninterrupted run.
// -bisect audits a directory of checkpoints for coherence corruption,
// binary-searches for the first bad window, and replays it with the online
// checker to pinpoint the fault. See DESIGN.md §13.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"origin2000/internal/core"
	"origin2000/internal/experiments"
	"origin2000/internal/perf"
	"origin2000/internal/scenario"
	"origin2000/internal/sim"
	"origin2000/internal/snapshot"
	"origin2000/internal/topology"
	"origin2000/internal/trace"
)

func main() {
	var (
		appName   = flag.String("app", "FFT", "application name (see -list)")
		list      = flag.Bool("list", false, "list applications and variants")
		procs     = flag.Int("procs", 64, "processor count")
		size      = flag.Int("size", 0, "problem size in app units (0 = basic size)")
		variant   = flag.String("variant", "", "algorithm variant")
		prefetch  = flag.Bool("prefetch", false, "enable remote-data prefetching")
		scale     = flag.Int("scale", 8, "divide problem sizes and cache by this factor")
		steps     = flag.Int("steps", 0, "timesteps/frames (0 = app default)")
		seed      = flag.Int64("seed", 42, "input seed")
		breakdown = flag.Bool("breakdown", false, "print the per-processor breakdown figure")
		arrays    = flag.Bool("arrays", false, "attribute misses to named allocations (the tooling the paper wished the Origin had)")
		phases    = flag.Bool("phases", false, "print the per-phase time breakdown (instrumented apps)")
		ppn       = flag.Int("ppn", 2, "processors per node (Section 7.2)")
		mapping   = flag.String("mapping", "linear", "process mapping: linear, random, gray, split")
		traceOut  = flag.String("trace", "", "trace the run and write Perfetto JSON here (see origin-trace for more control)")
		hostprofF = flag.String("hostprof", "", "profile the engine's host time and write a Perfetto timeline here (parallel engine; schedule-neutral)")
		engine    = flag.String("engine", "serial", "execution engine: serial, or parallel (bit-identical, faster wall clock)")
		workers   = flag.Int("workers", 0, "host workers for -engine=parallel (0 = GOMAXPROCS)")
		window    = flag.String("window", "fixed", "window policy: fixed, fixed:<dur>, adaptive, adaptive:<dur>")
		ckptEvery = flag.String("checkpoint-every", "", "capture an originckpt snapshot every virtual duration (e.g. 1ms, 100us)")
		ckptDir   = flag.String("checkpoint-dir", "checkpoints", "directory for -checkpoint-every snapshot files")
		scenarioF = flag.String("scenario", "", "machine scenario: a preset name (origin, mesh, fattree, limited, ...) or a spec .json file; empty = the default Origin machine")
		resumeF   = flag.String("resume", "", "resume from an originckpt file: replay to its quiescent point, prove state equality, continue")
		bisectF   = flag.String("bisect", "", "bisect a directory of checkpoints to the first window that breaks coherence")
		faultDrop = flag.Int("fault-drop-inval", 0, "fault injection: silently drop the Nth invalidation the directory sends (demo for -bisect)")
	)
	flag.Parse()

	if *list {
		for _, a := range experiments.Apps() {
			fmt.Printf("%-16s unit=%-12s basic=%-8d variants=%q\n",
				a.Name(), a.Unit(), a.BasicSize(), a.Variants())
		}
		return
	}
	var every sim.Time
	if *ckptEvery != "" {
		d, err := time.ParseDuration(*ckptEvery)
		if err != nil || d <= 0 {
			fmt.Fprintf(os.Stderr, "bad -checkpoint-every %q (want a positive Go duration like 1ms)\n", *ckptEvery)
			os.Exit(2)
		}
		every = sim.Time(d.Nanoseconds()) * sim.Nanosecond
	}
	if *bisectF != "" {
		runBisect(*bisectF, *faultDrop)
		return
	}
	if *resumeF != "" {
		runResume(*resumeF, *scenarioF, *engine, *workers, every, *ckptDir)
		return
	}
	spec, err := scenario.Load(*scenarioF)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	app := experiments.AppByName(*appName)
	if app == nil {
		fmt.Fprintf(os.Stderr, "unknown app %q; use -list\n", *appName)
		os.Exit(2)
	}
	if *engine != "serial" && *engine != "parallel" {
		fmt.Fprintf(os.Stderr, "unknown engine %q (serial or parallel)\n", *engine)
		os.Exit(2)
	}
	if _, _, _, err := core.ParseWindowSpec(*window); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	s := experiments.Scale{Div: *scale, CacheDiv: *scale, Steps: *steps, Seed: *seed,
		Engine: *engine, Workers: *workers, Window: *window, Scenario: &spec}
	if err := spec.Validate(*procs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	se := experiments.NewSession(s)
	paperSize := *size
	if paperSize == 0 {
		paperSize = app.BasicSize()
	}
	params := se.Scale.Params(app, paperSize, *variant)
	params.Prefetch = *prefetch

	cfg := se.Scale.Machine(*procs)
	cfg.ProcsPerNode = *ppn
	switch strings.ToLower(*mapping) {
	case "linear", "":
	case "random":
		cfg.Mapping = topology.Random(*procs, *seed)
	case "gray":
		cfg.Mapping = topology.GrayPairs(*procs, cfg.ProcsPerNode, cfg.NodesPerRouter)
	case "split":
		cfg.Mapping = topology.SplitPairs(*procs)
	default:
		fmt.Fprintf(os.Stderr, "unknown mapping %q\n", *mapping)
		os.Exit(2)
	}

	seq, err := se.Sequential(app, paperSize)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sequential run:", err)
		os.Exit(1)
	}
	if *traceOut != "" {
		cfg.Trace = trace.Options{Enabled: true, Lossless: true}
	}
	if *hostprofF != "" {
		cfg.HostProf = true
	}
	if every > 0 {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "checkpoint dir:", err)
			os.Exit(1)
		}
		cfg.Checkpoint.Every = every
		cfg.Checkpoint.Dir = *ckptDir
		cfg.Checkpoint.Spec = se.Scale.RunSpec(app, params)
	}
	m := core.New(cfg)
	if *arrays {
		m.EnableArrayStats()
	}
	if *faultDrop > 0 {
		n := 0
		m.FaultDropInvalidation(func(block uint64, proc int) bool {
			n++
			return n == *faultDrop
		})
	}
	if err := app.Run(m, params); err != nil {
		fmt.Fprintln(os.Stderr, "parallel run:", err)
		os.Exit(1)
	}
	r := m.Result()
	avg := r.Average()
	busy, mem, sync := avg.Fractions()
	fmt.Printf("%s size=%d variant=%q procs=%d (scale 1/%d)\n",
		app.Name(), params.Size, params.Variant, *procs, se.Scale.Div)
	if !spec.IsDefault() {
		fmt.Printf("scenario:   %s [%s]  (%s)\n", spec.Name, spec.Hash(), spec.Describe())
	}
	fmt.Printf("sequential: %10.3f ms\n", seq.Milliseconds())
	fmt.Printf("parallel:   %10.3f ms   speedup %.1f   efficiency %.1f%%\n",
		m.Elapsed().Milliseconds(),
		perf.Speedup(seq, m.Elapsed()),
		100*perf.Efficiency(seq, m.Elapsed(), *procs))
	fmt.Printf("breakdown:  busy %.1f%%  memory %.1f%%  sync %.1f%%\n", 100*busy, 100*mem, 100*sync)
	c := r.Counters
	fmt.Printf("misses:     local %d  remote-clean %d  remote-dirty %d  (hits %d)\n",
		c.LocalMisses, c.RemoteClean, c.RemoteDirty, c.Hits)
	fmt.Printf("traffic:    invalidations %d  writebacks %d  prefetches %d  fetch&ops %d\n",
		c.Invalidations, c.Writebacks, c.Prefetches, c.FetchOps)
	fmt.Printf("contention: hub queueing %.3f ms  memory queueing %.3f ms\n",
		r.HubQueued.Milliseconds(), r.MemQueued.Milliseconds())
	if every > 0 {
		fmt.Printf("checkpoints: %d files -> %s (resume with -resume <file>, audit with -bisect %s)\n",
			len(m.Checkpoints()), *ckptDir, *ckptDir)
	}
	if node, q := r.HottestHub(); node >= 0 && q > 0 {
		fmt.Printf("            hottest hub: node %d (%.3f ms queued)\n", node, q.Milliseconds())
	}
	if *traceOut != "" {
		tr := m.Tracer()
		f, err := os.Create(*traceOut)
		if err == nil {
			err = tr.WritePerfetto(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace export:", err)
			os.Exit(1)
		}
		fmt.Printf("trace:      %d events -> %s (open at ui.perfetto.dev)\n",
			tr.EventsRecorded(), *traceOut)
		fmt.Println()
		fmt.Println(perf.Table(tr.PageReport(10)))
		fmt.Println(perf.Table(tr.SyncReport(10)))
		fmt.Println(perf.Table(tr.LatencyReport()))
	}
	if *hostprofF != "" {
		hp := m.HostProf()
		f, err := os.Create(*hostprofF)
		if err == nil {
			err = hp.WritePerfetto(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "hostprof export:", err)
			os.Exit(1)
		}
		rep := hp.Report()
		fmt.Printf("hostprof:   host timeline -> %s (open at ui.perfetto.dev)\n", *hostprofF)
		fmt.Println()
		fmt.Println(perf.Table(rep.Rows()))
		fmt.Println(perf.Table(rep.LaneRows()))
		fmt.Println(perf.Table(rep.SummaryRows()))
	}
	if *breakdown {
		fmt.Println()
		fmt.Println(perf.Continuum(r.PerProc, 64, 12))
	}
	if *arrays {
		fmt.Println()
		fmt.Println(perf.Table(m.ArrayReport()))
	}
	if *phases {
		ph := m.PhaseBreakdowns()
		if len(ph) == 0 {
			fmt.Println()
			fmt.Println("(no phase labels: this application is not phase-instrumented)")
		} else {
			rows := [][]string{{"Phase", "Busy (ms)", "Memory (ms)", "Sync (ms)", "Share"}}
			var total float64
			for _, b := range ph {
				total += float64(b.Total())
			}
			for _, b := range ph {
				rows = append(rows, []string{
					b.Name,
					fmt.Sprintf("%.2f", b.Busy.Milliseconds()),
					fmt.Sprintf("%.2f", b.Memory.Milliseconds()),
					fmt.Sprintf("%.2f", b.Sync.Milliseconds()),
					fmt.Sprintf("%.1f%%", 100*float64(b.Total())/total),
				})
			}
			fmt.Println()
			fmt.Println(perf.Table(rows))
		}
	}
}

// summarize prints the post-run breakdown shared by the resume path.
func summarize(m *core.Machine) {
	r := m.Result()
	avg := r.Average()
	busy, mem, sync := avg.Fractions()
	fmt.Printf("parallel:   %10.3f ms\n", m.Elapsed().Milliseconds())
	fmt.Printf("breakdown:  busy %.1f%%  memory %.1f%%  sync %.1f%%\n", 100*busy, 100*mem, 100*sync)
	c := r.Counters
	fmt.Printf("misses:     local %d  remote-clean %d  remote-dirty %d  (hits %d)\n",
		c.LocalMisses, c.RemoteClean, c.RemoteDirty, c.Hits)
	fmt.Printf("traffic:    invalidations %d  writebacks %d  prefetches %d  fetch&ops %d\n",
		c.Invalidations, c.Writebacks, c.Prefetches, c.FetchOps)
}

// runResume implements -resume: decode the snapshot, rebuild the exact
// machine configuration and workload parameters its header records, replay
// to the recorded quiescent point under the requested engine, prove state
// equality, and run to completion. The window policy always comes from the
// snapshot (the quiescent-sequence numbering depends on it); the engine and
// worker count may be changed freely — results are bit-identical.
func runResume(path, scenarioArg, engine string, workers int, every sim.Time, ckptDir string) {
	sn, err := snapshot.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "resume:", err)
		os.Exit(1)
	}
	spec := sn.Header.Spec
	app := experiments.AppByName(spec.App)
	if app == nil {
		fmt.Fprintf(os.Stderr, "resume: snapshot names unknown app %q\n", spec.App)
		os.Exit(1)
	}
	params := experiments.SpecParams(spec)
	var cfg core.Config
	if err := json.Unmarshal(sn.Header.Config, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "resume: snapshot header config:", err)
		os.Exit(1)
	}
	cfg.Checkpoint = core.CheckpointConfig{Spec: spec}
	cfg.Engine = engine
	cfg.Workers = workers
	// An explicit -scenario on resume overrides the machine recorded in the
	// header; ValidateResume refuses if it doesn't match the snapshot's.
	if scenarioArg != "" {
		sc, err := scenario.Load(scenarioArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "resume:", err)
			os.Exit(1)
		}
		cfg.Scenario = &sc
	}
	if every > 0 {
		if err := os.MkdirAll(ckptDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "checkpoint dir:", err)
			os.Exit(1)
		}
		cfg.Checkpoint.Every = every
		cfg.Checkpoint.Dir = ckptDir
	}
	s := experiments.Scale{Div: spec.Div, CacheDiv: spec.CacheDiv, Steps: spec.Steps, Seed: spec.Seed,
		Engine: engine, Workers: workers}
	var m *core.Machine
	s.OnMachine = func(mm *core.Machine) { m = mm }
	fmt.Printf("resuming %s size=%d procs=%d from %s (quiescent seq %d, t=%v)\n",
		spec.App, spec.Size, sn.Header.Procs, path, sn.Header.QuiesSeq, sn.Header.VirtualTime)
	if _, err := s.ResumeConfig(app, cfg, params, sn); err != nil {
		fmt.Fprintln(os.Stderr, "resume:", err)
		os.Exit(1)
	}
	fmt.Printf("state proof: live replay matches recorded state at seq %d — resumed\n", sn.Header.QuiesSeq)
	summarize(m)
	if every > 0 {
		fmt.Printf("checkpoints: %d files -> %s\n", len(m.Checkpoints()), ckptDir)
	}
}

// runBisect implements -bisect: read every checkpoint in the directory,
// audit each serialized state for directory/cache disagreement, binary-
// search for the first corrupt one, and replay that window with the online
// coherence checker to pinpoint the fault. Exits 1 when a fault is found
// (so scripts can branch on it), 0 when all checkpoints audit clean.
func runBisect(dir string, faultDrop int) {
	files, err := filepath.Glob(filepath.Join(dir, "ckpt-*.originckpt"))
	if err != nil || len(files) == 0 {
		fmt.Fprintf(os.Stderr, "bisect: no ckpt-*.originckpt files in %s\n", dir)
		os.Exit(2)
	}
	sort.Strings(files)
	snaps := make([]*snapshot.Snapshot, len(files))
	for i, f := range files {
		if snaps[i], err = snapshot.ReadFile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bisect: %s: %v\n", f, err)
			os.Exit(1)
		}
	}
	spec := snaps[len(snaps)-1].Header.Spec
	app := experiments.AppByName(spec.App)
	if app == nil {
		fmt.Fprintf(os.Stderr, "bisect: snapshots name unknown app %q\n", spec.App)
		os.Exit(1)
	}
	params := experiments.SpecParams(spec)
	s := experiments.Scale{Div: spec.Div, CacheDiv: spec.CacheDiv, Steps: spec.Steps, Seed: spec.Seed}
	if faultDrop > 0 {
		// The confirming replay re-executes the run, so a fault seeded at
		// capture time must be seeded again to reproduce.
		s.OnMachine = func(m *core.Machine) {
			n := 0
			m.FaultDropInvalidation(func(block uint64, proc int) bool {
				n++
				return n == faultDrop
			})
		}
	}
	fmt.Printf("bisecting %d checkpoints of %s size=%d procs=%d\n",
		len(snaps), spec.App, spec.Size, snaps[len(snaps)-1].Header.Procs)
	rep, err := s.BisectViolation(app, snaps[len(snaps)-1].Header.Procs, params, snaps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bisect:", err)
		os.Exit(1)
	}
	if rep.FirstBad < 0 {
		fmt.Println("all checkpoints audit clean; no coherence fault found")
		return
	}
	fmt.Printf("first corrupt checkpoint: %s\n", files[rep.FirstBad])
	fmt.Printf("fault window: (%v, %v]  (quiescent seq %d..%d)\n",
		rep.WindowStart, rep.WindowEnd, rep.SeqStart, rep.SeqEnd)
	for _, a := range rep.Audit {
		fmt.Printf("  audit:   block %-8d proc %-3d %s\n", a.Block, a.Proc, a.Msg)
	}
	for _, v := range rep.Violations {
		fmt.Printf("  checker: t=%-14v proc %-3d block %-8d %s\n", v.At, v.Proc, v.Block, v.Msg)
	}
	if len(rep.Violations) == 0 {
		fmt.Println("  (checker replay found no violation inside the window; the corruption")
		fmt.Println("   predates detection — inspect the audit findings above)")
	}
	os.Exit(1)
}
