// Command origin-run executes one application on the simulated machine and
// prints its speedup and execution-time breakdown.
//
// Usage:
//
//	origin-run -app FFT [-procs 64] [-size 1048576] [-variant ""] [-prefetch]
//	           [-scale 8] [-breakdown] [-ppn 2] [-mapping linear|random|gray|split]
//	           [-engine serial|parallel] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"origin2000/internal/core"
	"origin2000/internal/experiments"
	"origin2000/internal/perf"
	"origin2000/internal/topology"
	"origin2000/internal/trace"
)

func main() {
	var (
		appName   = flag.String("app", "FFT", "application name (see -list)")
		list      = flag.Bool("list", false, "list applications and variants")
		procs     = flag.Int("procs", 64, "processor count")
		size      = flag.Int("size", 0, "problem size in app units (0 = basic size)")
		variant   = flag.String("variant", "", "algorithm variant")
		prefetch  = flag.Bool("prefetch", false, "enable remote-data prefetching")
		scale     = flag.Int("scale", 8, "divide problem sizes and cache by this factor")
		steps     = flag.Int("steps", 0, "timesteps/frames (0 = app default)")
		seed      = flag.Int64("seed", 42, "input seed")
		breakdown = flag.Bool("breakdown", false, "print the per-processor breakdown figure")
		arrays    = flag.Bool("arrays", false, "attribute misses to named allocations (the tooling the paper wished the Origin had)")
		phases    = flag.Bool("phases", false, "print the per-phase time breakdown (instrumented apps)")
		ppn       = flag.Int("ppn", 2, "processors per node (Section 7.2)")
		mapping   = flag.String("mapping", "linear", "process mapping: linear, random, gray, split")
		traceOut  = flag.String("trace", "", "trace the run and write Perfetto JSON here (see origin-trace for more control)")
		engine    = flag.String("engine", "serial", "execution engine: serial, or parallel (bit-identical, faster wall clock)")
		workers   = flag.Int("workers", 0, "host workers for -engine=parallel (0 = GOMAXPROCS)")
		window    = flag.String("window", "fixed", "window policy: fixed, fixed:<dur>, adaptive, adaptive:<dur>")
	)
	flag.Parse()

	if *list {
		for _, a := range experiments.Apps() {
			fmt.Printf("%-16s unit=%-12s basic=%-8d variants=%q\n",
				a.Name(), a.Unit(), a.BasicSize(), a.Variants())
		}
		return
	}
	app := experiments.AppByName(*appName)
	if app == nil {
		fmt.Fprintf(os.Stderr, "unknown app %q; use -list\n", *appName)
		os.Exit(2)
	}
	if *engine != "serial" && *engine != "parallel" {
		fmt.Fprintf(os.Stderr, "unknown engine %q (serial or parallel)\n", *engine)
		os.Exit(2)
	}
	if _, _, _, err := core.ParseWindowSpec(*window); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	s := experiments.Scale{Div: *scale, CacheDiv: *scale, Steps: *steps, Seed: *seed,
		Engine: *engine, Workers: *workers, Window: *window}
	se := experiments.NewSession(s)
	paperSize := *size
	if paperSize == 0 {
		paperSize = app.BasicSize()
	}
	params := se.Scale.Params(app, paperSize, *variant)
	params.Prefetch = *prefetch

	cfg := se.Scale.Machine(*procs)
	cfg.ProcsPerNode = *ppn
	switch strings.ToLower(*mapping) {
	case "linear", "":
	case "random":
		cfg.Mapping = topology.Random(*procs, *seed)
	case "gray":
		cfg.Mapping = topology.GrayPairs(*procs, cfg.ProcsPerNode, cfg.NodesPerRouter)
	case "split":
		cfg.Mapping = topology.SplitPairs(*procs)
	default:
		fmt.Fprintf(os.Stderr, "unknown mapping %q\n", *mapping)
		os.Exit(2)
	}

	seq, err := se.Sequential(app, paperSize)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sequential run:", err)
		os.Exit(1)
	}
	if *traceOut != "" {
		cfg.Trace = trace.Options{Enabled: true, Lossless: true}
	}
	m := core.New(cfg)
	if *arrays {
		m.EnableArrayStats()
	}
	if err := app.Run(m, params); err != nil {
		fmt.Fprintln(os.Stderr, "parallel run:", err)
		os.Exit(1)
	}
	r := m.Result()
	avg := r.Average()
	busy, mem, sync := avg.Fractions()
	fmt.Printf("%s size=%d variant=%q procs=%d (scale 1/%d)\n",
		app.Name(), params.Size, params.Variant, *procs, se.Scale.Div)
	fmt.Printf("sequential: %10.3f ms\n", seq.Milliseconds())
	fmt.Printf("parallel:   %10.3f ms   speedup %.1f   efficiency %.1f%%\n",
		m.Elapsed().Milliseconds(),
		perf.Speedup(seq, m.Elapsed()),
		100*perf.Efficiency(seq, m.Elapsed(), *procs))
	fmt.Printf("breakdown:  busy %.1f%%  memory %.1f%%  sync %.1f%%\n", 100*busy, 100*mem, 100*sync)
	c := r.Counters
	fmt.Printf("misses:     local %d  remote-clean %d  remote-dirty %d  (hits %d)\n",
		c.LocalMisses, c.RemoteClean, c.RemoteDirty, c.Hits)
	fmt.Printf("traffic:    invalidations %d  writebacks %d  prefetches %d  fetch&ops %d\n",
		c.Invalidations, c.Writebacks, c.Prefetches, c.FetchOps)
	fmt.Printf("contention: hub queueing %.3f ms  memory queueing %.3f ms\n",
		r.HubQueued.Milliseconds(), r.MemQueued.Milliseconds())
	if node, q := r.HottestHub(); node >= 0 && q > 0 {
		fmt.Printf("            hottest hub: node %d (%.3f ms queued)\n", node, q.Milliseconds())
	}
	if *traceOut != "" {
		tr := m.Tracer()
		f, err := os.Create(*traceOut)
		if err == nil {
			err = tr.WritePerfetto(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace export:", err)
			os.Exit(1)
		}
		fmt.Printf("trace:      %d events -> %s (open at ui.perfetto.dev)\n",
			tr.EventsRecorded(), *traceOut)
		fmt.Println()
		fmt.Println(perf.Table(tr.PageReport(10)))
		fmt.Println(perf.Table(tr.SyncReport(10)))
		fmt.Println(perf.Table(tr.LatencyReport()))
	}
	if *breakdown {
		fmt.Println()
		fmt.Println(perf.Continuum(r.PerProc, 64, 12))
	}
	if *arrays {
		fmt.Println()
		fmt.Println(perf.Table(m.ArrayReport()))
	}
	if *phases {
		ph := m.PhaseBreakdowns()
		if len(ph) == 0 {
			fmt.Println()
			fmt.Println("(no phase labels: this application is not phase-instrumented)")
		} else {
			rows := [][]string{{"Phase", "Busy (ms)", "Memory (ms)", "Sync (ms)", "Share"}}
			var total float64
			for _, b := range ph {
				total += float64(b.Total())
			}
			for _, b := range ph {
				rows = append(rows, []string{
					b.Name,
					fmt.Sprintf("%.2f", b.Busy.Milliseconds()),
					fmt.Sprintf("%.2f", b.Memory.Milliseconds()),
					fmt.Sprintf("%.2f", b.Sync.Milliseconds()),
					fmt.Sprintf("%.1f%%", 100*float64(b.Total())/total),
				})
			}
			fmt.Println()
			fmt.Println(perf.Table(rows))
		}
	}
}
