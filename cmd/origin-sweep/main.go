// Command origin-sweep plots parallel efficiency versus problem size for
// one application, like one panel of the paper's Figure 4/9.
//
// Usage:
//
//	origin-sweep -app Barnes [-procs 32,64,128] [-variant spatial] [-scale 8]
//	             [-warm-start checkpoints/sweep]
//
// -warm-start keeps one originckpt/v1 checkpoint per sweep configuration in
// the given directory. The first sweep captures them; later sweeps resume
// each configuration from its saved checkpoint, re-proving byte-equality of
// the replayed state against the recorded state before continuing. Because
// resume is replay-based the simulation work is re-executed either way —
// what the warm start buys is the proof: a sweep that resumes cleanly is
// guaranteed to be reproducing the checkpointed results, and a simulator
// change that alters any configuration's schedule fails its resume loudly
// instead of silently shifting the curves.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"origin2000/internal/experiments"
	"origin2000/internal/perf"
	"origin2000/internal/scenario"
	"origin2000/internal/sim"
	"origin2000/internal/snapshot"
	"origin2000/internal/workload"
)

func main() {
	var (
		appName   = flag.String("app", "Barnes", "application name")
		procsList = flag.String("procs", "32,64,128", "comma-separated processor counts")
		variant   = flag.String("variant", "", "also plot this variant against the original")
		scale     = flag.Int("scale", 8, "divide problem sizes and cache by this factor")
		seed      = flag.Int64("seed", 42, "input seed")
		scenarios = flag.String("scenario", "", "comma-separated machine scenarios to sweep side by side (preset names or spec .json files); empty = the default Origin machine")
		warmDir   = flag.String("warm-start", "", "directory of per-configuration checkpoints: capture on first sweep, resume (with state proof) on later ones")
	)
	flag.Parse()

	app := experiments.AppByName(*appName)
	if app == nil {
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *appName)
		os.Exit(2)
	}
	var procs []int
	for _, tok := range strings.Split(*procsList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -procs entry %q\n", tok)
			os.Exit(2)
		}
		procs = append(procs, v)
	}
	var specs []scenario.Spec
	for _, tok := range strings.Split(*scenarios, ",") {
		sc, err := scenario.Load(strings.TrimSpace(tok))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		specs = append(specs, sc)
	}
	var warm *warmStarter
	if *warmDir != "" {
		if err := os.MkdirAll(*warmDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "warm-start dir:", err)
			os.Exit(1)
		}
		warm = &warmStarter{dir: *warmDir}
	}

	variants := []string{""}
	if *variant != "" {
		variants = append(variants, *variant)
	}
	markers := []byte{'a', 'b', 'c', 'A', 'B', 'C'}
	var series []perf.Series
	mi := 0
	for si := range specs {
		sc := specs[si]
		se := experiments.NewSession(experiments.Scale{Div: *scale, CacheDiv: *scale, Seed: *seed, Scenario: &sc})
		for _, v := range variants {
			for _, p := range procs {
				if p > app.MaxProcs() {
					continue
				}
				if err := sc.Validate(p); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				label := fmt.Sprintf("%d procs", p)
				if v != "" {
					label += " " + v
				}
				if len(specs) > 1 {
					label += " @" + sc.Name
				}
				s := perf.Series{Label: label, Marker: markers[mi%len(markers)]}
				mi++
				for _, size := range app.SweepSizes() {
					var eff float64
					var err error
					if warm != nil {
						eff, err = warm.efficiency(se, app, p, size, v)
					} else {
						eff, _, err = se.Efficiency(app, p, size, v)
					}
					if err != nil {
						fmt.Fprintln(os.Stderr, "error:", err)
						os.Exit(1)
					}
					s.X = append(s.X, float64(se.Scale.Size(app, size)))
					s.Y = append(s.Y, eff)
				}
				series = append(series, s)
			}
		}
	}
	fmt.Printf("%s efficiency vs problem size (x = %s, scale 1/%d)\n",
		app.Name(), app.Unit(), *scale)
	for _, sc := range specs {
		if len(specs) > 1 || !sc.IsDefault() {
			fmt.Printf("scenario %s [%s]: %s\n", sc.Name, sc.Hash(), sc.Describe())
		}
	}
	fmt.Println()
	fmt.Println(perf.Curves(series, 64, 14, 1.2))
	if warm != nil {
		fmt.Printf("warm-start: %d configurations resumed with state proofs, %d captured fresh -> %s\n",
			warm.resumed, warm.fresh, warm.dir)
	}
}

// warmStarter resumes sweep configurations from per-config checkpoints,
// capturing one for any configuration that lacks it.
type warmStarter struct {
	dir            string
	resumed, fresh int
}

// efficiency measures one sweep point. With a matching checkpoint on disk
// the run resumes from it — re-proving the replayed state byte-equal to the
// recorded state at the checkpoint's quiescent point — and a divergence
// (the simulator no longer reproduces the checkpointed run) falls back to a
// fresh capture after a loud warning.
func (w *warmStarter) efficiency(se *experiments.Session, app workload.App, procs, paperSize int, variant string) (float64, error) {
	s := se.Scale
	params := s.Params(app, paperSize, variant)
	seq, err := se.Sequential(app, paperSize)
	if err != nil {
		return 0, err
	}
	spec := s.RunSpec(app, params)
	vtag := variant
	if vtag == "" {
		vtag = "orig"
	}
	// Scenario-scoped filename: machines never share warm-start checkpoints.
	// (Header spec equality below would catch a collision anyway, but a
	// shared name would make two scenarios endlessly recapture each other's.)
	mtag := ""
	if s.Scenario != nil && !s.Scenario.IsDefault() {
		mtag = "-" + s.Scenario.Hash()
	}
	path := filepath.Join(w.dir, fmt.Sprintf("sweep-%s-%s-p%d-s%d-d%d%s.originckpt",
		app.Name(), vtag, procs, params.Size, s.Div, mtag))
	if sn, rerr := snapshot.ReadFile(path); rerr == nil && sn.Header.Spec == spec && sn.Header.Procs == procs {
		r, resErr := s.ResumeRun(app, procs, params, sn)
		if resErr == nil {
			w.resumed++
			return perf.Efficiency(seq, r.Elapsed, procs), nil
		}
		var div *snapshot.DivergenceError
		if errors.As(resErr, &div) {
			fmt.Fprintf(os.Stderr, "warm-start: %s: %v — the simulator no longer reproduces this checkpoint; recapturing\n", path, resErr)
		} else {
			fmt.Fprintf(os.Stderr, "warm-start: %s: %v; recapturing\n", path, resErr)
		}
	}
	// Cold path: run once with capture enabled, keeping only the last
	// quiescent snapshot. The grid is sized from the sequential time so a
	// handful of capture points land inside the parallel run.
	every := seq / sim.Time(4*procs)
	if every <= 0 {
		every = 1
	}
	var last *snapshot.Snapshot
	cfg := s.Machine(procs)
	cfg.Checkpoint.Every = every
	cfg.Checkpoint.Spec = spec
	cfg.Checkpoint.Sink = func(sn *snapshot.Snapshot) error {
		last = sn
		return nil
	}
	r, err := s.RunConfig(app, cfg, params)
	if err != nil {
		return 0, err
	}
	w.fresh++
	if last != nil {
		if werr := last.WriteFile(path); werr != nil {
			fmt.Fprintf(os.Stderr, "warm-start: save %s: %v\n", path, werr)
		}
	}
	return perf.Efficiency(seq, r.Elapsed, procs), nil
}
