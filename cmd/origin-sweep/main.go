// Command origin-sweep plots parallel efficiency versus problem size for
// one application, like one panel of the paper's Figure 4/9.
//
// Usage:
//
//	origin-sweep -app Barnes [-procs 32,64,128] [-variant spatial] [-scale 8]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"origin2000/internal/experiments"
	"origin2000/internal/perf"
)

func main() {
	var (
		appName   = flag.String("app", "Barnes", "application name")
		procsList = flag.String("procs", "32,64,128", "comma-separated processor counts")
		variant   = flag.String("variant", "", "also plot this variant against the original")
		scale     = flag.Int("scale", 8, "divide problem sizes and cache by this factor")
		seed      = flag.Int64("seed", 42, "input seed")
	)
	flag.Parse()

	app := experiments.AppByName(*appName)
	if app == nil {
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *appName)
		os.Exit(2)
	}
	var procs []int
	for _, tok := range strings.Split(*procsList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -procs entry %q\n", tok)
			os.Exit(2)
		}
		procs = append(procs, v)
	}
	se := experiments.NewSession(experiments.Scale{Div: *scale, CacheDiv: *scale, Seed: *seed})

	variants := []string{""}
	if *variant != "" {
		variants = append(variants, *variant)
	}
	markers := []byte{'a', 'b', 'c', 'A', 'B', 'C'}
	var series []perf.Series
	mi := 0
	for _, v := range variants {
		for _, p := range procs {
			if p > app.MaxProcs() {
				continue
			}
			label := fmt.Sprintf("%d procs", p)
			if v != "" {
				label += " " + v
			}
			s := perf.Series{Label: label, Marker: markers[mi%len(markers)]}
			mi++
			for _, size := range app.SweepSizes() {
				eff, _, err := se.Efficiency(app, p, size, v)
				if err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
					os.Exit(1)
				}
				s.X = append(s.X, float64(se.Scale.Size(app, size)))
				s.Y = append(s.Y, eff)
			}
			series = append(series, s)
		}
	}
	fmt.Printf("%s efficiency vs problem size (x = %s, scale 1/%d)\n\n",
		app.Name(), app.Unit(), se.Scale.Div)
	fmt.Println(perf.Curves(series, 64, 14, 1.2))
}
