// Command origin-trace runs one application with the virtual-time event
// tracer enabled and exports the run: a Perfetto/Chrome trace-event JSON
// (load it at ui.perfetto.dev), an optional compact binary event stream, and
// the online attribution tables — per-page and per-block sharing heatmaps,
// per-sync-object wait rankings, and latency/queueing histograms.
//
// Usage:
//
//	origin-trace -app Ocean [-procs 32] [-size 0] [-variant ""] [-scale 8]
//	             [-steps N] [-seed 42] [-prefetch] [-ring 8192] [-lossless]
//	             [-out FILE.perfetto.json] [-bin FILE.trc] [-top 10]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"origin2000/internal/core"
	"origin2000/internal/experiments"
	"origin2000/internal/perf"
	"origin2000/internal/trace"
)

func main() {
	var (
		appName  = flag.String("app", "Ocean", "application name (origin-run -list)")
		procs    = flag.Int("procs", 32, "processor count")
		size     = flag.Int("size", 0, "problem size in app units (0 = basic size)")
		variant  = flag.String("variant", "", "algorithm variant")
		scale    = flag.Int("scale", 8, "divide problem sizes and cache by this factor")
		steps    = flag.Int("steps", 0, "timesteps/frames (0 = app default)")
		seed     = flag.Int64("seed", 42, "input seed")
		prefetch = flag.Bool("prefetch", false, "enable remote-data prefetching")
		ring     = flag.Int("ring", trace.DefaultRingSize, "per-processor event ring capacity")
		lossless = flag.Bool("lossless", false, "spill full rings to memory (keep every event)")
		out      = flag.String("out", "", "Perfetto JSON output (default <app>.perfetto.json)")
		bin      = flag.String("bin", "", "also write the compact binary event stream here")
		top      = flag.Int("top", 10, "rows per attribution table")
	)
	flag.Parse()

	app := experiments.AppByName(*appName)
	if app == nil {
		fmt.Fprintf(os.Stderr, "origin-trace: unknown app %q; see origin-run -list\n", *appName)
		os.Exit(2)
	}
	s := experiments.Scale{Div: *scale, CacheDiv: *scale, Steps: *steps, Seed: *seed}
	paperSize := *size
	if paperSize == 0 {
		paperSize = app.BasicSize()
	}
	params := s.Params(app, paperSize, *variant)
	params.Prefetch = *prefetch

	cfg := s.Machine(*procs)
	cfg.Trace = trace.Options{Enabled: true, RingSize: *ring, Lossless: *lossless}
	m := core.New(cfg)
	if err := app.Run(m, params); err != nil {
		fmt.Fprintln(os.Stderr, "origin-trace:", err)
		os.Exit(1)
	}
	tr := m.Tracer()
	r := m.Result()

	path := *out
	if path == "" {
		path = fmt.Sprintf("%s.perfetto.json", app.Name())
	}
	if err := writeFile(path, tr.WritePerfetto); err != nil {
		fmt.Fprintln(os.Stderr, "origin-trace:", err)
		os.Exit(1)
	}
	if *bin != "" {
		if err := writeFile(*bin, tr.WriteBinary); err != nil {
			fmt.Fprintln(os.Stderr, "origin-trace:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("%s size=%d variant=%q procs=%d (scale 1/%d): %.3f ms simulated\n",
		app.Name(), params.Size, params.Variant, *procs, *scale, m.Elapsed().Milliseconds())
	fmt.Printf("events: %d recorded, %d dropped (ring %d%s)\n",
		tr.EventsRecorded(), tr.EventsDropped(), *ring, losslessNote(*lossless))
	fmt.Printf("trace:  %s (open at ui.perfetto.dev)\n", path)
	if *bin != "" {
		fmt.Printf("binary: %s\n", *bin)
	}
	if node, q := r.HottestHub(); node >= 0 && q > 0 {
		fmt.Printf("hottest hub: node %d with %.3f ms queueing (machine total %.3f ms)\n",
			node, q.Milliseconds(), r.HubQueued.Milliseconds())
	}
	fmt.Printf("top-%d pages hold %.1f%% of remote misses\n", *top, 100*tr.RemoteMissShare(*top))

	section := func(title string, rows [][]string) {
		if len(rows) <= 1 {
			return
		}
		fmt.Printf("\n%s\n%s", title, perf.Table(rows))
	}
	section("Per-page sharing heat (worst first)", tr.PageReport(*top))
	section("Per-block sharing heat (worst first)", tr.BlockReport(*top))
	section("Synchronization wait ranking", tr.SyncReport(*top))
	section("Access latency by class", tr.LatencyReport())
	section("Queueing delay by resource", tr.QueueReport())
}

func losslessNote(on bool) string {
	if on {
		return ", lossless"
	}
	return ""
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
