// Barnes-Hut tree-building case study (the paper's Section 5): compare the
// original locking tree build against the MergeTree and Spatial
// restructurings across machine sizes, and watch the crossover — the
// restructured versions lose a little at moderate scale and win at 128
// processors, exactly the paper's Figure 10 story.
package main

import (
	"fmt"
	"log"

	origin2000 "origin2000"
)

func main() {
	app := origin2000.App("Barnes")
	const bodies = 8 << 10
	fmt.Printf("Barnes-Hut, %d bodies, one timestep; tree-build algorithms compared\n\n", bodies)
	fmt.Printf("%-8s %-22s %-12s %-24s\n", "procs", "algorithm", "elapsed", "breakdown (busy/mem/sync)")

	for _, procs := range []int{32, 64, 128} {
		for _, variant := range []string{"", "merge", "spatial"} {
			m := origin2000.NewMachine(origin2000.Origin2000Config(procs))
			err := app.Run(m, origin2000.Params{
				Size: bodies, Seed: 13, Steps: 1, Variant: variant,
			})
			if err != nil {
				log.Fatal(err)
			}
			name := variant
			if name == "" {
				name = "LockTree (original)"
			}
			avg := m.Result().Average()
			busy, mem, sync := avg.Fractions()
			fmt.Printf("%-8d %-22s %8.2fms  %3.0f%% / %3.0f%% / %3.0f%%\n",
				procs, name, m.Elapsed().Milliseconds(),
				100*busy, 100*mem, 100*sync)
		}
		fmt.Println()
	}
	fmt.Println("The locking build's share of time grows with scale; the Spatial")
	fmt.Println("build keeps it flat by eliminating both locking and write-sharing.")
}
