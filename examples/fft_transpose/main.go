// FFT transpose mapping study (the paper's Section 7.1): with a linear
// mapping and the default +1 transpose stagger, one processor of each node
// starts transposing from its node-mate — the bad case. A random mapping,
// or reordering the transpose so both processors start off-node, fixes it.
package main

import (
	"fmt"
	"log"

	origin2000 "origin2000"
)

func main() {
	app := origin2000.App("FFT")
	const points = 1 << 16
	const procs = 64
	params := origin2000.Params{Size: points, Seed: 1}

	type study struct {
		label   string
		variant string
		mapping origin2000.Mapping
	}
	cases := []study{
		{"linear mapping, +1 stagger (on-node first partner)", "", origin2000.LinearMapping(procs)},
		{"random mapping", "", origin2000.RandomMapping(procs, 7)},
		{"linear mapping, off-node transpose order", "offnode", origin2000.LinearMapping(procs)},
	}
	fmt.Printf("FFT, %d points, %d processors: staggered transpose orderings\n\n", points, procs)
	for _, c := range cases {
		cfg := origin2000.Origin2000Config(procs)
		cfg.Mapping = c.mapping
		m := origin2000.NewMachine(cfg)
		p := params
		p.Variant = c.variant
		if err := app.Run(m, p); err != nil {
			log.Fatal(err)
		}
		r := m.Result()
		fmt.Printf("%-52s %8.3f ms  (hub queueing %6.1f us)\n",
			c.label, m.Elapsed().Milliseconds(),
			1000*r.HubQueued.Milliseconds())
	}
	fmt.Println("\nPrefetching the transpose (Section 6.1):")
	for _, pre := range []bool{false, true} {
		m := origin2000.NewMachine(origin2000.Origin2000Config(procs))
		p := params
		p.Prefetch = pre
		if err := app.Run(m, p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  prefetch=%-5v %8.3f ms\n", pre, m.Elapsed().Milliseconds())
	}
}
