// Quickstart: run one application on the simulated 64-processor
// Origin2000 and print its speedup and execution-time breakdown — the
// paper's basic measurement loop in a dozen lines.
package main

import (
	"fmt"
	"log"

	origin2000 "origin2000"
)

func main() {
	app := origin2000.App("FFT")
	params := origin2000.Params{Size: 1 << 16, Seed: 1}

	// Sequential reference on a one-processor machine.
	seq := origin2000.NewMachine(origin2000.Origin2000Config(1))
	if err := app.Run(seq, params); err != nil {
		log.Fatal(err)
	}

	// Parallel run on 64 processors.
	par := origin2000.NewMachine(origin2000.Origin2000Config(64))
	if err := app.Run(par, params); err != nil {
		log.Fatal(err)
	}

	speedup := float64(seq.Elapsed()) / float64(par.Elapsed())
	avg := par.Result().Average()
	busy, mem, sync := avg.Fractions()
	fmt.Printf("FFT, %d points, 64 processors\n", params.Size)
	fmt.Printf("  sequential: %8.3f ms\n", seq.Elapsed().Milliseconds())
	fmt.Printf("  parallel:   %8.3f ms\n", par.Elapsed().Milliseconds())
	fmt.Printf("  speedup:    %8.1f   (efficiency %.0f%%)\n", speedup, 100*speedup/64)
	fmt.Printf("  breakdown:  busy %.0f%%, memory %.0f%%, sync %.0f%%\n",
		100*busy, 100*mem, 100*sync)
}
