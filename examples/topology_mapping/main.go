// Topology walkthrough: build machines at the paper's four sizes, show the
// interconnect each one gets (hypercube or hypercube modules joined by
// metarouters, Figure 1), and measure how the remote-latency distribution
// stretches with scale — the underlying reason several applications stop
// scaling past 64 processors.
package main

import (
	"fmt"
	"log"

	origin2000 "origin2000"
	"origin2000/internal/core"
	"origin2000/internal/sim"
)

func main() {
	for _, procs := range []int{32, 64, 96, 128} {
		cfg := origin2000.Origin2000Config(procs)
		m := origin2000.NewMachine(cfg)
		f := m.Fabric()
		fmt.Printf("%3d processors: %2d nodes, %2d routers (%s), diameter %d hops, avg %.2f\n",
			procs, m.NumNodes(), f.NumRouters(), f.Describe(), f.MaxHops(), f.AverageHops())

		// Probe a remote read from processor 0 to every other node.
		var minL, maxL, sum sim.Time
		samples := 0
		for home := 1; home < m.NumNodes(); home++ {
			lat := probeRemote(procs, home)
			if samples == 0 || lat < minL {
				minL = lat
			}
			if lat > maxL {
				maxL = lat
			}
			sum += lat
			samples++
		}
		fmt.Printf("     remote clean read latency: min %.0f ns, avg %.0f ns, max %.0f ns\n\n",
			minL.Nanoseconds(), (sum / sim.Time(samples)).Nanoseconds(), maxL.Nanoseconds())
	}
	fmt.Println("Past 64 processors the metarouter crossing adds hops and latency,")
	fmt.Println("and communication-heavy programs feel it first.")
}

func probeRemote(procs, home int) sim.Time {
	m := origin2000.NewMachine(origin2000.Origin2000Config(procs))
	arr := m.Alloc("probe", 64, 8)
	arr.PlaceAtNode(home)
	var lat sim.Time
	err := m.RunOne(func(p *core.Proc) {
		before := p.Now()
		p.Read(arr.Addr(0))
		lat = p.Now() - before
	})
	if err != nil {
		log.Fatal(err)
	}
	return lat
}
