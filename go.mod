module origin2000

go 1.22
