package barnes

import (
	"fmt"
	"math"
	"sort"

	"origin2000/internal/core"
	"origin2000/internal/synchro"
	"origin2000/internal/workload"
)

const (
	bodyBytes         = core.BlockBytes
	cellBytes         = core.BlockBytes
	interactionCycles = 180 // one body-body or body-cell force evaluation
	openCycles        = 15  // opening-criterion test per visited cell
	insertCycles      = 12  // per level descended during tree build
	comCycles         = 30  // center-of-mass combine per cell
	updateCyclesB     = 60  // leapfrog integration per body
	theta             = 1.0 // opening criterion
	defaultSteps      = 2
	lockPoolSize      = 1024
)

// App is the Barnes-Hut workload.
type App struct{}

// New returns the application.
func New() *App { return &App{} }

// Name implements workload.App.
func (*App) Name() string { return "Barnes" }

// Unit implements workload.App.
func (*App) Unit() string { return "bodies" }

// BasicSize implements workload.App: 16K bodies.
func (*App) BasicSize() int { return 16 << 10 }

// SweepSizes implements workload.App.
func (*App) SweepSizes() []int { return []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 512 << 10} }

// Variants implements workload.App: the original locking tree build, the
// MergeTree restructuring, and the Spatial restructuring (Section 5).
func (*App) Variants() []string { return []string{"", "merge", "spatial"} }

// MaxProcs implements workload.App.
func (*App) MaxProcs() int { return 128 }

// Run implements workload.App.
func (*App) Run(m *core.Machine, p workload.Params) error {
	b, err := build(m, p)
	if err != nil {
		return err
	}
	if err := m.Run(b.body); err != nil {
		return err
	}
	return b.verify()
}

type run struct {
	m       *core.Machine
	n       int
	steps   int
	variant string

	pos   [][3]float64
	vel   [][3]float64
	mass  []float64
	force [][3]float64

	t        *tree
	arrBody  *core.Array
	arrCell  *core.Array
	arrBox   *core.Array // per-proc bounding-box lines
	arrRoot  *core.Array // root pointer line
	locks    []*synchro.Lock
	rootLock *synchro.Lock
	barrier  *synchro.Barrier

	boxMin, boxMax [3]float64
	boxes          [][2][3]float64 // per-proc bounding-box scratch
	localRoots     []int32         // merge variant: per-proc local tree roots
	superLevel     int32           // spatial variant: subspace level
	levelCells     [][]int32

	totalMass  float64
	treeTimeNS []float64 // per-proc virtual time spent in tree build
}

func build(m *core.Machine, p workload.Params) (*run, error) {
	n := p.Size
	if n < 8 {
		return nil, fmt.Errorf("barnes: %d bodies too few", n)
	}
	np := m.NumProcs()
	capacity := 4*n + 4096*np
	b := &run{
		m:          m,
		n:          n,
		steps:      p.Steps,
		variant:    p.Variant,
		pos:        make([][3]float64, n),
		vel:        make([][3]float64, n),
		mass:       make([]float64, n),
		force:      make([][3]float64, n),
		t:          newTree(capacity, np),
		arrBody:    m.Alloc("barnes.bodies", n, bodyBytes),
		arrCell:    m.Alloc("barnes.cells", capacity, cellBytes),
		arrBox:     m.Alloc("barnes.box", np, core.BlockBytes),
		arrRoot:    m.Alloc("barnes.root", 1, core.BlockBytes),
		locks:      make([]*synchro.Lock, lockPoolSize),
		rootLock:   synchro.NewLock(m, p.Lock),
		barrier:    synchro.NewBarrier(m, np, p.Barrier),
		boxes:      make([][2][3]float64, np),
		localRoots: make([]int32, np),
		treeTimeNS: make([]float64, np),
	}
	if b.steps <= 0 {
		b.steps = defaultSteps
	}
	for i := range b.locks {
		b.locks[i] = synchro.NewLock(m, p.Lock)
	}
	for b.superLevel = 1; 1<<(3*b.superLevel) < 2*np; b.superLevel++ {
	}
	b.generatePlummer(p.Seed)
	// Bodies are assigned to processors in Morton order so each owns a
	// spatially contiguous chunk (approximating costzones locality).
	b.arrBody.PlaceElemBlocked(np)
	b.arrCell.PlaceElemBlocked(np)
	return b, nil
}

// generatePlummer samples a Plummer sphere and orders bodies along the
// Morton curve.
func (b *run) generatePlummer(seed int64) {
	rng := workload.NewRand(seed)
	type bk struct {
		pos [3]float64
		key uint64
	}
	bodies := make([]bk, b.n)
	for i := range bodies {
		// Plummer radius, rejection-capped at 8.
		var r float64
		for {
			x := rng.Float64()
			if x == 0 {
				continue
			}
			r = 1 / math.Sqrt(math.Pow(x, -2.0/3.0)-1)
			if r < 8 {
				break
			}
		}
		cosT := 2*rng.Float64() - 1
		sinT := math.Sqrt(1 - cosT*cosT)
		phi := 2 * math.Pi * rng.Float64()
		bodies[i].pos = [3]float64{
			r * sinT * math.Cos(phi),
			r * sinT * math.Sin(phi),
			r * cosT,
		}
	}
	for i := range bodies {
		bodies[i].key = mortonKey(bodies[i].pos, 8.0)
	}
	sort.Slice(bodies, func(i, j int) bool { return bodies[i].key < bodies[j].key })
	for i := range bodies {
		b.pos[i] = bodies[i].pos
		b.mass[i] = 1.0 / float64(b.n)
		b.vel[i] = [3]float64{0, 0, 0}
		b.totalMass += b.mass[i]
	}
}

// mortonKey interleaves 16 bits per dimension of the position scaled into
// [-scale, scale).
func mortonKey(pos [3]float64, scale float64) uint64 {
	var key uint64
	for k := 0; k < 3; k++ {
		v := (pos[k] + scale) / (2 * scale)
		if v < 0 {
			v = 0
		}
		if v >= 1 {
			v = math.Nextafter(1, 0)
		}
		g := uint64(v * 65536)
		for bit := 0; bit < 16; bit++ {
			key |= ((g >> bit) & 1) << (3*bit + k)
		}
	}
	return key
}

func (b *run) chunk(id int) (lo, hi int) {
	np := b.m.NumProcs()
	return id * b.n / np, (id + 1) * b.n / np
}

func (b *run) body(p *core.Proc) {
	id := p.ID()
	for step := 0; step < b.steps; step++ {
		p.SetPhase("bounding-box")
		b.boundingBox(p)
		p.SetPhase("tree-build")
		buildStart := p.Now()
		switch b.variant {
		case "merge":
			b.buildMerge(p)
		case "spatial":
			b.buildSpatial(p)
		default:
			b.buildLocked(p)
		}
		b.barrier.Wait(p)
		b.treeTimeNS[id] += (p.Now() - buildStart).Nanoseconds()
		p.SetPhase("centers-of-mass")
		b.centersOfMass(p)
		p.SetPhase("force")
		b.forces(p)
		b.barrier.Wait(p)
		p.SetPhase("update")
		b.update(p)
		b.barrier.Wait(p)
	}
	p.SetPhase("")
}

// boundingBox computes the global bounding cube via an all-to-all
// reduction over per-processor lines.
func (b *run) boundingBox(p *core.Proc) {
	id := p.ID()
	lo, hi := b.chunk(id)
	mn := [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)}
	mx := [3]float64{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	for i := lo; i < hi; i++ {
		p.Read(b.arrBody.Addr(i))
		for k := 0; k < 3; k++ {
			mn[k] = math.Min(mn[k], b.pos[i][k])
			mx[k] = math.Max(mx[k], b.pos[i][k])
		}
	}
	p.ComputeCycles(int64(hi-lo) * 4)
	b.boxes[id] = [2][3]float64{mn, mx}
	p.Write(b.arrBox.Addr(id))
	b.barrier.Wait(p)
	gmn, gmx := b.boxes[0][0], b.boxes[0][1]
	for q := 0; q < p.NumProcs(); q++ {
		p.Read(b.arrBox.Addr(q))
		for k := 0; k < 3; k++ {
			gmn[k] = math.Min(gmn[k], b.boxes[q][0][k])
			gmx[k] = math.Max(gmx[k], b.boxes[q][1][k])
		}
	}
	b.boxMin, b.boxMax = gmn, gmx
	// Everyone resets the tree identically; proc 0's values win (all equal).
	if id == 0 {
		b.t.reset()
	}
	b.barrier.Wait(p)
}

// rootGeometry returns the root cell cube enclosing the bounding box.
func (b *run) rootGeometry() (center [3]float64, half float64) {
	for k := 0; k < 3; k++ {
		center[k] = (b.boxMin[k] + b.boxMax[k]) / 2
		half = math.Max(half, (b.boxMax[k]-b.boxMin[k])/2)
	}
	return center, half * 1.0001
}

// --- LockTree: the original algorithm ---

// lockedOps issues simulated traffic and uses the hashed lock pool.
func (b *run) lockedOps(p *core.Proc) treeOps {
	return treeOps{
		read: func(c int32) {
			p.Read(b.arrCell.Addr(int(c)))
			p.ComputeCycles(insertCycles)
		},
		write:  func(c int32) { p.Write(b.arrCell.Addr(int(c))) },
		lock:   func(c int32) { b.locks[int(c)%lockPoolSize].Acquire(p) },
		unlock: func(c int32) { b.locks[int(c)%lockPoolSize].Release(p) },
	}
}

// unlockedOps issues simulated traffic without locks, for tree regions
// private to the building processor.
func (b *run) unlockedOps(p *core.Proc) treeOps {
	return treeOps{
		read: func(c int32) {
			p.Read(b.arrCell.Addr(int(c)))
			p.ComputeCycles(insertCycles)
		},
		write:  func(c int32) { p.Write(b.arrCell.Addr(int(c))) },
		lock:   func(int32) {},
		unlock: func(int32) {},
	}
}

func (b *run) buildLocked(p *core.Proc) {
	id := p.ID()
	if id == 0 {
		center, half := b.rootGeometry()
		b.t.root = b.t.alloc(0, center, half, 0)
		p.Write(b.arrRoot.Addr(0))
		p.Write(b.arrCell.Addr(int(b.t.root)))
	}
	b.barrier.Wait(p)
	p.Read(b.arrRoot.Addr(0))
	lo, hi := b.chunk(id)
	ops := b.lockedOps(p)
	for i := lo; i < hi; i++ {
		p.Read(b.arrBody.Addr(i))
		b.t.insert(id, b.t.root, int32(i), b.pos[i], b.pos, ops)
	}
}

// --- MergeTree: independent local trees merged recursively ---

func (b *run) buildMerge(p *core.Proc) {
	id := p.ID()
	center, half := b.rootGeometry()
	// Phase 1: local tree over owned bodies, no locking, own cells.
	local := b.t.alloc(id, center, half, 0)
	p.Write(b.arrCell.Addr(int(local)))
	lo, hi := b.chunk(id)
	ops := b.unlockedOps(p)
	for i := lo; i < hi; i++ {
		p.Read(b.arrBody.Addr(i))
		b.t.insert(id, local, int32(i), b.pos[i], b.pos, ops)
	}
	b.localRoots[id] = local
	b.barrier.Wait(p)
	// Phase 2: merge. The first processor to arrive just redirects the
	// root pointer; later ones recursively merge, locking the global
	// cells they modify — successively more work and communication.
	b.rootLock.Acquire(p)
	p.Read(b.arrRoot.Addr(0))
	if b.t.root == childEmpty {
		b.t.root = local
		p.Write(b.arrRoot.Addr(0))
		b.rootLock.Release(p)
		return
	}
	root := b.t.root
	b.rootLock.Release(p)
	b.mergeCells(p, root, local)
}

// mergeCells merges local subtree l into global cell g.
// mergeCells merges local subtree l into global cell g. Slot mutations
// revalidate under the cell lock because acquisition can block while other
// processors merge into the same region.
func (b *run) mergeCells(p *core.Proc, g, l int32) {
	ops := b.lockedOps(p)
	ops.read(l)
	for o := 0; o < 8; o++ {
		lc := b.t.cells[l].children[o]
		if lc == childEmpty {
			continue
		}
		ops.read(g)
		if gc := b.t.cells[g].children[o]; gc != childEmpty && !isBody(gc) && !isBody(lc) {
			b.mergeCells(p, gc, lc)
			continue
		}
		ops.lock(g)
		gc := b.t.cells[g].children[o]
		switch {
		case gc == childEmpty:
			b.t.cells[g].children[o] = lc
			ops.write(g)
			ops.unlock(g)
		case !isBody(gc) && !isBody(lc):
			ops.unlock(g)
			b.mergeCells(p, gc, lc)
		case !isBody(gc): // global cell, local body
			ops.unlock(g)
			bi := bodyIndex(lc)
			b.t.insert(p.ID(), gc, bi, b.pos[bi], b.pos, ops)
		case isBody(gc) && !isBody(lc): // global body, local cell
			bi := bodyIndex(gc)
			b.t.cells[g].children[o] = lc
			ops.write(g)
			ops.unlock(g)
			b.t.insert(p.ID(), lc, bi, b.pos[bi], b.pos, ops)
		default: // both bodies: split under a fresh cell
			bg, bl := bodyIndex(gc), bodyIndex(lc)
			cc, hh := childGeometry(b.t.cells[g].center, b.t.cells[g].half, o)
			nc := b.t.alloc(p.ID(), cc, hh, b.t.cells[g].level+1)
			og := octant(cc, b.pos[bg])
			b.t.cells[nc].children[og] = bodyRef(bg)
			ops.write(nc)
			b.t.cells[g].children[o] = nc
			ops.write(g)
			ops.unlock(g)
			b.t.insert(p.ID(), nc, bl, b.pos[bl], b.pos, ops)
		}
		p.ComputeCycles(insertCycles)
	}
}

// --- Spatial: supertree + lock-free subtree attachment ---

func (b *run) buildSpatial(p *core.Proc) {
	id := p.ID()
	np := p.NumProcs()
	L := int(b.superLevel)
	center, half := b.rootGeometry()
	if id == 0 {
		// Build the complete supertree down to level L-1; its level-L
		// child slots are the subspace attachment points.
		b.t.root = b.buildSuper(p, center, half, 0, L)
		p.Write(b.arrRoot.Addr(0))
	}
	b.barrier.Wait(p)
	p.Read(b.arrRoot.Addr(0))
	// Partition bodies by level-L subspace; each processor builds the
	// subtrees of the subspaces assigned to it (round-robin in Morton
	// order) without any locking, then attaches them to unique slots.
	nsub := 1 << (3 * L)
	subBodies := make([][]int32, 0, 8)
	mySubs := make([]int, 0, 8)
	for s := id; s < nsub; s += np {
		mySubs = append(mySubs, s)
		subBodies = append(subBodies, nil)
	}
	subIndex := make(map[int]int, len(mySubs))
	for i, s := range mySubs {
		subIndex[s] = i
	}
	for i := 0; i < b.n; i++ {
		s := b.subspaceOf(b.pos[i], center, half, L)
		if idx, ok := subIndex[s]; ok {
			subBodies[idx] = append(subBodies[idx], int32(i))
		}
	}
	for i, s := range mySubs {
		bodies := subBodies[i]
		if len(bodies) == 0 {
			continue
		}
		parent, slot, cc, hh := b.superSlot(s, center, half, L)
		if len(bodies) == 1 {
			// A single body attaches directly: canonical structure.
			p.Read(b.arrBody.Addr(int(bodies[0])))
			b.t.cells[parent].children[slot] = bodyRef(bodies[0])
			p.Write(b.arrCell.Addr(int(parent)))
			continue
		}
		sub := b.t.alloc(id, cc, hh, int32(L))
		p.Write(b.arrCell.Addr(int(sub)))
		ops := b.unlockedOps(p)
		for _, bi := range bodies {
			p.Read(b.arrBody.Addr(int(bi)))
			b.t.insert(id, sub, bi, b.pos[bi], b.pos, ops)
		}
		// Attachment is lock-free: the slot is unique to this subspace.
		b.t.cells[parent].children[slot] = sub
		p.Write(b.arrCell.Addr(int(parent)))
	}
}

// buildSuper recursively creates the complete supertree down to level L-1.
func (b *run) buildSuper(p *core.Proc, center [3]float64, half float64, level, L int) int32 {
	id := b.t.alloc(0, center, half, int32(level))
	p.Write(b.arrCell.Addr(int(id)))
	if level == L-1 {
		return id
	}
	for o := 0; o < 8; o++ {
		cc, hh := childGeometry(center, half, o)
		b.t.cells[id].children[o] = b.buildSuper(p, cc, hh, level+1, L)
	}
	return id
}

// subspaceOf returns the Morton index of the level-L subspace holding pos.
func (b *run) subspaceOf(pos [3]float64, center [3]float64, half float64, L int) int {
	s := 0
	c, h := center, half
	for l := 0; l < L; l++ {
		o := octant(c, pos)
		s = s<<3 | o
		c, h = childGeometry(c, h, o)
	}
	return s
}

// superSlot resolves subspace s to its parent supertree cell and child slot.
func (b *run) superSlot(s int, center [3]float64, half float64, L int) (parent int32, slot int, cc [3]float64, hh float64) {
	parent = b.t.root
	c, h := center, half
	for l := L - 1; l > 0; l-- {
		o := (s >> (3 * l)) & 7
		parent = b.t.cells[parent].children[o]
		c, h = childGeometry(c, h, o)
	}
	slot = s & 7
	cc, hh = childGeometry(c, h, slot)
	return
}

// --- Centers of mass: level-by-level upward pass ---

func (b *run) centersOfMass(p *core.Proc) {
	id := p.ID()
	// Bucket own cells by level (host-side bookkeeping).
	own := map[int32][]int32{}
	for c := b.t.regionLo[id]; c < b.t.next[id]; c++ {
		own[b.t.cells[c].level] = append(own[b.t.cells[c].level], c)
	}
	for lvl := b.t.maxLevel; lvl >= 0; lvl-- {
		for _, c := range own[lvl] {
			for _, ch := range b.t.cells[c].children {
				if ch != childEmpty && !isBody(ch) {
					p.Read(b.arrCell.Addr(int(ch)))
				}
			}
			b.t.computeCOM(c, b.pos, b.mass)
			p.Write(b.arrCell.Addr(int(c)))
			p.ComputeCycles(comCycles)
		}
		b.barrier.Wait(p)
	}
}

// --- Force computation ---

func (b *run) forces(p *core.Proc) {
	lo, hi := b.chunk(p.ID())
	var stack []int32
	for i := lo; i < hi; i++ {
		p.Read(b.arrBody.Addr(i))
		f := [3]float64{}
		stack = stack[:0]
		if b.t.root != childEmpty {
			stack = append(stack, b.t.root)
		}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if isBody(v) {
				j := bodyIndex(v)
				if int(j) != i {
					p.Read(b.arrBody.Addr(int(j)))
					addForce(&f, b.pos[i], b.pos[j], b.mass[j])
					p.ComputeCycles(interactionCycles)
				}
				continue
			}
			c := &b.t.cells[v]
			p.Read(b.arrCell.Addr(int(v)))
			p.ComputeCycles(openCycles)
			if c.mass == 0 {
				continue
			}
			d2 := dist2(b.pos[i], c.com)
			size := 2 * c.half
			if size*size < theta*theta*d2 {
				addForce(&f, b.pos[i], c.com, c.mass)
				p.ComputeCycles(interactionCycles)
				continue
			}
			for _, ch := range c.children {
				if ch != childEmpty {
					stack = append(stack, ch)
				}
			}
		}
		b.force[i] = f
	}
}

func dist2(a, c [3]float64) float64 {
	var d2 float64
	for k := 0; k < 3; k++ {
		d := a[k] - c[k]
		d2 += d * d
	}
	return d2
}

// addForce accumulates the softened gravitational pull of (pos,mass) on a.
func addForce(f *[3]float64, a, pos [3]float64, mass float64) {
	const eps2 = 0.0025
	d2 := dist2(a, pos) + eps2
	inv := 1 / (d2 * math.Sqrt(d2))
	for k := 0; k < 3; k++ {
		f[k] += mass * (pos[k] - a[k]) * inv
	}
}

func (b *run) update(p *core.Proc) {
	lo, hi := b.chunk(p.ID())
	const dt = 0.01
	for i := lo; i < hi; i++ {
		for k := 0; k < 3; k++ {
			b.vel[i][k] += dt * b.force[i][k]
			b.pos[i][k] += dt * b.vel[i][k]
		}
		p.Write(b.arrBody.Addr(i))
	}
	p.ComputeCycles(int64(hi-lo) * updateCyclesB)
}

func (b *run) verify() error {
	if !b.t.checkMass(b.totalMass) {
		return fmt.Errorf("barnes: root mass %g does not match total %g",
			b.t.cells[b.t.root].mass, b.totalMass)
	}
	if got := b.t.countBodies(b.t.root); got != b.n {
		return fmt.Errorf("barnes: tree holds %d bodies, want %d", got, b.n)
	}
	for i := range b.force {
		for k := 0; k < 3; k++ {
			if math.IsNaN(b.force[i][k]) || math.IsInf(b.force[i][k], 0) {
				return fmt.Errorf("barnes: non-finite force on body %d", i)
			}
		}
	}
	return nil
}

// ForceChecksum returns an order-independent force checksum (test aid).
func (b *run) ForceChecksum() float64 {
	var s float64
	for i := range b.force {
		for k := 0; k < 3; k++ {
			s += math.Abs(b.force[i][k])
		}
	}
	return s
}

// RunForChecksum executes the app and returns the force checksum plus the
// average fraction of virtual time spent building the tree.
func RunForChecksum(m *core.Machine, p workload.Params) (float64, float64, error) {
	b, err := build(m, p)
	if err != nil {
		return 0, 0, err
	}
	if err := m.Run(b.body); err != nil {
		return 0, 0, err
	}
	if err := b.verify(); err != nil {
		return 0, 0, err
	}
	var tt float64
	for _, v := range b.treeTimeNS {
		tt += v
	}
	total := m.Elapsed().Nanoseconds() * float64(m.NumProcs())
	return b.ForceChecksum(), tt / total, nil
}
