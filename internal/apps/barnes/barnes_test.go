package barnes

import (
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/workload"
)

func TestTreeInsertIsCanonical(t *testing.T) {
	// The octree structure depends only on body positions, not on
	// insertion order: inserting in two different orders must yield the
	// same body count per subtree and root invariants.
	positions := [][3]float64{
		{0.1, 0.1, 0.1}, {0.9, 0.9, 0.9}, {0.11, 0.1, 0.1},
		{0.5, 0.2, 0.8}, {0.3, 0.7, 0.4}, {0.95, 0.05, 0.5},
	}
	buildIn := func(order []int) *tree {
		tr := newTree(256, 1)
		tr.root = tr.alloc(0, [3]float64{0.5, 0.5, 0.5}, 0.51, 0)
		for _, i := range order {
			tr.insert(0, tr.root, int32(i), positions[i], positions, nopOps())
		}
		return tr
	}
	a := buildIn([]int{0, 1, 2, 3, 4, 5})
	bTree := buildIn([]int{5, 3, 1, 0, 4, 2})
	if a.countBodies(a.root) != 6 || bTree.countBodies(bTree.root) != 6 {
		t.Fatal("trees dropped bodies")
	}
	if a.next[0] != bTree.next[0] {
		t.Errorf("different cell counts: %d vs %d", a.next[0], bTree.next[0])
	}
}

func TestAllVariantsComputeSameForces(t *testing.T) {
	params := workload.Params{Size: 512, Seed: 13, Steps: 1}
	var want float64
	for vi, variant := range []string{"", "merge", "spatial"} {
		for _, procs := range []int{1, 8} {
			m := core.New(core.Origin2000(procs))
			pp := params
			pp.Variant = variant
			got, _, err := RunForChecksum(m, pp)
			if err != nil {
				t.Fatalf("%q procs=%d: %v", variant, procs, err)
			}
			if vi == 0 && procs == 1 {
				want = got
				continue
			}
			if err := workload.CheckClose("force checksum "+variant, got, want, 1e-9); err != nil {
				t.Errorf("procs=%d: %v", procs, err)
			}
		}
	}
}

func TestTreeBuildPhaseShrinksWithRestructuring(t *testing.T) {
	// Figure 10: at scale, the locking tree build consumes far more time
	// than MergeTree or Spatial.
	frac := func(variant string) float64 {
		m := core.New(core.Origin2000(32))
		_, f, err := RunForChecksum(m, workload.Params{Size: 2048, Seed: 13, Steps: 1, Variant: variant})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	lockF := frac("")
	spatialF := frac("spatial")
	if spatialF >= lockF {
		t.Errorf("spatial tree-build fraction %.3f should be below locktree %.3f", spatialF, lockF)
	}
}

func TestSpatialBeatsOriginalAtScale(t *testing.T) {
	// The paper's Section 5.2: the Spatial build loses at moderate scale
	// but wins at large scale. Check the large-scale side.
	elapsed := func(variant string, procs int) float64 {
		m := core.New(core.Origin2000(procs))
		if err := New().Run(m, workload.Params{Size: 8192, Seed: 13, Steps: 1, Variant: variant}); err != nil {
			t.Fatal(err)
		}
		return m.Elapsed().Milliseconds()
	}
	orig := elapsed("", 128)
	spatial := elapsed("spatial", 128)
	if spatial >= orig {
		t.Errorf("spatial (%.2fms) should beat the locking build (%.2fms) at 128 procs", spatial, orig)
	}
}

func TestSpeedup(t *testing.T) {
	elapsed := func(procs int) float64 {
		m := core.New(core.Origin2000(procs))
		if err := New().Run(m, workload.Params{Size: 2048, Seed: 13, Steps: 1}); err != nil {
			t.Fatal(err)
		}
		return m.Elapsed().Milliseconds()
	}
	seq := elapsed(1)
	par := elapsed(16)
	if sp := seq / par; sp < 6 {
		t.Errorf("speedup at 16 procs = %.2f, want >= 6", sp)
	}
}

func TestMortonKeyOrdersOctants(t *testing.T) {
	low := mortonKey([3]float64{-7, -7, -7}, 8)
	high := mortonKey([3]float64{7, 7, 7}, 8)
	if low >= high {
		t.Errorf("morton keys unordered: %d >= %d", low, high)
	}
	if mortonKey([3]float64{0, 0, 0}, 8) == 0 {
		t.Error("center should not map to key 0")
	}
}

func TestVerifyCatchesMassLoss(t *testing.T) {
	tr := newTree(64, 1)
	tr.root = tr.alloc(0, [3]float64{0, 0, 0}, 1, 0)
	if tr.checkMass(1.0) {
		t.Error("empty tree should not match nonzero mass")
	}
}
