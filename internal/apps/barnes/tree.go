// Package barnes implements the Barnes-Hut N-body application with the
// three parallel tree-building algorithms the paper analyzes (Section 5):
// the original globally-shared tree with per-cell locking (LockTree), the
// MergeTree restructuring (independent local trees merged recursively), and
// the Spatial restructuring (a supertree whose level-L subspaces are built
// independently and attached without locking).
package barnes

import (
	"math"
)

// Child-slot encoding inside a cell: empty, a body, or another cell.
const (
	childEmpty = int32(-1)
)

// bodyRef encodes body index b as a negative child value.
func bodyRef(b int32) int32 { return -(b + 2) }

// isBody reports whether a child value names a body.
func isBody(v int32) bool { return v <= -2 }

// bodyIndex decodes a bodyRef.
func bodyIndex(v int32) int32 { return -v - 2 }

// cell is one octree node. Geometry (center, half-width) is stored so the
// force traversal can apply the opening criterion without passing it down.
type cell struct {
	children [8]int32
	center   [3]float64
	half     float64
	com      [3]float64
	mass     float64
	level    int32
	owner    int32 // allocating processor (placement + COM pass)
}

// tree is the shared octree: a global cell pool carved into per-processor
// regions so each processor allocates from (and places) its own cells.
type tree struct {
	cells    []cell
	next     []int32 // per-proc bump pointer into its region
	regionLo []int32
	regionHi []int32
	root     int32
	maxLevel int32
}

func newTree(capacity, nprocs int) *tree {
	t := &tree{
		cells:    make([]cell, capacity),
		next:     make([]int32, nprocs),
		regionLo: make([]int32, nprocs),
		regionHi: make([]int32, nprocs),
		root:     childEmpty,
	}
	for p := 0; p < nprocs; p++ {
		t.regionLo[p] = int32(p * capacity / nprocs)
		t.regionHi[p] = int32((p + 1) * capacity / nprocs)
		t.next[p] = t.regionLo[p]
	}
	return t
}

func (t *tree) reset() {
	for p := range t.next {
		t.next[p] = t.regionLo[p]
	}
	t.root = childEmpty
	t.maxLevel = 0
}

// alloc creates a cell from processor p's pool.
func (t *tree) alloc(p int, center [3]float64, half float64, level int32) int32 {
	if t.next[p] >= t.regionHi[p] {
		panic("barnes: cell pool exhausted")
	}
	id := t.next[p]
	t.next[p]++
	c := &t.cells[id]
	*c = cell{center: center, half: half, level: level, owner: int32(p)}
	for i := range c.children {
		c.children[i] = childEmpty
	}
	if level > t.maxLevel {
		t.maxLevel = level
	}
	return id
}

// octant returns which child octant of (center) position pos falls in.
func octant(center [3]float64, pos [3]float64) int {
	o := 0
	for k := 0; k < 3; k++ {
		if pos[k] >= center[k] {
			o |= 1 << k
		}
	}
	return o
}

// childGeometry returns the center/half-width of child octant o.
func childGeometry(center [3]float64, half float64, o int) ([3]float64, float64) {
	h := half / 2
	var c [3]float64
	for k := 0; k < 3; k++ {
		if o&(1<<k) != 0 {
			c[k] = center[k] + h
		} else {
			c[k] = center[k] - h
		}
	}
	return c, h
}

const maxDepth = 60

// treeOps carries the simulated-traffic and locking hooks for tree
// mutation. Lock/unlock may suspend the calling processor in virtual time,
// so insert re-validates a child slot after acquiring its cell's lock —
// exactly the discipline the real locking code needs.
type treeOps struct {
	read   func(cellID int32)
	write  func(cellID int32)
	lock   func(cellID int32)
	unlock func(cellID int32)
}

// nopOps performs no simulated traffic (plain-Go test use).
func nopOps() treeOps {
	nop := func(int32) {}
	return treeOps{read: nop, write: nop, lock: nop, unlock: nop}
}

// insert places body b (at pos) into the subtree rooted at cellID,
// splitting leaves as needed. The resulting structure is canonical: it
// depends only on the body positions, never on insertion order. insert
// holds at most one cell lock at a time and never across recursion, so
// hashed lock pools cannot self-deadlock.
func (t *tree) insert(p int, cellID int32, b int32, pos [3]float64, positions [][3]float64, ops treeOps) {
	id := cellID
	for depth := 0; ; depth++ {
		if depth > maxDepth {
			panic("barnes: tree too deep (coincident bodies?)")
		}
		c := &t.cells[id]
		ops.read(id)
		o := octant(c.center, pos)
		if ch := c.children[o]; ch != childEmpty && !isBody(ch) {
			// Cell pointers are immutable once linked: descend lock-free.
			id = ch
			continue
		}
		// The slot holds empty or a body: mutate under the cell lock,
		// re-reading the slot because the acquisition may have blocked.
		ops.lock(id)
		ch := c.children[o]
		switch {
		case ch == childEmpty:
			c.children[o] = bodyRef(b)
			ops.write(id)
			ops.unlock(id)
			return
		case isBody(ch):
			// Split: push the resident body down into a fresh cell.
			other := bodyIndex(ch)
			cc, hh := childGeometry(c.center, c.half, o)
			nc := t.alloc(p, cc, hh, c.level+1)
			oo := octant(cc, positions[other])
			t.cells[nc].children[oo] = bodyRef(other)
			ops.write(nc)
			c.children[o] = nc
			ops.write(id)
			ops.unlock(id)
			id = nc
		default:
			// Someone linked a cell while we were acquiring the lock.
			ops.unlock(id)
			id = ch
		}
	}
}

// computeCOM computes the center of mass of one cell from its (already
// computed) children. Children are summed in octant order, so the result
// is deterministic regardless of which processor runs it.
func (t *tree) computeCOM(id int32, positions [][3]float64, masses []float64) {
	c := &t.cells[id]
	var m float64
	var com [3]float64
	for _, ch := range c.children {
		switch {
		case ch == childEmpty:
		case isBody(ch):
			b := bodyIndex(ch)
			bm := masses[b]
			m += bm
			for k := 0; k < 3; k++ {
				com[k] += bm * positions[b][k]
			}
		default:
			cc := &t.cells[ch]
			m += cc.mass
			for k := 0; k < 3; k++ {
				com[k] += cc.mass * cc.com[k]
			}
		}
	}
	c.mass = m
	if m > 0 {
		for k := 0; k < 3; k++ {
			com[k] /= m
		}
	}
	c.com = com
}

// checkMass verifies that the root's mass equals the total body mass — the
// invariant every build algorithm must preserve.
func (t *tree) checkMass(total float64) bool {
	if t.root == childEmpty {
		return total == 0
	}
	return math.Abs(t.cells[t.root].mass-total) <= 1e-9*math.Max(total, 1)
}

// countBodies walks the subtree and counts bodies (test aid).
func (t *tree) countBodies(id int32) int {
	if id == childEmpty {
		return 0
	}
	if isBody(id) {
		return 1
	}
	n := 0
	for _, ch := range t.cells[id].children {
		switch {
		case ch == childEmpty:
		case isBody(ch):
			n++
		default:
			n += t.countBodies(ch)
		}
	}
	return n
}
