// Package fft implements the SPLASH-2 style six-step 1D FFT: the n-point
// dataset is a √n×√n complex matrix; row FFTs alternate with staggered
// all-to-all matrix transposes, the communication pattern the paper uses to
// stress the machine (Sections 4, 6.1 and 7.1).
package fft

import (
	"fmt"
	"math"
	"math/cmplx"

	"origin2000/internal/core"
	"origin2000/internal/synchro"
	"origin2000/internal/workload"
)

// Cost constants (processor cycles) calibrated against Table 2's sequential
// time for 2^20 points.
const (
	butterflyCycles = 30
	twiddleCycles   = 18
	copyCycles      = 4
)

const elemBytes = 16 // complex128

// App is the FFT workload.
type App struct{}

// New returns the FFT application.
func New() *App { return &App{} }

// Name implements workload.App.
func (*App) Name() string { return "FFT" }

// Unit implements workload.App.
func (*App) Unit() string { return "points" }

// BasicSize implements workload.App: 2^20 points.
func (*App) BasicSize() int { return 1 << 20 }

// SweepSizes implements workload.App.
func (*App) SweepSizes() []int { return []int{1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24} }

// Variants implements workload.App. "offnode" staggers the transpose so
// both processors of a node start with off-node partners (Section 7.1);
// "implicit" folds the first transpose into the row FFTs — the paper's
// unsuccessful attempt to reduce communication burstiness (Section 5.1).
func (*App) Variants() []string { return []string{"", "offnode", "implicit"} }

// MaxProcs implements workload.App.
func (*App) MaxProcs() int { return 128 }

// Run implements workload.App.
func (*App) Run(m *core.Machine, p workload.Params) error {
	f, err := build(m, p)
	if err != nil {
		return err
	}
	if err := m.Run(f.body); err != nil {
		return err
	}
	return f.verify()
}

type fftRun struct {
	m        *core.Machine
	dim      int // matrix dimension (√n)
	a, b     []complex128
	arrA     *core.Array
	arrB     *core.Array
	barrier  *synchro.Barrier
	stagger  int
	pre      bool
	implicit bool
	inPower  float64
}

func build(m *core.Machine, p workload.Params) (*fftRun, error) {
	n := p.Size
	dim := 1
	for dim*dim < n {
		dim <<= 1
	}
	if dim*dim != n {
		return nil, fmt.Errorf("fft: size %d is not a square power of two", n)
	}
	np := m.NumProcs()
	if dim%np != 0 && np > 1 {
		// Pad processor ownership by ceiling division; require dim >= np.
		if dim < np {
			return nil, fmt.Errorf("fft: matrix dim %d smaller than %d processors", dim, np)
		}
	}
	f := &fftRun{
		m:       m,
		dim:     dim,
		a:       make([]complex128, n),
		b:       make([]complex128, n),
		arrA:    m.Alloc("fft.a", n, elemBytes),
		arrB:    m.Alloc("fft.b", n, elemBytes),
		barrier: synchro.NewBarrier(m, np, p.Barrier),
		stagger: 1,
		pre:     p.Prefetch,
	}
	if p.Variant == "offnode" {
		f.stagger = 2
	}
	if p.Variant == "implicit" {
		f.implicit = true
	}
	rng := workload.NewRand(p.Seed)
	for i := range f.a {
		f.a[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
		f.inPower += real(f.a[i])*real(f.a[i]) + imag(f.a[i])*imag(f.a[i])
	}
	// Manual placement: each processor's rows at its node.
	f.arrA.PlaceElemBlocked(np)
	f.arrB.PlaceElemBlocked(np)
	return f, nil
}

// rowRange assigns rows in balanced contiguous chunks (sizes differ by at
// most one), so non-power-of-two processor counts keep every processor busy.
func (f *fftRun) rowRange(id int) (lo, hi int) {
	np := f.m.NumProcs()
	return id * f.dim / np, (id + 1) * f.dim / np
}

func (f *fftRun) body(p *core.Proc) {
	lo, hi := f.rowRange(p.ID())
	p.SetPhase("transpose+fft")
	if f.implicit {
		// Steps 1+2 fused: gather each row's elements column-wise from
		// the source matrix while computing its FFT. The strided remote
		// reads touch one block per element — less bursty than the
		// explicit transpose, but far more of them, which is why the
		// paper found this restructuring did not help.
		f.gatherRows(p, lo, hi)
		f.barrier.Wait(p)
	} else {
		// Step 1: transpose a -> b.
		f.transpose(p, f.a, f.arrA, f.b, f.arrB)
		f.barrier.Wait(p)
		// Step 2: row FFTs on b.
		f.rowFFTs(p, f.b, f.arrB, lo, hi)
	}
	// Step 3: twiddle multiply on b.
	p.SetPhase("twiddle")
	f.twiddle(p, lo, hi)
	f.barrier.Wait(p)
	// Step 4: transpose b -> a.
	p.SetPhase("transpose")
	f.transpose(p, f.b, f.arrB, f.a, f.arrA)
	f.barrier.Wait(p)
	// Step 5: row FFTs on a.
	p.SetPhase("row-ffts")
	f.rowFFTs(p, f.a, f.arrA, lo, hi)
	f.barrier.Wait(p)
	// Step 6: transpose a -> b (final ordering).
	p.SetPhase("transpose")
	f.transpose(p, f.a, f.arrA, f.b, f.arrB)
	f.barrier.Wait(p)
	p.SetPhase("")
}

// transpose writes dst[c][r] = src[r][c] for this processor's destination
// rows c, reading source patches from partners in staggered order so no
// home becomes a hot spot.
func (f *fftRun) transpose(p *core.Proc, src []complex128, srcArr *core.Array, dst []complex128, dstArr *core.Array) {
	np := p.NumProcs()
	myLo, myHi := f.rowRange(p.ID())
	if myLo >= myHi {
		return
	}
	// The stagger shifts only the starting partner: the default (+1) makes
	// process i transpose from i+1 first; "offnode" (+2) makes both
	// processes of a node start with off-node partners (Section 7.1).
	for s := 0; s < np; s++ {
		q := (p.ID() + f.stagger + s) % np
		qLo, qHi := f.rowRange(q)
		for r := qLo; r < qHi; r++ {
			// Read the run src[r][myLo:myHi] (contiguous, stride-one
			// remote reads — the behaviour Section 5.1 contrasts with
			// Radix's scattered writes).
			base := r*f.dim + myLo
			if f.pre && r+1 < qHi {
				p.Prefetch(srcArr.Addr((r+1)*f.dim + myLo))
			}
			p.ReadBytes(srcArr.Addr(base), (myHi-myLo)*elemBytes)
			for c := myLo; c < myHi; c++ {
				dst[c*f.dim+r] = src[r*f.dim+c]
			}
			// Writes land in this processor's own rows, one block at a
			// time as the column fills.
			p.ComputeCycles(int64(myHi-myLo) * copyCycles)
			p.WriteBytes(dstArr.Addr(myLo*f.dim+r), 1)
			if myHi-myLo > 0 {
				// Touch each destination row's element (strided writes).
				for c := myLo + 1; c < myHi; c++ {
					p.Write(dstArr.Addr(c*f.dim + r))
				}
			}
		}
	}
}

// gatherRows implements the implicit transpose: each owned destination
// row is gathered element by element from the source matrix's column
// (strided single-element remote reads), then transformed in place.
func (f *fftRun) gatherRows(p *core.Proc, lo, hi int) {
	dim := f.dim
	for r := lo; r < hi; r++ {
		for c := 0; c < dim; c++ {
			if f.pre && c+1 < dim {
				p.Prefetch(f.arrA.Addr((c+1)*dim + r))
			}
			p.Read(f.arrA.Addr(c*dim + r))
			f.b[r*dim+c] = f.a[c*dim+r]
		}
		p.ComputeCycles(int64(dim) * copyCycles)
		for x := 0; x < dim*elemBytes; x += core.BlockBytes {
			p.Write(f.arrB.Addr(r*dim + x/elemBytes))
		}
	}
	f.rowFFTs(p, f.b, f.arrB, lo, hi)
}

// rowFFTs performs an in-place iterative radix-2 FFT on each owned row.
func (f *fftRun) rowFFTs(p *core.Proc, data []complex128, arr *core.Array, lo, hi int) {
	dim := f.dim
	for r := lo; r < hi; r++ {
		row := data[r*dim : (r+1)*dim]
		bitReverse(row)
		for span := 2; span <= dim; span <<= 1 {
			half := span / 2
			ang := -2 * math.Pi / float64(span)
			wStep := cmplx.Exp(complex(0, ang))
			for start := 0; start < dim; start += span {
				w := complex(1, 0)
				for k := 0; k < half; k++ {
					u := row[start+k]
					v := row[start+k+half] * w
					row[start+k] = u + v
					row[start+k+half] = u - v
					w *= wStep
				}
			}
			// One pass over the row per stage: touch each block once.
			for b := 0; b < dim*elemBytes; b += core.BlockBytes {
				p.Write(arr.Addr(r*dim + b/elemBytes))
			}
			p.ComputeCycles(int64(dim/2) * butterflyCycles)
		}
	}
}

func bitReverse(row []complex128) {
	n := len(row)
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			row[i], row[j] = row[j], row[i]
		}
		mask := n >> 1
		for ; j&mask != 0; mask >>= 1 {
			j &^= mask
		}
		j |= mask
	}
}

// twiddle multiplies b[r][c] by W^(r*c).
func (f *fftRun) twiddle(p *core.Proc, lo, hi int) {
	n := float64(f.dim * f.dim)
	for r := lo; r < hi; r++ {
		for c := 0; c < f.dim; c++ {
			ang := -2 * math.Pi * float64(r) * float64(c) / n
			f.b[r*f.dim+c] *= cmplx.Exp(complex(0, ang))
			if c%8 == 0 {
				p.Write(f.arrB.Addr(r*f.dim + c))
			}
		}
		p.ComputeCycles(int64(f.dim) * twiddleCycles)
	}
}

// verify checks Parseval's identity: the output power must equal n times
// the input power (for an unnormalized DFT).
func (f *fftRun) verify() error {
	var outPower float64
	for _, v := range f.b {
		outPower += real(v)*real(v) + imag(v)*imag(v)
	}
	n := float64(f.dim * f.dim)
	return workload.CheckClose("fft parseval", outPower, n*f.inPower, 1e-9)
}

// Reference computes the DFT of x directly in O(n^2) (test aid).
func Reference(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = sum
	}
	return out
}

// Transform runs the six-step FFT sequentially in plain Go (no machine) and
// returns the transform of x; tests compare it with Reference.
func Transform(x []complex128) []complex128 {
	n := len(x)
	dim := 1
	for dim*dim < n {
		dim <<= 1
	}
	if dim*dim != n {
		panic("fft: size must be a square power of two")
	}
	a := make([]complex128, n)
	copy(a, x)
	b := make([]complex128, n)
	tr := func(src, dst []complex128) {
		for r := 0; r < dim; r++ {
			for c := 0; c < dim; c++ {
				dst[c*dim+r] = src[r*dim+c]
			}
		}
	}
	rowFFT := func(data []complex128) {
		for r := 0; r < dim; r++ {
			row := data[r*dim : (r+1)*dim]
			bitReverse(row)
			for span := 2; span <= dim; span <<= 1 {
				half := span / 2
				wStep := cmplx.Exp(complex(0, -2*math.Pi/float64(span)))
				for start := 0; start < dim; start += span {
					w := complex(1, 0)
					for k := 0; k < half; k++ {
						u := row[start+k]
						v := row[start+k+half] * w
						row[start+k] = u + v
						row[start+k+half] = u - v
						w *= wStep
					}
				}
			}
		}
	}
	tr(a, b)
	rowFFT(b)
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			ang := -2 * math.Pi * float64(r) * float64(c) / float64(n)
			b[r*dim+c] *= cmplx.Exp(complex(0, ang))
		}
	}
	tr(b, a)
	rowFFT(a)
	tr(a, b)
	return b
}
