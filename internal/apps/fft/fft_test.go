package fft

import (
	"math/cmplx"
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/workload"
)

func TestTransformMatchesDirectDFT(t *testing.T) {
	for _, n := range []int{4, 16, 64, 256} {
		rng := workload.NewRand(7)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
		}
		got := Transform(x)
		want := Reference(x)
		for i := range want {
			if d := cmplx.Abs(got[i] - want[i]); d > 1e-9*float64(n) {
				t.Fatalf("n=%d: X[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestRunVerifiesOnMachine(t *testing.T) {
	app := New()
	for _, procs := range []int{1, 4, 16} {
		m := core.New(core.Origin2000(procs))
		if err := app.Run(m, workload.Params{Size: 1 << 12, Seed: 3}); err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if m.Elapsed() <= 0 {
			t.Fatalf("procs=%d: no virtual time elapsed", procs)
		}
	}
}

func TestParallelSpeedsUp(t *testing.T) {
	app := New()
	elapsed := func(procs int) float64 {
		m := core.New(core.Origin2000(procs))
		if err := app.Run(m, workload.Params{Size: 1 << 14, Seed: 3}); err != nil {
			t.Fatal(err)
		}
		return m.Elapsed().Milliseconds()
	}
	seq := elapsed(1)
	par := elapsed(16)
	if speedup := seq / par; speedup < 6 {
		t.Errorf("speedup at 16 procs = %.2f, want >= 6", speedup)
	}
}

func TestPrefetchVariantRunsAndHelps(t *testing.T) {
	app := New()
	run := func(pre bool) (float64, int64) {
		m := core.New(core.Origin2000(16))
		if err := app.Run(m, workload.Params{Size: 1 << 14, Seed: 3, Prefetch: pre}); err != nil {
			t.Fatal(err)
		}
		return m.Elapsed().Milliseconds(), m.Result().Counters.Prefetches
	}
	base, pf0 := run(false)
	pre, pf1 := run(true)
	if pf0 != 0 || pf1 == 0 {
		t.Fatalf("prefetch counters: base=%d pre=%d", pf0, pf1)
	}
	if pre >= base {
		t.Errorf("prefetch run (%.3fms) not faster than base (%.3fms)", pre, base)
	}
}

func TestOffnodeVariantRuns(t *testing.T) {
	app := New()
	m := core.New(core.Origin2000(8))
	if err := app.Run(m, workload.Params{Size: 1 << 12, Seed: 3, Variant: "offnode"}); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsNonSquareSize(t *testing.T) {
	app := New()
	m := core.New(core.Origin2000(2))
	if err := app.Run(m, workload.Params{Size: 1 << 13, Seed: 3}); err == nil {
		t.Fatal("2^13 points (non-square) should be rejected")
	}
}

func TestCommunicationIsRemoteReads(t *testing.T) {
	// The staggered transpose should show up as remote clean misses, not
	// dirty 3-hop traffic (data is written by its owner, read by others).
	app := New()
	m := core.New(core.Origin2000(16))
	if err := app.Run(m, workload.Params{Size: 1 << 14, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	c := m.Result().Counters
	if c.RemoteClean+c.RemoteDirty == 0 {
		t.Fatal("expected remote communication in the transpose")
	}
	if c.Reads == 0 || c.Hits == 0 {
		t.Error("expected read traffic with cache reuse")
	}
}

func TestImplicitTransposeCorrectButNotFaster(t *testing.T) {
	// Section 5.1's negative result: folding the transpose into the row
	// FFTs replaces bursty block transfers with many strided reads.
	app := New()
	elapsed := func(variant string) float64 {
		m := core.New(core.Origin2000(16))
		if err := app.Run(m, workload.Params{Size: 1 << 14, Seed: 3, Variant: variant}); err != nil {
			t.Fatalf("%q: %v", variant, err)
		}
		return m.Elapsed().Milliseconds()
	}
	explicit := elapsed("")
	implicit := elapsed("implicit")
	if implicit < explicit*0.95 {
		t.Errorf("implicit transpose (%.3fms) should not beat explicit (%.3fms)", implicit, explicit)
	}
}
