package fft

import (
	"fmt"
	"math/cmplx"
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/trace"
	"origin2000/internal/workload"
)

// TestGoldenOutputMatchesNaiveDFT pins the full transform output — not just
// Parseval's identity — against the O(n²) direct DFT, on a pinned small
// input, at 1, 4 and 32 processors. The parallel decomposition only changes
// who computes each row, never the per-element operation order, so all
// processor counts must agree bit for bit; and every run executes with the
// online coherence checker enabled.
func TestGoldenOutputMatchesNaiveDFT(t *testing.T) {
	const n = 1 << 10 // dim 32, so 32 processors get one row each
	var golden []complex128
	var first []complex128
	curProcs := 0
	// On any failure (Errorf or Fatalf — defers run after Goexit), re-run
	// the failing proc count traced and ship the trace as a CI artifact.
	defer func() {
		if !t.Failed() || curProcs == 0 {
			return
		}
		path, err := trace.CaptureArtifact(fmt.Sprintf("fft-golden-p%d", curProcs),
			func(o trace.Options) (*trace.Tracer, error) {
				cfg := core.Origin2000(curProcs)
				cfg.Check = true
				cfg.Trace = o
				m := core.New(cfg)
				f, err := build(m, workload.Params{Size: n, Seed: 11})
				if err != nil {
					return m.Tracer(), err
				}
				return m.Tracer(), m.Run(f.body)
			})
		if path != "" {
			t.Logf("failure trace written to %s", path)
		} else if err != nil {
			t.Logf("failure trace capture failed: %v", err)
		}
	}()
	for _, procs := range []int{1, 4, 32} {
		curProcs = procs
		cfg := core.Origin2000(procs)
		cfg.Check = true
		m := core.New(cfg)
		f, err := build(m, workload.Params{Size: n, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		input := append([]complex128(nil), f.a...)
		if err := m.Run(f.body); err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if golden == nil {
			golden = Reference(input)
		}
		for i := range golden {
			if d := cmplx.Abs(f.b[i] - golden[i]); d > 1e-9*float64(n) {
				t.Fatalf("procs=%d: X[%d] = %v, want %v (|Δ|=%g)", procs, i, f.b[i], golden[i], d)
			}
		}
		if first == nil {
			first = append([]complex128(nil), f.b...)
			continue
		}
		for i := range first {
			if f.b[i] != first[i] {
				t.Fatalf("procs=%d: output differs from 1-proc run at %d: %v != %v",
					procs, i, f.b[i], first[i])
			}
		}
	}
}
