// Package infer implements probabilistic inference on a clique tree
// (junction tree), modeled on the belief-network application of the study
// (CPCS-422 medical diagnosis). An upward pass marginalizes messages from
// the leaves to the root and a downward pass distributes them back. The
// original parallelization assigns cliques to processors and steals work
// dynamically across them; the restructured version ("static") processes
// cliques one at a time with all processors cooperating inside each
// clique's table, partitioned to maximize parent/child locality
// (Section 5.1).
package infer

import (
	"fmt"
	"math"

	"origin2000/internal/core"
	"origin2000/internal/synchro"
	"origin2000/internal/workload"
)

const (
	entryCycles  = 8 // multiply-accumulate per table entry
	minVars      = 8
	maxVars      = 15
	sepVarsConst = 6 // sepset variables with the parent
	probeDelay   = 2 // microseconds between idle probes (dynamic version)
)

// App is the Infer workload.
type App struct{}

// New returns the application.
func New() *App { return &App{} }

// Name implements workload.App.
func (*App) Name() string { return "Infer" }

// Unit implements workload.App.
func (*App) Unit() string { return "network vars" }

// BasicSize implements workload.App: the CPCS-422 network.
func (*App) BasicSize() int { return 422 }

// SweepSizes implements workload.App: the paper has only the one real
// medical-diagnosis input.
func (*App) SweepSizes() []int { return []int{422} }

// Variants implements workload.App.
func (*App) Variants() []string { return []string{"", "static"} }

// MaxProcs implements workload.App: results to 64 processors.
func (*App) MaxProcs() int { return 64 }

// Run implements workload.App.
func (*App) Run(m *core.Machine, p workload.Params) error {
	r, err := build(m, p)
	if err != nil {
		return err
	}
	var body func(*core.Proc)
	if p.Variant == "static" {
		body = r.staticBody
	} else {
		body = r.dynamicBody
	}
	if err := m.Run(body); err != nil {
		return err
	}
	return r.verify()
}

// clique is one node of the junction tree.
type clique struct {
	parent   int32
	children []int32
	nvars    int // table has 1<<nvars entries
	sepvars  int // variables shared with the parent
	pot      []float64
	upMsg    []float64 // message to the parent (1<<sepvars entries)
	downMsg  []float64 // message from the parent
	owner    int32     // static home processor

	// Dynamic scheduling state.
	pendingUp   int32 // children not yet done (upward readiness)
	doneUp      bool
	doneDown    bool
	downClaimed bool
}

type run struct {
	m       *core.Machine
	cliques []clique
	order   []int32 // topological order (parents before children)

	arrPot  *core.Array // one region per clique, indexed by potBase
	arrMsg  *core.Array
	arrCtl  *core.Array // one control line per clique
	potBase []int
	msgBase []int

	barrier *synchro.Barrier
	locks   []*synchro.Lock // per-clique scheduling locks

	partial       [][]float64 // static version: per-proc partial messages
	processedUp   int32
	processedDown int32
	rootSum       float64
}

func build(m *core.Machine, p workload.Params) (*run, error) {
	if p.Size < 16 {
		return nil, fmt.Errorf("infer: network of %d vars too small", p.Size)
	}
	np := m.NumProcs()
	nc := p.Size / 4 // cliques in the junction tree
	rng := workload.NewRand(p.Seed)
	r := &run{
		m:       m,
		cliques: make([]clique, nc),
		barrier: synchro.NewBarrier(m, np, p.Barrier),
		locks:   make([]*synchro.Lock, nc),
		potBase: make([]int, nc),
		msgBase: make([]int, nc),
		partial: make([][]float64, np),
	}
	totPot, totMsg := 0, 0
	for i := 0; i < nc; i++ {
		c := &r.cliques[i]
		c.nvars = minVars + rng.Intn(maxVars-minVars+1)
		c.sepvars = sepVarsConst
		if c.sepvars > c.nvars-1 {
			c.sepvars = c.nvars - 1
		}
		if i > 0 {
			c.parent = int32(rng.Intn(i))
			r.cliques[c.parent].children = append(r.cliques[c.parent].children, int32(i))
		} else {
			c.parent = -1
		}
		c.pot = make([]float64, 1<<c.nvars)
		for j := range c.pot {
			c.pot[j] = 0.1 + rng.Float64()
		}
		c.upMsg = make([]float64, 1<<c.sepvars)
		c.downMsg = make([]float64, 1<<c.sepvars)
		c.owner = int32(i % np)
		r.potBase[i] = totPot
		totPot += 1 << c.nvars
		r.msgBase[i] = totMsg
		totMsg += 2 << c.sepvars
		r.locks[i] = synchro.NewLock(m, p.Lock)
	}
	// Children register with their parents above, so readiness counters
	// can only be taken once the whole tree exists.
	for i := range r.cliques {
		r.cliques[i].pendingUp = int32(len(r.cliques[i].children))
	}
	r.order = make([]int32, 0, nc)
	r.order = append(r.order, 0)
	for qi := 0; qi < len(r.order); qi++ {
		r.order = append(r.order, r.cliques[r.order[qi]].children...)
	}
	r.arrPot = m.Alloc("infer.pot", totPot, 8)
	r.arrMsg = m.Alloc("infer.msg", totMsg, 8)
	r.arrCtl = m.Alloc("infer.ctl", nc, core.BlockBytes)
	// Placement: dynamic version homes each clique at its owner; the
	// static version's slices are placed by the cooperating partition
	// (approximated by striping).
	if p.Variant == "static" {
		r.arrPot.PlaceOwner(func(pg int) int { return pg % np })
	} else {
		r.arrPot.PlaceOwner(func(pg int) int {
			elem := pg * (16384 / 8)
			for i := 0; i < nc; i++ {
				if elem < r.potBase[i]+(1<<r.cliques[i].nvars) {
					return int(r.cliques[i].owner)
				}
			}
			return 0
		})
	}
	return r, nil
}

// sepIndex maps a table index to its sepset index (the high-order
// variables are shared with the parent, so contiguous table slices map to
// contiguous sepset slices — the locality the restructuring exploits).
func sepIndex(idx, nvars, sepvars int) int { return idx >> (nvars - sepvars) }

// processUp computes clique i's upward message over table rows [lo, hi).
func (r *run) processUp(p *core.Proc, i int, lo, hi int, out []float64) {
	c := &r.cliques[i]
	// Multiply in the children's messages, then marginalize to the
	// parent sepset.
	for idx := lo; idx < hi; idx++ {
		v := c.pot[idx]
		for _, ch := range c.children {
			cc := &r.cliques[ch]
			si := sepIndex(idx, c.nvars, cc.sepvars)
			v *= cc.upMsg[si]
			if idx%16 == 0 {
				p.Read(r.arrMsg.Addr(r.msgBase[ch] + si))
			}
		}
		c.pot[idx] = v
		out[sepIndex(idx, c.nvars, c.sepvars)] += v
		if idx%(core.BlockBytes/8) == 0 {
			p.Write(r.arrPot.Addr(r.potBase[i] + idx))
		}
	}
	p.ComputeCycles(int64(hi-lo) * entryCycles * int64(1+len(c.children)))
}

// processDown applies the parent's message to rows [lo, hi) and
// accumulates the clique belief.
func (r *run) processDown(p *core.Proc, i int, lo, hi int) float64 {
	c := &r.cliques[i]
	var sum float64
	for idx := lo; idx < hi; idx++ {
		if c.parent >= 0 {
			si := sepIndex(idx, c.nvars, c.sepvars)
			c.pot[idx] *= c.downMsg[si]
			if idx%16 == 0 {
				p.Read(r.arrMsg.Addr(r.msgBase[i] + (1 << c.sepvars) + si))
			}
		}
		sum += c.pot[idx]
		if idx%(core.BlockBytes/8) == 0 {
			p.Write(r.arrPot.Addr(r.potBase[i] + idx))
		}
	}
	p.ComputeCycles(int64(hi-lo) * entryCycles)
	return sum
}

// finishUp normalizes and publishes clique i's upward message.
func (r *run) finishUp(p *core.Proc, i int, msg []float64) {
	c := &r.cliques[i]
	var total float64
	for _, v := range msg {
		total += v
	}
	if total > 0 {
		for j := range msg {
			msg[j] = msg[j] / total * float64(len(msg))
		}
	}
	copy(c.upMsg, msg)
	for j := 0; j < len(msg); j += core.BlockBytes / 8 {
		p.Write(r.arrMsg.Addr(r.msgBase[i] + j))
	}
	p.ComputeCycles(int64(len(msg)) * 4)
}

// publishDown computes and publishes the downward messages to each child.
func (r *run) publishDown(p *core.Proc, i int) {
	c := &r.cliques[i]
	for _, ch := range c.children {
		cc := &r.cliques[ch]
		msg := make([]float64, 1<<cc.sepvars)
		for idx := 0; idx < len(c.pot); idx += 8 {
			msg[sepIndex(idx, c.nvars, cc.sepvars)] += c.pot[idx]
		}
		var total float64
		for _, v := range msg {
			total += v
		}
		if total > 0 {
			for j := range msg {
				msg[j] = msg[j] / total * float64(len(msg))
			}
		}
		copy(cc.downMsg, msg)
		for j := 0; j < len(msg); j += core.BlockBytes / 8 {
			p.Write(r.arrMsg.Addr(r.msgBase[ch] + (1 << cc.sepvars) + j))
		}
		p.ComputeCycles(int64(len(c.pot)/8) * 2)
	}
}

// --- Dynamic version: clique-level parallelism with stealing ---

func (r *run) dynamicBody(p *core.Proc) {
	nc := len(r.cliques)
	id := p.ID()
	// Upward pass: grab ready cliques, preferring owned ones.
	for int(r.processedUp) < nc {
		i := r.grabReady(p, id, true)
		if i < 0 {
			// Nothing ready: someone else is finishing a dependency.
			p.SyncAdvanceTo(p.Now() + probeDelay*1000*1000)
			continue
		}
		c := &r.cliques[i]
		msg := make([]float64, 1<<c.sepvars)
		r.processUp(p, i, 0, len(c.pot), msg)
		r.finishUp(p, i, msg)
		// Mark done; parent may become ready.
		r.locks[i].Acquire(p)
		c.doneUp = true
		r.processedUp++
		p.Write(r.arrCtl.Addr(i))
		r.locks[i].Release(p)
		if c.parent >= 0 {
			pa := int(c.parent)
			r.locks[pa].Acquire(p)
			r.cliques[pa].pendingUp--
			p.Write(r.arrCtl.Addr(pa))
			r.locks[pa].Release(p)
		}
	}
	r.barrier.Wait(p)
	// Downward pass in the mirrored order.
	for int(r.processedDown) < nc {
		i := r.grabReady(p, id, false)
		if i < 0 {
			p.SyncAdvanceTo(p.Now() + probeDelay*1000*1000)
			continue
		}
		c := &r.cliques[i]
		sum := r.processDown(p, i, 0, len(c.pot))
		r.publishDown(p, i)
		r.locks[i].Acquire(p)
		c.doneDown = true
		r.processedDown++
		if i == 0 {
			r.rootSum = sum
		}
		p.Write(r.arrCtl.Addr(i))
		r.locks[i].Release(p)
	}
	r.barrier.Wait(p)
}

// grabReady finds and claims a ready clique: first an owned one, then any
// other (stealing). Claiming holds the clique's scheduling lock.
func (r *run) grabReady(p *core.Proc, id int, up bool) int {
	ready := func(i int) bool {
		c := &r.cliques[i]
		if up {
			return !c.doneUp && c.pendingUp == 0 && !c.claimed(up)
		}
		return !c.doneDown && (c.parent < 0 || r.cliques[c.parent].doneDown) && !c.claimed(up)
	}
	try := func(i int) bool {
		p.Read(r.arrCtl.Addr(i))
		if !ready(i) {
			return false
		}
		r.locks[i].Acquire(p)
		ok := ready(i)
		if ok {
			r.cliques[i].claim(up)
			p.Write(r.arrCtl.Addr(i))
		}
		r.locks[i].Release(p)
		return ok
	}
	for i := range r.cliques {
		if int(r.cliques[i].owner) == id && try(i) {
			return i
		}
	}
	for i := range r.cliques {
		if int(r.cliques[i].owner) != id && try(i) {
			p.Stats().StolenTasks++
			return i
		}
	}
	return -1
}

// claim tracking uses the pending counters' sign bits.
func (c *clique) claimed(up bool) bool {
	if up {
		return c.pendingUp < 0
	}
	return c.downClaimed
}

func (c *clique) claim(up bool) {
	if up {
		c.pendingUp = -1
	} else {
		c.downClaimed = true
	}
}

// --- Static version: within-clique parallelism in topological order ---

func (r *run) staticBody(p *core.Proc) {
	id := p.ID()
	np := p.NumProcs()
	// Upward: reverse topological order, all processors cooperating
	// inside each clique, each handling an aligned contiguous slice so
	// the table rows it touches map to its own sepset rows.
	for oi := len(r.order) - 1; oi >= 0; oi-- {
		i := int(r.order[oi])
		c := &r.cliques[i]
		n := len(c.pot)
		lo, hi := id*n/np, (id+1)*n/np
		msg := make([]float64, 1<<c.sepvars)
		r.processUp(p, i, lo, hi, msg)
		r.partial[id] = msg
		r.barrier.Wait(p)
		if id == 0 {
			total := make([]float64, 1<<c.sepvars)
			for q := 0; q < np; q++ {
				for j, v := range r.partial[q] {
					total[j] += v
				}
			}
			p.ComputeCycles(int64(np * len(total)))
			r.finishUp(p, i, total)
		}
		r.barrier.Wait(p)
	}
	// Downward: topological order, same cooperative slicing.
	for _, ii := range r.order {
		i := int(ii)
		c := &r.cliques[i]
		n := len(c.pot)
		lo, hi := id*n/np, (id+1)*n/np
		sum := r.processDown(p, i, lo, hi)
		if i == 0 {
			r.partial[id] = []float64{sum}
		}
		r.barrier.Wait(p)
		if id == 0 {
			r.publishDown(p, i)
			if i == 0 {
				var tot float64
				for q := 0; q < np; q++ {
					tot += r.partial[q][0]
				}
				r.rootSum = tot
			}
		}
		r.barrier.Wait(p)
	}
	if id == 0 {
		r.processedUp = int32(len(r.cliques))
		r.processedDown = int32(len(r.cliques))
	}
	r.barrier.Wait(p)
}

func (r *run) verify() error {
	if int(r.processedUp) != len(r.cliques) || int(r.processedDown) != len(r.cliques) {
		return fmt.Errorf("infer: processed %d up / %d down of %d cliques",
			r.processedUp, r.processedDown, len(r.cliques))
	}
	if math.IsNaN(r.rootSum) || math.IsInf(r.rootSum, 0) || r.rootSum <= 0 {
		return fmt.Errorf("infer: bad root belief %g", r.rootSum)
	}
	return nil
}

// RunForBelief executes the app and returns the root belief sum.
func RunForBelief(m *core.Machine, p workload.Params) (float64, error) {
	r, err := build(m, p)
	if err != nil {
		return 0, err
	}
	var body func(*core.Proc)
	if p.Variant == "static" {
		body = r.staticBody
	} else {
		body = r.dynamicBody
	}
	if err := m.Run(body); err != nil {
		return 0, err
	}
	if err := r.verify(); err != nil {
		return 0, err
	}
	return r.rootSum, nil
}
