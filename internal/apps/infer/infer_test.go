package infer

import (
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/workload"
)

func TestBeliefConsistentAcrossVariantsAndProcs(t *testing.T) {
	want, err := RunForBelief(core.New(core.Origin2000(1)), workload.Params{Size: 64, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 4, 8} {
		for _, variant := range []string{"", "static"} {
			got, err := RunForBelief(core.New(core.Origin2000(procs)), workload.Params{Size: 64, Seed: 6, Variant: variant})
			if err != nil {
				t.Fatalf("procs=%d %q: %v", procs, variant, err)
			}
			if err := workload.CheckClose("root belief", got, want, 1e-9); err != nil {
				t.Errorf("procs=%d %q: %v", procs, variant, err)
			}
		}
	}
}

func TestEveryCliqueProcessedOnce(t *testing.T) {
	m := core.New(core.Origin2000(8))
	r, err := build(m, workload.Params{Size: 128, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(r.dynamicBody); err != nil {
		t.Fatal(err)
	}
	for i := range r.cliques {
		if !r.cliques[i].doneUp || !r.cliques[i].doneDown {
			t.Fatalf("clique %d not fully processed", i)
		}
	}
}

func TestDynamicVersionSteals(t *testing.T) {
	m := core.New(core.Origin2000(8))
	if err := New().Run(m, workload.Params{Size: 128, Seed: 6}); err != nil {
		t.Fatal(err)
	}
	if m.Result().Counters.StolenTasks == 0 {
		t.Error("dynamic version should steal cliques (uneven table sizes)")
	}
}

func TestStaticBeatsDynamicAtScale(t *testing.T) {
	// Section 5.1: the static within-clique version reaches much higher
	// efficiency at large processor counts, where the dynamic version is
	// starved by the tree's limited clique-level parallelism and pays
	// communication for stolen cliques.
	elapsed := func(variant string, procs int) float64 {
		m := core.New(core.Origin2000(procs))
		if err := New().Run(m, workload.Params{Size: 256, Seed: 6, Variant: variant}); err != nil {
			t.Fatal(err)
		}
		return m.Elapsed().Milliseconds()
	}
	dyn := elapsed("", 32)
	stat := elapsed("static", 32)
	if stat >= dyn {
		t.Errorf("static (%.2fms) should beat dynamic (%.2fms) at 32 procs", stat, dyn)
	}
}

func TestTopologicalOrderValid(t *testing.T) {
	m := core.New(core.Origin2000(4))
	r, err := build(m, workload.Params{Size: 200, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, len(r.cliques))
	for _, i := range r.order {
		c := &r.cliques[i]
		if c.parent >= 0 && !seen[c.parent] {
			t.Fatalf("clique %d ordered before its parent", i)
		}
		seen[i] = true
	}
	if len(r.order) != len(r.cliques) {
		t.Fatalf("order covers %d of %d cliques", len(r.order), len(r.cliques))
	}
}
