package ocean

import (
	"math"
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/workload"
)

// TestGoldenChecksumAcrossProcCounts pins the relaxation result on a small
// fixed input at 1, 4 and 32 processors, with the online coherence checker
// enabled: the grid checksum must match the plain-Go reference exactly (the
// decomposition never reorders a cell's update arithmetic), and the result
// must stay finite — the energy-conservation guard for the solver.
func TestGoldenChecksumAcrossProcCounts(t *testing.T) {
	const (
		size  = 66
		seed  = 5
		steps = 4
	)
	want := Checksum(size, seed, steps)
	if math.IsNaN(want) || math.IsInf(want, 0) {
		t.Fatalf("reference checksum not finite: %g", want)
	}
	for _, procs := range []int{1, 4, 32} {
		cfg := core.Origin2000(procs)
		cfg.Check = true
		m := core.New(cfg)
		got, err := RunForSum(m, workload.Params{Size: size, Seed: seed, Steps: steps})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if got != want {
			t.Errorf("procs=%d: checksum %g != reference %g", procs, got, want)
		}
	}
}
