package ocean

import (
	"fmt"
	"math"
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/trace"
	"origin2000/internal/workload"
)

// TestGoldenChecksumAcrossProcCounts pins the relaxation result on a small
// fixed input at 1, 4 and 32 processors, with the online coherence checker
// enabled: the grid checksum must match the plain-Go reference exactly (the
// decomposition never reorders a cell's update arithmetic), and the result
// must stay finite — the energy-conservation guard for the solver.
func TestGoldenChecksumAcrossProcCounts(t *testing.T) {
	const (
		size  = 66
		seed  = 5
		steps = 4
	)
	want := Checksum(size, seed, steps)
	if math.IsNaN(want) || math.IsInf(want, 0) {
		t.Fatalf("reference checksum not finite: %g", want)
	}
	for _, procs := range []int{1, 4, 32} {
		procs := procs
		run := func(o trace.Options) (*core.Machine, float64, error) {
			cfg := core.Origin2000(procs)
			cfg.Check = true
			cfg.Trace = o
			m := core.New(cfg)
			got, err := RunForSum(m, workload.Params{Size: size, Seed: seed, Steps: steps})
			return m, got, err
		}
		_, got, err := run(trace.Options{})
		if err == nil && got == want {
			continue
		}
		// Failed: re-run the identical (deterministic) scenario traced and
		// ship the event stream as a CI artifact.
		if path, aerr := trace.CaptureArtifact(fmt.Sprintf("ocean-golden-p%d", procs),
			func(o trace.Options) (*trace.Tracer, error) {
				m, _, err := run(o)
				return m.Tracer(), err
			}); path != "" {
			t.Logf("failure trace written to %s", path)
		} else if aerr != nil {
			t.Logf("failure trace capture failed: %v", aerr)
		}
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		t.Errorf("procs=%d: checksum %g != reference %g", procs, got, want)
	}
}
