// Package ocean implements the grid-solver core of SPLASH-2 Ocean: a
// red-black Gauss-Seidel relaxation over a large 2-D grid with
// nearest-neighbour communication. The paper uses it as its regular
// near-neighbour workload (Sections 4.1, 6.2, 7.1) and compares tiled
// against rowwise partitioning (Section 5.1) and data-placement policies
// (Table 3).
package ocean

import (
	"fmt"
	"math"

	"origin2000/internal/core"
	"origin2000/internal/synchro"
	"origin2000/internal/workload"
)

const (
	stencilCycles = 22 // per interior point per relaxation
	omega         = 1.15
	elemBytes     = 8
	defaultSteps  = 12
)

// App is the Ocean workload.
type App struct{}

// New returns the Ocean application.
func New() *App { return &App{} }

// Name implements workload.App.
func (*App) Name() string { return "Ocean" }

// Unit implements workload.App.
func (*App) Unit() string { return "grid dim" }

// BasicSize implements workload.App: 1026x1026 grids.
func (*App) BasicSize() int { return 1026 }

// SweepSizes implements workload.App.
func (*App) SweepSizes() []int { return []int{258, 514, 1026, 2050} }

// Variants implements workload.App: tiled partitions (original) and the
// rowwise restructuring tried in Section 5.1.
func (*App) Variants() []string { return []string{"", "rowwise"} }

// MaxProcs implements workload.App.
func (*App) MaxProcs() int { return 128 }

// Run implements workload.App.
func (*App) Run(m *core.Machine, p workload.Params) error {
	o, err := build(m, p)
	if err != nil {
		return err
	}
	if err := m.Run(o.body); err != nil {
		return err
	}
	return o.verify()
}

// Checksum runs the same relaxation in plain Go and returns the grid sum
// (test aid: the red-black sweep is deterministic under any partitioning).
func Checksum(size int, seed int64, steps int) float64 {
	if steps <= 0 {
		steps = defaultSteps
	}
	g := newGrid(size, seed)
	for it := 0; it < steps; it++ {
		for color := 0; color < 2; color++ {
			g.relaxRows(1, g.dim-1, color, nil, nil, 0, g.dim)
		}
	}
	var sum float64
	for _, v := range g.cells {
		sum += v
	}
	return sum
}

type grid struct {
	dim   int // full dimension including boundary
	cells []float64
}

func newGrid(size int, seed int64) *grid {
	g := &grid{dim: size, cells: make([]float64, size*size)}
	rng := workload.NewRand(seed)
	for i := range g.cells {
		g.cells[i] = rng.Float64()
	}
	return g
}

// relaxRows updates the points of one color in rows [rLo, rHi) and columns
// [cLo, cHi), issuing simulated traffic through p/arr when non-nil.
func (g *grid) relaxRows(rLo, rHi, color int, p *core.Proc, arr *core.Array, cLo, cHi int) float64 {
	dim := g.dim
	if cLo < 1 {
		cLo = 1
	}
	if cHi > dim-1 {
		cHi = dim - 1
	}
	var diff float64
	elemsPerBlock := core.BlockBytes / elemBytes
	for r := rLo; r < rHi; r++ {
		row := g.cells[r*dim : (r+1)*dim]
		up := g.cells[(r-1)*dim : r*dim]
		down := g.cells[(r+1)*dim : (r+2)*dim]
		for c := cLo; c < cHi; c++ {
			if (r+c)&1 != color {
				continue
			}
			old := row[c]
			row[c] = old + omega*((up[c]+down[c]+row[c-1]+row[c+1])/4-old)
			diff += math.Abs(row[c] - old)
		}
		if p != nil {
			n := cHi - cLo
			// One pass over the three rows' blocks in this column range.
			for b := cLo; b < cHi; b += elemsPerBlock {
				p.Read(arr.Addr((r-1)*dim + b))
				p.Read(arr.Addr((r+1)*dim + b))
				p.Write(arr.Addr(r*dim + b))
			}
			// Column-boundary neighbours sit in adjacent blocks.
			if cLo > 1 {
				p.Read(arr.Addr(r*dim + cLo - 1))
			}
			if cHi < dim-1 {
				p.Read(arr.Addr(r*dim + cHi))
			}
			p.ComputeCycles(int64(n/2) * stencilCycles)
		}
	}
	return diff
}

type oceanRun struct {
	m       *core.Machine
	g       *grid
	arr     *core.Array
	barrier *synchro.Barrier
	steps   int
	px, py  int // tile grid (px columns of tiles, py rows)
	initial float64
	final   float64
	partial *core.Array // per-processor residual lines
	sums    []float64
}

func build(m *core.Machine, p workload.Params) (*oceanRun, error) {
	if p.Size < 6 {
		return nil, fmt.Errorf("ocean: grid dim %d too small", p.Size)
	}
	np := m.NumProcs()
	o := &oceanRun{
		m:       m,
		g:       newGrid(p.Size, p.Seed),
		barrier: synchro.NewBarrier(m, np, p.Barrier),
		steps:   p.Steps,
		sums:    make([]float64, np),
	}
	if o.steps <= 0 {
		o.steps = defaultSteps
	}
	o.arr = m.Alloc("ocean.grid", p.Size*p.Size, elemBytes)
	o.partial = m.Alloc("ocean.partial", np, core.BlockBytes)
	// Partition: near-square tiles, or rows for the restructured variant.
	if p.Variant == "rowwise" {
		o.px, o.py = 1, np
	} else {
		o.px, o.py = factor(np)
	}
	// Manual placement: page goes to the owner of its first element.
	dim := p.Size
	o.arr.PlaceOwner(func(pg int) int {
		elem := pg * (16384 / elemBytes)
		if elem >= dim*dim {
			elem = dim*dim - 1
		}
		return o.ownerOf(elem/dim, elem%dim)
	})
	return o, nil
}

// factor splits np into the most square px*py grid.
func factor(np int) (px, py int) {
	px = int(math.Sqrt(float64(np)))
	for np%px != 0 {
		px--
	}
	return px, np / px
}

// ownerOf maps a grid point to the processor owning it.
func (o *oceanRun) ownerOf(r, c int) int {
	dim := o.g.dim
	interior := dim - 2
	tr := (r - 1) * o.py / interior
	tc := (c - 1) * o.px / interior
	if tr < 0 {
		tr = 0
	}
	if tr >= o.py {
		tr = o.py - 1
	}
	if tc < 0 {
		tc = 0
	}
	if tc >= o.px {
		tc = o.px - 1
	}
	return tr*o.px + tc
}

// bounds returns processor id's tile.
func (o *oceanRun) bounds(id int) (rLo, rHi, cLo, cHi int) {
	interior := o.g.dim - 2
	tr := id / o.px
	tc := id % o.px
	rLo = 1 + tr*interior/o.py
	rHi = 1 + (tr+1)*interior/o.py
	cLo = 1 + tc*interior/o.px
	cHi = 1 + (tc+1)*interior/o.px
	return
}

func (o *oceanRun) body(p *core.Proc) {
	rLo, rHi, cLo, cHi := o.bounds(p.ID())
	for it := 0; it < o.steps; it++ {
		var diff float64
		for color := 0; color < 2; color++ {
			diff += o.g.relaxRows(rLo, rHi, color, p, o.arr, cLo, cHi)
			o.barrier.Wait(p)
		}
		// Residual reduction: everyone publishes a partial sum, proc 0
		// combines them, everyone reads the result.
		o.sums[p.ID()] = diff
		p.Write(o.partial.Addr(p.ID()))
		o.barrier.Wait(p)
		if p.ID() == 0 {
			var total float64
			for q := 0; q < p.NumProcs(); q++ {
				p.Read(o.partial.Addr(q))
				total += o.sums[q]
			}
			if it == 0 {
				o.initial = total
			}
			o.final = total
		}
		o.barrier.Wait(p)
	}
}

func (o *oceanRun) verify() error {
	if o.initial <= 0 {
		return fmt.Errorf("ocean: no initial residual recorded")
	}
	if o.final >= o.initial {
		return fmt.Errorf("ocean: residual did not decrease (%.4g -> %.4g)", o.initial, o.final)
	}
	return nil
}

// Sum returns the grid checksum after Run (test aid).
func (o *oceanRun) Sum() float64 {
	var s float64
	for _, v := range o.g.cells {
		s += v
	}
	return s
}

// RunForSum executes the app and returns the final grid checksum, for
// cross-processor-count determinism tests.
func RunForSum(m *core.Machine, p workload.Params) (float64, error) {
	o, err := build(m, p)
	if err != nil {
		return 0, err
	}
	if err := m.Run(o.body); err != nil {
		return 0, err
	}
	if err := o.verify(); err != nil {
		return 0, err
	}
	return o.Sum(), nil
}
