package ocean

import (
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/mempolicy"
	"origin2000/internal/workload"
)

func TestParallelMatchesSequentialExactly(t *testing.T) {
	// Red-black relaxation is deterministic under any partitioning, so
	// the grid checksum must match the plain-Go reference bit for bit.
	want := Checksum(66, 5, 4)
	for _, procs := range []int{1, 4, 9, 16} {
		m := core.New(core.Origin2000(procs))
		got, err := RunForSum(m, workload.Params{Size: 66, Seed: 5, Steps: 4})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if got != want {
			t.Errorf("procs=%d: checksum %g != reference %g", procs, got, want)
		}
	}
}

func TestRowwiseVariantMatchesToo(t *testing.T) {
	want := Checksum(66, 5, 4)
	m := core.New(core.Origin2000(8))
	got, err := RunForSum(m, workload.Params{Size: 66, Seed: 5, Steps: 4, Variant: "rowwise"})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("rowwise checksum %g != reference %g", got, want)
	}
}

func TestSpeedupAndNearNeighbourTraffic(t *testing.T) {
	app := New()
	elapsed := func(procs int) (float64, int64) {
		m := core.New(core.Origin2000(procs))
		if err := app.Run(m, workload.Params{Size: 514, Seed: 5, Steps: 4}); err != nil {
			t.Fatal(err)
		}
		r := m.Result()
		return m.Elapsed().Milliseconds(), r.Counters.RemoteClean + r.Counters.RemoteDirty
	}
	seq, comm1 := elapsed(1)
	par, comm16 := elapsed(16)
	if speedup := seq / par; speedup < 8 {
		t.Errorf("speedup at 16 procs = %.2f, want >= 8", speedup)
	}
	if comm1 != 0 {
		t.Errorf("sequential run has %d remote misses", comm1)
	}
	if comm16 == 0 {
		t.Error("parallel run shows no boundary communication")
	}
}

func TestManualPlacementBeatsRoundRobin(t *testing.T) {
	// Table 3's effect: with large grids, first-touch/manual placement
	// makes capacity misses local; round-robin scatters them.
	run := func(ignore bool) float64 {
		cfg := core.Origin2000(16)
		cfg.Cache.SizeBytes = 64 << 10 // shrink cache so capacity misses matter
		cfg.IgnorePlacement = ignore
		if ignore {
			cfg.Placement = mempolicy.RoundRobin
		}
		m := core.New(cfg)
		if err := New().Run(m, workload.Params{Size: 258, Seed: 5, Steps: 4}); err != nil {
			t.Fatal(err)
		}
		return m.Elapsed().Milliseconds()
	}
	manual := run(false)
	rr := run(true)
	if manual >= rr {
		t.Errorf("manual placement (%.3fms) should beat round-robin (%.3fms)", manual, rr)
	}
}

func TestVerifyCatchesResidualGrowth(t *testing.T) {
	o := &oceanRun{initial: 1.0, final: 2.0}
	if err := o.verify(); err == nil {
		t.Error("verify should reject a growing residual")
	}
}

func TestFactorIsNearSquare(t *testing.T) {
	for _, np := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		px, py := factor(np)
		if px*py != np {
			t.Fatalf("factor(%d) = %d x %d", np, px, py)
		}
		if py > 2*px*2 {
			t.Errorf("factor(%d) = %dx%d too skewed", np, px, py)
		}
	}
}
