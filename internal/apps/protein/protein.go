// Package protein implements the hierarchical protein-structure
// determination application: a tree of substructure nodes, each with many
// parallelizable work units, whose edges are cross-node dependences. Nodes
// are assigned to processor groups from (noisy) workload estimates; the
// paper's load-balancing technique is *process regrouping* — an idle group
// takes over a free node or joins a working group — rather than task
// stealing. The "static" variant disables regrouping as a baseline.
package protein

import (
	"fmt"

	"origin2000/internal/core"
	"origin2000/internal/synchro"
	"origin2000/internal/workload"
)

const (
	unitCycles    = 30000 // one unit of substructure computation
	unitBytes     = 512   // data touched per unit
	regroupCycles = 20000 // overhead of joining a working group
	unitChunk     = 2     // units claimed per counter operation
	probeMicros   = 3
)

// App is the Protein workload.
type App struct{}

// New returns the application.
func New() *App { return &App{} }

// Name implements workload.App.
func (*App) Name() string { return "Protein" }

// Unit implements workload.App.
func (*App) Unit() string { return "substructures" }

// BasicSize implements workload.App: the helix16 input.
func (*App) BasicSize() int { return 16 }

// SweepSizes implements workload.App.
func (*App) SweepSizes() []int { return []int{8, 16, 32, 64} }

// Variants implements workload.App: "" is the paper's algorithm with
// process regrouping; "static" disables regrouping.
func (*App) Variants() []string { return []string{"", "static"} }

// MaxProcs implements workload.App: results to 64 processors.
func (*App) MaxProcs() int { return 64 }

// Run implements workload.App.
func (*App) Run(m *core.Machine, p workload.Params) error {
	r, err := build(m, p)
	if err != nil {
		return err
	}
	if err := m.Run(r.body); err != nil {
		return err
	}
	return r.verify()
}

// node is one substructure of the protein.
type node struct {
	parent   int32
	children []int32
	units    int   // total work units
	taken    int   // units handed out
	finished int   // units completed
	pending  int32 // children not yet done
	done     bool
	dataBase int // element offset into the shared data array

	groupLo, groupHi int // assigned processor range
	estimate         float64
}

type run struct {
	m     *core.Machine
	nodes []node

	arrData *core.Array
	arrCtl  *core.Array
	locks   []*synchro.Lock
	barrier *synchro.Barrier

	regroup   bool
	doneCount int32
	executed  []int64 // per-proc units completed
	total     int
}

func build(m *core.Machine, p workload.Params) (*run, error) {
	if p.Size < 2 {
		return nil, fmt.Errorf("protein: %d substructures too few", p.Size)
	}
	np := m.NumProcs()
	rng := workload.NewRand(p.Seed)
	nn := 2*p.Size - 1
	r := &run{
		m:        m,
		nodes:    make([]node, nn),
		locks:    make([]*synchro.Lock, nn),
		barrier:  synchro.NewBarrier(m, np, p.Barrier),
		regroup:  p.Variant != "static",
		executed: make([]int64, np),
	}
	// Random binary tree: node 0 is the root; nodes 1..nn-1 attach to a
	// random node that still has fewer than two children.
	for i := 1; i < nn; i++ {
		for {
			pa := rng.Intn(i)
			if len(r.nodes[pa].children) < 2 {
				r.nodes[i].parent = int32(pa)
				r.nodes[pa].children = append(r.nodes[pa].children, int32(i))
				break
			}
		}
	}
	r.nodes[0].parent = -1
	dataTotal := 0
	for i := range r.nodes {
		n := &r.nodes[i]
		n.units = 24 + rng.Intn(120)
		n.dataBase = dataTotal
		dataTotal += n.units
		r.total += n.units
		r.locks[i] = synchro.NewLock(m, p.Lock)
	}
	for i := range r.nodes {
		r.nodes[i].pending = int32(len(r.nodes[i].children))
	}
	// Noisy workload estimates drive the initial group assignment.
	subtree := make([]float64, nn)
	for i := nn - 1; i >= 0; i-- {
		est := float64(r.nodes[i].units) * (0.6 + 0.8*rng.Float64())
		subtree[i] = est
		for _, c := range r.nodes[i].children {
			subtree[i] += subtree[c]
		}
		r.nodes[i].estimate = est
	}
	r.assignGroups(0, 0, np, subtree)
	r.arrData = m.Alloc("protein.data", dataTotal, unitBytes)
	r.arrCtl = m.Alloc("protein.ctl", nn, core.BlockBytes)
	r.arrData.PlaceOwner(func(pg int) int {
		elem := pg * (16384 / unitBytes)
		for i := range r.nodes {
			if elem < r.nodes[i].dataBase+r.nodes[i].units {
				return r.nodes[i].groupLo
			}
		}
		return 0
	})
	return r, nil
}

// assignGroups splits the processor range over the children proportionally
// to their estimated subtree work; every node keeps the full range of its
// subtree's processors for its own units.
func (r *run) assignGroups(i int, lo, hi int, subtree []float64) {
	n := &r.nodes[i]
	n.groupLo, n.groupHi = lo, hi
	if len(n.children) == 0 {
		return
	}
	var tot float64
	for _, c := range n.children {
		tot += subtree[c]
	}
	if tot == 0 || hi-lo <= 1 {
		for _, c := range n.children {
			r.assignGroups(int(c), lo, hi, subtree)
		}
		return
	}
	at := lo
	for k, c := range n.children {
		share := int(float64(hi-lo)*subtree[c]/tot + 0.5)
		if share < 1 {
			share = 1
		}
		end := at + share
		if k == len(n.children)-1 || end > hi {
			end = hi
		}
		if at >= hi {
			at = hi - 1
		}
		r.assignGroups(int(c), at, max(end, at+1), subtree)
		at = end
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ready reports whether node i can be worked on.
func (r *run) ready(i int) bool {
	n := &r.nodes[i]
	return !n.done && n.pending == 0 && n.taken < n.units
}

// pickNode finds a ready node whose group contains id.
func (r *run) pickNode(p *core.Proc, id int) int {
	for i := range r.nodes {
		p.Read(r.arrCtl.Addr(i))
		if r.ready(i) && id >= r.nodes[i].groupLo && id < r.nodes[i].groupHi {
			return i
		}
	}
	return -1
}

// joinBusiest implements process regrouping: the idle processor joins the
// ready node with the most remaining units, paying the regroup overhead.
func (r *run) joinBusiest(p *core.Proc, id int) int {
	best, bestLeft := -1, 0
	for i := range r.nodes {
		p.Read(r.arrCtl.Addr(i))
		if r.ready(i) {
			if left := r.nodes[i].units - r.nodes[i].taken; left > bestLeft {
				best, bestLeft = i, left
			}
		}
	}
	if best < 0 {
		return -1
	}
	// Join: extend the group and pull the node's data description.
	r.locks[best].Acquire(p)
	n := &r.nodes[best]
	if id < n.groupLo {
		n.groupLo = id
	}
	if id >= n.groupHi {
		n.groupHi = id + 1
	}
	p.Write(r.arrCtl.Addr(best))
	r.locks[best].Release(p)
	p.ReadBytes(r.arrData.Addr(n.dataBase), unitBytes)
	p.ComputeCycles(regroupCycles)
	p.Stats().StolenTasks++
	return best
}

// workOn claims and executes unit chunks of node i until it drains.
func (r *run) workOn(p *core.Proc, id, i int) {
	n := &r.nodes[i]
	for {
		r.locks[i].Acquire(p)
		if n.taken >= n.units {
			r.locks[i].Release(p)
			return
		}
		lo := n.taken
		k := unitChunk
		if lo+k > n.units {
			k = n.units - lo
		}
		n.taken += k
		p.Write(r.arrCtl.Addr(i))
		r.locks[i].Release(p)
		for u := lo; u < lo+k; u++ {
			p.ReadBytes(r.arrData.Addr(n.dataBase+u), unitBytes)
			p.ComputeCycles(unitCycles)
			p.WriteBytes(r.arrData.Addr(n.dataBase+u), core.BlockBytes)
		}
		r.executed[id] += int64(k)
		p.Stats().ExecutedTasks += int64(k)
		// Completion bookkeeping.
		r.locks[i].Acquire(p)
		n.finished += k
		last := n.finished == n.units
		if last {
			n.done = true
			r.doneCount++
		}
		p.Write(r.arrCtl.Addr(i))
		r.locks[i].Release(p)
		if last {
			if pa := n.parent; pa >= 0 {
				r.locks[pa].Acquire(p)
				r.nodes[pa].pending--
				p.Write(r.arrCtl.Addr(int(pa)))
				r.locks[pa].Release(p)
			}
			return
		}
	}
}

func (r *run) body(p *core.Proc) {
	id := p.ID()
	for int(r.doneCount) < len(r.nodes) {
		i := r.pickNode(p, id)
		if i < 0 && r.regroup {
			i = r.joinBusiest(p, id)
		}
		if i < 0 {
			// Idle: dependence or group starvation. With regrouping
			// this happens only near the very end.
			p.SyncAdvanceTo(p.Now() + probeMicros*1000*1000)
			continue
		}
		r.workOn(p, id, i)
	}
	r.barrier.Wait(p)
}

func (r *run) verify() error {
	var exec int64
	for _, e := range r.executed {
		exec += e
	}
	if exec != int64(r.total) {
		return fmt.Errorf("protein: executed %d units, want %d", exec, r.total)
	}
	for i := range r.nodes {
		if !r.nodes[i].done {
			return fmt.Errorf("protein: node %d unfinished", i)
		}
	}
	return nil
}

// RunForStats executes the app and returns (units executed, regroups).
func RunForStats(m *core.Machine, p workload.Params) (int64, int64, error) {
	r, err := build(m, p)
	if err != nil {
		return 0, 0, err
	}
	if err := m.Run(r.body); err != nil {
		return 0, 0, err
	}
	if err := r.verify(); err != nil {
		return 0, 0, err
	}
	var exec, joins int64
	for i := 0; i < m.NumProcs(); i++ {
		exec += r.executed[i]
		joins += m.Proc(i).Stats().StolenTasks
	}
	return exec, joins, nil
}
