package protein

import (
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/workload"
)

func TestAllUnitsExecutedOnce(t *testing.T) {
	for _, procs := range []int{1, 4, 16} {
		for _, variant := range []string{"", "static"} {
			m := core.New(core.Origin2000(procs))
			if _, _, err := RunForStats(m, workload.Params{Size: 16, Seed: 3, Variant: variant}); err != nil {
				t.Fatalf("procs=%d %q: %v", procs, variant, err)
			}
		}
	}
}

func TestRegroupingHappensAndHelps(t *testing.T) {
	run := func(variant string) (float64, int64) {
		m := core.New(core.Origin2000(16))
		_, joins, err := RunForStats(m, workload.Params{Size: 16, Seed: 3, Variant: variant})
		if err != nil {
			t.Fatal(err)
		}
		return m.Elapsed().Milliseconds(), joins
	}
	regTime, joins := run("")
	statTime, statJoins := run("static")
	if joins == 0 {
		t.Error("regrouping variant never regrouped")
	}
	if statJoins != 0 {
		t.Error("static variant should not regroup")
	}
	if regTime >= statTime {
		t.Errorf("regrouping (%.2fms) should beat static groups (%.2fms)", regTime, statTime)
	}
}

func TestStaticVariantAccumulatesIdleSyncTime(t *testing.T) {
	m := core.New(core.Origin2000(16))
	if _, _, err := RunForStats(m, workload.Params{Size: 16, Seed: 3, Variant: "static"}); err != nil {
		t.Fatal(err)
	}
	avg := m.Result().Average()
	if avg.Sync == 0 {
		t.Error("static variant should show idle (sync) time from estimate errors")
	}
}

func TestGroupAssignmentCoversAllProcs(t *testing.T) {
	m := core.New(core.Origin2000(8))
	r, err := build(m, workload.Params{Size: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	root := r.nodes[0]
	if root.groupLo != 0 || root.groupHi != 8 {
		t.Errorf("root group = [%d,%d), want [0,8)", root.groupLo, root.groupHi)
	}
	for i := range r.nodes {
		n := &r.nodes[i]
		if n.groupLo < 0 || n.groupHi > 8 || n.groupLo >= n.groupHi {
			t.Errorf("node %d group [%d,%d) invalid", i, n.groupLo, n.groupHi)
		}
	}
}

func TestTreeDependenciesRespected(t *testing.T) {
	// A parent's units must not start before its children finish; the
	// scheduler enforces it via pending counters. Verify post-hoc: all
	// nodes done and each parent has pending == 0.
	m := core.New(core.Origin2000(4))
	r, err := build(m, workload.Params{Size: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(r.body); err != nil {
		t.Fatal(err)
	}
	for i := range r.nodes {
		if r.nodes[i].pending != 0 {
			t.Errorf("node %d still pending %d children", i, r.nodes[i].pending)
		}
	}
}
