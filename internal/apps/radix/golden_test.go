package radix

import (
	"sort"
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/workload"
)

// TestGoldenOutputMatchesSortSlice pins the full sorted output against
// sort.Slice on the same pinned input, at 1, 4 and 32 processors, for both
// the radix and sample-sort bodies, with the online coherence checker
// enabled. Keys are uint32s, so every processor count must produce the
// identical permutation-free sequence.
func TestGoldenOutputMatchesSortSlice(t *testing.T) {
	const n = 1 << 12
	for _, variant := range []string{"", "sample"} {
		var want []uint32
		for _, procs := range []int{1, 4, 32} {
			cfg := core.Origin2000(procs)
			cfg.Check = true
			m := core.New(cfg)
			r := build(m, workload.Params{Size: n, Seed: 21, Variant: variant})
			if want == nil {
				want = append([]uint32(nil), r.keys...)
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			}
			body := r.radixBody
			if variant == "sample" {
				body = r.sampleBody
			}
			if err := m.Run(body); err != nil {
				t.Fatalf("%q procs=%d: %v", variant, procs, err)
			}
			if len(r.out) != len(want) {
				t.Fatalf("%q procs=%d: out has %d keys, want %d", variant, procs, len(r.out), len(want))
			}
			for i := range want {
				if r.out[i] != want[i] {
					t.Fatalf("%q procs=%d: out[%d] = %d, want %d", variant, procs, i, r.out[i], want[i])
				}
			}
		}
	}
}
