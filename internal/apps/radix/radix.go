// Package radix implements the SPLASH-2 parallel radix sort whose
// scattered remote writes in the permutation phase are the paper's
// large-scale bottleneck (Section 5.1), and the Sample sort restructuring
// that replaces them with stride-one remote reads at the cost of sorting
// locally twice (bounding parallel efficiency near 50%).
package radix

import (
	"fmt"
	"sort"

	"origin2000/internal/core"
	"origin2000/internal/synchro"
	"origin2000/internal/workload"
)

const (
	radixBits   = 8
	radixSize   = 1 << radixBits
	passes      = 32 / radixBits
	keyBytes    = 4
	countCycles = 3  // histogram per key
	permCycles  = 4  // permutation per key
	sortCycles  = 12 // local sort per key per pass (read+bucket+write)
	sampleCount = 64 // samples contributed per processor (sample sort)
	bufKeys     = 32 // staging-buffer capacity per digit (buffered variant)
)

// App is the Radix/Sample sort workload.
type App struct{}

// New returns the sorting application.
func New() *App { return &App{} }

// Name implements workload.App.
func (*App) Name() string { return "Radix" }

// Unit implements workload.App.
func (*App) Unit() string { return "keys" }

// BasicSize implements workload.App: 4M keys.
func (*App) BasicSize() int { return 4 << 20 }

// SweepSizes implements workload.App.
func (*App) SweepSizes() []int { return []int{1 << 20, 4 << 20, 16 << 20, 128 << 20} }

// Variants implements workload.App: "buffered" is the paper's first,
// unsuccessful fix (local staging buffers before the permutation writes);
// "sample" is the restructuring that works.
func (*App) Variants() []string { return []string{"", "buffered", "sample"} }

// MaxProcs implements workload.App.
func (*App) MaxProcs() int { return 128 }

// Run implements workload.App.
func (*App) Run(m *core.Machine, p workload.Params) error {
	r := build(m, p)
	var body func(*core.Proc)
	switch p.Variant {
	case "sample":
		body = r.sampleBody
	case "buffered":
		r.buffered = true
		body = r.radixBody
	default:
		body = r.radixBody
	}
	if err := m.Run(body); err != nil {
		return err
	}
	return r.verify()
}

type run struct {
	m    *core.Machine
	n    int
	keys []uint32 // src buffer
	temp []uint32 // dst buffer
	out  []uint32 // final output view (points at keys or temp)

	arrKeys *core.Array
	arrTemp *core.Array
	arrHist *core.Array // [proc][radixSize] counts
	arrSamp *core.Array // samples + splitters
	arrSeg  *core.Array // [proc][proc] bucket boundaries (sample sort)

	hist      [][]int64 // per-proc histogram of the current pass
	ranks     [][]int64 // per-proc starting offsets per digit
	samples   []uint32
	splitters []uint32
	segments  [][]int // [q][p] = start of p's bucket within q's run
	chunks    [][]uint32

	barrier  *synchro.Barrier
	pre      bool
	buffered bool   // stage permutation writes in local buffers (Section 5.1)
	check    uint64 // input multiset checksum

	arrBuf *core.Array // staging buffers, one region per processor
}

func build(m *core.Machine, p workload.Params) *run {
	np := m.NumProcs()
	n := p.Size
	r := &run{
		m:       m,
		n:       n,
		keys:    make([]uint32, n),
		temp:    make([]uint32, n),
		arrKeys: m.Alloc("radix.keys", n, keyBytes),
		arrTemp: m.Alloc("radix.temp", n, keyBytes),
		arrHist: m.Alloc("radix.hist", np*radixSize, 8),
		arrSamp: m.Alloc("radix.samples", np*sampleCount+np, keyBytes),
		arrSeg:  m.Alloc("radix.segments", np*np, 8),
		barrier: synchro.NewBarrier(m, np, p.Barrier),
		pre:     p.Prefetch,
	}
	rng := workload.NewRand(p.Seed)
	for i := range r.keys {
		r.keys[i] = rng.Uint32()
		r.check += workload.Mix64(uint64(r.keys[i]))
	}
	r.hist = make([][]int64, np)
	r.ranks = make([][]int64, np)
	for q := range r.hist {
		r.hist[q] = make([]int64, radixSize)
		r.ranks[q] = make([]int64, radixSize)
	}
	r.samples = make([]uint32, np*sampleCount)
	r.splitters = make([]uint32, np-1)
	r.segments = make([][]int, np)
	for q := range r.segments {
		r.segments[q] = make([]int, np+1)
	}
	r.chunks = make([][]uint32, np)
	// Manual placement: key chunks at their owners.
	r.arrKeys.PlaceElemBlocked(np)
	r.arrTemp.PlaceElemBlocked(np)
	r.arrHist.PlaceElemBlocked(np)
	r.arrBuf = m.Alloc("radix.buffers", np*radixSize*bufKeys, keyBytes)
	r.arrBuf.PlaceElemBlocked(np)
	return r
}

func (r *run) chunk(id int) (lo, hi int) {
	np := r.m.NumProcs()
	lo = id * r.n / np
	hi = (id + 1) * r.n / np
	return
}

// --- Parallel radix sort (original) ---

func (r *run) radixBody(p *core.Proc) {
	np := p.NumProcs()
	id := p.ID()
	lo, hi := r.chunk(id)
	src, dst := r.keys, r.temp
	arrSrc, arrDst := r.arrKeys, r.arrTemp
	for pass := 0; pass < passes; pass++ {
		shift := uint(pass * radixBits)
		// Phase 1: local histogram over the owned chunk (stride-one).
		p.SetPhase("histogram")
		h := r.hist[id]
		for d := range h {
			h[d] = 0
		}
		for i := lo; i < hi; i += core.BlockBytes / keyBytes {
			p.Read(arrSrc.Addr(i))
		}
		for i := lo; i < hi; i++ {
			h[(src[i]>>shift)&(radixSize-1)]++
		}
		p.ComputeCycles(int64(hi-lo) * countCycles)
		// Publish the histogram.
		for d := 0; d < radixSize; d += core.BlockBytes / 8 {
			p.Write(r.arrHist.Addr(id*radixSize + d))
		}
		r.barrier.Wait(p)
		// Phase 2: ranks. Every processor reads all histograms (the
		// dense method; prefetching the next processor's histogram is
		// where Section 6.1 finds radix prefetch helps).
		p.SetPhase("rank")
		myRank := r.ranks[id]
		for q := 0; q < np; q++ {
			if r.pre && q+1 < np {
				p.Prefetch(r.arrHist.Addr((q + 1) * radixSize))
			}
			for d := 0; d < radixSize; d += core.BlockBytes / 8 {
				p.Read(r.arrHist.Addr(q*radixSize + d))
			}
		}
		var cum int64
		for d := 0; d < radixSize; d++ {
			var before int64
			for q := 0; q < id; q++ {
				before += r.hist[q][d]
			}
			myRank[d] = cum + before
			var all int64
			for q := 0; q < np; q++ {
				all += r.hist[q][d]
			}
			cum += all
		}
		p.ComputeCycles(int64(np*radixSize) / 4)
		r.barrier.Wait(p)
		// Phase 3: permutation — temporally scattered remote writes,
		// the communication pattern that collapses at 128 processors.
		// The "buffered" variant first writes keys to small contiguous
		// local buffers and transfers them in bulk; the paper found the
		// local copying outweighs any contention savings, because the
		// scattered writes ultimately land in small contiguous chunks
		// anyway so the remote traffic barely changes.
		p.SetPhase("permutation")
		if r.buffered {
			bufFill := make([]int, radixSize)
			flush := func(d uint32) {
				n := bufFill[d]
				if n == 0 {
					return
				}
				pos := int(myRank[d])
				// The copy re-reads the staging buffer and writes the
				// destination chunk.
				p.ReadBytes(r.arrBuf.Addr(id*radixSize*bufKeys+int(d)*bufKeys), n*keyBytes)
				for b := 0; b < n*keyBytes; b += core.BlockBytes {
					p.Write(arrDst.Addr(pos + b/keyBytes))
				}
				myRank[d] += int64(n)
				bufFill[d] = 0
				p.ComputeCycles(int64(n) * 4) // bulk copy
			}
			for i := lo; i < hi; i++ {
				d := (src[i] >> shift) & (radixSize - 1)
				pos := int(myRank[d]) + bufFill[d]
				dst[pos] = src[i]
				// The staging write is local and cache-friendly...
				p.Write(r.arrBuf.Addr(id*radixSize*bufKeys + int(d)*bufKeys + bufFill[d]))
				bufFill[d]++
				// ...but it is pure extra work.
				p.ComputeCycles(3)
				if bufFill[d] == bufKeys {
					flush(d)
				}
			}
			for d := uint32(0); d < radixSize; d++ {
				flush(d)
			}
		} else {
			for i := lo; i < hi; i++ {
				d := (src[i] >> shift) & (radixSize - 1)
				pos := myRank[d]
				myRank[d]++
				dst[pos] = src[i]
				p.Write(arrDst.Addr(int(pos)))
			}
		}
		p.ComputeCycles(int64(hi-lo) * permCycles)
		r.barrier.Wait(p)
		src, dst = dst, src
		arrSrc, arrDst = arrDst, arrSrc
	}
	r.out = src
	p.SetPhase("")
}

// --- Sample sort (restructured) ---

func (r *run) sampleBody(p *core.Proc) {
	np := p.NumProcs()
	id := p.ID()
	lo, hi := r.chunk(id)
	// Phase 1: local sort of the owned chunk.
	local := make([]uint32, hi-lo)
	copy(local, r.keys[lo:hi])
	r.localSort(p, local, r.arrKeys, lo)
	r.chunks[id] = local
	// Phase 2: publish evenly spaced samples.
	for s := 0; s < sampleCount; s++ {
		idx := s * len(local) / sampleCount
		if idx >= len(local) {
			idx = len(local) - 1
		}
		r.samples[id*sampleCount+s] = local[idx]
		if s%(core.BlockBytes/keyBytes) == 0 {
			p.Write(r.arrSamp.Addr(id*sampleCount + s))
		}
	}
	r.barrier.Wait(p)
	// Proc 0 sorts the samples and publishes splitters.
	if id == 0 {
		all := make([]uint32, len(r.samples))
		for q := 0; q < np; q++ {
			for s := 0; s < sampleCount; s += core.BlockBytes / keyBytes {
				p.Read(r.arrSamp.Addr(q*sampleCount + s))
			}
		}
		copy(all, r.samples)
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		p.ComputeCycles(int64(len(all)) * 24) // splitter sort
		for q := 1; q < np; q++ {
			r.splitters[q-1] = all[q*len(all)/np]
		}
		for q := 0; q < np-1; q += core.BlockBytes / keyBytes {
			p.Write(r.arrSamp.Addr(np*sampleCount + q))
		}
	}
	r.barrier.Wait(p)
	// Phase 3: find bucket boundaries in the local sorted run.
	for q := 0; q < np-1; q += core.BlockBytes / keyBytes {
		p.Read(r.arrSamp.Addr(np*sampleCount + q))
	}
	seg := r.segments[id]
	seg[0] = 0
	for q := 1; q < np; q++ {
		seg[q] = sort.Search(len(local), func(i int) bool {
			return local[i] >= r.splitters[q-1]
		})
	}
	seg[np] = len(local)
	p.ComputeCycles(int64(np) * 40) // binary searches
	for q := 0; q < np; q += core.BlockBytes / 8 {
		p.Write(r.arrSeg.Addr(id*np + q))
	}
	r.barrier.Wait(p)
	// Phase 4: exchange — contiguous, stride-one remote reads of each
	// incoming bucket (the well-behaved pattern of Section 5.1).
	var mine []uint32
	for s := 0; s < np; s++ {
		q := (id + s + 1) % np
		for b := 0; b < np; b += core.BlockBytes / 8 {
			p.Read(r.arrSeg.Addr(q*np + b))
		}
		qLo, _ := r.chunk(q)
		from, to := r.segments[q][id], r.segments[q][id+1]
		if to <= from {
			continue
		}
		if r.pre {
			for i := from; i < to; i += core.BlockBytes / keyBytes {
				p.Prefetch(r.arrKeys.Addr(qLo + i))
			}
		}
		for i := from; i < to; i += core.BlockBytes / keyBytes {
			p.Read(r.arrKeys.Addr(qLo + i))
		}
		mine = append(mine, r.chunks[q][from:to]...)
		p.ComputeCycles(int64(to-from) * 2)
	}
	// Phase 5: local sort of the received keys.
	outLo := r.outStart(id)
	r.localSort(p, mine, r.arrTemp, outLo)
	copy(r.temp[outLo:outLo+len(mine)], mine)
	r.barrier.Wait(p)
	if id == 0 {
		r.out = r.temp
	}
}

// outStart computes where p's sample-sort output begins: the total count of
// keys bucketed below p across all runs.
func (r *run) outStart(id int) int {
	total := 0
	for b := 0; b < id; b++ {
		for q := 0; q < len(r.segments); q++ {
			total += r.segments[q][b+1] - r.segments[q][b]
		}
	}
	return total
}

// localSort radix-sorts keys in place, charging busy cycles and stride-one
// traffic against the given array region (arr element index base..).
func (r *run) localSort(p *core.Proc, keys []uint32, arr *core.Array, base int) {
	if len(keys) == 0 {
		return
	}
	buf := make([]uint32, len(keys))
	for pass := 0; pass < passes; pass++ {
		shift := uint(pass * radixBits)
		var counts [radixSize]int
		for _, k := range keys {
			counts[(k>>shift)&(radixSize-1)]++
		}
		pos := 0
		var offsets [radixSize]int
		for d := 0; d < radixSize; d++ {
			offsets[d] = pos
			pos += counts[d]
		}
		for _, k := range keys {
			d := (k >> shift) & (radixSize - 1)
			buf[offsets[d]] = k
			offsets[d]++
		}
		copy(keys, buf)
		// Traffic: one stride-one pass over the chunk per radix pass.
		for i := 0; i < len(keys); i += core.BlockBytes / keyBytes {
			p.Write(arr.Addr(base + i))
		}
		p.ComputeCycles(int64(len(keys)) * sortCycles)
	}
}

func (r *run) verify() error {
	if r.out == nil {
		return fmt.Errorf("radix: no output recorded")
	}
	var check uint64
	for i, k := range r.out {
		if i > 0 && r.out[i-1] > k {
			return fmt.Errorf("radix: out of order at %d: %d > %d", i, r.out[i-1], k)
		}
		check += workload.Mix64(uint64(k))
	}
	if check != r.check {
		return fmt.Errorf("radix: output is not a permutation of the input")
	}
	return nil
}
