package radix

import (
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/workload"
)

func TestRadixSortsCorrectly(t *testing.T) {
	app := New()
	for _, procs := range []int{1, 4, 16} {
		m := core.New(core.Origin2000(procs))
		if err := app.Run(m, workload.Params{Size: 1 << 14, Seed: 11}); err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
	}
}

func TestSampleSortsCorrectly(t *testing.T) {
	app := New()
	for _, procs := range []int{1, 4, 16} {
		m := core.New(core.Origin2000(procs))
		if err := app.Run(m, workload.Params{Size: 1 << 14, Seed: 11, Variant: "sample"}); err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
	}
}

func TestSampleSortWithPrefetch(t *testing.T) {
	m := core.New(core.Origin2000(8))
	err := New().Run(m, workload.Params{Size: 1 << 14, Seed: 11, Variant: "sample", Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Result().Counters.Prefetches == 0 {
		t.Error("prefetch variant issued no prefetches")
	}
}

func TestPermutationGeneratesScatteredWriteTraffic(t *testing.T) {
	// The paper's diagnosis: radix communicates through scattered remote
	// writes (invalidations/dirty transfers); sample sort replaces them
	// with contiguous remote reads, so its write-invalidation traffic
	// relative to communication must be lower.
	traffic := func(variant string) (float64, float64) {
		m := core.New(core.Origin2000(16))
		if err := New().Run(m, workload.Params{Size: 1 << 16, Seed: 11, Variant: variant}); err != nil {
			t.Fatal(err)
		}
		c := m.Result().Counters
		comm := float64(c.RemoteClean + c.RemoteDirty)
		return float64(c.Invalidations+c.RemoteDirty) / (comm + 1), m.Elapsed().Milliseconds()
	}
	radixWrites, _ := traffic("")
	sampleWrites, _ := traffic("sample")
	if radixWrites <= sampleWrites {
		t.Errorf("write-based traffic ratio: radix %.3f should exceed sample %.3f",
			radixWrites, sampleWrites)
	}
}

func TestSampleSortEfficiencyNear50Percent(t *testing.T) {
	// Sample sort does the local sorting work twice, so ignoring memory
	// effects its efficiency is bounded near 50% (Section 5.1).
	app := New()
	elapsed := func(procs int, variant string) float64 {
		m := core.New(core.Origin2000(procs))
		if err := app.Run(m, workload.Params{Size: 1 << 16, Seed: 11, Variant: variant}); err != nil {
			t.Fatal(err)
		}
		return m.Elapsed().Milliseconds()
	}
	seq := elapsed(1, "") // radix sequential is the reference
	par := elapsed(16, "sample")
	eff := seq / par / 16
	if eff > 0.75 {
		t.Errorf("sample sort efficiency %.2f should be bounded near 0.5", eff)
	}
	if eff < 0.15 {
		t.Errorf("sample sort efficiency %.2f implausibly low", eff)
	}
}

func TestRejectsNothing(t *testing.T) {
	// Tiny degenerate sizes still sort.
	m := core.New(core.Origin2000(4))
	if err := New().Run(m, workload.Params{Size: 64, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	m = core.New(core.Origin2000(4))
	if err := New().Run(m, workload.Params{Size: 64, Seed: 1, Variant: "sample"}); err != nil {
		t.Fatal(err)
	}
}

func TestBufferedVariantSortsButDoesNotHelp(t *testing.T) {
	// Section 5.1's negative result. It holds in the paper's regime,
	// where each processor's per-digit output chunk exceeds a cache
	// block (n >> 32*P*R keys): the scattered writes then miss only once
	// per block and the staging buffers are pure extra copying. (At tiny
	// sizes the chunks shrink below a block and buffering actually fixes
	// the resulting false sharing — which is why the paper's conclusion
	// is specific to realistic problem sizes.)
	elapsed := func(variant string) float64 {
		m := core.New(core.Origin2000(16))
		if err := New().Run(m, workload.Params{Size: 1 << 20, Seed: 11, Variant: variant}); err != nil {
			t.Fatal(err)
		}
		return m.Elapsed().Milliseconds()
	}
	plain := elapsed("")
	buffered := elapsed("buffered")
	if buffered <= plain {
		t.Errorf("buffered (%.2fms) should be slower than plain radix (%.2fms)", buffered, plain)
	}
}
