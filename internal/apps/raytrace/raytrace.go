// Package raytrace implements the ray tracer of the study: a recursive
// tracer over a hierarchical sphere-flake scene ("ball"), parallelized with
// an image-tile task queue and stealing. The scene is read-only and mostly
// remote, giving the large, diffuse working set of Figure 8. The original
// version takes a global statistics lock per ray; "nolock" removes it
// (worth ~4% on the Origin, dramatic on SVM — Section 5.2).
package raytrace

import (
	"fmt"
	"math"

	"origin2000/internal/core"
	"origin2000/internal/synchro"
	"origin2000/internal/workload"
)

const (
	sphereBytes     = 256
	intersectCycles = 800   // per sphere visited (Table 2 calibration:
	shadeCycles     = 50000 // the ball scene averages ~2.3ms per ray)
	raysPerPixel    = 1
	maxBounce       = 3
	tileSize        = 2
	boundFactor     = 1.8 // bounding-sphere radius multiple for a flake subtree
)

// App is the Raytrace workload.
type App struct{}

// New returns the application.
func New() *App { return &App{} }

// Name implements workload.App.
func (*App) Name() string { return "Raytrace" }

// Unit implements workload.App.
func (*App) Unit() string { return "image dim" }

// BasicSize implements workload.App: a 128x128 image of the ball scene.
func (*App) BasicSize() int { return 128 }

// SweepSizes implements workload.App.
func (*App) SweepSizes() []int { return []int{64, 128, 256, 512} }

// Variants implements workload.App.
func (*App) Variants() []string { return []string{"", "nolock"} }

// MaxProcs implements workload.App.
func (*App) MaxProcs() int { return 128 }

// Run implements workload.App.
func (*App) Run(m *core.Machine, p workload.Params) error {
	r, err := build(m, p)
	if err != nil {
		return err
	}
	if err := m.Run(r.body); err != nil {
		return err
	}
	return r.verify()
}

type vec [3]float64

func (a vec) add(b vec) vec       { return vec{a[0] + b[0], a[1] + b[1], a[2] + b[2]} }
func (a vec) sub(b vec) vec       { return vec{a[0] - b[0], a[1] - b[1], a[2] - b[2]} }
func (a vec) scale(s float64) vec { return vec{a[0] * s, a[1] * s, a[2] * s} }
func (a vec) dot(b vec) float64   { return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] }
func (a vec) norm() vec {
	l := math.Sqrt(a.dot(a))
	if l == 0 {
		return a
	}
	return a.scale(1 / l)
}

// sphere is one scene primitive; the flake hierarchy is expressed by
// child indices so traversal can prune on bounding spheres.
type sphere struct {
	center   vec
	radius   float64
	children []int32
}

type run struct {
	m       *core.Machine
	dim     int
	spheres []sphere
	rootIdx int32
	image   []float64
	arrSph  *core.Array
	arrImg  *core.Array
	pool    *synchro.TaskPool
	lock    *synchro.Lock // per-ray statistics lock (original version)
	useLock bool
	rayCnt  int64
}

// flakeDepth scales the scene with the image size.
func flakeDepth(dim int) int {
	d := 3
	for s := 256; s <= dim && d < 5; s *= 2 {
		d++
	}
	return d
}

func build(m *core.Machine, p workload.Params) (*run, error) {
	dim := p.Size
	if dim < tileSize {
		return nil, fmt.Errorf("raytrace: image dim %d below tile size", dim)
	}
	r := &run{
		m:       m,
		dim:     dim,
		image:   make([]float64, dim*dim),
		pool:    synchro.NewTaskPool(m, p.Lock),
		lock:    synchro.NewLock(m, p.Lock),
		useLock: p.Variant != "nolock",
	}
	// Build the sphere flake.
	r.rootIdx = r.buildFlake(vec{0, 0, 4}, 1.0, flakeDepth(dim))
	r.arrSph = m.Alloc("raytrace.spheres", len(r.spheres), sphereBytes)
	r.arrImg = m.Alloc("raytrace.image", dim*dim, 4)
	r.arrImg.PlaceElemBlocked(m.NumProcs())
	// Tiles are seeded round-robin across the processors.
	tiles := (dim / tileSize) * (dim / tileSize)
	for tsk := 0; tsk < tiles; tsk++ {
		r.pool.Seed(tsk%m.NumProcs(), tsk)
	}
	return r, nil
}

// buildFlake creates a sphere with 9 children of radius/3 arranged on its
// surface, recursively to the given depth. Returns the sphere's index.
func (r *run) buildFlake(center vec, radius float64, depth int) int32 {
	idx := int32(len(r.spheres))
	r.spheres = append(r.spheres, sphere{center: center, radius: radius})
	if depth == 0 {
		return idx
	}
	// Nine directions: six axes plus three diagonals.
	dirs := []vec{
		{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1},
		{1, 1, 1}, {-1, 1, -1}, {1, -1, -1},
	}
	for _, d := range dirs {
		dn := d.norm()
		childC := center.add(dn.scale(radius * 4 / 3))
		child := r.buildFlake(childC, radius/3, depth-1)
		r.spheres[idx].children = append(r.spheres[idx].children, child)
	}
	return idx
}

type hit struct {
	t      float64
	idx    int32
	normal vec
	point  vec
}

// intersect traverses the flake hierarchy, pruning subtrees whose bounding
// sphere the ray misses; every visited sphere record is a simulated read.
func (r *run) intersect(p *core.Proc, orig, dir vec) (hit, bool) {
	best := hit{t: math.Inf(1)}
	var stack []int32
	stack = append(stack, r.rootIdx)
	for len(stack) > 0 {
		si := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		s := &r.spheres[si]
		p.Read(r.arrSph.Addr(int(si)))
		p.ComputeCycles(intersectCycles)
		// Bounding test for the subtree.
		if !raySphere(orig, dir, s.center, s.radius*boundFactor, nil) {
			continue
		}
		var t float64
		if raySphere(orig, dir, s.center, s.radius, &t) && t > 1e-6 && t < best.t {
			pt := orig.add(dir.scale(t))
			best = hit{t: t, idx: si, point: pt, normal: pt.sub(s.center).norm()}
		}
		stack = append(stack, s.children...)
	}
	return best, !math.IsInf(best.t, 1)
}

// raySphere reports whether the ray hits the sphere; when tOut is non-nil
// the nearest positive parameter is stored.
func raySphere(orig, dir vec, center vec, radius float64, tOut *float64) bool {
	oc := orig.sub(center)
	b := oc.dot(dir)
	c := oc.dot(oc) - radius*radius
	disc := b*b - c
	if disc < 0 {
		return false
	}
	if tOut != nil {
		t := -b - math.Sqrt(disc)
		if t < 1e-6 {
			t = -b + math.Sqrt(disc)
		}
		if t < 1e-6 {
			return false
		}
		*tOut = t
	}
	return true
}

var lightDir = vec{0.5, 0.8, -0.3}

// trace returns the shade for one ray.
func (r *run) trace(p *core.Proc, orig, dir vec, depth int) float64 {
	h, ok := r.intersect(p, orig, dir)
	if !ok {
		// Background gradient.
		return 0.1 + 0.2*math.Abs(dir[1])
	}
	p.ComputeCycles(shadeCycles)
	l := lightDir.norm()
	diffuse := math.Max(0, h.normal.dot(l))
	shade := 0.15 + 0.6*diffuse
	if depth < maxBounce {
		refl := dir.sub(h.normal.scale(2 * dir.dot(h.normal)))
		shade += 0.25 * r.trace(p, h.point.add(h.normal.scale(1e-4)), refl.norm(), depth+1)
	}
	return shade
}

func (r *run) body(p *core.Proc) {
	dim := r.dim
	tilesPerRow := dim / tileSize
	for {
		task, ok := r.pool.Get(p)
		if !ok {
			return
		}
		tx := (task % tilesPerRow) * tileSize
		ty := (task / tilesPerRow) * tileSize
		for y := ty; y < ty+tileSize; y++ {
			for x := tx; x < tx+tileSize; x++ {
				var sum float64
				for s := 0; s < raysPerPixel; s++ {
					// Deterministic subpixel offsets.
					ox := (float64(s%2) + 0.25) / 2
					oy := (float64(s/2) + 0.25) / 2
					px := (float64(x)+ox)/float64(dim)*2 - 1
					py := (float64(y)+oy)/float64(dim)*2 - 1
					dir := vec{px * 0.8, py * 0.8, 1}.norm()
					sum += r.trace(p, vec{0, 0, 0}, dir, 0)
					if r.useLock {
						// Global statistics: rays cast counter.
						r.lock.Acquire(p)
						r.rayCnt++
						r.lock.Release(p)
					}
				}
				r.image[y*dim+x] = sum / raysPerPixel
				if x%(core.BlockBytes/4) == 0 {
					p.Write(r.arrImg.Addr(y*dim + x))
				}
			}
		}
	}
}

func (r *run) verify() error {
	var sum float64
	lit := 0
	for _, v := range r.image {
		if math.IsNaN(v) || v < 0 {
			return fmt.Errorf("raytrace: bad pixel value %g", v)
		}
		if v > 0.31 { // brighter than any background pixel
			lit++
		}
		sum += v
	}
	if lit < len(r.image)/50 {
		return fmt.Errorf("raytrace: scene not visible (%d lit pixels)", lit)
	}
	if r.useLock && r.rayCnt != int64(r.dim*r.dim*raysPerPixel) {
		return fmt.Errorf("raytrace: ray counter %d, want %d", r.rayCnt, r.dim*r.dim*raysPerPixel)
	}
	return nil
}

// RunForChecksum executes the app and returns an exact image checksum.
func RunForChecksum(m *core.Machine, p workload.Params) (uint64, error) {
	r, err := build(m, p)
	if err != nil {
		return 0, err
	}
	if err := m.Run(r.body); err != nil {
		return 0, err
	}
	if err := r.verify(); err != nil {
		return 0, err
	}
	var sum uint64
	for _, v := range r.image {
		sum += workload.Mix64(math.Float64bits(v))
	}
	return sum, nil
}
