package raytrace

import (
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/workload"
)

func TestImageIdenticalAcrossProcs(t *testing.T) {
	// Pixels are independent, so the image is bit-identical however the
	// tiles are stolen and scheduled.
	want, err := RunForChecksum(core.New(core.Origin2000(1)), workload.Params{Size: 64, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{4, 16} {
		got, err := RunForChecksum(core.New(core.Origin2000(procs)), workload.Params{Size: 64, Seed: 2})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if got != want {
			t.Errorf("procs=%d: image checksum %#x != %#x", procs, got, want)
		}
	}
}

func TestNolockVariantSameImage(t *testing.T) {
	a, err := RunForChecksum(core.New(core.Origin2000(8)), workload.Params{Size: 64, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunForChecksum(core.New(core.Origin2000(8)), workload.Params{Size: 64, Seed: 2, Variant: "nolock"})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("stats lock must not change the image")
	}
}

func TestScalesWell(t *testing.T) {
	// Raytrace is the one application that scales at the basic size in
	// Figure 2; expect high efficiency at 16 processors.
	elapsed := func(procs int) float64 {
		m := core.New(core.Origin2000(procs))
		if err := New().Run(m, workload.Params{Size: 64, Seed: 2}); err != nil {
			t.Fatal(err)
		}
		return m.Elapsed().Milliseconds()
	}
	seq := elapsed(1)
	par := elapsed(16)
	if eff := seq / par / 16; eff < 0.7 {
		t.Errorf("efficiency at 16 procs = %.2f, want >= 0.7", eff)
	}
}

func TestStealingHappensWithUnevenSeeding(t *testing.T) {
	m := core.New(core.Origin2000(8))
	r, err := build(m, workload.Params{Size: 64, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(r.body); err != nil {
		t.Fatal(err)
	}
	var stolen int64
	for i := 0; i < 8; i++ {
		stolen += m.Proc(i).Stats().StolenTasks
	}
	// Scene cost is uneven across tiles (the flake is centered), so some
	// stealing should occur even with round-robin seeding.
	if stolen == 0 {
		t.Error("expected task stealing")
	}
}

func TestFlakeSize(t *testing.T) {
	m := core.New(core.Origin2000(2))
	r, err := build(m, workload.Params{Size: 64, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := (intPow(9, flakeDepth(64)+1) - 1) / 8
	if len(r.spheres) != want {
		t.Errorf("flake has %d spheres, want %d", len(r.spheres), want)
	}
}

func intPow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

func TestSceneWorkingSetSpillsAtLargeSize(t *testing.T) {
	// Larger problems deepen the flake: the scene footprint grows past
	// the cache and turns into remote capacity misses (Figure 8).
	remote := func(dim int, cacheBytes int) float64 {
		cfg := core.Origin2000(4)
		cfg.Cache.SizeBytes = cacheBytes
		m := core.New(cfg)
		if err := New().Run(m, workload.Params{Size: dim, Seed: 2}); err != nil {
			t.Fatal(err)
		}
		c := m.Result().Counters
		return float64(c.RemoteClean+c.RemoteDirty) / float64(c.Reads)
	}
	small := remote(64, 1<<20)
	large := remote(128, 64<<10) // deeper flake, tiny cache
	if large <= small {
		t.Errorf("remote miss rate should grow when the scene spills: %f -> %f", small, large)
	}
}
