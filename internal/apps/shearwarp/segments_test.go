package shearwarp

import (
	"testing"
	"testing/quick"

	"origin2000/internal/core"
	"origin2000/internal/workload"
)

// TestSegmentsTileTheImageExactly is the partition invariant: whatever the
// profile weights, the per-processor segments must cover every intermediate
// pixel exactly once.
func TestSegmentsTileTheImageExactly(t *testing.T) {
	m := core.New(core.Origin2000(16))
	r, err := build(m, workload.Params{Size: 64, Seed: 1, Variant: "new"})
	if err != nil {
		t.Fatal(err)
	}
	f := func(weights []uint16) bool {
		w := make([]int64, r.ih)
		for i := range w {
			if len(weights) > 0 {
				w[i] = int64(weights[i%len(weights)])
			}
		}
		r.computeSegments(w)
		covered := make([]int, r.ih*r.iw)
		for q := range r.segs {
			for _, sg := range r.segs[q] {
				for x := sg.xLo; x < sg.xHi; x++ {
					covered[sg.iy*r.iw+x]++
				}
			}
		}
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestOwnerOfPixelMatchesSegments checks the placement lookup agrees with
// the segment lists.
func TestOwnerOfPixelMatchesSegments(t *testing.T) {
	m := core.New(core.Origin2000(8))
	r, err := build(m, workload.Params{Size: 64, Seed: 1, Variant: "new"})
	if err != nil {
		t.Fatal(err)
	}
	for q := range r.segs {
		for _, sg := range r.segs[q] {
			for x := sg.xLo; x < sg.xHi; x += 7 {
				if got := r.ownerOfPixel(sg.iy, x); got != q {
					t.Fatalf("ownerOfPixel(%d,%d) = %d, want %d", sg.iy, x, got, q)
				}
			}
		}
	}
}
