// Package shearwarp implements Shear-Warp volume rendering: a compositing
// phase shears volume slices into an intermediate image (over 90% of the
// sequential time), then a warp phase resamples the intermediate image into
// the final one. The original parallelization interleaves intermediate
// scanline chunks with task stealing, losing locality between the phases;
// the restructured algorithm ("new") gives each processor a contiguous,
// profile-balanced band of the intermediate image and has the same
// processor warp exactly the final rows that read it (Section 5.1).
package shearwarp

import (
	"fmt"
	"math"

	"origin2000/internal/core"
	"origin2000/internal/synchro"
	"origin2000/internal/workload"
)

const (
	compositeCycles = 80  // per composited voxel (Table 2 calibration)
	warpCycles      = 200 // per final-image pixel
	skipCycles      = 4   // per voxel skipped by early termination
	chunkRows       = 2   // interleaved chunk size (original version)
	interBytes      = 16  // intermediate pixel: color+alpha float64
	opaque          = 0.95
	shearX          = 0.25
	shearY          = 0.35
	defaultFrames   = 2
)

// App is the Shear-Warp workload.
type App struct{}

// New returns the application.
func New() *App { return &App{} }

// Name implements workload.App.
func (*App) Name() string { return "Shear-Warp" }

// Unit implements workload.App.
func (*App) Unit() string { return "volume dim" }

// BasicSize implements workload.App: the 256^3 head.
func (*App) BasicSize() int { return 256 }

// SweepSizes implements workload.App.
func (*App) SweepSizes() []int { return []int{64, 128, 256, 384} }

// Variants implements workload.App.
func (*App) Variants() []string { return []string{"", "new"} }

// MaxProcs implements workload.App.
func (*App) MaxProcs() int { return 128 }

// Run implements workload.App.
func (*App) Run(m *core.Machine, p workload.Params) error {
	r, err := build(m, p)
	if err != nil {
		return err
	}
	if err := m.Run(r.body); err != nil {
		return err
	}
	return r.verify()
}

type run struct {
	m      *core.Machine
	s      int // volume side
	iw, ih int // intermediate image size
	frames int

	vol     []uint8   // density volume, slice-major
	inter   []float64 // intermediate: color,alpha pairs
	final   []float64
	weights []int64 // per-scanline composite cost, for profile balancing

	arrVol   *core.Array
	arrInter *core.Array
	arrFinal *core.Array

	pool     *synchro.TaskPool
	barrier  *synchro.Barrier
	restruct bool
	segs     [][]segment // per-proc contiguous pixel bands (new)
	rowOwner [][]segCut  // per-row ownership cuts, for placement/warp
}

// segment is a contiguous pixel range of one intermediate scanline.
type segment struct{ iy, xLo, xHi int }

// segCut marks "columns below XHi of this row belong to Owner".
type segCut struct{ xHi, owner int }

func build(m *core.Machine, p workload.Params) (*run, error) {
	s := p.Size
	if s < 16 {
		return nil, fmt.Errorf("shearwarp: volume dim %d too small", s)
	}
	np := m.NumProcs()
	maxOfsX := int(shearX*float64(s)) + 1
	maxOfsY := int(shearY*float64(s)) + 1
	r := &run{
		m:        m,
		s:        s,
		iw:       s + maxOfsX,
		ih:       s + maxOfsY,
		frames:   p.Steps,
		barrier:  synchro.NewBarrier(m, np, p.Barrier),
		restruct: p.Variant == "new",
		pool:     synchro.NewTaskPool(m, p.Lock),
	}
	if r.frames <= 0 {
		r.frames = defaultFrames
	}
	r.inter = make([]float64, 2*r.iw*r.ih)
	r.final = make([]float64, s*s)
	r.weights = make([]int64, r.ih)
	r.arrVol = m.Alloc("shearwarp.volume", s*s*s, 1)
	r.arrInter = m.Alloc("shearwarp.inter", r.iw*r.ih, interBytes)
	r.arrFinal = m.Alloc("shearwarp.final", s*s, 8)
	r.vol = workload.HeadVolume(s)
	// Volume distributed by slice blocks; images by row ownership.
	r.arrVol.PlaceElemBlocked(np)
	r.arrFinal.PlaceElemBlocked(np)
	if r.restruct {
		// Profile-based partitioning ("profiling for load balancing",
		// Section 5.1): the renderer produces frame after frame, so the
		// previous frame's per-scanline cost profile is available; model
		// it with a host-side dry run. Partitions are contiguous bands
		// of intermediate-image *pixels* (sub-scanline granularity).
		est := make([]int64, r.ih)
		for iy := 0; iy < r.ih; iy++ {
			est[iy] = r.profileScanline(iy)
		}
		r.computeSegments(est)
		r.arrInter.PlaceOwner(func(pg int) int {
			pixel := pg * (16384 / interBytes)
			return r.ownerOfPixel(pixel/r.iw, pixel%r.iw)
		})
	} else {
		// Interleaved chunk ownership.
		r.arrInter.PlaceOwner(func(pg int) int {
			row := pg * (16384 / interBytes) / r.iw
			return (row / chunkRows) % np
		})
	}
	return r, nil
}

// classify maps density to (color, alpha).
func classify(d uint8) (color, alpha float64) {
	if d < 40 {
		return 0, 0
	}
	alpha = math.Min(1, float64(d-40)/180)
	return float64(d) / 255, alpha * 0.35
}

func shearOfs(k int, shear float64) int { return int(float64(k) * shear) }

// computeSegments cuts the intermediate image into np contiguous pixel
// bands of roughly equal profiled cost, assuming cost is uniform within a
// scanline. It fills r.segs and r.rowOwner.
func (r *run) computeSegments(rowWeights []int64) {
	np := r.m.NumProcs()
	iw := r.iw
	var total float64
	perPixel := make([]float64, r.ih)
	for iy, w := range rowWeights {
		perPixel[iy] = (float64(w) + 1) / float64(iw)
		total += float64(w) + 1
	}
	r.segs = make([][]segment, np)
	r.rowOwner = make([][]segCut, r.ih)
	share := total / float64(np)
	q := 0
	var acc float64
	open := func(iy, xLo, xHi int) {
		if xHi <= xLo {
			return
		}
		r.segs[q] = append(r.segs[q], segment{iy, xLo, xHi})
		r.rowOwner[iy] = append(r.rowOwner[iy], segCut{xHi, q})
	}
	for iy := 0; iy < r.ih; iy++ {
		x := 0
		for x < iw {
			room := share*float64(q+1) - acc
			pixels := iw - x
			cost := float64(pixels) * perPixel[iy]
			if cost <= room || q == np-1 {
				open(iy, x, iw)
				acc += cost
				x = iw
				continue
			}
			take := int(room / perPixel[iy])
			if take < 1 {
				take = 1
			}
			if take > pixels {
				take = pixels
			}
			open(iy, x, x+take)
			acc += float64(take) * perPixel[iy]
			x += take
			if q < np-1 {
				q++
			}
		}
	}
}

// ownerOfPixel maps an intermediate pixel to its band owner.
func (r *run) ownerOfPixel(iy, ix int) int {
	if iy < 0 || iy >= len(r.rowOwner) {
		return 0
	}
	for _, c := range r.rowOwner[iy] {
		if ix < c.xHi {
			return c.owner
		}
	}
	if n := len(r.rowOwner[iy]); n > 0 {
		return r.rowOwner[iy][n-1].owner
	}
	return 0
}

// compositeScanline composites every slice's contribution to the pixel
// range [ixLo, ixHi) of intermediate scanline iy, front to back with early
// termination.
func (r *run) compositeScanline(p *core.Proc, iy, ixLo, ixHi int) {
	s := r.s
	t0 := p.Now()
	var cost int64
	for k := 0; k < s; k++ {
		y := iy - shearOfs(k, shearY)
		if y < 0 || y >= s {
			continue
		}
		ofsX := shearOfs(k, shearX)
		rowBase := (k*s + y) * s
		xFrom, xTo := ixLo-ofsX, ixHi-ofsX
		if xFrom < 0 {
			xFrom = 0
		}
		if xTo > s {
			xTo = s
		}
		if xFrom >= xTo {
			continue
		}
		// One stride-one pass over the needed part of the volume row.
		p.ReadBytes(r.arrVol.Addr(rowBase+xFrom), (xTo - xFrom))
		for x := xFrom; x < xTo; {
			ix := x + ofsX
			pi := 2 * (iy*r.iw + ix)
			skippable := r.inter[pi+1] >= opaque || r.vol[rowBase+x] < 40
			if skippable {
				// The run-length encoding of the real algorithm skips
				// whole transparent/occluded runs in near-constant time.
				x0 := x
				for x < xTo {
					ix = x + ofsX
					pi = 2 * (iy*r.iw + ix)
					if r.inter[pi+1] < opaque && r.vol[rowBase+x] >= 40 {
						break
					}
					x++
				}
				c := int64(skipCycles) + int64(x-x0)/16
				p.ComputeCycles(c)
				cost += c
				continue
			}
			cVox, aVox := classify(r.vol[rowBase+x])
			trans := 1 - r.inter[pi+1]
			r.inter[pi] += trans * aVox * cVox
			r.inter[pi+1] += trans * aVox
			p.ComputeCycles(compositeCycles)
			cost += compositeCycles
			if x%(core.BlockBytes/interBytes) == 0 {
				p.Write(r.arrInter.Addr(iy*r.iw + ix))
			}
			x++
		}
	}
	_ = cost
	// Profile with real elapsed time (busy + memory stall): the memory
	// imbalance the paper highlights is part of the cost to balance.
	r.weights[iy] += int64(p.Now() - t0)
}

// profileScanline computes the compositing cost of scanline iy without
// side effects — the profile a previous frame would have produced. The
// returned weight is in picoseconds and includes both compute cycles and
// an estimate of the volume-row read cost, which dominates the transparent
// edge scanlines.
func (r *run) profileScanline(iy int) int64 {
	const cyclePs = 5128
	const rowReadPs = 2 * 600 * 1000 // ~2 blocks per 256B row at remote cost
	s := r.s
	alpha := make([]float64, r.iw)
	var cost int64
	var rows int64
	for k := 0; k < s; k++ {
		y := iy - shearOfs(k, shearY)
		if y < 0 || y >= s {
			continue
		}
		rows++
		ofsX := shearOfs(k, shearX)
		rowBase := (k*s + y) * s
		for x := 0; x < s; {
			ix := x + ofsX
			if alpha[ix] >= opaque || r.vol[rowBase+x] < 40 {
				x0 := x
				for x < s {
					ix = x + ofsX
					if alpha[ix] < opaque && r.vol[rowBase+x] >= 40 {
						break
					}
					x++
				}
				cost += int64(skipCycles) + int64(x-x0)/16
				continue
			}
			_, aVox := classify(r.vol[rowBase+x])
			alpha[ix] += (1 - alpha[ix]) * aVox
			cost += compositeCycles
			x++
		}
	}
	return cost*cyclePs + rows*rowReadPs
}

// warpSpan resamples intermediate pixels into final row fy, columns
// [fxLo, fxHi) (bilinear).
func (r *run) warpSpan(p *core.Proc, fy, fxLo, fxHi int) {
	s := r.s
	// The warp undoes the shear: a final row reads intermediate rows at
	// a constant offset band.
	srcY := float64(fy) + shearY*float64(s)/2
	y0 := int(srcY)
	fy0 := srcY - float64(y0)
	for fx := fxLo; fx < fxHi; fx++ {
		srcX := float64(fx) + shearX*float64(s)/2
		x0 := int(srcX)
		fx0 := srcX - float64(x0)
		var v float64
		for dy := 0; dy < 2; dy++ {
			for dx := 0; dx < 2; dx++ {
				yy, xx := y0+dy, x0+dx
				if yy < 0 || yy >= r.ih || xx < 0 || xx >= r.iw {
					continue
				}
				wgt := (fx0*float64(dx) + (1-fx0)*float64(1-dx)) *
					(fy0*float64(dy) + (1-fy0)*float64(1-dy))
				v += wgt * r.inter[2*(yy*r.iw+xx)]
				if xx%(core.BlockBytes/interBytes) == 0 || dx == 0 {
					p.Read(r.arrInter.Addr(yy*r.iw + xx))
				}
			}
		}
		r.final[fy*s+fx] = v
		if fx%(core.BlockBytes/8) == 0 {
			p.Write(r.arrFinal.Addr(fy*s + fx))
		}
	}
	p.ComputeCycles(int64(fxHi-fxLo) * warpCycles / 4)
}

func (r *run) body(p *core.Proc) {
	id := p.ID()
	np := p.NumProcs()
	for frame := 0; frame < r.frames; frame++ {
		// Clear phase: owners clear their intermediate pixels.
		r.clearInter(p, frame)
		r.barrier.Wait(p)
		// Compositing.
		if r.restruct {
			for _, sg := range r.segs[id] {
				r.compositeScanline(p, sg.iy, sg.xLo, sg.xHi)
			}
		} else {
			for {
				task, ok := r.pool.Get(p)
				if !ok {
					break
				}
				for row := 0; row < chunkRows; row++ {
					iy := task*chunkRows + row
					if iy < r.ih {
						r.compositeScanline(p, iy, 0, r.iw)
					}
				}
			}
		}
		r.barrier.Wait(p)
		// Warp.
		if r.restruct {
			// A processor warps exactly the final pixels whose source
			// band it composited: the cross-phase locality fix.
			ofsY := int(shearY * float64(r.s) / 2)
			ofsX := int(shearX * float64(r.s) / 2)
			for _, sg := range r.segs[id] {
				fy := sg.iy - ofsY
				if fy < 0 || fy >= r.s {
					continue
				}
				fxLo, fxHi := sg.xLo-ofsX, sg.xHi-ofsX
				if fxLo < 0 {
					fxLo = 0
				}
				if fxHi > r.s {
					fxHi = r.s
				}
				if fxLo < fxHi {
					r.warpSpan(p, fy, fxLo, fxHi)
				}
			}
		} else {
			lo, hi := id*r.s/np, (id+1)*r.s/np
			for fy := lo; fy < hi; fy++ {
				r.warpSpan(p, fy, 0, r.s)
			}
		}
		r.barrier.Wait(p)
		// Prepare the next frame: reseed tasks / rebalance bands. The
		// profile-based partition is recomputed once, from the first
		// frame's measured costs, then kept stable so ownership (and
		// cache affinity) persists across frames.
		if id == 0 {
			if r.restruct {
				if frame == 0 {
					r.computeSegments(r.weights)
				}
				for i := range r.weights {
					r.weights[i] = 0
				}
			} else {
				tiles := (r.ih + chunkRows - 1) / chunkRows
				for tsk := 0; tsk < tiles; tsk++ {
					r.pool.Seed(tsk%np, tsk)
				}
			}
		}
		r.barrier.Wait(p)
	}
}

// clearInter zeroes each processor's intermediate pixels; the first frame
// also seeds the task pool for the original variant.
func (r *run) clearInter(p *core.Proc, frame int) {
	id := p.ID()
	np := p.NumProcs()
	if r.restruct {
		for _, sg := range r.segs[id] {
			for x := sg.xLo; x < sg.xHi; x++ {
				r.inter[2*(sg.iy*r.iw+x)] = 0
				r.inter[2*(sg.iy*r.iw+x)+1] = 0
			}
			for x := sg.xLo; x < sg.xHi; x += core.BlockBytes / interBytes {
				p.Write(r.arrInter.Addr(sg.iy*r.iw + x))
			}
		}
		return
	}
	for iy := 0; iy < r.ih; iy++ {
		if (iy/chunkRows)%np != id {
			continue
		}
		for x := 0; x < r.iw; x++ {
			r.inter[2*(iy*r.iw+x)] = 0
			r.inter[2*(iy*r.iw+x)+1] = 0
		}
		for x := 0; x < r.iw; x += core.BlockBytes / interBytes {
			p.Write(r.arrInter.Addr(iy*r.iw + x))
		}
	}
	if frame == 0 && id == 0 && r.pool.Pending() == 0 {
		tiles := (r.ih + chunkRows - 1) / chunkRows
		for tsk := 0; tsk < tiles; tsk++ {
			r.pool.Seed(tsk%np, tsk)
		}
	}
}

// weightedBounds partitions scanlines into np contiguous bands of roughly
// equal measured cost ("profiling for load balancing").
func weightedBounds(weights []int64, np int) []int {
	var total int64
	for _, w := range weights {
		total += w + 1
	}
	b := make([]int, np+1)
	b[np] = len(weights)
	var acc int64
	q := 1
	for i, w := range weights {
		acc += w + 1
		for q < np && acc >= int64(q)*total/int64(np) {
			b[q] = i + 1
			q++
		}
	}
	// Ensure monotonicity.
	for i := 1; i <= np; i++ {
		if b[i] < b[i-1] {
			b[i] = b[i-1]
		}
	}
	return b
}

func (r *run) verify() error {
	var sum float64
	lit := 0
	for _, v := range r.final {
		if math.IsNaN(v) || v < 0 {
			return fmt.Errorf("shearwarp: bad pixel %g", v)
		}
		if v > 0.01 {
			lit++
		}
		sum += v
	}
	if lit < len(r.final)/20 {
		return fmt.Errorf("shearwarp: rendered image mostly empty (%d lit)", lit)
	}
	return nil
}

// RunForChecksum executes the app and returns an exact final-image
// checksum (the compositing order is fixed, so all variants and processor
// counts agree bit for bit).
func RunForChecksum(m *core.Machine, p workload.Params) (uint64, error) {
	r, err := build(m, p)
	if err != nil {
		return 0, err
	}
	if err := m.Run(r.body); err != nil {
		return 0, err
	}
	if err := r.verify(); err != nil {
		return 0, err
	}
	var sum uint64
	for _, v := range r.final {
		sum += workload.Mix64(math.Float64bits(v))
	}
	return sum, nil
}
