package shearwarp

import (
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/workload"
)

func TestImageIdenticalAcrossProcsAndVariants(t *testing.T) {
	want, err := RunForChecksum(core.New(core.Origin2000(1)), workload.Params{Size: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{4, 8} {
		for _, variant := range []string{"", "new"} {
			got, err := RunForChecksum(core.New(core.Origin2000(procs)), workload.Params{Size: 32, Seed: 1, Variant: variant})
			if err != nil {
				t.Fatalf("procs=%d %q: %v", procs, variant, err)
			}
			if got != want {
				t.Errorf("procs=%d %q: checksum %#x != %#x", procs, variant, got, want)
			}
		}
	}
}

func TestNewAlgorithmReducesWarpCommunication(t *testing.T) {
	// The restructured version's warp reads mostly its own intermediate
	// partition: remote misses should drop substantially.
	remote := func(variant string) int64 {
		m := core.New(core.Origin2000(16))
		if err := New().Run(m, workload.Params{Size: 64, Seed: 1, Variant: variant}); err != nil {
			t.Fatal(err)
		}
		c := m.Result().Counters
		return c.RemoteClean + c.RemoteDirty
	}
	orig := remote("")
	restructured := remote("new")
	if restructured >= orig {
		t.Errorf("restructured remote misses (%d) should be below original (%d)", restructured, orig)
	}
}

func TestNewAlgorithmFasterAtScale(t *testing.T) {
	// Section 5.1: once the profile-based partition is warm (a few
	// frames), the restructured algorithm's memory time diminishes
	// greatly and it outperforms the interleaved/stealing original at
	// large scale.
	run := func(variant string) (float64, float64) {
		m := core.New(core.Origin2000(64))
		if err := New().Run(m, workload.Params{Size: 192, Seed: 1, Variant: variant, Steps: 4}); err != nil {
			t.Fatal(err)
		}
		return m.Elapsed().Milliseconds(), m.Result().Average().Memory.Milliseconds()
	}
	origT, origMem := run("")
	newT, newMem := run("new")
	if newMem >= origMem {
		t.Errorf("restructured memory time (%.2fms) should be below original (%.2fms)", newMem, origMem)
	}
	if newT >= origT*1.05 {
		t.Errorf("restructured (%.2fms) should not lose to original (%.2fms)", newT, origT)
	}
}

func TestWeightedBoundsBalances(t *testing.T) {
	w := make([]int64, 100)
	for i := range w {
		if i >= 40 && i < 60 {
			w[i] = 100 // hot band in the middle
		} else {
			w[i] = 1
		}
	}
	b := weightedBounds(w, 4)
	if b[0] != 0 || b[4] != 100 {
		t.Fatalf("bounds endpoints wrong: %v", b)
	}
	// The hot band should be split across processors: no single range
	// holds all of [40,60).
	for q := 0; q < 4; q++ {
		if b[q] <= 40 && b[q+1] >= 60 {
			t.Errorf("range %d [%d,%d) swallowed the hot band", q, b[q], b[q+1])
		}
	}
}

func TestHeadIsVisible(t *testing.T) {
	m := core.New(core.Origin2000(4))
	if err := New().Run(m, workload.Params{Size: 32, Seed: 1, Steps: 1}); err != nil {
		t.Fatal(err)
	}
}
