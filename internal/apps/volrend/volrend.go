// Package volrend implements the SPLASH-2 style ray-casting volume
// renderer: rays march through the head volume with early termination,
// skipping transparent regions using a min-max brick pyramid, parallelized
// over interleaved image tiles with task stealing. The "balanced" variant
// seeds contiguous tile blocks per processor to reduce stealing — the SVM
// restructuring that buys only a few percent on the Origin (Section 5.2).
package volrend

import (
	"fmt"
	"math"

	"origin2000/internal/core"
	"origin2000/internal/synchro"
	"origin2000/internal/workload"
)

const (
	sampleCycles = 60 // per voxel sample along a ray
	brickCycles  = 10 // per brick max-density test (space leaping)
	brickSize    = 8
	tileSize     = 8
	opaque       = 0.95
)

// App is the Volrend workload.
type App struct{}

// New returns the application.
func New() *App { return &App{} }

// Name implements workload.App.
func (*App) Name() string { return "Volrend" }

// Unit implements workload.App.
func (*App) Unit() string { return "volume dim" }

// BasicSize implements workload.App: the 256^3 head.
func (*App) BasicSize() int { return 256 }

// SweepSizes implements workload.App: the paper notes it has no larger
// inputs, which is exactly why Volrend never reaches 60% at 128 procs.
func (*App) SweepSizes() []int { return []int{64, 128, 256} }

// Variants implements workload.App.
func (*App) Variants() []string { return []string{"", "balanced"} }

// MaxProcs implements workload.App.
func (*App) MaxProcs() int { return 128 }

// Run implements workload.App.
func (*App) Run(m *core.Machine, p workload.Params) error {
	r, err := build(m, p)
	if err != nil {
		return err
	}
	if err := m.Run(r.body); err != nil {
		return err
	}
	return r.verify()
}

type run struct {
	m      *core.Machine
	s      int
	bricks int // bricks per dimension

	vol      []uint8
	brickMax []uint8
	image    []float64

	arrVol   *core.Array
	arrBrick *core.Array
	arrImg   *core.Array

	pool *synchro.TaskPool
}

func build(m *core.Machine, p workload.Params) (*run, error) {
	s := p.Size
	if s < tileSize || s%brickSize != 0 {
		return nil, fmt.Errorf("volrend: volume dim %d must be a multiple of %d", s, brickSize)
	}
	np := m.NumProcs()
	r := &run{
		m:      m,
		s:      s,
		bricks: s / brickSize,
		vol:    workload.HeadVolume(s),
		image:  make([]float64, s*s),
		pool:   synchro.NewTaskPool(m, p.Lock),
	}
	r.brickMax = make([]uint8, r.bricks*r.bricks*r.bricks)
	for z := 0; z < s; z++ {
		for y := 0; y < s; y++ {
			for x := 0; x < s; x++ {
				b := r.brickIndex(x, y, z)
				if v := r.vol[(z*s+y)*s+x]; v > r.brickMax[b] {
					r.brickMax[b] = v
				}
			}
		}
	}
	r.arrVol = m.Alloc("volrend.volume", s*s*s, 1)
	r.arrBrick = m.Alloc("volrend.bricks", len(r.brickMax), 1)
	r.arrImg = m.Alloc("volrend.image", s*s, 8)
	r.arrImg.PlaceElemBlocked(np)
	tilesPerRow := s / tileSize
	tiles := tilesPerRow * tilesPerRow
	if p.Variant == "balanced" {
		// The restructured initial assignment estimates per-tile work
		// from the brick pyramid and hands out contiguous runs of equal
		// estimated cost, so little stealing is needed (Section 5.2).
		weights := make([]int64, tiles)
		var total int64
		for tsk := 0; tsk < tiles; tsk++ {
			bx := (tsk % tilesPerRow) * tileSize / brickSize
			by := (tsk / tilesPerRow) * tileSize / brickSize
			w := int64(1)
			for bz := 0; bz < r.bricks; bz++ {
				if r.brickMax[(bz*r.bricks+by)*r.bricks+bx] >= 40 {
					w += brickSize
				}
			}
			weights[tsk] = w
			total += w
		}
		var acc int64
		owner := 0
		for tsk := 0; tsk < tiles; tsk++ {
			for owner < np-1 && acc >= int64(owner+1)*total/int64(np) {
				owner++
			}
			r.pool.Seed(owner, tsk)
			acc += weights[tsk]
		}
	} else {
		for tsk := 0; tsk < tiles; tsk++ {
			r.pool.Seed(tsk%np, tsk)
		}
	}
	return r, nil
}

func (r *run) brickIndex(x, y, z int) int {
	bx, by, bz := x/brickSize, y/brickSize, z/brickSize
	return (bz*r.bricks+by)*r.bricks + bx
}

// castRay marches through the volume along +z for pixel (x, y).
func (r *run) castRay(p *core.Proc, x, y int) float64 {
	s := r.s
	var color, alpha float64
	for z := 0; z < s; {
		// Space leaping: consult the brick pyramid when entering a brick.
		if z%brickSize == 0 {
			b := r.brickIndex(x, y, z)
			p.Read(r.arrBrick.Addr(b))
			p.ComputeCycles(brickCycles)
			if r.brickMax[b] < 40 {
				z += brickSize
				continue
			}
		}
		d := r.vol[(z*s+y)*s+x]
		p.Read(r.arrVol.Addr((z*s+y)*s + x))
		p.ComputeCycles(sampleCycles)
		if d >= 40 {
			aVox := math.Min(1, float64(d-40)/180) * 0.3
			cVox := float64(d) / 255
			color += (1 - alpha) * aVox * cVox
			alpha += (1 - alpha) * aVox
			if alpha >= opaque {
				break
			}
		}
		z++
	}
	return color
}

func (r *run) body(p *core.Proc) {
	s := r.s
	tilesPerRow := s / tileSize
	for {
		task, ok := r.pool.Get(p)
		if !ok {
			return
		}
		tx := (task % tilesPerRow) * tileSize
		ty := (task / tilesPerRow) * tileSize
		for y := ty; y < ty+tileSize; y++ {
			for x := tx; x < tx+tileSize; x++ {
				r.image[y*s+x] = r.castRay(p, x, y)
				if x%(core.BlockBytes/8) == 0 {
					p.Write(r.arrImg.Addr(y*s + x))
				}
			}
		}
	}
}

func (r *run) verify() error {
	lit := 0
	for _, v := range r.image {
		if math.IsNaN(v) || v < 0 {
			return fmt.Errorf("volrend: bad pixel %g", v)
		}
		if v > 0.01 {
			lit++
		}
	}
	if lit < len(r.image)/20 {
		return fmt.Errorf("volrend: head not visible (%d lit pixels)", lit)
	}
	return nil
}

// RunForChecksum executes the app and returns an exact image checksum.
func RunForChecksum(m *core.Machine, p workload.Params) (uint64, error) {
	r, err := build(m, p)
	if err != nil {
		return 0, err
	}
	if err := m.Run(r.body); err != nil {
		return 0, err
	}
	if err := r.verify(); err != nil {
		return 0, err
	}
	var sum uint64
	for _, v := range r.image {
		sum += workload.Mix64(math.Float64bits(v))
	}
	return sum, nil
}
