package volrend

import (
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/workload"
)

func TestImageIdenticalAcrossProcsAndVariants(t *testing.T) {
	want, err := RunForChecksum(core.New(core.Origin2000(1)), workload.Params{Size: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{4, 16} {
		for _, variant := range []string{"", "balanced"} {
			got, err := RunForChecksum(core.New(core.Origin2000(procs)), workload.Params{Size: 64, Seed: 1, Variant: variant})
			if err != nil {
				t.Fatalf("procs=%d %q: %v", procs, variant, err)
			}
			if got != want {
				t.Errorf("procs=%d %q: checksum mismatch", procs, variant)
			}
		}
	}
}

func TestBalancedSeedingReducesStealing(t *testing.T) {
	stolen := func(variant string) int64 {
		m := core.New(core.Origin2000(8))
		if err := New().Run(m, workload.Params{Size: 64, Seed: 1, Variant: variant}); err != nil {
			t.Fatal(err)
		}
		return m.Result().Counters.StolenTasks
	}
	inter := stolen("")
	bal := stolen("balanced")
	// Stealing is effective on the Origin, so both run fine; the
	// balanced assignment should steal no more than the interleaved one.
	if bal > inter {
		t.Errorf("balanced variant stole more (%d) than interleaved (%d)", bal, inter)
	}
}

func TestSpaceLeapingSkipsEmptyBricks(t *testing.T) {
	// Corner rays never touch the head: they should read brick entries
	// but almost no voxels.
	m := core.New(core.Origin2000(2))
	r, err := build(m, workload.Params{Size: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(r.body); err != nil {
		t.Fatal(err)
	}
	c := m.Result().Counters
	// Full sampling would read s^3 voxels (plus brick tests); leaping
	// plus early termination should cut that well below s^3.
	if c.Reads > int64(64*64*64*6/10) {
		t.Errorf("too many reads (%d) — space leaping not effective", c.Reads)
	}
}

func TestRejectsBadSize(t *testing.T) {
	m := core.New(core.Origin2000(2))
	if err := New().Run(m, workload.Params{Size: 60, Seed: 1}); err == nil {
		t.Fatal("non-multiple-of-brick size should be rejected")
	}
}
