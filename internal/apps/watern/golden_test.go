package watern

import (
	"math"
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/workload"
)

// TestGoldenPotentialAcrossProcCounts pins the first-step potential on a
// small fixed input at 1, 4 and 32 processors with the online coherence
// checker enabled. The pair set is identical under any decomposition; only
// summation order differs, so the potential must match the plain-Go
// reference within floating-point tolerance, and all parallel runs must
// agree with each other to the same tolerance.
func TestGoldenPotentialAcrossProcCounts(t *testing.T) {
	const (
		n    = 256
		seed = 9
	)
	want := ReferencePotential(n, seed)
	for _, procs := range []int{1, 4, 32} {
		cfg := core.Origin2000(procs)
		cfg.Check = true
		m := core.New(cfg)
		got, err := RunForPotential(m, workload.Params{Size: n, Seed: seed})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if err := workload.CheckClose("potential", got, want, 1e-9); err != nil {
			t.Errorf("procs=%d: %v", procs, err)
		}
	}
}

// TestGoldenEnergyStaysConserved runs several steps and bounds the drift of
// the per-step potential: the completed-square pair energy is positive
// definite, so a healthy integration keeps each step's potential positive,
// finite, and within a loose band of the first step.
func TestGoldenEnergyStaysConserved(t *testing.T) {
	cfg := core.Origin2000(4)
	cfg.Check = true
	m := core.New(cfg)
	w, err := build(m, workload.Params{Size: 128, Seed: 9, Steps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(w.body); err != nil {
		t.Fatal(err)
	}
	// w.energy accumulates per-processor partials across all steps; the
	// average per-step potential must stay positive and finite.
	var total float64
	for _, e := range w.energy {
		total += e
	}
	perStep := total / float64(w.steps)
	if math.IsNaN(perStep) || math.IsInf(perStep, 0) || perStep <= 0 {
		t.Fatalf("per-step potential %g not positive finite", perStep)
	}
	// And the multi-step average cannot stray far from the first-step
	// reference: a blown-up integration moves it by orders of magnitude.
	first := ReferencePotential(128, 9)
	if ratio := perStep / first; ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("per-step potential %g drifted from first-step %g (ratio %.3f)", perStep, first, ratio)
	}
}
