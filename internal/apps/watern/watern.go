// Package watern implements Water-Nsquared: O(n²) pairwise molecular
// dynamics over O(n) data. The original SPLASH-2 loop order iterates local
// molecules outermost, so for large n the n/2 remote molecules fall out of
// the cache between reuses, generating artifactual communication; the
// "interchange" variant reuses each remote molecule against all local ones
// before moving on (Section 5.1).
package watern

import (
	"fmt"
	"math"

	"origin2000/internal/core"
	"origin2000/internal/synchro"
	"origin2000/internal/workload"
)

const (
	// moleculeBytes models the per-molecule record pulled during force
	// computation as one coherence block (positions + parameters); the
	// full SPLASH-2 record with predictor derivatives is larger, touched
	// only in the update phase.
	moleculeBytes     = core.BlockBytes
	fullRecordBytes   = 672
	interactionCycles = 540 // water-water interaction (Table 2 calibration)
	updateCycles      = 260 // predictor-corrector integration per molecule
	defaultSteps      = 2
)

// App is the Water-Nsquared workload.
type App struct{}

// New returns the application.
func New() *App { return &App{} }

// Name implements workload.App.
func (*App) Name() string { return "Water-Nsquared" }

// Unit implements workload.App.
func (*App) Unit() string { return "molecules" }

// BasicSize implements workload.App: 4096 molecules.
func (*App) BasicSize() int { return 4096 }

// SweepSizes implements workload.App.
func (*App) SweepSizes() []int { return []int{1024, 2048, 4096, 8192, 16384, 32768} }

// Variants implements workload.App: "interchange" is the restructured loop.
func (*App) Variants() []string { return []string{"", "interchange"} }

// MaxProcs implements workload.App.
func (*App) MaxProcs() int { return 128 }

// Run implements workload.App.
func (*App) Run(m *core.Machine, p workload.Params) error {
	w, err := build(m, p)
	if err != nil {
		return err
	}
	if err := m.Run(w.body); err != nil {
		return err
	}
	return w.verify()
}

type vec [3]float64

type run struct {
	m     *core.Machine
	n     int
	steps int

	pos   []vec
	vel   []vec
	force []vec // shared force accumulators
	fbuf  [][]vec

	arrMol   *core.Array // per-molecule force-phase line
	arrFull  *core.Array // full records touched in the update phase
	locks    []*synchro.Lock
	barrier  *synchro.Barrier
	restruct bool

	energy []float64 // per-processor potential-energy partials
}

func build(m *core.Machine, p workload.Params) (*run, error) {
	n := p.Size
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("watern: need an even molecule count, got %d", n)
	}
	np := m.NumProcs()
	w := &run{
		m:        m,
		n:        n,
		steps:    p.Steps,
		pos:      make([]vec, n),
		vel:      make([]vec, n),
		force:    make([]vec, n),
		fbuf:     make([][]vec, np),
		arrMol:   m.Alloc("watern.mol", n, moleculeBytes),
		arrFull:  m.Alloc("watern.full", n, fullRecordBytes),
		locks:    make([]*synchro.Lock, np),
		barrier:  synchro.NewBarrier(m, np, p.Barrier),
		restruct: p.Variant == "interchange",
		energy:   make([]float64, np),
	}
	if w.steps <= 0 {
		w.steps = defaultSteps
	}
	for i := range w.locks {
		w.locks[i] = synchro.NewLock(m, p.Lock)
	}
	for q := range w.fbuf {
		w.fbuf[q] = make([]vec, n)
	}
	rng := workload.NewRand(p.Seed)
	box := math.Cbrt(float64(n)) * 3.1
	for i := range w.pos {
		w.pos[i] = vec{rng.Float64() * box, rng.Float64() * box, rng.Float64() * box}
		w.vel[i] = vec{rng.Float64() - 0.5, rng.Float64() - 0.5, rng.Float64() - 0.5}
	}
	w.arrMol.PlaceElemBlocked(np)
	w.arrFull.PlaceElemBlocked(np)
	return w, nil
}

func (w *run) chunk(id int) (lo, hi int) {
	np := w.m.NumProcs()
	return id * w.n / np, (id + 1) * w.n / np
}

// pairForce computes a smooth short-range pair interaction.
func pairForce(pi, pj vec) (f vec, pot float64) {
	var d vec
	r2 := 0.0
	for k := 0; k < 3; k++ {
		d[k] = pi[k] - pj[k]
		r2 += d[k] * d[k]
	}
	r2 += 0.5 // soften
	inv2 := 1 / r2
	inv4 := inv2 * inv2
	mag := inv4 - 0.1*inv2
	for k := 0; k < 3; k++ {
		f[k] = mag * d[k]
	}
	// Positive-definite pair energy (completed square), so the total
	// potential stays a valid sanity check at any molecule count.
	s := math.Sqrt(inv2) - 0.025
	return f, s * s
}

// interacts reports whether the half-shell pairing includes (i, j=i+k mod n).
func (w *run) interacts(i, k int) bool {
	if k < 1 || k > w.n/2 {
		return false
	}
	if k == w.n/2 && i >= w.n/2 {
		return false // count the antipodal pair once
	}
	return true
}

func (w *run) body(p *core.Proc) {
	id := p.ID()
	lo, hi := w.chunk(id)
	fb := w.fbuf[id]
	for step := 0; step < w.steps; step++ {
		for i := range fb {
			fb[i] = vec{}
		}
		var pot float64
		if w.restruct {
			pot = w.forcesRestructured(p, lo, hi, fb)
		} else {
			pot = w.forcesOriginal(p, lo, hi, fb)
		}
		w.energy[id] += pot
		w.barrier.Wait(p)
		// Merge private force contributions into the shared array,
		// region by region under the region lock.
		np := p.NumProcs()
		for s := 0; s < np; s++ {
			q := (id + s) % np
			qLo, qHi := w.chunk(q)
			w.locks[q].Acquire(p)
			wrote := 0
			for i := qLo; i < qHi; i++ {
				f := fb[i]
				if f[0] == 0 && f[1] == 0 && f[2] == 0 {
					continue
				}
				for k := 0; k < 3; k++ {
					w.force[i][k] += f[k]
				}
				p.Write(w.arrMol.Addr(i))
				wrote++
			}
			w.locks[q].Release(p)
			p.ComputeCycles(int64(wrote) * 6)
		}
		w.barrier.Wait(p)
		// Update phase: integrate owned molecules (full records).
		for i := lo; i < hi; i++ {
			for k := 0; k < 3; k++ {
				w.vel[i][k] += 0.0005 * w.force[i][k]
				w.pos[i][k] += 0.0005 * w.vel[i][k]
				w.force[i][k] = 0
			}
			p.ReadBytes(w.arrFull.Addr(i), fullRecordBytes)
			p.WriteBytes(w.arrFull.Addr(i), fullRecordBytes)
		}
		p.ComputeCycles(int64(hi-lo) * updateCycles)
		w.barrier.Wait(p)
	}
}

// forcesOriginal: outer loop over local molecules, inner over the next n/2
// — each remote molecule is re-read for every local molecule.
func (w *run) forcesOriginal(p *core.Proc, lo, hi int, fb []vec) float64 {
	var pot float64
	for i := lo; i < hi; i++ {
		p.Read(w.arrMol.Addr(i))
		for k := 1; k <= w.n/2; k++ {
			if !w.interacts(i, k) {
				continue
			}
			j := (i + k) % w.n
			p.Read(w.arrMol.Addr(j))
			f, e := pairForce(w.pos[i], w.pos[j])
			for c := 0; c < 3; c++ {
				fb[i][c] += f[c]
				fb[j][c] -= f[c]
			}
			pot += e
			p.ComputeCycles(interactionCycles)
		}
	}
	return pot
}

// forcesRestructured: outer loop over the interacting molecules, inner over
// the local ones — each remote molecule is read once and reused O(n/p)
// times while it is still cached.
func (w *run) forcesRestructured(p *core.Proc, lo, hi int, fb []vec) float64 {
	var pot float64
	// The interacting set for local range [lo,hi) is (lo, hi-1+n/2],
	// capped at one full circle so no molecule is visited twice when a
	// processor owns more than half the molecules.
	upper := hi - 1 + w.n/2
	if upper > lo+w.n {
		upper = lo + w.n
	}
	for jj := lo + 1; jj <= upper; jj++ {
		j := jj % w.n
		p.Read(w.arrMol.Addr(j))
		// Local partners: i in [j-n/2, j-1] mod n intersected with the
		// owned range.
		for i := lo; i < hi; i++ {
			k := (j - i + w.n) % w.n
			if !w.interacts(i, k) {
				continue
			}
			f, e := pairForce(w.pos[i], w.pos[j])
			for c := 0; c < 3; c++ {
				fb[i][c] += f[c]
				fb[j][c] -= f[c]
			}
			pot += e
			p.ComputeCycles(interactionCycles)
		}
	}
	return pot
}

// ReferencePotential computes the first-step potential energy in plain Go.
func ReferencePotential(n int, seed int64) float64 {
	rng := workload.NewRand(seed)
	box := math.Cbrt(float64(n)) * 3.1
	pos := make([]vec, n)
	for i := range pos {
		pos[i] = vec{rng.Float64() * box, rng.Float64() * box, rng.Float64() * box}
		_ = [3]float64{rng.Float64(), rng.Float64(), rng.Float64()} // velocities
	}
	var pot float64
	for i := 0; i < n; i++ {
		for k := 1; k <= n/2; k++ {
			if k == n/2 && i >= n/2 {
				continue
			}
			j := (i + k) % n
			_, e := pairForce(pos[i], pos[j])
			pot += e
		}
	}
	return pot
}

func (w *run) verify() error {
	var pot float64
	for _, e := range w.energy {
		pot += e
	}
	pot /= float64(w.steps)
	if math.IsNaN(pot) || math.IsInf(pot, 0) {
		return fmt.Errorf("watern: potential is not finite")
	}
	if pot <= 0 {
		return fmt.Errorf("watern: non-positive potential %g", pot)
	}
	return nil
}

// RunForPotential executes one step and returns the exact first-step
// potential for determinism tests.
func RunForPotential(m *core.Machine, p workload.Params) (float64, error) {
	p.Steps = 1
	w, err := build(m, p)
	if err != nil {
		return 0, err
	}
	if err := m.Run(w.body); err != nil {
		return 0, err
	}
	var pot float64
	for _, e := range w.energy {
		pot += e
	}
	return pot, nil
}
