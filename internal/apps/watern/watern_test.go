package watern

import (
	"math"
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/workload"
)

func TestPotentialMatchesReference(t *testing.T) {
	// Both loop orders on any processor count must compute exactly the
	// same pair set; the potential matches the plain-Go reference up to
	// summation order.
	n := 256
	want := ReferencePotential(n, 9)
	for _, procs := range []int{1, 3, 8} {
		for _, variant := range []string{"", "interchange"} {
			m := core.New(core.Origin2000(procs))
			got, err := RunForPotential(m, workload.Params{Size: n, Seed: 9, Variant: variant})
			if err != nil {
				t.Fatalf("procs=%d %q: %v", procs, variant, err)
			}
			if err := workload.CheckClose("potential", got, want, 1e-9); err != nil {
				t.Errorf("procs=%d %q: %v", procs, variant, err)
			}
		}
	}
}

func TestPairCountIsExact(t *testing.T) {
	// The half-shell enumeration yields exactly n*(n-1)/2... no: each of
	// the n molecules pairs with n/2 others, the antipodal pair counted
	// once: n*n/2 - n/2 pairs... verify by counting interactions.
	for _, n := range []int{4, 8, 16} {
		w := &run{n: n}
		count := 0
		for i := 0; i < n; i++ {
			for k := 1; k <= n/2; k++ {
				if w.interacts(i, k) {
					count++
				}
			}
		}
		want := n*n/2 - n/2
		if count != want {
			t.Errorf("n=%d: %d pairs, want %d", n, count, want)
		}
	}
}

func TestRunVerifies(t *testing.T) {
	m := core.New(core.Origin2000(8))
	if err := New().Run(m, workload.Params{Size: 256, Seed: 9}); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsOddCount(t *testing.T) {
	m := core.New(core.Origin2000(2))
	if err := New().Run(m, workload.Params{Size: 255, Seed: 9}); err == nil {
		t.Fatal("odd molecule count should be rejected")
	}
}

func TestInterchangeReducesMissesWhenWorkingSetSpills(t *testing.T) {
	// With a cache smaller than the n/2 interacting molecules, the
	// original loop order misses repeatedly on remote data while the
	// interchange reuses each remote molecule — the Section 5.1 effect.
	misses := func(variant string) (int64, float64) {
		cfg := core.Origin2000(8)
		cfg.Cache.SizeBytes = 16 << 10 // 128 lines << n/2 molecules
		m := core.New(cfg)
		if err := New().Run(m, workload.Params{Size: 2048, Seed: 9, Steps: 1, Variant: variant}); err != nil {
			t.Fatal(err)
		}
		c := m.Result().Counters
		return c.RemoteClean + c.RemoteDirty + c.LocalMisses, m.Elapsed().Milliseconds()
	}
	origMisses, origTime := misses("")
	restMisses, restTime := misses("interchange")
	if restMisses*4 > origMisses {
		t.Errorf("interchange misses %d should be <1/4 of original %d", restMisses, origMisses)
	}
	if restTime >= origTime {
		t.Errorf("interchange (%.2fms) should beat original (%.2fms)", restTime, origTime)
	}
}

func TestOriginalFineWhenWorkingSetFits(t *testing.T) {
	// With the full 4MB cache and a small n, the two variants should be
	// close: the restructuring only matters once the working set spills.
	elapsed := func(variant string) float64 {
		m := core.New(core.Origin2000(8))
		if err := New().Run(m, workload.Params{Size: 512, Seed: 9, Steps: 1, Variant: variant}); err != nil {
			t.Fatal(err)
		}
		return m.Elapsed().Milliseconds()
	}
	orig := elapsed("")
	rest := elapsed("interchange")
	if ratio := orig / rest; ratio > 1.15 || ratio < 0.85 {
		t.Errorf("variants should be near-equal when the working set fits: orig=%.3f rest=%.3f", orig, rest)
	}
}

func TestForceConservation(t *testing.T) {
	// Newton's third law: the merged shared forces nearly cancel.
	m := core.New(core.Origin2000(4))
	w, err := build(m, workload.Params{Size: 128, Seed: 9, Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Capture the force sum right after the merge by checking vel drift:
	// total momentum change equals sum of forces * dt.
	var mom0 vec
	for i := range w.vel {
		for k := 0; k < 3; k++ {
			mom0[k] += w.vel[i][k]
		}
	}
	if err := m.Run(w.body); err != nil {
		t.Fatal(err)
	}
	var mom1 vec
	for i := range w.vel {
		for k := 0; k < 3; k++ {
			mom1[k] += w.vel[i][k]
		}
	}
	for k := 0; k < 3; k++ {
		if d := math.Abs(mom1[k] - mom0[k]); d > 1e-9 {
			t.Errorf("momentum drift along %d: %g", k, d)
		}
	}
}
