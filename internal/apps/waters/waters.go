// Package waters implements Water-Spatial: the O(n) cell-based version of
// the water simulation. Space is diced into cells about one cutoff radius
// on a side; molecules interact only with the 26 surrounding cells
// (half-shell enumerated), so communication is nearest-neighbour and the
// communication-to-computation ratio falls as the problem grows — which is
// why this is one of only two applications problem size alone rescues at
// 128 processors (Section 4.1, Figure 5).
package waters

import (
	"fmt"
	"math"

	"origin2000/internal/core"
	"origin2000/internal/synchro"
	"origin2000/internal/workload"
)

const (
	moleculeBytes     = core.BlockBytes
	interactionCycles = 540
	updateCycles      = 260
	moveCycles        = 40
	defaultSteps      = 2
)

// App is the Water-Spatial workload.
type App struct{}

// New returns the application.
func New() *App { return &App{} }

// Name implements workload.App.
func (*App) Name() string { return "Water-Spatial" }

// Unit implements workload.App.
func (*App) Unit() string { return "molecules" }

// BasicSize implements workload.App: 4096 molecules.
func (*App) BasicSize() int { return 4096 }

// SweepSizes implements workload.App.
func (*App) SweepSizes() []int { return []int{2048, 4096, 8192, 16384, 32768} }

// Variants implements workload.App.
func (*App) Variants() []string { return []string{""} }

// MaxProcs implements workload.App.
func (*App) MaxProcs() int { return 128 }

// Run implements workload.App.
func (*App) Run(m *core.Machine, p workload.Params) error {
	w, err := build(m, p)
	if err != nil {
		return err
	}
	if err := m.Run(w.body); err != nil {
		return err
	}
	return w.verify()
}

type vec [3]float64

type run struct {
	m     *core.Machine
	n     int
	steps int
	side  int // cells per dimension
	box   float64

	px, py, pz int // processor box grid

	pos    []vec
	vel    []vec
	force  []vec
	fbuf   [][]vec
	cells  [][]int32 // molecule ids per cell
	cellOf []int32
	stamp  []int32 // last step each molecule was integrated

	arrMol  *core.Array
	arrCell *core.Array
	locks   []*synchro.Lock
	barrier *synchro.Barrier

	energy []float64
	moved  int64
}

func build(m *core.Machine, p workload.Params) (*run, error) {
	n := p.Size
	if n < 8 {
		return nil, fmt.Errorf("waters: %d molecules too few", n)
	}
	np := m.NumProcs()
	side := int(math.Cbrt(float64(n)/4.0) + 0.5)
	if side < 2 {
		side = 2
	}
	w := &run{
		m:       m,
		n:       n,
		steps:   p.Steps,
		side:    side,
		box:     float64(side), // cell side = 1 cutoff unit
		pos:     make([]vec, n),
		vel:     make([]vec, n),
		force:   make([]vec, n),
		fbuf:    make([][]vec, np),
		cells:   make([][]int32, side*side*side),
		cellOf:  make([]int32, n),
		stamp:   make([]int32, n),
		arrMol:  m.Alloc("waters.mol", n, moleculeBytes),
		arrCell: m.Alloc("waters.cells", side*side*side, core.BlockBytes),
		locks:   make([]*synchro.Lock, np),
		barrier: synchro.NewBarrier(m, np, p.Barrier),
		energy:  make([]float64, np),
	}
	if w.steps <= 0 {
		w.steps = defaultSteps
	}
	w.px, w.py, w.pz = factor3(np)
	for i := range w.locks {
		w.locks[i] = synchro.NewLock(m, p.Lock)
	}
	for q := range w.fbuf {
		w.fbuf[q] = make([]vec, n)
	}
	rng := workload.NewRand(p.Seed)
	// Generate positions, then relabel molecules so ids are contiguous
	// per owning processor (matching SPLASH-2's per-partition allocation).
	raw := make([]vec, n)
	rawVel := make([]vec, n)
	for i := range raw {
		raw[i] = vec{rng.Float64() * w.box, rng.Float64() * w.box, rng.Float64() * w.box}
		rawVel[i] = vec{rng.Float64() - 0.5, rng.Float64() - 0.5, rng.Float64() - 0.5}
	}
	order := make([]int, 0, n)
	byOwner := make([][]int, np)
	for i, ps := range raw {
		owner := w.ownerOfCell(w.cellIndexOf(ps))
		byOwner[owner] = append(byOwner[owner], i)
	}
	for _, list := range byOwner {
		order = append(order, list...)
	}
	for newID, oldID := range order {
		w.pos[newID] = raw[oldID]
		w.vel[newID] = rawVel[oldID]
	}
	for i := range w.pos {
		c := w.cellIndexOf(w.pos[i])
		w.cellOf[i] = int32(c)
		w.cells[c] = append(w.cells[c], int32(i))
	}
	w.arrMol.PlaceElemBlocked(np)
	w.arrCell.PlaceOwner(func(pg int) int {
		cell := pg * (16384 / core.BlockBytes)
		if cell >= len(w.cells) {
			cell = len(w.cells) - 1
		}
		return w.ownerOfCell(cell)
	})
	return w, nil
}

// factor3 splits np into the most cubic px*py*pz grid.
func factor3(np int) (px, py, pz int) {
	px, py, pz = 1, 1, 1
	rem := np
	for _, f := range primeFactors(rem) {
		switch {
		case px <= py && px <= pz:
			px *= f
		case py <= pz:
			py *= f
		default:
			pz *= f
		}
	}
	return
}

func primeFactors(n int) []int {
	var fs []int
	for f := 2; f*f <= n; f++ {
		for n%f == 0 {
			fs = append(fs, f)
			n /= f
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	// Largest first balances the box grid better.
	for i, j := 0, len(fs)-1; i < j; i, j = i+1, j-1 {
		fs[i], fs[j] = fs[j], fs[i]
	}
	return fs
}

func (w *run) cellIndexOf(p vec) int {
	cx := clamp(int(p[0]), 0, w.side-1)
	cy := clamp(int(p[1]), 0, w.side-1)
	cz := clamp(int(p[2]), 0, w.side-1)
	return (cz*w.side+cy)*w.side + cx
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ownerOfCell maps a cell to the processor owning its subvolume.
func (w *run) ownerOfCell(cell int) int {
	cx := cell % w.side
	cy := (cell / w.side) % w.side
	cz := cell / (w.side * w.side)
	bx := cx * w.px / w.side
	by := cy * w.py / w.side
	bz := cz * w.pz / w.side
	return (bz*w.py+by)*w.px + bx
}

// halfShell is the 13 positive-lexicographic neighbour offsets plus (0,0,0)
// handled separately.
var halfShell = [13][3]int{
	{1, 0, 0},
	{-1, 1, 0}, {0, 1, 0}, {1, 1, 0},
	{-1, -1, 1}, {0, -1, 1}, {1, -1, 1},
	{-1, 0, 1}, {0, 0, 1}, {1, 0, 1},
	{-1, 1, 1}, {0, 1, 1}, {1, 1, 1},
}

func pairForce(pi, pj vec) (f vec, pot float64) {
	var d vec
	r2 := 0.0
	for k := 0; k < 3; k++ {
		d[k] = pi[k] - pj[k]
		r2 += d[k] * d[k]
	}
	if r2 > 2.25 { // cutoff at 1.5 cell units
		return vec{}, 0
	}
	r2 += 0.5
	inv2 := 1 / r2
	inv4 := inv2 * inv2
	mag := inv4 - 0.1*inv2
	for k := 0; k < 3; k++ {
		f[k] = mag * d[k]
	}
	return f, inv2 - 0.05*math.Sqrt(inv2)
}

func (w *run) body(p *core.Proc) {
	id := p.ID()
	fb := w.fbuf[id]
	for step := 0; step < w.steps; step++ {
		for i := range fb {
			fb[i] = vec{}
		}
		w.energy[id] += w.forces(p, id, fb)
		w.barrier.Wait(p)
		// Merge force contributions per owner region.
		np := p.NumProcs()
		for s := 0; s < np; s++ {
			q := (id + s) % np
			lo, hi := q*w.n/np, (q+1)*w.n/np
			held := false
			wrote := 0
			for i := lo; i < hi; i++ {
				f := fb[i]
				if f[0] == 0 && f[1] == 0 && f[2] == 0 {
					continue
				}
				if !held {
					w.locks[q].Acquire(p)
					held = true
				}
				for k := 0; k < 3; k++ {
					w.force[i][k] += f[k]
				}
				p.Write(w.arrMol.Addr(i))
				wrote++
			}
			if held {
				w.locks[q].Release(p)
			}
			p.ComputeCycles(int64(wrote) * 6)
		}
		w.barrier.Wait(p)
		// Update + move: integrate owned cells' molecules and re-bin
		// the ones that crossed a cell boundary.
		w.updateAndMove(p, id, int32(step+1))
		w.barrier.Wait(p)
	}
}

// owns reports whether processor id owns cell.
func (w *run) owns(id, cell int) bool { return w.ownerOfCell(cell) == id }

func (w *run) forces(p *core.Proc, id int, fb []vec) float64 {
	var pot float64
	side := w.side
	for cell := range w.cells {
		if !w.owns(id, cell) {
			continue
		}
		list := w.cells[cell]
		p.Read(w.arrCell.Addr(cell))
		// Intra-cell pairs.
		for a := 0; a < len(list); a++ {
			i := int(list[a])
			p.Read(w.arrMol.Addr(i))
			for b := a + 1; b < len(list); b++ {
				j := int(list[b])
				f, e := pairForce(w.pos[i], w.pos[j])
				addPair(fb, i, j, f)
				pot += e
				p.ComputeCycles(interactionCycles)
			}
		}
		// Half-shell neighbour cells.
		cx := cell % side
		cy := (cell / side) % side
		cz := cell / (side * side)
		for _, off := range halfShell {
			nx, ny, nz := cx+off[0], cy+off[1], cz+off[2]
			if nx < 0 || ny < 0 || nz < 0 || nx >= side || ny >= side || nz >= side {
				continue
			}
			ncell := (nz*side+ny)*side + nx
			nlist := w.cells[ncell]
			if len(nlist) == 0 {
				continue
			}
			p.Read(w.arrCell.Addr(ncell))
			for _, jj := range nlist {
				j := int(jj)
				p.Read(w.arrMol.Addr(j))
				for _, ii := range list {
					i := int(ii)
					f, e := pairForce(w.pos[i], w.pos[j])
					addPair(fb, i, j, f)
					pot += e
					p.ComputeCycles(interactionCycles)
				}
			}
		}
	}
	return pot
}

func addPair(fb []vec, i, j int, f vec) {
	for k := 0; k < 3; k++ {
		fb[i][k] += f[k]
		fb[j][k] -= f[k]
	}
}

func (w *run) updateAndMove(p *core.Proc, id int, step int32) {
	for cell := range w.cells {
		if !w.owns(id, cell) {
			continue
		}
		list := w.cells[cell]
		for idx := 0; idx < len(list); idx++ {
			i := int(list[idx])
			if w.stamp[i] == step {
				continue // already integrated after moving here
			}
			w.stamp[i] = step
			for k := 0; k < 3; k++ {
				w.vel[i][k] += 0.0005 * w.force[i][k]
				w.pos[i][k] += 0.0005 * w.vel[i][k]
				w.force[i][k] = 0
				if w.pos[i][k] < 0 {
					w.pos[i][k] = -w.pos[i][k]
					w.vel[i][k] = -w.vel[i][k]
				}
				if w.pos[i][k] > w.box {
					w.pos[i][k] = 2*w.box - w.pos[i][k]
					w.vel[i][k] = -w.vel[i][k]
				}
			}
			p.Read(w.arrMol.Addr(i))
			p.Write(w.arrMol.Addr(i))
			p.ComputeCycles(updateCycles)
			nc := w.cellIndexOf(w.pos[i])
			if nc == cell {
				continue
			}
			// Molecule crossed a boundary: move between cell lists,
			// locking the destination's owner when it is foreign.
			owner := w.ownerOfCell(nc)
			if owner != id {
				w.locks[owner].Acquire(p)
			}
			list[idx] = list[len(list)-1]
			list = list[:len(list)-1]
			w.cells[cell] = list
			w.cells[nc] = append(w.cells[nc], int32(i))
			w.cellOf[i] = int32(nc)
			p.Write(w.arrCell.Addr(cell))
			p.Write(w.arrCell.Addr(nc))
			p.ComputeCycles(moveCycles)
			if owner != id {
				w.locks[owner].Release(p)
			}
			w.moved++
			idx--
		}
	}
}

func (w *run) verify() error {
	count := 0
	for c, list := range w.cells {
		count += len(list)
		for _, i := range list {
			if int(w.cellOf[i]) != c {
				return fmt.Errorf("waters: molecule %d cell mismatch", i)
			}
		}
	}
	if count != w.n {
		return fmt.Errorf("waters: %d molecules in cells, want %d", count, w.n)
	}
	var pot float64
	for _, e := range w.energy {
		pot += e
	}
	if math.IsNaN(pot) || math.IsInf(pot, 0) {
		return fmt.Errorf("waters: potential not finite")
	}
	return nil
}

// RunForPotential executes one step and returns the potential (test aid).
func RunForPotential(m *core.Machine, p workload.Params) (float64, error) {
	p.Steps = 1
	w, err := build(m, p)
	if err != nil {
		return 0, err
	}
	if err := m.Run(w.body); err != nil {
		return 0, err
	}
	if err := w.verify(); err != nil {
		return 0, err
	}
	var pot float64
	for _, e := range w.energy {
		pot += e
	}
	return pot, nil
}
