package waters

import (
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/workload"
)

func TestPotentialConsistentAcrossProcs(t *testing.T) {
	// The pair set depends only on positions, so the one-step potential
	// must agree across processor counts up to summation order.
	want, err := RunForPotential(core.New(core.Origin2000(1)), workload.Params{Size: 512, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{4, 8, 27} {
		got, err := RunForPotential(core.New(core.Origin2000(procs)), workload.Params{Size: 512, Seed: 4})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if err := workload.CheckClose("potential", got, want, 1e-9); err != nil {
			t.Errorf("procs=%d: %v", procs, err)
		}
	}
}

func TestRunVerifiesAndConservesMolecules(t *testing.T) {
	m := core.New(core.Origin2000(8))
	if err := New().Run(m, workload.Params{Size: 1024, Seed: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestFactor3Products(t *testing.T) {
	for _, np := range []int{1, 2, 4, 8, 16, 32, 64, 96, 128} {
		px, py, pz := factor3(np)
		if px*py*pz != np {
			t.Errorf("factor3(%d) = %d*%d*%d", np, px, py, pz)
		}
	}
}

func TestOwnerCoversAllProcs(t *testing.T) {
	m := core.New(core.Origin2000(16))
	w, err := build(m, workload.Params{Size: 4096, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for c := range w.cells {
		o := w.ownerOfCell(c)
		if o < 0 || o >= 16 {
			t.Fatalf("cell %d owned by %d", c, o)
		}
		seen[o] = true
	}
	if len(seen) != 16 {
		t.Errorf("only %d processors own cells", len(seen))
	}
}

func TestCommunicationIsNearNeighbour(t *testing.T) {
	// Remote traffic should be a modest fraction of total traffic
	// (surface-to-volume) and fall as the problem grows.
	frac := func(n int) float64 {
		m := core.New(core.Origin2000(8))
		if err := New().Run(m, workload.Params{Size: n, Seed: 4, Steps: 1}); err != nil {
			t.Fatal(err)
		}
		c := m.Result().Counters
		remote := float64(c.RemoteClean + c.RemoteDirty)
		total := float64(c.Misses()) + float64(c.Hits)
		return remote / total
	}
	small := frac(1024)
	large := frac(8192)
	if large >= small {
		t.Errorf("remote fraction should fall with problem size: %f -> %f", small, large)
	}
}

func TestSyncDominatedAtSmallProblem(t *testing.T) {
	// The paper's Figure 3/5 effect: at the small size with many
	// processors, synchronization (imbalance) time is the top overhead.
	m := core.New(core.Origin2000(32))
	if err := New().Run(m, workload.Params{Size: 1024, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	avg := m.Result().Average()
	if avg.Sync == 0 {
		t.Fatal("no sync time recorded")
	}
	if avg.Sync < avg.Memory/4 {
		t.Errorf("expected substantial sync time at small size: busy=%v mem=%v sync=%v",
			avg.Busy, avg.Memory, avg.Sync)
	}
}
