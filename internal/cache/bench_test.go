package cache

import "testing"

// BenchmarkLookupHit measures the cache hit path.
func BenchmarkLookupHit(b *testing.B) {
	c := New(Origin2000L2)
	c.Insert(42, Shared)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(42)
	}
}

// BenchmarkInsertEvict measures insertion with LRU eviction pressure.
func BenchmarkInsertEvict(b *testing.B) {
	c := New(Config{SizeBytes: 64 << 10, BlockBytes: 128, Assoc: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(uint64(i), Shared)
	}
}
