// Package cache models a set-associative processor cache with MSI line
// states, matching the Origin2000's unified 4 MB, 2-way, 128-byte-block
// second-level cache. The machine model (internal/core) drives it with
// block numbers; the cache answers hit/miss and tracks victims.
package cache

import "fmt"

// State is the coherence state of a cached block.
type State uint8

const (
	// Invalid means the block is not present.
	Invalid State = iota
	// Shared means the block is present read-only; memory is up to date.
	Shared
	// Modified means this cache owns the only, dirty copy.
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "Invalid"
	case Shared:
		return "Shared"
	case Modified:
		return "Modified"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Config sizes a cache.
type Config struct {
	// SizeBytes is the total capacity, e.g. 4 << 20.
	SizeBytes int
	// BlockBytes is the line size, e.g. 128.
	BlockBytes int
	// Assoc is the associativity, e.g. 2.
	Assoc int
}

// Origin2000L2 is the secondary cache of each R10000 in the paper's machine.
var Origin2000L2 = Config{SizeBytes: 4 << 20, BlockBytes: 128, Assoc: 2}

// Cache is one processor's cache.
type Cache struct {
	sets    int
	setMask int // sets-1 when sets is a power of two, else -1
	assoc   int
	tags    []uint64 // block numbers, indexed set*assoc+way
	state   []State
	age     []uint64 // LRU stamps
	clock   uint64
}

// New creates a cache with the given geometry.
func New(cfg Config) *Cache {
	if cfg.SizeBytes <= 0 || cfg.BlockBytes <= 0 || cfg.Assoc <= 0 {
		panic("cache: invalid config")
	}
	lines := cfg.SizeBytes / cfg.BlockBytes
	sets := lines / cfg.Assoc
	if sets < 1 {
		sets = 1
	}
	n := sets * cfg.Assoc
	mask := -1
	if sets&(sets-1) == 0 {
		mask = sets - 1 // power-of-two geometry: index with a mask, not a divide
	}
	return &Cache{
		sets:    sets,
		setMask: mask,
		assoc:   cfg.Assoc,
		tags:    make([]uint64, n),
		state:   make([]State, n),
		age:     make([]uint64, n),
	}
}

// Sets reports the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Assoc reports the associativity.
func (c *Cache) Assoc() int { return c.assoc }

func (c *Cache) setOf(block uint64) int {
	if m := c.setMask; m >= 0 {
		return int(block) & m
	}
	return int(block % uint64(c.sets))
}

func (c *Cache) find(block uint64) int {
	base := c.setOf(block) * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.state[base+w] != Invalid && c.tags[base+w] == block {
			return base + w
		}
	}
	return -1
}

// Lookup reports the state of block and refreshes its LRU position on a hit.
func (c *Cache) Lookup(block uint64) State {
	i := c.find(block)
	if i < 0 {
		return Invalid
	}
	c.clock++
	c.age[i] = c.clock
	return c.state[i]
}

// Peek reports the state of block without touching LRU.
func (c *Cache) Peek(block uint64) State {
	i := c.find(block)
	if i < 0 {
		return Invalid
	}
	return c.state[i]
}

// Victim describes a block displaced by Insert.
type Victim struct {
	Block uint64
	State State // Shared (silent drop) or Modified (writeback needed)
}

// Insert places block with the given state, evicting the LRU line of its
// set if necessary. It returns the displaced line, if any. Inserting a
// block that is already present just updates its state.
func (c *Cache) Insert(block uint64, s State) (victim Victim, evicted bool) {
	if i := c.find(block); i >= 0 {
		if s == Invalid {
			panic("cache: inserting Invalid")
		}
		c.clock++
		c.age[i] = c.clock
		c.state[i] = s
		return Victim{}, false
	}
	return c.Fill(block, s)
}

// Fill places a block the caller knows is absent (it just observed a miss
// with Lookup or Peek and nothing has touched this cache since), skipping
// the presence scan that Insert would repeat. The miss path pairs Lookup
// with Fill so each set is walked once, not twice.
func (c *Cache) Fill(block uint64, s State) (victim Victim, evicted bool) {
	if s == Invalid {
		panic("cache: inserting Invalid")
	}
	base := c.setOf(block) * c.assoc
	// Prefer an invalid way; otherwise evict the least recently used.
	way := -1
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if c.state[i] == Invalid {
			way = i
			break
		}
		if c.age[i] < oldest {
			oldest = c.age[i]
			way = i
		}
	}
	if c.state[way] != Invalid {
		victim = Victim{Block: c.tags[way], State: c.state[way]}
		evicted = true
	}
	c.clock++
	c.tags[way] = block
	c.state[way] = s
	c.age[way] = c.clock
	return victim, evicted
}

// PeekVictim predicts, without mutating any cache state, the line Fill
// would displace to make room for block. It replicates Fill's way choice
// exactly (an invalid way first, else the LRU way), so the engine's shard
// classifier can learn a miss's victim — whose home directory the eviction
// will touch — before deciding whether the transaction stays shard-local.
func (c *Cache) PeekVictim(block uint64) (victim Victim, evicted bool) {
	base := c.setOf(block) * c.assoc
	way := -1
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if c.state[i] == Invalid {
			return Victim{}, false
		}
		if c.age[i] < oldest {
			oldest = c.age[i]
			way = i
		}
	}
	return Victim{Block: c.tags[way], State: c.state[way]}, true
}

// SetState changes the state of a present block; it panics if absent.
func (c *Cache) SetState(block uint64, s State) {
	i := c.find(block)
	if i < 0 {
		panic("cache: SetState on absent block")
	}
	if s == Invalid {
		c.state[i] = Invalid
		return
	}
	c.state[i] = s
}

// Invalidate removes block, returning its previous state (Invalid if the
// block was not present — invalidations can race with evictions).
func (c *Cache) Invalidate(block uint64) State {
	i := c.find(block)
	if i < 0 {
		return Invalid
	}
	s := c.state[i]
	c.state[i] = Invalid
	return s
}

// Downgrade moves a Modified block to Shared (for remote read
// interventions), returning its previous state.
func (c *Cache) Downgrade(block uint64) State {
	i := c.find(block)
	if i < 0 {
		return Invalid
	}
	s := c.state[i]
	if s == Modified {
		c.state[i] = Shared
	}
	return s
}

// Flush invalidates every line. It returns the number of Modified lines
// dropped (tests use it to verify writeback accounting).
func (c *Cache) Flush() int {
	dirty := 0
	for i := range c.state {
		if c.state[i] == Modified {
			dirty++
		}
		c.state[i] = Invalid
	}
	return dirty
}

// CountValid reports the number of valid lines (test/diagnostic aid).
func (c *Cache) CountValid() int {
	n := 0
	for _, s := range c.state {
		if s != Invalid {
			n++
		}
	}
	return n
}
