package cache

import (
	"testing"
	"testing/quick"
)

func tiny() *Cache { return New(Config{SizeBytes: 1024, BlockBytes: 64, Assoc: 2}) } // 8 sets

func TestHitMiss(t *testing.T) {
	c := tiny()
	if c.Lookup(5) != Invalid {
		t.Fatal("cold cache should miss")
	}
	c.Insert(5, Shared)
	if c.Lookup(5) != Shared {
		t.Fatal("inserted block should hit Shared")
	}
	c.Insert(5, Modified)
	if c.Lookup(5) != Modified {
		t.Fatal("re-insert should upgrade state")
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny() // 8 sets, 2-way; blocks 0, 8, 16 map to set 0
	c.Insert(0, Shared)
	c.Insert(8, Shared)
	c.Lookup(0) // make 8 the LRU
	v, evicted := c.Insert(16, Shared)
	if !evicted || v.Block != 8 {
		t.Fatalf("evicted %+v (evicted=%v), want block 8", v, evicted)
	}
	if c.Peek(0) != Shared || c.Peek(16) != Shared || c.Peek(8) != Invalid {
		t.Fatal("wrong residency after eviction")
	}
}

func TestDirtyVictim(t *testing.T) {
	c := tiny()
	c.Insert(0, Modified)
	c.Insert(8, Shared)
	v, evicted := c.Insert(16, Shared) // evicts LRU = block 0, dirty
	if !evicted || v.Block != 0 || v.State != Modified {
		t.Fatalf("victim %+v, want dirty block 0", v)
	}
}

func TestInvalidateAndDowngrade(t *testing.T) {
	c := tiny()
	c.Insert(3, Modified)
	if got := c.Downgrade(3); got != Modified {
		t.Errorf("Downgrade returned %v, want Modified", got)
	}
	if c.Peek(3) != Shared {
		t.Error("Downgrade should leave the block Shared")
	}
	if got := c.Invalidate(3); got != Shared {
		t.Errorf("Invalidate returned %v, want Shared", got)
	}
	if got := c.Invalidate(3); got != Invalid {
		t.Errorf("double Invalidate returned %v, want Invalid", got)
	}
}

func TestFlushCountsDirtyLines(t *testing.T) {
	c := tiny()
	c.Insert(1, Modified)
	c.Insert(2, Modified)
	c.Insert(3, Shared)
	if got := c.Flush(); got != 2 {
		t.Errorf("Flush dropped %d dirty lines, want 2", got)
	}
	if c.CountValid() != 0 {
		t.Error("Flush should leave the cache empty")
	}
}

func TestCapacityNeverExceededProperty(t *testing.T) {
	// Property: however blocks are inserted, the number of valid lines
	// never exceeds capacity, and every block in the same set conflicts.
	f := func(blocks []uint16) bool {
		c := tiny()
		capacity := c.Sets() * c.Assoc()
		for _, b := range blocks {
			c.Insert(uint64(b), Shared)
			if c.CountValid() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInsertedBlockAlwaysHitsProperty(t *testing.T) {
	// Property: immediately after Insert, the block is present with the
	// inserted state, regardless of prior history.
	f := func(history []uint16, final uint16, dirty bool) bool {
		c := tiny()
		for _, b := range history {
			c.Insert(uint64(b), Shared)
		}
		st := Shared
		if dirty {
			st = Modified
		}
		c.Insert(uint64(final), st)
		return c.Peek(uint64(final)) == st
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetSmallerThanCacheNeverEvicts(t *testing.T) {
	// A working set that fits (one block per set) hits forever after the
	// first pass — the basis for the paper's capacity-miss reasoning.
	c := tiny()
	for pass := 0; pass < 3; pass++ {
		for b := uint64(0); b < 8; b++ {
			st := c.Lookup(b)
			if pass > 0 && st == Invalid {
				t.Fatalf("pass %d: block %d missed", pass, b)
			}
			if st == Invalid {
				c.Insert(b, Shared)
			}
		}
	}
}

func TestOrigin2000Geometry(t *testing.T) {
	c := New(Origin2000L2)
	if got := c.Sets() * c.Assoc(); got != (4<<20)/128 {
		t.Errorf("lines = %d, want %d", got, (4<<20)/128)
	}
	if c.Assoc() != 2 {
		t.Errorf("assoc = %d, want 2", c.Assoc())
	}
}

func TestFillMatchesInsertOnAbsentBlocks(t *testing.T) {
	// Fill is Insert minus the presence scan; driven with the same absent
	// blocks, both caches must evolve identically (tags, states, LRU).
	a, b := tiny(), tiny()
	blocks := []uint64{0, 8, 16, 3, 11, 19, 8, 0, 24, 32} // set collisions force evictions
	for i, blk := range blocks {
		st := Shared
		if i%3 == 0 {
			st = Modified
		}
		var va, vb Victim
		var ea, eb bool
		if a.Peek(blk) == Invalid {
			va, ea = a.Fill(blk, st)
			vb, eb = b.Insert(blk, st)
		} else {
			va, ea = a.Insert(blk, st)
			vb, eb = b.Insert(blk, st)
		}
		if va != vb || ea != eb {
			t.Fatalf("step %d (block %d): Fill victim (%+v,%v) != Insert victim (%+v,%v)",
				i, blk, va, ea, vb, eb)
		}
	}
	for b2 := uint64(0); b2 < 40; b2++ {
		if a.Peek(b2) != b.Peek(b2) {
			t.Fatalf("block %d: state diverged: %v vs %v", b2, a.Peek(b2), b.Peek(b2))
		}
	}
}

func TestFillEvictsLRU(t *testing.T) {
	c := tiny() // 8 sets, 2-way: blocks 0, 8, 16 collide in set 0
	c.Fill(0, Shared)
	c.Fill(8, Modified)
	c.Lookup(0) // 0 now more recently used than 8
	v, evicted := c.Fill(16, Shared)
	if !evicted || v.Block != 8 || v.State != Modified {
		t.Fatalf("victim = %+v (evicted=%v), want dirty block 8", v, evicted)
	}
	if c.Peek(0) != Shared || c.Peek(16) != Shared {
		t.Fatal("survivor set wrong after Fill eviction")
	}
}
