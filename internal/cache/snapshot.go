package cache

// Snap is the serializable state of one cache: geometry plus the raw line
// arrays. Tags and LRU stamps are captured verbatim (including lines that
// are currently Invalid) so a snapshot compares byte-for-byte with a live
// re-capture at the same virtual-time point.
type Snap struct {
	Sets  int      `json:"sets"`
	Assoc int      `json:"assoc"`
	Tags  []uint64 `json:"tags"`
	State []State  `json:"state"`
	Age   []uint64 `json:"age"`
	Clock uint64   `json:"clock"`
}

// Snap captures the cache's full state.
func (c *Cache) Snap() Snap {
	return Snap{
		Sets:  c.sets,
		Assoc: c.assoc,
		Tags:  append([]uint64(nil), c.tags...),
		State: append([]State(nil), c.state...),
		Age:   append([]uint64(nil), c.age...),
		Clock: c.clock,
	}
}
