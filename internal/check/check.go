// Package check is the verification layer for the simulated CC-NUMA
// machine: an online coherence-invariant checker the machine model
// (internal/core) feeds with protocol events, a deterministic protocol
// fuzzer (trace generation and shrinking; the runner lives in this
// package's tests), and — in the litmus subpackage — a sequential-
// consistency litmus harness.
//
// The online checker maintains two independent mirrors built only from the
// event stream:
//
//   - a directory mirror: what the home directory must say about each
//     block if every transition it reported was applied faithfully, and
//   - per-processor cache mirrors: which blocks each cache must hold, in
//     which state, and at which value version.
//
// After every transaction it cross-checks the mirrors against the real
// directory entry and the real cache lines, asserting the paper's
// correctness obligations:
//
//   - SWMR: at most one writer per block, and a writer excludes sharers;
//   - directory↔cache agreement: every sharer bit corresponds to a live
//     cache line in the right state, and every Modified line has an
//     Exclusive ("Dirty") directory entry;
//   - value coherence: a golden flat-memory image is modeled as a
//     monotonically increasing version per block; every readable cached
//     copy must hold the latest version (a stale version surviving an
//     invalidation is exactly a lost-invalidation bug).
//
// Violations carry the block address, a ring of the block's recent
// transaction history, and every processor's virtual clock at detection
// time. The checker is opt-in (core.Config.Check) and costs nothing when
// off: the machine model guards every hook with one nil check.
package check

import (
	"fmt"
	"sort"
	"strings"

	"origin2000/internal/cache"
	"origin2000/internal/directory"
	"origin2000/internal/sim"
)

// EventKind labels one protocol event in a block's history ring.
type EventKind uint8

// The protocol events the machine model reports.
const (
	EvReadHit EventKind = iota
	EvWriteHit
	EvDirRead
	EvDirWrite
	EvFillShared
	EvFillModified
	EvUpgrade
	EvInvalidate
	EvDowngrade
	EvEvict
	EvWriteback
	EvTxnEnd
)

func (k EventKind) String() string {
	switch k {
	case EvReadHit:
		return "read-hit"
	case EvWriteHit:
		return "write-hit"
	case EvDirRead:
		return "dir-read"
	case EvDirWrite:
		return "dir-write"
	case EvFillShared:
		return "fill-S"
	case EvFillModified:
		return "fill-M"
	case EvUpgrade:
		return "upgrade"
	case EvInvalidate:
		return "invalidate"
	case EvDowngrade:
		return "downgrade"
	case EvEvict:
		return "evict"
	case EvWriteback:
		return "writeback"
	case EvTxnEnd:
		return "txn-end"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one entry of a block's transaction-history ring.
type Event struct {
	Kind EventKind
	Proc int16 // acting processor (-1 when not applicable)
	At   sim.Time
	Ver  uint64 // golden version after the event
}

func (e Event) String() string {
	return fmt.Sprintf("%s p%d @%s v%d", e.Kind, e.Proc, e.At, e.Ver)
}

// ringSize is the number of history events kept per block.
const ringSize = 16

type ring struct {
	ev  [ringSize]Event
	n   int // total events recorded
	idx int // next write position
}

func (r *ring) record(e Event) {
	r.ev[r.idx] = e
	r.idx = (r.idx + 1) % ringSize
	r.n++
}

// snapshot returns the recorded events, oldest first.
func (r *ring) snapshot() []Event {
	if r == nil {
		return nil
	}
	k := r.n
	if k > ringSize {
		k = ringSize
	}
	out := make([]Event, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, r.ev[(r.idx-k+i+ringSize)%ringSize])
	}
	return out
}

// Violation is one detected invariant breach.
type Violation struct {
	// Block is the block number the violation concerns.
	Block uint64
	// Msg describes the breached invariant.
	Msg string
	// Proc is the processor whose event exposed it (-1 for audit findings).
	Proc int
	// At is that processor's virtual clock when detected.
	At sim.Time
	// History is the block's recent transaction history, oldest first.
	History []Event
	// Clocks holds every processor's virtual clock at detection time.
	Clocks []sim.Time
}

func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "check: block %#x: %s (proc %d @%s)", v.Block, v.Msg, v.Proc, v.At)
	if len(v.History) > 0 {
		b.WriteString("\n  history:")
		for _, e := range v.History {
			fmt.Fprintf(&b, "\n    %s", e)
		}
	}
	if len(v.Clocks) > 0 {
		b.WriteString("\n  clocks:")
		for i, c := range v.Clocks {
			fmt.Fprintf(&b, " p%d=%s", i, c)
		}
	}
	return b.String()
}

// lineMirror is one processor's expected cache line.
type lineMirror struct {
	state cache.State // Shared or Modified
	ver   uint64      // golden version the copy holds
}

// blockMirror is the checker's expected state for one block.
type blockMirror struct {
	// dirState/owner/sharers mirror the home directory entry.
	dirState directory.State
	owner    int16
	sharers  directory.Sharers
	// ver is the golden flat-memory image: the version of the latest
	// committed write to the block.
	ver uint64
	// held[p] is processor p's expected cache line for this block.
	held map[int]lineMirror
	// hist is the transaction-history ring (lazily allocated).
	hist *ring
}

// DirView is the directory state the checker audits against. A single
// *directory.Directory satisfies it directly; the machine's sharded build
// passes an aggregate view that routes each block to the directory of its
// home node and iterates the per-node directories in node order.
type DirView interface {
	// Entry returns the directory entry for block.
	Entry(block uint64) directory.Entry
	// ForEach visits every block with active state, deterministically.
	ForEach(fn func(block uint64, e directory.Entry))
	// Check audits the directory's internal invariants.
	Check() error
}

// Checker is the online coherence-invariant checker. It is not safe for
// concurrent use; the simulation engine serializes the event stream (the
// machine forces the windowed engine onto one worker when checking), which
// is exactly what the mirror-state updates need.
type Checker struct {
	dir    DirView
	caches []*cache.Cache
	clocks []sim.Time

	blocks map[uint64]*blockMirror

	// MaxViolations bounds the violations retained (default 16); detection
	// continues but further reports are dropped, keeping a broken run from
	// hoarding memory.
	MaxViolations int
	violations    []*Violation
	dropped       int

	events int64
}

// New creates a checker for a machine with nprocs processors over the given
// directory view. Caches are attached as the machine builds them.
func New(nprocs int, dir DirView) *Checker {
	return &Checker{
		dir:           dir,
		caches:        make([]*cache.Cache, nprocs),
		clocks:        make([]sim.Time, nprocs),
		blocks:        make(map[uint64]*blockMirror),
		MaxViolations: 16,
	}
}

// AttachCache registers processor p's cache for agreement checks.
func (c *Checker) AttachCache(p int, ca *cache.Cache) { c.caches[p] = ca }

// Events reports the number of protocol events observed (diagnostics).
func (c *Checker) Events() int64 { return c.events }

// Violations returns the violations detected so far, in detection order.
func (c *Checker) Violations() []*Violation { return c.violations }

// Err returns nil when no violation was detected, or an error summarizing
// the first violation (and the total count).
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	n := len(c.violations) + c.dropped
	if n == 1 {
		return c.violations[0]
	}
	return fmt.Errorf("check: %d violations, first: %w", n, c.violations[0])
}

func (c *Checker) mirror(block uint64) *blockMirror {
	b := c.blocks[block]
	if b == nil {
		b = &blockMirror{owner: -1, held: make(map[int]lineMirror)}
		c.blocks[block] = b
	}
	return b
}

func (c *Checker) record(b *blockMirror, kind EventKind, proc int, at sim.Time) {
	if b.hist == nil {
		b.hist = &ring{}
	}
	b.hist.record(Event{Kind: kind, Proc: int16(proc), At: at, Ver: b.ver})
	c.events++
}

func (c *Checker) violate(block uint64, b *blockMirror, proc int, at sim.Time, format string, args ...any) {
	if len(c.violations) >= c.MaxViolations {
		c.dropped++
		return
	}
	v := &Violation{
		Block:   block,
		Msg:     fmt.Sprintf(format, args...),
		Proc:    proc,
		At:      at,
		History: b.hist.snapshot(),
		Clocks:  append([]sim.Time(nil), c.clocks...),
	}
	c.violations = append(c.violations, v)
}

func (c *Checker) tick(proc int, at sim.Time) {
	if proc >= 0 && proc < len(c.clocks) && at > c.clocks[proc] {
		c.clocks[proc] = at
	}
}

// --- cache-side events ---

// OnHit records a demand hit: a read of a Shared or Modified line, or a
// write hit on a Modified line. It asserts the processor really holds the
// block at the golden version (value coherence) and, for writes, that it is
// the exclusive owner (SWMR).
func (c *Checker) OnHit(proc int, block uint64, write bool, at sim.Time) {
	c.tick(proc, at)
	b := c.mirror(block)
	kind := EvReadHit
	if write {
		kind = EvWriteHit
	}
	ln, held := b.held[proc]
	switch {
	case !held:
		c.violate(block, b, proc, at, "%s but mirror says p%d holds no copy", kind, proc)
	case ln.ver != b.ver:
		c.violate(block, b, proc, at,
			"stale %s: p%d holds version %d, golden image is %d (lost invalidation?)",
			kind, proc, ln.ver, b.ver)
	case write && ln.state != cache.Modified:
		c.violate(block, b, proc, at, "write hit on non-Modified mirror line (%s)", ln.state)
	}
	if write {
		// The owner commits a new value: bump the golden image and the
		// owner's copy together. Any other surviving copy is now provably
		// stale and will be caught on its next use.
		b.ver++
		if held {
			b.held[proc] = lineMirror{state: cache.Modified, ver: b.ver}
		}
		c.checkSWMR(block, b, proc, at)
	}
	c.record(b, kind, proc, at)
}

// OnFill records the requester's cache fill completing a demand miss or a
// prefetch. A write fill makes the requester the exclusive owner of a new
// version; a read fill hands it the current golden version.
func (c *Checker) OnFill(proc int, block uint64, write bool, at sim.Time) {
	c.tick(proc, at)
	b := c.mirror(block)
	if write {
		b.ver++
		b.held[proc] = lineMirror{state: cache.Modified, ver: b.ver}
		c.record(b, EvFillModified, proc, at)
	} else {
		b.held[proc] = lineMirror{state: cache.Shared, ver: b.ver}
		c.record(b, EvFillShared, proc, at)
	}
	c.checkSWMR(block, b, proc, at)
}

// OnUpgrade records a write hit on a Shared line completing its ownership
// transaction: the line moves to Modified with a new version.
func (c *Checker) OnUpgrade(proc int, block uint64, at sim.Time) {
	c.tick(proc, at)
	b := c.mirror(block)
	if ln, held := b.held[proc]; !held {
		c.violate(block, b, proc, at, "upgrade but mirror says p%d holds no copy", proc)
	} else if ln.ver != b.ver {
		c.violate(block, b, proc, at,
			"upgrade of stale copy: p%d holds version %d, golden image is %d", proc, ln.ver, b.ver)
	}
	b.ver++
	b.held[proc] = lineMirror{state: cache.Modified, ver: b.ver}
	c.record(b, EvUpgrade, proc, at)
	c.checkSWMR(block, b, proc, at)
}

// OnInvalidate records processor proc's copy being invalidated (write
// fan-out or ownership transfer).
func (c *Checker) OnInvalidate(proc int, block uint64, at sim.Time) {
	b := c.mirror(block)
	delete(b.held, proc)
	c.record(b, EvInvalidate, proc, at)
}

// OnDowngrade records the previous owner's Modified line moving to Shared
// for a remote read intervention.
func (c *Checker) OnDowngrade(proc int, block uint64, at sim.Time) {
	b := c.mirror(block)
	if ln, held := b.held[proc]; held {
		if ln.state != cache.Modified {
			c.violate(block, b, proc, at, "downgrade of non-Modified mirror line (%s)", ln.state)
		}
		b.held[proc] = lineMirror{state: cache.Shared, ver: ln.ver}
	} else {
		c.violate(block, b, proc, at, "downgrade but mirror says p%d holds no copy", proc)
	}
	c.record(b, EvDowngrade, proc, at)
}

// OnEvict records proc silently dropping a clean copy (replacement hint).
func (c *Checker) OnEvict(proc int, block uint64, at sim.Time) {
	b := c.mirror(block)
	if ln, held := b.held[proc]; held && ln.state == cache.Modified {
		c.violate(block, b, proc, at, "clean eviction of a mirror-Modified line")
	}
	delete(b.held, proc)
	// Mirror the directory's Evict transition.
	if b.dirState == directory.SharedState {
		b.sharers.Remove(proc)
		if b.sharers.Count() == 0 {
			b.dirState = directory.Unowned
		}
	}
	c.record(b, EvEvict, proc, at)
}

// OnWriteback records proc writing a dirty victim back to memory.
func (c *Checker) OnWriteback(proc int, block uint64, at sim.Time) {
	b := c.mirror(block)
	if ln, held := b.held[proc]; !held || ln.state != cache.Modified {
		c.violate(block, b, proc, at, "writeback of a line the mirror does not hold Modified")
	}
	delete(b.held, proc)
	// Mirror Directory.Writeback: only the current owner returns the block
	// to Unowned.
	if b.dirState == directory.Exclusive && int(b.owner) == proc {
		b.dirState = directory.Unowned
		b.owner = -1
	}
	c.record(b, EvWriteback, proc, at)
}

// --- directory-side events ---

// OnDirRead records the home directory serving a read miss. It verifies
// the reported intervention against the mirror (a dirty response must name
// exactly the mirrored owner) and applies the transition to the mirror.
func (c *Checker) OnDirRead(block uint64, requester int, res directory.ReadResult, at sim.Time) {
	c.tick(requester, at)
	b := c.mirror(block)
	switch b.dirState {
	case directory.Exclusive:
		if !res.Dirty {
			c.violate(block, b, requester, at,
				"dir read: mirror owner p%d but directory reported a clean response", b.owner)
		} else if int16(res.Owner) != b.owner {
			c.violate(block, b, requester, at,
				"dir read: intervention forwarded to p%d, mirror owner is p%d", res.Owner, b.owner)
		}
		b.sharers.Clear()
		b.sharers.Add(int(b.owner))
		b.sharers.Add(requester)
		b.dirState = directory.SharedState
		b.owner = -1
	default:
		if res.Dirty {
			c.violate(block, b, requester, at,
				"dir read: directory reported dirty owner p%d, mirror state is %s", res.Owner, b.dirState)
		}
		b.dirState = directory.SharedState
		b.sharers.Add(requester)
	}
	c.record(b, EvDirRead, requester, at)
}

// OnDirWrite records the home directory serving a write miss or upgrade.
// The invalidation list the directory returned must cover exactly the
// mirrored sharer set minus the requester — a missing entry is a lost
// invalidation, an extra one a spurious invalidation — and a dirty response
// must name exactly the mirrored owner.
func (c *Checker) OnDirWrite(block uint64, requester int, res directory.WriteResult, at sim.Time) {
	c.tick(requester, at)
	b := c.mirror(block)
	switch b.dirState {
	case directory.SharedState:
		var want directory.Sharers
		want = b.sharers
		want.Remove(requester)
		var got directory.Sharers
		for _, p := range res.Invalidate {
			if p < 0 || p >= directory.MaxProcs {
				c.violate(block, b, requester, at, "dir write: invalidation target p%d out of range", p)
				continue
			}
			if got.Contains(p) {
				c.violate(block, b, requester, at, "dir write: duplicate invalidation target p%d", p)
			}
			got.Add(p)
		}
		if got != want {
			c.violate(block, b, requester, at,
				"dir write: invalidation list %v does not match mirror sharers %v (minus requester p%d)",
				sharerList(got), sharerList(want), requester)
		}
		if res.Dirty {
			c.violate(block, b, requester, at, "dir write: dirty response from a Shared mirror block")
		}
	case directory.Exclusive:
		if int(b.owner) != requester {
			if !res.Dirty {
				c.violate(block, b, requester, at,
					"dir write: mirror owner p%d but directory reported no ownership transfer", b.owner)
			} else if int16(res.Owner) != b.owner {
				c.violate(block, b, requester, at,
					"dir write: ownership transferred from p%d, mirror owner is p%d", res.Owner, b.owner)
			}
		} else if res.Dirty || len(res.Invalidate) != 0 {
			c.violate(block, b, requester, at, "dir write: upgrade by owner p%d reported extra work", requester)
		}
	default: // Unowned
		if res.Dirty || len(res.Invalidate) != 0 {
			c.violate(block, b, requester, at, "dir write: Unowned mirror block reported %v/%v",
				res.Dirty, sharerList(sharersOf(res.Invalidate)))
		}
	}
	b.dirState = directory.Exclusive
	b.owner = int16(requester)
	b.sharers.Clear()
	c.record(b, EvDirWrite, requester, at)
}

// OnTxnEnd marks a transaction for block complete: the directory entry and
// every cache agree with the mirrors again, so cross-check all of them.
func (c *Checker) OnTxnEnd(proc int, block uint64, at sim.Time) {
	c.tick(proc, at)
	b := c.mirror(block)
	c.record(b, EvTxnEnd, proc, at)
	c.checkBlock(block, b, proc, at)
}

// --- invariant checks ---

// checkSWMR asserts the single-writer/multiple-reader property on the
// cache mirror of one block.
func (c *Checker) checkSWMR(block uint64, b *blockMirror, proc int, at sim.Time) {
	writers, readers := 0, 0
	writer := -1
	for p, ln := range b.held {
		if ln.state == cache.Modified {
			writers++
			writer = p
		} else {
			readers++
		}
	}
	if writers > 1 {
		c.violate(block, b, proc, at, "SWMR: %d simultaneous writers", writers)
	}
	if writers == 1 && readers > 0 {
		c.violate(block, b, proc, at,
			"SWMR: writer p%d coexists with %d read-only copies", writer, readers)
	}
}

// checkBlock cross-checks one block: mirror vs the real directory entry,
// and mirror vs the real cache lines.
func (c *Checker) checkBlock(block uint64, b *blockMirror, proc int, at sim.Time) {
	c.checkSWMR(block, b, proc, at)

	e := c.dir.Entry(block)
	if e.State != b.dirState {
		c.violate(block, b, proc, at, "directory state %s, mirror %s", e.State, b.dirState)
		return
	}
	switch b.dirState {
	case directory.Exclusive:
		if e.Owner != b.owner {
			c.violate(block, b, proc, at, "directory owner p%d, mirror p%d", e.Owner, b.owner)
		}
	case directory.SharedState:
		if e.Sharers != b.sharers {
			c.violate(block, b, proc, at, "directory sharers %v, mirror %v",
				sharerList(e.Sharers), sharerList(b.sharers))
		}
	}

	// Directory↔cache agreement for this block, both directions.
	for p, ln := range b.held {
		if ca := c.caches[p]; ca != nil {
			if st := ca.Peek(block); st != ln.state {
				c.violate(block, b, proc, at, "p%d cache holds %s, mirror %s", p, st, ln.state)
			}
		}
		switch b.dirState {
		case directory.SharedState:
			if ln.state == cache.Modified {
				c.violate(block, b, proc, at, "p%d mirror-Modified under a Shared directory entry", p)
			} else if !b.sharers.Contains(p) {
				c.violate(block, b, proc, at, "p%d holds a copy without a sharer bit", p)
			}
		case directory.Exclusive:
			if int(b.owner) != p {
				c.violate(block, b, proc, at,
					"p%d holds a copy while p%d owns the block exclusively", p, b.owner)
			} else if ln.state != cache.Modified {
				c.violate(block, b, proc, at, "exclusive owner p%d holds a %s line", p, ln.state)
			}
		default:
			c.violate(block, b, proc, at, "p%d holds a copy of an Unowned block", p)
		}
	}
	if b.dirState == directory.SharedState {
		b.sharers.ForEach(func(p int) {
			if _, held := b.held[p]; !held {
				c.violate(block, b, proc, at, "sharer bit for p%d without a live cache line", p)
			}
		})
	}
	if b.dirState == directory.Exclusive {
		if _, held := b.held[int(b.owner)]; !held {
			c.violate(block, b, proc, at, "Exclusive owner p%d without a live Modified line", b.owner)
		}
	}
}

// Audit performs the full end-of-run scan: storage-structure validation of
// the dense directory, a per-block cross-check of every block the checker
// ever saw, and a reverse sweep asserting the directory has no active entry
// the event stream never produced. Returns the number of violations added.
func (c *Checker) Audit() int {
	before := len(c.violations) + c.dropped
	if err := c.dir.Check(); err != nil {
		b := c.mirror(0)
		c.violate(0, b, -1, 0, "directory self-check: %v", err)
	}
	blocks := make([]uint64, 0, len(c.blocks))
	for blk := range c.blocks {
		blocks = append(blocks, blk)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	for _, blk := range blocks {
		c.checkBlock(blk, c.blocks[blk], -1, 0)
	}
	c.dir.ForEach(func(blk uint64, e directory.Entry) {
		b := c.blocks[blk]
		if b == nil {
			c.violate(blk, &blockMirror{}, -1, 0,
				"directory has active state (%s) for a block with no recorded transactions", e.State)
		}
	})
	return len(c.violations) + c.dropped - before
}

func sharersOf(ps []int) directory.Sharers {
	var s directory.Sharers
	for _, p := range ps {
		if p >= 0 && p < directory.MaxProcs {
			s.Add(p)
		}
	}
	return s
}

func sharerList(s directory.Sharers) []int {
	return s.List(nil)
}
