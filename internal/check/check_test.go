package check

import (
	"strings"
	"testing"

	"origin2000/internal/cache"
	"origin2000/internal/directory"
	"origin2000/internal/sim"
)

// harness drives a Checker directly with a real directory and caches,
// playing both sides of the protocol the way internal/core does.
type harness struct {
	ck  *Checker
	dir *directory.Directory
	cas []*cache.Cache
}

func newHarness(nprocs int) *harness {
	d := directory.New()
	h := &harness{ck: New(nprocs, d), dir: d}
	for p := 0; p < nprocs; p++ {
		c := cache.New(cache.Config{SizeBytes: 4 << 10, BlockBytes: 128, Assoc: 2})
		h.cas = append(h.cas, c)
		h.ck.AttachCache(p, c)
	}
	return h
}

// read performs a faithful read miss or hit for proc on block.
func (h *harness) read(p int, block uint64, at sim.Time) {
	if h.cas[p].Lookup(block) != cache.Invalid {
		h.ck.OnHit(p, block, false, at)
		return
	}
	res := h.dir.Read(block, p)
	h.ck.OnDirRead(block, p, res, at)
	if res.Dirty {
		h.cas[res.Owner].Downgrade(block)
		h.ck.OnDowngrade(res.Owner, block, at)
	}
	h.cas[p].Fill(block, cache.Shared)
	h.ck.OnFill(p, block, false, at)
	h.ck.OnTxnEnd(p, block, at)
}

// write performs a faithful write miss/upgrade for proc on block.
func (h *harness) write(p int, block uint64, at sim.Time) {
	st := h.cas[p].Lookup(block)
	if st == cache.Modified {
		h.ck.OnHit(p, block, true, at)
		return
	}
	res := h.dir.Write(block, p)
	h.ck.OnDirWrite(block, p, res, at)
	if res.Dirty {
		h.cas[res.Owner].Invalidate(block)
		h.ck.OnInvalidate(res.Owner, block, at)
	}
	for _, s := range res.Invalidate {
		h.cas[s].Invalidate(block)
		h.ck.OnInvalidate(s, block, at)
	}
	if st == cache.Shared {
		h.cas[p].SetState(block, cache.Modified)
		h.ck.OnUpgrade(p, block, at)
	} else {
		h.cas[p].Fill(block, cache.Modified)
		h.ck.OnFill(p, block, true, at)
	}
	h.ck.OnTxnEnd(p, block, at)
}

func TestFaithfulProtocolHasNoViolations(t *testing.T) {
	h := newHarness(4)
	var at sim.Time
	for i := 0; i < 200; i++ {
		p := i % 4
		block := uint64(i % 7)
		at += 10 * sim.Nanosecond
		if i%3 == 0 {
			h.write(p, block, at)
		} else {
			h.read(p, block, at)
		}
	}
	if h.ck.Audit(); h.ck.Err() != nil {
		t.Fatalf("faithful protocol flagged: %v", h.ck.Err())
	}
	if h.ck.Events() == 0 {
		t.Fatal("no events recorded")
	}
}

func TestLostInvalidationIsCaughtAtDirWrite(t *testing.T) {
	h := newHarness(3)
	h.read(0, 1, 10)
	h.read(1, 1, 20)
	h.read(2, 1, 30)
	// p0 writes, but the directory "forgets" p2's invalidation.
	res := h.dir.Write(1, 0)
	filtered := res
	filtered.Invalidate = nil
	for _, s := range res.Invalidate {
		if s != 2 {
			filtered.Invalidate = append(filtered.Invalidate, s)
		}
	}
	h.ck.OnDirWrite(1, 0, filtered, 40)
	if h.ck.Err() == nil {
		t.Fatal("missing invalidation target not flagged")
	}
	if !strings.Contains(h.ck.Err().Error(), "invalidation list") {
		t.Fatalf("unexpected violation: %v", h.ck.Err())
	}
}

func TestUndeliveredInvalidationCaughtAtUpgrade(t *testing.T) {
	h := newHarness(2)
	h.read(0, 5, 10)
	h.read(1, 5, 20)
	// p0 gains ownership. The directory names p1 in the invalidation list
	// (so OnDirWrite is satisfied), but the invalidation is never
	// delivered: neither p1's cache nor the mirror drops the copy. The
	// SWMR scan at the upgrade catches the surviving reader immediately.
	res := h.dir.Write(5, 0)
	h.ck.OnDirWrite(5, 0, directory.WriteResult{Invalidate: res.Invalidate}, 30)
	h.cas[0].SetState(5, cache.Modified)
	h.ck.OnUpgrade(0, 5, 30)
	err := h.ck.Err()
	if err == nil {
		t.Fatal("undelivered invalidation not flagged")
	}
	if !strings.Contains(err.Error(), "SWMR") {
		t.Fatalf("unexpected violation: %v", err)
	}
}

// TestStaleReadHitIsCaught exercises the version backstop directly: a copy
// whose version lags the golden image trips the "lost invalidation?" report
// on its next use, even if every structural check somehow missed it.
func TestStaleReadHitIsCaught(t *testing.T) {
	h := newHarness(2)
	b := h.ck.mirror(5)
	b.ver = 3
	b.held[1] = lineMirror{state: cache.Shared, ver: 2}
	h.ck.OnHit(1, 5, false, 40)
	err := h.ck.Err()
	if err == nil {
		t.Fatal("stale read hit not flagged")
	}
	if !strings.Contains(err.Error(), "stale") {
		t.Fatalf("unexpected violation: %v", err)
	}
}

func TestSWMRTwoWritersCaught(t *testing.T) {
	h := newHarness(2)
	h.write(0, 3, 10)
	// A buggy protocol grants p1 ownership without transferring it.
	h.cas[1].Fill(3, cache.Modified)
	h.ck.OnFill(1, 3, true, 20)
	err := h.ck.Err()
	if err == nil {
		t.Fatal("two simultaneous writers not flagged")
	}
	if !strings.Contains(err.Error(), "SWMR") {
		t.Fatalf("unexpected violation: %v", err)
	}
}

func TestViolationCarriesHistoryAndClocks(t *testing.T) {
	h := newHarness(2)
	h.read(0, 9, 100*sim.Nanosecond)
	h.write(1, 9, 200*sim.Nanosecond)
	h.cas[0].Fill(9, cache.Modified) // corrupt: p0 reappears as a writer
	h.ck.OnFill(0, 9, true, 300*sim.Nanosecond)
	vs := h.ck.Violations()
	if len(vs) == 0 {
		t.Fatal("no violation recorded")
	}
	v := vs[0]
	if v.Block != 9 {
		t.Errorf("block = %d, want 9", v.Block)
	}
	if len(v.History) == 0 {
		t.Error("violation has no history ring")
	}
	if len(v.Clocks) != 2 {
		t.Errorf("clocks = %v, want per-proc clocks", v.Clocks)
	}
	if v.Clocks[1] != 200*sim.Nanosecond {
		t.Errorf("p1 clock = %s, want 200ns", v.Clocks[1])
	}
	if !strings.Contains(v.Error(), "history") {
		t.Error("formatted violation lacks history section")
	}
}

func TestMaxViolationsBoundsRetention(t *testing.T) {
	h := newHarness(2)
	h.ck.MaxViolations = 3
	for i := 0; i < 10; i++ {
		// Every OnHit without a held mirror line is a violation.
		h.ck.OnHit(0, uint64(i), false, sim.Time(i))
	}
	if got := len(h.ck.Violations()); got != 3 {
		t.Fatalf("retained %d violations, want 3", got)
	}
	if err := h.ck.Err(); !strings.Contains(err.Error(), "10 violations") {
		t.Fatalf("Err should count dropped violations: %v", err)
	}
}

func TestAuditFlagsForeignDirectoryState(t *testing.T) {
	h := newHarness(2)
	h.read(0, 1, 10)
	// The directory grows state the event stream never saw.
	h.dir.Read(4242, 1)
	if n := h.ck.Audit(); n == 0 {
		t.Fatal("audit missed directory state with no recorded transactions")
	}
}

func TestHistoryRingKeepsLastEvents(t *testing.T) {
	r := &ring{}
	for i := 0; i < ringSize+5; i++ {
		r.record(Event{At: sim.Time(i)})
	}
	snap := r.snapshot()
	if len(snap) != ringSize {
		t.Fatalf("snapshot length %d, want %d", len(snap), ringSize)
	}
	if snap[0].At != 5 || snap[ringSize-1].At != sim.Time(ringSize+4) {
		t.Fatalf("ring window wrong: first %v last %v", snap[0].At, snap[ringSize-1].At)
	}
}
