package check_test

import (
	"strings"
	"testing"

	"origin2000/internal/cache"
	"origin2000/internal/check"
	"origin2000/internal/core"
	"origin2000/internal/directory"
	"origin2000/internal/mempolicy"
)

// runTrace replays a trace on a fresh machine with the online checker on,
// optionally with a directory fault injected, and returns the checker
// error (nil = no violation). The engine is deterministic, so the same
// trace and fault always produce the same result — the property the
// shrinker relies on.
func runTrace(tr check.Trace, fault func(block uint64, proc int) bool) error {
	tr.Normalize()
	cfg := core.Config{
		Procs:          tr.Procs,
		ProcsPerNode:   2,
		NodesPerRouter: 2,
		// A tiny cache forces evictions, so replacement hints and
		// writebacks run constantly alongside the sharing traffic.
		Cache:              cache.Config{SizeBytes: 8 << 10, BlockBytes: 128, Assoc: 2},
		Placement:          tr.Policy,
		MigrationThreshold: tr.Migrate,
		Check:              true,
	}
	m := core.New(cfg)
	if fault != nil {
		m.FaultDropInvalidation(fault)
	}
	blocks := tr.Blocks()
	elemsPerBlock := core.BlockBytes / 8
	arr := m.Alloc("fuzz", blocks*elemsPerBlock, 8)
	nodes := m.NumNodes()
	return m.Run(func(p *core.Proc) {
		for _, op := range tr.Ops {
			if int(op.Proc) != p.ID() {
				continue
			}
			addr := arr.Addr(tr.Block(op) * elemsPerBlock)
			switch op.Kind {
			case check.OpRead:
				p.Read(addr)
			case check.OpWrite:
				p.Write(addr)
			case check.OpPrefetch:
				p.Prefetch(addr)
			case check.OpFetchOp:
				p.FetchOp(addr)
			case check.OpRehome:
				page := mempolicy.PageOf(arr.Base()) + uint64(int(op.Loc)%tr.Pages)
				m.PageTable().SetHome(page, (int(op.Loc)/tr.Pages)%nodes)
			}
		}
	})
}

// TestFuzzProtocol is the deterministic counterpart of the native fuzz
// target: seeded random traces across the supported processor range, every
// one of which must replay violation-free with the checker on.
func TestFuzzProtocol(t *testing.T) {
	seeds := 24
	if testing.Short() {
		seeds = 6
	}
	procCounts := []int{2, 3, 4, 8, 16, 32, 64, 128}
	for s := 0; s < seeds; s++ {
		cfg := check.GenConfig{
			Procs:      procCounts[s%len(procCounts)],
			Ops:        600,
			Pages:      1 + s%4,
			Migrate:    map[bool]int{true: 8, false: 0}[s%3 == 0],
			RoundRobin: s%2 == 1,
		}
		tr := check.Generate(int64(1000+s), cfg)
		if err := runTrace(tr, nil); err != nil {
			t.Fatalf("seed %d (procs=%d, pages=%d, migrate=%d): %v",
				s, cfg.Procs, cfg.Pages, cfg.Migrate, err)
		}
	}
}

// TestFuzzReplayIsDeterministic re-runs one trace and requires the identical
// outcome, including the checker's event count — the bit-identical replay
// property shrinking depends on.
func TestFuzzReplayIsDeterministic(t *testing.T) {
	tr := check.Generate(7, check.GenConfig{Procs: 16, Ops: 500, Pages: 2, Migrate: 8})
	events := func() int64 {
		tr2 := tr
		cfg := core.Config{Procs: tr2.Procs, ProcsPerNode: 2,
			Cache: cache.Config{SizeBytes: 8 << 10, BlockBytes: 128, Assoc: 2}, Check: true}
		m := core.New(cfg)
		elems := core.BlockBytes / 8
		arr := m.Alloc("fuzz", tr2.Blocks()*elems, 8)
		if err := m.Run(func(p *core.Proc) {
			for _, op := range tr2.Ops {
				if int(op.Proc) == p.ID() && op.Kind == check.OpWrite {
					p.Write(arr.Addr(tr2.Block(op) * elems))
				} else if int(op.Proc) == p.ID() {
					p.Read(arr.Addr(tr2.Block(op) * elems))
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		return m.Checker().Events()
	}
	a, b := events(), events()
	if a != b || a == 0 {
		t.Fatalf("replay diverged: %d vs %d events", a, b)
	}
}

// TestFuzzCatchesSeededLostInvalidation seeds the classic protocol bug —
// Directory.Write dropping one invalidation — and requires the fuzzer to
// find it, then shrinks the failing trace to a minimal regression case.
func TestFuzzCatchesSeededLostInvalidation(t *testing.T) {
	fault := func(block uint64, proc int) bool { return proc == 1 }
	fails := func(tr check.Trace) bool { return runTrace(tr, fault) != nil }

	var failing *check.Trace
	for s := 0; s < 50 && failing == nil; s++ {
		tr := check.Generate(int64(s), check.GenConfig{Procs: 4, Ops: 200, Pages: 1})
		if fails(tr) {
			failing = &tr
		}
	}
	if failing == nil {
		t.Fatal("fuzzer did not catch the seeded lost invalidation in 50 seeds")
	}

	min := check.Shrink(*failing, fails)
	if !fails(min) {
		t.Fatal("shrunk trace no longer fails")
	}
	if len(min.Ops) > 8 {
		t.Errorf("shrink left %d ops (want <= 8):\n%s", len(min.Ops), min.GoSource())
	}
	t.Logf("minimal counterexample (%d ops):\n%s", len(min.Ops), min.GoSource())
	if src := min.GoSource(); !strings.Contains(src, "check.Op") {
		t.Fatalf("GoSource did not render a reusable literal: %s", src)
	}
}

// TestShrunkRegressionTrace pins the literal the shrinker converges to for
// the dropped-invalidation fault (the exact GoSource output of
// TestFuzzCatchesSeededLostInvalidation): reader p1 joins the sharer set,
// then p2's write must invalidate p1 but does not. This is the "paste the
// shrunk literal back in" workflow DESIGN.md §8 describes.
func TestShrunkRegressionTrace(t *testing.T) {
	tr := check.Trace{
		Procs: 3, Policy: mempolicy.FirstTouch, Migrate: 0, Pages: 1,
		Ops: []check.Op{
			{Proc: 1, Kind: check.OpRead, Loc: 0},
			{Proc: 2, Kind: check.OpWrite, Loc: 0},
		},
	}
	if err := runTrace(tr, nil); err != nil {
		t.Fatalf("healthy protocol fails the regression trace: %v", err)
	}
	err := runTrace(tr, func(block uint64, proc int) bool { return proc == 1 })
	if err == nil {
		t.Fatal("dropped invalidation not caught on the minimal trace")
	}
	for _, want := range []string{"block", "history", "clocks"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("violation report lacks %q:\n%v", want, err)
		}
	}
}

// TestCheckerAlsoCatchesDroppedDowngrade seeds a different bug class than
// the fuzz test — state corruption rather than a lost message — through the
// directory's own audit path.
func TestDirectoryAuditSeesCorruptedEntry(t *testing.T) {
	d := directory.New()
	d.Read(5, 3)
	d.Write(9, 200) // out-of-range owner is clamped by int16 but invalid
	if err := d.Check(); err == nil {
		t.Fatal("Check accepted an owner outside MaxProcs")
	}
}

// FuzzProtocol is the native fuzz target: arbitrary bytes decode (with
// clamping) into a trace that must replay violation-free. Run it with
//
//	go test -fuzz=FuzzProtocol -fuzztime=20s ./internal/check
func FuzzProtocol(f *testing.F) {
	for _, tr := range []check.Trace{
		check.Generate(1, check.GenConfig{Procs: 4, Ops: 120, Pages: 1}),
		check.Generate(2, check.GenConfig{Procs: 16, Ops: 200, Pages: 2, Migrate: 8}),
		check.Generate(3, check.GenConfig{Procs: 64, Ops: 150, Pages: 4, RoundRobin: true}),
	} {
		f.Add(tr.Encode())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4+4*maxFuzzOps {
			data = data[:4+4*maxFuzzOps]
		}
		tr := check.DecodeTrace(data)
		if len(tr.Ops) > maxFuzzOps {
			tr.Ops = tr.Ops[:maxFuzzOps]
		}
		if err := runTrace(tr, nil); err != nil {
			t.Fatalf("protocol violation:\n%v\nreproduce with:\n%s", err, tr.GoSource())
		}
	})
}

// maxFuzzOps bounds per-input work so the fuzzer explores many inputs
// rather than a few giant ones.
const maxFuzzOps = 800
