// Package litmus checks the simulated machine against sequential
// consistency using classic multiprocessor litmus tests (store buffering,
// message passing, IRIW, coherence order).
//
// The simulator does not carry data values, so the harness supplies them:
// every simulated access has a linearization point — the instant, in virtual
// time, when p.Read/p.Write returns — and because the engine is a
// cooperative direct-execution scheduler, exactly one processor body runs
// between switch points. Reading or writing a harness-level value cell at
// the linearization point therefore observes the engine's own serialization
// of the access stream. Sequential consistency of the simulated machine is
// then a testable property: every outcome the harness can observe, across
// many forced interleavings, must lie in the SC-allowed set of the litmus
// test, and SC-forbidden outcomes (r0=0,r1=0 under store buffering, stale
// data after a flag under message passing, split write order under IRIW)
// must never appear.
//
// Interleavings are forced, not sampled: each run prefixes every processor
// with a different virtual-time delay, shifting the alignment of the
// accesses. The engine is deterministic, so the explored set is reproducible
// run to run.
package litmus

import (
	"fmt"
	"sort"
	"strings"

	"origin2000/internal/cache"
	"origin2000/internal/core"
	"origin2000/internal/sim"
)

// Env gives litmus bodies value-carrying shared locations, one cache block
// per location so the coherence traffic of different locations is
// independent.
type Env struct {
	arr  *core.Array
	vals []int64
}

const elemsPerLoc = core.BlockBytes / 8

// Store writes v to location loc at the access's linearization point.
func (e *Env) Store(p *core.Proc, loc int, v int64) {
	p.Write(e.arr.Addr(loc * elemsPerLoc))
	e.vals[loc] = v
}

// Load returns location loc's value at the access's linearization point.
func (e *Env) Load(p *core.Proc, loc int) int64 {
	p.Read(e.arr.Addr(loc * elemsPerLoc))
	return e.vals[loc]
}

// Body is one processor's program: it runs accesses against env and records
// observations into its register slice.
type Body func(p *core.Proc, env *Env, regs []int64)

// Test is one litmus test.
type Test struct {
	Name string
	// Locs is the number of shared locations.
	Locs int
	// Regs is the number of observation registers.
	Regs int
	// Bodies holds one program per processor.
	Bodies []Body
	// Allowed enumerates every outcome sequential consistency permits, as
	// rendered by formatOutcome.
	Allowed []string
}

// delays are the per-processor start offsets used to force interleavings;
// the grid covers same-time races, hit/miss reorderings and fully separated
// executions.
var delays = []sim.Time{
	0,
	20 * sim.Nanosecond,
	90 * sim.Nanosecond,
	200 * sim.Nanosecond,
	450 * sim.Nanosecond,
	700 * sim.Nanosecond,
	1500 * sim.Nanosecond,
}

func formatOutcome(regs []int64) string {
	parts := make([]string, len(regs))
	for i, v := range regs {
		parts[i] = fmt.Sprintf("r%d=%d", i, v)
	}
	return strings.Join(parts, " ")
}

// Run explores the test under every delay assignment in the grid and
// returns the set of observed outcomes in sorted order. Every run executes
// with the online coherence checker enabled; a checker violation is
// returned as an error.
func Run(t Test) (outcomes []string, err error) {
	n := len(t.Bodies)
	assignment := make([]int, n)
	seen := map[string]bool{}
	for {
		out, runErr := runOnce(t, assignment)
		if runErr != nil {
			return nil, runErr
		}
		seen[out] = true
		// Advance the mixed-radix delay assignment.
		i := 0
		for ; i < n; i++ {
			assignment[i]++
			if assignment[i] < len(delays) {
				break
			}
			assignment[i] = 0
		}
		if i == n {
			break
		}
	}
	for out := range seen {
		outcomes = append(outcomes, out)
	}
	sort.Strings(outcomes)
	return outcomes, nil
}

func runOnce(t Test, assignment []int) (string, error) {
	cfg := core.Config{
		Procs:          len(t.Bodies),
		ProcsPerNode:   1,
		NodesPerRouter: 2,
		Cache:          cache.Config{SizeBytes: 8 << 10, BlockBytes: core.BlockBytes, Assoc: 2},
		Check:          true,
	}
	m := core.New(cfg)
	env := &Env{
		arr:  m.Alloc(t.Name, t.Locs*elemsPerLoc, 8),
		vals: make([]int64, t.Locs),
	}
	regs := make([]int64, t.Regs)
	if err := m.Run(func(p *core.Proc) {
		if d := delays[assignment[p.ID()]]; d > 0 {
			p.Compute(d)
		}
		t.Bodies[p.ID()](p, env, regs)
	}); err != nil {
		return "", fmt.Errorf("litmus %s %v: %w", t.Name, assignment, err)
	}
	return formatOutcome(regs), nil
}

// Forbidden returns the outcomes in observed that the test's allowed set
// does not contain.
func Forbidden(t Test, observed []string) []string {
	allowed := map[string]bool{}
	for _, a := range t.Allowed {
		allowed[a] = true
	}
	var bad []string
	for _, o := range observed {
		if !allowed[o] {
			bad = append(bad, o)
		}
	}
	return bad
}

// The classic tests. Location and register naming follows the litmus
// literature: x, y are locations 0, 1; registers are numbered in processor
// order.

// StoreBuffering: p0 stores x then loads y; p1 stores y then loads x.
// SC forbids both loads seeing the initial value (r0=0 r1=0), the signature
// outcome of hardware store buffers.
func StoreBuffering() Test {
	return Test{
		Name: "SB", Locs: 2, Regs: 2,
		Bodies: []Body{
			func(p *core.Proc, e *Env, r []int64) {
				e.Store(p, 0, 1)
				r[0] = e.Load(p, 1)
			},
			func(p *core.Proc, e *Env, r []int64) {
				e.Store(p, 1, 1)
				r[1] = e.Load(p, 0)
			},
		},
		Allowed: []string{"r0=0 r1=1", "r0=1 r1=0", "r0=1 r1=1"},
	}
}

// MessagePassing: p0 writes data then sets a flag; p1 reads the flag then
// the data. SC forbids seeing the flag but stale data (r0=1 r1=0).
func MessagePassing() Test {
	return Test{
		Name: "MP", Locs: 2, Regs: 2,
		Bodies: []Body{
			func(p *core.Proc, e *Env, r []int64) {
				e.Store(p, 0, 1) // data
				e.Store(p, 1, 1) // flag
			},
			func(p *core.Proc, e *Env, r []int64) {
				r[0] = e.Load(p, 1) // flag
				r[1] = e.Load(p, 0) // data
			},
		},
		Allowed: []string{"r0=0 r1=0", "r0=0 r1=1", "r0=1 r1=1"},
	}
}

// CoherenceOrder (CoRR): p0 writes x twice; p1 reads x twice. Coherence
// forbids the two reads observing the writes out of order, or a value
// "going backwards".
func CoherenceOrder() Test {
	return Test{
		Name: "CoRR", Locs: 1, Regs: 2,
		Bodies: []Body{
			func(p *core.Proc, e *Env, r []int64) {
				e.Store(p, 0, 1)
				// Hold the window open so the reader can land between the
				// two stores; a back-to-back write hit leaves no gap.
				p.Compute(400 * sim.Nanosecond)
				e.Store(p, 0, 2)
			},
			func(p *core.Proc, e *Env, r []int64) {
				r[0] = e.Load(p, 0)
				p.Compute(150 * sim.Nanosecond)
				r[1] = e.Load(p, 0)
			},
		},
		Allowed: []string{
			"r0=0 r1=0", "r0=0 r1=1", "r0=0 r1=2",
			"r0=1 r1=1", "r0=1 r1=2", "r0=2 r1=2",
		},
	}
}

// IRIW (independent reads of independent writes): p0 writes x, p1 writes y,
// p2 and p3 each read both in opposite orders. SC requires the two readers
// to agree on the order of the independent writes: r0=1 r1=0 r2=1 r3=0
// (p2 sees x before y, p3 sees y before x) is forbidden.
func IRIW() Test {
	t := Test{
		Name: "IRIW", Locs: 2, Regs: 4,
		Bodies: []Body{
			func(p *core.Proc, e *Env, r []int64) { e.Store(p, 0, 1) },
			func(p *core.Proc, e *Env, r []int64) { e.Store(p, 1, 1) },
			func(p *core.Proc, e *Env, r []int64) {
				r[0] = e.Load(p, 0)
				r[1] = e.Load(p, 1)
			},
			func(p *core.Proc, e *Env, r []int64) {
				r[2] = e.Load(p, 1)
				r[3] = e.Load(p, 0)
			},
		},
	}
	// All 16 register combinations except the split-order signature.
	for i := 0; i < 16; i++ {
		r := []int64{int64(i >> 3 & 1), int64(i >> 2 & 1), int64(i >> 1 & 1), int64(i & 1)}
		if r[0] == 1 && r[1] == 0 && r[2] == 1 && r[3] == 0 {
			continue
		}
		t.Allowed = append(t.Allowed, formatOutcome(r))
	}
	return t
}

// All returns every litmus test in the suite.
func All() []Test {
	return []Test{StoreBuffering(), MessagePassing(), CoherenceOrder(), IRIW()}
}
