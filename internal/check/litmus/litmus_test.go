package litmus

import (
	"testing"
)

// TestLitmusSuiteIsSequentiallyConsistent runs every litmus test across the
// full interleaving grid and requires (1) no outcome outside the SC-allowed
// set, (2) no coherence-checker violation in any run, and (3) real
// interleaving diversity — a harness that only ever produces one outcome
// proves nothing.
func TestLitmusSuiteIsSequentiallyConsistent(t *testing.T) {
	for _, lt := range All() {
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			observed, err := Run(lt)
			if err != nil {
				t.Fatal(err)
			}
			if bad := Forbidden(lt, observed); len(bad) != 0 {
				t.Fatalf("SC-forbidden outcomes observed: %v\n(all: %v)", bad, observed)
			}
			if len(observed) < 2 {
				t.Fatalf("interleaving grid produced only %v — harness not exploring", observed)
			}
			t.Logf("%s: %d distinct outcomes, all SC-allowed: %v", lt.Name, len(observed), observed)
		})
	}
}

// TestForbiddenDetectsViolations checks the oracle itself: a fabricated
// non-SC outcome must be flagged.
func TestForbiddenDetectsViolations(t *testing.T) {
	sb := StoreBuffering()
	bad := Forbidden(sb, []string{"r0=1 r1=1", "r0=0 r1=0"})
	if len(bad) != 1 || bad[0] != "r0=0 r1=0" {
		t.Fatalf("Forbidden = %v, want [r0=0 r1=0]", bad)
	}
	iriw := IRIW()
	if len(iriw.Allowed) != 15 {
		t.Fatalf("IRIW allowed set has %d outcomes, want 15", len(iriw.Allowed))
	}
	if bad := Forbidden(iriw, []string{"r0=1 r1=0 r2=1 r3=0"}); len(bad) != 1 {
		t.Fatal("IRIW split-order signature not flagged")
	}
}

// TestRunIsDeterministic: the engine serializes identically on every run, so
// the explored outcome set is bit-identical between invocations.
func TestRunIsDeterministic(t *testing.T) {
	a, err := Run(StoreBuffering())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(StoreBuffering())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("outcome sets differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome sets differ: %v vs %v", a, b)
		}
	}
}
