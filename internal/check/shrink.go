package check

// Shrink minimizes a failing trace. fails must report whether a trace
// still triggers the failure, by replaying it on a fresh machine — the
// simulator is deterministic, so replay is bit-identical and the predicate
// is a sound oracle. Shrink requires fails(t) to be true on entry and
// returns a trace that still fails, typically a handful of ops.
//
// The strategy is ddmin-style subset removal (drop chunks, halving the
// chunk size down to single operations) followed by value-level
// simplification: demote exotic op kinds to plain reads/writes, move
// operations onto lower-numbered processors and blocks, and drop unused
// trailing configuration (migration, extra pages). Every accepted step
// strictly reduces a well-founded measure, so Shrink terminates.
func Shrink(t Trace, fails func(Trace) bool) Trace {
	cur := t

	// Pass 1: remove operation chunks.
	for chunk := len(cur.Ops) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start < len(cur.Ops); {
			end := start + chunk
			if end > len(cur.Ops) {
				end = len(cur.Ops)
			}
			cand := cur
			cand.Ops = make([]Op, 0, len(cur.Ops)-(end-start))
			cand.Ops = append(cand.Ops, cur.Ops[:start]...)
			cand.Ops = append(cand.Ops, cur.Ops[end:]...)
			if len(cand.Ops) > 0 && fails(cand) {
				cur = cand
				// Re-test the same start: the next chunk slid into place.
			} else {
				start = end
			}
		}
	}

	// Pass 2: simplify surviving operations one at a time.
	simpler := func(op Op) []Op {
		var out []Op
		if op.Kind == OpPrefetch || op.Kind == OpFetchOp || op.Kind == OpRehome {
			out = append(out, Op{Proc: op.Proc, Kind: OpRead, Loc: op.Loc})
			out = append(out, Op{Proc: op.Proc, Kind: OpWrite, Loc: op.Loc})
		}
		if op.Loc > 0 {
			out = append(out, Op{Proc: op.Proc, Kind: op.Kind, Loc: op.Loc / 2})
			out = append(out, Op{Proc: op.Proc, Kind: op.Kind, Loc: 0})
		}
		if op.Proc > 0 {
			out = append(out, Op{Proc: op.Proc / 2, Kind: op.Kind, Loc: op.Loc})
		}
		return out
	}
	for changed := true; changed; {
		changed = false
		for i := range cur.Ops {
			for _, rep := range simpler(cur.Ops[i]) {
				if rep == cur.Ops[i] {
					continue
				}
				cand := cur
				cand.Ops = append([]Op(nil), cur.Ops...)
				cand.Ops[i] = rep
				if fails(cand) {
					cur = cand
					changed = true
					break
				}
			}
		}
	}

	// Pass 3: shrink the configuration. Processor count drops to the
	// highest processor actually used; window and migration simplify when
	// the failure does not depend on them.
	maxProc := 0
	for _, op := range cur.Ops {
		if int(op.Proc) > maxProc {
			maxProc = int(op.Proc)
		}
	}
	if cand := cur; maxProc+1 < cand.Procs && maxProc+1 >= 2 {
		cand.Procs = maxProc + 1
		if fails(cand) {
			cur = cand
		}
	}
	for pages := 1; pages < cur.Pages; pages++ {
		cand := cur
		cand.Pages = pages
		if fails(cand) {
			cur = cand
			break
		}
	}
	if cur.Migrate != 0 {
		cand := cur
		cand.Migrate = 0
		if fails(cand) {
			cur = cand
		}
	}
	if cand := cur; cand.Policy != 0 {
		cand.Policy = 0
		if fails(cand) {
			cur = cand
		}
	}
	return cur
}
