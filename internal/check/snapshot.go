package check

import (
	"fmt"
	"sort"

	"origin2000/internal/cache"
	"origin2000/internal/directory"
	"origin2000/internal/sim"
)

// LineSnap is one processor's expected cache line in a BlockSnap.
type LineSnap struct {
	Proc  int         `json:"proc"`
	State cache.State `json:"state"`
	Ver   uint64      `json:"ver"`
}

// BlockSnap is the checker's serialized mirror state for one block. Held is
// sorted by processor; Hist is the history ring's events oldest-first with
// HistN the ring's total-event counter (the write cursor is HistN mod the
// ring size, so the pair reconstructs the ring array byte-for-byte).
type BlockSnap struct {
	Block    uint64            `json:"block"`
	DirState directory.State   `json:"dir_state"`
	Owner    int16             `json:"owner"`
	Sharers  directory.Sharers `json:"sharers"`
	Ver      uint64            `json:"ver"`
	Held     []LineSnap        `json:"held,omitempty"`
	HistN    int               `json:"hist_n,omitempty"`
	Hist     []Event           `json:"hist,omitempty"`
}

// Snap is the checker's full serializable state: every block mirror in
// ascending block order, the per-processor clocks, the violation log, and
// the event counter. The directory view and cache attachments are wiring,
// not state — a restored checker is rebuilt with New/AttachCache first.
type Snap struct {
	Blocks        []BlockSnap  `json:"blocks"`
	Clocks        []sim.Time   `json:"clocks"`
	MaxViolations int          `json:"max_violations"`
	Violations    []*Violation `json:"violations,omitempty"`
	Dropped       int          `json:"dropped,omitempty"`
	Events        int64        `json:"events"`
}

// Snap captures the checker's state in canonical order.
func (c *Checker) Snap() Snap {
	s := Snap{
		Clocks:        append([]sim.Time(nil), c.clocks...),
		MaxViolations: c.MaxViolations,
		Violations:    c.violations,
		Dropped:       c.dropped,
		Events:        c.events,
	}
	keys := make([]uint64, 0, len(c.blocks))
	for blk := range c.blocks {
		keys = append(keys, blk)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	s.Blocks = make([]BlockSnap, 0, len(keys))
	for _, blk := range keys {
		b := c.blocks[blk]
		bs := BlockSnap{
			Block:    blk,
			DirState: b.dirState,
			Owner:    b.owner,
			Sharers:  b.sharers,
			Ver:      b.ver,
		}
		if len(b.held) > 0 {
			bs.Held = make([]LineSnap, 0, len(b.held))
			for p, ln := range b.held {
				bs.Held = append(bs.Held, LineSnap{Proc: p, State: ln.state, Ver: ln.ver})
			}
			sort.Slice(bs.Held, func(i, j int) bool { return bs.Held[i].Proc < bs.Held[j].Proc })
		}
		if b.hist != nil {
			bs.HistN = b.hist.n
			bs.Hist = b.hist.snapshot()
		}
		s.Blocks = append(s.Blocks, bs)
	}
	return s
}

// Restore overwrites the checker's state from a snapshot. The checker must
// have been created for the same processor count.
func (c *Checker) Restore(s Snap) error {
	if len(s.Clocks) != len(c.clocks) {
		return fmt.Errorf("check: snapshot has %d processor clocks, checker has %d",
			len(s.Clocks), len(c.clocks))
	}
	copy(c.clocks, s.Clocks)
	c.MaxViolations = s.MaxViolations
	c.violations = s.Violations
	c.dropped = s.Dropped
	c.events = s.Events
	c.blocks = make(map[uint64]*blockMirror, len(s.Blocks))
	for _, bs := range s.Blocks {
		b := &blockMirror{
			dirState: bs.DirState,
			owner:    bs.Owner,
			sharers:  bs.Sharers,
			ver:      bs.Ver,
			held:     make(map[int]lineMirror, len(bs.Held)),
		}
		for _, ln := range bs.Held {
			b.held[ln.Proc] = lineMirror{state: ln.State, ver: ln.Ver}
		}
		if bs.HistN > 0 {
			if len(bs.Hist) > ringSize {
				return fmt.Errorf("check: block %#x snapshot history has %d events (ring holds %d)",
					bs.Block, len(bs.Hist), ringSize)
			}
			r := &ring{n: bs.HistN, idx: bs.HistN % ringSize}
			// Rebuild the ring array exactly as live recording left it: the
			// k retained events end at the write cursor.
			k := len(bs.Hist)
			for i, e := range bs.Hist {
				r.ev[(r.idx-k+i+ringSize)%ringSize] = e
			}
			b.hist = r
		}
		c.blocks[bs.Block] = b
	}
	return nil
}
