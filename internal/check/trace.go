package check

import (
	"fmt"
	"math/rand"
	"strings"

	"origin2000/internal/mempolicy"
)

// The protocol fuzzer drives the machine with Traces: compact, fully
// deterministic access schedules over a small shared address window, sized
// so that different processors collide on the same blocks constantly. The
// same Trace always produces the same simulation (the engine is
// deterministic), which is what makes shrinking sound: a failing seed
// replays bit-identically, so removing operations and re-running is a
// reliable oracle.

// OpKind is one trace operation type.
type OpKind uint8

// Trace operation kinds.
const (
	// OpRead is a demand load of one block.
	OpRead OpKind = iota
	// OpWrite is a demand store (exclusive ownership).
	OpWrite
	// OpPrefetch issues a non-binding software prefetch.
	OpPrefetch
	// OpFetchOp is an uncached at-memory fetch&op.
	OpFetchOp
	// OpRehome re-homes one page of the window (manual placement during
	// the run; exercises the page-table generation and home-TLB paths).
	OpRehome
	numOpKinds
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "OpRead"
	case OpWrite:
		return "OpWrite"
	case OpPrefetch:
		return "OpPrefetch"
	case OpFetchOp:
		return "OpFetchOp"
	case OpRehome:
		return "OpRehome"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one operation of a trace. Proc selects the issuing processor
// (modulo the trace's processor count). For memory operations Loc selects
// the block within the trace's address window (modulo the window size); for
// OpRehome, Loc mod pages selects the page and Loc divided by pages selects
// the destination node.
type Op struct {
	Proc uint8
	Kind OpKind
	Loc  uint16
}

// Trace is a deterministic protocol-fuzz schedule.
type Trace struct {
	// Procs is the processor count, 2..128.
	Procs int
	// Policy is the default page-placement policy.
	Policy mempolicy.Kind
	// Migrate enables dynamic page migration with this threshold (0 off).
	Migrate int
	// Pages sizes the shared address window, 1..maxTracePages pages.
	Pages int
	// Ops is the schedule; processor p executes the subsequence with
	// Op.Proc selecting p, in order.
	Ops []Op
}

// Trace geometry limits. The window is deliberately tiny: every block is
// contended, so a few hundred operations cover upgrade, intervention,
// invalidation fan-out, writeback and replacement-hint paths many times
// over.
const (
	maxTracePages = 8
	// BlocksPerPage is the number of 128-byte blocks per 16 KB page.
	BlocksPerPage = mempolicy.PageBytes / 128
	// maxTraceOps bounds decoded traces so a fuzz input cannot demand an
	// unbounded amount of work.
	maxTraceOps = 4096
)

// Blocks returns the number of blocks in the trace's address window.
func (t *Trace) Blocks() int { return t.Pages * BlocksPerPage }

// Block returns the window block index addressed by op.
func (t *Trace) Block(op Op) int { return int(op.Loc) % t.Blocks() }

// Normalize clamps the trace into the supported envelope; decoded and
// hand-built traces call it before running.
func (t *Trace) Normalize() {
	if t.Procs < 2 {
		t.Procs = 2
	}
	if t.Procs > 128 {
		t.Procs = 128
	}
	if t.Policy != mempolicy.RoundRobin {
		t.Policy = mempolicy.FirstTouch
	}
	if t.Migrate < 0 {
		t.Migrate = 0
	}
	if t.Migrate > 64 {
		t.Migrate = 64
	}
	if t.Pages < 1 {
		t.Pages = 1
	}
	if t.Pages > maxTracePages {
		t.Pages = maxTracePages
	}
	if len(t.Ops) > maxTraceOps {
		t.Ops = t.Ops[:maxTraceOps]
	}
	for i := range t.Ops {
		t.Ops[i].Kind %= numOpKinds
		t.Ops[i].Proc = uint8(int(t.Ops[i].Proc) % t.Procs)
	}
}

// GenConfig biases trace generation.
type GenConfig struct {
	// Procs is the processor count (2..128).
	Procs int
	// Ops is the number of operations to generate.
	Ops int
	// Pages sizes the address window (default 2).
	Pages int
	// Migrate sets the migration threshold (0 off).
	Migrate int
	// RoundRobin selects round-robin default placement.
	RoundRobin bool
}

// Generate builds a seeded random trace. The distribution is tuned for
// protocol coverage, not realism: reads and writes dominate, a quarter of
// the traffic hammers one hot page, and occasional prefetches, fetch&ops
// and re-homes exercise the side paths.
func Generate(seed int64, cfg GenConfig) Trace {
	rng := rand.New(rand.NewSource(seed))
	t := Trace{
		Procs:   cfg.Procs,
		Migrate: cfg.Migrate,
		Pages:   cfg.Pages,
	}
	if cfg.RoundRobin {
		t.Policy = mempolicy.RoundRobin
	}
	if t.Pages == 0 {
		t.Pages = 2
	}
	t.Normalize()
	blocks := t.Blocks()
	t.Ops = make([]Op, 0, cfg.Ops)
	for i := 0; i < cfg.Ops; i++ {
		op := Op{Proc: uint8(rng.Intn(t.Procs))}
		switch r := rng.Intn(100); {
		case r < 45:
			op.Kind = OpRead
		case r < 85:
			op.Kind = OpWrite
		case r < 92:
			op.Kind = OpPrefetch
		case r < 97:
			op.Kind = OpFetchOp
		default:
			op.Kind = OpRehome
		}
		if rng.Intn(4) == 0 {
			// Hot set: the first few blocks, maximizing sharer overlap.
			op.Loc = uint16(rng.Intn(4))
		} else {
			op.Loc = uint16(rng.Intn(blocks))
		}
		if op.Kind == OpRehome {
			op.Loc = uint16(rng.Intn(t.Pages * 16)) // page + destination node
		}
		t.Ops = append(t.Ops, op)
	}
	return t
}

// Trace wire format, used for the native fuzz target's corpus: a 4-byte
// header (procs, policy, migrate, pages) followed by 4 bytes per op
// (proc, kind, loc hi, loc lo). Decode accepts arbitrary bytes — every
// input is clamped into the supported envelope — so the fuzzer can mutate
// freely.

// Encode serializes the trace.
func (t *Trace) Encode() []byte {
	out := make([]byte, 0, 4+4*len(t.Ops))
	out = append(out, byte(t.Procs), byte(t.Policy), byte(t.Migrate), byte(t.Pages))
	for _, op := range t.Ops {
		out = append(out, op.Proc, byte(op.Kind), byte(op.Loc>>8), byte(op.Loc))
	}
	return out
}

// DecodeTrace parses (and Normalizes) a trace from arbitrary bytes.
func DecodeTrace(data []byte) Trace {
	var t Trace
	if len(data) >= 4 {
		t.Procs = int(data[0])
		t.Policy = mempolicy.Kind(data[1] % 2)
		t.Migrate = int(data[2] % 65)
		t.Pages = int(data[3]) // Normalize clamps into 1..maxTracePages
		data = data[4:]
	}
	for len(data) >= 4 && len(t.Ops) < maxTraceOps {
		t.Ops = append(t.Ops, Op{
			Proc: data[0],
			Kind: OpKind(data[1]),
			Loc:  uint16(data[2])<<8 | uint16(data[3]),
		})
		data = data[4:]
	}
	t.Normalize()
	return t
}

// GoSource renders the trace as a Go composite literal, so a shrunk
// counterexample can be pasted straight into a regression test.
func (t *Trace) GoSource() string {
	var b strings.Builder
	policy := "mempolicy.FirstTouch"
	if t.Policy == mempolicy.RoundRobin {
		policy = "mempolicy.RoundRobin"
	}
	fmt.Fprintf(&b, "check.Trace{\n\tProcs: %d, Policy: %s, Migrate: %d, Pages: %d,\n\tOps: []check.Op{\n",
		t.Procs, policy, t.Migrate, t.Pages)
	for _, op := range t.Ops {
		fmt.Fprintf(&b, "\t\t{Proc: %d, Kind: check.%s, Loc: %d},\n", op.Proc, op.Kind, op.Loc)
	}
	b.WriteString("\t},\n}")
	return b.String()
}
