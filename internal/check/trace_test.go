package check

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"origin2000/internal/mempolicy"
)

func TestTraceEncodeDecodeRoundTrip(t *testing.T) {
	tr := Generate(42, GenConfig{Procs: 16, Ops: 300, Pages: 3, Migrate: 8, RoundRobin: true})
	got := DecodeTrace(tr.Encode())
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("round trip changed the trace:\n got %+v\nwant %+v", got, tr)
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	cfg := GenConfig{Procs: 8, Ops: 400, Pages: 2}
	a, b := Generate(5, cfg), Generate(5, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c := Generate(6, cfg)
	if reflect.DeepEqual(a.Ops, c.Ops) {
		t.Fatal("different seeds produced identical op streams")
	}
}

func TestDecodeClampsArbitraryBytes(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},
		{0, 0, 0, 0},
		{255, 255, 255, 255, 255, 255, 255, 255},
		bytes.Repeat([]byte{7, 200, 9, 13}, maxTraceOps+50),
	}
	for _, data := range cases {
		tr := DecodeTrace(data)
		if tr.Procs < 2 || tr.Procs > 128 {
			t.Errorf("procs %d out of range for input %v...", tr.Procs, data[:min(4, len(data))])
		}
		if tr.Pages < 1 || tr.Pages > maxTracePages {
			t.Errorf("pages %d out of range", tr.Pages)
		}
		if tr.Migrate < 0 || tr.Migrate > 64 {
			t.Errorf("migrate %d out of range", tr.Migrate)
		}
		if len(tr.Ops) > maxTraceOps {
			t.Errorf("ops %d exceeds cap", len(tr.Ops))
		}
		for _, op := range tr.Ops {
			if op.Kind >= numOpKinds {
				t.Errorf("kind %d not normalized", op.Kind)
			}
			if int(op.Proc) >= tr.Procs {
				t.Errorf("proc %d >= procs %d", op.Proc, tr.Procs)
			}
		}
	}
}

func TestNormalizeClampsExtremes(t *testing.T) {
	tr := Trace{Procs: 1000, Policy: mempolicy.Kind(9), Migrate: -3, Pages: 99}
	tr.Ops = []Op{{Proc: 250, Kind: OpKind(77), Loc: 9}}
	tr.Normalize()
	if tr.Procs != 128 || tr.Policy != mempolicy.FirstTouch || tr.Migrate != 0 || tr.Pages != maxTracePages {
		t.Fatalf("bad clamp: %+v", tr)
	}
	if tr.Ops[0].Kind >= numOpKinds || int(tr.Ops[0].Proc) >= tr.Procs {
		t.Fatalf("op not normalized: %+v", tr.Ops[0])
	}
}

func TestGoSourceRendersLiteral(t *testing.T) {
	tr := Trace{Procs: 2, Pages: 1, Ops: []Op{{Proc: 1, Kind: OpWrite, Loc: 3}}}
	src := tr.GoSource()
	for _, want := range []string{"check.Trace{", "Procs: 2", "check.OpWrite", "Loc: 3"} {
		if !strings.Contains(src, want) {
			t.Errorf("GoSource lacks %q:\n%s", want, src)
		}
	}
}

// TestShrinkAgainstSyntheticOracle shrinks under a predicate with a known
// minimal core: the trace fails iff proc 2 writes block 5 after proc 1 read
// it. The shrinker must keep exactly that interaction.
func TestShrinkAgainstSyntheticOracle(t *testing.T) {
	fails := func(tr Trace) bool {
		seen := false
		for _, op := range tr.Ops {
			if op.Proc == 1 && op.Kind == OpRead && tr.Block(op) == 5 {
				seen = true
			}
			if seen && op.Proc == 2 && op.Kind == OpWrite && tr.Block(op) == 5 {
				return true
			}
		}
		return false
	}
	tr := Generate(11, GenConfig{Procs: 8, Ops: 500, Pages: 2})
	// Plant the pattern so the predicate holds.
	tr.Ops = append(tr.Ops, Op{Proc: 1, Kind: OpRead, Loc: 5}, Op{Proc: 2, Kind: OpWrite, Loc: 5})
	if !fails(tr) {
		t.Fatal("setup: trace should fail")
	}
	min := Shrink(tr, fails)
	if !fails(min) {
		t.Fatal("shrunk trace no longer fails")
	}
	if len(min.Ops) != 2 {
		t.Errorf("shrink kept %d ops, want 2: %+v", len(min.Ops), min.Ops)
	}
	if min.Procs != 3 {
		t.Errorf("shrink kept Procs=%d, want 3 (highest used proc is 2)", min.Procs)
	}
	if min.Pages != 1 || min.Migrate != 0 {
		t.Errorf("config not simplified: %+v", min)
	}
}

// TestShrinkPreservesFailureOnNonMinimizable checks Shrink never returns a
// passing trace even when nothing can be removed.
func TestShrinkPreservesFailureOnNonMinimizable(t *testing.T) {
	tr := Trace{Procs: 2, Pages: 1, Ops: []Op{{Proc: 0, Kind: OpWrite, Loc: 0}}}
	fails := func(tr Trace) bool { return len(tr.Ops) == 1 }
	min := Shrink(tr, fails)
	if !fails(min) || len(min.Ops) != 1 {
		t.Fatalf("shrink broke a minimal trace: %+v", min)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
