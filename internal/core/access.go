package core

import (
	"origin2000/internal/cache"
	"origin2000/internal/memclass"
	"origin2000/internal/mempolicy"
	"origin2000/internal/sim"
	"origin2000/internal/topology"
	"origin2000/internal/trace"
)

// access is the demand load/store path: cache lookup, then on a miss the
// full directory-protocol transaction with Hub/memory/router occupancies.
func (p *Proc) access(addr uint64, write bool, kind sim.StatKind) {
	c := &p.sp.Counters
	if write {
		c.Writes++
	} else {
		c.Reads++
	}
	block := addr >> blockShift
	st := p.cache.Lookup(block)
	if st == cache.Modified || (st == cache.Shared && !write) {
		c.Hits++
		if ck := p.m.check; ck != nil {
			ck.OnHit(p.ID(), block, write, p.sp.Now())
		}
		p.sharingHit(block, addr, write)
		// A prefetched line may still be in flight; wait out the rest.
		if len(p.prefetch) > 0 {
			if ready, ok := p.prefetch[block]; ok {
				delete(p.prefetch, block)
				c.PrefetchHits++
				if ready > p.sp.Now() {
					p.sp.Advance(ready-p.sp.Now(), kind)
				}
			}
		}
		return
	}
	// Miss or upgrade. Decide whether the whole transaction stays inside
	// this processor's shard; if not, suspend until the window's serialized
	// commit phase and hold the section open until the transaction is done
	// (it may span window edges). A commit that ran while we waited may
	// have invalidated our Shared copy, so re-probe the cache afterwards —
	// an upgrade can demote to a full miss, never the reverse (only this
	// processor fills this cache, so Invalid lines stay Invalid across the
	// wait). When AwaitGlobal reports that nothing ran in between, the
	// first probe is still current and the re-probe is skipped.
	page := mempolicy.PageOf(addr)
	if !p.shardLocal(block, page, write, st == cache.Shared) {
		if p.sp.AwaitGlobal() {
			st = p.cache.Lookup(block)
		}
		defer p.sp.EndGlobal()
	}
	if st == cache.Shared && write {
		p.upgrade(block, addr, kind)
		return
	}
	p.demandMiss(block, addr, write, kind)
}

// transaction walks one coherence transaction through the machine,
// returning its completion time. It performs the directory transition and
// remote cache state changes as side effects, but does not touch the
// requester's cache or clock — demand misses and prefetches share it.
func (p *Proc) transaction(block uint64, home int, write bool) (complete sim.Time, dirty bool, queued sim.Time) {
	m := p.m
	lat := &m.cfg.Lat
	tr := m.tracer
	t := p.sp.Now() + lat.ProcOverhead

	acq := func(r *sim.Resource, occ sim.Time, qc trace.QueueClass, unit int) {
		start := r.Acquire(t, occ)
		if tr != nil && start > t {
			tr.QueueDelay(p.ID(), t, start-t, qc, unit)
		}
		queued += start - t
		t = start
	}

	// Outgoing through the local Hub.
	acq(&m.hubs[p.node], lat.HubOcc, trace.QHub, p.node)
	t += lat.HubTime

	remote := home != p.node
	homeRouter := m.routerOfNode(home)
	var fwd topology.Route
	if remote {
		t += lat.RemoteExtra
		fwd = m.fabric.Route(p.router, homeRouter)
		acq(&m.routers[p.router], lat.RouterOcc, trace.QRouter, p.router)
		t += sim.Time(fwd.Hops) * lat.RouterTime
		if fwd.Meta >= 0 {
			acq(&m.metas[fwd.Meta], lat.MetaOcc, trace.QMeta, fwd.Meta)
			t += lat.MetaExtra
		}
		acq(&m.routers[homeRouter], lat.RouterOcc, trace.QRouter, homeRouter)
		acq(&m.hubs[home], lat.HubOcc, trace.QHub, home)
		t += lat.HubTime
	}

	// Home memory + directory lookup.
	acq(&m.mems[home], lat.MemOcc, trace.QMem, home)
	t += lat.MemTime

	var invalidate, extra []int
	var owner = -1
	if write {
		res := m.dirs[home].Write(block, p.ID())
		invalidate = res.Invalidate
		extra = res.Extra
		if res.Dirty {
			dirty = true
			owner = res.Owner
		}
		if ck := m.check; ck != nil {
			ck.OnDirWrite(block, p.ID(), res, p.sp.Now())
		}
	} else {
		res := m.dirs[home].Read(block, p.ID())
		if res.Dirty {
			dirty = true
			owner = res.Owner
		}
		if ck := m.check; ck != nil {
			ck.OnDirRead(block, p.ID(), res, p.sp.Now())
		}
	}

	if dirty {
		// 3-hop: home forwards an intervention to the owner, whose cache
		// supplies the data directly to the requester; a sharing
		// writeback refreshes the home memory off the critical path.
		op := m.procs[owner]
		if tr != nil {
			tr.Intervention(owner, p.sp.Now(), block, pageOfBlock(block), p.ID(), write)
		}
		f2 := m.fabric.Route(homeRouter, op.router)
		t += sim.Time(f2.Hops) * lat.RouterTime
		if f2.Meta >= 0 {
			acq(&m.metas[f2.Meta], lat.MetaOcc, trace.QMeta, f2.Meta)
			t += lat.MetaExtra
		}
		acq(&m.hubs[op.node], lat.HubOcc, trace.QHub, op.node)
		t += lat.HubTime + lat.CacheResponse
		if write {
			op.cache.Invalidate(block)
			if ck := m.check; ck != nil {
				ck.OnInvalidate(owner, block, p.sp.Now())
			}
			if sh := m.sharing; sh != nil {
				sh.OnInvalidate(owner, block)
			}
		} else {
			op.cache.Downgrade(block)
			if ck := m.check; ck != nil {
				ck.OnDowngrade(owner, block, p.sp.Now())
			}
			if sh := m.sharing; sh != nil {
				sh.OnDowngrade(owner, block)
			}
		}
		m.mems[home].Acquire(t, lat.WritebackOcc)
		f3 := m.fabric.Route(op.router, p.router)
		t += sim.Time(f3.Hops) * lat.RouterTime
		if f3.Meta >= 0 {
			acq(&m.metas[f3.Meta], lat.MetaOcc, trace.QMeta, f3.Meta)
			t += lat.MetaExtra
		}
		t += lat.HubTime // into the requesting node
	} else {
		// Data comes from the home memory.
		if remote {
			t += lat.HubTime // home hub, outgoing reply
			t += sim.Time(fwd.Hops) * lat.RouterTime
			if fwd.Meta >= 0 {
				t += lat.MetaExtra
			}
		}
		t += lat.HubTime // back through the local (or only) hub
	}

	// Write-induced invalidations: the requester waits for all acks,
	// which overlap with the data transfer.
	if len(invalidate) > 0 || len(extra) > 0 {
		ackT := t
		// Home and requester routers are loop constants, so the two routes
		// depend only on the sharer's router. Sharers cluster on few
		// routers (one, for well-placed data), so a single-entry memo
		// removes almost every Route call from the fan-out.
		memoRouter := -1
		var memoOut, memoBack topology.Route
		for _, s := range invalidate {
			sp := m.procs[s]
			sp.cache.Invalidate(block)
			delete(sp.prefetch, block)
			if ck := m.check; ck != nil {
				ck.OnInvalidate(s, block, p.sp.Now())
			}
			if sh := m.sharing; sh != nil {
				sh.OnInvalidate(s, block)
			}
			if tr != nil {
				tr.InvalRecv(s, p.sp.Now(), block, pageOfBlock(block), p.ID())
			}
			m.hubs[home].Acquire(t, lat.InvalOcc)
			if sp.router != memoRouter {
				memoRouter = sp.router
				memoOut = m.fabric.Route(homeRouter, sp.router)
				memoBack = m.fabric.Route(sp.router, p.router)
			}
			arrive := t + sim.Time(memoOut.Hops)*lat.RouterTime + lat.HubTime
			ack := arrive + sim.Time(memoBack.Hops)*lat.RouterTime + lat.HubTime
			if ack > ackT {
				ackT = ack
			}
		}
		// Format-induced extra fan-out (limited-pointer broadcast,
		// coarse-vector region spill): each extra target costs the same hub
		// occupancy, hops and acknowledgement as a real invalidation and
		// gates the write's completion, but the target holds no copy — no
		// cache, checker or classifier state changes, which is why the
		// default full-vector scenario (empty Extra) never enters this loop
		// and stays bit-identical to the pre-format machine.
		for _, s := range extra {
			sp := m.procs[s]
			m.hubs[home].Acquire(t, lat.InvalOcc)
			if sp.router != memoRouter {
				memoRouter = sp.router
				memoOut = m.fabric.Route(homeRouter, sp.router)
				memoBack = m.fabric.Route(sp.router, p.router)
			}
			arrive := t + sim.Time(memoOut.Hops)*lat.RouterTime + lat.HubTime
			ack := arrive + sim.Time(memoBack.Hops)*lat.RouterTime + lat.HubTime
			if ack > ackT {
				ackT = ack
			}
		}
		p.sp.Counters.Invalidations += int64(len(invalidate) + len(extra))
		t = ackT
	}
	return t, dirty, queued
}

func (p *Proc) demandMiss(block, addr uint64, write bool, kind sim.StatKind) {
	m := p.m
	c := &p.sp.Counters
	page := mempolicy.PageOf(addr)
	home := p.homeOf(page)
	remote := home != p.node

	invalsBefore := c.Invalidations
	complete, dirty, queued := p.transaction(block, home, write)

	newState := cache.Shared
	if write {
		newState = cache.Modified
	}
	if victim, evicted := p.cache.Fill(block, newState); evicted {
		p.evictVictim(victim, complete)
	}
	delete(p.prefetch, block) // any in-flight prefetch is superseded
	if ck := m.check; ck != nil {
		ck.OnFill(p.ID(), block, write, p.sp.Now())
		ck.OnTxnEnd(p.ID(), block, p.sp.Now())
	}

	latency := complete - p.sp.Now()
	switch {
	case dirty:
		c.RemoteDirty++
		c.RemoteStall += latency
	case remote:
		c.RemoteClean++
		c.RemoteStall += latency
	default:
		c.LocalMisses++
		c.LocalStall += latency
	}
	c.ContentionStall += queued
	m.noteMiss(addr, dirty, remote, latency, int(c.Invalidations-invalsBefore))
	if m.sharing != nil {
		// The classifier sees the miss after transaction's invalidations
		// above snapshotted the victims' word versions; no yield separates
		// the two, which is what makes the true/false split exact.
		class := memclass.Local
		switch {
		case dirty:
			class = memclass.RemoteDirty
		case remote:
			class = memclass.RemoteClean
		}
		p.sharingMiss(block, addr, write, class, home, int(c.Invalidations-invalsBefore))
	}
	if tr := m.tracer; tr != nil {
		ekind := trace.EvMissLocal
		switch {
		case dirty:
			ekind = trace.EvMissRemoteDirty
		case remote:
			ekind = trace.EvMissRemoteClean
		}
		tr.Miss(p.ID(), p.sp.Now(), latency, block, page, home,
			int(c.Invalidations-invalsBefore), m.dirs[home].SharerWidth(block), ekind)
	}

	if remote {
		p.recordMigration(page, home, complete, kind)
	} else if m.migrator != nil && m.pages.Migration() {
		c.MigratedAccesses++ // local thanks to earlier placement/migration
	}
	p.sp.Advance(latency, kind)
	p.tickMetrics()
}

// upgrade handles a write hit on a Shared line: ownership is obtained from
// the home directory and other sharers are invalidated; no data moves.
func (p *Proc) upgrade(block, addr uint64, kind sim.StatKind) {
	c := &p.sp.Counters
	page := mempolicy.PageOf(addr)
	home := p.homeOf(page)

	invalsBefore := c.Invalidations
	complete, _, queued := p.transaction(block, home, true)
	p.cache.SetState(block, cache.Modified)
	if ck := p.m.check; ck != nil {
		ck.OnUpgrade(p.ID(), block, p.sp.Now())
		ck.OnTxnEnd(p.ID(), block, p.sp.Now())
	}

	latency := complete - p.sp.Now()
	c.Upgrades++
	p.sharingUpgrade(block, addr, int(c.Invalidations-invalsBefore))
	if home != p.node {
		c.RemoteStall += latency
	} else {
		c.LocalStall += latency
	}
	c.ContentionStall += queued
	if tr := p.m.tracer; tr != nil {
		tr.Miss(p.ID(), p.sp.Now(), latency, block, page, home,
			int(c.Invalidations-invalsBefore), p.m.dirs[home].SharerWidth(block), trace.EvUpgrade)
	}
	p.sp.Advance(latency, kind)
	p.tickMetrics()
}

// evictVictim handles a line displaced from the requester's cache: dirty
// victims are written back to their home (occupancy only — writebacks are
// off the critical path); clean victims send a replacement hint so the
// directory stays precise.
func (p *Proc) evictVictim(v cache.Victim, at sim.Time) {
	m := p.m
	vpage := v.Block >> (mempolicy.PageShift - blockShift)
	vhome := p.homeOf(vpage)
	if v.State == cache.Modified {
		lat := &m.cfg.Lat
		m.hubs[p.node].Acquire(at, lat.WritebackOcc)
		if vhome != p.node {
			m.hubs[vhome].Acquire(at, lat.WritebackOcc)
		}
		m.mems[vhome].Acquire(at, lat.WritebackOcc)
		m.dirs[vhome].Writeback(v.Block, p.ID())
		p.sp.Counters.Writebacks++
		if ck := m.check; ck != nil {
			ck.OnWriteback(p.ID(), v.Block, p.sp.Now())
		}
		if sh := m.sharing; sh != nil {
			sh.OnWriteback(p.ID(), v.Block)
		}
		if tr := m.tracer; tr != nil {
			tr.Writeback(p.ID(), at, v.Block, vpage, vhome)
		}
	} else {
		m.dirs[vhome].Evict(v.Block, p.ID())
		if ck := m.check; ck != nil {
			ck.OnEvict(p.ID(), v.Block, p.sp.Now())
		}
		if sh := m.sharing; sh != nil {
			sh.OnEvict(p.ID(), v.Block)
		}
	}
}

// recordMigration feeds the dynamic-migration policy and charges the cost
// of a triggered page move. oldHome is the page's home before the miss.
func (p *Proc) recordMigration(page uint64, oldHome int, at sim.Time, kind sim.StatKind) {
	m := p.m
	if m.migrator == nil {
		return
	}
	// The page table's OnRemap hook (Machine.pageRemapped) moves the page's
	// directory records from the old home's directory to the new one.
	newHome, migrated := m.pages.RecordRemoteMiss(page, p.node)
	if !migrated {
		return
	}
	lat := &m.cfg.Lat
	blocks := sim.Time(mempolicy.PageBytes / BlockBytes)
	m.mems[newHome].Acquire(at, blocks*lat.PageMovePerBlock)
	p.sp.Counters.PageMigrations++
	if tr := m.tracer; tr != nil {
		tr.Migration(p.ID(), p.sp.Now(), page, oldHome, newHome)
	}
	// The triggering access eats the shootdown/copy latency.
	p.sp.Advance(lat.MigrationFreeze, kind)
}

// fetchOp performs an uncached, at-memory fetch&op at addr's home.
func (p *Proc) fetchOp(addr uint64, kind sim.StatKind) {
	m := p.m
	lat := &m.cfg.Lat
	tr := m.tracer
	page := mempolicy.PageOf(addr)
	if !p.fetchOpInShard(page) {
		p.sp.AwaitGlobal()
		defer p.sp.EndGlobal()
	}
	home := p.homeOf(page)
	t := p.sp.Now() + lat.ProcOverhead
	var queued sim.Time
	acq := func(r *sim.Resource, occ sim.Time, qc trace.QueueClass, unit int) {
		start := r.Acquire(t, occ)
		if tr != nil && start > t {
			tr.QueueDelay(p.ID(), t, start-t, qc, unit)
		}
		queued += start - t
		t = start
	}
	acq(&m.hubs[p.node], lat.HubOcc, trace.QHub, p.node)
	t += lat.HubTime
	if home != p.node {
		t += lat.RemoteExtra
		route := m.fabric.Route(p.router, m.routerOfNode(home))
		t += sim.Time(route.Hops) * lat.RouterTime
		if route.Meta >= 0 {
			acq(&m.metas[route.Meta], lat.MetaOcc, trace.QMeta, route.Meta)
			t += lat.MetaExtra
		}
		acq(&m.hubs[home], lat.HubOcc, trace.QHub, home)
		t += lat.HubTime
		acq(&m.mems[home], lat.FetchOpOcc, trace.QMem, home)
		t += lat.FetchOpTime
		t += lat.HubTime + sim.Time(route.Hops)*lat.RouterTime
		if route.Meta >= 0 {
			t += lat.MetaExtra
		}
		t += lat.HubTime
	} else {
		acq(&m.mems[home], lat.FetchOpOcc, trace.QMem, home)
		t += lat.FetchOpTime + lat.HubTime
	}
	p.sp.Counters.FetchOps++
	p.sp.Counters.ContentionStall += queued
	if tr != nil {
		tr.FetchOp(p.ID(), p.sp.Now(), t-p.sp.Now(), addr>>blockShift, home)
	}
	p.sp.Advance(t-p.sp.Now(), kind)
	p.tickMetrics()
}

// Prefetch issues a non-binding software prefetch for addr. The line is
// fetched through the normal coherence path (consuming Hub, memory and
// router bandwidth) but the processor does not stall; a later demand access
// waits only for the residual fill time. At most Config.MaxPrefetch
// prefetches are outstanding; extra ones are dropped, as on real hardware.
func (p *Proc) Prefetch(addr uint64) {
	block := addr >> blockShift
	if p.cache.Peek(block) != cache.Invalid {
		return
	}
	if _, ok := p.prefetch[block]; ok {
		return
	}
	// Retire completed entries from the FIFO head.
	now := p.sp.Now()
	for len(p.prefetchQ) > 0 {
		h := p.prefetchQ[0]
		if ready, ok := p.prefetch[h]; !ok || ready <= now {
			p.prefetchQ = p.prefetchQ[1:]
			continue
		}
		break
	}
	if len(p.prefetchQ) >= p.m.cfg.MaxPrefetch {
		return // buffer full: drop
	}
	m := p.m
	page := mempolicy.PageOf(addr)
	// A prefetch walks the same coherence path as a read miss, so it uses
	// the same shard classification.
	if !p.shardLocal(block, page, false, false) {
		p.sp.AwaitGlobal()
		defer p.sp.EndGlobal()
	}
	home := p.homeOf(page)
	complete, _, _ := p.transaction(block, home, false)
	if victim, evicted := p.cache.Fill(block, cache.Shared); evicted {
		p.evictVictim(victim, complete)
	}
	if ck := m.check; ck != nil {
		ck.OnFill(p.ID(), block, false, p.sp.Now())
		ck.OnTxnEnd(p.ID(), block, p.sp.Now())
	}
	if sh := m.sharing; sh != nil {
		sh.OnPrefetchFill(p.ID(), block)
	}
	if tr := m.tracer; tr != nil {
		tr.Prefetch(p.ID(), p.sp.Now(), complete-p.sp.Now(), block, home)
	}
	p.prefetch[block] = complete
	p.prefetchQ = append(p.prefetchQ, block)
	p.sp.Counters.Prefetches++
	p.sp.Advance(m.cycle, sim.StatBusy) // issue cost: one cycle
}
