package core

import (
	"fmt"

	"origin2000/internal/mempolicy"
)

// Array is a simulated shared allocation. Applications keep their data in
// ordinary Go slices and use the Array only to derive simulated addresses
// for the machine model.
type Array struct {
	m        *Machine
	name     string
	base     uint64
	elemSize uint64
	n        int
	pages    int
}

// Alloc reserves a page-aligned simulated allocation of n elements of
// elemSize bytes. Pages are homed lazily by the machine's default policy
// unless the application places them explicitly with the Place methods.
func (m *Machine) Alloc(name string, n, elemSize int) *Array {
	if n < 0 || elemSize <= 0 {
		panic("core: invalid allocation")
	}
	bytes := uint64(n) * uint64(elemSize)
	pages := int((bytes + mempolicy.PageBytes - 1) / mempolicy.PageBytes)
	if pages == 0 {
		pages = 1
	}
	a := &Array{
		m:        m,
		name:     name,
		base:     m.nextAddr,
		elemSize: uint64(elemSize),
		n:        n,
		pages:    pages,
	}
	m.nextAddr += uint64(pages) * mempolicy.PageBytes
	if m.arrays != nil {
		m.arrays.add(a.base, int64(n)*int64(elemSize), name)
	}
	return a
}

// Name returns the allocation's label.
func (a *Array) Name() string { return a.name }

// Len returns the element count.
func (a *Array) Len() int { return a.n }

// ElemSize returns the element size in bytes.
func (a *Array) ElemSize() int { return int(a.elemSize) }

// Pages returns the page count.
func (a *Array) Pages() int { return a.pages }

// Addr returns the simulated address of element i.
func (a *Array) Addr(i int) uint64 {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("core: %s[%d] out of range (len %d)", a.name, i, a.n))
	}
	return a.base + uint64(i)*a.elemSize
}

// Base returns the allocation's base address.
func (a *Array) Base() uint64 { return a.base }

// firstPage returns the allocation's first page number.
func (a *Array) firstPage() uint64 { return mempolicy.PageOf(a.base) }

// place pins page index pg (relative to the array) at node.
func (a *Array) place(pg, node int) {
	m := a.m
	page := a.firstPage() + uint64(pg)
	if m.pages.Placed(page) {
		return // first placement wins (arrays never share pages)
	}
	h := m.spill(node)
	m.pages.SetHome(page, h)
	m.nodePages[h]++
}

// PlaceAtNode homes the whole array at one node.
func (a *Array) PlaceAtNode(node int) {
	if a.m.cfg.IgnorePlacement {
		return
	}
	for pg := 0; pg < a.pages; pg++ {
		a.place(pg, node%a.m.numNodes)
	}
}

// PlaceOwner homes each page at the node of the logical process
// owner(pageIndex). It is how applications express the paper's "manual"
// (appropriate) data distribution. Ignored when Config.IgnorePlacement is
// set, which is how the round-robin columns of Table 3 are produced.
func (a *Array) PlaceOwner(owner func(pageIndex int) int) {
	if a.m.cfg.IgnorePlacement {
		return
	}
	np := a.m.cfg.Procs
	for pg := 0; pg < a.pages; pg++ {
		o := owner(pg)
		if o < 0 {
			continue
		}
		a.place(pg, a.m.procs[o%np].node)
	}
}

// PlaceBlocked partitions the array's pages into nparts contiguous chunks
// and homes chunk i at logical process i's node — the standard block
// distribution used by the regular applications.
func (a *Array) PlaceBlocked(nparts int) {
	if nparts <= 0 {
		nparts = a.m.cfg.Procs
	}
	a.PlaceOwner(func(pg int) int {
		return pg * nparts / a.pages
	})
}

// PlaceElemBlocked homes each page at the owner of the first element on
// that page, where element ownership is the block distribution of n
// elements over nparts processes. This aligns page homes with element
// partitions even when partitions are not whole pages.
func (a *Array) PlaceElemBlocked(nparts int) {
	if nparts <= 0 {
		nparts = a.m.cfg.Procs
	}
	perPage := int(mempolicy.PageBytes / a.elemSize)
	if perPage == 0 {
		perPage = 1
	}
	a.PlaceOwner(func(pg int) int {
		elem := pg * perPage
		if elem >= a.n {
			elem = a.n - 1
		}
		return elem * nparts / a.n
	})
}
