package core_test

import (
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/mempolicy"
)

func TestPlaceBlockedDistributesContiguously(t *testing.T) {
	m := core.New(core.Origin2000(8)) // 4 nodes
	pages := 16
	arr := m.Alloc("a", pages*mempolicy.PageBytes/8, 8)
	arr.PlaceBlocked(8)
	// Page p belongs to logical proc p*8/16 = p/2; proc q is on node q/2.
	for pg := 0; pg < pages; pg++ {
		page := mempolicy.PageOf(arr.Addr(pg * mempolicy.PageBytes / 8))
		wantProc := pg * 8 / pages
		wantNode := wantProc / 2
		if got := m.PageTable().Choose(page, 0); got != wantNode {
			t.Errorf("page %d homed at node %d, want %d", pg, got, wantNode)
		}
	}
}

func TestPlaceOwnerNegativeSkips(t *testing.T) {
	m := core.New(core.Origin2000(4))
	arr := m.Alloc("a", 4*mempolicy.PageBytes/8, 8)
	arr.PlaceOwner(func(pg int) int {
		if pg%2 == 0 {
			return 1 // node of proc 1 = node 0
		}
		return -1 // leave to the default policy
	})
	evenPage := mempolicy.PageOf(arr.Addr(0))
	if !m.PageTable().Placed(evenPage) {
		t.Error("even pages should be placed")
	}
	oddPage := mempolicy.PageOf(arr.Addr(mempolicy.PageBytes / 8))
	if m.PageTable().Placed(oddPage) {
		t.Error("odd pages should stay unplaced")
	}
}

func TestAddrPanicsOutOfRange(t *testing.T) {
	m := core.New(core.Origin2000(2))
	arr := m.Alloc("a", 10, 8)
	defer func() {
		if recover() == nil {
			t.Error("Addr out of range should panic")
		}
	}()
	arr.Addr(10)
}

func TestIgnorePlacementDisablesManual(t *testing.T) {
	cfg := core.Origin2000(8)
	cfg.IgnorePlacement = true
	cfg.Placement = mempolicy.RoundRobin
	m := core.New(cfg)
	arr := m.Alloc("a", 8*mempolicy.PageBytes/8, 8)
	arr.PlaceAtNode(3)
	page := mempolicy.PageOf(arr.Addr(0))
	if m.PageTable().Placed(page) {
		t.Error("manual placement should be ignored")
	}
}
