package core

import (
	"fmt"
	"sort"

	"origin2000/internal/sim"
)

// ArrayStats aggregates the memory-system behaviour of one named
// allocation. The paper's Section 8 lists exactly this as the Origin's
// greatest missing feature — tools to distinguish local from remote misses
// and attribute them to data; the simulator provides it natively.
type ArrayStats struct {
	Name        string
	Bytes       int64
	LocalMisses int64
	RemoteClean int64
	RemoteDirty int64
	Invals      int64    // invalidations caused by writes to this array
	Stall       sim.Time // total miss stall attributed to this array
}

// Remote reports the remote miss count.
func (a *ArrayStats) Remote() int64 { return a.RemoteClean + a.RemoteDirty }

// arrayIndex locates the allocation containing an address. Allocations are
// page-aligned and monotonically increasing, so a binary search over the
// base addresses resolves an address in O(log n); it is consulted only on
// misses, never on hits.
type arrayIndex struct {
	bases []uint64
	stats []*ArrayStats
}

func (ix *arrayIndex) add(base uint64, bytes int64, name string) {
	ix.bases = append(ix.bases, base)
	ix.stats = append(ix.stats, &ArrayStats{Name: name, Bytes: bytes})
}

func (ix *arrayIndex) find(addr uint64) *ArrayStats {
	i := sort.Search(len(ix.bases), func(i int) bool { return ix.bases[i] > addr }) - 1
	if i < 0 {
		return nil
	}
	return ix.stats[i]
}

// EnableArrayStats turns on per-allocation miss attribution. Call it
// before the arrays of interest are allocated; it adds a binary search per
// miss (hits are unaffected).
func (m *Machine) EnableArrayStats() {
	if m.arrays == nil {
		m.arrays = &arrayIndex{}
	}
	// Attribution sums into shared per-array totals from the miss path, so
	// the engine must not run shards concurrently. The schedule (and every
	// simulated result) is identical at any worker count.
	m.eng.SetWorkers(1)
}

// ArrayStats returns per-allocation statistics (nil unless
// EnableArrayStats was called), ordered by descending total stall.
func (m *Machine) ArrayStats() []*ArrayStats {
	if m.arrays == nil {
		return nil
	}
	out := make([]*ArrayStats, 0, len(m.arrays.stats))
	out = append(out, m.arrays.stats...)
	sort.Slice(out, func(i, j int) bool { return out[i].Stall > out[j].Stall })
	return out
}

// ArrayReport renders the per-allocation statistics as table rows, header
// first. Same-named allocations (e.g. the per-lock lines) are merged, and
// allocations with no miss activity are omitted.
func (m *Machine) ArrayReport() [][]string {
	merged := map[string]*ArrayStats{}
	var order []string
	for _, a := range m.ArrayStats() {
		t, ok := merged[a.Name]
		if !ok {
			t = &ArrayStats{Name: a.Name}
			merged[a.Name] = t
			order = append(order, a.Name)
		}
		t.Bytes += a.Bytes
		t.LocalMisses += a.LocalMisses
		t.RemoteClean += a.RemoteClean
		t.RemoteDirty += a.RemoteDirty
		t.Invals += a.Invals
		t.Stall += a.Stall
	}
	sort.Slice(order, func(i, j int) bool {
		return merged[order[i]].Stall > merged[order[j]].Stall
	})
	rows := [][]string{{"Array", "Bytes", "Local miss", "Remote clean", "Remote dirty", "Invals", "Stall (ms)"}}
	for _, name := range order {
		a := merged[name]
		if a.LocalMisses+a.RemoteClean+a.RemoteDirty == 0 {
			continue
		}
		rows = append(rows, []string{
			a.Name,
			fmt.Sprintf("%d", a.Bytes),
			fmt.Sprintf("%d", a.LocalMisses),
			fmt.Sprintf("%d", a.RemoteClean),
			fmt.Sprintf("%d", a.RemoteDirty),
			fmt.Sprintf("%d", a.Invals),
			fmt.Sprintf("%.3f", a.Stall.Milliseconds()),
		})
	}
	return rows
}

// noteMiss attributes one demand miss to its allocation.
func (m *Machine) noteMiss(addr uint64, dirty, remote bool, stall sim.Time, invals int) {
	if m.arrays == nil {
		return
	}
	a := m.arrays.find(addr)
	if a == nil {
		return
	}
	switch {
	case dirty:
		a.RemoteDirty++
	case remote:
		a.RemoteClean++
	default:
		a.LocalMisses++
	}
	a.Invals += int64(invals)
	a.Stall += stall
}
