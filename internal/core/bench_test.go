package core_test

import (
	"testing"

	"origin2000/internal/core"
)

// BenchmarkAccessHit measures the simulated-load fast path (cache hit).
func BenchmarkAccessHit(b *testing.B) {
	m := core.New(core.Origin2000(1))
	arr := m.Alloc("a", 1024, 8)
	err := m.RunOne(func(p *core.Proc) {
		p.Read(arr.Addr(0))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Read(arr.Addr(0))
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAccessLocalMiss measures a full local-miss protocol transaction.
func BenchmarkAccessLocalMiss(b *testing.B) {
	cfg := core.Origin2000(1)
	cfg.Cache.SizeBytes = 32 << 10 // small cache: every strided read misses
	m := core.New(cfg)
	arr := m.Alloc("a", 1<<20, 8)
	err := m.RunOne(func(p *core.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Read(arr.Addr((i * 16) % (1 << 20)))
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAccessRemoteMiss measures a 2-hop remote transaction including
// routing and resource queueing.
func BenchmarkAccessRemoteMiss(b *testing.B) {
	cfg := core.Origin2000(64)
	cfg.Cache.SizeBytes = 32 << 10
	m := core.New(cfg)
	arr := m.Alloc("a", 1<<20, 8)
	arr.PlaceAtNode(17)
	err := m.RunOne(func(p *core.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Read(arr.Addr((i * 16) % (1 << 20)))
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
