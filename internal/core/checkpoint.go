package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sort"

	"origin2000/internal/check"
	"origin2000/internal/metrics"
	"origin2000/internal/sharing"
	"origin2000/internal/sim"
	"origin2000/internal/snapshot"
	"origin2000/internal/trace"
)

// Checkpoint capture and replay-based resume (DESIGN.md §13).
//
// The engine reports every round boundary through its quiescent hook; at
// boundaries where no processor has a global section open the machine's
// entire observable state is a pure function of the deterministic schedule
// prefix, so it can be serialized (capture) or compared against a prior
// serialization (resume proof). Goroutine stacks are not serializable, so
// resume re-executes the prefix with observers muted — they are not
// constructed, and every observer call site is already nil-gated — then at
// the recorded quiescent point proves byte equality of the simulation
// sections, restores the observer sections into freshly built observers,
// and unmutes. The simulated schedule never depends on observer presence
// (see shard.go), so the muted prefix is bit-identical to the recorded one.

// ErrStopped is the panic value the quiescent hook raises when a run
// reaches Checkpoint.StopAtSeq. Drivers that set StopAtSeq recover it; it
// never escapes a run that did not ask to stop.
var ErrStopped = errors.New("core: run stopped at requested quiescent point")

// EffectiveWorkers reports the host-worker count a normalized configuration
// runs with, and whether an observer forced it down to one (the checker,
// the metrics sampler and the sharing classifier read cross-shard state
// from their event hooks, so any of them forces a single worker; see
// setupShards).
func EffectiveWorkers(cfg *Config) (workers int, forced bool) {
	workers = 1
	if cfg.Engine == "parallel" {
		workers = cfg.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
	}
	if cfg.Check || cfg.Metrics.Enabled || cfg.Sharing.Enabled {
		return 1, true
	}
	return workers, false
}

// syncSnapReg is one synchronization primitive's registered state provider.
// Primitives are constructed by deterministic program code, so registration
// order — and therefore the syncs section — is deterministic.
type syncSnapReg struct {
	base uint64
	kind string
	fn   func() any
}

// RegisterStateSnap registers a host-state provider for a synchronization
// primitive, keyed by the primitive's identifying simulated address. The
// returned state must be JSON-serializable and deterministic; it is
// captured into every snapshot's syncs section as a proof obligation of
// resume (replay rebuilds the primitives themselves).
func (m *Machine) RegisterStateSnap(base uint64, kind string, fn func() any) {
	m.syncSnaps = append(m.syncSnaps, syncSnapReg{base: base, kind: kind, fn: fn})
}

// ckptState is the per-machine checkpoint/resume state machine driven by
// the engine's quiescent hook.
type ckptState struct {
	every   sim.Time
	next    sim.Time
	dir     string
	sink    func(*snapshot.Snapshot) error
	stopAt  int64
	resume  *snapshot.Snapshot
	written []string
	count   int
}

// initCheckpoint arms the quiescent hook when the configuration asks for
// capture, resume, or a stop point.
func (m *Machine) initCheckpoint() {
	ck := &m.cfg.Checkpoint
	if ck.Every <= 0 && ck.Resume == nil && ck.StopAtSeq <= 0 {
		return
	}
	// Stamp the machine's scenario into the recorded spec so resume can
	// refuse a different machine. Stamping applies on resume too — the
	// drivers validated hash equality first, and captures continuing past
	// the resume point must byte-match the uninterrupted run's. (The
	// resume proof itself compares simulation-state sections only, so
	// snapshots written before scenario fields existed still prove equal.)
	if ck.Spec.ScenarioHash == "" {
		ck.Spec.ScenarioHash = m.cfg.ScenarioHash()
		if ck.Spec.Scenario == "" {
			ck.Spec.Scenario = m.cfg.ScenarioSpec().Name
		}
	}
	m.ckpt = &ckptState{
		every:  ck.Every,
		next:   ck.Every,
		dir:    ck.Dir,
		sink:   ck.Sink,
		stopAt: ck.StopAtSeq,
		resume: ck.Resume,
	}
	m.eng.SetQuiescentHook(m.onQuiescent)
}

// Checkpoints returns the paths of the snapshot files written so far (when
// Checkpoint.Dir is set), in capture order.
func (m *Machine) Checkpoints() []string {
	if m.ckpt == nil {
		return nil
	}
	return m.ckpt.written
}

// Resuming reports whether the machine is still replaying toward a resume
// point with observers muted.
func (m *Machine) Resuming() bool { return m.ckpt != nil && m.ckpt.resume != nil }

// onQuiescent is the engine's quiescent hook: it drives resume proof,
// requested stops, and periodic capture. It runs on the scheduling
// boundary, so any failure must leave via panic; the engine propagates the
// value out of Run and resume/bisect drivers recover the typed values
// (snapshot.DivergenceError, ErrStopped).
func (m *Machine) onQuiescent(seq int64, minNow sim.Time, quiet bool) {
	ck := m.ckpt
	if rs := ck.resume; rs != nil {
		target := rs.Header.QuiesSeq
		if seq < target {
			return
		}
		if seq > target {
			panic(&snapshot.DivergenceError{Section: "header", Seq: seq, At: minNow,
				Msg: fmt.Sprintf("replay skipped past quiescent point %d", target)})
		}
		if !quiet {
			panic(&snapshot.DivergenceError{Section: "header", Seq: seq, At: minNow,
				Msg: "replay reached the recorded quiescent point with a global section open"})
		}
		live := m.capture(seq, minNow)
		if sec, ok := snapshot.ProveEqual(live, rs); !ok {
			panic(&snapshot.DivergenceError{Section: sec, Seq: seq, At: minNow,
				Msg: "replayed state does not match the snapshot"})
		}
		if err := m.unmute(rs); err != nil {
			panic(&snapshot.DivergenceError{Section: "header", Seq: seq, At: minNow, Msg: err.Error()})
		}
		ck.resume = nil
		if ck.every > 0 {
			// Continue the capture grid exactly where the recorded run's
			// would have been, so a resumed run emits the same remaining
			// checkpoints as an uninterrupted one.
			for ck.next <= minNow {
				ck.next += ck.every
			}
		}
		return
	}
	if ck.stopAt > 0 && seq >= ck.stopAt {
		panic(ErrStopped)
	}
	if ck.every <= 0 || !quiet || minNow < ck.next {
		return
	}
	s := m.capture(seq, minNow)
	if err := m.emit(s); err != nil {
		panic(fmt.Errorf("core: checkpoint at t=%v: %w", minNow, err))
	}
	for ck.next <= minNow {
		ck.next += ck.every
	}
}

// capture serializes the machine at a quiescent point. Everything that can
// influence the rest of the run — or that an observer has accumulated — is
// included; host-side memos with no observable effect (the per-processor
// home TLB, the diagnostic array index) are deliberately not.
func (m *Machine) capture(seq int64, minNow sim.Time) *snapshot.Snapshot {
	workers, forced := EffectiveWorkers(&m.cfg)
	s := &snapshot.Snapshot{
		Header: snapshot.Header{
			Version:       snapshot.Version,
			Procs:         m.cfg.Procs,
			Engine:        m.cfg.Engine,
			Workers:       workers,
			WorkersForced: forced,
			QuiesSeq:      seq,
			VirtualTime:   minNow,
			Spec:          m.cfg.Checkpoint.Spec,
		},
		Engine: m.eng.Snap(),
	}
	if cfgJSON, err := json.Marshal(&m.cfg); err == nil {
		s.Header.Config = cfgJSON
	}
	s.Procs = make([]snapshot.ProcSnap, len(m.procs))
	for i, p := range m.procs {
		s.Procs[i] = p.snapState()
	}
	for _, p := range m.procs {
		s.Caches = append(s.Caches, p.cache.Snap())
	}
	for _, d := range m.dirs {
		s.Directories = append(s.Directories, d.Snap())
	}
	s.MemPolicy = m.pages.Snap()
	s.Resources.Hubs = resourceSnaps(m.hubs)
	s.Resources.Mems = resourceSnaps(m.mems)
	s.Resources.Routers = resourceSnaps(m.routers)
	s.Resources.Metas = resourceSnaps(m.metas)
	s.Memory = snapshot.MemorySnap{
		NextAddr:  m.nextAddr,
		NodePages: append([]int(nil), m.nodePages...),
	}
	for _, reg := range m.syncSnaps {
		state, err := json.Marshal(reg.fn())
		if err != nil {
			panic(fmt.Errorf("core: checkpoint: sync %q at %#x: %w", reg.kind, reg.base, err))
		}
		s.Syncs = append(s.Syncs, snapshot.SyncRecord{Base: reg.base, Kind: reg.kind, State: state})
	}
	if m.check != nil {
		cs := m.check.Snap()
		s.Checker = &cs
	}
	if m.tracer != nil {
		ts := m.tracer.Snap()
		s.Tracer = &ts
	}
	if m.sampler != nil {
		ms := m.sampler.Snap()
		s.Metrics = &ms
	}
	if m.sharing != nil {
		ss := m.sharing.Snap()
		s.Sharing = &ss
	}
	return s
}

// snapState captures one processor's machine-level state (the scheduling
// state lives in the engine section).
func (p *Proc) snapState() snapshot.ProcSnap {
	ps := snapshot.ProcSnap{
		Phase: p.phase.name,
		PhaseMark: snapshot.Breakdown{
			Busy:   p.phase.snap.Busy,
			Memory: p.phase.snap.Memory,
			Sync:   p.phase.snap.Sync,
		},
	}
	if len(p.prefetch) > 0 {
		ps.Prefetch = make([]snapshot.PrefetchEntry, 0, len(p.prefetch))
		for blk, ready := range p.prefetch {
			ps.Prefetch = append(ps.Prefetch, snapshot.PrefetchEntry{Block: blk, Ready: ready})
		}
		sort.Slice(ps.Prefetch, func(i, j int) bool { return ps.Prefetch[i].Block < ps.Prefetch[j].Block })
	}
	if len(p.prefetchQ) > 0 {
		ps.PrefetchQ = append([]uint64(nil), p.prefetchQ...)
	}
	if len(p.phase.acc) > 0 {
		names := make([]string, 0, len(p.phase.acc))
		for name := range p.phase.acc {
			names = append(names, name)
		}
		sort.Strings(names)
		ps.PhaseAcc = make([]snapshot.PhaseTotal, 0, len(names))
		for _, name := range names {
			b := p.phase.acc[name]
			ps.PhaseAcc = append(ps.PhaseAcc, snapshot.PhaseTotal{
				Name:      name,
				Breakdown: snapshot.Breakdown{Busy: b.Busy, Memory: b.Memory, Sync: b.Sync},
			})
		}
	}
	return ps
}

func resourceSnaps(rs []sim.Resource) []sim.ResourceSnap {
	if len(rs) == 0 {
		return nil
	}
	out := make([]sim.ResourceSnap, len(rs))
	for i := range rs {
		out[i] = rs[i].Snap()
	}
	return out
}

// emit writes a captured snapshot to the configured destinations.
func (m *Machine) emit(s *snapshot.Snapshot) error {
	ck := m.ckpt
	if ck.dir != "" {
		path := filepath.Join(ck.dir, fmt.Sprintf("ckpt-%06d.originckpt", ck.count))
		if err := s.WriteFile(path); err != nil {
			return err
		}
		ck.written = append(ck.written, path)
	}
	ck.count++
	if ck.sink != nil {
		return ck.sink(s)
	}
	return nil
}

// unmute builds the run's observers at the resume point and restores their
// recorded state. The configuration's observer set must match the
// snapshot's: a checked run cannot resume from an unchecked snapshot or
// vice versa — the observers would have missed the prefix.
func (m *Machine) unmute(rs *snapshot.Snapshot) error {
	cfg := &m.cfg
	if cfg.Check != (rs.Checker != nil) {
		return fmt.Errorf("core: resume: run has Check=%v but snapshot checker section present=%v",
			cfg.Check, rs.Checker != nil)
	}
	if cfg.Trace.Enabled != (rs.Tracer != nil) {
		return fmt.Errorf("core: resume: run has Trace.Enabled=%v but snapshot tracer section present=%v",
			cfg.Trace.Enabled, rs.Tracer != nil)
	}
	if cfg.Metrics.Enabled != (rs.Metrics != nil) {
		return fmt.Errorf("core: resume: run has Metrics.Enabled=%v but snapshot metrics section present=%v",
			cfg.Metrics.Enabled, rs.Metrics != nil)
	}
	if cfg.Sharing.Enabled != (rs.Sharing != nil) {
		return fmt.Errorf("core: resume: run has Sharing.Enabled=%v but snapshot sharing section present=%v",
			cfg.Sharing.Enabled, rs.Sharing != nil)
	}
	if cfg.Check {
		ck := check.New(cfg.Procs, &multiDir{m: m})
		for i, p := range m.procs {
			ck.AttachCache(i, p.cache)
		}
		if err := ck.Restore(*rs.Checker); err != nil {
			return err
		}
		m.check = ck
	}
	if cfg.Trace.Enabled {
		tr := trace.New(cfg.Procs, cfg.Trace)
		shardOf := make([]int, cfg.Procs)
		for i, p := range m.procs {
			shardOf[i] = p.router
		}
		tr.SetShards(shardOf, m.numRouters)
		if err := tr.Restore(*rs.Tracer); err != nil {
			return err
		}
		m.tracer = tr
		m.attachTracer()
	}
	if cfg.Metrics.Enabled {
		sm := metrics.New(cfg.Procs, cfg.Metrics)
		if err := sm.Restore(*rs.Metrics); err != nil {
			return err
		}
		m.sampler = sm
	}
	if cfg.Sharing.Enabled {
		sh := sharing.New(cfg.Procs, m.numNodes)
		if err := sh.Restore(*rs.Sharing); err != nil {
			return err
		}
		m.sharing = sh
	}
	return nil
}
