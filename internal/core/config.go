// Package core assembles the CC-NUMA machine model: simulated processors
// with caches, directory-coherent distributed memory, a hypercube/metarouter
// interconnect, page placement and migration, prefetching, and at-memory
// fetch&op — the substrate on which the paper's applications run.
//
// Applications receive a *Proc and perform real Go computation while
// issuing simulated loads and stores against allocated Arrays; the model
// charges virtual time to the Busy/Memory/Sync buckets of the paper's
// execution-time breakdowns.
package core

import (
	"fmt"
	"strings"
	"time"

	"origin2000/internal/cache"
	"origin2000/internal/mempolicy"
	"origin2000/internal/metrics"
	"origin2000/internal/scenario"
	"origin2000/internal/sharing"
	"origin2000/internal/sim"
	"origin2000/internal/snapshot"
	"origin2000/internal/topology"
	"origin2000/internal/trace"
)

// Latencies holds the timing components of the memory system. All values
// are virtual durations. The defaults (Origin2000Latencies) are calibrated
// so that composed transactions reproduce the paper's Table 1: local 338 ns,
// remote clean ≈656 ns, remote dirty ≈892 ns on the 64-processor machine.
type Latencies struct {
	// ProcOverhead is the processor-side cost of issuing a miss and
	// filling the line on return.
	ProcOverhead sim.Time
	// HubTime is the latency through a Hub controller (each crossing).
	HubTime sim.Time
	// HubOcc is the Hub occupancy per transaction: the serialization
	// cost that creates contention between the two processors of a node
	// and between local misses and incoming remote traffic.
	HubOcc sim.Time
	// MemTime is DRAM access latency (data or directory lookup).
	MemTime sim.Time
	// MemOcc is memory occupancy per transaction.
	MemOcc sim.Time
	// RouterTime is the latency per router-to-router hop.
	RouterTime sim.Time
	// RouterOcc is the occupancy at the endpoint routers of a path.
	RouterOcc sim.Time
	// MetaExtra is extra latency when a path crosses a metarouter.
	MetaExtra sim.Time
	// MetaOcc is metarouter occupancy per crossing.
	MetaOcc sim.Time
	// RemoteExtra is a fixed extra cost per remote transaction (protocol
	// engines of SCI-based machines; zero on the Origin).
	RemoteExtra sim.Time
	// CacheResponse is the owning cache's intervention response time.
	CacheResponse sim.Time
	// FetchOpTime is the at-memory fetch&op execution time.
	FetchOpTime sim.Time
	// FetchOpOcc is memory occupancy of a fetch&op.
	FetchOpOcc sim.Time
	// InvalOcc is Hub occupancy per invalidation message sent.
	InvalOcc sim.Time
	// WritebackOcc is the occupancy a writeback adds at Hubs and memory.
	WritebackOcc sim.Time
	// PageMovePerBlock is the per-block occupancy when a page migrates.
	PageMovePerBlock sim.Time
	// MigrationFreeze is latency charged to the access triggering a
	// migration (TLB shootdown and copy initiation).
	MigrationFreeze sim.Time
}

// Lookahead returns the minimum latency of any cross-node interaction: a
// request must traverse the requester's Hub, at least one router hop, and
// the home Hub before it can touch another node's state. This is the
// conservative-parallel engine's lookahead: state owned by another shard
// cannot be affected sooner than Lookahead after an operation issues, so a
// window no wider than Lookahead could never miss a cross-shard hazard.
// In practice the engine runs wider windows (Config.Quantum) and instead
// serializes every cross-shard operation through the window's commit
// phase, which preserves exactness at any width; Lookahead is kept as the
// documented lower bound the window is clamped to.
func (l Latencies) Lookahead() sim.Time {
	return l.HubTime + l.RouterTime + l.HubTime
}

// Origin2000Latencies models the paper's machine (Table 1 row 1).
func Origin2000Latencies() Latencies {
	return Latencies{
		ProcOverhead:     58 * sim.Nanosecond,
		HubTime:          50 * sim.Nanosecond,
		HubOcc:           40 * sim.Nanosecond,
		MemTime:          180 * sim.Nanosecond,
		MemOcc:           60 * sim.Nanosecond,
		RouterTime:       50 * sim.Nanosecond,
		RouterOcc:        16 * sim.Nanosecond,
		MetaExtra:        40 * sim.Nanosecond,
		MetaOcc:          20 * sim.Nanosecond,
		RemoteExtra:      0,
		CacheResponse:    130 * sim.Nanosecond,
		FetchOpTime:      60 * sim.Nanosecond,
		FetchOpOcc:       30 * sim.Nanosecond,
		InvalOcc:         24 * sim.Nanosecond,
		WritebackOcc:     48 * sim.Nanosecond,
		PageMovePerBlock: 80 * sim.Nanosecond,
		MigrationFreeze:  50 * sim.Microsecond,
	}
}

// Config describes one machine instance.
type Config struct {
	// Procs is the number of processors (the paper uses 32..128).
	Procs int
	// ProcsPerNode is processors per Hub (2 on the Origin; 1 for the
	// Section 7.2 experiments).
	ProcsPerNode int
	// NodesPerRouter is nodes per router (2 on the Origin).
	NodesPerRouter int
	// ClockMHz is the processor frequency (195 for the R10000).
	ClockMHz int
	// Cache is the per-processor cache geometry.
	Cache cache.Config
	// Lat holds the memory-system timing components.
	Lat Latencies
	// Placement is the default page policy for pages the application
	// does not place explicitly.
	Placement mempolicy.Kind
	// MigrationThreshold enables dynamic page migration when > 0.
	MigrationThreshold int
	// Mapping maps logical process i to physical processor Mapping[i];
	// nil means linear.
	Mapping topology.Mapping
	// Quantum is the scheduler run-ahead bound (0 selects the default).
	Quantum sim.Time
	// MaxPrefetch bounds outstanding prefetches per processor (default 8).
	MaxPrefetch int
	// NodeMemBytes bounds per-node memory; pages spill to other nodes
	// when a node fills (Ocean's sequential superlinearity, Section 4.1).
	// Zero means unbounded.
	NodeMemBytes int64
	// IgnorePlacement makes the Array.Place* calls no-ops so the default
	// Placement policy governs every page — the "Round Robin" columns of
	// Table 3 run the same application code with this set.
	IgnorePlacement bool
	// ForceNodes overrides the node count when larger than the number of
	// nodes implied by Procs/ProcsPerNode. A sequential run on a machine
	// with many nodes models the paper's uniprocessor baseline, whose
	// data can exceed one node's memory (Ocean's superlinearity).
	ForceNodes int
	// ForceMetarouters builds the interconnect from 8-router modules and
	// metarouters even when a full hypercube would fit — the Section 7.1
	// with/without-metarouter comparison at 64 processors.
	ForceMetarouters bool
	// Check enables the online coherence-invariant checker
	// (internal/check): every directory transaction and cache fill/evict
	// is verified against a mirrored protocol state and a golden memory
	// image, and Run fails with the violations found. Off by default; the
	// demand path pays only a nil check when disabled.
	Check bool
	// Trace configures the virtual-time event tracer (internal/trace):
	// per-processor event rings, sharing heatmaps, latency histograms, and
	// Perfetto export. It follows the same discipline as Check — off by
	// default, nothing but nil checks on the hot path when disabled, and
	// zero simulated-time perturbation when enabled.
	Trace trace.Options
	// Metrics configures the virtual-time sampler (internal/metrics):
	// per-processor breakdown series, per-node queueing series, directory
	// state mix and miss-class rates on a fixed virtual-time grid. Same
	// contract as Check and Trace — zero cost off, zero timing
	// perturbation on, bit-identical series across runs and GOMAXPROCS.
	Metrics metrics.Options
	// Engine selects the execution schedule: "serial" (the default — the
	// windowed reference schedule on one host worker) or "parallel" (the
	// identical schedule with the window's shard phase spread over
	// Workers host workers). The two are bit-identical by construction;
	// see DESIGN.md §11.
	Engine string
	// Workers bounds the host workers of the parallel engine (0 means
	// GOMAXPROCS). Ignored under Engine "serial". Any value produces
	// bit-identical results; it only changes wall-clock speed.
	Workers int
	// WindowPolicy selects how the engine sizes its conservative window:
	// "" or "fixed" keeps the constant width Quantum; "adaptive" lets the
	// engine resize the window between Quantum and WindowMax from
	// deterministic virtual-time observables of the committed schedule
	// (see sim.AdaptWindow). Either policy is bit-identical at any worker
	// count; they are distinct deterministic schedules, so results are
	// comparable within a policy, not across policies.
	WindowPolicy string
	// WindowMax caps the adaptive window width (0 selects 64x Quantum).
	// Ignored under WindowPolicy "fixed".
	WindowMax sim.Time
	// HostProf enables the engine host-time profiler (internal/hostprof):
	// per-worker timelines of window phases, steal attempts, serial-phase
	// shares and turnover latency, plus Perfetto export. Gating contract as
	// Check/Trace/Metrics — zero cost off, and schedule-neutral on: host
	// timing is recorded but never feeds back, so simulated results are
	// bit-identical with it on or off. Unlike Check and Metrics it does NOT
	// force workers=1 — profiling the parallel engine is its purpose.
	HostProf bool
	// CritPath enables the virtual-time critical-path recorder
	// (internal/critpath): per-processor snapshots at every full-machine
	// barrier arrival and release, embedded in run artifacts and analyzed
	// by origin-diff -critpath. Recording happens inside the serialized
	// barrier protocol and reads virtual-time data only, so it is
	// bit-identical at any worker count and perturbs nothing.
	CritPath bool
	// Sharing configures the per-block sharing-pattern classifier
	// (internal/sharing): online classification of every cached block as
	// read-only, private, migratory, producer-consumer or widely-shared,
	// word-granularity true- vs false-sharing splits of coherence misses,
	// and per-page/per-node home attribution of remote misses. Same
	// contract as Check and Metrics — zero cost off, zero virtual-time
	// perturbation on, forces one host worker, bit-identical output
	// across runs, engines and requested worker counts.
	Sharing sharing.Options
	// Checkpoint configures originckpt/v1 snapshots at quiescent window
	// boundaries, replay-based resume, and time-travel bisection; see
	// internal/snapshot and DESIGN.md §13. Zero value disables everything.
	Checkpoint CheckpointConfig
	// Scenario declares the machine: interconnect topology, directory
	// sharer-representation format and latency preset (DESIGN.md §16).
	// nil selects the default scenario — the hard-coded Origin shape every
	// pre-scenario run used — and stays bit-identical to it. The pointer
	// is omitted from JSON when nil so default snapshot headers are
	// byte-for-byte what they were before scenarios existed.
	Scenario *scenario.Spec `json:",omitempty"`
}

// CheckpointConfig controls checkpointing and resume for one run.
type CheckpointConfig struct {
	// Every emits a snapshot at the first quiescent window boundary at or
	// after each multiple of this virtual duration. Zero disables capture.
	Every sim.Time
	// Dir receives one ckpt-NNNNNN.originckpt file per snapshot when
	// non-empty.
	Dir string
	// Spec is recorded verbatim in every snapshot header so drivers can
	// rebuild the run.
	Spec snapshot.RunSpec
	// StopAtSeq halts the run (via ErrStopped) at the first quiescent point
	// whose sequence number reaches this value. Zero means run to
	// completion. Used by bisection replays.
	StopAtSeq int64
	// Sink, when set, receives every captured snapshot (after Dir, if both
	// are set). A Sink error aborts the run. Not serializable.
	Sink func(*snapshot.Snapshot) error `json:"-"`
	// Resume, when set, makes the machine re-execute deterministically with
	// observers muted until the snapshot's quiescent point, prove state
	// equality byte-for-byte, restore observer state, and continue. Not
	// serializable.
	Resume *snapshot.Snapshot `json:"-"`
}

// Origin2000 returns the configuration of the paper's machine with the
// given processor count.
func Origin2000(procs int) Config {
	return Config{
		Procs:          procs,
		ProcsPerNode:   2,
		NodesPerRouter: 2,
		ClockMHz:       195,
		Cache:          cache.Origin2000L2,
		Lat:            Origin2000Latencies(),
		Placement:      mempolicy.FirstTouch,
		MaxPrefetch:    8,
	}
}

// Table1Machine identifies a latency preset from the paper's Table 1.
type Table1Machine int

// The machines compared in Table 1.
const (
	MachineOrigin2000 Table1Machine = iota
	MachineExemplarX
	MachineNUMALiiNE
	MachineHalS1
	MachineNUMAQ
)

func (m Table1Machine) String() string {
	switch m {
	case MachineOrigin2000:
		return "Origin2000"
	case MachineExemplarX:
		return "Convex Exemplar X"
	case MachineNUMALiiNE:
		return "Data General NUMALiiNE"
	case MachineHalS1:
		return "Hal S1"
	case MachineNUMAQ:
		return "Sequent NUMAQ"
	}
	return "unknown"
}

// Table1Latencies returns the latency preset for one of Table 1's machines.
// Only the components that differentiate the rows change: local-memory
// path, remote protocol overhead, and intervention cost.
func Table1Latencies(m Table1Machine) Latencies {
	l := Origin2000Latencies()
	switch m {
	case MachineExemplarX:
		// Local 450, remote ~3:1 clean, 5:1 dirty.
		l.ProcOverhead = 90 * sim.Nanosecond
		l.HubTime = 70 * sim.Nanosecond
		l.MemTime = 220 * sim.Nanosecond
		l.RemoteExtra = 500 * sim.Nanosecond
		l.CacheResponse = 400 * sim.Nanosecond
	case MachineNUMALiiNE:
		// Local 240, remote 10:1 clean, 14:1 dirty (SCI ring).
		l.ProcOverhead = 40 * sim.Nanosecond
		l.HubTime = 30 * sim.Nanosecond
		l.MemTime = 140 * sim.Nanosecond
		l.RemoteExtra = 1900 * sim.Nanosecond
		l.CacheResponse = 800 * sim.Nanosecond
	case MachineHalS1:
		// Local 240, remote 5:1 clean, 6:1 dirty.
		l.ProcOverhead = 40 * sim.Nanosecond
		l.HubTime = 30 * sim.Nanosecond
		l.MemTime = 140 * sim.Nanosecond
		l.RemoteExtra = 600 * sim.Nanosecond
		l.CacheResponse = 200 * sim.Nanosecond
	case MachineNUMAQ:
		// Local 240, remote 10:1 clean (dirty N/A in the paper).
		l.ProcOverhead = 40 * sim.Nanosecond
		l.HubTime = 30 * sim.Nanosecond
		l.MemTime = 140 * sim.Nanosecond
		l.RemoteExtra = 2000 * sim.Nanosecond
		l.CacheResponse = 800 * sim.Nanosecond
	}
	return l
}

// ScenarioSpec returns the machine's normalized scenario (the default
// scenario when Config.Scenario is nil).
func (c *Config) ScenarioSpec() scenario.Spec {
	if c.Scenario != nil {
		return c.Scenario.Normalized()
	}
	return scenario.Default()
}

// ScenarioHash returns the content hash of the machine's scenario. It is
// stamped into checkpoint headers and bench snapshot rows; resume refuses
// a snapshot whose hash differs from the requested run's.
func (c *Config) ScenarioHash() string { return c.ScenarioSpec().Hash() }

// table1ByName maps a scenario latency-preset name to its Table-1 row.
func table1ByName(name string) (Table1Machine, bool) {
	switch name {
	case "", "origin2000":
		return MachineOrigin2000, true
	case "exemplar-x":
		return MachineExemplarX, true
	case "numaliine":
		return MachineNUMALiiNE, true
	case "hal-s1":
		return MachineHalS1, true
	case "numa-q":
		return MachineNUMAQ, true
	}
	return 0, false
}

// Validate checks the configuration against its scenario: kinds and
// parameters must be known, and the processor count must not exceed the
// chosen directory format's capacity — the Sharers bit vector indexes
// s[p>>6], so an oversized machine would corrupt sharer state instead of
// failing loudly. New panics on the same conditions; Validate lets
// drivers report them as errors first.
func (c *Config) Validate() error {
	procs := c.Procs
	if procs < 1 {
		procs = 1
	}
	return c.ScenarioSpec().Validate(procs)
}

func (c *Config) normalize() {
	if err := c.Validate(); err != nil {
		panic("core: " + err.Error())
	}
	if c.Procs < 1 {
		c.Procs = 1
	}
	if c.ProcsPerNode < 1 {
		c.ProcsPerNode = 2
	}
	if c.NodesPerRouter < 1 {
		c.NodesPerRouter = 2
	}
	if c.ClockMHz <= 0 {
		c.ClockMHz = 195
	}
	if c.Cache.SizeBytes == 0 {
		c.Cache = cache.Origin2000L2
	}
	if c.Lat == (Latencies{}) {
		// The scenario's latency preset fills in only when the caller left
		// Lat zero, so explicitly calibrated configs are never overridden.
		m, _ := table1ByName(c.ScenarioSpec().Latency)
		c.Lat = Table1Latencies(m)
	}
	if c.MaxPrefetch <= 0 {
		c.MaxPrefetch = 8
	}
	switch c.Engine {
	case "", "serial":
		c.Engine = "serial"
	case "parallel":
	default:
		panic(fmt.Sprintf("core: unknown engine %q (want serial or parallel)", c.Engine))
	}
	switch c.WindowPolicy {
	case "", "fixed":
		c.WindowPolicy = "fixed"
	case "adaptive":
	default:
		panic(fmt.Sprintf("core: unknown window policy %q (want fixed or adaptive)", c.WindowPolicy))
	}
	// The window may not be narrower than the machine's cross-node
	// lookahead; see Latencies.Lookahead.
	if c.Quantum > 0 && c.Quantum < c.Lat.Lookahead() {
		c.Quantum = c.Lat.Lookahead()
	}
}

// ParseWindowSpec parses a -window flag value into Config fields. Accepted
// forms:
//
//	fixed            the default constant-width window (Config.Quantum)
//	fixed:<dur>      constant width <dur> (e.g. fixed:4us)
//	adaptive         adaptive sizing between Quantum and 64x Quantum
//	adaptive:<dur>   adaptive sizing with ceiling <dur>
//
// Durations use Go syntax ("500ns", "4us", "1ms"). The returned quantum is
// zero unless the spec fixes one, and max is zero unless the spec caps the
// adaptive width.
func ParseWindowSpec(spec string) (policy string, quantum, max sim.Time, err error) {
	head, arg := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		head, arg = spec[:i], spec[i+1:]
	}
	var d sim.Time
	if arg != "" {
		td, perr := time.ParseDuration(arg)
		if perr != nil || td <= 0 {
			return "", 0, 0, fmt.Errorf("core: bad window duration %q in %q", arg, spec)
		}
		d = sim.Time(td.Nanoseconds()) * sim.Nanosecond
	}
	switch head {
	case "", "fixed":
		return "fixed", d, 0, nil
	case "adaptive":
		return "adaptive", 0, d, nil
	}
	return "", 0, 0, fmt.Errorf("core: unknown window policy %q (want fixed[:<dur>] or adaptive[:<dur>])", spec)
}
