package core_test

import (
	"testing"
	"testing/quick"

	"origin2000/internal/core"
	"origin2000/internal/mempolicy"
	"origin2000/internal/sim"
)

// measureRead runs one demand read on processor 0 of a fresh machine with
// the page homed at homeNode, optionally dirty in ownerProc's cache, and
// returns the memory stall.
func measureRead(t *testing.T, procs, homeNode, ownerProc int) sim.Time {
	t.Helper()
	cfg := core.Origin2000(procs)
	m := core.New(cfg)
	arr := m.Alloc("probe", 1024, 8)
	arr.PlaceAtNode(homeNode)
	var stall sim.Time
	err := m.Run(func(p *core.Proc) {
		if p.ID() == ownerProc && ownerProc != 0 {
			p.Write(arr.Addr(0)) // make the line dirty remotely
		}
		if p.ID() == 0 {
			p.Compute(100 * sim.Microsecond) // let any owner write land first
			before := p.Now()
			p.Read(arr.Addr(0))
			stall = p.Now() - before
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return stall
}

func TestTable1LocalLatency(t *testing.T) {
	// Processor 0 is on node 0; a local read miss must cost the paper's
	// 338 ns.
	got := measureRead(t, 64, 0, 0)
	if got != 338*sim.Nanosecond {
		t.Errorf("local miss = %v, want 338ns", got)
	}
}

func TestTable1RemoteCleanLatency(t *testing.T) {
	// Average over all remote homes on the 64-processor machine should
	// land near the paper's 656 ns, and the ratio near 2:1.
	m := core.New(core.Origin2000(64))
	nodes := m.NumNodes()
	var sum sim.Time
	for home := 1; home < nodes; home++ {
		sum += measureRead(t, 64, home, 0)
	}
	avg := sum / sim.Time(nodes-1)
	if avg < 580*sim.Nanosecond || avg > 730*sim.Nanosecond {
		t.Errorf("remote clean avg = %v, want ~656ns", avg)
	}
	ratio := float64(avg) / float64(338*sim.Nanosecond)
	if ratio < 1.7 || ratio > 2.2 {
		t.Errorf("remote/local clean ratio = %.2f, want ~2", ratio)
	}
}

func TestTable1RemoteDirtyLatency(t *testing.T) {
	// Dirty in a third node: 3-hop transaction near the paper's 892 ns.
	var sum sim.Time
	samples := 0
	for home := 1; home < 8; home++ {
		owner := (home + 8) % 16 // a processor on yet another node
		sum += measureRead(t, 64, home, owner*2)
		samples++
	}
	avg := sum / sim.Time(samples)
	if avg < 780*sim.Nanosecond || avg > 1000*sim.Nanosecond {
		t.Errorf("remote dirty avg = %v, want ~892ns", avg)
	}
	ratio := float64(avg) / float64(338*sim.Nanosecond)
	if ratio < 2.3 || ratio > 3.2 {
		t.Errorf("remote/local dirty ratio = %.2f, want ~3", ratio)
	}
}

func TestCacheHitIsFree(t *testing.T) {
	m := core.New(core.Origin2000(2))
	arr := m.Alloc("a", 64, 8)
	err := m.RunOne(func(p *core.Proc) {
		p.Read(arr.Addr(0))
		before := p.Now()
		p.Read(arr.Addr(1)) // same block
		if p.Now() != before {
			t.Errorf("hit advanced the clock by %v", p.Now()-before)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if c := m.Proc(0).Stats(); c.Hits != 1 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", c.Hits, c.Misses())
	}
}

func TestFirstTouchPlacement(t *testing.T) {
	m := core.New(core.Origin2000(64))
	arr := m.Alloc("a", 8192, 8)
	err := m.Run(func(p *core.Proc) {
		if p.ID() == 5 {
			p.Read(arr.Addr(0)) // first touch by proc 5 (node 2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	page := mempolicy.PageOf(arr.Addr(0))
	if home := m.PageTable().Choose(page, 0); home != 2 {
		t.Errorf("page homed at node %d, want first-toucher's node 2", home)
	}
}

func TestWriteInvalidatesReaders(t *testing.T) {
	m := core.New(core.Origin2000(8))
	arr := m.Alloc("a", 64, 8)
	arr.PlaceAtNode(0)
	err := m.Run(func(p *core.Proc) {
		switch p.ID() {
		case 1, 2, 3:
			p.Read(arr.Addr(0))
		case 0:
			p.Compute(50 * sim.Microsecond)
			p.Write(arr.Addr(0)) // invalidates 1..3
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Proc(0).Stats().Invalidations; got != 3 {
		t.Errorf("invalidations = %d, want 3", got)
	}
	for i := 1; i <= 3; i++ {
		if m.Proc(i).CacheContains(arr.Addr(0)) {
			t.Errorf("proc %d still caches the invalidated block", i)
		}
	}
}

func TestUpgradeOnWriteAfterRead(t *testing.T) {
	m := core.New(core.Origin2000(2))
	arr := m.Alloc("a", 64, 8)
	err := m.RunOne(func(p *core.Proc) {
		p.Read(arr.Addr(0))
		p.Write(arr.Addr(0))
	})
	if err != nil {
		t.Fatal(err)
	}
	if c := m.Proc(0).Stats(); c.Upgrades != 1 {
		t.Errorf("upgrades = %d, want 1", c.Upgrades)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	// A tiny cache forces capacity evictions of dirty lines.
	cfg := core.Origin2000(2)
	cfg.Cache.SizeBytes = 1024 // 8 lines, 2-way, 4 sets of 128B blocks
	m := core.New(cfg)
	arr := m.Alloc("a", 4096, 8)
	err := m.RunOne(func(p *core.Proc) {
		for i := 0; i < 32; i++ {
			p.Write(arr.Addr(i * 16)) // one write per block
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	c := m.Proc(0).Stats()
	if c.Writebacks < 20 {
		t.Errorf("writebacks = %d, want most of the 32 dirty lines", c.Writebacks)
	}
	if err := m.DirectoryCheck(); err != nil {
		t.Error(err)
	}
}

func TestPrefetchOverlapsLatency(t *testing.T) {
	m := core.New(core.Origin2000(64))
	arr := m.Alloc("a", 4096, 8)
	arr.PlaceAtNode(10)
	var prefetched, demand sim.Time
	err := m.RunOne(func(p *core.Proc) {
		// Demand miss for reference.
		before := p.Now()
		p.Read(arr.Addr(0))
		demand = p.Now() - before
		// Prefetch far ahead, compute, then access: no stall.
		p.Prefetch(arr.Addr(64)) // next block
		p.Compute(10 * sim.Microsecond)
		before = p.Now()
		p.Read(arr.Addr(64))
		prefetched = p.Now() - before
	})
	if err != nil {
		t.Fatal(err)
	}
	if prefetched != 0 {
		t.Errorf("prefetched access stalled %v, want 0", prefetched)
	}
	if demand < 500*sim.Nanosecond {
		t.Errorf("demand remote miss = %v, implausibly fast", demand)
	}
	if c := m.Proc(0).Stats(); c.Prefetches != 1 || c.PrefetchHits != 1 {
		t.Errorf("prefetches=%d hits=%d, want 1/1", c.Prefetches, c.PrefetchHits)
	}
}

func TestPrefetchResidualStall(t *testing.T) {
	m := core.New(core.Origin2000(64))
	arr := m.Alloc("a", 4096, 8)
	arr.PlaceAtNode(10)
	err := m.RunOne(func(p *core.Proc) {
		p.Prefetch(arr.Addr(0))
		before := p.Now()
		p.Read(arr.Addr(0)) // immediately: waits the residual fill time
		resid := p.Now() - before
		if resid <= 0 {
			t.Errorf("immediate access after prefetch should stall, got %v", resid)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFetchOpCheaperThanMiss(t *testing.T) {
	m := core.New(core.Origin2000(64))
	arr := m.Alloc("a", 64, 8)
	arr.PlaceAtNode(10)
	var fop, miss sim.Time
	err := m.RunOne(func(p *core.Proc) {
		before := p.Now()
		p.FetchOp(arr.Addr(0))
		fop = p.Now() - before
		before = p.Now()
		p.Read(arr.Addr(8)) // same page, still uncached
		miss = p.Now() - before
	})
	if err != nil {
		t.Fatal(err)
	}
	if fop >= miss {
		t.Errorf("fetch&op (%v) should be cheaper than a full miss (%v)", fop, miss)
	}
}

func TestHubContentionSameNode(t *testing.T) {
	// Two processors of one node hammering memory queue at their shared
	// Hub; the same traffic from processors on different nodes does not.
	// The data lives on node 1 — the same router as the contending pair on
	// node 0 — so their accesses stay shard-local under the windowed engine
	// and the shared outgoing Hub is the only difference between the runs.
	run := func(procB int) sim.Time {
		m := core.New(core.Origin2000(8))
		arr := m.Alloc("a", 1<<16, 8)
		arr.PlaceAtNode(1)
		err := m.Run(func(p *core.Proc) {
			if p.ID() != 0 && p.ID() != procB {
				return
			}
			off := 0
			if p.ID() == procB {
				off = 1 << 14
			}
			for i := 0; i < 200; i++ {
				p.Read(arr.Addr(off + i*16))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Result().HubQueued
	}
	same := run(1) // procs 0,1 share node 0
	diff := run(4) // proc 4 lives on node 2
	if same <= diff {
		t.Errorf("same-node hub queueing (%v) should exceed cross-node (%v)", same, diff)
	}
}

func TestMigrationMakesPageLocal(t *testing.T) {
	cfg := core.Origin2000(8)
	cfg.Placement = mempolicy.RoundRobin
	cfg.IgnorePlacement = true
	cfg.MigrationThreshold = 8
	cfg.Cache.SizeBytes = 1024 // force repeated misses on the same page
	m := core.New(cfg)
	arr := m.Alloc("a", 1<<14, 8)
	err := m.Run(func(p *core.Proc) {
		if p.ID() != 6 { // node 3
			return
		}
		for rep := 0; rep < 4; rep++ {
			for i := 0; i < 256; i++ {
				p.Read(arr.Addr(i * 16))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Result().Migrations; got == 0 {
		t.Error("expected at least one page migration")
	}
}

func TestNodeMemorySpill(t *testing.T) {
	cfg := core.Origin2000(8) // 4 nodes
	cfg.NodeMemBytes = 4 * mempolicy.PageBytes
	m := core.New(cfg)
	arr := m.Alloc("a", 8*mempolicy.PageBytes/8, 8) // 8 pages
	arr.PlaceAtNode(0)                              // wants all on node 0; only 4 fit
	perNode := make([]int, m.NumNodes())
	for pg := 0; pg < arr.Pages(); pg++ {
		page := mempolicy.PageOf(arr.Addr(pg * mempolicy.PageBytes / 8))
		perNode[m.PageTable().Choose(page, 1)]++
	}
	if perNode[0] != 4 || perNode[1] != 4 {
		t.Errorf("pages per node = %v, want [4 4 0 0]", perNode)
	}
}

func TestAllocationsDisjointProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		m := core.New(core.Origin2000(2))
		type span struct{ lo, hi uint64 }
		var spans []span
		for i, s := range sizes {
			n := int(s)%4096 + 1
			a := m.Alloc("x", n, 8)
			lo, hi := a.Addr(0), a.Addr(n-1)+8
			for _, sp := range spans {
				if lo < sp.hi && sp.lo < hi {
					return false
				}
			}
			spans = append(spans, span{lo, hi})
			if i > 20 {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMachineDeterminism(t *testing.T) {
	run := func() sim.Time {
		m := core.New(core.Origin2000(16))
		arr := m.Alloc("a", 1<<14, 8)
		err := m.Run(func(p *core.Proc) {
			for i := 0; i < 300; i++ {
				idx := (i*17 + p.ID()*131) % (1 << 14)
				if i%3 == 0 {
					p.Write(arr.Addr(idx))
				} else {
					p.Read(arr.Addr(idx))
				}
				p.Compute(100 * sim.Nanosecond)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Elapsed()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic elapsed: %v vs %v", a, b)
	}
}

func TestDirectoryInvariantsAfterRandomSharing(t *testing.T) {
	m := core.New(core.Origin2000(16))
	arr := m.Alloc("a", 1<<12, 8)
	err := m.Run(func(p *core.Proc) {
		for i := 0; i < 200; i++ {
			idx := (i*29 + p.ID()*7) % (1 << 12)
			if (i+p.ID())%4 == 0 {
				p.Write(arr.Addr(idx))
			} else {
				p.Read(arr.Addr(idx))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DirectoryCheck(); err != nil {
		t.Error(err)
	}
}

func TestTable1PresetOrdering(t *testing.T) {
	// The Table 1 machines must order by remote/local ratio as in the
	// paper: Origin (2:1) < HAL S1 (5:1) < NUMALiiNE (10:1).
	probe := func(mach core.Table1Machine) (local, remote sim.Time) {
		cfg := core.Origin2000(64)
		cfg.Lat = core.Table1Latencies(mach)
		m := core.New(cfg)
		arr := m.Alloc("a", 4096, 8)
		arr.PlaceAtNode(0)
		far := m.Alloc("b", 4096, 8)
		far.PlaceAtNode(9)
		err := m.RunOne(func(p *core.Proc) {
			before := p.Now()
			p.Read(arr.Addr(0))
			local = p.Now() - before
			before = p.Now()
			p.Read(far.Addr(0))
			remote = p.Now() - before
		})
		if err != nil {
			t.Fatal(err)
		}
		return
	}
	lo, ro := probe(core.MachineOrigin2000)
	lh, rh := probe(core.MachineHalS1)
	ln, rn := probe(core.MachineNUMALiiNE)
	ratio := func(l, r sim.Time) float64 { return float64(r) / float64(l) }
	if !(ratio(lo, ro) < ratio(lh, rh) && ratio(lh, rh) < ratio(ln, rn)) {
		t.Errorf("ratios not ordered: origin=%.1f hal=%.1f numaline=%.1f",
			ratio(lo, ro), ratio(lh, rh), ratio(ln, rn))
	}
}

func TestArrayStatsAttribution(t *testing.T) {
	m := core.New(core.Origin2000(8))
	m.EnableArrayStats()
	local := m.Alloc("local.data", 4096, 8)
	local.PlaceAtNode(0)
	remote := m.Alloc("remote.data", 4096, 8)
	remote.PlaceAtNode(3)
	err := m.RunOne(func(p *core.Proc) {
		for i := 0; i < 256; i++ {
			p.Read(local.Addr(i * 16))
			p.Read(remote.Addr(i * 16))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := m.ArrayStats()
	byName := map[string]*core.ArrayStats{}
	for _, a := range stats {
		byName[a.Name] = a
	}
	l, r := byName["local.data"], byName["remote.data"]
	if l == nil || r == nil {
		t.Fatal("allocations missing from stats")
	}
	if l.LocalMisses == 0 || l.Remote() != 0 {
		t.Errorf("local.data: %+v", l)
	}
	if r.Remote() == 0 || r.LocalMisses != 0 {
		t.Errorf("remote.data: %+v", r)
	}
	if r.Stall <= l.Stall {
		t.Errorf("remote stall (%v) should exceed local (%v)", r.Stall, l.Stall)
	}
	rows := m.ArrayReport()
	if len(rows) < 3 {
		t.Errorf("report rows = %d", len(rows))
	}
}

func TestArrayStatsOffByDefault(t *testing.T) {
	m := core.New(core.Origin2000(2))
	arr := m.Alloc("a", 64, 8)
	if err := m.RunOne(func(p *core.Proc) { p.Read(arr.Addr(0)) }); err != nil {
		t.Fatal(err)
	}
	if m.ArrayStats() != nil {
		t.Error("stats should be nil when not enabled")
	}
}

func TestPhaseAttribution(t *testing.T) {
	m := core.New(core.Origin2000(4))
	arr := m.Alloc("a", 1<<14, 8)
	arr.PlaceAtNode(1)
	err := m.Run(func(p *core.Proc) {
		p.SetPhase("compute")
		p.Compute(100 * sim.Microsecond)
		p.SetPhase("communicate")
		for i := 0; i < 64; i++ {
			p.Read(arr.Addr(i*16 + p.ID()*1024))
		}
		p.SetPhase("")
	})
	if err != nil {
		t.Fatal(err)
	}
	ph := m.PhaseBreakdowns()
	if len(ph) != 2 {
		t.Fatalf("phases = %d, want 2", len(ph))
	}
	byName := map[string]core.PhaseBreakdown{}
	for _, b := range ph {
		byName[b.Name] = b
	}
	c := byName["compute"]
	if c.Busy != 4*100*sim.Microsecond || c.Memory != 0 {
		t.Errorf("compute phase = %+v", c.Breakdown)
	}
	comm := byName["communicate"]
	if comm.Memory == 0 || comm.Busy != 0 {
		t.Errorf("communicate phase = %+v", comm.Breakdown)
	}
}

func TestPhaseUnlabeledIsUnattributed(t *testing.T) {
	m := core.New(core.Origin2000(1))
	if err := m.RunOne(func(p *core.Proc) { p.Compute(sim.Microsecond) }); err != nil {
		t.Fatal(err)
	}
	if len(m.PhaseBreakdowns()) != 0 {
		t.Error("no phases were set; report should be empty")
	}
}
