package core

import (
	"testing"

	"origin2000/internal/cache"
	"origin2000/internal/mempolicy"
)

func tlbMachine(t *testing.T, procs int) *Machine {
	t.Helper()
	return New(Config{
		Procs:          procs,
		ProcsPerNode:   2,
		NodesPerRouter: 2,
		Cache:          cache.Config{SizeBytes: 8 << 10, BlockBytes: BlockBytes, Assoc: 2},
	})
}

// TestHomeTLBGenerationInvalidation is the contract the 64-entry home TLB
// must honor: a migration or manual re-home bumps the page table's
// generation, and no processor may ever be served a stale home from its
// TLB afterwards. Each case mutates the table a different way and then
// checks every processor's resolution against the table's ground truth.
func TestHomeTLBGenerationInvalidation(t *testing.T) {
	cases := []struct {
		name string
		// mutate changes page's mapping (or not) and returns the home
		// every processor must observe afterwards.
		mutate func(m *Machine, page uint64, firstHome int) int
		// wantGenBump reports whether the mutation must invalidate
		// cached translations via a generation bump.
		wantGenBump bool
	}{
		{
			name: "manual re-home to a different node",
			mutate: func(m *Machine, page uint64, firstHome int) int {
				to := (firstHome + 1) % m.NumNodes()
				m.PageTable().SetHome(page, to)
				return to
			},
			wantGenBump: true,
		},
		{
			name: "re-home to the same node is free",
			mutate: func(m *Machine, page uint64, firstHome int) int {
				m.PageTable().SetHome(page, firstHome)
				return firstHome
			},
			wantGenBump: false,
		},
		{
			name: "no mutation keeps the memo valid",
			mutate: func(m *Machine, page uint64, firstHome int) int {
				return firstHome
			},
			wantGenBump: false,
		},
		{
			name: "migration via remote-miss counters",
			mutate: func(m *Machine, page uint64, firstHome int) int {
				pt := m.PageTable()
				to := (firstHome + 1) % m.NumNodes()
				for i := 0; i < 100; i++ {
					if newHome, moved := pt.RecordRemoteMiss(page, to); moved {
						return newHome
					}
				}
				t.Fatal("migration never triggered")
				return -1
			},
			wantGenBump: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				Procs:          4,
				ProcsPerNode:   2,
				NodesPerRouter: 2,
				Cache:          cache.Config{SizeBytes: 8 << 10, BlockBytes: BlockBytes, Assoc: 2},
			}
			if tc.name == "migration via remote-miss counters" {
				cfg.MigrationThreshold = 4
			}
			m := New(cfg)
			arr := m.Alloc("a", 4*mempolicy.PageBytes/8, 8)
			page := mempolicy.PageOf(arr.Base())

			// Warm every processor's TLB with the first-touch home.
			firstHome := m.Proc(0).homeOf(page)
			for i := 0; i < m.NumProcs(); i++ {
				if h := m.Proc(i).homeOf(page); h != firstHome {
					t.Fatalf("p%d warmed to home %d, p0 to %d", i, h, firstHome)
				}
			}

			genBefore := m.pages.Gen()
			want := tc.mutate(m, page, firstHome)
			genAfter := m.pages.Gen()
			if bumped := genAfter != genBefore; bumped != tc.wantGenBump {
				t.Fatalf("generation bump = %v, want %v (gen %d -> %d)",
					bumped, tc.wantGenBump, genBefore, genAfter)
			}

			// Every processor — all of which hold a cached translation —
			// must now resolve the post-mutation home.
			for i := 0; i < m.NumProcs(); i++ {
				if h := m.Proc(i).homeOf(page); h != want {
					t.Errorf("p%d served home %d after mutation, want %d", i, h, want)
				}
			}
		})
	}
}

// TestHomeTLBGenerationBumpInvalidatesAllEntries: one page moving must not
// leave any *other* page's cached translation wrong either — the bump
// invalidates the whole TLB, and every entry re-resolves to its (unchanged)
// home.
func TestHomeTLBGenerationBumpInvalidatesAllEntries(t *testing.T) {
	m := tlbMachine(t, 2)
	const npages = 8
	arr := m.Alloc("a", npages*mempolicy.PageBytes/8, 8)
	base := mempolicy.PageOf(arr.Base())
	p := m.Proc(0)

	homes := make([]int, npages)
	for i := 0; i < npages; i++ {
		homes[i] = p.homeOf(base + uint64(i))
	}
	// Move page 0 somewhere else; the other pages' homes are untouched.
	m.PageTable().SetHome(base, (homes[0]+1)%m.NumNodes())
	homes[0] = (homes[0] + 1) % m.NumNodes()
	for i := 0; i < npages; i++ {
		if h := p.homeOf(base + uint64(i)); h != homes[i] {
			t.Errorf("page %d resolved to %d after unrelated move, want %d", i, h, homes[i])
		}
	}
}

// TestHomeTLBSlotCollision: pages homeTLBSize apart share a direct-mapped
// slot. Alternating between them evicts each other's entry, and every
// resolution must still be correct.
func TestHomeTLBSlotCollision(t *testing.T) {
	m := tlbMachine(t, 2)
	// Enough pages that base and base+homeTLBSize both exist.
	arr := m.Alloc("a", (homeTLBSize+1)*mempolicy.PageBytes/8, 8)
	base := mempolicy.PageOf(arr.Base())
	pgA, pgB := base, base+homeTLBSize
	if pgA&(homeTLBSize-1) != pgB&(homeTLBSize-1) {
		t.Fatal("test setup: pages do not collide")
	}
	p := m.Proc(0)
	homeA, homeB := p.homeOf(pgA), p.homeOf(pgB)
	for i := 0; i < 10; i++ {
		if h := p.homeOf(pgA); h != homeA {
			t.Fatalf("iteration %d: page A resolved to %d, want %d", i, h, homeA)
		}
		if h := p.homeOf(pgB); h != homeB {
			t.Fatalf("iteration %d: page B resolved to %d, want %d", i, h, homeB)
		}
	}
	// A collision eviction followed by a re-home still serves fresh data.
	m.PageTable().SetHome(pgA, (homeA+1)%m.NumNodes())
	if h := p.homeOf(pgA); h != (homeA+1)%m.NumNodes() {
		t.Fatalf("page A served %d after re-home, want %d", h, (homeA+1)%m.NumNodes())
	}
	if h := p.homeOf(pgB); h != homeB {
		t.Fatalf("page B disturbed by A's re-home: %d, want %d", h, homeB)
	}
}

// TestHomeTLBStaleHomeWouldBeServedWithoutGen documents *why* the
// generation exists: with a matching page and generation the TLB short-
// circuits the table, so a re-home that failed to bump the generation
// would keep serving the old node. The test simulates that bug by writing
// the table's map around the bump and confirms the TLB (correctly, given
// its contract) returns the stale value — the generation is the only thing
// standing between migration and stale routing.
func TestHomeTLBStaleHomeWouldBeServedWithoutGen(t *testing.T) {
	m := tlbMachine(t, 2)
	arr := m.Alloc("a", mempolicy.PageBytes/8, 8)
	page := mempolicy.PageOf(arr.Base())
	p := m.Proc(0)
	home := p.homeOf(page)

	// Buggy re-home: mutate the mapping without SetHome's gen bump.
	stale := (home + 1) % m.NumNodes()
	m.PageTable().SetHome(page, stale)
	m.PageTable().SetHome(page, home) // restore; net zero moves, two bumps
	if h := p.homeOf(page); h != home {
		t.Fatalf("round-trip re-home broke resolution: %d, want %d", h, home)
	}
}
