package core

import (
	"fmt"

	"origin2000/internal/cache"
	"origin2000/internal/check"
	"origin2000/internal/critpath"
	"origin2000/internal/directory"
	"origin2000/internal/hostprof"
	"origin2000/internal/mempolicy"
	"origin2000/internal/metrics"
	"origin2000/internal/perf"
	"origin2000/internal/scenario"
	"origin2000/internal/sharing"
	"origin2000/internal/sim"
	"origin2000/internal/topology"
	"origin2000/internal/trace"
)

// BlockBytes is the coherence granularity (the Origin's 128-byte L2 block).
const BlockBytes = 128

const blockShift = 7

// BlockOf returns the block number containing addr.
func BlockOf(addr uint64) uint64 { return addr >> blockShift }

// Machine is one simulated CC-NUMA multiprocessor.
type Machine struct {
	cfg      Config
	eng      *sim.Engine
	fabric   topology.Network
	pages    *mempolicy.Table
	migrator *mempolicy.Migrator
	dirs     []*directory.Directory // per-node home directories (shard-local)
	check    *check.Checker         // nil unless Config.Check
	tracer   *trace.Tracer          // nil unless Config.Trace.Enabled
	sampler  *metrics.Sampler       // nil unless Config.Metrics.Enabled
	hprof    *hostprof.Profiler     // nil unless Config.HostProf
	critrec  *critpath.Recorder     // nil unless Config.CritPath
	sharing  *sharing.Observer      // nil unless Config.Sharing.Enabled
	procs    []*Proc
	mapping  topology.Mapping

	numNodes   int
	numRouters int

	hubs    []sim.Resource
	mems    []sim.Resource
	routers []sim.Resource
	metas   []sim.Resource

	cycle     sim.Time // one processor cycle
	nextAddr  uint64
	nodePages []int       // pages homed per node (for NodeMemBytes spill)
	maxNodePg int         // 0 = unbounded
	arrays    *arrayIndex // per-allocation attribution (nil = off)

	// placeFn is the first-touch placement hook passed to Table.Resolve,
	// built once so the hot path never allocates a closure.
	placeFn func(choice int) int

	ckpt      *ckptState    // nil unless Config.Checkpoint is armed
	syncSnaps []syncSnapReg // registered sync-primitive state providers
}

// New builds a machine from cfg.
func New(cfg Config) *Machine {
	cfg.normalize()
	numNodes := (cfg.Procs + cfg.ProcsPerNode - 1) / cfg.ProcsPerNode
	if cfg.ForceNodes > numNodes {
		numNodes = cfg.ForceNodes
	}
	numRouters := (numNodes + cfg.NodesPerRouter - 1) / cfg.NodesPerRouter
	// The scenario declares the interconnect and the directory's sharer
	// format. normalize validated it; the default spec builds exactly the
	// machine New hard-coded before scenarios existed.
	spec := cfg.ScenarioSpec()
	dirFormat, err := spec.Format()
	if err != nil {
		panic("core: " + err.Error()) // unreachable: normalize validated
	}
	m := &Machine{
		cfg:        cfg,
		eng:        sim.NewEngine(cfg.Procs, cfg.Quantum),
		fabric:     spec.Network(numRouters, cfg.ForceMetarouters),
		dirs:       make([]*directory.Directory, numNodes),
		numNodes:   numNodes,
		numRouters: numRouters,
		hubs:       make([]sim.Resource, numNodes),
		mems:       make([]sim.Resource, numNodes),
		routers:    make([]sim.Resource, numRouters),
		cycle:      sim.Time(1_000_000 / cfg.ClockMHz), // ps per cycle
		nodePages:  make([]int, numNodes),
	}
	for i := range m.hubs {
		m.hubs[i].Name = fmt.Sprintf("hub%d", i)
		m.mems[i].Name = fmt.Sprintf("mem%d", i)
		m.dirs[i] = directory.NewWithFormat(dirFormat, cfg.Procs)
	}
	for i := range m.routers {
		m.routers[i].Name = fmt.Sprintf("router%d", i)
	}
	if n := m.fabric.NumMetarouters(); n > 0 {
		m.metas = make([]sim.Resource, n)
		for i := range m.metas {
			m.metas[i].Name = fmt.Sprintf("meta%d", i)
		}
	}
	if cfg.MigrationThreshold > 0 {
		m.migrator = mempolicy.NewMigrator(numNodes, cfg.MigrationThreshold)
	}
	m.pages = mempolicy.NewTable(numNodes, cfg.Placement, m.migrator)
	m.pages.OnRemap = m.pageRemapped
	if cfg.NodeMemBytes > 0 {
		m.maxNodePg = int(cfg.NodeMemBytes / mempolicy.PageBytes)
		if m.maxNodePg < 1 {
			m.maxNodePg = 1
		}
	}
	m.placeFn = m.spill
	m.mapping = cfg.Mapping
	if m.mapping == nil {
		m.mapping = topology.Linear(cfg.Procs)
	}
	if len(m.mapping) != cfg.Procs || !m.mapping.Valid() {
		panic("core: mapping must be a permutation of the processor ids")
	}
	// A resuming machine replays the prefix with observers muted: they are
	// not constructed here, and every observer call site is nil-gated, so
	// the replayed schedule is the recorded one. The resume proof rebuilds
	// and restores them at the recorded quiescent point (see unmute).
	resuming := cfg.Checkpoint.Resume != nil
	if cfg.Check && !resuming {
		m.check = check.New(cfg.Procs, &multiDir{m: m})
	}
	if cfg.Trace.Enabled && !resuming {
		m.tracer = trace.New(cfg.Procs, cfg.Trace)
		m.attachTracer()
	}
	if cfg.Metrics.Enabled && !resuming {
		m.sampler = metrics.New(cfg.Procs, cfg.Metrics)
	}
	if cfg.Sharing.Enabled && !resuming {
		m.sharing = sharing.New(cfg.Procs, numNodes)
	}
	m.procs = make([]*Proc, cfg.Procs)
	for i := range m.procs {
		phys := m.mapping[i]
		node := phys / cfg.ProcsPerNode
		m.procs[i] = &Proc{
			m:        m,
			sp:       m.eng.Proc(i),
			node:     node,
			router:   node / cfg.NodesPerRouter,
			cache:    cache.New(cfg.Cache),
			prefetch: make(map[uint64]sim.Time),
		}
		if m.check != nil {
			m.check.AttachCache(i, m.procs[i].cache)
		}
	}
	m.setupShards()
	// The host-time profiler sizes its lanes from the engine's final worker
	// count, so it attaches after setupShards. Both it and the critical-path
	// recorder are built even when resuming: neither can perturb the
	// schedule (hostprof records host time one-way, critpath records
	// virtual-time data inside the serialized barrier protocol), so — unlike
	// the muted observers above — the replayed prefix profiles and records
	// like any other run.
	if cfg.HostProf {
		m.hprof = hostprof.New(m.eng.Workers())
		m.eng.SetHostProfiler(m.hprof)
	}
	if cfg.CritPath {
		m.critrec = critpath.NewRecorder(cfg.Procs)
	}
	m.initCheckpoint()
	return m
}

// Config returns the machine's configuration (normalized).
func (m *Machine) Config() Config { return m.cfg }

// NumProcs reports the processor count.
func (m *Machine) NumProcs() int { return m.cfg.Procs }

// NumNodes reports the node (Hub) count.
func (m *Machine) NumNodes() int { return m.numNodes }

// Fabric exposes the router interconnect.
func (m *Machine) Fabric() topology.Network { return m.fabric }

// Scenario returns the machine's normalized scenario spec.
func (m *Machine) Scenario() scenario.Spec { return m.cfg.ScenarioSpec() }

// Cycles converts processor cycles to virtual time at the machine's clock.
func (m *Machine) Cycles(n int64) sim.Time { return sim.Time(n) * m.cycle }

// Directories exposes the per-node coherence directories, indexed by home
// node (test/diagnostic use).
func (m *Machine) Directories() []*directory.Directory { return m.dirs }

// dirAt returns the directory of the given home node.
func (m *Machine) dirAt(home int) *directory.Directory { return m.dirs[home] }

// DirectoryCheck audits every node's directory for internal-invariant
// violations (test/diagnostic use).
func (m *Machine) DirectoryCheck() error {
	for _, d := range m.dirs {
		if err := d.Check(); err != nil {
			return err
		}
	}
	return nil
}

// FaultDropInvalidation installs the lost-invalidation fault hook on every
// node's directory (verification-layer tests only).
func (m *Machine) FaultDropInvalidation(fn func(block uint64, proc int) bool) {
	for _, d := range m.dirs {
		d.FaultDropInvalidation(fn)
	}
}

// PageTable exposes page placement (test/diagnostic use).
func (m *Machine) PageTable() *mempolicy.Table { return m.pages }

// Proc returns logical processor i outside of a Run (for test drivers that
// exercise the access path directly via RunOne).
func (m *Machine) Proc(i int) *Proc { return m.procs[i] }

// Run executes body once per logical processor under virtual time.
// It can be called repeatedly; clocks and statistics accumulate across
// calls so multi-phase programs compose.
//
// With Config.Check set, Run additionally audits the coherence state after
// the processors finish and returns the checker's violations as an error.
func (m *Machine) Run(body func(p *Proc)) error {
	err := m.eng.Run(func(sp *sim.Proc) {
		body(m.procs[sp.ID()])
	})
	if err != nil {
		return err
	}
	return m.checkResult()
}

// RunOne runs body on logical processor 0 only, with the remaining
// processors idle. Useful for microbenchmarks (Table 1) and unit tests.
func (m *Machine) RunOne(body func(p *Proc)) error {
	err := m.eng.Run(func(sp *sim.Proc) {
		if sp.ID() == 0 {
			body(m.procs[0])
		}
	})
	if err != nil {
		return err
	}
	return m.checkResult()
}

// checkResult audits the coherence state when the online checker is on and
// reports its accumulated violations.
func (m *Machine) checkResult() error {
	if m.check == nil {
		return nil
	}
	m.check.Audit()
	return m.check.Err()
}

// Checker exposes the online invariant checker (nil unless Config.Check).
func (m *Machine) Checker() *check.Checker { return m.check }

// HostProf exposes the engine host-time profiler (nil unless
// Config.HostProf).
func (m *Machine) HostProf() *hostprof.Profiler { return m.hprof }

// CritPath snapshots the critical-path record (nil unless Config.CritPath).
func (m *Machine) CritPath() *critpath.Summary {
	if m.critrec == nil {
		return nil
	}
	return m.critrec.Summary()
}

// Elapsed returns the parallel completion time so far.
func (m *Machine) Elapsed() sim.Time { return m.eng.MaxTime() }

// SchedStats exposes the engine's scheduling-shape statistics — windowed
// rounds, phase-1 shard chains dispatched, commit-queue entries — for the
// benchmark harness (see sim.Engine.SchedStats).
func (m *Machine) SchedStats() (windows, shardChains, commits int64) {
	return m.eng.SchedStats()
}

// SchedShape exposes the engine's full scheduling-shape report: windowed
// rounds, chains, commits, serial commit-chain resumes, and run-ahead
// fast-path spans. Every field derives from the deterministic schedule, so
// it is bit-identical at any worker count (see sim.Engine.Shape).
func (m *Machine) SchedShape() sim.SchedShape { return m.eng.Shape() }

// Result summarizes the run for the metrics layer.
func (m *Machine) Result() perf.Result {
	r := perf.Result{
		Procs:   m.cfg.Procs,
		Elapsed: m.eng.MaxTime(),
		PerProc: make([]perf.Breakdown, m.cfg.Procs),
	}
	for i, p := range m.procs {
		r.PerProc[i] = perf.Breakdown{
			Busy:   p.sp.Stat(sim.StatBusy),
			Memory: p.sp.Stat(sim.StatMemory),
			Sync:   p.sp.Stat(sim.StatSync),
		}
		r.Counters.Add(&p.sp.Counters)
	}
	// Queueing and busy time are reported per node/router — machine-wide
	// sums hide the hot Hub that a single contended page creates — with
	// the scalar totals derived from them.
	r.HubQueuedPerNode = make([]sim.Time, len(m.hubs))
	r.MemQueuedPerNode = make([]sim.Time, len(m.mems))
	r.HubBusyPerNode = make([]sim.Time, len(m.hubs))
	for i := range m.hubs {
		r.HubQueuedPerNode[i] = m.hubs[i].Queued()
		r.MemQueuedPerNode[i] = m.mems[i].Queued()
		r.HubBusyPerNode[i] = m.hubs[i].Busy()
		r.HubQueued += r.HubQueuedPerNode[i]
		r.MemQueued += r.MemQueuedPerNode[i]
		r.HubBusy += r.HubBusyPerNode[i]
	}
	r.RouterQueuedPerRouter = make([]sim.Time, len(m.routers))
	for i := range m.routers {
		r.RouterQueuedPerRouter[i] = m.routers[i].Queued()
		r.RouterQueued += r.RouterQueuedPerRouter[i]
	}
	if len(m.metas) > 0 {
		r.MetaQueuedPerMeta = make([]sim.Time, len(m.metas))
		for i := range m.metas {
			r.MetaQueuedPerMeta[i] = m.metas[i].Queued()
			r.MetaQueued += r.MetaQueuedPerMeta[i]
		}
	}
	if m.migrator != nil {
		r.Migrations = m.migrator.Migrations
	}
	r.Trace = m.tracer
	if m.sampler != nil {
		// Close the series with an end-of-run sample so the final state is
		// always observable even when the run ends mid-interval.
		m.sampler.RecordFinal(m.machineSample(r.Elapsed))
		r.Metrics = m.sampler
	}
	return r
}

// spill returns desired, or the next node with page capacity when desired
// is full (NodeMemBytes bound).
func (m *Machine) spill(desired int) int {
	if m.maxNodePg == 0 || m.nodePages[desired] < m.maxNodePg {
		return desired
	}
	for off := 1; off < m.numNodes; off++ {
		n := (desired + off) % m.numNodes
		if m.nodePages[n] < m.maxNodePg {
			return n
		}
	}
	return desired // machine totally full: overload rather than fail
}

// homeOf resolves (and if needed assigns) the home node of a page with a
// single page-table lookup.
func (m *Machine) homeOf(page uint64, touchNode int) int {
	h, fresh := m.pages.Resolve(page, touchNode, m.placeFn)
	if fresh {
		m.nodePages[h]++
	}
	return h
}

// routerOfNode returns the router a node hangs off.
func (m *Machine) routerOfNode(node int) int { return node / m.cfg.NodesPerRouter }

// pageRemapped observes every move of an already-homed page — dynamic
// migration and overriding SetHome alike — via the page table's OnRemap
// hook. Each node's directory is authoritative for exactly the blocks it
// homes, so the page's directory records must follow its home; the tracer's
// per-page migration heat rides the same hook.
func (m *Machine) pageRemapped(page uint64, from, to int) {
	m.dirs[from].MovePage(page, m.dirs[to])
	if tr := m.tracer; tr != nil {
		tr.PageRemapped(page, from, to)
	}
}
