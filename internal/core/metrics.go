package core

import (
	"origin2000/internal/critpath"
	"origin2000/internal/metrics"
	"origin2000/internal/sim"
)

// Metrics glue: the machine owns an optional *metrics.Sampler (built when
// Config.Metrics.Enabled) and every clock-advancing site in the model calls
// tickMetrics, which is a nil check when sampling is off. The sampler only
// reads virtual clocks and cumulative counters — it never advances either —
// so enabling it perturbs simulated time by zero, and because the engine
// serializes processor goroutines deterministically, the recorded series
// are bit-identical across runs and GOMAXPROCS settings.

// Sampler exposes the metrics sampler (nil unless Config.Metrics.Enabled).
func (m *Machine) Sampler() *metrics.Sampler { return m.sampler }

// tickMetrics checks whether this processor's clock has crossed a sampling
// boundary and records the due samples. It is called after every operation
// that advances the virtual clock (miss, fetch&op, compute, sync wait).
func (p *Proc) tickMetrics() {
	s := p.m.sampler
	if s == nil {
		return
	}
	if now := p.sp.Now(); s.Due(p.ID(), now) {
		p.m.recordSamples(p, now)
	}
}

// recordSamples is the slow path of tickMetrics: emit the per-processor
// and/or machine-wide samples whose grid boundaries were crossed.
func (m *Machine) recordSamples(p *Proc, now sim.Time) {
	s := m.sampler
	if s.ProcDue(p.ID(), now) {
		s.RecordProc(p.ID(), m.procSample(p, now))
	}
	if s.MachineDue(now) {
		s.RecordMachine(m.machineSample(now))
	}
}

// procSample snapshots one processor's cumulative state.
func (m *Machine) procSample(p *Proc, now sim.Time) metrics.ProcSample {
	c := &p.sp.Counters
	return metrics.ProcSample{
		At:              now,
		Busy:            p.sp.Stat(sim.StatBusy),
		Memory:          p.sp.Stat(sim.StatMemory),
		Sync:            p.sp.Stat(sim.StatSync),
		LocalStall:      c.LocalStall,
		RemoteStall:     c.RemoteStall,
		ContentionStall: c.ContentionStall,
		SyncWait:        c.SyncWait,
		SyncOverhead:    c.SyncOverhead,
		Hits:            c.Hits,
		LocalMisses:     c.LocalMisses,
		RemoteClean:     c.RemoteClean,
		RemoteDirty:     c.RemoteDirty,
		Upgrades:        c.Upgrades,
	}
}

// machineSample snapshots the machine-wide state: aggregate breakdowns and
// counters over all processors, the directory state mix, and the per-node
// resource timelines.
func (m *Machine) machineSample(now sim.Time) metrics.MachineSample {
	ms := metrics.MachineSample{At: now}
	for _, q := range m.procs {
		sp := q.sp
		ms.Busy += sp.Stat(sim.StatBusy)
		ms.Memory += sp.Stat(sim.StatMemory)
		ms.Sync += sp.Stat(sim.StatSync)
		c := &sp.Counters
		ms.LocalMisses += c.LocalMisses
		ms.RemoteClean += c.RemoteClean
		ms.RemoteDirty += c.RemoteDirty
		ms.Upgrades += c.Upgrades
		ms.Invalidations += c.Invalidations
		ms.Writebacks += c.Writebacks
		ms.PageMigrations += c.PageMigrations
	}
	for _, d := range m.dirs {
		s, x := d.StateCounts()
		ms.DirShared += s
		ms.DirExclusive += x
	}
	ms.HubQueued = make([]sim.Time, len(m.hubs))
	ms.HubBusy = make([]sim.Time, len(m.hubs))
	ms.HubBacklog = make([]sim.Time, len(m.hubs))
	ms.MemQueued = make([]sim.Time, len(m.mems))
	ms.MemBacklog = make([]sim.Time, len(m.mems))
	for i := range m.hubs {
		ms.HubQueued[i] = m.hubs[i].Queued()
		ms.HubBusy[i] = m.hubs[i].Busy()
		ms.HubBacklog[i] = m.hubs[i].Backlog(now)
		ms.MemQueued[i] = m.mems[i].Queued()
		ms.MemBacklog[i] = m.mems[i].Backlog(now)
	}
	ms.RouterQueued = make([]sim.Time, len(m.routers))
	for i := range m.routers {
		ms.RouterQueued[i] = m.routers[i].Queued()
	}
	return ms
}

// MarkEpoch records a phase boundary — a global barrier release — with the
// tracer, the metrics sampler, and the critical-path recorder (no-op when
// all are off). The synchronization primitives call it exactly once per
// global release, so runs of the same program produce alignable epoch
// sequences.
func (p *Proc) MarkEpoch(at sim.Time) {
	if tr := p.m.tracer; tr != nil {
		tr.EpochMark(at)
	}
	if s := p.m.sampler; s != nil {
		s.EpochMark(at)
	}
	if r := p.m.critrec; r != nil {
		r.Release(at)
	}
}

// MarkArrival records this processor's arrival at a full-machine barrier
// with the critical-path recorder (no-op when Config.CritPath is off). The
// barrier protocol calls it for every arriver — before the release's
// MarkEpoch — from inside the serialized global section, so the recorder
// sees the complete arrival set, race-free, in virtual-time order.
func (p *Proc) MarkArrival() {
	r := p.m.critrec
	if r == nil {
		return
	}
	sp := p.sp
	c := &sp.Counters
	r.Arrive(p.ID(), critpath.Snap{
		At:           sp.Now(),
		Busy:         sp.Stat(sim.StatBusy),
		Memory:       sp.Stat(sim.StatMemory),
		Sync:         sp.Stat(sim.StatSync),
		SyncWait:     c.SyncWait,
		SyncOverhead: c.SyncOverhead,
		Contention:   c.ContentionStall,
		LocalStall:   c.LocalStall,
		RemoteStall:  c.RemoteStall,
	})
}
