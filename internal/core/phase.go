package core

import (
	"sort"

	"origin2000/internal/perf"
	"origin2000/internal/sim"
)

// Phase accounting: applications label their computational phases
// (tree-build, force calculation, transpose, ...) and the machine
// attributes each processor's Busy/Memory/Sync deltas to the active label.
// This reproduces what the paper did with pixie/prof — locating the
// routine a bottleneck lives in — as a first-class machine feature.

// phaseState tracks one processor's attribution. Each processor accumulates
// into its own totals map so SetPhase never touches shared state — the
// parallel engine may run processors of different shards concurrently inside
// a window — and PhaseBreakdowns merges the per-processor maps in processor
// order (integer sums, so the merge is order-insensitive anyway).
type phaseState struct {
	name string
	snap perf.Breakdown
	acc  map[string]*perf.Breakdown
}

func (p *Proc) snapshot() perf.Breakdown {
	return perf.Breakdown{
		Busy:   p.sp.Stat(sim.StatBusy),
		Memory: p.sp.Stat(sim.StatMemory),
		Sync:   p.sp.Stat(sim.StatSync),
	}
}

// SetPhase labels the work this processor does from now on. The time since
// the previous SetPhase is attributed to the previous label. An empty name
// ends attribution.
func (p *Proc) SetPhase(name string) {
	now := p.snapshot()
	acc := p.phase.acc
	if p.phase.name != "" {
		if acc == nil {
			acc = make(map[string]*perf.Breakdown)
		}
		b, ok := acc[p.phase.name]
		if !ok {
			b = &perf.Breakdown{}
			acc[p.phase.name] = b
		}
		b.Busy += now.Busy - p.phase.snap.Busy
		b.Memory += now.Memory - p.phase.snap.Memory
		b.Sync += now.Sync - p.phase.snap.Sync
	}
	p.phase = phaseState{name: name, snap: now, acc: acc}
}

// PhaseBreakdowns returns the per-phase time totals accumulated by
// SetPhase, summed over processors, in descending total order.
func (m *Machine) PhaseBreakdowns() []PhaseBreakdown {
	merged := map[string]*perf.Breakdown{}
	for _, p := range m.procs {
		for name, b := range p.phase.acc {
			t, ok := merged[name]
			if !ok {
				t = &perf.Breakdown{}
				merged[name] = t
			}
			t.Busy += b.Busy
			t.Memory += b.Memory
			t.Sync += b.Sync
		}
	}
	out := make([]PhaseBreakdown, 0, len(merged))
	for name, b := range merged {
		out = append(out, PhaseBreakdown{Name: name, Breakdown: *b})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total() != out[j].Total() {
			return out[i].Total() > out[j].Total()
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// PhaseBreakdown is the cross-processor time total of one labeled phase.
type PhaseBreakdown struct {
	Name string
	perf.Breakdown
}
