package core

import (
	"origin2000/internal/cache"
	"origin2000/internal/sim"
)

// homeTLBSize is the number of entries in the per-processor page->home
// memo (direct-mapped, power of two).
const homeTLBSize = 64

// homeTLBEntry caches one page->home translation; it is valid while its
// generation matches the page table's (migration and manual re-placement
// bump the generation, invalidating every cached translation at once).
type homeTLBEntry struct {
	page uint64
	home int32
	gen  uint32
}

// Proc is the application-facing view of one logical processor. Programs
// perform real Go computation and call these methods to charge virtual
// time: Compute for busy work, Read/Write for shared-memory references
// (which go through the simulated cache and coherence protocol), and the
// synchronization entry points used by internal/synchro.
type Proc struct {
	m      *Machine
	sp     *sim.Proc
	node   int // physical node (after process->processor mapping)
	router int
	cache  *cache.Cache

	prefetch  map[uint64]sim.Time // block -> fill completion time
	prefetchQ []uint64            // FIFO of outstanding prefetches
	phase     phaseState          // active phase label for attribution

	homeTLB [homeTLBSize]homeTLBEntry // page->home fast path

	wakeScratch []*sim.Proc // reused by WakeAllAt
}

// homeOf resolves a page's home node, consulting the processor's TLB memo
// before the machine-wide page table: a repeat miss to the same page skips
// the table entirely.
func (p *Proc) homeOf(page uint64) int {
	e := &p.homeTLB[page&(homeTLBSize-1)]
	gen := p.m.pages.Gen()
	if e.page == page && e.gen == gen {
		return int(e.home)
	}
	h := p.m.homeOf(page, p.node)
	*e = homeTLBEntry{page: page, home: int32(h), gen: gen}
	return h
}

// peekHome resolves a page's home node without placing it: a TLB hit (or a
// table hit, which refills the TLB) reports the placed home; an unplaced
// page reports ok=false. The shard classifier uses it on every miss, so the
// common repeat-page case must stay off the shared table.
func (p *Proc) peekHome(page uint64) (int, bool) {
	e := &p.homeTLB[page&(homeTLBSize-1)]
	gen := p.m.pages.Gen()
	if e.page == page && e.gen == gen {
		return int(e.home), true
	}
	h, ok := p.m.pages.Lookup(page)
	if ok {
		*e = homeTLBEntry{page: page, home: int32(h), gen: gen}
	}
	return h, ok
}

// ID returns the logical process id in [0, NumProcs).
func (p *Proc) ID() int { return p.sp.ID() }

// NumProcs returns the machine's processor count.
func (p *Proc) NumProcs() int { return p.m.cfg.Procs }

// Node returns the physical node (Hub) this process runs on.
func (p *Proc) Node() int { return p.node }

// Machine returns the machine this processor belongs to.
func (p *Proc) Machine() *Machine { return p.m }

// Now returns the processor's virtual time.
func (p *Proc) Now() sim.Time { return p.sp.Now() }

// Stats exposes the processor's event counters.
func (p *Proc) Stats() *sim.Counters { return &p.sp.Counters }

// Breakdown returns the processor's (busy, memory, sync) times.
func (p *Proc) Breakdown() (busy, memory, sync sim.Time) {
	return p.sp.Stat(sim.StatBusy), p.sp.Stat(sim.StatMemory), p.sp.Stat(sim.StatSync)
}

// Compute charges d of useful computation.
func (p *Proc) Compute(d sim.Time) {
	p.sp.Advance(d, sim.StatBusy)
	p.tickMetrics()
}

// ComputeCycles charges n processor cycles of useful computation.
func (p *Proc) ComputeCycles(n int64) {
	p.sp.Advance(p.m.Cycles(n), sim.StatBusy)
	p.tickMetrics()
}

// Yield gives the scheduler a chance to run another processor; long
// stretches of Go computation with no simulated references should call it.
func (p *Proc) Yield() { p.sp.Yield() }

// Read references addr (one load; the whole 128-byte block is fetched on a
// miss). Stall time is charged to the Memory bucket.
func (p *Proc) Read(addr uint64) { p.access(addr, false, sim.StatMemory) }

// Write references addr for writing, obtaining exclusive ownership.
func (p *Proc) Write(addr uint64) { p.access(addr, true, sim.StatMemory) }

// ReadBytes reads the n bytes starting at addr, touching each block once.
func (p *Proc) ReadBytes(addr uint64, n int) {
	for b := addr >> blockShift; b <= (addr+uint64(n)-1)>>blockShift; b++ {
		p.access(b<<blockShift, false, sim.StatMemory)
	}
}

// WriteBytes writes the n bytes starting at addr, touching each block once.
func (p *Proc) WriteBytes(addr uint64, n int) {
	for b := addr >> blockShift; b <= (addr+uint64(n)-1)>>blockShift; b++ {
		p.access(b<<blockShift, true, sim.StatMemory)
	}
}

// SyncRead is Read with the stall charged to the Sync bucket; the
// synchronization primitives use it for their own cache-line traffic.
func (p *Proc) SyncRead(addr uint64) { p.access(addr, false, sim.StatSync) }

// SyncWrite is Write charged to the Sync bucket.
func (p *Proc) SyncWrite(addr uint64) { p.access(addr, true, sim.StatSync) }

// FetchOp performs an uncached at-memory fetch&op on addr (the Origin's
// synchronization primitive, Section 6.3), charged to the Sync bucket.
func (p *Proc) FetchOp(addr uint64) { p.fetchOp(addr, sim.StatSync) }

// Block suspends the processor until another calls WakeAt (synchronization
// primitives only).
func (p *Proc) Block() { p.sp.Block() }

// WakeAt resumes q with its clock at least t; the waiting span is charged
// to q's Sync bucket by the primitive that coordinated the wait. Waking a
// processor of another shard is a cross-shard interaction, so WakeAt first
// enters the window's serialized commit phase (a no-op when the caller is
// already committing, which every synchro primitive is after its own
// GlobalSection).
func (p *Proc) WakeAt(q *Proc, t sim.Time) {
	p.sp.AwaitGlobal()
	p.sp.Wake(q.sp, t)
	p.sp.EndGlobal()
}

// WakeAllAt resumes every processor in qs with its clock at least t: the
// batched form of WakeAt for fan-out releases (a barrier's last arriver, a
// broadcast wakeup). It is schedule-identical to calling WakeAt for each q
// — the run queues order by (clock, id), so arrival order never matters —
// but pays one commit-phase entry and one bulk heap rebuild instead of
// len(qs) ordered inserts.
func (p *Proc) WakeAllAt(qs []*Proc, t sim.Time) {
	if len(qs) == 0 {
		return
	}
	sps := p.wakeScratch[:0]
	for _, q := range qs {
		sps = append(sps, q.sp)
	}
	p.wakeScratch = sps[:0]
	p.sp.AwaitGlobal()
	p.sp.WakeBatch(sps, t)
	p.sp.EndGlobal()
}

// ChargeSync records d of synchronization time without moving the clock
// (used after Block/WakeAt to attribute waiting time).
func (p *Proc) ChargeSync(d sim.Time) {
	p.sp.Charge(d, sim.StatSync)
	p.tickMetrics()
}

// SyncAdvanceTo moves the clock forward to t (no-op if already past),
// charging the elapsed span to the Sync bucket.
func (p *Proc) SyncAdvanceTo(t sim.Time) {
	p.sp.AdvanceTo(t, sim.StatSync)
	p.tickMetrics()
}

// CacheContains reports whether addr's block is in this processor's cache
// (diagnostics and tests).
func (p *Proc) CacheContains(addr uint64) bool {
	return p.cache.Peek(addr>>blockShift) != cache.Invalid
}
