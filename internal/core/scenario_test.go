package core

import (
	"strings"
	"testing"

	"origin2000/internal/scenario"
)

// TestValidateRejectsOverCapacityProcs pins the loud capacity check: a
// processor count the directory format's backing store cannot represent
// must fail Validate with the capacity named, and New must refuse to build
// the machine rather than silently corrupt sharer state.
func TestValidateRejectsOverCapacityProcs(t *testing.T) {
	cfg := Origin2000(4)
	cfg.Procs = 200
	err := cfg.Validate()
	if err == nil {
		t.Fatal("Validate accepted 200 processors against a 128-capacity format")
	}
	if !strings.Contains(err.Error(), "capacity of 128") {
		t.Fatalf("error does not name the capacity: %v", err)
	}

	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("New built a machine with 200 processors")
		}
		msg, ok := p.(string)
		if !ok || !strings.Contains(msg, "capacity of 128") {
			t.Fatalf("panic does not name the capacity: %v", p)
		}
	}()
	New(cfg)
}

// TestValidateAcceptsEveryPresetAtFullScale is the positive side: every
// named scenario must build a 128-processor machine, the paper's largest.
func TestValidateAcceptsEveryPresetAtFullScale(t *testing.T) {
	for _, name := range scenario.Names() {
		spec, ok := scenario.Named(name)
		if !ok {
			t.Fatalf("Names() listed unknown scenario %q", name)
		}
		cfg := Origin2000(128)
		cfg.Scenario = &spec
		if err := cfg.Validate(); err != nil {
			t.Errorf("scenario %s rejects 128 processors: %v", name, err)
			continue
		}
		m := New(cfg)
		if m.NumProcs() != 128 {
			t.Errorf("scenario %s built %d processors, want 128", name, m.NumProcs())
		}
	}
}
