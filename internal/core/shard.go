package core

import (
	"origin2000/internal/directory"
	"origin2000/internal/mempolicy"
)

// Sharding glue for the conservatively-parallel engine (DESIGN.md §11).
//
// The machine is sharded by router: processor p belongs to shard p.router,
// and every per-node structure — Hub and memory resources, the home
// directory — belongs to the shard of its node's router. Inside a window's
// phase 1, shards execute concurrently but each shard's state is touched
// only by its own processors; any operation that would reach another
// shard's state instead suspends (sim.Proc.AwaitGlobal) and runs in the
// window's serialized commit phase. The classifier below decides, before a
// transaction starts, whether it can stay inside the issuing processor's
// shard. It must err on the side of "cross-shard" — a false "local" would
// race — and it must depend only on simulation state, never on whether
// observers (checker, tracer, sampler) are attached, so the schedule is
// identical with and without them.

// setupShards wires the engine's shard map (shard = router) and picks the
// host-worker count from Config.Engine/Workers. The checker and the metrics
// sampler read cross-shard state at event time from their observer hooks,
// so enabling either forces one worker; the schedule — and therefore every
// result — is unchanged by the worker count, only wall-clock speed is.
func (m *Machine) setupShards() {
	shardOf := make([]int, m.cfg.Procs)
	for i, p := range m.procs {
		shardOf[i] = p.router
	}
	m.eng.SetShards(shardOf, m.numRouters)
	if m.cfg.WindowPolicy == "adaptive" {
		m.eng.SetAdaptiveWindow(m.cfg.WindowMax)
	}
	if tr := m.tracer; tr != nil {
		tr.SetShards(shardOf, m.numRouters)
	}
	workers, _ := EffectiveWorkers(&m.cfg)
	m.eng.SetWorkers(workers)
}

// shardLocal reports whether a demand access to block (a miss, or an
// upgrade when upgrade is true) can run entirely inside p's shard:
//
//   - the page must already be placed (a first touch assigns a home in the
//     shared page table) with its home node on p's router;
//   - dynamic migration must not be able to fire (the migrator's counters
//     are shared), which rules out any remote miss when migration is on;
//   - the directory entry must not fan out of the shard: a dirty owner is
//     always intervened on, and a write invalidates every sharer, so those
//     caches must all live on p's router;
//   - the line the fill will evict (none for an upgrade) must write back
//     through its own home directory, so the predicted victim's home must
//     be placed in-shard too.
//
// When home is on p's router the request route is Route(r, r) = zero hops
// and no metarouter, so a "local" transaction touches only in-shard Hubs,
// memories and routers[p.router].
func (p *Proc) shardLocal(block, page uint64, write, upgrade bool) bool {
	m := p.m
	home, ok := p.peekHome(page)
	if !ok {
		return false
	}
	if m.numRouters == 1 && m.migrator == nil {
		// Single-router machine without migration: every placed home, every
		// sharer, and every victim home is on this router, so the remaining
		// probes below are tautologies. Same decisions, no directory or
		// victim probe.
		return true
	}
	if m.routerOfNode(home) != p.router {
		return false
	}
	if !upgrade && m.migrator != nil && home != p.node {
		return false
	}
	if !p.entryInShard(m.dirs[home].Entry(block), write) {
		return false
	}
	if upgrade {
		return true
	}
	return p.victimInShard(block)
}

// entryInShard reports whether the remote cache-state changes implied by a
// directory transition on e stay on p's router.
func (p *Proc) entryInShard(e directory.Entry, write bool) bool {
	m := p.m
	switch e.State {
	case directory.Exclusive:
		if m.procs[e.Owner].router != p.router {
			return false
		}
	case directory.SharedState:
		if write {
			in := true
			e.Sharers.ForEach(func(q int) {
				if m.procs[q].router != p.router {
					in = false
				}
			})
			if !in {
				return false
			}
		}
	}
	return true
}

// victimInShard reports whether the line a fill of block would displace —
// if any — has a placed home on p's router, so the eviction's writeback or
// replacement hint stays in-shard.
func (p *Proc) victimInShard(block uint64) bool {
	v, evicted := p.cache.PeekVictim(block)
	if !evicted {
		return true
	}
	vpage := v.Block >> (mempolicy.PageShift - blockShift)
	vhome, ok := p.peekHome(vpage)
	return ok && p.m.routerOfNode(vhome) == p.router
}

// fetchOpInShard reports whether an at-memory fetch&op on page stays inside
// p's shard (it touches only the route to the home memory).
func (p *Proc) fetchOpInShard(page uint64) bool {
	home, ok := p.peekHome(page)
	return ok && p.m.routerOfNode(home) == p.router
}

// GlobalSection suspends the processor until the window's serialized commit
// phase. The synchronization primitives call it before touching their
// shared Go state (barrier arrival lists, lock queues, task pools), which
// both serializes that state and models the paper's observation that
// synchronization is inherently cross-node traffic. The section stays open
// — the processor is scheduled only on the serial commit chain, even
// across window edges and Block/Wake — until the matching EndGlobal, so a
// primitive's whole protocol is one critical section no matter how many
// windows it spans. Sections nest: the simulated traffic a primitive
// issues inside one may open (and close) its own.
func (p *Proc) GlobalSection() { p.sp.AwaitGlobal() }

// EndGlobal closes the section opened by the matching GlobalSection.
func (p *Proc) EndGlobal() { p.sp.EndGlobal() }

// multiDir aggregates the per-node directories into the single view the
// checker audits: blocks route to the directory of their home node through
// the page table, and iteration walks nodes in order (each directory's own
// iteration is sorted, so the whole walk is deterministic).
type multiDir struct {
	m *Machine
}

// dirHome returns the home node whose directory holds block's entry. A
// block whose page was never placed has no entry anywhere; -1 says so.
func (v *multiDir) dirHome(block uint64) int {
	home, ok := v.m.pages.Lookup(block >> (mempolicy.PageShift - blockShift))
	if !ok {
		return -1
	}
	return home
}

func (v *multiDir) Entry(block uint64) directory.Entry {
	home := v.dirHome(block)
	if home < 0 {
		return directory.Entry{}
	}
	return v.m.dirs[home].Entry(block)
}

func (v *multiDir) ForEach(fn func(block uint64, e directory.Entry)) {
	for _, d := range v.m.dirs {
		d.ForEach(fn)
	}
}

func (v *multiDir) Check() error {
	for _, d := range v.m.dirs {
		if err := d.Check(); err != nil {
			return err
		}
	}
	return nil
}
