package core

import (
	"origin2000/internal/memclass"
	"origin2000/internal/sharing"
)

// Sharing-classifier glue: the machine owns an optional *sharing.Observer
// (built when Config.Sharing.Enabled) and every observation site in the
// access path is gated on it with a nil check, exactly like the online
// checker. The observer only reads the access stream — it never touches
// virtual clocks — so enabling it perturbs simulated time by zero. Like the
// checker and the metrics sampler it forces one host worker (see
// EffectiveWorkers): it captures events into one log whose order must match
// the coherence-event order, and the schedule is identical at any worker
// count, so the forced run is still the run.

// The classifier's word footprint must tile a coherence block exactly.
var _ [sharing.WordsPerBlock * sharing.WordBytes]byte = [BlockBytes]byte{}

// SharingObserver exposes the sharing classifier (nil unless
// Config.Sharing.Enabled).
func (m *Machine) SharingObserver() *sharing.Observer { return m.sharing }

// SharingReport folds the classifier's state into a report with the top n
// blocks and pages per table (nil when sharing is off). Reporting first
// folds the captured event log, so repeated or interleaved calls are
// deterministic: each sees every event recorded before it.
func (m *Machine) SharingReport(top int) *sharing.Report {
	if m.sharing == nil {
		return nil
	}
	return m.sharing.Report(top)
}

// sharingHit records a cache hit (no-op when sharing is off).
func (p *Proc) sharingHit(block, addr uint64, write bool) {
	if sh := p.m.sharing; sh != nil {
		sh.OnHit(p.ID(), block, sharing.WordOf(addr), write)
	}
}

// sharingMiss records a classified demand miss with its home attribution
// and invalidation fanout (no-op when sharing is off).
func (p *Proc) sharingMiss(block, addr uint64, write bool, class memclass.Class, home int, fanout int) {
	if sh := p.m.sharing; sh != nil {
		sh.OnMiss(p.ID(), block, sharing.WordOf(addr), write, class, home, pageOfBlock(block), fanout)
	}
}

// sharingUpgrade records a shared-to-exclusive upgrade (no-op when sharing
// is off).
func (p *Proc) sharingUpgrade(block, addr uint64, fanout int) {
	if sh := p.m.sharing; sh != nil {
		sh.OnUpgrade(p.ID(), block, sharing.WordOf(addr), fanout)
	}
}
