package core

import (
	"origin2000/internal/mempolicy"
	"origin2000/internal/sim"
	"origin2000/internal/trace"
)

// Tracing glue: the machine owns an optional *trace.Tracer (built when
// Config.Trace.Enabled) and every observation site in the model is gated on
// it with a nil check, exactly like the online checker. The tracer only
// reads virtual clocks — it never advances them — so enabling it perturbs
// simulated time by zero.

// pageOfBlock returns the 16 KB page containing a 128-byte block.
func pageOfBlock(block uint64) uint64 { return block >> (mempolicy.PageShift - blockShift) }

// attachTracer installs the tracer's observation taps on the machine's
// shared resources. Called once from New. Each observer carries its
// resource's shard (= router) so per-shard queue histograms stay
// race-free under the parallel engine; metarouters are only reached by
// cross-module — and therefore commit-phase — traffic, so they share
// bucket 0.
func (m *Machine) attachTracer() {
	tr := m.tracer
	for i := range m.hubs {
		m.hubs[i].Observe = tr.ResourceObserver(trace.QHub, i, m.routerOfNode(i))
		m.mems[i].Observe = tr.ResourceObserver(trace.QMem, i, m.routerOfNode(i))
	}
	for i := range m.routers {
		m.routers[i].Observe = tr.ResourceObserver(trace.QRouter, i, i)
	}
	for i := range m.metas {
		m.metas[i].Observe = tr.ResourceObserver(trace.QMeta, i, 0)
	}
}

// Tracer exposes the event tracer (nil unless Config.Trace.Enabled).
func (m *Machine) Tracer() *trace.Tracer { return m.tracer }

// TraceRegisterSync names a synchronization object for wait attribution
// (no-op when tracing is off). The synchronization primitives call it at
// construction with their identifying address and a kind label.
func (m *Machine) TraceRegisterSync(obj uint64, label string) {
	if tr := m.tracer; tr != nil {
		tr.RegisterSync(obj, label)
	}
}

// TraceSyncWait records one blocking wait episode at a sync object:
// start is the wait's beginning in virtual time, span its length
// (no-op when tracing is off).
func (p *Proc) TraceSyncWait(obj uint64, start, span sim.Time) {
	if tr := p.m.tracer; tr != nil {
		tr.SyncWait(p.ID(), obj, start, span)
	}
}

// TraceSyncAcquire records one lock acquisition with its request-to-grant
// wait span, zero when uncontended (no-op when tracing is off).
func (p *Proc) TraceSyncAcquire(obj uint64, start, span sim.Time) {
	if tr := p.m.tracer; tr != nil {
		tr.SyncAcquire(p.ID(), obj, start, span)
	}
}
