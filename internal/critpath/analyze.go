package critpath

import (
	"fmt"
	"sort"

	"origin2000/internal/sim"
)

// Segment is one tile of the critical path: the span between two successive
// barrier releases (or run start / run end), carried by the processor that
// bounded it, decomposed exactly.
type Segment struct {
	Epoch int  // epoch index (the final open segment gets len(Epochs))
	Final bool // the open segment after the last barrier release
	Proc  int
	Start sim.Time // previous release (0 for the first segment)
	End   sim.Time // this release, or Elapsed for the final segment

	// The exact decomposition: components sum to End-Start, with Residual
	// the clock advance no bucket accounts for.
	Busy     sim.Time
	Memory   sim.Time // memory stall net of queueing
	Queueing sim.Time // contention (queueing) portion of memory stall
	Sync     sim.Time // sync time net of the wait prefix charged to the previous segment
	Release  sim.Time // barrier-release protocol (last arrival to release stamp)
	Residual sim.Time

	// Informational sync split over the segment's raw delta (the buckets
	// overlap the exact components; they are not a partition).
	SyncWait     sim.Time
	SyncOverhead sim.Time
}

// Span is the segment's length.
func (s *Segment) Span() sim.Time { return s.End - s.Start }

// Path is the analyzed critical path: segments tiling [0, Elapsed] and the
// exact component totals.
type Path struct {
	Elapsed  sim.Time
	Segments []Segment

	Busy     sim.Time
	Memory   sim.Time
	Queueing sim.Time
	Sync     sim.Time
	Release  sim.Time
	Residual sim.Time

	SyncWait     sim.Time // informational
	SyncOverhead sim.Time // informational
}

func sub(a, b Snap) Snap {
	return Snap{
		At:           a.At - b.At,
		Busy:         a.Busy - b.Busy,
		Memory:       a.Memory - b.Memory,
		Sync:         a.Sync - b.Sync,
		SyncWait:     a.SyncWait - b.SyncWait,
		SyncOverhead: a.SyncOverhead - b.SyncOverhead,
		Contention:   a.Contention - b.Contention,
		LocalStall:   a.LocalStall - b.LocalStall,
		RemoteStall:  a.RemoteStall - b.RemoteStall,
	}
}

// segment decomposes one tile [start, end] carried by proc, whose snapshots
// at its bounding arrivals are prev (previous barrier arrival; zero Snap at
// run start) and arr (this segment's closing arrival; the final snapshot
// for the last segment). release is the barrier-release tail (zero for the
// final segment).
func segment(epoch, proc int, start, end sim.Time, prev, arr Snap, release sim.Time) Segment {
	d := sub(arr, prev)
	// The processor's wait from its previous arrival to the previous
	// release was charged to sync but belongs to the previous segment
	// (it ended at start); subtract it so segments do not double count.
	prefix := start - prev.At
	s := Segment{
		Epoch: epoch, Proc: proc, Start: start, End: end,
		Busy:         d.Busy,
		Memory:       d.Memory - d.Contention,
		Queueing:     d.Contention,
		Sync:         d.Sync - prefix,
		Release:      release,
		SyncWait:     d.SyncWait,
		SyncOverhead: d.SyncOverhead,
	}
	s.Residual = (end - start) - (s.Busy + s.Memory + s.Queueing + s.Sync + s.Release)
	return s
}

// Analyze builds the critical path from a run's recorded summary, the
// per-processor final snapshots (cumulative stats at end of run, with At
// the processor's accounted total), the overall critical processor
// (Artifact.CriticalProc: largest accounted time, ties to lowest id), and
// the elapsed virtual time. The result is exact: component totals sum to
// elapsed.
func Analyze(s *Summary, final []Snap, criticalProc int, elapsed sim.Time) *Path {
	p := &Path{Elapsed: elapsed}
	var at sim.Time // previous release
	for i, e := range s.Epochs {
		seg := segment(i, e.Proc, at, e.Release, e.Prev, e.Arr, e.Release-e.Arr.At)
		p.Segments = append(p.Segments, seg)
		at = e.Release
	}
	// Final open segment: from the last release to the end of the run,
	// carried by the overall critical processor.
	if criticalProc >= 0 && criticalProc < len(final) {
		var prev Snap
		if criticalProc < len(s.Last) {
			prev = s.Last[criticalProc]
		}
		seg := segment(len(s.Epochs), criticalProc, at, elapsed, prev, final[criticalProc], 0)
		seg.Final = true
		p.Segments = append(p.Segments, seg)
	}
	for _, seg := range p.Segments {
		p.Busy += seg.Busy
		p.Memory += seg.Memory
		p.Queueing += seg.Queueing
		p.Sync += seg.Sync
		p.Release += seg.Release
		p.Residual += seg.Residual
		p.SyncWait += seg.SyncWait
		p.SyncOverhead += seg.SyncOverhead
	}
	return p
}

// Total sums the exact components; it equals Elapsed whenever the segment
// tiling is complete (always, when Analyze received the full record).
func (p *Path) Total() sim.Time {
	return p.Busy + p.Memory + p.Queueing + p.Sync + p.Release + p.Residual
}

// components lists the exact components in fixed report order.
func (p *Path) components() []struct {
	Name string
	T    sim.Time
} {
	return []struct {
		Name string
		T    sim.Time
	}{
		{"busy", p.Busy},
		{"memory stall", p.Memory},
		{"queueing (contention)", p.Queueing},
		{"sync wait", p.Sync},
		{"barrier release", p.Release},
		{"residual", p.Residual},
	}
}

// Dominant names the component bounding the run: the largest exact
// component (first in report order on ties). This is the analyzer's
// one-line verdict — "this run is memory-bound", not a guess.
func (p *Path) Dominant() string {
	comps := p.components()
	best := 0
	for i, c := range comps {
		if c.T > comps[best].T {
			best = i
		}
	}
	return comps[best].Name
}

func ms(t sim.Time) string { return fmt.Sprintf("%.3f", t.Milliseconds()) }

func (p *Path) share(t sim.Time) string {
	if p.Elapsed == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(t)/float64(p.Elapsed))
}

// ComponentRows renders the exact decomposition as table rows (header
// first), closing with the total row that equals the elapsed time.
func (p *Path) ComponentRows() [][]string {
	rows := [][]string{{"critical-path component", "time (ms)", "share"}}
	for _, c := range p.components() {
		rows = append(rows, []string{c.Name, ms(c.T), p.share(c.T)})
	}
	rows = append(rows, []string{"TOTAL (= elapsed)", ms(p.Total()), p.share(p.Total())})
	return rows
}

// SegmentRows renders the top-n segments by span (all when n <= 0), in
// path order: which epochs — and which processors — bound the run.
func (p *Path) SegmentRows(n int) [][]string {
	rows := [][]string{{"segment", "proc", "span (ms)", "busy", "memory", "queueing", "sync", "release", "resid"}}
	idx := make([]int, len(p.Segments))
	for i := range idx {
		idx[i] = i
	}
	if n > 0 && len(idx) > n {
		sort.Slice(idx, func(i, j int) bool {
			si, sj := p.Segments[idx[i]].Span(), p.Segments[idx[j]].Span()
			if si != sj {
				return si > sj
			}
			return idx[i] < idx[j]
		})
		idx = idx[:n]
		sort.Ints(idx)
	}
	for _, i := range idx {
		s := p.Segments[i]
		name := fmt.Sprintf("epoch %d", s.Epoch)
		if s.Final {
			name = "final"
		}
		rows = append(rows, []string{
			name, fmt.Sprint(s.Proc), ms(s.Span()),
			ms(s.Busy), ms(s.Memory), ms(s.Queueing), ms(s.Sync), ms(s.Release), ms(s.Residual),
		})
	}
	return rows
}
