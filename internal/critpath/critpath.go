// Package critpath extracts and decomposes the virtual-time critical path
// of a run: the chain of processors that bounds the elapsed virtual time,
// and where that chain's time went.
//
// The machine's full-machine barriers cut a run into epochs. Within an
// epoch the elapsed time is bounded by the last processor to arrive at the
// closing barrier — every other processor waits for it — so the critical
// path is: epoch 0's last arriver from time zero to its arrival, the
// barrier-release protocol to the release stamp, then epoch 1's last
// arriver from that release to its arrival, and so on; after the last
// release, the overall critical processor (largest accounted time, the same
// choice metrics.Diff makes) carries the path to the end of the run.
//
// Each segment is decomposed exactly — busy, memory stall net of queueing,
// queueing (contention stall), sync wait net of the previous epoch's wait
// prefix, barrier release, residual — with the same exactness contract as
// metrics.Diff: the components of a segment sum to the segment's span, and
// the segments tile [0, Elapsed], so the full decomposition sums to the
// elapsed virtual time with the residual capturing exactly the clock
// advance no bucket accounts for (zero when accounting is complete).
//
// Everything here is virtual-time data recorded inside the serialized
// barrier protocol, so the record — like every other observable — is
// bit-identical at any worker count and across engines.
package critpath

import "origin2000/internal/sim"

// Snap is one processor's cumulative accounting snapshot at a point in
// virtual time (a barrier arrival, or end of run). At is the processor's
// clock; the buckets are its cumulative charged time and stall splits.
type Snap struct {
	At           sim.Time `json:"at"`
	Busy         sim.Time `json:"busy"`
	Memory       sim.Time `json:"memory"`
	Sync         sim.Time `json:"sync"`
	SyncWait     sim.Time `json:"sync_wait"`
	SyncOverhead sim.Time `json:"sync_overhead"`
	Contention   sim.Time `json:"contention"`
	LocalStall   sim.Time `json:"local_stall"`
	RemoteStall  sim.Time `json:"remote_stall"`
}

// Epoch records one full-machine barrier: its release stamp, the critical
// (last-arriving) processor, and that processor's snapshots at this arrival
// and at its previous one (zero for the first epoch).
type Epoch struct {
	Release sim.Time `json:"release"`
	Proc    int      `json:"proc"`
	Prev    Snap     `json:"prev"`
	Arr     Snap     `json:"arr"`
}

// Summary is the recorded critical-path data of one run: the epoch chain
// plus every processor's snapshot at its last barrier arrival (the final
// open segment starts there). It serializes into the run artifact, so saved
// artifacts can be analyzed offline.
type Summary struct {
	Epochs []Epoch `json:"epochs"`
	Last   []Snap  `json:"last"`
}

// Recorder accumulates the critical-path record during a run. Arrive and
// Release are called from inside the serialized barrier protocol (commit
// chain), so the recorder needs no locks and perturbs nothing.
type Recorder struct {
	prev, last []Snap
	epochs     []Epoch
}

// NewRecorder creates a recorder for n processors.
func NewRecorder(n int) *Recorder {
	return &Recorder{prev: make([]Snap, n), last: make([]Snap, n)}
}

// Arrive records processor id's snapshot at a full-machine barrier arrival.
func (r *Recorder) Arrive(id int, s Snap) {
	r.prev[id] = r.last[id]
	r.last[id] = s
}

// Release closes the epoch at release stamp at: the critical processor is
// the one with the largest last-arrival clock (ties to the lowest id — the
// repo-wide deterministic tie-break).
func (r *Recorder) Release(at sim.Time) {
	crit := 0
	for i := 1; i < len(r.last); i++ {
		if r.last[i].At > r.last[crit].At {
			crit = i
		}
	}
	r.epochs = append(r.epochs, Epoch{
		Release: at,
		Proc:    crit,
		Prev:    r.prev[crit],
		Arr:     r.last[crit],
	})
}

// Summary snapshots the record for artifact embedding.
func (r *Recorder) Summary() *Summary {
	s := &Summary{
		Epochs: append([]Epoch(nil), r.epochs...),
		Last:   append([]Snap(nil), r.last...),
	}
	return s
}
