package critpath

import (
	"testing"

	"origin2000/internal/sim"
)

// record replays a hand-built two-processor run through the Recorder:
//
//	epoch 0: proc 0 arrives at 100 (proc 1 at 80), release at 105
//	epoch 1: proc 1 arrives at 200 (proc 0 at 190), release at 205
//	final:   run ends at 300, overall critical processor 0
//
// Every snapshot is chosen so each segment decomposes with zero residual,
// making the expected component totals checkable by hand.
func record() (*Summary, []Snap) {
	r := NewRecorder(2)
	// Epoch 0 arrivals: cumulative accounting at the first barrier.
	r.Arrive(0, Snap{At: 100, Busy: 60, Memory: 30, Sync: 10, Contention: 10})
	r.Arrive(1, Snap{At: 80, Busy: 50, Memory: 20, Sync: 10, Contention: 5})
	r.Release(105)
	// Epoch 1 arrivals. Proc 1's sync grew by 40: the 25 it waited from its
	// epoch-0 arrival (80) to the release (105) — the wait prefix the
	// analyzer must charge to the previous segment — plus 15 in-segment.
	r.Arrive(0, Snap{At: 190, Busy: 100, Memory: 50, Sync: 30, Contention: 15})
	r.Arrive(1, Snap{At: 200, Busy: 110, Memory: 40, Sync: 50, Contention: 13})
	r.Release(205)
	// End-of-run cumulative snapshots. Proc 0 carries the final segment:
	// its sync grew by 40 = 15 wait prefix (190 -> 205) + 25 in-segment.
	final := []Snap{
		{At: 300, Busy: 140, Memory: 80, Sync: 70, Contention: 25},
		{At: 280, Busy: 150, Memory: 60, Sync: 70, Contention: 20},
	}
	return r.Summary(), final
}

// TestAnalyzeExact pins the analyzer's exactness contract on the hand-built
// run: segments tile [0, Elapsed], each segment's components sum to its
// span with zero residual, and the totals match the hand computation.
func TestAnalyzeExact(t *testing.T) {
	sum, final := record()
	p := Analyze(sum, final, 0, 300)
	if len(p.Segments) != 3 {
		t.Fatalf("got %d segments, want 3 (two epochs + final)", len(p.Segments))
	}
	// The segments tile [0, Elapsed].
	var at sim.Time
	for i, s := range p.Segments {
		if s.Start != at {
			t.Errorf("segment %d starts at %v, previous ended at %v", i, s.Start, at)
		}
		at = s.End
		if got := s.Busy + s.Memory + s.Queueing + s.Sync + s.Release + s.Residual; got != s.Span() {
			t.Errorf("segment %d components sum to %v, span %v", i, got, s.Span())
		}
		if s.Residual != 0 {
			t.Errorf("segment %d residual = %v, want 0", i, s.Residual)
		}
	}
	if at != 300 {
		t.Errorf("segments end at %v, elapsed 300", at)
	}
	// Per-epoch critical processors: last arrival wins.
	if p.Segments[0].Proc != 0 || p.Segments[1].Proc != 1 || p.Segments[2].Proc != 0 {
		t.Errorf("segment procs = %d,%d,%d, want 0,1,0",
			p.Segments[0].Proc, p.Segments[1].Proc, p.Segments[2].Proc)
	}
	if p.Segments[2].Final != true || p.Segments[0].Final || p.Segments[1].Final {
		t.Errorf("Final flags wrong: %+v", p.Segments)
	}
	// Epoch 1's sync must be net of proc 1's 25-unit wait prefix.
	if p.Segments[1].Sync != 15 {
		t.Errorf("epoch-1 sync = %v, want 15 (40 raw - 25 wait prefix)", p.Segments[1].Sync)
	}
	// Hand-computed totals.
	want := Path{Busy: 160, Memory: 52, Queueing: 28, Sync: 50, Release: 10, Residual: 0}
	if p.Busy != want.Busy || p.Memory != want.Memory || p.Queueing != want.Queueing ||
		p.Sync != want.Sync || p.Release != want.Release || p.Residual != want.Residual {
		t.Errorf("totals {busy %v mem %v que %v sync %v rel %v resid %v}, want %+v",
			p.Busy, p.Memory, p.Queueing, p.Sync, p.Release, p.Residual, want)
	}
	if p.Total() != p.Elapsed {
		t.Errorf("Total() = %v != Elapsed %v", p.Total(), p.Elapsed)
	}
	if got := p.Dominant(); got != "busy" {
		t.Errorf("Dominant() = %q, want busy (160 of 300)", got)
	}
}

// TestReleaseTieBreak pins the deterministic tie-break: equal last-arrival
// clocks resolve to the lowest processor id.
func TestReleaseTieBreak(t *testing.T) {
	r := NewRecorder(3)
	r.Arrive(0, Snap{At: 50})
	r.Arrive(1, Snap{At: 50})
	r.Arrive(2, Snap{At: 40})
	r.Release(55)
	if s := r.Summary(); s.Epochs[0].Proc != 0 {
		t.Fatalf("tie resolved to proc %d, want 0", s.Epochs[0].Proc)
	}
}

// TestRecorderPrevTracking pins that an epoch carries the critical
// processor's snapshot pair (previous arrival, this arrival) — the pair the
// per-segment delta is computed from.
func TestRecorderPrevTracking(t *testing.T) {
	sum, _ := record()
	e1 := sum.Epochs[1]
	if e1.Proc != 1 {
		t.Fatalf("epoch 1 proc = %d, want 1", e1.Proc)
	}
	if e1.Prev.At != 80 || e1.Arr.At != 200 {
		t.Errorf("epoch 1 snapshots prev.At=%v arr.At=%v, want 80, 200", e1.Prev.At, e1.Arr.At)
	}
}

// TestDominantDisagrees pins that the verdict actually depends on the
// decomposition: a memory-heavy path and a sync-heavy path over the same
// span name different dominant components.
func TestDominantDisagrees(t *testing.T) {
	mem := &Path{Elapsed: 100, Busy: 20, Memory: 60, Sync: 20}
	lock := &Path{Elapsed: 100, Busy: 20, Memory: 20, Sync: 60}
	if m, l := mem.Dominant(), lock.Dominant(); m == l {
		t.Fatalf("both paths report %q dominant", m)
	} else if m != "memory stall" || l != "sync wait" {
		t.Errorf("Dominant() = %q, %q; want memory stall, sync wait", m, l)
	}
}

// TestRowsShapes pins the report-table contracts downstream formatting
// relies on: header-first, every row the same width, and the component
// table closing with the TOTAL row.
func TestRowsShapes(t *testing.T) {
	sum, final := record()
	p := Analyze(sum, final, 0, 300)
	comp := p.ComponentRows()
	if len(comp) != 8 { // header + 6 components + total
		t.Fatalf("ComponentRows: %d rows, want 8", len(comp))
	}
	for i, row := range comp {
		if len(row) != len(comp[0]) {
			t.Errorf("ComponentRows row %d width %d != header %d", i, len(row), len(comp[0]))
		}
	}
	if comp[len(comp)-1][0] != "TOTAL (= elapsed)" {
		t.Errorf("last component row = %v", comp[len(comp)-1])
	}
	segs := p.SegmentRows(2)
	if len(segs) != 3 { // header + top 2
		t.Fatalf("SegmentRows(2): %d rows, want 3", len(segs))
	}
}
