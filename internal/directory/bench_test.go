package directory

import "testing"

// BenchmarkReadTransition measures the directory's read-miss transition.
func BenchmarkReadTransition(b *testing.B) {
	d := New()
	for i := 0; i < b.N; i++ {
		d.Read(uint64(i%4096), i%128)
	}
}

// BenchmarkWriteWithSharers measures the invalidation fan-out path.
func BenchmarkWriteWithSharers(b *testing.B) {
	d := New()
	for s := 0; s < 16; s++ {
		d.Read(1, s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Write(1, 0)
		for s := 1; s < 16; s++ {
			d.Read(1, s)
		}
	}
}
