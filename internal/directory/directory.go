// Package directory implements full-bit-vector directory cache coherence in
// the style of the SGI Origin2000's Hub protocol. Each home node keeps one
// Directory tracking, per 128-byte block, whether the block is unowned,
// shared by a set of processors, or exclusively owned (dirty) by one.
//
// The directory is precise: caches notify it of evictions (the Origin uses
// replacement hints similarly), so invalidation fan-out matches the true
// sharer set. The machine model (internal/core) turns the transition
// results into latency and traffic.
package directory

import (
	"fmt"
	"math/bits"
)

// MaxProcs is the largest processor count a sharer set can track.
const MaxProcs = 128

// State is the directory's view of a block.
type State uint8

const (
	// Unowned means no cache holds the block; memory is the only copy.
	Unowned State = iota
	// SharedState means one or more caches hold read-only copies.
	SharedState
	// Exclusive means exactly one cache holds a dirty copy.
	Exclusive
)

func (s State) String() string {
	switch s {
	case Unowned:
		return "Unowned"
	case SharedState:
		return "Shared"
	case Exclusive:
		return "Exclusive"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Sharers is a bit vector over processor ids.
type Sharers [2]uint64

// Add inserts processor p.
func (s *Sharers) Add(p int) { s[p>>6] |= 1 << (uint(p) & 63) }

// Remove deletes processor p.
func (s *Sharers) Remove(p int) { s[p>>6] &^= 1 << (uint(p) & 63) }

// Contains reports whether processor p is present.
func (s *Sharers) Contains(p int) bool { return s[p>>6]&(1<<(uint(p)&63)) != 0 }

// Count reports the number of sharers.
func (s *Sharers) Count() int { return bits.OnesCount64(s[0]) + bits.OnesCount64(s[1]) }

// Clear empties the set.
func (s *Sharers) Clear() { s[0], s[1] = 0, 0 }

// ForEach calls fn for each processor in ascending order.
func (s *Sharers) ForEach(fn func(p int)) {
	for w := 0; w < 2; w++ {
		v := s[w]
		for v != 0 {
			b := bits.TrailingZeros64(v)
			fn(w*64 + b)
			v &^= 1 << uint(b)
		}
	}
}

// List returns the sharers in ascending order, appended to dst.
func (s *Sharers) List(dst []int) []int {
	s.ForEach(func(p int) { dst = append(dst, p) })
	return dst
}

// Entry is the directory record for one block.
type Entry struct {
	State   State
	Sharers Sharers
	Owner   int16 // valid when State == Exclusive
}

// Directory tracks every block homed at one node. The zero value is not
// usable; call New.
type Directory struct {
	entries map[uint64]Entry
}

// New creates an empty directory.
func New() *Directory {
	return &Directory{entries: make(map[uint64]Entry)}
}

// Entry returns the record for block (Unowned if never touched).
func (d *Directory) Entry(block uint64) Entry { return d.entries[block] }

// Blocks reports the number of blocks with directory state.
func (d *Directory) Blocks() int { return len(d.entries) }

// ReadResult describes how a read miss must be satisfied.
type ReadResult struct {
	// Dirty reports that a third-party cache owned the block; the home
	// forwards an intervention to Owner, which supplies the data
	// (a 3-hop "remote dirty" transaction) and downgrades to Shared.
	Dirty bool
	// Owner is the previous exclusive owner when Dirty.
	Owner int
}

// Read records a read miss by requester and returns how to satisfy it.
func (d *Directory) Read(block uint64, requester int) ReadResult {
	e := d.entries[block]
	switch e.State {
	case Unowned:
		e.State = SharedState
		e.Sharers.Clear()
		e.Sharers.Add(requester)
		d.entries[block] = e
		return ReadResult{}
	case SharedState:
		e.Sharers.Add(requester)
		d.entries[block] = e
		return ReadResult{}
	default: // Exclusive
		owner := int(e.Owner)
		e.State = SharedState
		e.Sharers.Clear()
		e.Sharers.Add(owner)
		e.Sharers.Add(requester)
		d.entries[block] = e
		return ReadResult{Dirty: true, Owner: owner}
	}
}

// WriteResult describes how a write miss or upgrade must be satisfied.
type WriteResult struct {
	// Invalidate lists the caches that must be invalidated (excluding
	// the requester itself).
	Invalidate []int
	// Dirty reports that a third-party cache owned the block and must
	// transfer ownership (3-hop transaction).
	Dirty bool
	// Owner is the previous exclusive owner when Dirty.
	Owner int
}

// Write records a write miss (or an upgrade from Shared) by requester and
// returns the required invalidations/intervention. Afterwards requester is
// the exclusive owner.
func (d *Directory) Write(block uint64, requester int) WriteResult {
	e := d.entries[block]
	var r WriteResult
	switch e.State {
	case SharedState:
		e.Sharers.ForEach(func(p int) {
			if p != requester {
				r.Invalidate = append(r.Invalidate, p)
			}
		})
	case Exclusive:
		if int(e.Owner) != requester {
			r.Dirty = true
			r.Owner = int(e.Owner)
		}
	}
	e.State = Exclusive
	e.Sharers.Clear()
	e.Owner = int16(requester)
	d.entries[block] = e
	return r
}

// Writeback records that owner wrote the dirty block back to memory.
// It is a no-op if owner is no longer the exclusive owner (the writeback
// raced with an intervention).
func (d *Directory) Writeback(block uint64, owner int) {
	e, ok := d.entries[block]
	if !ok || e.State != Exclusive || int(e.Owner) != owner {
		return
	}
	e.State = Unowned
	e.Sharers.Clear()
	d.entries[block] = e
}

// Evict records that proc silently dropped a clean (Shared) copy.
func (d *Directory) Evict(block uint64, proc int) {
	e, ok := d.entries[block]
	if !ok || e.State != SharedState {
		return
	}
	e.Sharers.Remove(proc)
	if e.Sharers.Count() == 0 {
		e.State = Unowned
	}
	d.entries[block] = e
}

// Check verifies internal invariants for every block, returning a non-nil
// error on the first violation (test aid).
func (d *Directory) Check() error {
	for b, e := range d.entries {
		switch e.State {
		case Unowned:
			if e.Sharers.Count() != 0 {
				return fmt.Errorf("block %d: Unowned with %d sharers", b, e.Sharers.Count())
			}
		case SharedState:
			if e.Sharers.Count() == 0 {
				return fmt.Errorf("block %d: Shared with no sharers", b)
			}
		case Exclusive:
			if e.Sharers.Count() != 0 {
				return fmt.Errorf("block %d: Exclusive with sharer bits set", b)
			}
			if e.Owner < 0 || int(e.Owner) >= MaxProcs {
				return fmt.Errorf("block %d: bad owner %d", b, e.Owner)
			}
		}
	}
	return nil
}
