// Package directory implements full-bit-vector directory cache coherence in
// the style of the SGI Origin2000's Hub protocol. Each home node keeps one
// Directory tracking, per 128-byte block, whether the block is unowned,
// shared by a set of processors, or exclusively owned (dirty) by one.
//
// The directory is precise: caches notify it of evictions (the Origin uses
// replacement hints similarly), so invalidation fan-out matches the true
// sharer set. The machine model (internal/core) turns the transition
// results into latency and traffic.
package directory

import (
	"fmt"
	"math/bits"
	"sort"
)

// MaxProcs is the largest processor count a sharer set can track.
const MaxProcs = 128

// State is the directory's view of a block.
type State uint8

const (
	// Unowned means no cache holds the block; memory is the only copy.
	Unowned State = iota
	// SharedState means one or more caches hold read-only copies.
	SharedState
	// Exclusive means exactly one cache holds a dirty copy.
	Exclusive
)

func (s State) String() string {
	switch s {
	case Unowned:
		return "Unowned"
	case SharedState:
		return "Shared"
	case Exclusive:
		return "Exclusive"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Sharers is a bit vector over processor ids.
type Sharers [2]uint64

// Add inserts processor p.
func (s *Sharers) Add(p int) { s[p>>6] |= 1 << (uint(p) & 63) }

// Remove deletes processor p.
func (s *Sharers) Remove(p int) { s[p>>6] &^= 1 << (uint(p) & 63) }

// Contains reports whether processor p is present.
func (s *Sharers) Contains(p int) bool { return s[p>>6]&(1<<(uint(p)&63)) != 0 }

// Count reports the number of sharers.
func (s *Sharers) Count() int { return bits.OnesCount64(s[0]) + bits.OnesCount64(s[1]) }

// Clear empties the set.
func (s *Sharers) Clear() { s[0], s[1] = 0, 0 }

// ForEach calls fn for each processor in ascending order.
func (s *Sharers) ForEach(fn func(p int)) {
	for w := 0; w < 2; w++ {
		v := s[w]
		for v != 0 {
			b := bits.TrailingZeros64(v)
			fn(w*64 + b)
			v &^= 1 << uint(b)
		}
	}
}

// List returns the sharers in ascending order, appended to dst.
func (s *Sharers) List(dst []int) []int {
	s.ForEach(func(p int) { dst = append(dst, p) })
	return dst
}

// Entry is the directory record for one block.
type Entry struct {
	State   State
	Sharers Sharers
	Owner   int16 // valid when State == Exclusive
}

// Directory storage is two-level and page-dense: blocks are grouped by the
// 16 KB page they live on (128-byte blocks, so exactly 128 entries per
// page), and each touched page owns a flat array of entries. The common
// streaming case — consecutive blocks of one page — hits the last-page memo
// and performs zero map hashes, and transitions mutate entries in place
// instead of the load/copy-back a map[uint64]Entry forces.
const (
	// pageBlockShift converts a block number to its page index
	// (16 KB page / 128 B block).
	pageBlockShift = 7
	// blocksPerPage is the number of directory entries per page.
	blocksPerPage = 1 << pageBlockShift
)

type dirPage [blocksPerPage]Entry

// Directory tracks every block homed at one node. The zero value is not
// usable; call New.
type Directory struct {
	pages   map[uint64]*dirPage
	lastKey uint64   // page index of last
	last    *dirPage // memo of the most recently touched page
	scratch []int    // reused invalidation list (see Write)

	// format computes the extra (non-sharer) fan-out of an invalidating
	// write under an imprecise sharer representation; nil means the
	// precise full-bit-vector format and keeps Write's hot path exactly
	// as it was before formats existed. procs bounds the broadcast set;
	// scratchExtra is the reused WriteResult.Extra buffer.
	format       Format
	procs        int
	scratchExtra []int

	// nShared and nExclusive count entries in each active state,
	// maintained incrementally on every transition so the metrics
	// sampler's directory-state-mix snapshot is O(1) instead of a scan.
	nShared    int
	nExclusive int

	// dropInval is a fault-injection hook for the verification layer's own
	// tests (internal/check): when set, Write omits matching processors
	// from the invalidation list while still clearing their sharer bits —
	// the classic lost-invalidation bug the online checker must catch.
	// Never set outside tests.
	dropInval func(block uint64, proc int) bool
}

// New creates an empty directory using the precise full-bit-vector
// sharer representation.
func New() *Directory {
	return &Directory{pages: make(map[uint64]*dirPage)}
}

// NewWithFormat creates an empty directory whose invalidating writes fan
// out under the given sharer-representation format, on a machine of
// procs processors. A nil or FullVector format is the precise default
// and behaves exactly like New.
func NewWithFormat(f Format, procs int) *Directory {
	d := New()
	if f == nil {
		return d
	}
	if _, ok := f.(FullVector); ok {
		return d // precise: keep the nil fast path
	}
	d.format = f
	d.procs = procs
	return d
}

// Format returns the directory's sharer-representation format
// (FullVector for directories built by New).
func (d *Directory) Format() Format {
	if d.format == nil {
		return FullVector{}
	}
	return d.format
}

// entry returns a mutable pointer to block's record, materializing its page
// on first touch.
func (d *Directory) entry(block uint64) *Entry {
	key := block >> pageBlockShift
	pg := d.last
	if pg == nil || key != d.lastKey {
		pg = d.pages[key]
		if pg == nil {
			pg = new(dirPage)
			d.pages[key] = pg
		}
		d.lastKey, d.last = key, pg
	}
	return &pg[block&(blocksPerPage-1)]
}

// peek returns a pointer to block's record, or nil if its page was never
// touched. It never allocates.
func (d *Directory) peek(block uint64) *Entry {
	key := block >> pageBlockShift
	pg := d.last
	if pg == nil || key != d.lastKey {
		pg = d.pages[key]
		if pg == nil {
			return nil
		}
		d.lastKey, d.last = key, pg
	}
	return &pg[block&(blocksPerPage-1)]
}

// Entry returns the record for block (Unowned if never touched).
func (d *Directory) Entry(block uint64) Entry {
	if e := d.peek(block); e != nil {
		return *e
	}
	return Entry{}
}

// Blocks reports the number of blocks with active (non-Unowned) directory
// state.
func (d *Directory) Blocks() int {
	n := 0
	for _, pg := range d.pages {
		for i := range pg {
			if pg[i].State != Unowned {
				n++
			}
		}
	}
	return n
}

// SharerWidth reports how many caches currently hold block: the sharer-set
// size when Shared, 1 when Exclusive, 0 when Unowned. The tracing layer
// samples it after each transition to build sharer-width-over-time heat.
func (d *Directory) SharerWidth(block uint64) int {
	e := d.peek(block)
	if e == nil {
		return 0
	}
	switch e.State {
	case SharedState:
		return e.Sharers.Count()
	case Exclusive:
		return 1
	}
	return 0
}

// ReadResult describes how a read miss must be satisfied.
type ReadResult struct {
	// Dirty reports that a third-party cache owned the block; the home
	// forwards an intervention to Owner, which supplies the data
	// (a 3-hop "remote dirty" transaction) and downgrades to Shared.
	Dirty bool
	// Owner is the previous exclusive owner when Dirty.
	Owner int
}

// Read records a read miss by requester and returns how to satisfy it.
func (d *Directory) Read(block uint64, requester int) ReadResult {
	e := d.entry(block)
	switch e.State {
	case Unowned:
		e.State = SharedState
		d.nShared++
		e.Sharers.Add(requester)
		return ReadResult{}
	case SharedState:
		e.Sharers.Add(requester)
		return ReadResult{}
	default: // Exclusive
		owner := int(e.Owner)
		e.State = SharedState
		d.nExclusive--
		d.nShared++
		e.Sharers.Add(owner)
		e.Sharers.Add(requester)
		return ReadResult{Dirty: true, Owner: owner}
	}
}

// WriteResult describes how a write miss or upgrade must be satisfied.
type WriteResult struct {
	// Invalidate lists the caches that must be invalidated (excluding
	// the requester itself).
	Invalidate []int
	// Dirty reports that a third-party cache owned the block and must
	// transfer ownership (3-hop transaction).
	Dirty bool
	// Owner is the previous exclusive owner when Dirty.
	Owner int
	// Extra lists the non-sharer processors the directory's format must
	// also message (limited-pointer broadcast, coarse-vector region
	// spill). They receive invalidation messages — and cost latency and
	// occupancy — but hold no copy, so no cache state changes and the
	// coherence checker does not count them. Empty under the precise
	// full-bit-vector format. Like Invalidate, it is a scratch buffer
	// reused by the next Write call.
	Extra []int
}

// Write records a write miss (or an upgrade from Shared) by requester and
// returns the required invalidations/intervention. Afterwards requester is
// the exclusive owner.
//
// The Invalidate slice is a scratch buffer owned by the directory, reused
// by the next Write call: consume it before transitioning another block
// (copy it if it must outlive that).
func (d *Directory) Write(block uint64, requester int) WriteResult {
	e := d.entry(block)
	var r WriteResult
	switch e.State {
	case SharedState:
		inv := d.scratch[:0]
		if d.dropInval == nil {
			e.Sharers.ForEach(func(p int) {
				if p != requester {
					inv = append(inv, p)
				}
			})
		} else {
			e.Sharers.ForEach(func(p int) {
				if p != requester && !d.dropInval(block, p) {
					inv = append(inv, p)
				}
			})
		}
		d.scratch = inv
		if len(inv) > 0 {
			r.Invalidate = inv
		}
		if d.format != nil {
			ex := d.format.ExtraTargets(d.scratchExtra[:0], &e.Sharers, requester, d.procs)
			d.scratchExtra = ex
			if len(ex) > 0 {
				r.Extra = ex
			}
		}
		e.Sharers.Clear()
		d.nShared--
		d.nExclusive++
	case Exclusive:
		if int(e.Owner) != requester {
			r.Dirty = true
			r.Owner = int(e.Owner)
		}
	default: // Unowned
		d.nExclusive++
	}
	e.State = Exclusive
	e.Owner = int16(requester)
	return r
}

// Writeback records that owner wrote the dirty block back to memory.
// It is a no-op if owner is no longer the exclusive owner (the writeback
// raced with an intervention).
func (d *Directory) Writeback(block uint64, owner int) {
	e := d.peek(block)
	if e == nil || e.State != Exclusive || int(e.Owner) != owner {
		return
	}
	e.State = Unowned
	d.nExclusive--
}

// Evict records that proc silently dropped a clean (Shared) copy.
func (d *Directory) Evict(block uint64, proc int) {
	e := d.peek(block)
	if e == nil || e.State != SharedState {
		return
	}
	e.Sharers.Remove(proc)
	if e.Sharers.Count() == 0 {
		e.State = Unowned
		d.nShared--
	}
}

// MovePage transfers the directory records of every block on the 16 KB
// page (page = block >> 7, which equals the machine's memory page number)
// from d to dst, preserving both directories' incremental state counts.
// The machine calls it when page migration rehomes a page, so that each
// node's directory stays authoritative for exactly the blocks it homes.
func (d *Directory) MovePage(page uint64, dst *Directory) {
	if d == dst {
		return
	}
	pg, ok := d.pages[page]
	if !ok {
		return
	}
	nS, nX := 0, 0
	for i := range pg {
		switch pg[i].State {
		case SharedState:
			nS++
		case Exclusive:
			nX++
		}
	}
	delete(d.pages, page)
	if d.lastKey == page {
		d.last = nil
	}
	d.nShared -= nS
	d.nExclusive -= nX
	// A page has one home at a time, so dst normally has no record of it;
	// if a stale empty page was ever materialized there, retire its counts
	// before overwriting.
	if old, exists := dst.pages[page]; exists {
		for i := range old {
			switch old[i].State {
			case SharedState:
				dst.nShared--
			case Exclusive:
				dst.nExclusive--
			}
		}
	}
	dst.pages[page] = pg
	if dst.lastKey == page {
		dst.last = pg
	}
	dst.nShared += nS
	dst.nExclusive += nX
}

// StateCounts reports how many blocks are currently in the Shared and
// Exclusive directory states. The counts are maintained incrementally on
// every transition; the metrics sampler reads them at each machine sample.
func (d *Directory) StateCounts() (shared, exclusive int) { return d.nShared, d.nExclusive }

// ForEach calls fn for every block with active (non-Unowned) directory
// state, in ascending block order. The verification layer (internal/check)
// uses it for its end-of-run audit.
func (d *Directory) ForEach(fn func(block uint64, e Entry)) {
	keys := make([]uint64, 0, len(d.pages))
	for key := range d.pages {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		pg := d.pages[key]
		for i := range pg {
			if pg[i].State != Unowned {
				fn(key<<pageBlockShift|uint64(i), pg[i])
			}
		}
	}
}

// CheckStorage verifies the dense two-level storage structure itself: every
// materialized page is non-nil, the last-page memo aliases the entry the
// page map really holds for its key, and the scratch invalidation list does
// not alias a second buffer. These are the paths PR 1's rewrite added; a
// desync here silently corrupts transitions even when every Entry looks
// plausible.
func (d *Directory) CheckStorage() error {
	for key, pg := range d.pages {
		if pg == nil {
			return fmt.Errorf("directory: page %d materialized as nil", key)
		}
	}
	if d.last != nil {
		pg, ok := d.pages[d.lastKey]
		if !ok {
			return fmt.Errorf("directory: last-page memo names page %d, which is not in the map", d.lastKey)
		}
		if pg != d.last {
			return fmt.Errorf("directory: last-page memo for page %d aliases a stale array", d.lastKey)
		}
	}
	// Note: an allocated scratch list with an empty page map is legal — page
	// migration (MovePage) can drain a directory that has already performed
	// invalidating writes.
	return nil
}

// Check verifies internal invariants — the storage structure and the
// per-entry semantic constraints — returning a non-nil error on the first
// violation. The online checker's Audit calls it; tests use it directly.
func (d *Directory) Check() error {
	if err := d.CheckStorage(); err != nil {
		return err
	}
	var firstErr error
	d.ForEach(func(b uint64, e Entry) {
		if firstErr != nil {
			return
		}
		switch e.State {
		case SharedState:
			if e.Sharers.Count() == 0 {
				firstErr = fmt.Errorf("block %d: Shared with no sharers", b)
			}
		case Exclusive:
			if e.Sharers.Count() != 0 {
				firstErr = fmt.Errorf("block %d: Exclusive with sharer bits set", b)
			}
			if e.Owner < 0 || int(e.Owner) >= MaxProcs {
				firstErr = fmt.Errorf("block %d: bad owner %d", b, e.Owner)
			}
		default:
			firstErr = fmt.Errorf("block %d: invalid state %d", b, uint8(e.State))
		}
	})
	if firstErr != nil {
		return firstErr
	}
	// Unowned entries with sharer bits are invisible to ForEach; sweep for
	// them separately.
	for key, pg := range d.pages {
		for i := range pg {
			if pg[i].State == Unowned && pg[i].Sharers.Count() != 0 {
				return fmt.Errorf("block %d: Unowned with %d sharers",
					key<<pageBlockShift|uint64(i), pg[i].Sharers.Count())
			}
		}
	}
	return nil
}

// FaultDropInvalidation installs a fault-injection hook: Write omits
// processors for which fn returns true from its invalidation list while
// still clearing their sharer bits. It exists so internal/check can prove
// the online checker and the protocol fuzzer catch a lost invalidation;
// pass nil to clear. Never use outside tests.
func (d *Directory) FaultDropInvalidation(fn func(block uint64, proc int) bool) {
	d.dropInval = fn
}
