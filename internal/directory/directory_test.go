package directory

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestColdReadBecomesShared(t *testing.T) {
	d := New()
	r := d.Read(10, 3)
	if r.Dirty {
		t.Fatal("cold read should come from memory")
	}
	e := d.Entry(10)
	if e.State != SharedState || !e.Sharers.Contains(3) || e.Sharers.Count() != 1 {
		t.Fatalf("entry = %+v", e)
	}
}

func TestReadOfDirtyBlockIsThreeHop(t *testing.T) {
	d := New()
	d.Write(10, 5) // proc 5 owns dirty
	r := d.Read(10, 2)
	if !r.Dirty || r.Owner != 5 {
		t.Fatalf("read result = %+v, want intervention at 5", r)
	}
	e := d.Entry(10)
	if e.State != SharedState || !e.Sharers.Contains(5) || !e.Sharers.Contains(2) {
		t.Fatalf("entry after downgrade = %+v", e)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d := New()
	d.Read(7, 0)
	d.Read(7, 1)
	d.Read(7, 2)
	w := d.Write(7, 1)
	if w.Dirty {
		t.Fatal("upgrade from Shared needs no intervention")
	}
	if !reflect.DeepEqual(w.Invalidate, []int{0, 2}) {
		t.Fatalf("invalidate = %v, want [0 2]", w.Invalidate)
	}
	e := d.Entry(7)
	if e.State != Exclusive || e.Owner != 1 {
		t.Fatalf("entry = %+v", e)
	}
}

func TestWriteToDirtyBlockTransfersOwnership(t *testing.T) {
	d := New()
	d.Write(7, 0)
	w := d.Write(7, 1)
	if !w.Dirty || w.Owner != 0 || len(w.Invalidate) != 0 {
		t.Fatalf("write result = %+v", w)
	}
	if e := d.Entry(7); e.Owner != 1 || e.State != Exclusive {
		t.Fatalf("entry = %+v", e)
	}
}

func TestWritebackReturnsToUnowned(t *testing.T) {
	d := New()
	d.Write(9, 4)
	d.Writeback(9, 4)
	if e := d.Entry(9); e.State != Unowned {
		t.Fatalf("entry = %+v, want Unowned", e)
	}
	// Stale writeback after ownership moved: no-op.
	d.Write(9, 4)
	d.Write(9, 5)
	d.Writeback(9, 4)
	if e := d.Entry(9); e.State != Exclusive || e.Owner != 5 {
		t.Fatalf("stale writeback corrupted entry: %+v", e)
	}
}

func TestEvictRemovesSharer(t *testing.T) {
	d := New()
	d.Read(3, 0)
	d.Read(3, 1)
	d.Evict(3, 0)
	e := d.Entry(3)
	if e.Sharers.Contains(0) || !e.Sharers.Contains(1) {
		t.Fatalf("entry = %+v", e)
	}
	d.Evict(3, 1)
	if e := d.Entry(3); e.State != Unowned {
		t.Fatalf("last evict should return block to Unowned, got %+v", e)
	}
}

func TestSharersBitVector(t *testing.T) {
	var s Sharers
	ids := []int{0, 1, 63, 64, 65, 127}
	for _, p := range ids {
		s.Add(p)
	}
	if s.Count() != len(ids) {
		t.Fatalf("count = %d, want %d", s.Count(), len(ids))
	}
	if got := s.List(nil); !reflect.DeepEqual(got, ids) {
		t.Fatalf("list = %v, want %v", got, ids)
	}
	s.Remove(64)
	if s.Contains(64) || s.Count() != len(ids)-1 {
		t.Fatal("remove failed")
	}
}

// TestInvariantsUnderRandomTraffic drives the directory with arbitrary
// read/write/writeback/evict sequences and checks the state invariants the
// protocol relies on (exclusive => one owner, shared => nonempty set).
func TestInvariantsUnderRandomTraffic(t *testing.T) {
	f := func(ops []uint16) bool {
		d := New()
		for _, op := range ops {
			block := uint64(op>>8) % 8
			proc := int(op>>2) % MaxProcs
			switch op % 4 {
			case 0:
				d.Read(block, proc)
			case 1:
				d.Write(block, proc)
			case 2:
				d.Writeback(block, proc)
			case 3:
				d.Evict(block, proc)
			}
		}
		return d.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestReaderAfterWriterSeesSingleSharerChain mirrors the producer/consumer
// pattern that dominates the apps: write by one proc, read by many, write
// again must invalidate exactly those readers.
func TestReaderAfterWriterSeesSingleSharerChain(t *testing.T) {
	d := New()
	d.Write(1, 0)
	readers := []int{3, 9, 77, 120}
	for _, r := range readers {
		d.Read(1, r)
	}
	w := d.Write(1, 0)
	want := append([]int{}, readers...)
	if !reflect.DeepEqual(w.Invalidate, want) {
		t.Fatalf("invalidate = %v, want %v", w.Invalidate, want)
	}
}

// TestStateCountsTrackTransitions pins the incremental shared/exclusive
// counters (the metrics sampler's O(1) directory-state-mix source) against a
// ForEach recount under random traffic: they must agree after any operation
// sequence.
func TestStateCountsTrackTransitions(t *testing.T) {
	recount := func(d *Directory) (shared, exclusive int) {
		d.ForEach(func(block uint64, e Entry) {
			switch e.State {
			case SharedState:
				shared++
			case Exclusive:
				exclusive++
			}
		})
		return shared, exclusive
	}
	f := func(ops []uint16) bool {
		d := New()
		for _, op := range ops {
			block := uint64(op>>8) % 8
			proc := int(op>>2) % MaxProcs
			switch op % 4 {
			case 0:
				d.Read(block, proc)
			case 1:
				d.Write(block, proc)
			case 2:
				d.Writeback(block, proc)
			case 3:
				d.Evict(block, proc)
			}
			gotS, gotE := d.StateCounts()
			wantS, wantE := recount(d)
			if gotS != wantS || gotE != wantE {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
