// Directory sharer-representation formats. The directory's backing store
// stays precise (the 128-bit Sharers vector, kept exact by eviction
// hints), so protocol correctness is format-independent: every format
// invalidates the true sharer set exactly. What a format changes is the
// *fan-out* of an invalidating write — a representation that cannot name
// the sharers precisely (limited pointers past overflow, coarse region
// bits) must also message processors that never held the block. Those
// extra targets are returned separately in WriteResult.Extra: the machine
// charges them hub occupancy, router hops and acknowledgement latency,
// but they touch no cache and the coherence checker ignores them, so a
// run stays checker-clean under every format while its invalidation
// traffic and timing become a real scenario axis.
package directory

import "fmt"

// Format is the sharer-representation contract. Implementations are
// stateless and deterministic: ExtraTargets is a pure function of the
// precise sharer set, the requester and the machine size, which keeps
// the serial and parallel engines bit-identical and checkpoint resume
// proofs exact under every format.
type Format interface {
	// Kind names the format ("fullvec", "limited", "coarse"); it is the
	// value a scenario spec selects by.
	Kind() string
	// Describe returns a one-line human description of the format.
	Describe() string
	// Capacity is the largest processor count the format can represent.
	// Every format is backed by the precise Sharers store, so no format
	// exceeds MaxProcs; scenario validation rejects machines beyond it.
	Capacity() int
	// ExtraTargets appends to dst the processors, in ascending order,
	// that an invalidating write by requester must message *beyond* the
	// true sharer set (which the caller invalidates separately), and
	// returns the extended slice. The requester and true sharers are
	// never included. A precise format appends nothing.
	ExtraTargets(dst []int, s *Sharers, requester, procs int) []int
}

// FullVector is the Origin's full-bit-vector format: one presence bit
// per processor, so the representation is exactly the precise store and
// an invalidating write messages the true sharers only.
type FullVector struct{}

// Kind identifies the full-bit-vector format in scenario specs.
func (FullVector) Kind() string { return "fullvec" }

// Describe returns a one-line human description of the format.
func (FullVector) Describe() string { return "full bit vector (1 presence bit per processor)" }

// Capacity reports the format's processor-count ceiling.
func (FullVector) Capacity() int { return MaxProcs }

// ExtraTargets appends nothing: the full vector is precise.
func (FullVector) ExtraTargets(dst []int, _ *Sharers, _, _ int) []int { return dst }

// DefaultPointers is the pointer count of a limited-pointer format when
// a scenario does not specify one (Dir4B, the classic DASH choice).
const DefaultPointers = 4

// LimitedPointer is the Dir_i_B format: the entry holds i processor
// pointers; when the sharer count overflows them the entry degrades to a
// broadcast bit and an invalidating write must message every processor.
// The extra targets are all non-sharers except the requester.
type LimitedPointer struct {
	// Pointers is i, the number of sharer pointers before overflow.
	Pointers int
}

// NewLimitedPointer returns a Dir_i_B format with i pointers
// (DefaultPointers when i <= 0).
func NewLimitedPointer(pointers int) LimitedPointer {
	if pointers < 1 {
		pointers = DefaultPointers
	}
	return LimitedPointer{Pointers: pointers}
}

// Kind identifies the limited-pointer format in scenario specs.
func (f LimitedPointer) Kind() string { return "limited" }

// Describe returns a one-line human description of the format.
func (f LimitedPointer) Describe() string {
	return fmt.Sprintf("limited pointer Dir%dB (%d pointers, broadcast on overflow)",
		f.Pointers, f.Pointers)
}

// Capacity reports the format's processor-count ceiling (pointers name
// any processor id the precise backing store can hold).
func (f LimitedPointer) Capacity() int { return MaxProcs }

// ExtraTargets implements broadcast-on-overflow: with the sharer count
// within the pointer budget it appends nothing; past it, every
// non-sharer except the requester is messaged.
func (f LimitedPointer) ExtraTargets(dst []int, s *Sharers, requester, procs int) []int {
	ptrs := f.Pointers
	if ptrs < 1 {
		ptrs = DefaultPointers
	}
	if s.Count() <= ptrs {
		return dst
	}
	for p := 0; p < procs; p++ {
		if p != requester && !s.Contains(p) {
			dst = append(dst, p)
		}
	}
	return dst
}

// DefaultRegion is the coarse-vector region size when a scenario does
// not specify one.
const DefaultRegion = 4

// CoarseVector is the coarse-bit-vector format: each presence bit covers
// a region of Region consecutive processors, so an invalidating write
// must message every processor in every region that holds at least one
// sharer. The extra targets are the covered non-sharers except the
// requester.
type CoarseVector struct {
	// Region is the number of consecutive processors one bit covers.
	Region int
}

// NewCoarseVector returns a coarse-vector format with the given region
// size (DefaultRegion when region <= 0).
func NewCoarseVector(region int) CoarseVector {
	if region < 1 {
		region = DefaultRegion
	}
	return CoarseVector{Region: region}
}

// Kind identifies the coarse-vector format in scenario specs.
func (f CoarseVector) Kind() string { return "coarse" }

// Describe returns a one-line human description of the format.
func (f CoarseVector) Describe() string {
	return fmt.Sprintf("coarse bit vector (1 bit per %d processors)", f.Region)
}

// Capacity reports the format's processor-count ceiling.
func (f CoarseVector) Capacity() int { return MaxProcs }

// ExtraTargets appends every processor of every sharer-holding region
// that is not itself a sharer and not the requester.
func (f CoarseVector) ExtraTargets(dst []int, s *Sharers, requester, procs int) []int {
	region := f.Region
	if region < 1 {
		region = DefaultRegion
	}
	for base := 0; base < procs; base += region {
		end := base + region
		if end > procs {
			end = procs
		}
		covered := false
		for p := base; p < end; p++ {
			if s.Contains(p) {
				covered = true
				break
			}
		}
		if !covered {
			continue
		}
		for p := base; p < end; p++ {
			if p != requester && !s.Contains(p) {
				dst = append(dst, p)
			}
		}
	}
	return dst
}

// FormatByKind builds a Format from its scenario-spec kind and
// parameters (param is Pointers for "limited", Region for "coarse";
// ignored otherwise). An empty kind selects the full bit vector.
func FormatByKind(kind string, param int) (Format, error) {
	switch kind {
	case "", "fullvec":
		return FullVector{}, nil
	case "limited":
		return NewLimitedPointer(param), nil
	case "coarse":
		return NewCoarseVector(param), nil
	}
	return nil, fmt.Errorf("directory: unknown format kind %q (want fullvec, limited or coarse)", kind)
}
