package directory

import (
	"reflect"
	"testing"
)

func sharersOf(ps ...int) Sharers {
	var s Sharers
	for _, p := range ps {
		s.Add(p)
	}
	return s
}

func TestFullVectorNeverAddsTargets(t *testing.T) {
	s := sharersOf(0, 1, 2, 3, 4, 5, 6, 7)
	if got := (FullVector{}).ExtraTargets(nil, &s, 0, 32); len(got) != 0 {
		t.Fatalf("fullvec added targets %v", got)
	}
}

func TestLimitedPointerWithinBudgetIsPrecise(t *testing.T) {
	f := NewLimitedPointer(4)
	s := sharersOf(1, 5, 9, 13)
	if got := f.ExtraTargets(nil, &s, 1, 16); len(got) != 0 {
		t.Fatalf("4 sharers within Dir4B budget produced extras %v", got)
	}
}

func TestLimitedPointerOverflowBroadcasts(t *testing.T) {
	f := NewLimitedPointer(4)
	s := sharersOf(0, 1, 2, 3, 4) // 5 sharers > 4 pointers
	got := f.ExtraTargets(nil, &s, 2, 8)
	// Broadcast: everyone except the requester (2) and true sharers (0-4).
	want := []int{5, 6, 7}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("broadcast extras = %v, want %v", got, want)
	}
}

func TestCoarseVectorCoversSharerRegionsOnly(t *testing.T) {
	f := NewCoarseVector(4)
	// Sharers in regions [0,4) and [8,12); requester 9 is in a covered
	// region. Region [4,8) has no sharer and must not be messaged.
	s := sharersOf(1, 10)
	got := f.ExtraTargets(nil, &s, 9, 16)
	want := []int{0, 2, 3, 8, 11}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("coarse extras = %v, want %v", got, want)
	}
}

func TestCoarseVectorPartialLastRegion(t *testing.T) {
	f := NewCoarseVector(4)
	s := sharersOf(9) // region [8,10) is clipped by procs=10
	got := f.ExtraTargets(nil, &s, 0, 10)
	want := []int{8}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("clipped coarse extras = %v, want %v", got, want)
	}
}

// TestWriteExtraFanout drives the formats through Directory.Write: the
// precise Invalidate list must be format-independent, Extra must appear
// only past the representation's precision, and the entry must end
// Exclusive either way.
func TestWriteExtraFanout(t *testing.T) {
	for _, tc := range []struct {
		name      string
		d         *Directory
		wantExtra []int
	}{
		{"fullvec", NewWithFormat(FullVector{}, 8), nil},
		{"limited", NewWithFormat(NewLimitedPointer(2), 8), []int{3, 5, 6, 7}},
		{"coarse", NewWithFormat(NewCoarseVector(4), 8), []int{3}},
	} {
		d := tc.d
		const block = 42
		for _, p := range []int{0, 1, 2} {
			d.Read(block, p)
		}
		res := d.Write(block, 4)
		if want := []int{0, 1, 2}; !reflect.DeepEqual(res.Invalidate, want) {
			t.Fatalf("%s: Invalidate = %v, want %v", tc.name, res.Invalidate, want)
		}
		if !reflect.DeepEqual(res.Extra, tc.wantExtra) {
			t.Fatalf("%s: Extra = %v, want %v", tc.name, res.Extra, tc.wantExtra)
		}
		if e := d.Entry(block); e.State != Exclusive || e.Owner != 4 {
			t.Fatalf("%s: entry after write = %+v", tc.name, e)
		}
		if err := d.Check(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
	}
}

// TestNewWithFormatFullVectorKeepsFastPath: a FullVector-formatted
// directory must use the nil fast path so the default machine's Write
// sequence is byte-for-byte the pre-format code.
func TestNewWithFormatFullVectorKeepsFastPath(t *testing.T) {
	d := NewWithFormat(FullVector{}, 128)
	if d.format != nil {
		t.Fatal("FullVector did not collapse to the nil fast path")
	}
	if k := d.Format().Kind(); k != "fullvec" {
		t.Fatalf("Format().Kind() = %q, want fullvec", k)
	}
}

func TestFormatByKind(t *testing.T) {
	for _, tc := range []struct {
		kind  string
		param int
		want  string
	}{
		{"", 0, "fullvec"},
		{"fullvec", 0, "fullvec"},
		{"limited", 8, "limited"},
		{"coarse", 2, "coarse"},
	} {
		f, err := FormatByKind(tc.kind, tc.param)
		if err != nil {
			t.Fatalf("FormatByKind(%q): %v", tc.kind, err)
		}
		if f.Kind() != tc.want {
			t.Fatalf("FormatByKind(%q).Kind() = %q, want %q", tc.kind, f.Kind(), tc.want)
		}
		if f.Capacity() != MaxProcs {
			t.Fatalf("FormatByKind(%q).Capacity() = %d, want %d", tc.kind, f.Capacity(), MaxProcs)
		}
		if f.Describe() == "" {
			t.Fatalf("FormatByKind(%q): empty Describe", tc.kind)
		}
	}
	if _, err := FormatByKind("sparse", 0); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
