package directory

// BlockSnap is the serializable directory record of one active block.
type BlockSnap struct {
	Block   uint64  `json:"block"`
	State   State   `json:"state"`
	Sharers Sharers `json:"sharers"`
	Owner   int16   `json:"owner"`
}

// Snap is the serializable state of one home directory: every block with
// active (non-Unowned) state in ascending block order — the same canonical
// order ForEach visits — plus the incremental state-mix counters.
type Snap struct {
	Blocks    []BlockSnap `json:"blocks"`
	Shared    int         `json:"shared"`
	Exclusive int         `json:"exclusive"`
}

// Snap captures the directory's active entries in canonical order.
func (d *Directory) Snap() Snap {
	s := Snap{Shared: d.nShared, Exclusive: d.nExclusive}
	d.ForEach(func(block uint64, e Entry) {
		s.Blocks = append(s.Blocks, BlockSnap{
			Block:   block,
			State:   e.State,
			Sharers: e.Sharers,
			Owner:   e.Owner,
		})
	})
	return s
}
