package directory

import (
	"reflect"
	"testing"
)

// The dense two-level storage rewrite added three load-bearing mechanisms:
// page materialization, the last-page memo, and the reused scratch
// invalidation list. These tests pin each one directly.

func TestEntryMaterializesPagesLazily(t *testing.T) {
	d := New()
	if len(d.pages) != 0 {
		t.Fatal("fresh directory has pages")
	}
	d.Read(5, 0)                 // page 0
	d.Read(blocksPerPage+3, 1)   // page 1
	d.Read(9*blocksPerPage+7, 2) // page 9
	if len(d.pages) != 3 {
		t.Fatalf("pages = %d, want 3", len(d.pages))
	}
	// Entry on an untouched page must not materialize it.
	if e := d.Entry(4 * blocksPerPage); e.State != Unowned {
		t.Fatalf("untouched block state = %v", e.State)
	}
	if len(d.pages) != 3 {
		t.Fatalf("read-only Entry materialized a page: %d pages", len(d.pages))
	}
	if err := d.CheckStorage(); err != nil {
		t.Fatal(err)
	}
}

func TestLastPageMemoTracksTouchedPage(t *testing.T) {
	d := New()
	d.Read(3, 0)
	if d.last == nil || d.last != d.pages[0] || d.lastKey != 0 {
		t.Fatalf("memo not set after first touch: key=%d", d.lastKey)
	}
	// Streaming within one page keeps the memo pinned.
	for b := uint64(0); b < blocksPerPage; b++ {
		d.Read(b, 0)
		if d.lastKey != 0 || d.last != d.pages[0] {
			t.Fatalf("memo moved during same-page streaming at block %d", b)
		}
	}
	// Touching another page retargets the memo.
	d.Read(5*blocksPerPage+1, 0)
	if d.lastKey != 5 || d.last != d.pages[5] {
		t.Fatalf("memo did not follow to page 5: key=%d", d.lastKey)
	}
	// peek through the memo must return the same entry entry() mutates.
	d.Write(5*blocksPerPage+1, 3)
	if e := d.Entry(5*blocksPerPage + 1); e.State != Exclusive || e.Owner != 3 {
		t.Fatalf("memoized peek returned stale entry: %+v", e)
	}
	if err := d.CheckStorage(); err != nil {
		t.Fatal(err)
	}
}

func TestMemoDistinguishesPageZeroFromUnset(t *testing.T) {
	// lastKey's zero value is also page 0's key; the nil check on last must
	// keep a fresh directory from treating the unset memo as a page-0 hit.
	d := New()
	if e := d.peek(0); e != nil {
		t.Fatal("peek on fresh directory fabricated an entry")
	}
	d.Read(blocksPerPage, 0) // page 1 first, so lastKey != 0
	if e := d.peek(0); e != nil {
		t.Fatal("peek materialized page 0 via stale memo")
	}
	d.Read(0, 1) // now page 0 for real
	if e := d.peek(0); e == nil || e.State != SharedState {
		t.Fatal("page 0 entry not reachable after touch")
	}
}

func TestWriteScratchListIsReusedAcrossCalls(t *testing.T) {
	d := New()
	for p := 0; p < 6; p++ {
		d.Read(1, p)
	}
	r1 := d.Write(1, 0)
	if want := []int{1, 2, 3, 4, 5}; !reflect.DeepEqual(r1.Invalidate, want) {
		t.Fatalf("Invalidate = %v, want %v", r1.Invalidate, want)
	}
	save := append([]int(nil), r1.Invalidate...)

	// A second Write on another block reuses the same backing array: the
	// documented contract is that r1.Invalidate is dead after this point.
	for p := 0; p < 3; p++ {
		d.Read(2, p)
	}
	r2 := d.Write(2, 2)
	if want := []int{0, 1}; !reflect.DeepEqual(r2.Invalidate, want) {
		t.Fatalf("second Invalidate = %v, want %v", r2.Invalidate, want)
	}
	if len(r1.Invalidate) > 0 && len(r2.Invalidate) > 0 &&
		&r1.Invalidate[0] != &r2.Invalidate[0] {
		t.Error("scratch list not reused: second Write allocated a new buffer")
	}
	// The copy taken before the second Write is the survival pattern
	// internal/core relies on.
	if !reflect.DeepEqual(save, []int{1, 2, 3, 4, 5}) {
		t.Fatalf("saved copy corrupted: %v", save)
	}
}

func TestWriteWithNoSharersReturnsNilInvalidate(t *testing.T) {
	d := New()
	if r := d.Write(7, 4); r.Invalidate != nil || r.Dirty {
		t.Fatalf("cold write returned work: %+v", r)
	}
	d.Read(8, 4)
	if r := d.Write(8, 4); r.Invalidate != nil || r.Dirty {
		t.Fatalf("sole-sharer upgrade returned work: %+v", r)
	}
}

func TestForEachVisitsActiveBlocksInOrder(t *testing.T) {
	d := New()
	blocks := []uint64{9 * blocksPerPage, 2, blocksPerPage + 1, 700*blocksPerPage + 127}
	for _, b := range blocks {
		d.Read(b, 1)
	}
	d.Writeback(2, 1) // not exclusive: no-op, stays active
	var got []uint64
	d.ForEach(func(b uint64, e Entry) {
		got = append(got, b)
		if e.State != SharedState || !e.Sharers.Contains(1) {
			t.Errorf("block %d entry wrong: %+v", b, e)
		}
	})
	want := []uint64{2, blocksPerPage + 1, 9 * blocksPerPage, 700*blocksPerPage + 127}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ForEach order = %v, want %v", got, want)
	}
	// Draining a block hides it from ForEach.
	d.Evict(2, 1)
	got = got[:0]
	d.ForEach(func(b uint64, e Entry) { got = append(got, b) })
	if !reflect.DeepEqual(got, want[1:]) {
		t.Fatalf("ForEach after evict = %v, want %v", got, want[1:])
	}
}

func TestCheckStorageFlagsCorruption(t *testing.T) {
	d := New()
	d.Read(0, 1)
	if err := d.CheckStorage(); err != nil {
		t.Fatalf("healthy storage flagged: %v", err)
	}

	// Stale memo: points at an array the map no longer holds.
	d.last = new(dirPage)
	if err := d.CheckStorage(); err == nil {
		t.Fatal("stale last-page memo not flagged")
	}
	d.last = d.pages[0]

	// Memo naming a key the map lost.
	d.lastKey = 42
	if err := d.CheckStorage(); err == nil {
		t.Fatal("memo with missing key not flagged")
	}
	d.lastKey = 0

	// Nil page in the map.
	d.pages[7] = nil
	if err := d.CheckStorage(); err == nil {
		t.Fatal("nil page not flagged")
	}
	delete(d.pages, 7)

	if err := d.CheckStorage(); err != nil {
		t.Fatalf("restored storage still flagged: %v", err)
	}
}

func TestCheckFlagsSemanticCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(d *Directory)
	}{
		{"shared with no sharers", func(d *Directory) {
			e := d.entry(3)
			e.State = SharedState
		}},
		{"exclusive with sharer bits", func(d *Directory) {
			e := d.entry(3)
			e.State = Exclusive
			e.Owner = 1
			e.Sharers.Add(2)
		}},
		{"owner out of range", func(d *Directory) {
			e := d.entry(3)
			e.State = Exclusive
			e.Owner = MaxProcs
		}},
		{"negative owner", func(d *Directory) {
			e := d.entry(3)
			e.State = Exclusive
			e.Owner = -1
		}},
		{"unowned with sharers", func(d *Directory) {
			e := d.entry(3)
			e.State = Unowned
			e.Sharers.Add(5)
		}},
		{"invalid state", func(d *Directory) {
			e := d.entry(3)
			e.State = State(7)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := New()
			d.Read(1, 0)
			if err := d.Check(); err != nil {
				t.Fatalf("healthy directory flagged: %v", err)
			}
			tc.corrupt(d)
			if err := d.Check(); err == nil {
				t.Fatal("corruption not flagged")
			}
		})
	}
}

func TestFaultDropInvalidationClearsBitsButSkipsList(t *testing.T) {
	d := New()
	for p := 0; p < 4; p++ {
		d.Read(6, p)
	}
	d.FaultDropInvalidation(func(block uint64, proc int) bool { return proc == 2 })
	r := d.Write(6, 0)
	if want := []int{1, 3}; !reflect.DeepEqual(r.Invalidate, want) {
		t.Fatalf("Invalidate = %v, want %v (p2 dropped)", r.Invalidate, want)
	}
	// The bug is a *lost message*, not directory corruption: the entry
	// itself transitions cleanly and still passes Check.
	if e := d.Entry(6); e.State != Exclusive || e.Owner != 0 || e.Sharers.Count() != 0 {
		t.Fatalf("entry after faulted write: %+v", e)
	}
	if err := d.Check(); err != nil {
		t.Fatalf("faulted write corrupted the directory: %v", err)
	}
	d.FaultDropInvalidation(nil)
	for p := 0; p < 3; p++ {
		d.Read(9, p)
	}
	if r := d.Write(9, 0); !reflect.DeepEqual(r.Invalidate, []int{1, 2}) {
		t.Fatalf("cleared fault still active: %v", r.Invalidate)
	}
}
