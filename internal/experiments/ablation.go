package experiments

import (
	"fmt"
	"io"

	"origin2000/internal/core"
	"origin2000/internal/perf"
	"origin2000/internal/sim"
)

// Ablation quantifies the machine model's design choices:
//
//   - contention: zeroing every occupancy (Hub, memory, router, metarouter,
//     invalidation) turns the simulator into a pure-latency model — the
//     kind the paper argues underestimates real machines' bottlenecks. The
//     difference is the contention contribution.
//   - quantum: the scheduler's run-ahead bound trades event-ordering
//     precision for speed; results should be stable across a wide range.
//   - block size: the 128-byte coherence granularity against smaller and
//     larger blocks, which moves the false-sharing/fragmentation balance.
func Ablation(se *Session, w io.Writer) error {
	procs := 64
	if len(se.Scale.Procs) > 0 {
		procs = se.Scale.Procs[len(se.Scale.Procs)-1]
	}
	app := AppByName("Radix")
	params := se.Scale.Params(app, app.BasicSize(), "")

	// 1. Contention model on/off.
	fprintf(w, "Ablation: machine-model design choices (Radix, %d keys, %d processors)\n\n", params.Size, procs)
	rows := [][]string{{"Contention model", "Elapsed (ms)", "Hub queueing (ms)"}}
	for _, on := range []bool{true, false} {
		cfg := se.Scale.Machine(procs)
		if !on {
			cfg.Lat.HubOcc = 0
			cfg.Lat.MemOcc = 0
			cfg.Lat.RouterOcc = 0
			cfg.Lat.MetaOcc = 0
			cfg.Lat.InvalOcc = 0
			cfg.Lat.FetchOpOcc = 0
			cfg.Lat.WritebackOcc = 0
		}
		r, err := se.Scale.RunConfig(app, cfg, params)
		if err != nil {
			return err
		}
		label := "occupancies on (default)"
		if !on {
			label = "occupancies off (latency-only)"
		}
		rows = append(rows, []string{
			label,
			fmt.Sprintf("%.2f", r.Elapsed.Milliseconds()),
			fmt.Sprintf("%.3f", r.Result.HubQueued.Milliseconds()),
		})
	}
	fprintf(w, "%s(the paper: simulation that misses contention overestimates scalability)\n\n", perf.Table(rows))

	// 2. Scheduling quantum sensitivity.
	rows = [][]string{{"Scheduler quantum", "Elapsed (ms)"}}
	var base sim.Time
	for _, q := range []sim.Time{250 * sim.Nanosecond, sim.Microsecond, 4 * sim.Microsecond} {
		cfg := se.Scale.Machine(procs)
		cfg.Quantum = q
		r, err := se.Scale.RunConfig(app, cfg, params)
		if err != nil {
			return err
		}
		if base == 0 {
			base = r.Elapsed
		}
		rows = append(rows, []string{
			q.String(),
			fmt.Sprintf("%.2f (%+.1f%%)", r.Elapsed.Milliseconds(),
				100*(float64(r.Elapsed)/float64(base)-1)),
		})
	}
	fprintf(w, "%s(model robustness: results should vary little with the quantum)\n\n", perf.Table(rows))

	// 3. Cache capacity: the lever behind the paper's capacity-miss and
	// superlinearity arguments.
	rows = [][]string{{"Cache size", "Elapsed (ms)", "Misses", "Hit rate"}}
	for _, mul := range []int{0, 1, 4} { // 0 encodes 1/4 of the scaled size
		cfg := se.Scale.Machine(procs)
		switch mul {
		case 0:
			cfg.Cache.SizeBytes /= 4
		case 4:
			cfg.Cache.SizeBytes *= 4
		}
		r, err := se.Scale.RunConfig(app, cfg, params)
		if err != nil {
			return err
		}
		c := r.Result.Counters
		hitRate := float64(c.Hits) / float64(c.Hits+c.Misses())
		rows = append(rows, []string{
			fmt.Sprintf("%dKB", cfg.Cache.SizeBytes>>10),
			fmt.Sprintf("%.2f", r.Elapsed.Milliseconds()),
			fmt.Sprintf("%d", c.Misses()),
			fmt.Sprintf("%.1f%%", 100*hitRate),
		})
	}
	fprintf(w, "%s", perf.Table(rows))
	fprintf(w, "(capacity misses turn into remote traffic when data is not local —\n")
	fprintf(w, " the mechanism behind Figures 4, 8 and the Water-Nsquared interchange)\n\n")
	return nil
}

var _ = core.Origin2000 // referenced for documentation clarity
