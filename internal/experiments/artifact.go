package experiments

import (
	"origin2000/internal/core"
	"origin2000/internal/metrics"
	"origin2000/internal/workload"
)

// artifactTopN bounds the page and sync tables saved in a run artifact.
const artifactTopN = 64

// BuildArtifact snapshots a finished run as a metrics.Artifact: the final
// per-processor state always, the sampler's series when metrics were on, and
// the trace-derived page/sync attribution tables when tracing was on. The
// machine is typically captured through Scale.TraceSink, which sees it even
// for failed runs.
func BuildArtifact(label string, app workload.App, params workload.Params, m *core.Machine) metrics.Artifact {
	a := metrics.Artifact{
		Schema:  metrics.ArtifactSchema,
		Label:   label,
		App:     app.Name(),
		Variant: params.Variant,
		Procs:   m.NumProcs(),
		Size:    params.Size,
		Elapsed: m.Elapsed(),
		PerProc: make([]metrics.ProcStat, m.NumProcs()),
	}
	for i := range a.PerProc {
		p := m.Proc(i)
		busy, memory, sync := p.Breakdown()
		a.PerProc[i] = metrics.ProcStat{
			Busy: busy, Memory: memory, Sync: sync,
			Counters: *p.Stats(),
		}
	}
	if s := m.Sampler(); s != nil {
		a.Interval = s.Interval()
		a.Machine = s.MachineSeries()
		a.Epochs = s.Epochs()
	}
	a.CritPath = m.CritPath()
	a.Sharing = m.SharingReport(artifactTopN)
	if tr := m.Tracer(); tr != nil {
		for _, h := range tr.TopPages(artifactTopN) {
			a.Pages = append(a.Pages, metrics.PageHeat{
				Page:         h.Key,
				LocalMisses:  h.LocalMisses,
				RemoteMisses: h.RemoteMisses(),
				Upgrades:     h.Upgrades,
				Stall:        h.Stall,
				Migrations:   h.Migrations,
			})
		}
		if len(a.Epochs) == 0 {
			a.Epochs = tr.Epochs()
		}
		for _, s := range tr.TopSync(artifactTopN) {
			a.Syncs = append(a.Syncs, metrics.SyncSite{
				Label:     s.Label,
				Waits:     s.Waits,
				Acquires:  s.Acquires,
				TotalWait: s.TotalWait,
			})
		}
	}
	return a
}
