package experiments

import (
	"io"
	"testing"

	"origin2000/internal/workload"
)

func TestScaleCheckPropagatesToMachineConfig(t *testing.T) {
	s := Scale{Div: 64, CacheDiv: 64, Check: true}
	if cfg := s.Machine(4); !cfg.Check {
		t.Fatal("Scale.Check not propagated to core.Config")
	}
	if cfg := (Scale{Div: 64, CacheDiv: 64}).Machine(4); cfg.Check {
		t.Fatal("checker enabled without Scale.Check")
	}
}

// TestCheckedFigure2FindsNoViolations runs one reduced fig2 iteration with
// the online coherence checker attached to every machine — the CI smoke
// for "the checker is silent on the real workloads". A violation surfaces
// as a run error.
func TestCheckedFigure2FindsNoViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("checked fig2 iteration takes ~10s")
	}
	s := TestScale
	s.Check = true
	se := NewSession(s)
	if err := Figure2(se, io.Discard); err != nil {
		t.Fatalf("checked fig2: %v", err)
	}
}

// TestCheckedRunMatchesUncheckedTiming: the checker must observe, never
// perturb — simulated time with the checker on is identical to off.
func TestCheckedRunMatchesUncheckedTiming(t *testing.T) {
	app := AppByName("FFT")
	params := workload.Params{Size: 1 << 10, Seed: 3}
	run := func(check bool) float64 {
		s := TestScale
		s.Check = check
		r, err := s.Run(app, 4, params)
		if err != nil {
			t.Fatal(err)
		}
		return r.Elapsed.Milliseconds()
	}
	if on, off := run(true), run(false); on != off {
		t.Fatalf("checker perturbed simulated time: %v (on) != %v (off)", on, off)
	}
}
