package experiments

import (
	"encoding/json"
	"errors"
	"fmt"

	"origin2000/internal/check"
	"origin2000/internal/core"
	"origin2000/internal/scenario"
	"origin2000/internal/sim"
	"origin2000/internal/snapshot"
	"origin2000/internal/synchro"
	"origin2000/internal/workload"
)

// Checkpoint drivers: capture a run's originckpt/v1 snapshots, resume from
// one with the resume-equivalence proof, and bisect a protocol fault to the
// window that introduced it. See internal/snapshot and DESIGN.md §13.

// RunSpec builds the snapshot header spec identifying (app, params) at this
// scale, so a decoded checkpoint names the run that produced it.
func (s Scale) RunSpec(app workload.App, params workload.Params) snapshot.RunSpec {
	s = s.normalize()
	spec := snapshot.RunSpec{
		App:      app.Name(),
		Size:     params.Size,
		Variant:  params.Variant,
		Prefetch: params.Prefetch,
		Div:      s.Div,
		CacheDiv: s.CacheDiv,
		Steps:    params.Steps,
		Seed:     params.Seed,
		Lock:     int(params.Lock),
		Barrier:  int(params.Barrier),
	}
	if s.Scenario != nil {
		spec.Scenario = s.Scenario.Name
		spec.ScenarioHash = s.Scenario.Hash()
	}
	return spec
}

// SpecParams rebuilds the workload parameters a snapshot's run used from
// its header spec — the inverse of RunSpec.
func SpecParams(spec snapshot.RunSpec) workload.Params {
	return workload.Params{
		Size:     spec.Size,
		Variant:  spec.Variant,
		Prefetch: spec.Prefetch,
		Seed:     spec.Seed,
		Steps:    spec.Steps,
		Lock:     synchro.LockAlgorithm(spec.Lock),
		Barrier:  synchro.BarrierAlgorithm(spec.Barrier),
	}
}

// RunCheckpointed executes app with snapshots captured every `every` of
// virtual time, collected in memory (and written to dir when non-empty).
func (s Scale) RunCheckpointed(app workload.App, procs int, params workload.Params, every sim.Time, dir string) (RunResult, []*snapshot.Snapshot, error) {
	cfg := s.Machine(procs)
	cfg.Checkpoint.Every = every
	cfg.Checkpoint.Dir = dir
	cfg.Checkpoint.Spec = s.RunSpec(app, params)
	var snaps []*snapshot.Snapshot
	cfg.Checkpoint.Sink = func(sn *snapshot.Snapshot) error {
		snaps = append(snaps, sn)
		return nil
	}
	r, err := s.RunConfig(app, cfg, params)
	return r, snaps, err
}

// ValidateResume checks a snapshot against the configuration that wants to
// resume it, before any replay work happens. The processor count must
// match, and a snapshot whose run had its worker count forced to one by an
// observer may not be resumed with more workers requested — the request
// could not be honored, so it errors loudly instead.
func ValidateResume(cfg *core.Config, sn *snapshot.Snapshot) error {
	if err := sn.Validate(); err != nil {
		return err
	}
	if cfg.Procs != sn.Header.Procs {
		return fmt.Errorf("experiments: resume: configuration has %d processors, snapshot has %d",
			cfg.Procs, sn.Header.Procs)
	}
	if sn.Header.WorkersForced && cfg.Workers > 1 {
		return fmt.Errorf("experiments: resume: snapshot's run forced workers=1 (checker or sampler enabled) "+
			"but the resume requests %d workers; rerun with -workers 1 or unset", cfg.Workers)
	}
	// Cross-scenario resume refusal: the replay re-executes on the
	// requested machine, so a snapshot from a different machine could never
	// prove equal — refuse up front with the two scenarios named. An empty
	// recorded hash means the snapshot predates scenario stamping and is
	// treated as the default machine.
	snapHash := sn.Header.Spec.ScenarioHash
	if snapHash == "" {
		snapHash = scenario.Default().Hash()
	}
	if cfgHash := cfg.ScenarioHash(); cfgHash != snapHash {
		snapName := sn.Header.Spec.Scenario
		if snapName == "" {
			snapName = "origin"
		}
		return fmt.Errorf("experiments: resume: snapshot was captured on scenario %q (hash %s) "+
			"but the resume requests scenario %q (hash %s); rerun with the matching -scenario",
			snapName, snapHash, cfg.ScenarioSpec().Name, cfgHash)
	}
	return nil
}

// ResumeRun re-executes app from the start with observers muted, proves
// state equality at sn's quiescent point, restores the observers, and runs
// to completion. A failed proof surfaces as a *snapshot.DivergenceError.
func (s Scale) ResumeRun(app workload.App, procs int, params workload.Params, sn *snapshot.Snapshot) (RunResult, error) {
	cfg := s.Machine(procs)
	cfg.Checkpoint.Spec = s.RunSpec(app, params)
	return s.ResumeConfig(app, cfg, params, sn)
}

// ResumeConfig is ResumeRun on a caller-prepared configuration — the tests
// use it to resume with capture still enabled, so a resumed run's remaining
// checkpoints can be compared against the uninterrupted run's.
func (s Scale) ResumeConfig(app workload.App, cfg core.Config, params workload.Params, sn *snapshot.Snapshot) (r RunResult, err error) {
	if verr := ValidateResume(&cfg, sn); verr != nil {
		return RunResult{}, verr
	}
	cfg.Checkpoint.Resume = sn
	var m *core.Machine
	keep := s.OnMachine
	s.OnMachine = func(mm *core.Machine) {
		m = mm
		if keep != nil {
			keep(mm)
		}
	}
	defer func() {
		if p := recover(); p != nil {
			var div *snapshot.DivergenceError
			if e, ok := p.(error); ok && errors.As(e, &div) {
				r, err = RunResult{}, div
				return
			}
			panic(p)
		}
	}()
	r, err = s.RunConfig(app, cfg, params)
	if err == nil && m != nil && m.Resuming() {
		return RunResult{}, fmt.Errorf("experiments: resume: run finished before reaching quiescent point %d (t=%v) — wrong program or parameters",
			sn.Header.QuiesSeq, sn.Header.VirtualTime)
	}
	return r, err
}

// ReplayTo re-executes app from the start with the coherence checker
// enabled and stops at the given quiescent sequence, returning the machine
// for inspection (its checker holds every violation detected on the
// prefix). The deliberate stop is not an error.
func (s Scale) ReplayTo(app workload.App, procs int, params workload.Params, stopAtSeq int64) (*core.Machine, error) {
	cfg := s.Machine(procs)
	cfg.Check = true
	cfg.Checkpoint.StopAtSeq = stopAtSeq
	return s.replay(app, cfg, params)
}

// replayConfig reconstructs the machine configuration recorded in a
// snapshot's header — the exact topology, latencies, and mapping of the
// run that produced it — with capture disabled and the coherence checker
// armed for a confirming replay.
func replayConfig(sn *snapshot.Snapshot) (core.Config, error) {
	var cfg core.Config
	if err := json.Unmarshal(sn.Header.Config, &cfg); err != nil {
		return core.Config{}, fmt.Errorf("experiments: snapshot header config does not parse: %w", err)
	}
	cfg.Checkpoint = core.CheckpointConfig{}
	cfg.Check = true
	return cfg, nil
}

// replay runs app on cfg, treating the deliberate StopAtSeq panic as
// success and returning the machine for inspection.
func (s Scale) replay(app workload.App, cfg core.Config, params workload.Params) (m *core.Machine, err error) {
	keep := s.OnMachine
	s.OnMachine = func(mm *core.Machine) {
		m = mm
		if keep != nil {
			keep(mm)
		}
	}
	defer func() {
		if p := recover(); p != nil {
			if e, ok := p.(error); ok && errors.Is(e, core.ErrStopped) {
				err = nil
				return
			}
			panic(p)
		}
	}()
	// The run's own error (including the end-of-run audit) is irrelevant
	// here: the caller reads the checker's violation log directly, and a
	// faulted run is *expected* to fail its audit.
	_, runErr := s.RunConfig(app, cfg, params)
	if m == nil {
		return nil, runErr
	}
	return m, nil
}

// BisectReport is the outcome of BisectViolation: the first checkpoint
// whose serialized state fails the static coherence audit, the virtual-time
// window the fault must therefore live in, and the checker violations a
// confirming replay of that window detected.
type BisectReport struct {
	// FirstBad indexes the first failing snapshot; -1 when every snapshot
	// audits clean.
	FirstBad int
	// SeqStart/SeqEnd and WindowStart/WindowEnd bound the fault: the last
	// clean quiescent point (zero when the first snapshot already fails)
	// and the first failing one.
	SeqStart, SeqEnd       int64
	WindowStart, WindowEnd sim.Time
	// Audit holds the failing snapshot's static audit findings.
	Audit []snapshot.StateViolation
	// Violations holds the confirming replay's checker findings whose
	// detection time falls inside the window.
	Violations []*check.Violation
}

// BisectViolation binary-searches snaps (in capture order) for the first
// checkpoint whose serialized directory/cache state breaks coherence, then
// replays the run with the online checker up to that point to confirm and
// pinpoint the fault. The static audit verdict is monotone for persistent
// corruption — once a stale line exists it stays until the (never-arriving)
// invalidation — which is what makes binary search sound.
func (s Scale) BisectViolation(app workload.App, procs int, params workload.Params, snaps []*snapshot.Snapshot) (*BisectReport, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("experiments: bisect: no snapshots")
	}
	bad := func(i int) []snapshot.StateViolation { return snapshot.AuditState(snaps[i]) }
	lastAudit := bad(len(snaps) - 1)
	if len(lastAudit) == 0 {
		return &BisectReport{FirstBad: -1}, nil
	}
	lo, hi := 0, len(snaps)-1 // invariant: hi audits bad
	firstAudit := lastAudit
	for lo < hi {
		mid := (lo + hi) / 2
		if a := bad(mid); len(a) > 0 {
			hi, firstAudit = mid, a
		} else {
			lo = mid + 1
		}
	}
	rep := &BisectReport{
		FirstBad:  hi,
		SeqEnd:    snaps[hi].Header.QuiesSeq,
		WindowEnd: snaps[hi].Header.VirtualTime,
		Audit:     firstAudit,
	}
	if hi > 0 {
		rep.SeqStart = snaps[hi-1].Header.QuiesSeq
		rep.WindowStart = snaps[hi-1].Header.VirtualTime
	}
	// Replay on the exact configuration the failing snapshot's run recorded
	// in its header — topology, mapping, latencies — not on a freshly
	// scaled default machine, so checkpoints from any origin-run invocation
	// bisect faithfully.
	cfg, cerr := replayConfig(snaps[hi])
	if cerr != nil {
		return rep, cerr
	}
	if cfg.Procs != procs {
		return rep, fmt.Errorf("experiments: bisect: %d processors requested, snapshot ran %d", procs, cfg.Procs)
	}
	cfg.Checkpoint.StopAtSeq = rep.SeqEnd
	m, err := s.replay(app, cfg, params)
	if err != nil {
		return rep, fmt.Errorf("experiments: bisect: confirming replay: %w", err)
	}
	if ck := m.Checker(); ck != nil {
		for _, v := range ck.Violations() {
			if v.At > rep.WindowStart && v.At <= rep.WindowEnd {
				rep.Violations = append(rep.Violations, v)
			}
		}
	}
	return rep, nil
}
