package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/metrics"
	"origin2000/internal/snapshot"
	"origin2000/internal/trace"
	"origin2000/internal/workload"
)

// The correctness tier of the checkpoint conformance suite (DESIGN.md §13):
// resuming from a mid-run snapshot must reproduce the uninterrupted run
// exactly — the same RunResult down to every counter, the same trace bytes,
// the same metrics series, the same checker verdict — under both engines
// and across worker counts. The scale matches the engine-equivalence suite
// (Div 64, 32 processors).

// saveCkptArtifacts drops a diverging snapshot pair into the CI artifact
// directory (ORIGIN_TRACE_ARTIFACTS) for offline diffing.
func saveCkptArtifacts(t *testing.T, label string, recorded, live *snapshot.Snapshot) {
	dir := trace.ArtifactDir()
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	for _, f := range []struct {
		role string
		s    *snapshot.Snapshot
	}{{"recorded", recorded}, {"live", live}} {
		if f.s == nil {
			continue
		}
		path := filepath.Join(dir, fmt.Sprintf("ckpt-%s-%s.originckpt", label, f.role))
		if err := f.s.WriteFile(path); err != nil {
			t.Logf("artifact write: %v", err)
			continue
		}
		t.Logf("saved %s", path)
	}
}

// ckptParams returns (app, params) at the conformance scale.
func ckptParams(t *testing.T, appName string) (workload.App, workload.Params) {
	t.Helper()
	app := AppByName(appName)
	if app == nil {
		t.Fatalf("unknown app %q", appName)
	}
	s := Scale{Div: 64, CacheDiv: 64}
	return app, s.Params(app, app.BasicSize(), "")
}

// exportTrace serializes a machine's event trace.
func exportTrace(t *testing.T, m *core.Machine) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := m.Tracer().WriteBinary(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// scrubResult nulls the live observer handles inside a RunResult so
// DeepEqual compares the simulation outcome, not tracer/sampler internals
// (ring cursors and buffer rotation differ after a Restore even when the
// logical content — which the tests compare separately via exported bytes
// and series — is identical).
func scrubResult(r RunResult) RunResult {
	r.Result.Trace = nil
	r.Result.Metrics = nil
	return r
}

// headerProvenanceOnly reports whether two snapshot headers agree on
// everything except which engine/worker count produced them — the one
// difference a cross-engine resume is allowed to leave behind.
func headerProvenanceOnly(t *testing.T, a, b snapshot.Header) bool {
	t.Helper()
	var ca, cb core.Config
	if err := json.Unmarshal(a.Config, &ca); err != nil {
		t.Fatalf("header config does not parse: %v", err)
	}
	if err := json.Unmarshal(b.Config, &cb); err != nil {
		t.Fatalf("header config does not parse: %v", err)
	}
	ca.Engine, cb.Engine = "", ""
	ca.Workers, cb.Workers = 0, 0
	a.Engine, b.Engine = "", ""
	a.Workers, b.Workers = 0, 0
	a.Config, b.Config = nil, nil
	return reflect.DeepEqual(a, b) && reflect.DeepEqual(ca, cb)
}

// TestResumeEquivalenceAllApps is the tentpole's contract: for every
// application, checkpoint a traced 32-processor run mid-flight, resume from
// the middle snapshot under the serial engine and the parallel engine at
// 1, 2, and 8 workers, and require the resumed runs to be indistinguishable
// from the uninterrupted one — equal RunResult and byte-equal exported
// trace — and every checkpoint the resumed run still emits to byte-match
// the uninterrupted run's.
func TestResumeEquivalenceAllApps(t *testing.T) {
	for _, app := range Apps() {
		name := app.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			app, params := ckptParams(t, name)
			s := Scale{Div: 64, CacheDiv: 64, Trace: trace.Options{Enabled: true, Lossless: true}}
			var straightM *core.Machine
			s.TraceSink = func(_ string, mm *core.Machine) { straightM = mm }

			// Uninterrupted reference run.
			straight, err := s.Run(app, 32, params)
			if err != nil {
				t.Fatal(err)
			}
			straightTrace := exportTrace(t, straightM)
			if straight.Elapsed <= 0 {
				t.Fatal("reference run has no elapsed time")
			}

			// The same run with periodic capture: four snapshots, and the
			// capture itself must not perturb the simulation.
			every := straight.Elapsed / 4
			ckptRun, snaps, err := s.RunCheckpointed(app, 32, params, every, "")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(scrubResult(straight), scrubResult(ckptRun)) {
				t.Fatalf("capture perturbed the run:\nstraight %+v\ncaptured %+v", straight, ckptRun)
			}
			if len(snaps) == 0 {
				t.Fatalf("no snapshots captured (elapsed %v, every %v)", straight.Elapsed, every)
			}
			for i, sn := range snaps {
				if err := sn.Validate(); err != nil {
					t.Fatalf("snapshot %d fails Validate: %v", i, err)
				}
			}
			mid := snaps[len(snaps)/2]

			for _, eng := range []struct {
				engine  string
				workers int
			}{{"serial", 0}, {"parallel", 1}, {"parallel", 2}, {"parallel", 8}} {
				label := fmt.Sprintf("%s-w%d", eng.engine, eng.workers)
				rs := Scale{Div: 64, CacheDiv: 64, Engine: eng.engine, Workers: eng.workers,
					Trace: trace.Options{Enabled: true, Lossless: true}}
				var resumedM *core.Machine
				rs.TraceSink = func(_ string, mm *core.Machine) { resumedM = mm }
				cfg := rs.Machine(32)
				cfg.Checkpoint.Spec = rs.RunSpec(app, params)
				cfg.Checkpoint.Every = every
				var resumedSnaps []*snapshot.Snapshot
				cfg.Checkpoint.Sink = func(sn *snapshot.Snapshot) error {
					resumedSnaps = append(resumedSnaps, sn)
					return nil
				}
				resumed, err := rs.ResumeConfig(app, cfg, params, mid)
				if err != nil {
					t.Fatalf("%s: resume: %v", label, err)
				}
				if !reflect.DeepEqual(scrubResult(straight), scrubResult(resumed)) {
					t.Errorf("%s: resumed result differs from the uninterrupted run:\nstraight %+v\nresumed  %+v",
						label, straight, resumed)
				}
				rb := exportTrace(t, resumedM)
				if !bytes.Equal(straightTrace, rb) {
					t.Errorf("%s: resumed trace differs (%d vs %d bytes)", label, len(straightTrace), len(rb))
				}
				// The resumed run keeps capturing past the resume point; its
				// snapshots must byte-match the uninterrupted run's tail.
				tail := snaps[len(snaps)/2+1:]
				if len(resumedSnaps) != len(tail) {
					t.Errorf("%s: resumed run emitted %d snapshots after the resume point, uninterrupted run emitted %d",
						label, len(resumedSnaps), len(tail))
				}
				for i := 0; i < len(tail) && i < len(resumedSnaps); i++ {
					sec, ok := snapshot.Diff(tail[i], resumedSnaps[i])
					if !ok && sec == "header" && headerProvenanceOnly(t, tail[i].Header, resumedSnaps[i].Header) {
						// The header records the engine and worker count that
						// produced the file — legitimate provenance, expected
						// to differ when resuming under another engine. Every
						// machine-state section already matched.
						continue
					}
					if !ok {
						t.Errorf("%s: post-resume snapshot %d differs in section %q", label, i, sec)
						saveCkptArtifacts(t, fmt.Sprintf("%s-%s-%d", name, label, i), tail[i], resumedSnaps[i])
					}
				}
			}
		})
	}
}

// TestResumeObserverEquivalence extends the contract to the stateful
// observers: a run with the coherence checker and the metrics sampler
// enabled is checkpointed mid-flight and resumed; the resumed run's checker
// verdict and sample series must equal the uninterrupted run's. (Either
// observer forces one worker, so the engines differ only in name here.)
func TestResumeObserverEquivalence(t *testing.T) {
	for _, name := range []string{"FFT", "Raytrace"} {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			app, params := ckptParams(t, name)
			s := Scale{Div: 64, CacheDiv: 64, Check: true, Metrics: metrics.Options{Enabled: true}}
			var straightM *core.Machine
			s.TraceSink = func(_ string, mm *core.Machine) { straightM = mm }
			straight, err := s.Run(app, 32, params)
			if err != nil {
				t.Fatal(err)
			}
			_, snaps, err := s.RunCheckpointed(app, 32, params, straight.Elapsed/2, "")
			if err != nil {
				t.Fatal(err)
			}
			if len(snaps) == 0 {
				t.Fatal("no snapshots captured")
			}
			sn := snaps[len(snaps)-1]
			if sn.Checker == nil || sn.Metrics == nil {
				t.Fatal("snapshot is missing the observer sections")
			}
			if !sn.Header.WorkersForced {
				t.Fatal("snapshot does not record the workers=1 forcing")
			}
			for _, engine := range []string{"serial", "parallel"} {
				rs := Scale{Div: 64, CacheDiv: 64, Engine: engine, Check: true,
					Metrics: metrics.Options{Enabled: true}}
				var resumedM *core.Machine
				rs.TraceSink = func(_ string, mm *core.Machine) { resumedM = mm }
				resumed, err := rs.ResumeRun(app, 32, params, sn)
				if err != nil {
					t.Fatalf("%s: resume: %v", engine, err)
				}
				if !reflect.DeepEqual(scrubResult(straight), scrubResult(resumed)) {
					t.Errorf("%s: resumed result differs:\nstraight %+v\nresumed  %+v", engine, straight, resumed)
				}
				sc, rc := straightM.Checker(), resumedM.Checker()
				if rc == nil {
					t.Fatalf("%s: resumed run has no checker", engine)
				}
				if !reflect.DeepEqual(sc.Violations(), rc.Violations()) {
					t.Errorf("%s: checker verdicts differ", engine)
				}
				ss, rsamp := straightM.Sampler(), resumedM.Sampler()
				if rsamp == nil {
					t.Fatalf("%s: resumed run has no sampler", engine)
				}
				if !reflect.DeepEqual(ss.MachineSeries(), rsamp.MachineSeries()) {
					t.Errorf("%s: machine sample series differ", engine)
				}
				if !reflect.DeepEqual(ss.AllProcSeries(), rsamp.AllProcSeries()) {
					t.Errorf("%s: per-processor sample series differ", engine)
				}
				if !reflect.DeepEqual(ss.Epochs(), rsamp.Epochs()) {
					t.Errorf("%s: epoch marks differ", engine)
				}
			}
		})
	}
}

// TestResumeFromDisk proves the full file round-trip: snapshots written by
// -checkpoint-every decode from disk and resume bit-identically.
func TestResumeFromDisk(t *testing.T) {
	app, params := ckptParams(t, "FFT")
	s := Scale{Div: 64, CacheDiv: 64}
	straight, err := s.Run(app, 32, params)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	_, _, err = s.RunCheckpointed(app, 32, params, straight.Elapsed/3, dir)
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "ckpt-*.originckpt"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no checkpoint files written (err=%v)", err)
	}
	sn, err := snapshot.ReadFile(files[len(files)-1])
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	resumed, err := s.ResumeRun(app, 32, params, sn)
	if err != nil {
		t.Fatalf("resume from disk: %v", err)
	}
	if !reflect.DeepEqual(straight, resumed) {
		t.Errorf("disk-resumed result differs:\nstraight %+v\nresumed  %+v", straight, resumed)
	}
}

// TestResumeDivergenceDetected tampers with a snapshot's simulation state;
// the resume proof must fail with a DivergenceError naming the section
// rather than continue from wrong state.
func TestResumeDivergenceDetected(t *testing.T) {
	app, params := ckptParams(t, "FFT")
	s := Scale{Div: 64, CacheDiv: 64}
	straight, err := s.Run(app, 32, params)
	if err != nil {
		t.Fatal(err)
	}
	_, snaps, err := s.RunCheckpointed(app, 32, params, straight.Elapsed/2, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots captured")
	}
	sn := snaps[0]
	sn.Caches[3].Clock += 17
	_, err = s.ResumeRun(app, 32, params, sn)
	div, ok := err.(*snapshot.DivergenceError)
	if !ok {
		t.Fatalf("tampered resume returned %T (%v), want *snapshot.DivergenceError", err, err)
	}
	if div.Section != "caches" {
		t.Errorf("divergence reported in section %q, want caches", div.Section)
	}
	if div.Seq != sn.Header.QuiesSeq {
		t.Errorf("divergence at seq %d, want the snapshot's quiescent point %d", div.Seq, sn.Header.QuiesSeq)
	}
}

// TestResumeWorkersMismatch: a snapshot from a run whose worker count was
// forced to one (checker on) must refuse a resume that requests more
// workers, loudly, before any replay happens.
func TestResumeWorkersMismatch(t *testing.T) {
	app, params := ckptParams(t, "FFT")
	s := Scale{Div: 64, CacheDiv: 64, Check: true}
	straight, err := s.Run(app, 32, params)
	if err != nil {
		t.Fatal(err)
	}
	_, snaps, err := s.RunCheckpointed(app, 32, params, straight.Elapsed/2, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots captured")
	}
	sn := snaps[0]
	if !sn.Header.WorkersForced {
		t.Fatal("checked run's snapshot does not record the workers=1 forcing")
	}
	rs := Scale{Div: 64, CacheDiv: 64, Engine: "parallel", Workers: 8, Check: true}
	_, err = rs.ResumeRun(app, 32, params, sn)
	if err == nil {
		t.Fatal("resume with 8 workers of a forced-single-worker snapshot succeeded")
	}
	if !strings.Contains(err.Error(), "workers") {
		t.Errorf("error does not explain the workers mismatch: %v", err)
	}
}

// TestBisectDroppedInvalidation is the time-travel acceptance test: seed a
// lost-invalidation fault mid-run, checkpoint periodically, and require the
// bisection to land on exactly the window containing the drop — confirmed
// by a checker replay whose violation times fall inside that window.
func TestBisectDroppedInvalidation(t *testing.T) {
	// Ocean writes heavily enough to send ~18k invalidations at this scale,
	// and a stale line it leaves behind survives to the end of the run (the
	// audit verdict stays monotone), which is what makes the binary search
	// sound. FFT would be useless here: it sends none at all.
	app, params := ckptParams(t, "Ocean")
	const dropAt = 8000 // drop the Nth invalidation the directory sends
	s := Scale{Div: 64, CacheDiv: 64}
	s.OnMachine = func(m *core.Machine) {
		n := 0
		m.FaultDropInvalidation(func(block uint64, proc int) bool {
			n++
			return n == dropAt
		})
	}

	// Healthy elapsed time sizes the checkpoint grid (the faulted run only
	// differs in timing noise).
	healthy, err := Scale{Div: 64, CacheDiv: 64}.Run(app, 32, params)
	if err != nil {
		t.Fatal(err)
	}
	every := healthy.Elapsed / 8

	_, snaps, err := s.RunCheckpointed(app, 32, params, every, "")
	if err != nil {
		t.Fatalf("faulted run failed outright: %v", err)
	}
	if len(snaps) < 3 {
		t.Fatalf("only %d snapshots captured; the bisection needs a few", len(snaps))
	}

	rep, err := s.BisectViolation(app, 32, params, snaps)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FirstBad < 0 {
		t.Fatal("bisection found no corrupt checkpoint despite the seeded fault")
	}
	if len(rep.Audit) == 0 {
		t.Fatal("report carries no static audit findings")
	}
	// The binary search must agree with an exhaustive scan: everything
	// before FirstBad audits clean, FirstBad audits dirty.
	for i := 0; i < rep.FirstBad; i++ {
		if v := snapshot.AuditState(snaps[i]); len(v) != 0 {
			t.Fatalf("snapshot %d (< FirstBad=%d) audits dirty: %v", i, rep.FirstBad, v)
		}
	}
	if v := snapshot.AuditState(snaps[rep.FirstBad]); len(v) == 0 {
		t.Fatalf("snapshot FirstBad=%d audits clean", rep.FirstBad)
	}
	// The confirming replay must have tripped the coherence checker inside
	// the reported window — the drop itself, not just its aftermath.
	if len(rep.Violations) == 0 {
		t.Fatalf("confirming replay found no checker violations in window (%v, %v]",
			rep.WindowStart, rep.WindowEnd)
	}
	foundDrop := false
	for _, v := range rep.Violations {
		if v.At <= rep.WindowStart || v.At > rep.WindowEnd {
			t.Errorf("violation at %v outside the reported window (%v, %v]", v.At, rep.WindowStart, rep.WindowEnd)
		}
		if strings.Contains(v.Msg, "invalidation") {
			foundDrop = true
		}
	}
	if !foundDrop {
		t.Errorf("no violation names the dropped invalidation; got: %v", rep.Violations[0])
	}
}

// TestBisectCleanRun: a healthy run's checkpoints audit clean and the
// bisection reports no fault.
func TestBisectCleanRun(t *testing.T) {
	app, params := ckptParams(t, "FFT")
	s := Scale{Div: 64, CacheDiv: 64}
	straight, err := s.Run(app, 32, params)
	if err != nil {
		t.Fatal(err)
	}
	_, snaps, err := s.RunCheckpointed(app, 32, params, straight.Elapsed/4, "")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.BisectViolation(app, 32, params, snaps)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FirstBad != -1 {
		t.Fatalf("clean run bisected to snapshot %d: %v", rep.FirstBad, rep.Audit)
	}
}

// TestScaleResumeSmoke is the scale tier: a 128-processor Figure 2 point is
// checkpointed and resumed at full machine width. Gated like the speedup
// smoke — set ORIGIN_CKPT_SCALE_SMOKE=1 to run (CI runs it nightly-style).
func TestScaleResumeSmoke(t *testing.T) {
	if os.Getenv("ORIGIN_CKPT_SCALE_SMOKE") == "" {
		t.Skip("set ORIGIN_CKPT_SCALE_SMOKE=1 to run the 128-processor resume smoke")
	}
	app, _ := ckptParams(t, "FFT")
	s := Scale{Div: 64, CacheDiv: 64}
	params := s.Params(app, app.BasicSize(), "")
	straight, err := s.Run(app, 128, params)
	if err != nil {
		t.Fatal(err)
	}
	_, snaps, err := s.RunCheckpointed(app, 128, params, straight.Elapsed/2, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots captured")
	}
	for _, eng := range []struct {
		engine  string
		workers int
	}{{"serial", 0}, {"parallel", 8}} {
		rs := Scale{Div: 64, CacheDiv: 64, Engine: eng.engine, Workers: eng.workers}
		resumed, err := rs.ResumeRun(app, 128, params, snaps[len(snaps)-1])
		if err != nil {
			t.Fatalf("%s-w%d: %v", eng.engine, eng.workers, err)
		}
		if !reflect.DeepEqual(straight, resumed) {
			t.Errorf("%s-w%d: 128-processor resume differs:\nstraight %+v\nresumed  %+v",
				eng.engine, eng.workers, straight, resumed)
		}
	}
}
