package experiments

import (
	"reflect"
	"runtime"
	"testing"

	"origin2000/internal/mempolicy"
)

// TestDeterminism128Procs is the safety net for the direct-handoff
// scheduler and the hot-path data structures: a 128-processor mixed
// workload (compute, coherence traffic, barriers/locks, and — in one
// configuration — page migration) must produce a bit-identical perf.Result
// (elapsed time, every per-processor breakdown, every counter) run to run
// and across GOMAXPROCS settings.
func TestDeterminism128Procs(t *testing.T) {
	s := Scale{Div: 64, CacheDiv: 64}
	run := func(t *testing.T, appName string, migrate bool) RunResult {
		t.Helper()
		app := AppByName(appName)
		if app == nil {
			t.Fatalf("unknown app %q", appName)
		}
		cfg := s.Machine(128)
		if migrate {
			// Round-robin placement plus a low threshold forces
			// remote misses and real page migrations, exercising the
			// page-home TLB invalidation path.
			cfg.Placement = mempolicy.RoundRobin
			cfg.IgnorePlacement = true
			cfg.MigrationThreshold = 8
		}
		r, err := s.RunConfig(app, cfg, s.Params(app, app.BasicSize(), ""))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	cases := []struct {
		app     string
		migrate bool
	}{
		{"FFT", false},
		{"Water-Nsquared", true},
	}
	for _, c := range cases {
		t.Run(c.app, func(t *testing.T) {
			prev := runtime.GOMAXPROCS(0)
			defer runtime.GOMAXPROCS(prev)

			runtime.GOMAXPROCS(1)
			first := run(t, c.app, c.migrate)
			second := run(t, c.app, c.migrate)
			if !reflect.DeepEqual(first, second) {
				t.Errorf("run-to-run results differ at GOMAXPROCS=1:\n%+v\nvs\n%+v", first, second)
			}

			runtime.GOMAXPROCS(4)
			third := run(t, c.app, c.migrate)
			if !reflect.DeepEqual(first, third) {
				t.Errorf("results differ across GOMAXPROCS 1 vs 4:\n%+v\nvs\n%+v", first, third)
			}

			if c.migrate && first.Result.Migrations == 0 {
				t.Error("migration config produced no page migrations; the TLB-invalidation path went unexercised")
			}
		})
	}
}
