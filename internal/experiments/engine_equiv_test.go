package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/mempolicy"
	"origin2000/internal/metrics"
	"origin2000/internal/trace"
)

// saveEngineArtifacts drops both engines' exported traces into the CI
// artifact directory (ORIGIN_TRACE_ARTIFACTS) when a bit-identity check
// fails, so the diverging shard merge can be diffed offline.
func saveEngineArtifacts(t *testing.T, app string, serial, parallel []byte) {
	dir := trace.ArtifactDir()
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	for _, f := range []struct {
		engine string
		data   []byte
	}{{"serial", serial}, {"parallel", parallel}} {
		path := filepath.Join(dir, fmt.Sprintf("engine-equiv-%s-%s.trace", app, f.engine))
		if err := os.WriteFile(path, f.data, 0o644); err != nil {
			t.Logf("artifact write: %v", err)
			continue
		}
		t.Logf("saved %s", path)
	}
}

// engineRun executes app at 32 processors under the given engine and
// returns the full measurement plus the machine (for trace and sampler
// inspection). The scale matches the determinism tests (Div 64).
func engineRun(t *testing.T, appName, engine string, workers int,
	mutate func(*core.Config)) (RunResult, *core.Machine) {
	t.Helper()
	app := AppByName(appName)
	if app == nil {
		t.Fatalf("unknown app %q", appName)
	}
	s := Scale{Div: 64, CacheDiv: 64, Engine: engine, Workers: workers}
	var m *core.Machine
	s.TraceSink = func(_ string, mm *core.Machine) { m = mm }
	cfg := s.Machine(32)
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := s.RunConfig(app, cfg, s.Params(app, app.BasicSize(), ""))
	if err != nil {
		t.Fatal(err)
	}
	return r, m
}

// TestEngineEquivalenceAllApps is the tentpole's contract: for every
// application in the study, a 32-processor run under the parallel engine
// at 1, 2, and 8 host workers must be bit-identical to the serial
// reference engine — the same elapsed time, the same perf.Result down to
// every per-processor counter, and the same exported trace, byte for
// byte. The engines share one windowed schedule that is a function of
// virtual time only, so any divergence is a sharding or merge bug, never
// an accepted approximation. The worker sweep covers the degenerate
// single-worker case, the first truly concurrent one, and an
// oversubscribed one (run-ahead entry, window turnover, and work stealing
// all depend on chain interleaving, which shifts with the worker count).
func TestEngineEquivalenceAllApps(t *testing.T) {
	for _, app := range Apps() {
		name := app.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			traced := func(cfg *core.Config) {
				cfg.Trace = trace.Options{Enabled: true, Lossless: true}
			}
			export := func(m *core.Machine) []byte {
				var b bytes.Buffer
				if err := m.Tracer().WriteBinary(&b); err != nil {
					t.Fatal(err)
				}
				return b.Bytes()
			}
			serial, sm := engineRun(t, name, "serial", 0, traced)
			sb := export(sm)
			if len(sb) == 0 {
				t.Fatal("serial run exported an empty trace")
			}
			for _, workers := range []int{1, 2, 8} {
				par, pm := engineRun(t, name, "parallel", workers, traced)
				if !reflect.DeepEqual(serial, par) {
					t.Errorf("workers=%d results differ between engines:\nserial   %+v\nparallel %+v",
						workers, serial, par)
				}
				pb := export(pm)
				if !bytes.Equal(sb, pb) {
					t.Errorf("workers=%d binary trace differs between engines (%d vs %d bytes)",
						workers, len(sb), len(pb))
					saveEngineArtifacts(t, name, sb, pb)
				}
				// The merged per-shard heat and histogram buckets must fold
				// to the serial totals too (WriteBinary covers the rings).
				if !reflect.DeepEqual(sm.Tracer().TopPages(50), pm.Tracer().TopPages(50)) {
					t.Errorf("workers=%d page heat ranking differs between engines", workers)
				}
				if !reflect.DeepEqual(sm.Tracer().LatencyReport(), pm.Tracer().LatencyReport()) {
					t.Errorf("workers=%d latency histograms differ between engines", workers)
				}
				if !reflect.DeepEqual(sm.Tracer().QueueReport(), pm.Tracer().QueueReport()) {
					t.Errorf("workers=%d queue histograms differ between engines", workers)
				}
			}
		})
	}
}

// TestEngineEquivalenceAdaptiveWindows extends the contract to adaptive
// window sizing: the width sequence is a pure function of virtual-time
// observables (sim.AdaptWindow), so an adaptive run must also be
// bit-identical across engines and worker counts — and identical whether
// the serial or the parallel engine resizes. Covers a lock-heavy app
// (Barnes, whose critical regions span window edges), a barrier-phased one
// (FFT), and a task-stealing one (Raytrace).
func TestEngineEquivalenceAdaptiveWindows(t *testing.T) {
	for _, name := range []string{"Barnes", "FFT", "Raytrace"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			adaptive := func(cfg *core.Config) {
				cfg.WindowPolicy = "adaptive"
			}
			serial, _ := engineRun(t, name, "serial", 0, adaptive)
			for _, workers := range []int{1, 2, 8} {
				par, _ := engineRun(t, name, "parallel", workers, adaptive)
				if !reflect.DeepEqual(serial, par) {
					t.Errorf("adaptive workers=%d results differ between engines:\nserial   %+v\nparallel %+v",
						workers, serial, par)
				}
			}
		})
	}
}

// TestEngineEquivalenceMigration covers the hardest cross-shard path: with
// round-robin placement and a low migration threshold, remote misses mutate
// the shared page table and move directory records between shards mid-run.
func TestEngineEquivalenceMigration(t *testing.T) {
	migrate := func(cfg *core.Config) {
		cfg.Placement = mempolicy.RoundRobin
		cfg.IgnorePlacement = true
		cfg.MigrationThreshold = 8
	}
	serial, _ := engineRun(t, "Water-Nsquared", "serial", 0, migrate)
	par, _ := engineRun(t, "Water-Nsquared", "parallel", 4, migrate)
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("migrating results differ between engines:\nserial   %+v\nparallel %+v",
			serial, par)
	}
	if serial.Result.Migrations == 0 {
		t.Error("migration config produced no page migrations; the cross-shard remap path went unexercised")
	}
}

// TestEngineEquivalenceObservers pins the observer story: the checker, the
// metrics sampler and the sharing classifier read cross-shard state at
// event time, so enabling any of them forces the parallel engine down to
// one worker — and with that, a checked, sampled and classified run under
// -engine=parallel must produce exactly the serial run's verdicts, sample
// series and sharing report.
func TestEngineEquivalenceObservers(t *testing.T) {
	for _, name := range []string{"FFT", "Raytrace"} {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			observed := func(cfg *core.Config) {
				cfg.Check = true
				cfg.Metrics = metrics.Options{Enabled: true}
				cfg.Sharing.Enabled = true
			}
			serial, sm := engineRun(t, name, "serial", 0, observed)
			par, pm := engineRun(t, name, "parallel", 4, observed)
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("observed results differ between engines:\nserial   %+v\nparallel %+v",
					serial, par)
			}
			ss, ps := sm.Sampler(), pm.Sampler()
			if ss.Samples() == 0 {
				t.Fatal("sampler recorded no samples")
			}
			if !reflect.DeepEqual(ss.MachineSeries(), ps.MachineSeries()) {
				t.Error("machine sample series differ between engines")
			}
			if !reflect.DeepEqual(ss.AllProcSeries(), ps.AllProcSeries()) {
				t.Error("per-processor sample series differ between engines")
			}
			if !reflect.DeepEqual(ss.Epochs(), ps.Epochs()) {
				t.Error("epoch marks differ between engines")
			}
			sr, pr := sm.SharingReport(0), pm.SharingReport(0)
			if sr == nil || pr == nil {
				t.Fatal("sharing classifier enabled but a report is nil")
			}
			if !reflect.DeepEqual(sr, pr) {
				t.Error("sharing reports differ between engines")
			}
		})
	}
}
