// Package experiments reproduces every table and figure of the paper's
// evaluation: the Table 1 latency comparison, Table 2 sequential times, the
// Figure 2 speedups, Figure 3 breakdown, Figure 4/9 problem-size sweeps,
// Figures 5-8/10 per-processor breakdowns, the Table 3 placement
// comparison, and the Section 6/7 hardware-feature and topology studies.
//
// Paper-scale inputs are large; a Scale divides the problem sizes and —
// crucially — the cache, so working-set-to-cache ratios (which drive the
// paper's capacity effects) are preserved at reduced cost.
package experiments

import (
	"fmt"
	"io"

	"origin2000/internal/apps/barnes"
	"origin2000/internal/apps/fft"
	"origin2000/internal/apps/infer"
	"origin2000/internal/apps/ocean"
	"origin2000/internal/apps/protein"
	"origin2000/internal/apps/radix"
	"origin2000/internal/apps/raytrace"
	"origin2000/internal/apps/shearwarp"
	"origin2000/internal/apps/volrend"
	"origin2000/internal/apps/watern"
	"origin2000/internal/apps/waters"
	"origin2000/internal/core"
	"origin2000/internal/metrics"
	"origin2000/internal/perf"
	"origin2000/internal/scenario"
	"origin2000/internal/sim"
	"origin2000/internal/trace"
	"origin2000/internal/workload"
)

// Scale controls how far problem sizes and the cache are divided relative
// to the paper.
type Scale struct {
	// Div divides every problem size (1 = paper scale).
	Div int
	// CacheDiv divides the 4MB cache correspondingly.
	CacheDiv int
	// Steps overrides per-app timesteps/frames (0 = app defaults).
	Steps int
	// Procs overrides the processor counts used by the multi-machine
	// experiments (nil = the paper's counts).
	Procs []int
	// Seed for input generation.
	Seed int64
	// Check enables the online coherence-invariant checker on every
	// machine the scale builds; any experiment run then fails if the
	// protocol violates an invariant.
	Check bool
	// Trace configures the event tracer on every machine the scale
	// builds (zero value = tracing off).
	Trace trace.Options
	// Metrics configures the virtual-time sampler on every machine the
	// scale builds (zero value = sampling off).
	Metrics metrics.Options
	// TraceSink, when set together with Trace.Enabled, receives every
	// machine RunConfig executes — including failed runs, whose traces
	// are exactly the interesting ones — labeled "<app>-p<procs>-s<size>".
	TraceSink func(label string, m *core.Machine)
	// Engine selects the execution engine on every machine the scale
	// builds: "serial" (default) or "parallel" (bit-identical, uses
	// Workers host cores).
	Engine string
	// Workers bounds the parallel engine's host workers (0 = GOMAXPROCS;
	// ignored for the serial engine).
	Workers int
	// Window selects the engine's window policy in -window flag syntax
	// ("fixed", "fixed:<dur>", "adaptive", "adaptive:<dur>"; empty =
	// fixed at the machine's default quantum). See core.ParseWindowSpec.
	Window string
	// HostProf enables the host-time profiler on every machine the scale
	// builds. Unlike Check/Metrics it does NOT force workers=1: the
	// profiler is schedule-neutral by contract.
	HostProf bool
	// CritPath enables critical-path recording on every machine the scale
	// builds (barrier-arrival snapshots; bit-identical at any worker
	// count).
	CritPath bool
	// Sharing enables the per-block sharing-pattern classifier on every
	// machine the scale builds. Like Check/Metrics it forces workers=1;
	// the schedule is identical at any worker count, so results are too.
	Sharing bool
	// OnMachine, when set, sees every machine RunConfig builds before the
	// application runs on it — the hook fault-injection and checkpoint
	// tests use to reach Machine-level knobs the Config does not carry.
	OnMachine func(m *core.Machine)
	// Scenario declares the machine every config this scale builds:
	// interconnect topology, directory sharer format and latency preset
	// (see internal/scenario and DESIGN.md §16). nil selects the default
	// scenario, bit-identical to the pre-scenario hard-coded Origin.
	Scenario *scenario.Spec
}

// FullScale runs the paper's actual input sizes.
var FullScale = Scale{Div: 1, CacheDiv: 1}

// BenchScale is the default for the benchmark harness: sizes and cache
// divided by 8.
var BenchScale = Scale{Div: 8, CacheDiv: 8}

// TestScale is small enough for unit tests.
var TestScale = Scale{Div: 64, CacheDiv: 64, Procs: []int{4, 8}}

func (s Scale) normalize() Scale {
	if s.Div < 1 {
		s.Div = 1
	}
	if s.CacheDiv < 1 {
		s.CacheDiv = 1
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	return s
}

// Machine builds a scaled Origin2000 configuration.
func (s Scale) Machine(procs int) core.Config {
	s = s.normalize()
	cfg := core.Origin2000(procs)
	cfg.Cache.SizeBytes /= s.CacheDiv
	if cfg.Cache.SizeBytes < 32<<10 {
		cfg.Cache.SizeBytes = 32 << 10
	}
	cfg.Check = s.Check
	cfg.Trace = s.Trace
	cfg.Metrics = s.Metrics
	cfg.Engine = s.Engine
	cfg.Workers = s.Workers
	cfg.HostProf = s.HostProf
	cfg.CritPath = s.CritPath
	cfg.Sharing.Enabled = s.Sharing
	if s.Scenario != nil {
		sc := s.Scenario.Normalized()
		cfg.Scenario = &sc
		if sc.Latency != "origin2000" {
			// Origin2000() preset the default latencies; zero them so
			// normalize resolves the scenario's Table-1 preset instead.
			cfg.Lat = core.Latencies{}
		}
	}
	if s.Window != "" {
		policy, quantum, max, err := core.ParseWindowSpec(s.Window)
		if err != nil {
			panic(err)
		}
		cfg.WindowPolicy = policy
		cfg.WindowMax = max
		if quantum > 0 {
			cfg.Quantum = quantum
		}
	}
	return cfg
}

// procCounts returns the experiment's processor counts.
func (s Scale) procCounts(def []int) []int {
	if len(s.Procs) > 0 {
		return s.Procs
	}
	return def
}

// Apps returns the study's applications in the paper's Table 2 order.
func Apps() []workload.App {
	return []workload.App{
		barnes.New(),
		infer.New(),
		fft.New(),
		ocean.New(),
		protein.New(),
		radix.New(),
		raytrace.New(),
		shearwarp.New(),
		volrend.New(),
		watern.New(),
		waters.New(),
	}
}

// AppByName returns the named application, or nil.
func AppByName(name string) workload.App {
	for _, a := range Apps() {
		if a.Name() == name {
			return a
		}
	}
	return nil
}

// parallelismFloor is the smallest scaled basic size that keeps the
// paper's processor counts busy (128 processors need rows/tiles/bodies to
// partition).
var parallelismFloor = map[string]int{
	"FFT":            1 << 18,
	"Ocean":          258,
	"Radix":          1 << 18,
	"Barnes":         2048,
	"Water-Nsquared": 1024,
	"Water-Spatial":  1024,
	"Raytrace":       128,
	"Volrend":        64,
	"Shear-Warp":     64,
	"Infer":          192,
	"Protein":        12,
}

// constrain applies each application's structural size requirements
// (square powers of two, tile/brick multiples, even molecule counts, hard
// minimum viability).
func constrain(app workload.App, v int) int {
	switch app.Name() {
	case "FFT":
		n := 1 << 12
		for n*4 <= v {
			n *= 4
		}
		return n
	case "Ocean":
		if v < 34 {
			v = 34
		}
		return v
	case "Radix":
		if v < 1<<14 {
			v = 1 << 14
		}
		return v
	case "Barnes":
		if v < 512 {
			v = 512
		}
		return v
	case "Water-Nsquared", "Water-Spatial":
		if v < 128 {
			v = 128
		}
		return v &^ 1
	case "Raytrace", "Volrend", "Shear-Warp":
		if v < 32 {
			v = 32
		}
		return v &^ 7
	case "Infer":
		if v < 48 {
			v = 48
		}
		return v
	case "Protein":
		if v < 4 {
			v = 4
		}
		return v
	}
	if v < 1 {
		v = 1
	}
	return v
}

// Size scales a paper-scale problem size for the given app. The result is
// floored so the paper's processor counts stay busy, then constrained to
// the application's structural requirements.
func (s Scale) Size(app workload.App, paperSize int) int {
	s = s.normalize()
	if s.Div == 1 {
		return constrain(app, paperSize)
	}
	v := paperSize / s.Div
	if f := parallelismFloor[app.Name()]; v < f {
		v = f
	}
	return constrain(app, v)
}

// SweepSize scales a sweep point *relative to the scaled basic size*, so a
// problem-size sweep keeps the paper's ratios even when the basic size has
// been floored: Figure 4's trends survive scaling. Scaled sweeps cap the
// ratio at 4x the scaled basic (the paper's largest inputs exist to push
// working sets past the cache, which the scaled cache reaches sooner).
func (s Scale) SweepSize(app workload.App, paperSize int) int {
	s = s.normalize()
	if s.Div == 1 {
		return constrain(app, paperSize)
	}
	basic := s.Size(app, app.BasicSize())
	v := int(float64(basic) * float64(paperSize) / float64(app.BasicSize()))
	if v > 4*basic {
		v = 4 * basic
	}
	return constrain(app, v)
}

// BasicSize returns the app's scaled basic problem size.
func (s Scale) BasicSize(app workload.App) int { return s.Size(app, app.BasicSize()) }

// Params builds run parameters for an app at a paper-scale size.
func (s Scale) Params(app workload.App, paperSize int, variant string) workload.Params {
	s = s.normalize()
	return workload.Params{
		Size:    s.Size(app, paperSize),
		Variant: variant,
		Seed:    s.Seed,
		Steps:   s.Steps,
	}
}

// SweepParams builds run parameters with SweepSize scaling (size sweeps
// and "large problem" comparisons).
func (s Scale) SweepParams(app workload.App, paperSize int, variant string) workload.Params {
	p := s.Params(app, paperSize, variant)
	p.Size = s.SweepSize(app, paperSize)
	return p
}

// RunResult bundles one measured execution.
type RunResult struct {
	Procs   int
	Elapsed sim.Time
	Result  perf.Result
}

// Run executes app on a fresh scaled machine.
func (s Scale) Run(app workload.App, procs int, params workload.Params) (RunResult, error) {
	return s.RunConfig(app, s.Machine(procs), params)
}

// RunConfig executes app on a machine built from cfg. When a TraceSink is
// installed it sees the machine after the run, even a failed one — the
// failing execution's trace is the one worth exporting.
func (s Scale) RunConfig(app workload.App, cfg core.Config, params workload.Params) (RunResult, error) {
	m := core.New(cfg)
	if s.OnMachine != nil {
		s.OnMachine(m)
	}
	err := app.Run(m, params)
	if s.TraceSink != nil {
		s.TraceSink(fmt.Sprintf("%s-p%d-s%d", app.Name(), cfg.Procs, params.Size), m)
	}
	if err != nil {
		return RunResult{}, fmt.Errorf("%s (procs=%d, size=%d, variant=%q): %w",
			app.Name(), cfg.Procs, params.Size, params.Variant, err)
	}
	return RunResult{Procs: cfg.Procs, Elapsed: m.Elapsed(), Result: m.Result()}, nil
}

// seqKey caches sequential reference times per (app, size, variant).
type seqKey struct {
	app     string
	size    int
	variant string
}

// runKey caches parallel efficiency-measurement runs.
type runKey struct {
	app     string
	size    int
	variant string
	procs   int
}

// Session caches sequential baselines and repeated parallel measurements
// across experiments; the simulator is deterministic, so caching is sound.
type Session struct {
	Scale Scale
	seq   map[seqKey]sim.Time
	runs  map[runKey]RunResult
}

// NewSession creates a measurement session at the given scale.
func NewSession(s Scale) *Session {
	return &Session{
		Scale: s.normalize(),
		seq:   make(map[seqKey]sim.Time),
		runs:  make(map[runKey]RunResult),
	}
}

// sequentialAt measures (and caches) the sequential time of app at an
// already-resolved size. Following the paper, speedups for restructured
// versions are measured against the same original sequential program.
func (se *Session) sequentialAt(app workload.App, size int) (sim.Time, error) {
	key := seqKey{app.Name(), size, ""}
	if t, ok := se.seq[key]; ok {
		return t, nil
	}
	params := workload.Params{Size: size, Seed: se.Scale.Seed, Steps: se.Scale.Steps}
	r, err := se.Scale.Run(app, 1, params)
	if err != nil {
		return 0, err
	}
	se.seq[key] = r.Elapsed
	return r.Elapsed, nil
}

// Sequential returns the sequential execution time of app at the given
// paper-scale size (Size scaling).
func (se *Session) Sequential(app workload.App, paperSize int) (sim.Time, error) {
	return se.sequentialAt(app, se.Scale.Size(app, paperSize))
}

// Efficiency measures parallel efficiency of app at a paper-scale size
// (Size scaling).
func (se *Session) Efficiency(app workload.App, procs, paperSize int, variant string) (float64, RunResult, error) {
	return se.efficiencyAt(app, procs, se.Scale.Params(app, paperSize, variant))
}

// SweepEfficiency measures parallel efficiency at a sweep point
// (SweepSize scaling).
func (se *Session) SweepEfficiency(app workload.App, procs, paperSize int, variant string) (float64, RunResult, error) {
	return se.efficiencyAt(app, procs, se.Scale.SweepParams(app, paperSize, variant))
}

func (se *Session) efficiencyAt(app workload.App, procs int, params workload.Params) (float64, RunResult, error) {
	seq, err := se.sequentialAt(app, params.Size)
	if err != nil {
		return 0, RunResult{}, err
	}
	key := runKey{app.Name(), params.Size, params.Variant, procs}
	r, ok := se.runs[key]
	if !ok {
		r, err = se.Scale.Run(app, procs, params)
		if err != nil {
			return 0, RunResult{}, err
		}
		se.runs[key] = r
	}
	return perf.Efficiency(seq, r.Elapsed, procs), r, nil
}

// fprintf writes formatted output, ignoring errors (experiment output is
// best-effort diagnostics).
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}

// Origin2000LatenciesForTest exposes the default latency preset to tests.
func Origin2000LatenciesForTest() core.Latencies { return core.Origin2000Latencies() }
