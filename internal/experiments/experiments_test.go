package experiments

import (
	"strings"
	"testing"

	"origin2000/internal/sim"
)

func testSession() *Session { return NewSession(TestScale) }

func TestTable1RatiosOrdered(t *testing.T) {
	// The Origin must show the lowest remote/local ratio, NUMALiiNE the
	// highest clean ratio modeled.
	var sb strings.Builder
	if err := Table1(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Origin2000") || !strings.Contains(out, "NUMALiiNE") {
		t.Fatalf("missing machines:\n%s", out)
	}
}

func TestLatencyProbeMatchesPaper(t *testing.T) {
	local, clean, dirty, err := LatencyProbe(Origin2000LatenciesForTest())
	if err != nil {
		t.Fatal(err)
	}
	if local != 338*sim.Nanosecond {
		t.Errorf("local = %v, want 338ns", local)
	}
	if clean < 580*sim.Nanosecond || clean > 730*sim.Nanosecond {
		t.Errorf("remote clean = %v, want ~656ns", clean)
	}
	if dirty < 780*sim.Nanosecond || dirty > 1000*sim.Nanosecond {
		t.Errorf("remote dirty = %v, want ~892ns", dirty)
	}
}

func TestTable2RunsAllApps(t *testing.T) {
	se := testSession()
	var sb strings.Builder
	if err := Table2(se, &sb); err != nil {
		t.Fatal(err)
	}
	for _, app := range Apps() {
		if !strings.Contains(sb.String(), app.Name()) {
			t.Errorf("table 2 missing %s", app.Name())
		}
	}
}

func TestFigure2And3(t *testing.T) {
	se := testSession()
	var sb strings.Builder
	if err := Figure2(se, &sb); err != nil {
		t.Fatal(err)
	}
	if err := Figure3(se, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Raytrace") || !strings.Contains(out, "Busy%") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestScaledSizesRespectConstraints(t *testing.T) {
	s := Scale{Div: 16, CacheDiv: 16}
	for _, app := range Apps() {
		for _, size := range app.SweepSizes() {
			v := s.Size(app, size)
			if v < 1 {
				t.Errorf("%s size %d scaled to %d", app.Name(), size, v)
			}
		}
	}
	fft := AppByName("FFT")
	v := s.Size(fft, 1<<20)
	dim := 1
	for dim*dim < v {
		dim *= 2
	}
	if dim*dim != v {
		t.Errorf("scaled FFT size %d is not a square power of two", v)
	}
}

func TestSessionCachesSequentialRuns(t *testing.T) {
	se := testSession()
	app := AppByName("Ocean")
	a, err := se.Sequential(app, app.BasicSize())
	if err != nil {
		t.Fatal(err)
	}
	b, err := se.Sequential(app, app.BasicSize())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cached sequential time differs")
	}
}

func TestRunByNameAndNames(t *testing.T) {
	se := testSession()
	var sb strings.Builder
	if err := Run("table1", se, &sb); err != nil {
		t.Fatal(err)
	}
	if err := Run("nope", se, &sb); err == nil {
		t.Fatal("unknown experiment should error")
	}
	if len(Names()) < 10 {
		t.Error("experiment list too short")
	}
}
