package experiments

import (
	"fmt"
	"io"

	"origin2000/internal/perf"
	"origin2000/internal/workload"
)

// figure2Procs are the processor counts of Figure 2.
var figure2Procs = []int{32, 64, 96, 128}

// Figure2 regenerates the speedups for the basic problem sizes.
func Figure2(se *Session, w io.Writer) error {
	procs := se.Scale.procCounts(figure2Procs)
	header := []string{"Application"}
	for _, p := range procs {
		header = append(header, fmt.Sprintf("P=%d", p))
	}
	rows := [][]string{header}
	for _, app := range Apps() {
		row := []string{app.Name()}
		seq, err := se.Sequential(app, app.BasicSize())
		if err != nil {
			return err
		}
		for _, p := range procs {
			if p > app.MaxProcs() {
				row = append(row, "-")
				continue
			}
			r, err := se.Scale.Run(app, p, se.Scale.Params(app, app.BasicSize(), ""))
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.1f", perf.Speedup(seq, r.Elapsed)))
		}
		rows = append(rows, row)
	}
	fprintf(w, "Figure 2: speedups for basic problem sizes (60%% efficiency = speedup 0.6*P)\n")
	fprintf(w, "%s\n", perf.Table(rows))
	return nil
}

// Figure3 regenerates the average 128-processor execution-time breakdown.
func Figure3(se *Session, w io.Writer) error {
	procs := 128
	if len(se.Scale.Procs) > 0 {
		procs = se.Scale.Procs[len(se.Scale.Procs)-1]
	}
	rows := [][]string{{"Application", "Busy%", "Memory%", "Sync%", ""}}
	for _, app := range Apps() {
		if app.MaxProcs() < procs {
			continue // Infer and Protein have no 128-processor results
		}
		r, err := se.Scale.Run(app, procs, se.Scale.Params(app, app.BasicSize(), ""))
		if err != nil {
			return err
		}
		avg := r.Result.Average()
		busy, mem, sync := avg.Fractions()
		rows = append(rows, []string{
			app.Name(),
			fmt.Sprintf("%5.1f", 100*busy),
			fmt.Sprintf("%5.1f", 100*mem),
			fmt.Sprintf("%5.1f", 100*sync),
			perf.BreakdownBar(avg, 40),
		})
	}
	fprintf(w, "Figure 3: average execution-time breakdown, %d processors, basic sizes\n", procs)
	fprintf(w, "%s\n", perf.Table(rows))
	return nil
}

// figure4Procs are the processor counts of Figures 4 and 9.
var figure4Procs = []int{32, 64, 128}

// Figure4 regenerates parallel efficiency versus problem size per app.
func Figure4(se *Session, w io.Writer) error {
	procs := se.Scale.procCounts(figure4Procs)
	fprintf(w, "Figure 4: impact of problem size on parallel efficiency\n\n")
	for _, app := range Apps() {
		var series []perf.Series
		markers := []byte{'a', 'b', 'c', 'd'}
		for pi, p := range procs {
			if p > app.MaxProcs() {
				continue
			}
			s := perf.Series{Label: fmt.Sprintf("%d procs", p), Marker: markers[pi%len(markers)]}
			for _, size := range app.SweepSizes() {
				eff, err := se.sweepPoint(app, p, size, "")
				if err != nil {
					return err
				}
				s.X = append(s.X, float64(se.Scale.SweepSize(app, size)))
				s.Y = append(s.Y, eff)
			}
			series = append(series, s)
		}
		fprintf(w, "%s (x = %s)\n%s\n", app.Name(), app.Unit(),
			perf.Curves(series, 60, 12, 1.2))
	}
	return nil
}

// breakdownFigure holds the setup of one per-processor breakdown figure.
type breakdownFigure struct {
	id        string
	app       string
	smallSize int
	largeSize int
}

// figures5to8 are the paper's per-processor breakdown case studies.
var figures5to8 = []breakdownFigure{
	{"Figure 5", "Water-Spatial", 4096, 32768},
	{"Figure 6", "FFT", 1 << 20, 1 << 24},
	{"Figure 7", "Shear-Warp", 256, 384},
	{"Figure 8", "Raytrace", 128, 512},
}

// Figures5to8 regenerates the per-processor breakdown continua for
// Water-Spatial, FFT, Shear-Warp and Raytrace at small and large sizes.
func Figures5to8(se *Session, w io.Writer) error {
	procs := 128
	if len(se.Scale.Procs) > 0 {
		procs = se.Scale.Procs[len(se.Scale.Procs)-1]
	}
	for _, fig := range figures5to8 {
		app := AppByName(fig.app)
		for _, size := range []int{fig.smallSize, fig.largeSize} {
			params := se.Scale.SweepParams(app, size, "")
			r, err := se.Scale.Run(app, procs, params)
			if err != nil {
				return err
			}
			// A uniprocessor breakdown accompanies each figure in the
			// paper, to reveal capacity effects.
			uni, err := se.Scale.Run(app, 1, params)
			if err != nil {
				return err
			}
			ub := uni.Result.Average()
			ubusy, umem, _ := ub.Fractions()
			fprintf(w, "%s: %s, size %d, %d processors (uniprocessor: busy %.0f%%, memory %.0f%%)\n",
				fig.id, fig.app, params.Size, procs, 100*ubusy, 100*umem)
			fprintf(w, "%s\n", perf.Continuum(r.Result.PerProc, 64, 12))
		}
	}
	return nil
}

// restructured lists the Figure 9 original-versus-restructured pairs.
var restructured = []struct {
	app     string
	variant string
}{
	{"Barnes", "merge"},
	{"Barnes", "spatial"},
	{"Shear-Warp", "new"},
	{"Water-Nsquared", "interchange"},
	{"Infer", "static"},
	{"Radix", "sample"},
}

// Figure9 regenerates the restructured-versus-original efficiency sweeps.
func Figure9(se *Session, w io.Writer) error {
	procs := se.Scale.procCounts(figure4Procs)
	top := procs[len(procs)-1]
	fprintf(w, "Figure 9: impact of application restructuring on parallel efficiency\n\n")
	for _, rc := range restructured {
		app := AppByName(rc.app)
		p := top
		if p > app.MaxProcs() {
			p = app.MaxProcs()
		}
		var orig, rest perf.Series
		orig = perf.Series{Label: "original", Marker: 'o'}
		rest = perf.Series{Label: rc.variant, Marker: '+'}
		for _, size := range app.SweepSizes() {
			effO, err := se.sweepPoint(app, p, size, "")
			if err != nil {
				return err
			}
			effR, err := se.sweepPoint(app, p, size, rc.variant)
			if err != nil {
				return err
			}
			x := float64(se.Scale.SweepSize(app, size))
			orig.X = append(orig.X, x)
			orig.Y = append(orig.Y, effO)
			rest.X = append(rest.X, x)
			rest.Y = append(rest.Y, effR)
		}
		fprintf(w, "%s vs %q at %d processors (x = %s)\n%s\n",
			rc.app, rc.variant, p, app.Unit(),
			perf.Curves([]perf.Series{orig, rest}, 60, 12, 1.2))
	}
	return nil
}

// Figure10 regenerates the normalized breakdown comparison of the original
// and restructured Barnes-Hut and Water-Nsquared at the top machine size.
func Figure10(se *Session, w io.Writer) error {
	procs := 128
	if len(se.Scale.Procs) > 0 {
		procs = se.Scale.Procs[len(se.Scale.Procs)-1]
	}
	cases := []struct {
		label   string
		app     string
		size    int
		variant string
	}{
		{"(a) Barnes, LockTree", "Barnes", 512 << 10, ""},
		{"(b) Barnes, MergeTree", "Barnes", 512 << 10, "merge"},
		{"(c) Barnes, Spatial", "Barnes", 512 << 10, "spatial"},
		{"(d) Water-Nsq, original", "Water-Nsquared", 8192, ""},
		{"(e) Water-Nsq, interchanged", "Water-Nsquared", 8192, "interchange"},
	}
	var baseline float64
	rows := [][]string{{"Version", "Busy%", "Memory%", "Sync%", "Total vs original", ""}}
	for i, c := range cases {
		app := AppByName(c.app)
		r, err := se.Scale.Run(app, procs, se.Scale.SweepParams(app, c.size, c.variant))
		if err != nil {
			return err
		}
		avg := r.Result.Average()
		busy, mem, sync := avg.Fractions()
		total := float64(r.Elapsed)
		if c.variant == "" {
			baseline = total
		}
		_ = i
		rows = append(rows, []string{
			c.label,
			fmt.Sprintf("%5.1f", 100*busy),
			fmt.Sprintf("%5.1f", 100*mem),
			fmt.Sprintf("%5.1f", 100*sync),
			fmt.Sprintf("%.2fx", total/baseline),
			perf.BreakdownBar(avg, 36),
		})
	}
	fprintf(w, "Figure 10: execution-time breakdowns of original and restructured versions, %d processors\n", procs)
	fprintf(w, "%s\n", perf.Table(rows))
	return nil
}

// appByNameOrPanic is a test helper.
func appByNameOrPanic(name string) workload.App {
	a := AppByName(name)
	if a == nil {
		panic("unknown app " + name)
	}
	return a
}
