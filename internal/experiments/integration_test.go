package experiments

import (
	"fmt"
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/mempolicy"
	"origin2000/internal/synchro"
	"origin2000/internal/topology"
	"origin2000/internal/workload"
)

// TestEveryAppEveryVariantRunsAndVerifies is the integration matrix: all
// eleven applications, every algorithm variant, several processor counts,
// each run to completion with its built-in output verification.
func TestEveryAppEveryVariantRunsAndVerifies(t *testing.T) {
	s := TestScale
	for _, app := range Apps() {
		for _, variant := range app.Variants() {
			for _, procs := range []int{1, 4, 8} {
				if procs > app.MaxProcs() {
					continue
				}
				name := fmt.Sprintf("%s/%q/p%d", app.Name(), variant, procs)
				t.Run(name, func(t *testing.T) {
					_, err := s.Run(app, procs, s.Params(app, app.BasicSize(), variant))
					if err != nil {
						// Wrong output usually means the memory system lied
						// somewhere; ship the sharing diagnosis with the failure.
						saveSharingReport(t, s, app, procs, variant)
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestEveryAppDeterministic re-runs each application twice on the same
// configuration and demands identical virtual times — the engine's core
// guarantee.
func TestEveryAppDeterministic(t *testing.T) {
	s := TestScale
	for _, app := range Apps() {
		app := app
		t.Run(app.Name(), func(t *testing.T) {
			params := s.Params(app, app.BasicSize(), "")
			a, err := s.Run(app, 4, params)
			if err != nil {
				t.Fatal(err)
			}
			b, err := s.Run(app, 4, params)
			if err != nil {
				t.Fatal(err)
			}
			if a.Elapsed != b.Elapsed {
				t.Errorf("non-deterministic: %v vs %v", a.Elapsed, b.Elapsed)
			}
		})
	}
}

// TestEveryAppUnderSyncVariants runs each app with the fetch&op lock and
// centralized barrier, exercising the Section 6.3 combinations everywhere.
func TestEveryAppUnderSyncVariants(t *testing.T) {
	s := TestScale
	for _, app := range Apps() {
		app := app
		t.Run(app.Name(), func(t *testing.T) {
			params := s.Params(app, app.BasicSize(), "")
			params.Lock = synchro.LockTicketFetchOp
			params.Barrier = synchro.BarrierFetchOp
			if _, err := s.Run(app, 4, params); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestEveryAppUnderRandomMapping runs each app with a random topology
// mapping (Section 7.1) — results must still verify.
func TestEveryAppUnderRandomMapping(t *testing.T) {
	s := TestScale
	for _, app := range Apps() {
		app := app
		t.Run(app.Name(), func(t *testing.T) {
			cfg := s.Machine(8)
			cfg.Mapping = topology.Random(8, 3)
			if _, err := s.RunConfig(app, cfg, s.Params(app, app.BasicSize(), "")); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestEveryAppUnderRoundRobinPlacement runs each app with placement
// ignored and round-robin pages (the Table 3 "RoundRobin" configuration).
func TestEveryAppUnderRoundRobinPlacement(t *testing.T) {
	s := TestScale
	for _, app := range Apps() {
		app := app
		t.Run(app.Name(), func(t *testing.T) {
			cfg := s.Machine(8)
			cfg.IgnorePlacement = true
			cfg.Placement = mempolicy.RoundRobin
			if _, err := s.RunConfig(app, cfg, s.Params(app, app.BasicSize(), "")); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestEveryAppOneProcPerNode runs each app in the Section 7.2
// configuration (one processor per node).
func TestEveryAppOneProcPerNode(t *testing.T) {
	s := TestScale
	for _, app := range Apps() {
		app := app
		t.Run(app.Name(), func(t *testing.T) {
			cfg := s.Machine(8)
			cfg.ProcsPerNode = 1
			if _, err := s.RunConfig(app, cfg, s.Params(app, app.BasicSize(), "")); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDirectoryConsistentAfterEveryApp runs each app and then checks the
// coherence directory's global invariants.
func TestDirectoryConsistentAfterEveryApp(t *testing.T) {
	s := TestScale
	for _, app := range Apps() {
		app := app
		t.Run(app.Name(), func(t *testing.T) {
			m := core.New(s.Machine(8))
			if err := app.Run(m, s.Params(app, app.BasicSize(), "")); err != nil {
				t.Fatal(err)
			}
			if err := m.DirectoryCheck(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestAppsDeclareSaneMetadata checks the registry-facing metadata.
func TestAppsDeclareSaneMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, app := range Apps() {
		if seen[app.Name()] {
			t.Errorf("duplicate app %q", app.Name())
		}
		seen[app.Name()] = true
		if app.BasicSize() <= 0 || app.Unit() == "" {
			t.Errorf("%s: bad metadata", app.Name())
		}
		if len(app.Variants()) == 0 || app.Variants()[0] != "" {
			t.Errorf("%s: variants must start with the original", app.Name())
		}
		found := false
		for _, v := range app.SweepSizes() {
			if v == app.BasicSize() {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: basic size missing from sweep sizes", app.Name())
		}
		if app.MaxProcs() != 64 && app.MaxProcs() != 128 {
			t.Errorf("%s: unexpected MaxProcs %d", app.Name(), app.MaxProcs())
		}
	}
	if len(seen) != 11 {
		t.Errorf("expected the paper's 11 applications, have %d", len(seen))
	}
}

var _ = workload.Params{}
