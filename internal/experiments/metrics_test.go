package experiments

import (
	"reflect"
	"runtime"
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/metrics"
	"origin2000/internal/sim"
	"origin2000/internal/workload"
)

// metricsRun executes one scaled run with the sampler on and returns the
// captured machine (via TraceSink, which sees it unconditionally) and the
// run result.
func metricsRun(t *testing.T, appName string, procs int, interval sim.Time) (*core.Machine, RunResult) {
	t.Helper()
	app := AppByName(appName)
	if app == nil {
		t.Fatalf("unknown app %q", appName)
	}
	s := Scale{Div: 64, CacheDiv: 64}
	s.Metrics = metrics.Options{Enabled: true, Interval: interval}
	var captured *core.Machine
	s.TraceSink = func(label string, m *core.Machine) { captured = m }
	r, err := s.Run(app, procs, s.Params(app, app.BasicSize(), ""))
	if err != nil {
		t.Fatal(err)
	}
	if captured == nil {
		t.Fatal("TraceSink did not capture the machine")
	}
	return captured, r
}

// TestMetricsDeterminism is the tentpole acceptance criterion: a 32-processor
// FFT run with the sampler on must produce a bit-identical simulated elapsed
// time and bit-identical per-processor and machine-wide sample series across
// GOMAXPROCS=1 and GOMAXPROCS=8.
func TestMetricsDeterminism(t *testing.T) {
	type capture struct {
		Elapsed sim.Time
		PerProc [][]metrics.ProcSample
		Machine []metrics.MachineSample
		Epochs  []sim.Time
	}
	run := func(t *testing.T) capture {
		m, r := metricsRun(t, "FFT", 32, 10*sim.Microsecond)
		s := m.Sampler()
		if s == nil {
			t.Fatal("sampler not constructed despite Metrics.Enabled")
		}
		return capture{
			Elapsed: r.Elapsed,
			PerProc: s.AllProcSeries(),
			Machine: s.MachineSeries(),
			Epochs:  s.Epochs(),
		}
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	first := run(t)
	if first.Elapsed <= 0 {
		t.Fatal("run recorded no elapsed time")
	}
	var n int
	for _, ps := range first.PerProc {
		n += len(ps)
	}
	if n == 0 || len(first.Machine) == 0 {
		t.Fatalf("sampler recorded nothing (proc samples=%d, machine samples=%d)", n, len(first.Machine))
	}
	if len(first.Epochs) == 0 {
		t.Error("no barrier epochs recorded for FFT (it has global barriers)")
	}

	runtime.GOMAXPROCS(8)
	second := run(t)
	if first.Elapsed != second.Elapsed {
		t.Errorf("elapsed differs across GOMAXPROCS 1 vs 8: %d vs %d", first.Elapsed, second.Elapsed)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("metrics series differ across GOMAXPROCS 1 vs 8")
	}
}

// TestMetricsZeroPerturbation pins the sampler contract's other half:
// enabling sampling must not change the simulation. Elapsed time, every
// per-processor breakdown, and every counter must be identical with metrics
// off and on.
func TestMetricsZeroPerturbation(t *testing.T) {
	app := AppByName("Ocean")
	run := func(enabled bool) RunResult {
		s := Scale{Div: 64, CacheDiv: 64}
		s.Metrics = metrics.Options{Enabled: enabled, Interval: 10 * sim.Microsecond}
		r, err := s.Run(app, 16, s.Params(app, app.BasicSize(), ""))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	off := run(false)
	on := run(true)
	if on.Result.Metrics == nil {
		t.Fatal("metrics-on run returned no sampler")
	}
	// The sampler pointer itself differs by construction; compare the
	// simulation-visible state only.
	on.Result.Metrics = nil
	if !reflect.DeepEqual(off, on) {
		t.Errorf("enabling metrics perturbed the run:\noff: %+v\non:  %+v", off, on)
	}
}

// TestPerNodeQueueingSums pins the perf.Result per-node queueing slices
// (satellite of the metrics PR): on a 32-processor Ocean run the per-node
// slices must be the primary data, summing exactly to the machine-global
// scalar totals.
func TestPerNodeQueueingSums(t *testing.T) {
	app := AppByName("Ocean")
	s := Scale{Div: 64, CacheDiv: 64}
	r, err := s.Run(app, 32, s.Params(app, app.BasicSize(), ""))
	if err != nil {
		t.Fatal(err)
	}
	res := r.Result
	sum := func(ts []sim.Time) sim.Time {
		var t sim.Time
		for _, v := range ts {
			t += v
		}
		return t
	}
	if got := sum(res.HubQueuedPerNode); got != res.HubQueued {
		t.Errorf("HubQueuedPerNode sums to %d, scalar total %d", got, res.HubQueued)
	}
	if got := sum(res.MemQueuedPerNode); got != res.MemQueued {
		t.Errorf("MemQueuedPerNode sums to %d, scalar total %d", got, res.MemQueued)
	}
	if got := sum(res.HubBusyPerNode); got != res.HubBusy {
		t.Errorf("HubBusyPerNode sums to %d, scalar total %d", got, res.HubBusy)
	}
	if got := sum(res.RouterQueuedPerRouter); got != res.RouterQueued {
		t.Errorf("RouterQueuedPerRouter sums to %d, scalar total %d", got, res.RouterQueued)
	}
	if got := sum(res.MetaQueuedPerMeta); got != res.MetaQueued {
		t.Errorf("MetaQueuedPerMeta sums to %d, scalar total %d", got, res.MetaQueued)
	}
	if len(res.HubQueuedPerNode) != 16 { // 32 procs / 2 per node
		t.Errorf("expected 16 per-node entries, got %d", len(res.HubQueuedPerNode))
	}
	if res.HubQueued == 0 {
		t.Error("Ocean at 32 procs produced no Hub queueing; the test is vacuous")
	}
}

// TestBuildArtifact exercises the artifact builder end to end: series,
// epochs, pages and syncs populated, JSON round-trip intact.
func TestBuildArtifact(t *testing.T) {
	app := AppByName("FFT")
	s := Scale{Div: 64, CacheDiv: 64}
	s.Metrics = metrics.Options{Enabled: true, Interval: 10 * sim.Microsecond}
	s.Trace.Enabled = true
	var a metrics.Artifact
	var params workload.Params
	s.TraceSink = func(label string, m *core.Machine) {
		a = BuildArtifact(label, app, params, m)
	}
	params = s.Params(app, app.BasicSize(), "")
	if _, err := s.Run(app, 8, params); err != nil {
		t.Fatal(err)
	}
	if a.Schema != metrics.ArtifactSchema {
		t.Fatalf("artifact not built (schema %q)", a.Schema)
	}
	if len(a.PerProc) != 8 || a.Elapsed <= 0 {
		t.Errorf("artifact missing per-proc state: procs=%d elapsed=%d", len(a.PerProc), a.Elapsed)
	}
	if len(a.Machine) == 0 || len(a.Epochs) == 0 {
		t.Errorf("artifact missing series: machine=%d epochs=%d", len(a.Machine), len(a.Epochs))
	}
	if len(a.Pages) == 0 || len(a.Syncs) == 0 {
		t.Errorf("artifact missing trace tables: pages=%d syncs=%d", len(a.Pages), len(a.Syncs))
	}
	if cp := a.CriticalProc(); cp < 0 || cp >= 8 {
		t.Errorf("critical proc out of range: %d", cp)
	}

	path := t.TempDir() + "/a.json"
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := metrics.ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Elapsed != a.Elapsed || len(back.Machine) != len(a.Machine) || len(back.PerProc) != len(a.PerProc) {
		t.Error("artifact JSON round-trip lost data")
	}
}
