package experiments

import (
	"reflect"
	"strings"
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/metrics"
	"origin2000/internal/sim"
	"origin2000/internal/workload"
)

// TestHostProfScheduleNeutral is the host-time profiler's acceptance test:
// turning it on must not change a single observable. Unlike the checker and
// the sampler, hostprof does not force workers=1 — it claims to be
// schedule-neutral, so the full measurement (every counter, every
// per-processor split) must be bit-identical with the profiler on and off
// at every worker count, including the truly concurrent ones where a
// profiler that fed host time back into the schedule would diverge.
func TestHostProfScheduleNeutral(t *testing.T) {
	for _, appName := range []string{"Ocean", "Barnes"} {
		appName := appName
		t.Run(appName, func(t *testing.T) {
			t.Parallel()
			app := AppByName(appName)
			run := func(workers int, hostprof bool) (RunResult, *core.Machine) {
				s := Scale{Div: 64, CacheDiv: 64, Engine: "parallel", Workers: workers, HostProf: hostprof}
				var m *core.Machine
				s.OnMachine = func(mm *core.Machine) { m = mm }
				r, err := s.RunConfig(app, s.Machine(32), s.Params(app, app.BasicSize(), ""))
				if err != nil {
					t.Fatal(err)
				}
				return r, m
			}
			for _, workers := range []int{1, 2, 8} {
				off, moff := run(workers, false)
				on, mon := run(workers, true)
				if !reflect.DeepEqual(off, on) {
					t.Errorf("workers=%d: hostprof changed the measurement:\noff %+v\non  %+v",
						workers, off, on)
				}
				if moff.HostProf() != nil {
					t.Errorf("workers=%d: profiler attached with HostProf off", workers)
				}
				hp := mon.HostProf()
				if hp == nil {
					t.Fatalf("workers=%d: HostProf on but machine has no profiler", workers)
				}
				if rep := hp.Report(); rep.WallNS <= 0 || rep.Workers != workers {
					t.Errorf("workers=%d: degenerate report wall=%dns workers=%d",
						workers, rep.WallNS, rep.Workers)
				}
			}
		})
	}
}

// critPathFor runs app at 32 processors with the critical-path recorder on
// and returns the analyzed path.
func critPathFor(t *testing.T, app workload.App) *metrics.Artifact {
	t.Helper()
	s := Scale{Div: 64, CacheDiv: 64, CritPath: true}
	var m *core.Machine
	s.OnMachine = func(mm *core.Machine) { m = mm }
	params := s.Params(app, app.BasicSize(), "")
	if _, err := s.RunConfig(app, s.Machine(32), params); err != nil {
		t.Fatal(err)
	}
	a := BuildArtifact(app.Name(), app, params, m)
	return &a
}

// TestCritPathExactAllApps is the analyzer's acceptance test on real runs:
// for every application in the study at 32 processors, the critical-path
// decomposition must be exact — segments tile [0, Elapsed], every residual
// is zero, and the component totals sum to the elapsed virtual time. Any
// nonzero residual means a clock advance escaped the accounting taxonomy.
func TestCritPathExactAllApps(t *testing.T) {
	for _, app := range Apps() {
		app := app
		t.Run(app.Name(), func(t *testing.T) {
			t.Parallel()
			a := critPathFor(t, app)
			p, err := metrics.CritPath(a)
			if err != nil {
				t.Fatal(err)
			}
			if len(p.Segments) == 0 {
				t.Fatal("empty critical path")
			}
			var at sim.Time
			for i, seg := range p.Segments {
				if seg.Start != at {
					t.Errorf("segment %d starts at %v, previous ended at %v", i, seg.Start, at)
				}
				at = seg.End
				if seg.Residual != 0 {
					t.Errorf("segment %d (epoch %d, proc %d) residual = %v, want 0",
						i, seg.Epoch, seg.Proc, seg.Residual)
				}
			}
			if at != p.Elapsed {
				t.Errorf("segments end at %v, elapsed %v", at, p.Elapsed)
			}
			if p.Residual != 0 {
				t.Errorf("path residual = %v, want 0", p.Residual)
			}
			if p.Total() != p.Elapsed {
				t.Errorf("Total() = %v != Elapsed %v", p.Total(), p.Elapsed)
			}
			if p.Total() != a.Elapsed {
				t.Errorf("path elapsed %v != artifact elapsed %v", p.Total(), a.Elapsed)
			}
		})
	}
}

// TestCritPathDominantScenarios pins that the analyzer's verdict tracks the
// workload's actual bottleneck rather than collapsing to one bucket: a
// lock-bound scenario (Infer, whose processors serialize on task locks)
// must come out sync-bound, while memory-system-bound scenarios (Volrend's
// capacity misses, Radix's permutation-phase hot-spotting) must come out
// memory- and queueing-bound — three different dominant components from
// the same decomposition.
func TestCritPathDominantScenarios(t *testing.T) {
	cases := []struct {
		app  string
		want string
	}{
		{"Infer", "sync"},
		{"Volrend", "memory"},
		{"Radix", "queueing"},
	}
	got := map[string]string{}
	for _, c := range cases {
		a := critPathFor(t, AppByName(c.app))
		p, err := metrics.CritPath(a)
		if err != nil {
			t.Fatal(err)
		}
		got[c.app] = p.Dominant()
		if !strings.Contains(p.Dominant(), c.want) {
			t.Errorf("%s: dominant = %q, want a %s-bound verdict", c.app, p.Dominant(), c.want)
		}
	}
	if got["Infer"] == got["Volrend"] || got["Volrend"] == got["Radix"] || got["Infer"] == got["Radix"] {
		t.Errorf("scenarios do not disagree: %v", got)
	}
}

// TestCritPathOffErrors pins the off-by-default contract: without
// Config.CritPath the artifact carries no record and the analyzer reports
// that, rather than fabricating a path from partial data.
func TestCritPathOffErrors(t *testing.T) {
	app := AppByName("FFT")
	s := Scale{Div: 64, CacheDiv: 64}
	var m *core.Machine
	s.OnMachine = func(mm *core.Machine) { m = mm }
	params := s.Params(app, app.BasicSize(), "")
	if _, err := s.RunConfig(app, s.Machine(8), params); err != nil {
		t.Fatal(err)
	}
	a := BuildArtifact(app.Name(), app, params, m)
	if a.CritPath != nil {
		t.Fatal("artifact has a critical-path record with CritPath off")
	}
	if _, err := metrics.CritPath(&a); err == nil {
		t.Fatal("CritPath() succeeded on an artifact with no record")
	}
}
