package experiments

import (
	"reflect"
	"strings"
	"testing"

	"origin2000/internal/scenario"
	"origin2000/internal/sim"
)

// scenarioRun executes app at the given processor count on the named
// scenario's machine and returns the full measurement. Scale matches the
// engine-equivalence tests (Div 64).
func scenarioRun(t *testing.T, appName, scenarioName, engine string, workers int, procs int, check bool) RunResult {
	t.Helper()
	return specRun(t, appName, mustNamed(t, scenarioName), engine, workers, procs, check)
}

// specRun is scenarioRun on a caller-built spec, for machines no preset
// names (e.g. a one-pointer limited directory that forces broadcasts).
func specRun(t *testing.T, appName string, spec scenario.Spec, engine string, workers int, procs int, check bool) RunResult {
	t.Helper()
	app := AppByName(appName)
	if app == nil {
		t.Fatalf("unknown app %q", appName)
	}
	s := Scale{Div: 64, CacheDiv: 64, Engine: engine, Workers: workers, Scenario: &spec}
	cfg := s.Machine(procs)
	cfg.Check = check
	r, err := s.RunConfig(app, cfg, s.Params(app, app.BasicSize(), ""))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestDefaultScenarioBitIdentity is the refactor's gate: a nil scenario, an
// explicit default spec, and the "origin" preset must all build the same
// machine — same elapsed time, same perf.Result down to every counter — as
// the pre-scenario hard-coded one (represented by the nil-scenario run,
// whose construction path carries no scenario-derived state).
func TestDefaultScenarioBitIdentity(t *testing.T) {
	app := AppByName("FFT")
	s := Scale{Div: 64, CacheDiv: 64}
	params := s.Params(app, app.BasicSize(), "")
	base, err := s.Run(app, 32, params)
	if err != nil {
		t.Fatal(err)
	}
	def := scenario.Default()
	for _, tc := range []struct {
		name string
		spec scenario.Spec
	}{{"explicit-default", def}, {"origin-preset", mustNamed(t, "origin")}} {
		sc := Scale{Div: 64, CacheDiv: 64, Scenario: &tc.spec}
		got, err := sc.Run(app, 32, params)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("%s: results differ from the nil-scenario machine:\nnil      %+v\nscenario %+v",
				tc.name, base, got)
		}
	}
}

func mustNamed(t *testing.T, name string) scenario.Spec {
	t.Helper()
	spec, ok := scenario.Named(name)
	if !ok {
		t.Fatalf("unknown scenario %q", name)
	}
	return spec
}

// TestDirectoryFormatEquivalence is the cross-format contract: FFT and
// Ocean at 32 processors must compute identical results under the
// full-bit-vector, limited-pointer, and coarse-vector directory formats.
// Each app verifies its own numerical output inside Run (a wrong answer is
// an error), every run executes with the online coherence checker armed
// (extra invalidations must never corrupt protocol state), the demand
// access counts must match exactly (the directory format changes timing,
// never the program's data flow), and the invalidation counts are pinned
// to the formats' semantics: an imprecise format may only ever send MORE
// invalidations than the precise bit vector, never fewer.
func TestDirectoryFormatEquivalence(t *testing.T) {
	for _, appName := range []string{"FFT", "Ocean"} {
		appName := appName
		t.Run(appName, func(t *testing.T) {
			t.Parallel()
			full := scenarioRun(t, appName, "origin", "serial", 0, 32, true)
			invals := map[string]int64{"origin": full.Result.Counters.Invalidations}
			for _, scn := range []string{"limited", "coarse"} {
				r := scenarioRun(t, appName, scn, "serial", 0, 32, true)
				invals[scn] = r.Result.Counters.Invalidations
				if got, want := r.Result.Counters.Reads, full.Result.Counters.Reads; got != want {
					t.Errorf("%s: reads %d, fullvec %d — directory format changed the program's data flow", scn, got, want)
				}
				if got, want := r.Result.Counters.Writes, full.Result.Counters.Writes; got != want {
					t.Errorf("%s: writes %d, fullvec %d — directory format changed the program's data flow", scn, got, want)
				}
				if invals[scn] < invals["origin"] {
					t.Errorf("%s: %d invalidations < fullvec's %d — an imprecise format can only over-invalidate",
						scn, invals[scn], invals["origin"])
				}
			}
			t.Logf("%s invalidations: fullvec=%d limited=%d coarse=%d",
				appName, invals["origin"], invals["limited"], invals["coarse"])
		})
	}
}

// TestScenarioEngineEquivalence extends the serial/parallel bit-identity
// contract to non-default machines: on a mesh fabric and under the
// limited-pointer directory (whose broadcast extras exercise the hub-
// occupancy path), the parallel engine at 2 and 8 workers must reproduce
// the serial engine's results exactly.
func TestScenarioEngineEquivalence(t *testing.T) {
	for _, scn := range []string{"origin", "mesh", "limited"} {
		scn := scn
		t.Run(scn, func(t *testing.T) {
			t.Parallel()
			serial := scenarioRun(t, "FFT", scn, "serial", 0, 32, false)
			for _, workers := range []int{2, 8} {
				par := scenarioRun(t, "FFT", scn, "parallel", workers, 32, false)
				if !reflect.DeepEqual(serial, par) {
					t.Errorf("workers=%d results differ between engines on scenario %s:\nserial   %+v\nparallel %+v",
						workers, scn, serial, par)
				}
			}
		})
	}
}

// TestScenariosChangeTheMachine is the sanity complement of the identity
// gate: a non-default topology or directory format must actually change
// the simulated timing — a "scenario" that produces byte-identical results
// to the default machine is plumbing that got lost on the way down.
// Topologies are probed with FFT (every remote miss crosses the fabric);
// directory formats with Ocean, the study's write-sharing app — and since
// Ocean's sharer counts stay within the default 4-pointer budget at this
// scale, the limited-pointer probe drops to one pointer to force the
// broadcast path.
func TestScenariosChangeTheMachine(t *testing.T) {
	base := scenarioRun(t, "FFT", "origin", "serial", 0, 32, false)
	for _, scn := range []string{"mesh", "fattree"} {
		r := scenarioRun(t, "FFT", scn, "serial", 0, 32, false)
		if r.Elapsed == base.Elapsed {
			t.Errorf("scenario %s: elapsed time identical to the default machine (%v) — the spec did not reach the simulator", scn, base.Elapsed)
		}
	}
	obase := scenarioRun(t, "Ocean", "origin", "serial", 0, 32, false)
	lim1 := scenario.Spec{Name: "limited-1",
		Directory: scenario.DirectorySpec{Format: "limited", Pointers: 1}}.Normalized()
	for _, tc := range []struct {
		name string
		run  func() RunResult
	}{
		{"coarse", func() RunResult { return scenarioRun(t, "Ocean", "coarse", "serial", 0, 32, false) }},
		{"limited-1", func() RunResult { return specRun(t, "Ocean", lim1, "serial", 0, 32, false) }},
	} {
		r := tc.run()
		if r.Elapsed == obase.Elapsed {
			t.Errorf("scenario %s: elapsed time identical to the default machine (%v) — the spec did not reach the simulator", tc.name, obase.Elapsed)
		}
		if r.Result.Counters.Invalidations <= obase.Result.Counters.Invalidations {
			t.Errorf("scenario %s: %d invalidations, default %d — expected extra fan-out",
				tc.name, r.Result.Counters.Invalidations, obase.Result.Counters.Invalidations)
		}
	}
}

// TestResumeRefusesScenarioMismatch pins the cross-machine resume guard: a
// checkpoint captured on one scenario must refuse to resume on another,
// naming both machines, and must still resume on its own.
func TestResumeRefusesScenarioMismatch(t *testing.T) {
	app := AppByName("FFT")
	mesh := mustNamed(t, "mesh")
	s := Scale{Div: 64, CacheDiv: 64, Scenario: &mesh}
	params := s.Params(app, app.BasicSize(), "")
	_, snaps, err := s.RunCheckpointed(app, 32, params, 200*sim.Microsecond, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("run captured no snapshots; shorten the capture interval")
	}
	sn := snaps[0]
	if sn.Header.Spec.ScenarioHash != mesh.Hash() {
		t.Fatalf("snapshot records scenario hash %q, want %q", sn.Header.Spec.ScenarioHash, mesh.Hash())
	}

	limited := mustNamed(t, "limited")
	wrong := Scale{Div: 64, CacheDiv: 64, Scenario: &limited}
	_, err = wrong.ResumeRun(app, 32, params, sn)
	if err == nil {
		t.Fatal("cross-scenario resume did not fail")
	}
	for _, want := range []string{"mesh", "limited", mesh.Hash(), limited.Hash(), "-scenario"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("refusal does not mention %q: %v", want, err)
		}
	}

	// The default machine must also refuse a mesh checkpoint: an absent
	// scenario is not a wildcard.
	none := Scale{Div: 64, CacheDiv: 64}
	if _, err := none.ResumeRun(app, 32, params, sn); err == nil {
		t.Fatal("default-scenario resume of a mesh checkpoint did not fail")
	}

	// And the matching scenario resumes cleanly, proving state equality.
	if _, err := s.ResumeRun(app, 32, params, sn); err != nil {
		t.Fatalf("matching-scenario resume failed: %v", err)
	}
}
