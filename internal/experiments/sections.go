package experiments

import (
	"fmt"
	"io"

	"origin2000/internal/core"
	"origin2000/internal/perf"
	"origin2000/internal/sim"
	"origin2000/internal/synchro"
	"origin2000/internal/topology"
	"origin2000/internal/workload"
)

// Sec61Prefetch regenerates the Section 6.1 study: software prefetching of
// remote data in FFT and Sample sort across machine sizes.
func Sec61Prefetch(se *Session, w io.Writer) error {
	procs := se.Scale.procCounts([]int{32, 64, 128})
	cases := []struct {
		app     string
		size    int
		variant string
	}{
		{"FFT", 1 << 22, ""},
		{"Radix", 16 << 20, "sample"},
	}
	header := []string{"Application"}
	for _, p := range procs {
		header = append(header, fmt.Sprintf("P=%d gain", p))
	}
	rows := [][]string{header}
	for _, c := range cases {
		app := AppByName(c.app)
		label := c.app
		if c.variant != "" {
			label += " (" + c.variant + ")"
		}
		row := []string{label}
		for _, p := range procs {
			base, err := se.Scale.Run(app, p, se.Scale.SweepParams(app, c.size, c.variant))
			if err != nil {
				return err
			}
			params := se.Scale.SweepParams(app, c.size, c.variant)
			params.Prefetch = true
			pre, err := se.Scale.Run(app, p, params)
			if err != nil {
				return err
			}
			gain := 100 * (1 - float64(pre.Elapsed)/float64(base.Elapsed))
			row = append(row, fmt.Sprintf("%+.1f%%", gain))
		}
		rows = append(rows, row)
	}
	fprintf(w, "Section 6.1: execution-time gain from prefetching remote data\n")
	fprintf(w, "(paper: FFT up to 20%% at 64p and 35%% at 128p; Sample sort ~20%% at 128p)\n")
	fprintf(w, "%s\n", perf.Table(rows))
	return nil
}

// Sec63Synchronization regenerates the Section 6.3 study: barrier and lock
// algorithm comparison, LL-SC versus the at-memory fetch&op.
func Sec63Synchronization(se *Session, w io.Writer) error {
	procs := 64
	if len(se.Scale.Procs) > 0 {
		procs = se.Scale.Procs[len(se.Scale.Procs)-1]
	}
	// Microbenchmark: 50 barrier episodes with imbalanced arrivals.
	fprintf(w, "Section 6.3: synchronization algorithms (%d processors)\n\n", procs)
	rows := [][]string{{"Barrier algorithm", "Time per episode", "Overhead share"}}
	for _, alg := range []synchro.BarrierAlgorithm{
		synchro.BarrierTournament, synchro.BarrierCentralized, synchro.BarrierFetchOp,
	} {
		m := core.New(se.Scale.Machine(procs))
		b := synchro.NewBarrier(m, procs, alg)
		err := m.Run(func(p *core.Proc) {
			for it := 0; it < 50; it++ {
				p.Compute(sim.Time((it*7+p.ID()*13)%17) * sim.Microsecond)
				b.Wait(p)
			}
		})
		if err != nil {
			return err
		}
		r := m.Result()
		perEp := m.Elapsed() / 50
		over := float64(r.Counters.SyncOverhead) /
			float64(r.Counters.SyncOverhead+r.Counters.SyncWait+1)
		rows = append(rows, []string{alg.String(), perEp.String(), fmt.Sprintf("%.1f%%", 100*over)})
	}
	fprintf(w, "%s\n", perf.Table(rows))

	// Application level: Water-Spatial (barrier bound at the basic size)
	// under each barrier algorithm.
	app := AppByName("Water-Spatial")
	rows = [][]string{{"Water-Spatial barrier", "Elapsed (ms)"}}
	for _, alg := range []synchro.BarrierAlgorithm{
		synchro.BarrierTournament, synchro.BarrierCentralized, synchro.BarrierFetchOp,
	} {
		params := se.Scale.Params(app, app.BasicSize(), "")
		params.Barrier = alg
		r, err := se.Scale.Run(app, procs, params)
		if err != nil {
			return err
		}
		rows = append(rows, []string{alg.String(), fmt.Sprintf("%.2f", r.Elapsed.Milliseconds())})
	}
	fprintf(w, "%s\n", perf.Table(rows))
	fprintf(w, "(paper: neither sophisticated algorithms nor fetch&op help noticeably —\n")
	fprintf(w, " wait time from imbalance dominates the operations themselves)\n\n")
	return nil
}

// Sec71Mapping regenerates the Section 7.1 study: mapping processes to the
// network topology for Barnes (irregular), Ocean (near-neighbour) and FFT
// (all-to-all).
func Sec71Mapping(se *Session, w io.Writer) error {
	procs := 128
	if len(se.Scale.Procs) > 0 {
		procs = se.Scale.Procs[len(se.Scale.Procs)-1]
	}
	run := func(appName string, paperSize int, variant string, mapping topology.Mapping) (sim.Time, error) {
		app := AppByName(appName)
		cfg := se.Scale.Machine(procs)
		cfg.Mapping = mapping
		r, err := se.Scale.RunConfig(app, cfg, se.Scale.SweepParams(app, paperSize, variant))
		if err != nil {
			return 0, err
		}
		return r.Elapsed, nil
	}
	fprintf(w, "Section 7.1: process-to-topology mapping (%d processors)\n\n", procs)

	// Barnes: linear vs random.
	rows := [][]string{{"Barnes (16K bodies)", "Elapsed (ms)"}}
	for _, c := range []struct {
		label string
		m     topology.Mapping
	}{
		{"linear", topology.Linear(procs)},
		{"random", topology.Random(procs, 7)},
	} {
		t, err := run("Barnes", 16<<10, "", c.m)
		if err != nil {
			return err
		}
		rows = append(rows, []string{c.label, fmt.Sprintf("%.2f", t.Milliseconds())})
	}
	fprintf(w, "%s(paper: linear consistently beats random for the irregular codes)\n\n", perf.Table(rows))

	// Ocean: near-neighbour pair mapping matters at large scale.
	rows = [][]string{{"Ocean rowwise (2050 grid)", "Elapsed (ms)"}}
	for _, c := range []struct {
		label string
		m     topology.Mapping
	}{
		{"gray-code pairs", topology.GrayPairs(procs, 2, 2)},
		{"linear", topology.Linear(procs)},
		{"random", topology.Random(procs, 7)},
		{"paired random", topology.PairedRandom(procs, 7)},
	} {
		t, err := run("Ocean", 2050, "rowwise", c.m)
		if err != nil {
			return err
		}
		rows = append(rows, []string{c.label, fmt.Sprintf("%.2f", t.Milliseconds())})
	}
	fprintf(w, "%s(paper: near-neighbour mapping ~20%% better than random at 128p)\n\n", perf.Table(rows))

	// FFT: what matters is that transpose partners are off-node.
	rows = [][]string{{"FFT (2^22 points)", "Elapsed (ms)"}}
	type fftCase struct {
		label   string
		variant string
		m       topology.Mapping
	}
	for _, c := range []fftCase{
		{"linear, partner +1 (bad: on-node start)", "", topology.Linear(procs)},
		{"random mapping", "", topology.Random(procs, 7)},
		{"linear, off-node transpose order", "offnode", topology.Linear(procs)},
	} {
		t, err := run("FFT", 1<<22, c.variant, c.m)
		if err != nil {
			return err
		}
		rows = append(rows, []string{c.label, fmt.Sprintf("%.2f", t.Milliseconds())})
	}
	fprintf(w, "%s(paper: random mapping or an off-node transpose order both fix the\n", perf.Table(rows))
	fprintf(w, " on-node first-partner problem and perform equivalently)\n\n")

	// With and without metarouters at 64 processors: the paper found
	// metarouters help FFT on large systems by spreading contention,
	// despite the latency they add.
	rows = [][]string{{"FFT at 64 procs", "Elapsed (ms)"}}
	for _, meta := range []bool{false, true} {
		app := AppByName("FFT")
		cfg := se.Scale.Machine(64)
		cfg.ForceMetarouters = meta
		r, err := se.Scale.RunConfig(app, cfg, se.Scale.SweepParams(app, 1<<22, ""))
		if err != nil {
			return err
		}
		label := "full hypercube"
		if meta {
			label = "hypercube modules + metarouters"
		}
		rows = append(rows, []string{label, fmt.Sprintf("%.2f", r.Elapsed.Milliseconds())})
	}
	fprintf(w, "%s(paper: metarouters can help all-to-all traffic by reducing contention,\n", perf.Table(rows))
	fprintf(w, " at the cost of added latency)\n\n")
	return nil
}

// Sec72ProcsPerNode regenerates the Section 7.2 study: one versus two
// processors per node, at the same total processor count.
func Sec72ProcsPerNode(se *Session, w io.Writer) error {
	procs := 32
	if len(se.Scale.Procs) > 0 {
		procs = se.Scale.Procs[0]
	}
	cases := []struct {
		app     string
		size    int
		variant string
		label   string
	}{
		{"Radix", 128 << 20, "sample", "Sample sort, 128M keys"},
		{"FFT", 1 << 24, "", "FFT, 2^24 points"},
		{"Ocean", 2050, "", "Ocean, 2050 grid"},
		{"Raytrace", 512, "", "Raytrace, 512 image"},
	}
	rows := [][]string{{"Application", "2 procs/node (ms)", "1 proc/node (ms)", "1ppn gain"}}
	for _, c := range cases {
		app := AppByName(c.app)
		params := se.Scale.SweepParams(app, c.size, c.variant)
		var elapsed [2]sim.Time
		for i, ppn := range []int{2, 1} {
			cfg := se.Scale.Machine(procs)
			cfg.ProcsPerNode = ppn
			r, err := se.Scale.RunConfig(app, cfg, params)
			if err != nil {
				return err
			}
			elapsed[i] = r.Elapsed
		}
		gain := 100 * (1 - float64(elapsed[1])/float64(elapsed[0]))
		rows = append(rows, []string{
			c.label,
			fmt.Sprintf("%.2f", elapsed[0].Milliseconds()),
			fmt.Sprintf("%.2f", elapsed[1].Milliseconds()),
			fmt.Sprintf("%+.1f%%", gain),
		})
	}
	fprintf(w, "Section 7.2: one vs two processors per node, %d processors, large sizes\n", procs)
	fprintf(w, "(paper: with large problems and capacity-related Hub contention, one\n")
	fprintf(w, " processor per node wins — 40%% for Sample sort at 32p)\n")
	fprintf(w, "%s\n", perf.Table(rows))
	return nil
}

// All runs every experiment in paper order at the session's scale.
func All(se *Session, w io.Writer) error {
	steps := []struct {
		name string
		fn   func() error
	}{
		{"table1", func() error { return Table1(w) }},
		{"table2", func() error { return Table2(se, w) }},
		{"fig2", func() error { return Figure2(se, w) }},
		{"fig3", func() error { return Figure3(se, w) }},
		{"fig4", func() error { return Figure4(se, w) }},
		{"fig5-8", func() error { return Figures5to8(se, w) }},
		{"fig9", func() error { return Figure9(se, w) }},
		{"fig10", func() error { return Figure10(se, w) }},
		{"table3", func() error { return Table3(se, w) }},
		{"sec61", func() error { return Sec61Prefetch(se, w) }},
		{"sec63", func() error { return Sec63Synchronization(se, w) }},
		{"sec71", func() error { return Sec71Mapping(se, w) }},
		{"sec72", func() error { return Sec72ProcsPerNode(se, w) }},
	}
	for _, s := range steps {
		if err := s.fn(); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}
	return nil
}

// Run executes the named experiment ("table1", "fig4", "sec71", ... or
// "all") at the session's scale.
func Run(name string, se *Session, w io.Writer) error {
	switch name {
	case "all":
		return All(se, w)
	case "table1":
		return Table1(w)
	case "table2":
		return Table2(se, w)
	case "table3":
		return Table3(se, w)
	case "fig2":
		return Figure2(se, w)
	case "fig3":
		return Figure3(se, w)
	case "fig4":
		return Figure4(se, w)
	case "fig5", "fig6", "fig7", "fig8", "fig5-8":
		return Figures5to8(se, w)
	case "fig9":
		return Figure9(se, w)
	case "fig10":
		return Figure10(se, w)
	case "sec61":
		return Sec61Prefetch(se, w)
	case "sec62":
		return Table3(se, w) // migration is Table 3's third column
	case "sec63":
		return Sec63Synchronization(se, w)
	case "sec71":
		return Sec71Mapping(se, w)
	case "sec72":
		return Sec72ProcsPerNode(se, w)
	case "ablation":
		return Ablation(se, w)
	}
	return fmt.Errorf("experiments: unknown experiment %q", name)
}

// Names lists the runnable experiment names.
func Names() []string {
	return []string{
		"table1", "table2", "fig2", "fig3", "fig4", "fig5-8", "fig9",
		"fig10", "table3", "sec61", "sec63", "sec71", "sec72",
		"ablation", "all",
	}
}

var _ = workload.Params{} // keep the import stable for future drivers
