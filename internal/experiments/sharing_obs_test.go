package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/trace"
	"origin2000/internal/workload"
)

// sharingRun executes app at 32 processors with the sharing classifier
// toggled, returning the measurement and the machine (for the report).
func sharingRun(t *testing.T, appName, engine string, workers int, on bool) (RunResult, *core.Machine) {
	t.Helper()
	return engineRun(t, appName, engine, workers, func(cfg *core.Config) {
		cfg.Sharing.Enabled = on
	})
}

// TestSharingScheduleNeutral is the classifier's observer contract: turning
// it on must not move a single virtual-time event. A run with the sharing
// classifier enabled must produce exactly the RunResult of the same run
// without it — elapsed time, every counter — at every requested worker
// count (the classifier forces the effective count to one, and the
// windowed schedule is a function of virtual time only, so all runs land
// on the same schedule). The classification itself must be equally stable:
// the report is bit-identical across requested worker counts and across
// the serial and parallel engines.
func TestSharingScheduleNeutral(t *testing.T) {
	for _, name := range []string{"FFT", "Radix"} {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			base, _ := sharingRun(t, name, "parallel", 1, false)
			report := func(m *core.Machine) any { return m.SharingReport(0) }

			serial, sm := sharingRun(t, name, "serial", 0, true)
			if !reflect.DeepEqual(base, serial) {
				t.Errorf("serial engine perturbed by sharing classifier:\noff %+v\non  %+v", base, serial)
			}
			ref := report(sm)
			if ref == nil {
				t.Fatal("sharing enabled but SharingReport returned nil")
			}
			for _, workers := range []int{1, 2, 8} {
				on, m := sharingRun(t, name, "parallel", workers, true)
				if !reflect.DeepEqual(base, on) {
					t.Errorf("workers=%d run perturbed by sharing classifier:\noff %+v\non  %+v",
						workers, base, on)
				}
				if r := report(m); !reflect.DeepEqual(ref, r) {
					t.Errorf("workers=%d sharing report differs from serial engine's:\nserial   %+v\nparallel %+v",
						workers, ref, r)
				}
			}

			// Same config twice: classification is a pure function of the
			// (deterministic) schedule, so the report replays bit-identically.
			_, m2 := sharingRun(t, name, "serial", 0, true)
			if !reflect.DeepEqual(ref, report(m2)) {
				t.Error("sharing report not reproducible across identical runs")
			}
		})
	}
}

// TestSharingOffByDefault pins the zero-cost-off contract at the surface:
// a scale without Sharing set yields machines with no observer, a nil
// SharingReport, and artifacts without a sharing section — so every
// existing artifact consumer and saved-JSON fixture is untouched.
func TestSharingOffByDefault(t *testing.T) {
	app := AppByName("FFT")
	s := Scale{Div: 64, CacheDiv: 64}
	var m *core.Machine
	s.OnMachine = func(mm *core.Machine) { m = mm }
	params := s.Params(app, app.BasicSize(), "")
	if _, err := s.RunConfig(app, s.Machine(8), params); err != nil {
		t.Fatal(err)
	}
	if m.SharingObserver() != nil {
		t.Error("sharing observer constructed without Sharing.Enabled")
	}
	if m.SharingReport(0) != nil {
		t.Error("SharingReport non-nil with the classifier off")
	}
	if a := BuildArtifact("off", app, params, m); a.Sharing != nil {
		t.Error("artifact carries a sharing section with the classifier off")
	}
}

// saveSharingReport is the golden-test failure hook: when an application's
// built-in output verification fails, the scenario is deterministically
// re-run with the sharing classifier on and the origin-explain report JSON
// is dropped into the CI artifact directory (ORIGIN_TRACE_ARTIFACTS) — a
// wrong-output failure ships its sharing diagnosis alongside the event
// trace, so the first triage question ("what was the memory system doing?")
// is answered before anyone reproduces locally.
func saveSharingReport(t *testing.T, s Scale, app workload.App, procs int, variant string) {
	dir := trace.ArtifactDir()
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("sharing artifact dir: %v", err)
		return
	}
	var m *core.Machine
	s.OnMachine = func(mm *core.Machine) { m = mm }
	cfg := s.Machine(procs)
	cfg.Sharing.Enabled = true
	// The rerun fails the same verification; the classifier state at the
	// point of failure is exactly what we want to report.
	_, _ = s.RunConfig(app, cfg, s.Params(app, app.BasicSize(), variant))
	if m == nil {
		return
	}
	r := m.SharingReport(16)
	if r == nil {
		return
	}
	data, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		t.Logf("sharing report marshal: %v", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("sharing-%s-p%d.json", app.Name(), procs))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Logf("sharing artifact write: %v", err)
		return
	}
	t.Logf("saved %s", path)
}
