package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"origin2000/internal/core"
	"origin2000/internal/trace"
)

// TestEngineSpeedupSmoke is the CI wall-clock guard for the parallel
// engine: on a multi-core host, a fig2-style subset (three apps at 32
// simulated processors) must run at least as fast under the parallel
// engine with 4 workers as under the serial engine — while staying
// bit-identical. It measures host wall-clock, so it is opt-in: set
// ORIGIN_SPEEDUP_SMOKE=1 (the CI engine-speedup job does). Single-core
// hosts skip automatically: with nothing to overlap, the parallel engine
// can only add overhead, and the claim would be unprovable there.
func TestEngineSpeedupSmoke(t *testing.T) {
	if os.Getenv("ORIGIN_SPEEDUP_SMOKE") == "" {
		t.Skip("wall-clock smoke: set ORIGIN_SPEEDUP_SMOKE=1 to enable")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("wall-clock smoke: need >=4 host cores, have %d", runtime.NumCPU())
	}
	apps := []string{"Ocean", "Radix", "Water-Nsquared"}
	run := func(engine string, workers int) (time.Duration, []RunResult) {
		var results []RunResult
		start := time.Now()
		for _, name := range apps {
			app := AppByName(name)
			if app == nil {
				t.Fatalf("unknown app %q", name)
			}
			s := Scale{Div: 8, CacheDiv: 8, Engine: engine, Workers: workers}
			r, err := s.RunConfig(app, s.Machine(32), s.Params(app, app.BasicSize(), ""))
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, r)
		}
		return time.Since(start), results
	}
	// dumpHostProf reruns the parallel sweep with the host-time profiler
	// attached (schedule-neutral, so it reproduces the measured schedule
	// exactly) and writes each run's Perfetto timeline and aggregate report
	// to the CI artifact directory — the first thing to look at when the
	// speedup bar misses: it says whether the host time went to worker
	// chains, the serialized commit phase, or window turnover.
	dumpHostProf := func(reason string) {
		dir := trace.ArtifactDir()
		if dir == "" {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("hostprof artifacts: %v", err)
			return
		}
		for _, name := range apps {
			app := AppByName(name)
			s := Scale{Div: 8, CacheDiv: 8, Engine: "parallel", Workers: 4, HostProf: true}
			var m *core.Machine
			s.OnMachine = func(mm *core.Machine) { m = mm }
			if _, err := s.RunConfig(app, s.Machine(32), s.Params(app, app.BasicSize(), "")); err != nil {
				t.Logf("hostprof rerun %s: %v", name, err)
				continue
			}
			hp := m.HostProf()
			path := filepath.Join(dir, fmt.Sprintf("hostprof-%s.perfetto.json", name))
			f, err := os.Create(path)
			if err == nil {
				err = hp.WritePerfetto(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				t.Logf("hostprof timeline %s: %v", name, err)
				continue
			}
			rep, err := json.MarshalIndent(hp.Report(), "", " ")
			if err == nil {
				err = os.WriteFile(filepath.Join(dir, fmt.Sprintf("hostprof-%s.report.json", name)), rep, 0o644)
			}
			if err != nil {
				t.Logf("hostprof report %s: %v", name, err)
			}
		}
		t.Logf("wrote hostprof artifacts (%s) to %s", reason, dir)
	}

	// Warm-up pass so page-cache and JIT-ish first-run effects do not
	// count against either engine.
	_, _ = run("serial", 0)
	serialWall, serialRes := run("serial", 0)
	parWall, parRes := run("parallel", 4)
	if !reflect.DeepEqual(serialRes, parRes) {
		dumpHostProf("divergence")
		t.Fatal("parallel engine results differ from serial; speedup comparison is meaningless")
	}
	t.Logf("serial %v, parallel(4 workers) %v (%.2fx)", serialWall, parWall,
		float64(serialWall)/float64(parWall))
	// 5% slack: the bound is "pays for itself", not a specific speedup.
	if float64(parWall) > 1.05*float64(serialWall) {
		dumpHostProf("speedup bar missed")
		t.Errorf("parallel engine slower than serial: %v vs %v", parWall, serialWall)
	}
}
