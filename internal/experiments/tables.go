package experiments

import (
	"fmt"
	"io"

	"origin2000/internal/core"
	"origin2000/internal/mempolicy"
	"origin2000/internal/perf"
	"origin2000/internal/sim"
	"origin2000/internal/workload"
)

// LatencyProbe measures local, remote-clean and remote-dirty read miss
// latencies on a 64-processor machine built with the given latency preset,
// averaging the remote cases over all other nodes (Table 1 methodology).
func LatencyProbe(lat core.Latencies) (local, clean, dirty sim.Time, err error) {
	measure := func(home, owner int) (sim.Time, error) {
		cfg := core.Origin2000(64)
		cfg.Lat = lat
		m := core.New(cfg)
		arr := m.Alloc("probe", 1024, 8)
		arr.PlaceAtNode(home)
		var stall sim.Time
		runErr := m.Run(func(p *core.Proc) {
			if p.ID() == owner && owner != 0 {
				p.Write(arr.Addr(0))
			}
			if p.ID() == 0 {
				p.Compute(100 * sim.Microsecond)
				before := p.Now()
				p.Read(arr.Addr(0))
				stall = p.Now() - before
			}
		})
		return stall, runErr
	}
	if local, err = measure(0, 0); err != nil {
		return
	}
	var sum sim.Time
	n := 0
	for home := 1; home < 32; home += 2 {
		var s sim.Time
		if s, err = measure(home, 0); err != nil {
			return
		}
		sum += s
		n++
	}
	clean = sum / sim.Time(n)
	sum, n = 0, 0
	for home := 1; home < 8; home++ {
		owner := (home + 8) % 16 * 2 // a processor on a third node
		var s sim.Time
		if s, err = measure(home, owner); err != nil {
			return
		}
		sum += s
		n++
	}
	dirty = sum / sim.Time(n)
	return
}

// paperTable1 holds the paper's measured values for comparison.
var paperTable1 = map[core.Table1Machine][3]int{ // local, clean, dirty (ns)
	core.MachineOrigin2000: {338, 656, 892},
	core.MachineExemplarX:  {450, 1315, 1955},
	core.MachineNUMALiiNE:  {240, 2400, 3400},
	core.MachineHalS1:      {240, 1065, 1365},
	core.MachineNUMAQ:      {240, 2500, 0},
}

// Table1 regenerates the latency comparison across the five machines.
func Table1(w io.Writer) error {
	rows := [][]string{{
		"Machine", "Local(ns)", "RemoteClean(ns)", "RemoteDirty(ns)",
		"Clean ratio", "Dirty ratio", "paper(L/C/D)",
	}}
	machines := []core.Table1Machine{
		core.MachineOrigin2000, core.MachineExemplarX, core.MachineNUMALiiNE,
		core.MachineHalS1, core.MachineNUMAQ,
	}
	for _, mach := range machines {
		local, clean, dirty, err := LatencyProbe(core.Table1Latencies(mach))
		if err != nil {
			return err
		}
		pp := paperTable1[mach]
		rows = append(rows, []string{
			mach.String(),
			fmt.Sprintf("%.0f", local.Nanoseconds()),
			fmt.Sprintf("%.0f", clean.Nanoseconds()),
			fmt.Sprintf("%.0f", dirty.Nanoseconds()),
			fmt.Sprintf("%.1f:1", float64(clean)/float64(local)),
			fmt.Sprintf("%.1f:1", float64(dirty)/float64(local)),
			fmt.Sprintf("%d/%d/%d", pp[0], pp[1], pp[2]),
		})
	}
	fprintf(w, "Table 1: read-miss latencies by machine preset (measured on the simulator)\n")
	fprintf(w, "%s\n", perf.Table(rows))
	return nil
}

// paperTable2 holds the paper's sequential times in ms (interpreting the
// paper's column as microseconds, i.e. the printed values / 1000).
var paperTable2 = map[string]float64{
	"Barnes":         7556.556,
	"Infer":          640.000,
	"FFT":            2631.816,
	"Ocean":          28488.206,
	"Protein":        1713.000,
	"Radix":          4554.729,
	"Raytrace":       38186.372,
	"Shear-Warp":     8905.678,
	"Volrend":        934.163,
	"Water-Nsquared": 69031.748,
	"Water-Spatial":  7786.852,
}

// Table2 regenerates the basic problem sizes and sequential times.
func Table2(se *Session, w io.Writer) error {
	rows := [][]string{{"Application", "Basic size (paper)", "Run size", "Sequential (ms)", "Paper (ms)"}}
	for _, app := range Apps() {
		seq, err := se.Sequential(app, app.BasicSize())
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			app.Name(),
			fmt.Sprintf("%d %s", app.BasicSize(), app.Unit()),
			fmt.Sprintf("%d", se.Scale.BasicSize(app)),
			fmt.Sprintf("%.1f", seq.Milliseconds()),
			fmt.Sprintf("%.0f", paperTable2[app.Name()]),
		})
	}
	fprintf(w, "Table 2: basic problem sizes and sequential times (scale 1/%d, cache 1/%d; steps reduced)\n",
		se.Scale.Div, se.Scale.CacheDiv)
	fprintf(w, "%s\n", perf.Table(rows))
	return nil
}

// paperTable3 holds the paper's Table 3 speedups at 64 processors.
var paperTable3 = map[string][3]int{ // manual, round robin, rr+migration
	"FFT":   {55, 26, 25},
	"Radix": {38, 24, 25},
	"Ocean": {64, 34, 33},
}

// table3Sizes maps apps to the paper's Table 3 (large) problem sizes.
var table3Sizes = map[string]int{
	"FFT":   1 << 24,
	"Radix": 128 << 20,
	"Ocean": 2050,
}

// Table3 regenerates the data-placement comparison at 64 processors:
// manual placement, round-robin, and round-robin with dynamic migration.
func Table3(se *Session, w io.Writer) error {
	procs := 64
	if len(se.Scale.Procs) > 0 {
		procs = se.Scale.Procs[len(se.Scale.Procs)-1]
	}
	rows := [][]string{{"Application", "Size", "Manual", "RoundRobin", "RR+Migration", "paper(M/RR/RR+M)"}}
	for _, name := range []string{"FFT", "Radix", "Ocean"} {
		app := AppByName(name)
		params := se.Scale.SweepParams(app, table3Sizes[name], "")
		seq, err := se.sequentialAt(app, params.Size)
		if err != nil {
			return err
		}
		speedups := make([]float64, 3)
		for i, mode := range []string{"manual", "rr", "rrmig"} {
			cfg := se.Scale.Machine(procs)
			switch mode {
			case "rr":
				cfg.IgnorePlacement = true
				cfg.Placement = mempolicy.RoundRobin
			case "rrmig":
				cfg.IgnorePlacement = true
				cfg.Placement = mempolicy.RoundRobin
				cfg.MigrationThreshold = 64
			}
			r, err := se.Scale.RunConfig(app, cfg, params)
			if err != nil {
				return err
			}
			speedups[i] = perf.Speedup(seq, r.Elapsed)
		}
		pp := paperTable3[name]
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", params.Size),
			fmt.Sprintf("%.1f", speedups[0]),
			fmt.Sprintf("%.1f", speedups[1]),
			fmt.Sprintf("%.1f", speedups[2]),
			fmt.Sprintf("%d/%d/%d", pp[0], pp[1], pp[2]),
		})
	}
	fprintf(w, "Table 3: speedups at %d processors under different data distributions\n", procs)
	fprintf(w, "%s\n", perf.Table(rows))
	return nil
}

// sweepPoint measures parallel efficiency at one (app, size, procs, variant)
// using the ratio-preserving sweep scaling.
func (se *Session) sweepPoint(app workload.App, procs, paperSize int, variant string) (float64, error) {
	eff, _, err := se.SweepEfficiency(app, procs, paperSize, variant)
	return eff, err
}
