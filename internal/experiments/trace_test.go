package experiments

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/trace"
	"origin2000/internal/workload"
)

// traceRun executes app on a traced machine and returns the machine.
func traceRun(t *testing.T, s Scale, appName string, procs int, o trace.Options) *core.Machine {
	t.Helper()
	app := AppByName(appName)
	if app == nil {
		t.Fatalf("unknown app %q", appName)
	}
	cfg := s.Machine(procs)
	cfg.Trace = o
	m := core.New(cfg)
	if err := app.Run(m, s.Params(app, app.BasicSize(), "")); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestTraceDeterminism pins the tracing regression contract: a 32-processor
// FFT run's exported trace — Perfetto JSON and compact binary alike — must
// be bit-identical run to run and across GOMAXPROCS settings. Everything the
// tracer records is a pure function of the deterministic simulation, so any
// byte of divergence is a scheduler or recording-order bug.
func TestTraceDeterminism(t *testing.T) {
	s := Scale{Div: 64, CacheDiv: 64}
	export := func() (pf, bin []byte) {
		m := traceRun(t, s, "FFT", 32, trace.Options{Enabled: true, Lossless: true})
		var pfb, binb bytes.Buffer
		if err := m.Tracer().WritePerfetto(&pfb); err != nil {
			t.Fatal(err)
		}
		if err := m.Tracer().WriteBinary(&binb); err != nil {
			t.Fatal(err)
		}
		return pfb.Bytes(), binb.Bytes()
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	pf1, bin1 := export()
	pf2, bin2 := export()
	if !bytes.Equal(pf1, pf2) {
		t.Error("Perfetto trace differs run to run at GOMAXPROCS=1")
	}
	if !bytes.Equal(bin1, bin2) {
		t.Error("binary trace differs run to run at GOMAXPROCS=1")
	}

	runtime.GOMAXPROCS(4)
	pf3, bin3 := export()
	if !bytes.Equal(pf1, pf3) {
		t.Error("Perfetto trace differs between GOMAXPROCS=1 and 4")
	}
	if !bytes.Equal(bin1, bin3) {
		t.Error("binary trace differs between GOMAXPROCS=1 and 4")
	}
	if len(pf1) == 0 || len(bin1) == 0 {
		t.Fatal("exports are empty")
	}
}

// TestTraceZeroPerturbation verifies the Check-style discipline: enabling
// the tracer must not move a single virtual clock. Elapsed time, every
// per-processor breakdown, every counter, and the per-node queueing totals
// of a traced run must equal the untraced run's exactly.
func TestTraceZeroPerturbation(t *testing.T) {
	s := Scale{Div: 64, CacheDiv: 64}
	plain := traceRun(t, s, "FFT", 32, trace.Options{})
	traced := traceRun(t, s, "FFT", 32, trace.Options{Enabled: true, Lossless: true})

	if plain.Elapsed() != traced.Elapsed() {
		t.Errorf("elapsed differs: untraced %d, traced %d", plain.Elapsed(), traced.Elapsed())
	}
	rp, rt := plain.Result(), traced.Result()
	if rp.Trace != nil {
		t.Error("untraced run carries a tracer")
	}
	if rt.Trace == nil {
		t.Error("traced run lost its tracer")
	}
	rp.Trace, rt.Trace = nil, nil
	if !reflect.DeepEqual(rp, rt) {
		t.Errorf("results diverge with tracing on:\nuntraced %+v\ntraced   %+v", rp, rt)
	}
}

// TestOceanTraceAttribution is the end-to-end acceptance check: a traced
// 32-processor Ocean run must export a decodable Perfetto trace, the heat
// tables must agree exactly with the machine's own miss counters, and the
// top-ranked pages must concentrate the remote misses (that concentration
// is the whole point of the attribution layer — it names the pages to fix).
func TestOceanTraceAttribution(t *testing.T) {
	s := Scale{Div: 64, CacheDiv: 64}
	m := traceRun(t, s, "Ocean", 32, trace.Options{Enabled: true, Lossless: true})
	tr := m.Tracer()

	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.DecodePerfetto(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exported trace does not decode: %v", err)
	}
	orig := tr.AllEvents()
	if len(decoded) != len(orig) {
		t.Fatalf("decoded %d streams, want %d", len(decoded), len(orig))
	}
	total := 0
	for p := range orig {
		if len(decoded[p]) != len(orig[p]) {
			t.Fatalf("proc %d: decoded %d events, want %d", p, len(decoded[p]), len(orig[p]))
		}
		total += len(orig[p])
	}
	if total == 0 {
		t.Fatal("trace is empty")
	}

	// The heat tables are built from the same event sites as the machine
	// counters; their totals must agree exactly.
	c := m.Result().Counters
	var local, clean, dirty, upgrades, invSent, invRecv int64
	for _, h := range tr.TopPages(0) {
		local += h.LocalMisses
		clean += h.RemoteClean
		dirty += h.RemoteDirty
		upgrades += h.Upgrades
		invSent += h.InvalsSent
		invRecv += h.InvalsRecv
	}
	if local != c.LocalMisses || clean != c.RemoteClean || dirty != c.RemoteDirty {
		t.Errorf("heat miss totals (%d/%d/%d) disagree with counters (%d/%d/%d)",
			local, clean, dirty, c.LocalMisses, c.RemoteClean, c.RemoteDirty)
	}
	if upgrades != c.Upgrades {
		t.Errorf("heat upgrades %d != counter %d", upgrades, c.Upgrades)
	}
	if invSent != c.Invalidations || invRecv != c.Invalidations {
		t.Errorf("heat invalidations sent %d / received %d != counter %d",
			invSent, invRecv, c.Invalidations)
	}

	const topN = 20
	if share := tr.RemoteMissShare(topN); share < 0.5 {
		t.Errorf("top-%d pages hold only %.1f%% of remote misses, want >= 50%%", topN, 100*share)
	}

	// Barrier waits must be attributed.
	syncs := tr.TopSync(1)
	if len(syncs) == 0 || syncs[0].TotalWait <= 0 {
		t.Errorf("no synchronization wait attributed: %+v", syncs)
	}
}

// TestTraceSinkSeesFailedRuns pins the flight-recorder contract RunConfig
// gives CI: the TraceSink receives the machine even when the run fails, so
// the failing execution's trace can be exported.
func TestTraceSinkSeesFailedRuns(t *testing.T) {
	var label string
	var sunk *core.Machine
	s := Scale{Div: 64, CacheDiv: 64,
		Trace: trace.Options{Enabled: true},
	}
	s.TraceSink = func(l string, m *core.Machine) { label, sunk = l, m }
	app := AppByName("FFT")
	params := workload.Params{Size: -1, Seed: 42} // invalid size: the run must fail
	if _, err := s.RunConfig(app, s.Machine(4), params); err == nil {
		t.Skip("invalid size did not fail; sink-on-failure untestable this way")
	}
	if sunk == nil {
		t.Fatal("TraceSink not called for a failed run")
	}
	if sunk.Tracer() == nil {
		t.Error("sunk machine has no tracer despite Trace.Enabled")
	}
	if label == "" {
		t.Error("sink label empty")
	}
}
