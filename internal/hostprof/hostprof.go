// Package hostprof profiles the engine's host-time behavior: where the
// wall-clock of a parallel run actually goes. It implements sim.HostProfiler
// and records, per worker lane, the host-time spans of phase-1 shard chains
// and steal attempts, plus a serial track for the engine's single-threaded
// stretches (commit phase, run-ahead fast path, round turnover) and counter
// samples taken at every window open (runnable-chain backlog, commit-queue
// depth, window width).
//
// The profiler obeys the repo's observer gating contract (DESIGN.md §14):
// with Config.HostProf off it does not exist and the engine pays one nil
// check per hook site; with it on, the hooks only read the host clock and
// record — nothing flows back into the virtual-time schedule, so the
// simulated results are bit-identical with the profiler on or off, at any
// worker count. Unlike the checker and sampler it must NOT force workers=1:
// profiling a parallel engine is the whole point.
//
// Timestamps are monotonic nanoseconds since the profiler's construction.
// Spans land in fixed-capacity per-track rings: when a ring wraps, the
// oldest spans fall out of the exported timeline but every aggregate
// (busy time, chain counts, steal counters, phase shares, the turnover
// histogram) is accumulated outside the rings and stays exact.
//
// Concurrency: per-lane state is only touched by the engine's dispatch/
// chain-handoff edges for that lane (see sim.HostProfiler), and the serial
// and counter tracks only from the engine's single-threaded stretches, so
// the profiler needs no locks.
package hostprof

import (
	"time"

	"origin2000/internal/sim"
	"origin2000/internal/trace"
)

// DefaultRingSpans is the per-track timeline capacity. At roughly one chain
// span per lane per window this holds the last ~64k windows of detail;
// aggregates are exact regardless.
const DefaultRingSpans = 1 << 16

// Span is one host-time interval, in nanoseconds since the profiler start.
type Span struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
}

// serialSpan is a span on the serial track, tagged with its kind
// (sim.SerialCommit / SerialRunAhead / SerialTurnover).
type serialSpan struct {
	Span
	kind int8
}

// steal is one steal attempt instant on a lane track.
type steal struct {
	ts  int64
	hit bool
}

// CounterSample is the schedule state observed at one window open.
type CounterSample struct {
	TS          int64    `json:"ts"`
	Width       sim.Time `json:"width"`
	Backlog     int32    `json:"backlog"`      // shard chains the window queued
	CommitDepth int32    `json:"commit_depth"` // commit-queue depth at open
}

// ring is a fixed-capacity drop-oldest buffer. Aggregates live outside it,
// so wrapping only trims the exported timeline.
type ring[T any] struct {
	buf   []T
	head  int   // next write index once full
	total int64 // items ever pushed
	max   int
}

func newRing[T any](max int) ring[T] { return ring[T]{max: max} }

func (r *ring[T]) push(v T) {
	r.total++
	if len(r.buf) < r.max {
		r.buf = append(r.buf, v)
		return
	}
	r.buf[r.head] = v
	r.head++
	if r.head == r.max {
		r.head = 0
	}
}

// all returns the buffered items in chronological order.
func (r *ring[T]) all() []T {
	if r.total <= int64(len(r.buf)) {
		return r.buf
	}
	out := make([]T, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

// dropped reports how many items fell out of the ring.
func (r *ring[T]) dropped() int64 { return r.total - int64(len(r.buf)) }

// lane is one worker lane's state. Padded so concurrently-updated lanes do
// not share a cache line (a host-performance concern only).
type lane struct {
	openAt   int64 // start of the open chain span; -1 when none
	firstTS  int64 // first event timestamp; -1 before any
	lastTS   int64
	busyNS   int64 // total closed chain time (exact)
	chains   int64
	attempts int64
	hits     int64
	spans    ring[Span]
	steals   ring[steal]
	_        [64]byte
}

// Profiler records the engine's host-time behavior. Create with New, attach
// with Engine.SetHostProfiler, and read results with Report or
// WritePerfetto after the run.
type Profiler struct {
	start time.Time
	lanes []lane

	// Serial track: guarded by the engine's single-chain invariant.
	serialOpen  [sim.NumSerialKinds]int64
	serialNS    [sim.NumSerialKinds]int64
	serialCount [sim.NumSerialKinds]int64
	serialFirst int64
	serialLast  int64
	serial      ring[serialSpan]

	counters ring[CounterSample]
	turnover trace.Histogram // turnover span durations, in host ns
}

// New creates a profiler for an engine running with the given number of
// worker lanes (Engine.Workers()).
func New(workers int) *Profiler {
	if workers < 1 {
		workers = 1
	}
	p := &Profiler{
		start:       time.Now(),
		lanes:       make([]lane, workers),
		serial:      newRing[serialSpan](DefaultRingSpans),
		counters:    newRing[CounterSample](DefaultRingSpans),
		serialFirst: -1,
	}
	for i := range p.lanes {
		l := &p.lanes[i]
		l.openAt = -1
		l.firstTS = -1
		l.spans = newRing[Span](DefaultRingSpans)
		l.steals = newRing[steal](DefaultRingSpans)
	}
	for k := range p.serialOpen {
		p.serialOpen[k] = -1
	}
	return p
}

// now is the profiler clock: monotonic nanoseconds since construction.
func (p *Profiler) now() int64 { return int64(time.Since(p.start)) }

func (l *lane) mark(ts int64) {
	if l.firstTS < 0 {
		l.firstTS = ts
	}
	l.lastTS = ts
}

// ChainBegin implements sim.HostProfiler.
func (p *Profiler) ChainBegin(laneIdx int) {
	l := &p.lanes[laneIdx]
	ts := p.now()
	l.mark(ts)
	l.openAt = ts
}

// ChainEnd implements sim.HostProfiler.
func (p *Profiler) ChainEnd(laneIdx int) {
	l := &p.lanes[laneIdx]
	ts := p.now()
	l.mark(ts)
	if l.openAt < 0 {
		return
	}
	l.busyNS += ts - l.openAt
	l.chains++
	l.spans.push(Span{Start: l.openAt, End: ts})
	l.openAt = -1
}

// StealAttempt implements sim.HostProfiler.
func (p *Profiler) StealAttempt(laneIdx int, hit bool) {
	l := &p.lanes[laneIdx]
	ts := p.now()
	l.mark(ts)
	l.attempts++
	if hit {
		l.hits++
	}
	l.steals.push(steal{ts: ts, hit: hit})
}

// SerialBegin implements sim.HostProfiler.
func (p *Profiler) SerialBegin(kind int) {
	ts := p.now()
	if p.serialFirst < 0 {
		p.serialFirst = ts
	}
	p.serialLast = ts
	p.serialOpen[kind] = ts
}

// SerialEnd implements sim.HostProfiler.
func (p *Profiler) SerialEnd(kind int) {
	ts := p.now()
	p.serialLast = ts
	open := p.serialOpen[kind]
	if open < 0 {
		return
	}
	p.serialOpen[kind] = -1
	d := ts - open
	p.serialNS[kind] += d
	p.serialCount[kind]++
	p.serial.push(serialSpan{Span: Span{Start: open, End: ts}, kind: int8(kind)})
	if kind == sim.SerialTurnover {
		// The turnover-latency histogram reuses the virtual-time HDR
		// buckets; the values here are host nanoseconds (the histogram is
		// unit-agnostic int64).
		p.turnover.Record(sim.Time(d))
	}
}

// WindowOpen implements sim.HostProfiler.
func (p *Profiler) WindowOpen(width sim.Time, backlog, commitDepth int) {
	ts := p.now()
	p.serialLast = ts
	if p.serialFirst < 0 {
		p.serialFirst = ts
	}
	p.counters.push(CounterSample{
		TS: ts, Width: width,
		Backlog: int32(backlog), CommitDepth: int32(commitDepth),
	})
}

// Workers reports the number of worker lanes profiled.
func (p *Profiler) Workers() int { return len(p.lanes) }

// span bounds across every track: the profiled wall interval.
func (p *Profiler) bounds() (first, last int64) {
	first = -1
	add := func(f, l int64) {
		if f >= 0 && (first < 0 || f < first) {
			first = f
		}
		if l > last {
			last = l
		}
	}
	for i := range p.lanes {
		add(p.lanes[i].firstTS, p.lanes[i].lastTS)
	}
	add(p.serialFirst, p.serialLast)
	if first < 0 {
		first = 0
	}
	return first, last
}
