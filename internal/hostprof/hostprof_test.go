package hostprof

import (
	"bytes"
	"encoding/json"
	"testing"

	"origin2000/internal/sim"
)

// TestRingWrap pins the drop-oldest ring: below capacity nothing drops;
// past capacity the oldest items fall out, all() stays chronological, and
// dropped() counts exactly what was lost.
func TestRingWrap(t *testing.T) {
	r := newRing[int](4)
	for i := 0; i < 3; i++ {
		r.push(i)
	}
	if got := r.all(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("unwrapped ring all() = %v", got)
	}
	if r.dropped() != 0 {
		t.Fatalf("unwrapped ring dropped() = %d", r.dropped())
	}
	for i := 3; i < 10; i++ {
		r.push(i)
	}
	got := r.all()
	if len(got) != 4 {
		t.Fatalf("wrapped ring holds %d items, want 4", len(got))
	}
	for i, v := range got {
		if v != 6+i {
			t.Fatalf("wrapped ring all() = %v, want [6 7 8 9]", got)
		}
	}
	if r.dropped() != 6 {
		t.Fatalf("wrapped ring dropped() = %d, want 6", r.dropped())
	}
}

// drive exercises every hook with a plausible engine-shaped sequence:
// turnover+window opens, chain spans on two lanes, steals, and commit and
// run-ahead serial spans.
func drive(p *Profiler) {
	for w := 0; w < 3; w++ {
		p.SerialBegin(sim.SerialTurnover)
		p.WindowOpen(sim.Microsecond, 2, 1)
		p.SerialEnd(sim.SerialTurnover)
		p.ChainBegin(0)
		p.ChainBegin(1)
		p.StealAttempt(0, true)
		p.ChainEnd(0)
		p.StealAttempt(1, false)
		p.ChainEnd(1)
		p.SerialBegin(sim.SerialCommit)
		p.SerialEnd(sim.SerialCommit)
	}
	p.SerialBegin(sim.SerialRunAhead)
	p.SerialEnd(sim.SerialRunAhead)
}

// TestReportMath pins the aggregate report against the recorded state: the
// counts are exact, each lane's busy time equals the sum of its spans, and
// the share fields are consistent with their numerators.
func TestReportMath(t *testing.T) {
	p := New(2)
	drive(p)
	r := p.Report()
	if r.Workers != 2 {
		t.Fatalf("Workers = %d", r.Workers)
	}
	if r.WallNS <= 0 {
		t.Fatalf("WallNS = %d", r.WallNS)
	}
	for i, l := range r.Lanes {
		if l.Chains != 3 {
			t.Errorf("lane %d chains = %d, want 3", i, l.Chains)
		}
		var sum int64
		for _, s := range p.lanes[i].spans.all() {
			sum += s.End - s.Start
		}
		if l.BusyNS != sum {
			t.Errorf("lane %d BusyNS = %d, span sum = %d", i, l.BusyNS, sum)
		}
		if l.DroppedSpans != 0 {
			t.Errorf("lane %d dropped %d spans", i, l.DroppedSpans)
		}
	}
	if r.StealAttempts != 6 || r.StealHits != 3 {
		t.Errorf("steals = %d/%d, want 3/6", r.StealHits, r.StealAttempts)
	}
	if r.StealHitRate != 0.5 {
		t.Errorf("StealHitRate = %v, want 0.5", r.StealHitRate)
	}
	if r.Windows != 3 {
		t.Errorf("Windows = %d, want 3", r.Windows)
	}
	if r.Turnover.Count != 3 {
		t.Errorf("Turnover.Count = %d, want 3", r.Turnover.Count)
	}
	wantUtil := float64(r.Lanes[0].BusyNS+r.Lanes[1].BusyNS) / (float64(r.WallNS) * 2)
	if r.WorkerUtil != wantUtil {
		t.Errorf("WorkerUtil = %v, want %v", r.WorkerUtil, wantUtil)
	}
	if want := float64(r.CommitNS) / float64(r.WallNS); r.CommitHostShare != want {
		t.Errorf("CommitHostShare = %v, want %v", r.CommitHostShare, want)
	}
	if r.RunAheadNS < 0 || r.TurnoverNS <= 0 {
		t.Errorf("serial times: run-ahead %d, turnover %d", r.RunAheadNS, r.TurnoverNS)
	}
}

// TestUnbalancedEndsIgnored pins the hooks' tolerance: an End without a
// matching Begin records nothing rather than corrupting aggregates.
func TestUnbalancedEndsIgnored(t *testing.T) {
	p := New(1)
	p.ChainEnd(0)
	p.SerialEnd(sim.SerialCommit)
	r := p.Report()
	if r.Lanes[0].Chains != 0 || r.Lanes[0].BusyNS != 0 || r.CommitNS != 0 {
		t.Fatalf("unbalanced ends recorded state: %+v", r)
	}
}

// TestPerfettoExport pins the timeline export: valid JSON, one thread per
// lane plus the serial track, and every event family present.
func TestPerfettoExport(t *testing.T) {
	p := New(2)
	drive(p)
	var buf bytes.Buffer
	if err := p.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
		TraceEvents     []struct {
			Ph   string          `json:"ph"`
			Tid  int             `json:"tid"`
			Name string          `json:"name"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if tr.OtherData["workers"] != "2" {
		t.Errorf("otherData.workers = %q", tr.OtherData["workers"])
	}
	threads := map[string]bool{}
	kinds := map[string]int{}
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				var args struct {
					Name string `json:"name"`
				}
				json.Unmarshal(ev.Args, &args)
				threads[args.Name] = true
			}
		case "X", "i", "C":
			kinds[ev.Ph+":"+ev.Name]++
		}
	}
	for _, want := range []string{"worker0", "worker1", "serial"} {
		if !threads[want] {
			t.Errorf("missing thread track %q (have %v)", want, threads)
		}
	}
	for _, want := range []string{
		"X:chain", "X:commit", "X:turnover", "X:run-ahead",
		"i:steal hit", "i:steal miss",
		"C:runnable chains", "C:commit depth", "C:window width (ns)",
	} {
		if kinds[want] == 0 {
			t.Errorf("missing event %q (have %v)", want, kinds)
		}
	}
}
