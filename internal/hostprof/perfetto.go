package hostprof

import (
	"bufio"
	"fmt"
	"io"

	"origin2000/internal/sim"
)

// Perfetto (Chrome trace-event JSON) export of the host-time timeline:
// loads directly in ui.perfetto.dev. One thread track per worker lane
// carries its chain spans and steal-attempt instants; a "serial" track
// carries the commit / run-ahead / turnover spans; counter tracks sample
// the runnable-chain backlog, commit-queue depth and window width at every
// window open. Timestamps are host nanoseconds since the profiler start
// (the trace-event "ts" unit is microseconds, written as a fixed-point
// string at full nanosecond precision).

const perfettoTool = "origin2000-hostprof/1"

// pfNS renders a host-ns timestamp as the microsecond fixed-point string
// the trace-event format expects.
func pfNS(ns int64) string {
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// WritePerfetto writes the profiled timeline as Chrome trace-event JSON.
// Call after the run.
func (p *Profiler) WritePerfetto(w io.Writer) error {
	bw := bufio.NewWriter(w)
	serialTid := len(p.lanes)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"tool\":%q,\"workers\":\"%d\"},\"traceEvents\":[\n",
		perfettoTool, len(p.lanes))
	fmt.Fprintf(bw, "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"origin2000 engine (host time)\"}}")
	for i := range p.lanes {
		fmt.Fprintf(bw, ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"worker%d\"}}", i, i)
	}
	fmt.Fprintf(bw, ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"serial\"}}", serialTid)
	for i := range p.lanes {
		l := &p.lanes[i]
		for _, s := range l.spans.all() {
			fmt.Fprintf(bw,
				",\n{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"name\":\"chain\",\"cat\":\"engine\"}",
				i, pfNS(s.Start), pfNS(s.End-s.Start))
		}
		for _, st := range l.steals.all() {
			name := "steal miss"
			if st.hit {
				name = "steal hit"
			}
			fmt.Fprintf(bw,
				",\n{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"name\":%q,\"cat\":\"engine\"}",
				i, pfNS(st.ts), name)
		}
	}
	for _, s := range p.serial.all() {
		fmt.Fprintf(bw,
			",\n{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"name\":%q,\"cat\":\"engine\"}",
			serialTid, pfNS(s.Start), pfNS(s.End-s.Start), sim.SerialKindName(int(s.kind)))
	}
	for _, c := range p.counters.all() {
		fmt.Fprintf(bw, ",\n{\"ph\":\"C\",\"pid\":0,\"ts\":%s,\"name\":\"runnable chains\",\"args\":{\"v\":%d}}",
			pfNS(c.TS), c.Backlog)
		fmt.Fprintf(bw, ",\n{\"ph\":\"C\",\"pid\":0,\"ts\":%s,\"name\":\"commit depth\",\"args\":{\"v\":%d}}",
			pfNS(c.TS), c.CommitDepth)
		fmt.Fprintf(bw, ",\n{\"ph\":\"C\",\"pid\":0,\"ts\":%s,\"name\":\"window width (ns)\",\"args\":{\"v\":%d}}",
			pfNS(c.TS), int64(c.Width)/int64(sim.Nanosecond))
	}
	fmt.Fprintf(bw, "\n]}\n")
	return bw.Flush()
}
