package hostprof

import (
	"fmt"

	"origin2000/internal/sim"
)

// LaneReport aggregates one worker lane.
type LaneReport struct {
	Lane          int     `json:"lane"`
	BusyNS        int64   `json:"busy_ns"` // host time inside phase-1 chain spans
	Chains        int64   `json:"chains"`  // chain spans run on this lane
	Util          float64 `json:"util"`    // BusyNS / wall
	StealAttempts int64   `json:"steal_attempts"`
	StealHits     int64   `json:"steal_hits"`
	DroppedSpans  int64   `json:"dropped_spans"` // timeline spans lost to ring wrap
}

// TurnoverStats summarizes the window-turnover latency histogram (host ns).
type TurnoverStats struct {
	Count  int64 `json:"count"`
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P99NS  int64 `json:"p99_ns"`
	MaxNS  int64 `json:"max_ns"`
}

// Report is the aggregate host-time report of one profiled run. Every field
// is exact (accumulated outside the timeline rings).
type Report struct {
	WallNS  int64 `json:"wall_ns"` // first to last profiled event
	Workers int   `json:"workers"`

	// WorkerUtil is the mean phase-1 lane utilization: total chain time
	// across lanes divided by workers x wall. The gap to 1.0 is host time
	// lanes spent idle or the engine spent in its serial stretches.
	WorkerUtil float64 `json:"worker_util"`

	CommitNS   int64 `json:"commit_ns"`    // serialized commit-phase host time
	RunAheadNS int64 `json:"run_ahead_ns"` // run-ahead fast-path host time
	TurnoverNS int64 `json:"turnover_ns"`  // round-turnover host time

	// Shares are each serial phase's fraction of the profiled wall.
	CommitHostShare float64 `json:"commit_host_share"`
	RunAheadShare   float64 `json:"run_ahead_share"`
	TurnoverShare   float64 `json:"turnover_share"`

	StealAttempts int64   `json:"steal_attempts"`
	StealHits     int64   `json:"steal_hits"`
	StealHitRate  float64 `json:"steal_hit_rate"` // hits / attempts

	Windows  int64         `json:"windows"` // window-open counter samples
	Turnover TurnoverStats `json:"turnover"`

	Lanes []LaneReport `json:"lanes"`
}

// Report builds the aggregate report. Call after the run (no hook may be
// concurrently executing).
func (p *Profiler) Report() *Report {
	first, last := p.bounds()
	wall := last - first
	r := &Report{
		WallNS:     wall,
		Workers:    len(p.lanes),
		CommitNS:   p.serialNS[sim.SerialCommit],
		RunAheadNS: p.serialNS[sim.SerialRunAhead],
		TurnoverNS: p.serialNS[sim.SerialTurnover],
		Windows:    p.counters.total,
		Turnover: TurnoverStats{
			Count:  p.turnover.Count(),
			MeanNS: int64(p.turnover.Mean()),
			P50NS:  int64(p.turnover.Quantile(0.5)),
			P99NS:  int64(p.turnover.Quantile(0.99)),
			MaxNS:  int64(p.turnover.Max()),
		},
	}
	var busy int64
	for i := range p.lanes {
		l := &p.lanes[i]
		lr := LaneReport{
			Lane:          i,
			BusyNS:        l.busyNS,
			Chains:        l.chains,
			StealAttempts: l.attempts,
			StealHits:     l.hits,
			DroppedSpans:  l.spans.dropped(),
		}
		if wall > 0 {
			lr.Util = float64(l.busyNS) / float64(wall)
		}
		busy += l.busyNS
		r.StealAttempts += l.attempts
		r.StealHits += l.hits
		r.Lanes = append(r.Lanes, lr)
	}
	if wall > 0 {
		r.WorkerUtil = float64(busy) / (float64(wall) * float64(len(p.lanes)))
		r.CommitHostShare = float64(r.CommitNS) / float64(wall)
		r.RunAheadShare = float64(r.RunAheadNS) / float64(wall)
		r.TurnoverShare = float64(r.TurnoverNS) / float64(wall)
	}
	if r.StealAttempts > 0 {
		r.StealHitRate = float64(r.StealHits) / float64(r.StealAttempts)
	}
	return r
}

func hostMS(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e6) }

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// Rows renders the aggregate report as table rows (header first) for
// perf.Table.
func (r *Report) Rows() [][]string {
	rows := [][]string{
		{"host phase", "time (ms)", "share"},
		{"worker chains (sum)", hostMS(r.totalBusyNS()), pct(r.WorkerUtil)},
		{"commit (serial)", hostMS(r.CommitNS), pct(r.CommitHostShare)},
		{"run-ahead (serial)", hostMS(r.RunAheadNS), pct(r.RunAheadShare)},
		{"turnover (serial)", hostMS(r.TurnoverNS), pct(r.TurnoverShare)},
		{"profiled wall", hostMS(r.WallNS), "100.0%"},
	}
	return rows
}

func (r *Report) totalBusyNS() int64 {
	var t int64
	for _, l := range r.Lanes {
		t += l.BusyNS
	}
	return t
}

// LaneRows renders the per-lane table (header first) for perf.Table.
func (r *Report) LaneRows() [][]string {
	rows := [][]string{{"lane", "busy (ms)", "chains", "util", "steal hit/att"}}
	for _, l := range r.Lanes {
		rows = append(rows, []string{
			fmt.Sprint(l.Lane), hostMS(l.BusyNS), fmt.Sprint(l.Chains), pct(l.Util),
			fmt.Sprintf("%d/%d", l.StealHits, l.StealAttempts),
		})
	}
	return rows
}

// SummaryRows renders the scalar summary (header first) for perf.Table.
func (r *Report) SummaryRows() [][]string {
	return [][]string{
		{"metric", "value"},
		{"workers", fmt.Sprint(r.Workers)},
		{"worker_util", fmt.Sprintf("%.3f", r.WorkerUtil)},
		{"commit_host_share", fmt.Sprintf("%.3f", r.CommitHostShare)},
		{"steal_hit_rate", fmt.Sprintf("%.3f", r.StealHitRate)},
		{"steal attempts", fmt.Sprint(r.StealAttempts)},
		{"windows sampled", fmt.Sprint(r.Windows)},
		{"turnover count", fmt.Sprint(r.Turnover.Count)},
		{"turnover mean", fmt.Sprintf("%dns", r.Turnover.MeanNS)},
		{"turnover p50", fmt.Sprintf("%dns", r.Turnover.P50NS)},
		{"turnover p99", fmt.Sprintf("%dns", r.Turnover.P99NS)},
		{"turnover max", fmt.Sprintf("%dns", r.Turnover.MaxNS)},
	}
}
