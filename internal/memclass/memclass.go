// Package memclass is the single definition of the memory-system
// miss-class taxonomy. The event tracer's latency histograms
// (internal/trace), the virtual-time sampler's counter columns
// (internal/metrics) and the sharing-pattern classifier
// (internal/sharing) all index by this enum, so adding or renaming a
// class propagates to every surface and the layers cannot drift apart.
package memclass

import "fmt"

// Class classifies one demand memory operation by how the coherence
// protocol satisfied it.
type Class int

// Miss classes, in the order every per-class array uses.
const (
	// Local is a demand miss satisfied by the local node's memory.
	Local Class = iota
	// RemoteClean is a 2-hop miss satisfied by a remote home memory.
	RemoteClean
	// RemoteDirty is a 3-hop miss requiring an intervention at the
	// exclusive owner's cache.
	RemoteDirty
	// Upgrade is a write hit on a Shared line obtaining ownership.
	Upgrade
	// FetchOp is an uncached at-memory fetch&op.
	FetchOp

	NumClasses
)

// String is the display name used in rendered reports; tests pin these,
// so renaming one is a format change.
func (c Class) String() string {
	switch c {
	case Local:
		return "local miss"
	case RemoteClean:
		return "remote clean"
	case RemoteDirty:
		return "remote dirty"
	case Upgrade:
		return "upgrade"
	case FetchOp:
		return "fetch&op"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// CounterKey is the stable snake_case identifier used for a class's
// cumulative counter in CSV headers and machine-readable exports.
func (c Class) CounterKey() string {
	switch c {
	case Local:
		return "local_misses"
	case RemoteClean:
		return "remote_clean"
	case RemoteDirty:
		return "remote_dirty"
	case Upgrade:
		return "upgrades"
	case FetchOp:
		return "fetchops"
	}
	return fmt.Sprintf("class_%d", int(c))
}

// Remote reports whether the class crosses the interconnect to another
// node's memory or cache.
func (c Class) Remote() bool { return c == RemoteClean || c == RemoteDirty }
