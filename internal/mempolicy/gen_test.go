package mempolicy

import "testing"

// The generation counter is the page table's only invalidation signal for
// the per-processor home TLBs (internal/core): it must bump exactly when an
// existing translation becomes wrong, and never otherwise — spurious bumps
// throw away every cached translation machine-wide.
func TestGenBumpSemantics(t *testing.T) {
	cases := []struct {
		name     string
		run      func(tb *Table)
		wantBump uint32
	}{
		{"fresh table", func(tb *Table) {}, 0},
		{"first placement of a page", func(tb *Table) {
			tb.SetHome(10, 1)
		}, 0},
		{"first-touch resolution", func(tb *Table) {
			tb.Home(11, 2)
		}, 0},
		{"re-home to the same node", func(tb *Table) {
			tb.SetHome(10, 1)
			tb.SetHome(10, 1)
		}, 0},
		{"re-home to a different node", func(tb *Table) {
			tb.SetHome(10, 1)
			tb.SetHome(10, 2)
		}, 1},
		{"two independent moves", func(tb *Table) {
			tb.SetHome(10, 1)
			tb.SetHome(11, 1)
			tb.SetHome(10, 2)
			tb.SetHome(11, 3)
		}, 2},
		{"remote miss below threshold", func(tb *Table) {
			tb.Home(10, 0)
			tb.RecordRemoteMiss(10, 1)
		}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tb := NewTable(4, FirstTouch, nil)
			before := tb.Gen()
			tc.run(tb)
			if got := tb.Gen() - before; got != tc.wantBump {
				t.Fatalf("gen bumped %d times, want %d", got, tc.wantBump)
			}
		})
	}
}

func TestGenBumpsOnMigration(t *testing.T) {
	tb := NewTable(4, FirstTouch, NewMigrator(4, 2))
	tb.Home(10, 0) // first touch at node 0
	before := tb.Gen()
	var moved bool
	for i := 0; i < 10 && !moved; i++ {
		_, moved = tb.RecordRemoteMiss(10, 3)
	}
	if !moved {
		t.Fatal("migration never triggered")
	}
	if tb.Gen() == before {
		t.Fatal("migration did not bump the generation")
	}
	if h := tb.Home(10, 0); h != 3 {
		t.Fatalf("page homed at %d after migration, want 3", h)
	}
}
