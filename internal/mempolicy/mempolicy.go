// Package mempolicy implements physical page placement for a CC-NUMA
// machine: the 16 KB pages of the Origin2000, first-touch and round-robin
// default policies, explicit (manual) per-page homes, and the dynamic page
// migration support evaluated in the paper's Section 6.2.
package mempolicy

// Page geometry of the Origin2000.
const (
	PageShift = 14
	PageBytes = 1 << PageShift // 16 KB
)

// PageOf returns the page number containing byte address addr.
func PageOf(addr uint64) uint64 { return addr >> PageShift }

// Kind selects the default placement policy for pages without an explicit
// home.
type Kind int

const (
	// FirstTouch homes a page at the node of the first processor to
	// access it (the IRIX default; what "manual" placement arranges by
	// having the owning process touch its data first).
	FirstTouch Kind = iota
	// RoundRobin stripes pages across nodes by page number.
	RoundRobin
)

func (k Kind) String() string {
	if k == RoundRobin {
		return "RoundRobin"
	}
	return "FirstTouch"
}

// Table maps pages to home nodes.
type Table struct {
	numNodes int
	kind     Kind
	homes    map[uint64]int32
	migrator *Migrator
	gen      uint32 // bumped whenever an existing page->home mapping changes

	// OnRemap, when set, observes every move of an already-homed page —
	// dynamic migrations and overriding SetHome calls alike — with the
	// page's previous and new home. The tracing layer uses it for
	// per-page migration heat; it must not mutate placement state.
	OnRemap func(page uint64, from, to int)
}

// NewTable creates a page table over numNodes nodes with the given default
// policy. Pass a non-nil Migrator to enable dynamic migration.
func NewTable(numNodes int, kind Kind, m *Migrator) *Table {
	if numNodes < 1 {
		numNodes = 1
	}
	return &Table{
		numNodes: numNodes,
		kind:     kind,
		homes:    make(map[uint64]int32),
		migrator: m,
		gen:      1, // non-zero so zero-valued cache entries never match
	}
}

// Gen is the table's remap generation. It changes whenever a page that
// already had a home moves (migration or an overriding SetHome), so callers
// caching page->home translations can validate them with one comparison.
func (t *Table) Gen() uint32 { return t.gen }

// NumNodes reports the node count.
func (t *Table) NumNodes() int { return t.numNodes }

// Kind reports the default policy.
func (t *Table) Kind() Kind { return t.kind }

// Migration reports whether dynamic migration is enabled.
func (t *Table) Migration() bool { return t.migrator != nil }

// policyChoice computes the default policy's pick for an unplaced page
// (pure computation, no map access).
func (t *Table) policyChoice(page uint64, touchNode int) int {
	if t.kind == RoundRobin {
		return int(page % uint64(t.numNodes))
	}
	return touchNode
}

// Home returns the page's home node, assigning one by the default policy if
// the page is untouched. touchNode is the node of the accessing processor
// (used by FirstTouch).
func (t *Table) Home(page uint64, touchNode int) int {
	h, _ := t.Resolve(page, touchNode, nil)
	return h
}

// Resolve returns the page's home node in a single map lookup, assigning
// one on first touch: the default policy's choice is passed through the
// optional place hook (e.g. a per-node capacity spill), recorded, and
// reported with fresh=true. This is the hot-path replacement for the
// Placed+Choose+SetHome sequence.
func (t *Table) Resolve(page uint64, touchNode int, place func(choice int) int) (home int, fresh bool) {
	if h, ok := t.homes[page]; ok {
		return int(h), false
	}
	h := t.policyChoice(page, touchNode)
	if place != nil {
		h = place(h)
	}
	t.homes[page] = int32(h)
	return h, true
}

// Choose returns the home the default policy would pick for an unplaced
// page, without recording it. Callers that need to adjust the choice (e.g.
// for per-node capacity limits) combine Choose with SetHome.
func (t *Table) Choose(page uint64, touchNode int) int {
	if h, ok := t.homes[page]; ok {
		return int(h)
	}
	return t.policyChoice(page, touchNode)
}

// SetHome pins a page to a node (manual placement by the application).
func (t *Table) SetHome(page uint64, node int) {
	if h, ok := t.homes[page]; ok && int(h) != node {
		t.gen++ // an existing mapping moved: cached translations are stale
		if t.OnRemap != nil {
			t.OnRemap(page, int(h), node)
		}
	}
	t.homes[page] = int32(node)
}

// Lookup returns the page's home without assigning one, reporting whether
// the page is placed. The engine's shard classifier uses it on the hot
// path: an unplaced page's first touch mutates placement state, so it must
// run in the serialized commit phase, which Resolve then handles.
func (t *Table) Lookup(page uint64) (home int, ok bool) {
	h, ok := t.homes[page]
	return int(h), ok
}

// Placed reports whether a page already has a home.
func (t *Table) Placed(page uint64) bool {
	_, ok := t.homes[page]
	return ok
}

// RecordRemoteMiss informs the migration policy that node missed remotely
// on page. It returns the new home and true when the policy decides to
// migrate the page (the caller charges the migration cost and the table has
// already been updated).
func (t *Table) RecordRemoteMiss(page uint64, node int) (newHome int, migrated bool) {
	if t.migrator == nil {
		return 0, false
	}
	to, ok := t.migrator.record(page, node)
	if !ok {
		return 0, false
	}
	from := int(t.homes[page])
	t.homes[page] = int32(to)
	t.gen++ // the page moved: cached translations are stale
	if t.OnRemap != nil {
		t.OnRemap(page, from, to)
	}
	return to, true
}

// Migrator implements the counter-based migration policy: when one node has
// taken Threshold remote misses on a page and holds at least a 2x lead over
// every other node's count, the page migrates to it and the counters reset.
type Migrator struct {
	// Threshold is the remote-miss count that triggers migration.
	Threshold int
	// Migrations counts pages moved.
	Migrations int64

	counts map[uint64][]int32
	nodes  int
}

// NewMigrator creates a migrator for numNodes nodes. A threshold <= 0
// selects the default of 64 misses.
func NewMigrator(numNodes, threshold int) *Migrator {
	if threshold <= 0 {
		threshold = 64
	}
	return &Migrator{
		Threshold: threshold,
		counts:    make(map[uint64][]int32),
		nodes:     numNodes,
	}
}

func (m *Migrator) record(page uint64, node int) (to int, migrate bool) {
	c, ok := m.counts[page]
	if !ok {
		c = make([]int32, m.nodes)
		m.counts[page] = c
	}
	c[node]++
	if int(c[node]) < m.Threshold {
		return 0, false
	}
	// Require a clear (2x) lead over every other node so balanced
	// sharing does not make pages ping-pong.
	for n, v := range c {
		if n != node && 2*v > c[node] {
			return 0, false
		}
	}
	for i := range c {
		c[i] = 0
	}
	m.Migrations++
	return node, true
}
