package mempolicy

import (
	"testing"
	"testing/quick"
)

func TestFirstTouchHomesAtToucher(t *testing.T) {
	tab := NewTable(8, FirstTouch, nil)
	if got := tab.Home(100, 5); got != 5 {
		t.Fatalf("first touch home = %d, want 5", got)
	}
	// Subsequent touches by other nodes do not move the page.
	if got := tab.Home(100, 2); got != 5 {
		t.Fatalf("home moved to %d on second touch", got)
	}
}

func TestRoundRobinStripes(t *testing.T) {
	tab := NewTable(4, RoundRobin, nil)
	for p := uint64(0); p < 16; p++ {
		if got := tab.Home(p, 0); got != int(p%4) {
			t.Fatalf("page %d home = %d, want %d", p, got, p%4)
		}
	}
}

func TestSetHomeOverridesPolicy(t *testing.T) {
	tab := NewTable(4, RoundRobin, nil)
	tab.SetHome(7, 2)
	if got := tab.Home(7, 0); got != 2 {
		t.Fatalf("home = %d, want manual 2", got)
	}
	if !tab.Placed(7) || tab.Placed(8) {
		t.Fatal("Placed bookkeeping wrong")
	}
}

func TestMigrationTriggersAtThreshold(t *testing.T) {
	m := NewMigrator(4, 3)
	tab := NewTable(4, RoundRobin, m)
	page := uint64(1) // home = node 1
	if got := tab.Home(page, 0); got != 1 {
		t.Fatalf("initial home = %d", got)
	}
	// Two remote misses from node 3: below threshold.
	for i := 0; i < 2; i++ {
		if _, migrated := tab.RecordRemoteMiss(page, 3); migrated {
			t.Fatal("migrated below threshold")
		}
	}
	// Third miss crosses the threshold and node 3 leads: migrate.
	to, migrated := tab.RecordRemoteMiss(page, 3)
	if !migrated || to != 3 {
		t.Fatalf("migrated=%v to=%d, want migration to 3", migrated, to)
	}
	if got := tab.Home(page, 0); got != 3 {
		t.Fatalf("home after migration = %d, want 3", got)
	}
	if m.Migrations != 1 {
		t.Fatalf("Migrations = %d, want 1", m.Migrations)
	}
}

func TestMigrationRequiresClearLeader(t *testing.T) {
	m := NewMigrator(4, 3)
	tab := NewTable(4, RoundRobin, m)
	page := uint64(2)
	tab.Home(page, 0)
	// Nodes 0 and 3 alternate misses; neither strictly leads at the
	// threshold, so the page must not ping-pong.
	migrations := 0
	for i := 0; i < 12; i++ {
		node := []int{0, 3}[i%2]
		if _, migrated := tab.RecordRemoteMiss(page, node); migrated {
			migrations++
		}
	}
	if migrations != 0 {
		t.Fatalf("page ping-ponged %d times under balanced misses", migrations)
	}
}

func TestNoMigrationWhenDisabled(t *testing.T) {
	tab := NewTable(4, RoundRobin, nil)
	tab.Home(1, 0)
	for i := 0; i < 1000; i++ {
		if _, migrated := tab.RecordRemoteMiss(1, 2); migrated {
			t.Fatal("migration happened with nil migrator")
		}
	}
}

func TestHomeStableProperty(t *testing.T) {
	// Property: without migration, a page's home never changes after
	// first assignment, whatever the touch sequence.
	f := func(pages []uint8, touchers []uint8) bool {
		tab := NewTable(8, FirstTouch, nil)
		first := map[uint64]int{}
		for i, pg := range pages {
			if len(touchers) == 0 {
				return true
			}
			n := int(touchers[i%len(touchers)]) % 8
			h := tab.Home(uint64(pg), n)
			if prev, ok := first[uint64(pg)]; ok && prev != h {
				return false
			}
			first[uint64(pg)] = h
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageOf(t *testing.T) {
	if PageOf(0) != 0 || PageOf(PageBytes-1) != 0 || PageOf(PageBytes) != 1 {
		t.Fatal("PageOf geometry wrong")
	}
}
