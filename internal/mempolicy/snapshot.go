package mempolicy

import "sort"

// PageHome is one page->home mapping in a TableSnap.
type PageHome struct {
	Page uint64 `json:"page"`
	Home int32  `json:"home"`
}

// PageCounts is one page's per-node remote-miss counters in a MigratorSnap.
type PageCounts struct {
	Page   uint64  `json:"page"`
	Counts []int32 `json:"counts"`
}

// MigratorSnap is the serializable state of the migration policy.
type MigratorSnap struct {
	Threshold  int          `json:"threshold"`
	Migrations int64        `json:"migrations"`
	Counts     []PageCounts `json:"counts,omitempty"`
}

// TableSnap is the serializable placement state: the default policy, the
// remap generation, and every page->home mapping in ascending page order.
type TableSnap struct {
	Kind     string        `json:"kind"`
	Gen      uint32        `json:"gen"`
	Homes    []PageHome    `json:"homes,omitempty"`
	Migrator *MigratorSnap `json:"migrator,omitempty"`
}

// Snap captures the table's placement state in canonical (page-sorted)
// order.
func (t *Table) Snap() TableSnap {
	s := TableSnap{Kind: t.kind.String(), Gen: t.gen}
	if len(t.homes) > 0 {
		s.Homes = make([]PageHome, 0, len(t.homes))
		for page, home := range t.homes {
			s.Homes = append(s.Homes, PageHome{Page: page, Home: home})
		}
		sort.Slice(s.Homes, func(i, j int) bool { return s.Homes[i].Page < s.Homes[j].Page })
	}
	if t.migrator != nil {
		s.Migrator = t.migrator.snap()
	}
	return s
}

func (m *Migrator) snap() *MigratorSnap {
	s := &MigratorSnap{Threshold: m.Threshold, Migrations: m.Migrations}
	if len(m.counts) > 0 {
		s.Counts = make([]PageCounts, 0, len(m.counts))
		for page, c := range m.counts {
			s.Counts = append(s.Counts, PageCounts{Page: page, Counts: append([]int32(nil), c...)})
		}
		sort.Slice(s.Counts, func(i, j int) bool { return s.Counts[i].Page < s.Counts[j].Page })
	}
	return s
}
