package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"origin2000/internal/critpath"
	"origin2000/internal/sharing"
	"origin2000/internal/sim"
)

// ArtifactSchema identifies the run-artifact JSON format.
const ArtifactSchema = "origin-metrics/v1"

// ProcStat is one processor's final state in an artifact: the three-way
// breakdown plus the full event-counter set (whose stall/wait components
// sub-attribute the breakdown).
type ProcStat struct {
	Busy     sim.Time     `json:"busy"`
	Memory   sim.Time     `json:"memory"`
	Sync     sim.Time     `json:"sync"`
	Counters sim.Counters `json:"counters"`
}

// Total returns the processor's accounted time.
func (p ProcStat) Total() sim.Time { return p.Busy + p.Memory + p.Sync }

// PageHeat is one page's coherence heat in an artifact (trace-derived).
type PageHeat struct {
	Page         uint64   `json:"page"`
	LocalMisses  int64    `json:"local_misses"`
	RemoteMisses int64    `json:"remote_misses"`
	Upgrades     int64    `json:"upgrades"`
	Stall        sim.Time `json:"stall"`
	Migrations   int64    `json:"migrations"`
}

// SyncSite is one synchronization object's wait profile in an artifact.
type SyncSite struct {
	Label     string   `json:"label"`
	Waits     int64    `json:"waits"`
	Acquires  int64    `json:"acquires"`
	TotalWait sim.Time `json:"total_wait"`
}

// Artifact is one run's saved measurement state: enough to re-render the
// paper-style breakdowns and to serve as either side of origin-diff without
// re-running the simulation.
type Artifact struct {
	Schema  string `json:"schema"`
	Label   string `json:"label"`
	App     string `json:"app"`
	Variant string `json:"variant,omitempty"`
	Procs   int    `json:"procs"`
	Size    int    `json:"size"`

	Elapsed sim.Time   `json:"elapsed"`
	PerProc []ProcStat `json:"per_proc"`

	// Interval and Machine are the sampler's virtual-time series (empty
	// when the run had metrics off).
	Interval sim.Time        `json:"interval,omitempty"`
	Machine  []MachineSample `json:"machine,omitempty"`
	// Epochs are the phase boundaries (barrier releases) the diff aligns.
	Epochs []sim.Time `json:"epochs,omitempty"`

	// Pages and Syncs are the trace-derived attribution tables (empty when
	// the run had tracing off).
	Pages []PageHeat `json:"pages,omitempty"`
	Syncs []SyncSite `json:"syncs,omitempty"`

	// CritPath is the critical-path record (nil when Config.CritPath was
	// off): per-epoch bounding arrivals, analyzable via metrics.CritPath.
	CritPath *critpath.Summary `json:"critpath,omitempty"`

	// Sharing is the sharing-classifier report (nil when Config.Sharing was
	// off): per-block pattern classification, true/false-sharing splits of
	// coherence misses, and home-imbalance attribution, rendered by
	// origin-explain and diffed by origin-diff.
	Sharing *sharing.Report `json:"sharing,omitempty"`
}

// CriticalProc returns the index of the processor with the largest
// accounted time — the parallel completion path — with ties going to the
// lowest id (-1 when PerProc is empty).
func (a *Artifact) CriticalProc() int {
	best := -1
	var bestT sim.Time
	for i := range a.PerProc {
		if t := a.PerProc[i].Total(); best < 0 || t > bestT {
			best, bestT = i, t
		}
	}
	return best
}

// WriteJSON writes the artifact as indented JSON.
func (a *Artifact) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(a)
}

// WriteFile writes the artifact to path.
func (a *Artifact) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := a.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadArtifact loads an artifact from path, validating the schema.
func ReadArtifact(path string) (Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Artifact{}, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return Artifact{}, fmt.Errorf("%s: %w", path, err)
	}
	if a.Schema != ArtifactSchema {
		return Artifact{}, fmt.Errorf("%s: schema %q, want %q", path, a.Schema, ArtifactSchema)
	}
	return a, nil
}
