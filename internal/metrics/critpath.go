package metrics

import (
	"fmt"

	"origin2000/internal/critpath"
)

// CritPath analyzes an artifact's critical-path record: the longest
// dependency chain bounding the run's elapsed virtual time, decomposed
// exactly (components sum to Elapsed with zero residual — the same
// exactness contract as Diff). The artifact must come from a run with
// Config.CritPath enabled; errors otherwise.
func CritPath(a *Artifact) (*critpath.Path, error) {
	if a.CritPath == nil {
		return nil, fmt.Errorf("%s: no critical-path record (run with CritPath enabled)", a.Label)
	}
	final := make([]critpath.Snap, len(a.PerProc))
	for i := range a.PerProc {
		ps := &a.PerProc[i]
		c := &ps.Counters
		final[i] = critpath.Snap{
			At:           ps.Total(),
			Busy:         ps.Busy,
			Memory:       ps.Memory,
			Sync:         ps.Sync,
			SyncWait:     c.SyncWait,
			SyncOverhead: c.SyncOverhead,
			Contention:   c.ContentionStall,
			LocalStall:   c.LocalStall,
			RemoteStall:  c.RemoteStall,
		}
	}
	crit := a.CriticalProc()
	if crit < 0 {
		return nil, fmt.Errorf("%s: no per-proc stats", a.Label)
	}
	return critpath.Analyze(a.CritPath, final, crit, a.Elapsed), nil
}
