package metrics

import (
	"fmt"
	"sort"

	"origin2000/internal/sim"
)

// Differential attribution: given two run artifacts, explain where the
// virtual-time delta went. This mechanizes the comparison the paper makes
// for every restructuring ("the transpose now costs X less, but barrier
// wait grew by Y"): the top-level component breakdown is exact — it sums to
// the measured delta — and the epoch, page and sync tables localize it.

// Component is one row of the exact top-level breakdown.
type Component struct {
	Name  string
	A, B  sim.Time
	Delta sim.Time
}

// EpochDelta compares one aligned phase epoch (the span between successive
// barrier releases) across the two runs.
type EpochDelta struct {
	Index int
	A, B  sim.Time // epoch duration in each run
	Delta sim.Time
}

// PageDelta compares one page's stall contribution across the two runs.
type PageDelta struct {
	Page           uint64
	StallA, StallB sim.Time
	Delta          sim.Time
	RemoteA        int64
	RemoteB        int64
}

// SyncDelta compares one synchronization object's total wait across runs.
// Objects are joined by label (registration order), which is stable for
// identical program structure.
type SyncDelta struct {
	Label        string
	WaitA, WaitB sim.Time
	Delta        sim.Time
}

// Report is the differential attribution of run B relative to run A.
type Report struct {
	LabelA, LabelB string
	ElapsedA       sim.Time
	ElapsedB       sim.Time
	Delta          sim.Time // ElapsedB - ElapsedA
	CriticalA      int      // critical-path processor in each run
	CriticalB      int
	// Components is the exact decomposition: the critical-path processor's
	// Busy/Memory/Sync deltas plus a residual (nonzero only if a run's
	// critical processor has unaccounted clock time). Summing Delta over
	// Components always reproduces Report.Delta exactly.
	Components []Component
	// SubMemory and SubSync split the memory and sync components by the
	// critical processors' counters (informational: the counter buckets
	// overlap the breakdown buckets but are not partitions of them).
	SubMemory []Component
	SubSync   []Component
	// Epochs aligns the runs phase by phase when both recorded the same
	// number of barrier-release marks; EpochNote explains when they differ.
	Epochs    []EpochDelta
	EpochNote string
	// Pages and Syncs are the top movers by stall/wait delta.
	Pages []PageDelta
	Syncs []SyncDelta
	// Sharing attributes the delta to sharing-behavior shifts when both
	// runs carried the sharing classifier: miss-cause counts (with the
	// exact true/false coherence split) and the per-pattern block census.
	// SharingNote carries the verdict pair, or why the section is absent.
	Sharing     []SharingDelta
	SharingNote string
}

// SharingDelta is one sharing-shift row: a classifier count compared
// across the two runs.
type SharingDelta struct {
	Name  string
	A, B  int64
	Delta int64
}

// Diff attributes the virtual-time delta between two runs.
func Diff(a, b Artifact) Report {
	r := Report{
		LabelA:   a.Label,
		LabelB:   b.Label,
		ElapsedA: a.Elapsed,
		ElapsedB: b.Elapsed,
		Delta:    b.Elapsed - a.Elapsed,
	}
	r.CriticalA, r.CriticalB = a.CriticalProc(), b.CriticalProc()

	var ca, cb ProcStat
	if r.CriticalA >= 0 {
		ca = a.PerProc[r.CriticalA]
	}
	if r.CriticalB >= 0 {
		cb = b.PerProc[r.CriticalB]
	}
	comp := func(name string, va, vb sim.Time) Component {
		return Component{Name: name, A: va, B: vb, Delta: vb - va}
	}
	r.Components = []Component{
		comp("busy", ca.Busy, cb.Busy),
		comp("memory stall", ca.Memory, cb.Memory),
		comp("sync", ca.Sync, cb.Sync),
	}
	// The critical processor's accounted time can differ from the run's
	// elapsed time (another processor's clock may have coasted past it
	// without charging a bucket); the residual keeps the sum exact.
	var acc sim.Time
	for _, c := range r.Components {
		acc += c.Delta
	}
	if resid := r.Delta - acc; resid != 0 {
		r.Components = append(r.Components,
			comp("residual", a.Elapsed-ca.Total(), b.Elapsed-cb.Total()))
	}

	r.SubMemory = []Component{
		comp("local stall", ca.Counters.LocalStall, cb.Counters.LocalStall),
		comp("remote stall", ca.Counters.RemoteStall, cb.Counters.RemoteStall),
		comp("contention (queueing)", ca.Counters.ContentionStall, cb.Counters.ContentionStall),
	}
	r.SubSync = []Component{
		comp("sync wait (imbalance)", ca.Counters.SyncWait, cb.Counters.SyncWait),
		comp("sync overhead", ca.Counters.SyncOverhead, cb.Counters.SyncOverhead),
	}

	r.diffEpochs(a, b)
	r.diffPages(a, b)
	r.diffSyncs(a, b)
	r.diffSharing(a, b)
	return r
}

// diffSharing attributes the delta to sharing-pattern shifts: which miss
// causes grew, whether the coherence growth is true or false sharing, and
// which patterns gained blocks.
func (r *Report) diffSharing(a, b Artifact) {
	if a.Sharing == nil || b.Sharing == nil {
		r.SharingNote = "no sharing reports recorded (runs without the sharing classifier)"
		return
	}
	sa, sb := a.Sharing, b.Sharing
	row := func(name string, va, vb int64) SharingDelta {
		return SharingDelta{Name: name, A: va, B: vb, Delta: vb - va}
	}
	r.Sharing = []SharingDelta{
		row("cold misses", sa.Split.Cold, sb.Split.Cold),
		row("replacement misses", sa.Split.Replacement, sb.Split.Replacement),
		row("coherence: true sharing", sa.Split.TrueSharing, sb.Split.TrueSharing),
		row("coherence: false sharing", sa.Split.FalseTotal(), sb.Split.FalseTotal()),
	}
	// Pattern census joined by pattern name (both reports enumerate every
	// pattern in a fixed order, but join defensively anyway).
	bByName := map[string]int64{}
	for _, p := range sb.Patterns {
		bByName[p.Pattern] = int64(p.Blocks)
	}
	for _, p := range sa.Patterns {
		if int64(p.Blocks) != 0 || bByName[p.Pattern] != 0 {
			r.Sharing = append(r.Sharing, row(p.Pattern+" blocks", int64(p.Blocks), bByName[p.Pattern]))
		}
	}
	if sa.Verdict == sb.Verdict {
		r.SharingNote = "verdict (both runs): " + sa.Verdict
	} else {
		r.SharingNote = fmt.Sprintf("verdict shifted: %q -> %q", sa.Verdict, sb.Verdict)
	}
}

// epochSpans converts barrier-release marks into per-epoch durations (the
// first epoch starts at time zero).
func epochSpans(marks []sim.Time) []sim.Time {
	spans := make([]sim.Time, len(marks))
	var prev sim.Time
	for i, m := range marks {
		spans[i] = m - prev
		prev = m
	}
	return spans
}

func (r *Report) diffEpochs(a, b Artifact) {
	switch {
	case len(a.Epochs) == 0 || len(b.Epochs) == 0:
		r.EpochNote = "no phase epochs recorded (runs without barrier marks)"
		return
	case len(a.Epochs) != len(b.Epochs):
		r.EpochNote = fmt.Sprintf(
			"epoch counts differ (%d vs %d): program structure changed, per-epoch alignment skipped",
			len(a.Epochs), len(b.Epochs))
		return
	}
	sa, sb := epochSpans(a.Epochs), epochSpans(b.Epochs)
	for i := range sa {
		r.Epochs = append(r.Epochs, EpochDelta{Index: i, A: sa[i], B: sb[i], Delta: sb[i] - sa[i]})
	}
}

func (r *Report) diffPages(a, b Artifact) {
	type pair struct{ a, b PageHeat }
	joined := map[uint64]*pair{}
	for _, p := range a.Pages {
		jp := &pair{a: p}
		joined[p.Page] = jp
	}
	for _, p := range b.Pages {
		jp := joined[p.Page]
		if jp == nil {
			jp = &pair{}
			joined[p.Page] = jp
		}
		jp.b = p
	}
	for page, jp := range joined {
		d := jp.b.Stall - jp.a.Stall
		if d == 0 && jp.a.RemoteMisses == jp.b.RemoteMisses {
			continue
		}
		r.Pages = append(r.Pages, PageDelta{
			Page: page, StallA: jp.a.Stall, StallB: jp.b.Stall, Delta: d,
			RemoteA: jp.a.RemoteMisses, RemoteB: jp.b.RemoteMisses,
		})
	}
	sort.Slice(r.Pages, func(i, j int) bool {
		di, dj := abs(r.Pages[i].Delta), abs(r.Pages[j].Delta)
		if di != dj {
			return di > dj
		}
		return r.Pages[i].Page < r.Pages[j].Page
	})
}

func (r *Report) diffSyncs(a, b Artifact) {
	type pair struct{ a, b SyncSite }
	joined := map[string]*pair{}
	for _, s := range a.Syncs {
		jp := &pair{a: s}
		joined[s.Label] = jp
	}
	for _, s := range b.Syncs {
		jp := joined[s.Label]
		if jp == nil {
			jp = &pair{}
			joined[s.Label] = jp
		}
		jp.b = s
	}
	for label, jp := range joined {
		d := jp.b.TotalWait - jp.a.TotalWait
		if d == 0 {
			continue
		}
		r.Syncs = append(r.Syncs, SyncDelta{Label: label, WaitA: jp.a.TotalWait, WaitB: jp.b.TotalWait, Delta: d})
	}
	sort.Slice(r.Syncs, func(i, j int) bool {
		di, dj := abs(r.Syncs[i].Delta), abs(r.Syncs[j].Delta)
		if di != dj {
			return di > dj
		}
		return r.Syncs[i].Label < r.Syncs[j].Label
	})
}

func abs(t sim.Time) sim.Time {
	if t < 0 {
		return -t
	}
	return t
}

// ComponentTotal sums the exact component deltas; it equals Report.Delta.
func (r *Report) ComponentTotal() sim.Time {
	var t sim.Time
	for _, c := range r.Components {
		t += c.Delta
	}
	return t
}

func ms(t sim.Time) string { return fmt.Sprintf("%.3f", t.Milliseconds()) }

func componentRows(title string, comps []Component) [][]string {
	rows := [][]string{{title, "A (ms)", "B (ms)", "delta (ms)"}}
	for _, c := range comps {
		rows = append(rows, []string{c.Name, ms(c.A), ms(c.B), ms(c.Delta)})
	}
	return rows
}

// ComponentRows renders the exact breakdown as table rows (header first),
// closing with the total row that equals the measured delta.
func (r *Report) ComponentRows() [][]string {
	rows := componentRows("component", r.Components)
	rows = append(rows, []string{"TOTAL", ms(r.ElapsedA), ms(r.ElapsedB), ms(r.ComponentTotal())})
	return rows
}

// SubMemoryRows renders the informational memory-stall sub-attribution.
func (r *Report) SubMemoryRows() [][]string { return componentRows("memory component", r.SubMemory) }

// SubSyncRows renders the informational sync sub-attribution.
func (r *Report) SubSyncRows() [][]string { return componentRows("sync component", r.SubSync) }

// EpochRows renders the top-n epochs by absolute delta (all when n <= 0),
// in epoch order.
func (r *Report) EpochRows(n int) [][]string {
	rows := [][]string{{"epoch", "A (ms)", "B (ms)", "delta (ms)"}}
	idx := make([]int, len(r.Epochs))
	for i := range idx {
		idx[i] = i
	}
	if n > 0 && len(idx) > n {
		sort.Slice(idx, func(i, j int) bool {
			return abs(r.Epochs[idx[i]].Delta) > abs(r.Epochs[idx[j]].Delta)
		})
		idx = idx[:n]
		sort.Ints(idx)
	}
	for _, i := range idx {
		e := r.Epochs[i]
		rows = append(rows, []string{fmt.Sprint(e.Index), ms(e.A), ms(e.B), ms(e.Delta)})
	}
	return rows
}

// PageRows renders the top-n page movers.
func (r *Report) PageRows(n int) [][]string {
	rows := [][]string{{"page", "stall A (ms)", "stall B (ms)", "delta (ms)", "remote A", "remote B"}}
	for i, p := range r.Pages {
		if n > 0 && i >= n {
			break
		}
		rows = append(rows, []string{
			fmt.Sprintf("%#x", p.Page), ms(p.StallA), ms(p.StallB), ms(p.Delta),
			fmt.Sprint(p.RemoteA), fmt.Sprint(p.RemoteB),
		})
	}
	return rows
}

// SharingRows renders the sharing-shift attribution.
func (r *Report) SharingRows() [][]string {
	rows := [][]string{{"sharing shift", "A", "B", "delta"}}
	for _, s := range r.Sharing {
		rows = append(rows, []string{s.Name, fmt.Sprint(s.A), fmt.Sprint(s.B), fmt.Sprint(s.Delta)})
	}
	return rows
}

// SyncRows renders the top-n sync-object movers.
func (r *Report) SyncRows(n int) [][]string {
	rows := [][]string{{"object", "wait A (ms)", "wait B (ms)", "delta (ms)"}}
	for i, s := range r.Syncs {
		if n > 0 && i >= n {
			break
		}
		rows = append(rows, []string{s.Label, ms(s.WaitA), ms(s.WaitB), ms(s.Delta)})
	}
	return rows
}
