// Package metrics is the simulator's virtual-time sampling layer: it
// snapshots per-processor execution-time breakdowns, per-node queueing and
// occupancy at the shared resources, the directory's state mix, and
// miss-class counts on a fixed virtual-time grid, producing deterministic
// time-series — the raw material for the paper's stacked breakdown figures
// and for cross-run differential attribution (cmd/origin-diff).
//
// The sampler follows the internal/check and internal/trace discipline: it
// is gated by core.Config.Metrics, costs nothing but nil checks when off,
// and — because sampling only reads virtual clocks and cumulative counters,
// never advancing either — perturbs simulated time by exactly zero when on.
// Every sample is a pure function of the deterministic simulation, so the
// series are bit-identical across runs and GOMAXPROCS settings.
package metrics

import (
	"fmt"
	"io"

	"origin2000/internal/memclass"
	"origin2000/internal/sim"
)

// DefaultInterval is the sampling grid spacing when Options.Interval is
// zero: fine enough to resolve the phases of the scaled experiment runs,
// coarse enough that a 128-processor sweep stays small.
const DefaultInterval = 50 * sim.Microsecond

// Options configures the sampler (carried in core.Config.Metrics).
type Options struct {
	// Enabled turns sampling on. When false the machine never constructs a
	// sampler and the hot path pays only nil checks.
	Enabled bool
	// Interval is the virtual-time grid spacing (default DefaultInterval).
	// A processor emits at most one sample per grid cell it crosses, so
	// series are sparse when clocks jump (blocked processors do not
	// generate filler samples).
	Interval sim.Time
	// OnMachineSample, when set, is called synchronously with each machine
	// sample as it is recorded — the live-streaming tap cmd/origin-dash
	// uses. It runs on a simulated-processor goroutine and must not mutate
	// simulated state; it has no effect on the recorded series.
	OnMachineSample func(MachineSample) `json:"-"`
}

// ProcSample is one processor's cumulative state at a grid crossing. All
// time and count fields are cumulative since the start of the run; rates
// per interval are successive differences.
type ProcSample struct {
	// At is the virtual time the sample was taken (the first clock advance
	// at or past the grid boundary).
	At sim.Time `json:"at"`
	// Epoch is the grid cell index: floor(At/Interval).
	Epoch int64 `json:"epoch"`

	// The paper's three-way execution-time decomposition.
	Busy   sim.Time `json:"busy"`
	Memory sim.Time `json:"memory"`
	Sync   sim.Time `json:"sync"`

	// Memory-stall and sync-time components (see sim.Counters).
	LocalStall      sim.Time `json:"local_stall"`
	RemoteStall     sim.Time `json:"remote_stall"`
	ContentionStall sim.Time `json:"contention_stall"`
	SyncWait        sim.Time `json:"sync_wait"`
	SyncOverhead    sim.Time `json:"sync_overhead"`

	// Miss-class counts.
	Hits        int64 `json:"hits"`
	LocalMisses int64 `json:"local_misses"`
	RemoteClean int64 `json:"remote_clean"`
	RemoteDirty int64 `json:"remote_dirty"`
	Upgrades    int64 `json:"upgrades"`
}

// MachineSample is one machine-wide snapshot at a grid crossing: aggregate
// breakdowns and miss counts over all processors, the directory state mix,
// and per-node (per-router) queueing state. Queued/Busy fields are
// cumulative; Backlog fields are instantaneous (the occupancy already
// committed beyond the sample time).
type MachineSample struct {
	At    sim.Time `json:"at"`
	Epoch int64    `json:"epoch"`

	// Aggregate execution-time breakdown, summed over processors.
	Busy   sim.Time `json:"busy"`
	Memory sim.Time `json:"memory"`
	Sync   sim.Time `json:"sync"`

	// Aggregate miss-class and traffic counts, summed over processors.
	LocalMisses    int64 `json:"local_misses"`
	RemoteClean    int64 `json:"remote_clean"`
	RemoteDirty    int64 `json:"remote_dirty"`
	Upgrades       int64 `json:"upgrades"`
	Invalidations  int64 `json:"invalidations"`
	Writebacks     int64 `json:"writebacks"`
	PageMigrations int64 `json:"page_migrations"`

	// Directory state mix (incrementally maintained, O(1) to sample).
	DirShared    int `json:"dir_shared"`
	DirExclusive int `json:"dir_exclusive"`

	// Per-node Hub and memory queueing, indexed by node id.
	HubQueued  []sim.Time `json:"hub_queued"`
	HubBusy    []sim.Time `json:"hub_busy"`
	HubBacklog []sim.Time `json:"hub_backlog"`
	MemQueued  []sim.Time `json:"mem_queued"`
	MemBacklog []sim.Time `json:"mem_backlog"`
	// Per-router queueing, indexed by router id.
	RouterQueued []sim.Time `json:"router_queued"`
}

// MissCount returns the sample's cumulative counter for one shared miss
// class (internal/memclass). FetchOp operations are uncached and not
// counted by the sampler, so that class reports zero.
func (ms *MachineSample) MissCount(c memclass.Class) int64 {
	switch c {
	case memclass.Local:
		return ms.LocalMisses
	case memclass.RemoteClean:
		return ms.RemoteClean
	case memclass.RemoteDirty:
		return ms.RemoteDirty
	case memclass.Upgrade:
		return ms.Upgrades
	}
	return 0
}

// MissCount returns the processor sample's cumulative counter for one
// shared miss class, like (*MachineSample).MissCount.
func (ps *ProcSample) MissCount(c memclass.Class) int64 {
	switch c {
	case memclass.Local:
		return ps.LocalMisses
	case memclass.RemoteClean:
		return ps.RemoteClean
	case memclass.RemoteDirty:
		return ps.RemoteDirty
	case memclass.Upgrade:
		return ps.Upgrades
	}
	return 0
}

// HubQueuedTotal sums the per-node Hub queueing delays.
func (ms *MachineSample) HubQueuedTotal() sim.Time { return sumTimes(ms.HubQueued) }

// MemQueuedTotal sums the per-node memory queueing delays.
func (ms *MachineSample) MemQueuedTotal() sim.Time { return sumTimes(ms.MemQueued) }

// RouterQueuedTotal sums the per-router queueing delays.
func (ms *MachineSample) RouterQueuedTotal() sim.Time { return sumTimes(ms.RouterQueued) }

// HottestHub returns the node with the largest cumulative Hub queueing in
// this sample (ties go to the lowest node id; -1 when empty).
func (ms *MachineSample) HottestHub() (node int, queued sim.Time) {
	node = -1
	for i, q := range ms.HubQueued {
		if node < 0 || q > queued {
			node, queued = i, q
		}
	}
	return node, queued
}

func sumTimes(ts []sim.Time) sim.Time {
	var s sim.Time
	for _, t := range ts {
		s += t
	}
	return s
}

// Sampler records the time-series for one machine. All recording methods
// are called from simulated-processor goroutines, which the engine
// serializes, so no locking is needed and recording order is deterministic.
type Sampler struct {
	opts     Options
	interval sim.Time

	procNext []sim.Time // next grid boundary per processor
	machNext sim.Time   // next machine-wide grid boundary

	perProc [][]ProcSample
	machine []MachineSample
	epochs  []sim.Time
}

// New creates a sampler for procs processors.
func New(procs int, o Options) *Sampler {
	if procs < 1 {
		procs = 1
	}
	if o.Interval <= 0 {
		o.Interval = DefaultInterval
	}
	s := &Sampler{
		opts:     o,
		interval: o.Interval,
		procNext: make([]sim.Time, procs),
		perProc:  make([][]ProcSample, procs),
		machNext: o.Interval,
	}
	for i := range s.procNext {
		s.procNext[i] = o.Interval
	}
	return s
}

// Interval returns the sampling grid spacing.
func (s *Sampler) Interval() sim.Time { return s.interval }

// Options returns the sampler's configuration.
func (s *Sampler) Options() Options { return s.opts }

// Procs reports the number of per-processor series.
func (s *Sampler) Procs() int { return len(s.perProc) }

// Due reports whether proc's clock reaching now crosses any sampling
// boundary (its own or the machine-wide one) — the hot-path check.
func (s *Sampler) Due(proc int, now sim.Time) bool {
	return now >= s.procNext[proc] || now >= s.machNext
}

// ProcDue reports whether proc's per-processor boundary has been crossed.
func (s *Sampler) ProcDue(proc int, now sim.Time) bool { return now >= s.procNext[proc] }

// MachineDue reports whether the machine-wide boundary has been crossed.
func (s *Sampler) MachineDue(now sim.Time) bool { return now >= s.machNext }

// RecordProc appends one sample to proc's series (ps.At must be set; the
// sampler stamps the epoch) and advances the processor's grid boundary past
// it, so at most one sample lands in each grid cell.
func (s *Sampler) RecordProc(proc int, ps ProcSample) {
	ps.Epoch = int64(ps.At / s.interval)
	s.procNext[proc] = sim.Time(ps.Epoch+1) * s.interval
	s.perProc[proc] = append(s.perProc[proc], ps)
}

// RecordMachine appends one machine-wide sample (ms.At must be set) and
// advances the machine grid boundary past it.
func (s *Sampler) RecordMachine(ms MachineSample) {
	ms.Epoch = int64(ms.At / s.interval)
	s.machNext = sim.Time(ms.Epoch+1) * s.interval
	s.machine = append(s.machine, ms)
	if s.opts.OnMachineSample != nil {
		s.opts.OnMachineSample(ms)
	}
}

// RecordFinal appends a final machine sample at the end of a run without
// advancing the grid, so the series always ends with the run's closing
// state. It is idempotent: a sample at an At already recorded last is
// dropped (Machine.Result may be called repeatedly).
func (s *Sampler) RecordFinal(ms MachineSample) {
	if n := len(s.machine); n > 0 && s.machine[n-1].At == ms.At {
		return
	}
	ms.Epoch = int64(ms.At / s.interval)
	s.machine = append(s.machine, ms)
	if s.opts.OnMachineSample != nil {
		s.opts.OnMachineSample(ms)
	}
}

// EpochMark records a phase boundary (a global barrier release) at the
// given virtual time. Marks partition the run into the epochs origin-diff
// aligns across runs.
func (s *Sampler) EpochMark(at sim.Time) { s.epochs = append(s.epochs, at) }

// Epochs returns the recorded phase-boundary times, in recording order.
func (s *Sampler) Epochs() []sim.Time { return s.epochs }

// ProcSeries returns processor proc's sample series.
func (s *Sampler) ProcSeries(proc int) []ProcSample { return s.perProc[proc] }

// AllProcSeries returns every processor's series, indexed by processor id.
func (s *Sampler) AllProcSeries() [][]ProcSample { return s.perProc }

// MachineSeries returns the machine-wide sample series.
func (s *Sampler) MachineSeries() []MachineSample { return s.machine }

// Samples reports the total number of recorded samples (all series).
func (s *Sampler) Samples() int {
	n := len(s.machine)
	for _, ps := range s.perProc {
		n += len(ps)
	}
	return n
}

// machineCSVHeader is the column layout of WriteMachineCSV. The miss-class
// columns take their names from the shared taxonomy (internal/memclass).
var machineCSVHeader = []string{
	"at_ps", "epoch", "busy_ps", "memory_ps", "sync_ps",
	memclass.Local.CounterKey(), memclass.RemoteClean.CounterKey(),
	memclass.RemoteDirty.CounterKey(), memclass.Upgrade.CounterKey(),
	"invalidations", "writebacks", "page_migrations",
	"dir_shared", "dir_exclusive",
	"hub_queued_ps", "mem_queued_ps", "router_queued_ps",
	"hottest_hub", "hottest_hub_queued_ps",
}

// WriteMachineCSV writes a machine-sample series as CSV: one row per
// sample, cumulative totals plus the hottest Hub (per-node series are in
// the JSON artifact; the CSV is the spreadsheet-friendly projection).
func WriteMachineCSV(w io.Writer, samples []MachineSample) error {
	if err := writeCSVRow(w, machineCSVHeader); err != nil {
		return err
	}
	for i := range samples {
		ms := &samples[i]
		hot, hotQ := ms.HottestHub()
		row := []string{
			fmt.Sprint(int64(ms.At)), fmt.Sprint(ms.Epoch),
			fmt.Sprint(int64(ms.Busy)), fmt.Sprint(int64(ms.Memory)), fmt.Sprint(int64(ms.Sync)),
			fmt.Sprint(ms.LocalMisses), fmt.Sprint(ms.RemoteClean),
			fmt.Sprint(ms.RemoteDirty), fmt.Sprint(ms.Upgrades),
			fmt.Sprint(ms.Invalidations), fmt.Sprint(ms.Writebacks), fmt.Sprint(ms.PageMigrations),
			fmt.Sprint(ms.DirShared), fmt.Sprint(ms.DirExclusive),
			fmt.Sprint(int64(ms.HubQueuedTotal())), fmt.Sprint(int64(ms.MemQueuedTotal())),
			fmt.Sprint(int64(ms.RouterQueuedTotal())),
			fmt.Sprint(hot), fmt.Sprint(int64(hotQ)),
		}
		if err := writeCSVRow(w, row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the sampler's machine series as CSV.
func (s *Sampler) WriteCSV(w io.Writer) error { return WriteMachineCSV(w, s.machine) }

// WriteProcCSV writes every per-processor series as long-format CSV (one
// row per processor per sample).
func (s *Sampler) WriteProcCSV(w io.Writer) error {
	header := []string{
		"proc", "at_ps", "epoch", "busy_ps", "memory_ps", "sync_ps",
		"local_stall_ps", "remote_stall_ps", "contention_stall_ps",
		"sync_wait_ps", "sync_overhead_ps",
		"hits", memclass.Local.CounterKey(), memclass.RemoteClean.CounterKey(),
		memclass.RemoteDirty.CounterKey(), memclass.Upgrade.CounterKey(),
	}
	if err := writeCSVRow(w, header); err != nil {
		return err
	}
	for proc, series := range s.perProc {
		for i := range series {
			ps := &series[i]
			row := []string{
				fmt.Sprint(proc),
				fmt.Sprint(int64(ps.At)), fmt.Sprint(ps.Epoch),
				fmt.Sprint(int64(ps.Busy)), fmt.Sprint(int64(ps.Memory)), fmt.Sprint(int64(ps.Sync)),
				fmt.Sprint(int64(ps.LocalStall)), fmt.Sprint(int64(ps.RemoteStall)),
				fmt.Sprint(int64(ps.ContentionStall)),
				fmt.Sprint(int64(ps.SyncWait)), fmt.Sprint(int64(ps.SyncOverhead)),
				fmt.Sprint(ps.Hits), fmt.Sprint(ps.LocalMisses),
				fmt.Sprint(ps.RemoteClean), fmt.Sprint(ps.RemoteDirty), fmt.Sprint(ps.Upgrades),
			}
			if err := writeCSVRow(w, row); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeCSVRow(w io.Writer, cells []string) error {
	for i, c := range cells {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, c); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}
