package metrics

import (
	"strings"
	"testing"

	"origin2000/internal/sim"
)

func TestSamplerGridOneSamplePerCell(t *testing.T) {
	s := New(2, Options{Enabled: true, Interval: 100})
	if s.Due(0, 99) {
		t.Error("due before the first boundary")
	}
	if !s.Due(0, 100) {
		t.Error("not due at the boundary")
	}
	s.RecordProc(0, ProcSample{At: 130})
	if s.ProcDue(0, 199) {
		t.Error("still due inside the same cell after recording")
	}
	if !s.ProcDue(0, 200) {
		t.Error("not due in the next cell")
	}
	// A clock jump across several cells yields one sample, not fillers.
	s.RecordProc(0, ProcSample{At: 750})
	if got := len(s.ProcSeries(0)); got != 2 {
		t.Fatalf("series length = %d, want 2 (sparse sampling)", got)
	}
	if e := s.ProcSeries(0)[1].Epoch; e != 7 {
		t.Errorf("epoch = %d, want 7", e)
	}
	if s.ProcDue(0, 799) {
		t.Error("due again inside cell 7")
	}
	// Processor 1's grid is independent.
	if !s.ProcDue(1, 100) {
		t.Error("processor 1's grid moved with processor 0's")
	}
}

func TestSamplerMachineGridAndFinal(t *testing.T) {
	var streamed []MachineSample
	s := New(1, Options{
		Enabled:  true,
		Interval: 100,
		OnMachineSample: func(ms MachineSample) {
			streamed = append(streamed, ms)
		},
	})
	if !s.MachineDue(100) {
		t.Fatal("machine sample not due at the boundary")
	}
	s.RecordMachine(MachineSample{At: 120})
	if s.MachineDue(199) {
		t.Error("machine due twice in one cell")
	}
	// Final sample is appended regardless of grid, but deduped by At.
	s.RecordFinal(MachineSample{At: 150})
	s.RecordFinal(MachineSample{At: 150})
	if got := len(s.MachineSeries()); got != 2 {
		t.Fatalf("machine series length = %d, want 2 (final deduped)", got)
	}
	if len(streamed) != 2 {
		t.Errorf("OnMachineSample saw %d samples, want 2", len(streamed))
	}
}

func TestMachineSampleHelpers(t *testing.T) {
	ms := MachineSample{
		HubQueued:    []sim.Time{3, 7, 7},
		MemQueued:    []sim.Time{1, 2, 3},
		RouterQueued: []sim.Time{4},
	}
	if got := ms.HubQueuedTotal(); got != 17 {
		t.Errorf("HubQueuedTotal = %d", got)
	}
	if got := ms.MemQueuedTotal(); got != 6 {
		t.Errorf("MemQueuedTotal = %d", got)
	}
	if got := ms.RouterQueuedTotal(); got != 4 {
		t.Errorf("RouterQueuedTotal = %d", got)
	}
	if node, q := ms.HottestHub(); node != 1 || q != 7 {
		t.Errorf("HottestHub = (%d, %d), want (1, 7): lowest id wins ties", node, q)
	}
}

func TestWriteMachineCSV(t *testing.T) {
	var sb strings.Builder
	samples := []MachineSample{
		{At: 100, Epoch: 1, Busy: 50, HubQueued: []sim.Time{0, 9}},
		{At: 200, Epoch: 2, Busy: 120, HubQueued: []sim.Time{3, 9}},
	}
	if err := WriteMachineCSV(&sb, samples); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2", len(lines))
	}
	cols := strings.Split(lines[0], ",")
	for i, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != len(cols) {
			t.Errorf("row %d has %d cells, header has %d", i, got, len(cols))
		}
	}
	if !strings.HasPrefix(lines[1], "100,1,50,") {
		t.Errorf("row 1 = %q", lines[1])
	}
	if !strings.Contains(lines[1], ",1,9") { // hottest hub, queued
		t.Errorf("row 1 missing hottest-hub columns: %q", lines[1])
	}
}

// artifactWith builds a two-processor artifact with the given critical-path
// stats for diff tests.
func artifactWith(label string, elapsed sim.Time, crit ProcStat) Artifact {
	return Artifact{
		Schema:  ArtifactSchema,
		Label:   label,
		Elapsed: elapsed,
		PerProc: []ProcStat{crit, {Busy: 1}},
	}
}

func TestDiffComponentTotalExact(t *testing.T) {
	a := artifactWith("a", 1000, ProcStat{Busy: 400, Memory: 350, Sync: 250})
	b := artifactWith("b", 1300, ProcStat{Busy: 400, Memory: 600, Sync: 300})
	r := Diff(a, b)
	if r.Delta != 300 {
		t.Fatalf("Delta = %d", r.Delta)
	}
	if got := r.ComponentTotal(); got != r.Delta {
		t.Errorf("ComponentTotal = %d, want Delta = %d", got, r.Delta)
	}
	// No residual needed: both critical procs fully account their elapsed.
	if len(r.Components) != 3 {
		t.Errorf("expected 3 components, got %d", len(r.Components))
	}
}

func TestDiffResidualKeepsSumExact(t *testing.T) {
	// Critical proc accounts only part of elapsed in run B — the residual
	// component must absorb the difference so the sum stays exact.
	a := artifactWith("a", 1000, ProcStat{Busy: 400, Memory: 350, Sync: 250})
	b := artifactWith("b", 1500, ProcStat{Busy: 420, Memory: 380, Sync: 260})
	r := Diff(a, b)
	if got := r.ComponentTotal(); got != r.Delta {
		t.Errorf("ComponentTotal = %d, want Delta = %d", got, r.Delta)
	}
	if len(r.Components) != 4 || r.Components[3].Name != "residual" {
		t.Errorf("expected residual component, got %+v", r.Components)
	}
}

func TestDiffEpochAlignment(t *testing.T) {
	a := artifactWith("a", 100, ProcStat{Busy: 100})
	b := artifactWith("b", 100, ProcStat{Busy: 100})
	a.Epochs = []sim.Time{10, 30}
	b.Epochs = []sim.Time{15, 55}
	r := Diff(a, b)
	if len(r.Epochs) != 2 || r.EpochNote != "" {
		t.Fatalf("epochs = %+v, note = %q", r.Epochs, r.EpochNote)
	}
	// Epoch 0: 10 vs 15 (+5); epoch 1: 20 vs 40 (+20).
	if r.Epochs[1].Delta != 20 {
		t.Errorf("epoch 1 delta = %d, want 20", r.Epochs[1].Delta)
	}

	b.Epochs = []sim.Time{15}
	r = Diff(a, b)
	if len(r.Epochs) != 0 || r.EpochNote == "" {
		t.Error("mismatched epoch counts must skip alignment with a note")
	}
}

func TestDiffPageAndSyncJoin(t *testing.T) {
	a := artifactWith("a", 100, ProcStat{Busy: 100})
	b := artifactWith("b", 100, ProcStat{Busy: 100})
	a.Pages = []PageHeat{{Page: 1, Stall: 50, RemoteMisses: 5}, {Page: 2, Stall: 10}}
	b.Pages = []PageHeat{{Page: 1, Stall: 20, RemoteMisses: 2}, {Page: 3, Stall: 100}}
	a.Syncs = []SyncSite{{Label: "barrier#0", TotalWait: 40}}
	b.Syncs = []SyncSite{{Label: "barrier#0", TotalWait: 90}, {Label: "lock#0", TotalWait: 5}}
	r := Diff(a, b)
	if len(r.Pages) != 3 {
		t.Fatalf("pages = %+v", r.Pages)
	}
	// Sorted by |delta| desc: page 3 (+100), page 1 (-30), page 2 (-10).
	if r.Pages[0].Page != 3 || r.Pages[1].Page != 1 {
		t.Errorf("page order = %+v", r.Pages)
	}
	if len(r.Syncs) != 2 || r.Syncs[0].Label != "barrier#0" || r.Syncs[0].Delta != 50 {
		t.Errorf("syncs = %+v", r.Syncs)
	}
}

func TestCriticalProcLowestIdTie(t *testing.T) {
	a := Artifact{PerProc: []ProcStat{{Busy: 5}, {Busy: 3, Sync: 2}, {Busy: 1}}}
	if got := a.CriticalProc(); got != 0 {
		t.Errorf("CriticalProc = %d, want 0 (lowest id wins ties)", got)
	}
	empty := Artifact{}
	if got := empty.CriticalProc(); got != -1 {
		t.Errorf("CriticalProc on empty artifact = %d, want -1", got)
	}
}

func TestReportRows(t *testing.T) {
	a := artifactWith("first-touch", 1000, ProcStat{Busy: 400, Memory: 350, Sync: 250})
	b := artifactWith("round-robin", 1300, ProcStat{Busy: 400, Memory: 600, Sync: 300})
	r := Diff(a, b)
	rows := r.ComponentRows()
	if rows[len(rows)-1][0] != "TOTAL" {
		t.Errorf("last component row = %v, want TOTAL", rows[len(rows)-1])
	}
	for _, render := range [][][]string{r.SubMemoryRows(), r.SubSyncRows(), r.EpochRows(5), r.PageRows(5), r.SyncRows(5)} {
		if len(render) < 1 || len(render[0]) < 2 {
			t.Errorf("degenerate table: %+v", render)
		}
	}
}
