package metrics

import (
	"fmt"

	"origin2000/internal/sim"
)

// Snap is the sampler's full serializable state: the recorded series, the
// epoch marks, and the grid cursors, so a restored sampler continues
// sampling exactly where the original would have.
type Snap struct {
	ProcNext []sim.Time      `json:"proc_next"`
	MachNext sim.Time        `json:"mach_next"`
	PerProc  [][]ProcSample  `json:"per_proc"`
	Machine  []MachineSample `json:"machine"`
	Epochs   []sim.Time      `json:"epochs,omitempty"`
}

// Snap captures the sampler's state.
func (s *Sampler) Snap() Snap {
	return Snap{
		ProcNext: s.procNext,
		MachNext: s.machNext,
		PerProc:  s.perProc,
		Machine:  s.machine,
		Epochs:   s.epochs,
	}
}

// Restore overwrites the sampler's state from a snapshot. The sampler must
// have been created for the same processor count and interval.
func (s *Sampler) Restore(sn Snap) error {
	if len(sn.ProcNext) != len(s.procNext) || len(sn.PerProc) != len(s.perProc) {
		return fmt.Errorf("metrics: snapshot covers %d processors, sampler has %d",
			len(sn.ProcNext), len(s.procNext))
	}
	copy(s.procNext, sn.ProcNext)
	s.machNext = sn.MachNext
	copy(s.perProc, sn.PerProc)
	s.machine = sn.Machine
	s.epochs = sn.Epochs
	return nil
}
