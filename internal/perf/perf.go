// Package perf computes and formats the paper's performance metrics:
// speedup, parallel efficiency, and Busy/Memory/Sync execution-time
// breakdowns, plus ASCII renderings of the paper's figures (per-processor
// breakdown continua, efficiency-versus-problem-size curves).
package perf

import (
	"fmt"
	"strings"

	"origin2000/internal/metrics"
	"origin2000/internal/sim"
	"origin2000/internal/trace"
)

// Breakdown is one processor's execution time split into the paper's three
// categories (Section 3).
type Breakdown struct {
	Busy   sim.Time
	Memory sim.Time
	Sync   sim.Time
}

// Total returns the sum of the three buckets.
func (b Breakdown) Total() sim.Time { return b.Busy + b.Memory + b.Sync }

// Add accumulates o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.Busy += o.Busy
	b.Memory += o.Memory
	b.Sync += o.Sync
}

// Fractions returns the three buckets as fractions of the total (zeros for
// an empty breakdown).
func (b Breakdown) Fractions() (busy, memory, sync float64) {
	t := float64(b.Total())
	if t == 0 {
		return 0, 0, 0
	}
	return float64(b.Busy) / t, float64(b.Memory) / t, float64(b.Sync) / t
}

// Result summarizes one machine run.
type Result struct {
	Procs   int
	Elapsed sim.Time
	PerProc []Breakdown
	// Counters aggregates the per-processor machine-event counters.
	Counters sim.Counters
	// Queueing totals at shared resources (contention diagnostics),
	// derived from the per-node slices below.
	HubQueued    sim.Time
	MemQueued    sim.Time
	RouterQueued sim.Time
	MetaQueued   sim.Time
	HubBusy      sim.Time
	// Per-node (per-router, per-metarouter) queueing and busy time. The
	// machine-global sums above hide exactly the pathology they exist to
	// diagnose — one hot Hub behind a contended page — so the slices are
	// the primary data; indexed by node/router/metarouter id.
	HubQueuedPerNode      []sim.Time
	MemQueuedPerNode      []sim.Time
	HubBusyPerNode        []sim.Time
	RouterQueuedPerRouter []sim.Time
	MetaQueuedPerMeta     []sim.Time
	Migrations            int64
	// Trace is the run's event tracer (nil unless tracing was enabled).
	Trace *trace.Tracer
	// Metrics is the run's virtual-time sampler (nil unless sampling was
	// enabled); it holds the per-processor and machine-wide series.
	Metrics *metrics.Sampler
}

// HottestHub returns the node whose Hub accumulated the most queueing
// delay, with that delay (-1, 0 when per-node data is absent). Ties are
// broken toward the lowest node id so the answer is deterministic.
func (r Result) HottestHub() (node int, queued sim.Time) {
	node = -1
	for i, q := range r.HubQueuedPerNode {
		if node < 0 || q > queued {
			node, queued = i, q
		}
	}
	return node, queued
}

// Average returns the mean per-processor breakdown.
func (r Result) Average() Breakdown {
	var sum Breakdown
	for _, b := range r.PerProc {
		sum.Add(b)
	}
	n := sim.Time(len(r.PerProc))
	if n == 0 {
		return Breakdown{}
	}
	return Breakdown{Busy: sum.Busy / n, Memory: sum.Memory / n, Sync: sum.Sync / n}
}

// Speedup returns sequential time divided by parallel time.
func Speedup(seq, par sim.Time) float64 {
	if par <= 0 {
		return 0
	}
	return float64(seq) / float64(par)
}

// Efficiency returns parallel efficiency: speedup divided by processors.
// The paper's scalability threshold is 0.60 (60%).
func Efficiency(seq, par sim.Time, procs int) float64 {
	if procs <= 0 {
		return 0
	}
	return Speedup(seq, par) / float64(procs)
}

// GoodEfficiency is the paper's "scaling well" threshold.
const GoodEfficiency = 0.60

// Imbalance returns (max-total − mean-total)/mean-total over processors:
// a load-imbalance measure for breakdowns.
func Imbalance(per []Breakdown) float64 {
	if len(per) == 0 {
		return 0
	}
	var max, sum sim.Time
	for _, b := range per {
		t := b.Total()
		sum += t
		if t > max {
			max = t
		}
	}
	mean := float64(sum) / float64(len(per))
	if mean == 0 {
		return 0
	}
	return (float64(max) - mean) / mean
}

// Table renders rows of cells with aligned columns; the first row is a
// header separated by a rule.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(rows[0])
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, row := range rows[1:] {
		writeRow(row)
	}
	return sb.String()
}

// BreakdownBar renders one breakdown as a percentage bar of the given
// width: '#' busy, 'm' memory stall, 's' synchronization.
func BreakdownBar(b Breakdown, width int) string {
	busy, mem, _ := b.Fractions()
	nb := int(busy*float64(width) + 0.5)
	nm := int(mem*float64(width) + 0.5)
	if nb+nm > width {
		nm = width - nb
	}
	ns := width - nb - nm
	return strings.Repeat("#", nb) + strings.Repeat("m", nm) + strings.Repeat("s", ns)
}

// Continuum renders per-processor breakdowns as the paper's Figures 5-8: a
// column per processor (merged down to width columns), 100% of execution
// time vertically, with '#' busy at the bottom, 'm' memory above it and 's'
// sync on top.
func Continuum(per []Breakdown, width, height int) string {
	if len(per) == 0 || width <= 0 || height <= 0 {
		return ""
	}
	if width > len(per) {
		width = len(per)
	}
	cols := make([]Breakdown, width)
	for c := 0; c < width; c++ {
		lo := c * len(per) / width
		hi := (c + 1) * len(per) / width
		if hi <= lo {
			hi = lo + 1
		}
		var sum Breakdown
		for _, b := range per[lo:hi] {
			sum.Add(b)
		}
		cols[c] = sum
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = make([]byte, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for c, b := range cols {
		busy, mem, _ := b.Fractions()
		nb := int(busy*float64(height) + 0.5)
		nm := int(mem*float64(height) + 0.5)
		if nb+nm > height {
			nm = height - nb
		}
		for r := 0; r < height; r++ {
			// Row 0 is the top of the figure.
			fromBottom := height - 1 - r
			switch {
			case fromBottom < nb:
				grid[r][c] = '#'
			case fromBottom < nb+nm:
				grid[r][c] = 'm'
			default:
				grid[r][c] = 's'
			}
		}
	}
	var sb strings.Builder
	for r, row := range grid {
		pct := 100 * (height - r) / height
		fmt.Fprintf(&sb, "%3d%% |%s|\n", pct, string(row))
	}
	fmt.Fprintf(&sb, "      %s\n", strings.Repeat("-", width))
	fmt.Fprintf(&sb, "      processors 0..%d   (#=busy m=memory s=sync)\n", len(per)-1)
	return sb.String()
}

// Series is one curve for Curves: a label and (x, y) points.
type Series struct {
	Label  string
	X      []float64
	Y      []float64
	Marker byte
}

// Curves renders efficiency-versus-problem-size curves like the paper's
// Figures 4 and 9: y in [0, yMax], a horizontal rule at 0.60, one marker
// per series.
func Curves(series []Series, width, height int, yMax float64) string {
	if yMax <= 0 {
		yMax = 1.0
	}
	var xmin, xmax float64
	first := true
	for _, s := range series {
		for _, x := range s.X {
			if first || x < xmin {
				xmin = x
			}
			if first || x > xmax {
				xmax = x
			}
			first = false
		}
	}
	if first || xmax == xmin {
		xmax = xmin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = make([]byte, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	// 60% threshold line.
	if thr := GoodEfficiency; thr <= yMax {
		r := height - 1 - int(thr/yMax*float64(height-1)+0.5)
		if r >= 0 && r < height {
			for c := range grid[r] {
				grid[r][c] = '.'
			}
		}
	}
	for _, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		for i := range s.X {
			c := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			y := s.Y[i]
			if y > yMax {
				y = yMax
			}
			if y < 0 {
				y = 0
			}
			r := height - 1 - int(y/yMax*float64(height-1)+0.5)
			if r >= 0 && r < height && c >= 0 && c < width {
				grid[r][c] = marker
			}
		}
	}
	var sb strings.Builder
	for r, row := range grid {
		y := yMax * float64(height-1-r) / float64(height-1)
		fmt.Fprintf(&sb, "%5.2f |%s|\n", y, string(row))
	}
	fmt.Fprintf(&sb, "      %s\n", strings.Repeat("-", width))
	fmt.Fprintf(&sb, "       x: %.3g .. %.3g   (dotted line = 60%% efficiency)\n", xmin, xmax)
	for _, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		fmt.Fprintf(&sb, "       %c = %s\n", marker, s.Label)
	}
	return sb.String()
}
