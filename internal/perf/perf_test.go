package perf

import (
	"strings"
	"testing"

	"origin2000/internal/sim"
)

func TestFractionsAndTotal(t *testing.T) {
	b := Breakdown{Busy: 60, Memory: 30, Sync: 10}
	if b.Total() != 100 {
		t.Fatalf("total = %d", b.Total())
	}
	busy, mem, sync := b.Fractions()
	if busy != 0.6 || mem != 0.3 || sync != 0.1 {
		t.Fatalf("fractions = %v %v %v", busy, mem, sync)
	}
}

func TestSpeedupEfficiency(t *testing.T) {
	seq := sim.Time(1000)
	par := sim.Time(10)
	if s := Speedup(seq, par); s != 100 {
		t.Errorf("speedup = %f", s)
	}
	if e := Efficiency(seq, par, 128); e < 0.78 || e > 0.79 {
		t.Errorf("efficiency = %f", e)
	}
	if Speedup(seq, 0) != 0 || Efficiency(seq, par, 0) != 0 {
		t.Error("degenerate inputs should yield 0")
	}
}

func TestImbalance(t *testing.T) {
	per := []Breakdown{{Busy: 100}, {Busy: 100}, {Busy: 200}}
	got := Imbalance(per)
	want := (200.0 - 400.0/3) / (400.0 / 3)
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("imbalance = %f, want %f", got, want)
	}
	if Imbalance(nil) != 0 {
		t.Error("empty imbalance should be 0")
	}
}

func TestAverage(t *testing.T) {
	r := Result{PerProc: []Breakdown{{Busy: 10, Memory: 20}, {Busy: 30, Sync: 40}}}
	avg := r.Average()
	if avg.Busy != 20 || avg.Memory != 10 || avg.Sync != 20 {
		t.Errorf("average = %+v", avg)
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([][]string{
		{"App", "Speedup"},
		{"FFT", "55.0"},
		{"Ocean", "64.0"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4 (header, rule, 2 rows)", len(lines))
	}
	if !strings.HasPrefix(lines[0], "App") || !strings.Contains(lines[0], "Speedup") {
		t.Errorf("header malformed: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("rule missing: %q", lines[1])
	}
}

func TestBreakdownBar(t *testing.T) {
	bar := BreakdownBar(Breakdown{Busy: 50, Memory: 30, Sync: 20}, 10)
	if len(bar) != 10 {
		t.Fatalf("bar length = %d", len(bar))
	}
	if strings.Count(bar, "#") != 5 || strings.Count(bar, "m") != 3 || strings.Count(bar, "s") != 2 {
		t.Errorf("bar = %q", bar)
	}
}

func TestContinuumShape(t *testing.T) {
	per := make([]Breakdown, 128)
	for i := range per {
		per[i] = Breakdown{Busy: 50, Memory: 25, Sync: 25}
	}
	fig := Continuum(per, 64, 10)
	lines := strings.Split(strings.TrimRight(fig, "\n"), "\n")
	if len(lines) != 12 {
		t.Fatalf("figure has %d lines, want 10 rows + axis + legend", len(lines))
	}
	if !strings.Contains(fig, "#") || !strings.Contains(fig, "m") || !strings.Contains(fig, "s") {
		t.Error("figure missing one of the three categories")
	}
}

func TestCurvesRendersSeriesAndThreshold(t *testing.T) {
	fig := Curves([]Series{
		{Label: "128 procs", X: []float64{1, 2, 4}, Y: []float64{0.3, 0.5, 0.7}, Marker: 'o'},
	}, 40, 12, 1.2)
	if !strings.Contains(fig, "o") {
		t.Error("series marker missing")
	}
	if !strings.Contains(fig, ".") {
		t.Error("60% threshold line missing")
	}
	if !strings.Contains(fig, "128 procs") {
		t.Error("legend missing")
	}
}

// TestHottestHubDeterministicTieBreak pins the tie-breaking rule: with equal
// queueing on two nodes the lowest node id must win, deterministically, and
// an all-zero machine must still name node 0 rather than -1.
func TestHottestHubDeterministicTieBreak(t *testing.T) {
	r := Result{HubQueuedPerNode: []sim.Time{0, 5, 5}}
	if node, q := r.HottestHub(); node != 1 || q != 5 {
		t.Errorf("HottestHub() = (%d, %d), want (1, 5): ties must go to the lowest node id", node, q)
	}
	r = Result{HubQueuedPerNode: []sim.Time{0, 0, 0, 0}}
	if node, q := r.HottestHub(); node != 0 || q != 0 {
		t.Errorf("HottestHub() on an idle machine = (%d, %d), want (0, 0)", node, q)
	}
	if node, q := (Result{}).HottestHub(); node != -1 || q != 0 {
		t.Errorf("HottestHub() without per-node data = (%d, %d), want (-1, 0)", node, q)
	}
}
