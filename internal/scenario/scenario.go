// Package scenario turns the simulated machine into a declarative spec.
// A Spec names the interconnect topology, the directory's sharer
// representation and the latency preset; everywhere a machine is built
// (core.New, the experiment drivers, every cmd/ tool) consumes the spec
// instead of hard-coding the Origin shape. Specs are plain Go structs,
// JSON round-trippable, and content-hashed: the hash rides in checkpoint
// headers and bench snapshot rows so resumes refuse a different machine
// and comparisons never diff rows from different machines.
//
// The zero Spec — and the named scenario "origin" — normalizes to
// exactly the machine the simulator hard-coded before scenarios existed
// (hypercube+metarouter fabric, full-bit-vector directory, Origin2000
// Table-1 latencies), and core keeps that path bit-identical.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"origin2000/internal/directory"
	"origin2000/internal/topology"
)

// TopologySpec selects and parameterizes the interconnect.
type TopologySpec struct {
	// Kind is the topology.Network implementation: "origin" (default),
	// "mesh2d", "fattree" or "dragonfly".
	Kind string `json:"kind,omitempty"`
	// ForceMetarouters forces the origin fabric's metarouter organization
	// even at router counts a full hypercube could serve (§7.1).
	ForceMetarouters bool `json:"force_metarouters,omitempty"`
	// PodSize is the fat-tree pod size (0 = topology.DefaultPodSize).
	PodSize int `json:"pod_size,omitempty"`
	// GroupSize is the dragonfly group size (0 = topology.DefaultGroupSize).
	GroupSize int `json:"group_size,omitempty"`
}

// DirectorySpec selects and parameterizes the sharer representation.
type DirectorySpec struct {
	// Format is the directory.Format kind: "fullvec" (default),
	// "limited" or "coarse".
	Format string `json:"format,omitempty"`
	// Pointers is Dir_i_B's i for the limited format
	// (0 = directory.DefaultPointers).
	Pointers int `json:"pointers,omitempty"`
	// Region is the coarse format's processors-per-bit
	// (0 = directory.DefaultRegion).
	Region int `json:"region,omitempty"`
}

// Spec is the declarative machine description. The zero value is the
// default Origin2000 scenario.
type Spec struct {
	// Name labels the scenario in reports and snapshot rows; it does not
	// participate in the content hash.
	Name      string        `json:"name,omitempty"`
	Topology  TopologySpec  `json:"topology,omitempty"`
	Directory DirectorySpec `json:"directory,omitempty"`
	// Latency names a Table-1 latency preset: "origin2000" (default),
	// "exemplar-x", "numaliine", "hal-s1" or "numa-q". Resolution to
	// concrete constants happens in core, which owns the Latencies type.
	Latency string `json:"latency,omitempty"`
}

// LatencyPresets are the valid Spec.Latency names (the paper's Table 1).
var LatencyPresets = []string{"origin2000", "exemplar-x", "numaliine", "hal-s1", "numa-q"}

// Default returns the scenario describing the pre-scenario hard-coded
// machine.
func Default() Spec { return Spec{Name: "origin"}.Normalized() }

// Normalized returns the spec with every defaulted field made explicit,
// so that equivalent specs compare and hash equal.
func (s Spec) Normalized() Spec {
	if s.Topology.Kind == "" {
		s.Topology.Kind = "origin"
	}
	if s.Topology.Kind == "fattree" && s.Topology.PodSize == 0 {
		s.Topology.PodSize = topology.DefaultPodSize
	}
	if s.Topology.Kind == "dragonfly" && s.Topology.GroupSize == 0 {
		s.Topology.GroupSize = topology.DefaultGroupSize
	}
	if s.Directory.Format == "" {
		s.Directory.Format = "fullvec"
	}
	if s.Directory.Format == "limited" && s.Directory.Pointers == 0 {
		s.Directory.Pointers = directory.DefaultPointers
	}
	if s.Directory.Format == "coarse" && s.Directory.Region == 0 {
		s.Directory.Region = directory.DefaultRegion
	}
	if s.Latency == "" {
		s.Latency = "origin2000"
	}
	return s
}

// IsDefault reports whether the spec normalizes to the default scenario
// (same content hash, any name).
func (s Spec) IsDefault() bool { return s.Hash() == Default().Hash() }

// Validate checks the spec's kinds, parameters and — when procs > 0 —
// that the chosen directory format can represent the machine's processor
// count, returning an error naming the format's capacity when it cannot.
func (s Spec) Validate(procs int) error {
	n := s.Normalized()
	switch n.Topology.Kind {
	case "origin", "mesh2d", "fattree", "dragonfly":
	default:
		return fmt.Errorf("scenario %s: unknown topology kind %q (want origin, mesh2d, fattree or dragonfly)",
			n.label(), n.Topology.Kind)
	}
	if n.Topology.PodSize < 0 || n.Topology.GroupSize < 0 {
		return fmt.Errorf("scenario %s: negative topology parameter", n.label())
	}
	f, err := n.Format()
	if err != nil {
		return fmt.Errorf("scenario %s: %v", n.label(), err)
	}
	if n.Directory.Pointers < 0 || n.Directory.Region < 0 {
		return fmt.Errorf("scenario %s: negative directory parameter", n.label())
	}
	valid := false
	for _, p := range LatencyPresets {
		if n.Latency == p {
			valid = true
			break
		}
	}
	if !valid {
		return fmt.Errorf("scenario %s: unknown latency preset %q (want %s)",
			n.label(), n.Latency, strings.Join(LatencyPresets, ", "))
	}
	if procs > f.Capacity() {
		return fmt.Errorf("scenario %s: %d processors exceed the %s directory format's capacity of %d",
			n.label(), procs, f.Kind(), f.Capacity())
	}
	return nil
}

func (s Spec) label() string {
	if s.Name != "" {
		return fmt.Sprintf("%q", s.Name)
	}
	return "(unnamed)"
}

// Hash returns the spec's content hash: the first 12 hex digits of the
// SHA-256 of the normalized spec's canonical JSON, with the display name
// excluded. Two specs describing the same machine hash equal regardless
// of naming; checkpoint resume and bench row comparison key on it.
func (s Spec) Hash() string {
	n := s.Normalized()
	n.Name = ""
	b, err := json.Marshal(n)
	if err != nil { // a Spec of plain strings and ints cannot fail to marshal
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])[:12]
}

// Network builds the spec's interconnect over numRouters routers.
// forceMeta is ORed into the origin fabric's metarouter forcing so the
// legacy Config.ForceMetarouters knob keeps working.
func (s Spec) Network(numRouters int, forceMeta bool) topology.Network {
	n := s.Normalized()
	switch n.Topology.Kind {
	case "mesh2d":
		return topology.NewMesh(numRouters)
	case "fattree":
		return topology.NewFatTree(numRouters, n.Topology.PodSize)
	case "dragonfly":
		return topology.NewDragonfly(numRouters, n.Topology.GroupSize)
	default:
		return topology.NewFabricModules(numRouters, forceMeta || n.Topology.ForceMetarouters)
	}
}

// Format builds the spec's directory sharer-representation format.
func (s Spec) Format() (directory.Format, error) {
	n := s.Normalized()
	param := 0
	switch n.Directory.Format {
	case "limited":
		param = n.Directory.Pointers
	case "coarse":
		param = n.Directory.Region
	}
	return directory.FormatByKind(n.Directory.Format, param)
}

// Describe returns a one-line human description of the machine the spec
// builds (topology and format shown at a representative router count).
func (s Spec) Describe() string {
	n := s.Normalized()
	f, err := n.Format()
	if err != nil {
		return fmt.Sprintf("invalid scenario: %v", err)
	}
	return fmt.Sprintf("topology %s, directory %s, latency %s",
		n.Topology.Kind, f.Describe(), n.Latency)
}

// named is the preset table. Keys are what -scenario accepts by name.
var named = map[string]Spec{
	// The default machine: everything the simulator hard-coded before
	// scenarios existed.
	"origin": {},
	// Machine-axis variants: one axis changed from the default.
	"origin-meta": {Topology: TopologySpec{Kind: "origin", ForceMetarouters: true}},
	"mesh":        {Topology: TopologySpec{Kind: "mesh2d"}},
	"fattree":     {Topology: TopologySpec{Kind: "fattree"}},
	"dragonfly":   {Topology: TopologySpec{Kind: "dragonfly"}},
	"limited":     {Directory: DirectorySpec{Format: "limited"}},
	"coarse":      {Directory: DirectorySpec{Format: "coarse"}},
	// A combined point for grid sweeps: cheap directory on a cheap fabric.
	"mesh-limited": {
		Topology:  TopologySpec{Kind: "mesh2d"},
		Directory: DirectorySpec{Format: "limited"},
	},
	// The paper's Table-1 machines as latency presets on the Origin shape.
	"exemplar-x": {Latency: "exemplar-x"},
	"numaliine":  {Latency: "numaliine"},
	"hal-s1":     {Latency: "hal-s1"},
	"numa-q":     {Latency: "numa-q"},
}

// Named returns the preset scenario with the given name.
func Named(name string) (Spec, bool) {
	s, ok := named[name]
	if !ok {
		return Spec{}, false
	}
	s.Name = name
	return s.Normalized(), true
}

// Names lists the preset scenario names in sorted order.
func Names() []string {
	out := make([]string, 0, len(named))
	for name := range named {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Load resolves a -scenario argument: a preset name, or a path to a JSON
// spec file (recognized by a ".json" suffix or a path separator). The
// returned spec is normalized and structurally validated; callers
// validate the processor count against it separately.
func Load(arg string) (Spec, error) {
	if arg == "" {
		return Default(), nil
	}
	if !strings.HasSuffix(arg, ".json") && !strings.ContainsAny(arg, "/\\") {
		s, ok := Named(arg)
		if !ok {
			return Spec{}, fmt.Errorf("unknown scenario %q (have %s; or pass a .json spec file)",
				arg, strings.Join(Names(), ", "))
		}
		return s, nil
	}
	b, err := os.ReadFile(arg)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %v", err)
	}
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario %s: %v", arg, err)
	}
	if s.Name == "" {
		base := arg
		if i := strings.LastIndexAny(base, "/\\"); i >= 0 {
			base = base[i+1:]
		}
		s.Name = strings.TrimSuffix(base, ".json")
	}
	s = s.Normalized()
	if err := s.Validate(0); err != nil {
		return Spec{}, err
	}
	return s, nil
}
