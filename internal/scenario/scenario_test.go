package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"origin2000/internal/directory"
)

// TestDefaultDescribesHardCodedMachine: the zero Spec and the "origin"
// preset must both normalize to the pre-scenario machine and hash equal.
func TestDefaultDescribesHardCodedMachine(t *testing.T) {
	d := Default()
	if d.Topology.Kind != "origin" || d.Directory.Format != "fullvec" || d.Latency != "origin2000" {
		t.Fatalf("Default() = %+v", d)
	}
	var zero Spec
	if zero.Hash() != d.Hash() {
		t.Fatalf("zero Spec hash %s != Default hash %s", zero.Hash(), d.Hash())
	}
	preset, ok := Named("origin")
	if !ok || preset.Hash() != d.Hash() {
		t.Fatalf("origin preset hash %s != Default hash %s", preset.Hash(), d.Hash())
	}
	if !zero.IsDefault() || !preset.IsDefault() {
		t.Fatal("IsDefault() false for the default machine")
	}
}

// TestHashIgnoresNameAndSeparatesMachines: the content hash must ignore
// the display name and change with every machine-defining axis.
func TestHashIgnoresNameAndSeparatesMachines(t *testing.T) {
	base := Default()
	renamed := base
	renamed.Name = "something-else"
	if base.Hash() != renamed.Hash() {
		t.Fatal("renaming a scenario changed its hash")
	}
	seen := map[string]string{base.Hash(): "origin"}
	for _, name := range Names() {
		s, _ := Named(name)
		h := s.Hash()
		if prev, dup := seen[h]; dup && prev != "origin" || (dup && name != "origin") {
			t.Fatalf("presets %s and %s share hash %s", prev, name, h)
		}
		seen[h] = name
	}
}

// TestJSONRoundTrip: marshal → unmarshal must preserve every spec field
// and the content hash.
func TestJSONRoundTrip(t *testing.T) {
	for _, name := range Names() {
		s, _ := Named(name)
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Spec
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != s {
			t.Fatalf("%s: round trip %+v != %+v", name, back, s)
		}
		if back.Hash() != s.Hash() {
			t.Fatalf("%s: round trip changed hash", name)
		}
	}
}

// TestNamedPresetsValidate: every preset must validate at the paper's
// processor counts and build a working network and format.
func TestNamedPresetsValidate(t *testing.T) {
	for _, name := range Names() {
		s, ok := Named(name)
		if !ok {
			t.Fatalf("Named(%q) missing", name)
		}
		for _, procs := range []int{1, 32, 128} {
			if err := s.Validate(procs); err != nil {
				t.Fatalf("%s at %dp: %v", name, procs, err)
			}
		}
		n := s.Network(32, false)
		if n.NumRouters() != 32 {
			t.Fatalf("%s: network has %d routers", name, n.NumRouters())
		}
		if _, err := s.Format(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Describe() == "" || strings.Contains(s.Describe(), "invalid") {
			t.Fatalf("%s: Describe() = %q", name, s.Describe())
		}
	}
}

// TestValidateRejectsOverCapacity: the capacity error must name the
// format and its ceiling (the silent Sharers overflow, made loud).
func TestValidateRejectsOverCapacity(t *testing.T) {
	for _, name := range []string{"origin", "limited", "coarse"} {
		s, _ := Named(name)
		err := s.Validate(directory.MaxProcs + 1)
		if err == nil {
			t.Fatalf("%s: %d processors accepted", name, directory.MaxProcs+1)
		}
		if !strings.Contains(err.Error(), "capacity of 128") {
			t.Fatalf("%s: error does not name the capacity: %v", name, err)
		}
	}
	if err := Default().Validate(directory.MaxProcs); err != nil {
		t.Fatalf("%d processors rejected: %v", directory.MaxProcs, err)
	}
}

func TestValidateRejectsUnknownKinds(t *testing.T) {
	bad := Spec{Topology: TopologySpec{Kind: "torus9d"}}
	if err := bad.Validate(32); err == nil || !strings.Contains(err.Error(), "torus9d") {
		t.Fatalf("unknown topology: %v", err)
	}
	bad = Spec{Directory: DirectorySpec{Format: "sparse"}}
	if err := bad.Validate(32); err == nil || !strings.Contains(err.Error(), "sparse") {
		t.Fatalf("unknown format: %v", err)
	}
	bad = Spec{Latency: "cray-t3e"}
	if err := bad.Validate(32); err == nil || !strings.Contains(err.Error(), "cray-t3e") {
		t.Fatalf("unknown latency preset: %v", err)
	}
}

// TestLoad: names resolve to presets, .json paths load spec files, and
// unknown names fail listing the presets.
func TestLoad(t *testing.T) {
	s, err := Load("mesh")
	if err != nil || s.Topology.Kind != "mesh2d" {
		t.Fatalf("Load(mesh) = %+v, %v", s, err)
	}
	if s, err = Load(""); err != nil || !s.IsDefault() {
		t.Fatalf("Load(\"\") = %+v, %v", s, err)
	}
	if _, err = Load("nonesuch"); err == nil || !strings.Contains(err.Error(), "mesh") {
		t.Fatalf("unknown name error should list presets: %v", err)
	}
	for _, file := range []struct {
		path           string
		kind, format   string
		wantDefaulting bool
	}{
		{"mesh-coarse.json", "mesh2d", "coarse", false},
		{"fattree-dir8b.json", "fattree", "limited", false},
		{"table1-numaliine.json", "origin", "fullvec", true},
	} {
		s, err := Load(filepath.Join("testdata", file.path))
		if err != nil {
			t.Fatalf("%s: %v", file.path, err)
		}
		if s.Topology.Kind != file.kind || s.Directory.Format != file.format {
			t.Fatalf("%s: loaded %+v", file.path, s)
		}
		if s.Name == "" {
			t.Fatalf("%s: no name", file.path)
		}
	}
	if s, err = Load(filepath.Join("testdata", "table1-numaliine.json")); err != nil || s.Latency != "numaliine" {
		t.Fatalf("table1 file: %+v, %v", s, err)
	}
}

// TestLoadRejectsUnknownFields: a typo in a spec file must fail loudly
// rather than silently building the default machine.
func TestLoadRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "typo.json")
	if err := os.WriteFile(path, []byte(`{"topolgy": {"kind": "mesh2d"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("unknown field accepted")
	}
}
