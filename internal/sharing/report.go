package sharing

import (
	"fmt"
	"math/bits"
	"sort"

	"origin2000/internal/memclass"
)

// Split is the run-wide miss-cause decomposition. Coherence misses
// split exactly: Coherence == TrueSharing + FalseSharing + Pending,
// where Pending counts misses whose verdict never settled (the copy was
// still live, untouched, at the end of the run). A pending miss brought
// remotely-written data the processor never used, so reports fold it
// into the false side.
type Split struct {
	Cold         int64 `json:"cold"`
	Replacement  int64 `json:"replacement"`
	Coherence    int64 `json:"coherence"`
	TrueSharing  int64 `json:"true_sharing"`
	FalseSharing int64 `json:"false_sharing"`
	Pending      int64 `json:"pending"`
}

// FalseTotal is the false-sharing count including unsettled misses.
func (s Split) FalseTotal() int64 { return s.FalseSharing + s.Pending }

// PatternStat aggregates the blocks of one sharing pattern.
type PatternStat struct {
	Pattern   string `json:"pattern"`
	Blocks    int    `json:"blocks"`
	Misses    int64  `json:"misses"` // demand misses (all classes but Upgrade)
	Remote    int64  `json:"remote"`
	Coherence int64  `json:"coherence"`
	Upgrades  int64  `json:"upgrades"`
}

// BlockReport is one block's classification for the report tables.
type BlockReport struct {
	Block        uint64 `json:"block"`
	Page         uint64 `json:"page"`
	Home         int    `json:"home"`
	Pattern      string `json:"pattern"`
	Readers      int    `json:"readers"`
	Writers      int    `json:"writers"`
	Reads        int64  `json:"reads"`
	Writes       int64  `json:"writes"`
	Misses       int64  `json:"misses"`
	Remote       int64  `json:"remote"`
	Upgrades     int64  `json:"upgrades"`
	Cold         int64  `json:"cold"`
	Replacement  int64  `json:"replacement"`
	Coherence    int64  `json:"coherence"`
	TrueSharing  int64  `json:"true_sharing"`
	FalseSharing int64  `json:"false_sharing"` // includes unsettled
	MaxFanout    int    `json:"max_fanout"`
	WordsWritten int    `json:"words_written"`
	// Advice is the padding/placement suggestion for false-sharing
	// suspects; empty elsewhere.
	Advice string `json:"advice,omitempty"`
}

// PageReport is one page's remote-miss attribution.
type PageReport struct {
	Page   uint64 `json:"page"`
	Home   int    `json:"home"`
	Remote int64  `json:"remote"`
}

// Report is the observer's aggregated diagnosis: the JSON shape stored
// in the metrics artifact's "sharing" section and served by
// origin-dash's /api/sharing.
type Report struct {
	Procs  int `json:"procs"`
	Nodes  int `json:"nodes"`
	Blocks int `json:"blocks"` // blocks ever touched

	Misses   [memclass.NumClasses]int64 `json:"misses"` // by shared miss class
	Split    Split                      `json:"split"`
	Patterns []PatternStat              `json:"patterns"`

	TopBlocks []BlockReport `json:"top_blocks"`
	Suspects  []BlockReport `json:"false_sharing_suspects,omitempty"`

	// NodeRemote counts remote misses served by each home node;
	// Imbalance is max over mean of that distribution (1.0 = perfectly
	// balanced homes, N = one node serves everything on an N-node
	// machine).
	NodeRemote []int64      `json:"node_remote"`
	Imbalance  float64      `json:"imbalance"`
	TopPages   []PageReport `json:"top_pages,omitempty"`

	Verdict string `json:"verdict"`
}

// demandMisses sums the block's classified demand misses (upgrades are
// ownership transitions, not fills, and are reported separately).
func (b *blockState) demandMisses() int64 {
	var n int64
	for c := memclass.Class(0); c < memclass.NumClasses; c++ {
		if c != memclass.Upgrade {
			n += int64(b.misses[c])
		}
	}
	return n
}

func (b *blockState) remoteMisses() int64 {
	return int64(b.misses[memclass.RemoteClean]) + int64(b.misses[memclass.RemoteDirty])
}

// blockReport renders one block's state.
func (o *Observer) blockReport(block uint64, b *blockState) BlockReport {
	hi := o.hiMasks(block)
	return BlockReport{
		Block:        block,
		Page:         uint64(b.page),
		Home:         int(b.home),
		Pattern:      o.patternOf(block, b).String(),
		Readers:      bits.OnesCount64(b.m.readers) + bits.OnesCount64(hi.readers),
		Writers:      bits.OnesCount64(b.m.writers) + bits.OnesCount64(hi.writers),
		Reads:        int64(b.reads),
		Writes:       int64(b.writes),
		Misses:       b.demandMisses(),
		Remote:       b.remoteMisses(),
		Upgrades:     int64(b.misses[memclass.Upgrade]),
		Cold:         int64(b.cold),
		Replacement:  int64(b.replacement),
		Coherence:    b.coherence(),
		TrueSharing:  int64(b.trueShare),
		FalseSharing: int64(b.falseShare) + b.pendingCount(),
		MaxFanout:    int(b.maxFanout),
		WordsWritten: popcount32(b.wordsWritten),
	}
}

// advice suggests the restructuring for a false-sharing suspect, from
// the paper's standard toolkit: pad per-writer data out to a block, or
// split the block's independently-written words apart.
func adviceFor(b BlockReport) string {
	if b.Writers >= 2 && b.WordsWritten >= 2 {
		return fmt.Sprintf("%d writers share %d words of one %d B block: pad each writer's datum to a full block, or split the structure per processor",
			b.Writers, b.WordsWritten, WordsPerBlock*WordBytes)
	}
	return "readers share a block with an independent writer: move the written word to its own block (pad to 128 B)"
}

// Report aggregates the observer's state into the diagnosis, bounding
// the per-block and per-page tables at top entries each (top <= 0 means
// unbounded). The result is a pure function of the deterministic
// simulation, so it is bit-identical across runs and engines.
func (o *Observer) Report(top int) *Report {
	o.flush()
	r := &Report{
		Procs:      o.nprocs,
		Nodes:      o.nnodes,
		NodeRemote: append([]int64(nil), o.nodeRemote...),
	}

	pat := make([]PatternStat, NumPatterns)
	for p := Pattern(0); p < NumPatterns; p++ {
		pat[p].Pattern = p.String()
	}
	var all []BlockReport
	o.forEachBlock(func(blk uint64, b *blockState) {
		r.Blocks++
		for c := memclass.Class(0); c < memclass.NumClasses; c++ {
			r.Misses[c] += int64(b.misses[c])
		}
		r.Split.Cold += int64(b.cold)
		r.Split.Replacement += int64(b.replacement)
		r.Split.Coherence += b.coherence()
		r.Split.TrueSharing += int64(b.trueShare)
		r.Split.FalseSharing += int64(b.falseShare)
		r.Split.Pending += b.pendingCount()

		p := o.patternOf(blk, b)
		pat[p].Blocks++
		pat[p].Misses += b.demandMisses()
		pat[p].Remote += b.remoteMisses()
		pat[p].Coherence += b.coherence()
		pat[p].Upgrades += int64(b.misses[memclass.Upgrade])

		all = append(all, o.blockReport(blk, b))
	})
	r.Patterns = pat

	// Top blocks by demand misses (ties by block number: deterministic).
	sort.Slice(all, func(i, j int) bool {
		if all[i].Misses != all[j].Misses {
			return all[i].Misses > all[j].Misses
		}
		return all[i].Block < all[j].Block
	})
	n := len(all)
	if top > 0 && n > top {
		n = top
	}
	r.TopBlocks = append([]BlockReport(nil), all[:n]...)

	// False-sharing suspects: blocks whose coherence traffic is mostly
	// false, ranked by false-miss volume.
	var suspects []BlockReport
	for _, b := range all {
		if b.Coherence >= 4 && b.FalseSharing*2 >= b.Coherence {
			b.Advice = adviceFor(b)
			suspects = append(suspects, b)
		}
	}
	sort.Slice(suspects, func(i, j int) bool {
		if suspects[i].FalseSharing != suspects[j].FalseSharing {
			return suspects[i].FalseSharing > suspects[j].FalseSharing
		}
		return suspects[i].Block < suspects[j].Block
	})
	if top > 0 && len(suspects) > top {
		suspects = suspects[:top]
	}
	r.Suspects = suspects

	// Hotspot index: max/mean of remote misses served per home node.
	var total, max int64
	for _, n := range o.nodeRemote {
		total += n
		if n > max {
			max = n
		}
	}
	if total > 0 {
		mean := float64(total) / float64(len(o.nodeRemote))
		r.Imbalance = float64(max) / mean
	}

	pages := make([]PageReport, 0, o.npages)
	o.forEachPage(func(pg uint64, p *pageState) {
		pages = append(pages, PageReport{Page: pg, Home: p.home, Remote: p.remote})
	})
	sort.Slice(pages, func(i, j int) bool {
		if pages[i].Remote != pages[j].Remote {
			return pages[i].Remote > pages[j].Remote
		}
		return pages[i].Page < pages[j].Page
	})
	if top > 0 && len(pages) > top {
		pages = pages[:top]
	}
	r.TopPages = pages

	r.Verdict = r.verdict()
	return r
}

// verdict condenses the diagnosis into the report's one-line answer to
// "why doesn't it scale". Thresholds are deliberately coarse: the line
// names the dominant mechanism, the tables carry the evidence.
func (r *Report) verdict() string {
	remote := r.Misses[memclass.RemoteClean] + r.Misses[memclass.RemoteDirty]
	demand := remote + r.Misses[memclass.Local]
	falseShare := r.Split.FalseTotal()
	switch {
	case demand == 0:
		return "no memory traffic observed"
	case r.Split.Coherence >= 8 && falseShare*2 >= r.Split.Coherence:
		return fmt.Sprintf("false-sharing-bound: %d of %d coherence misses (%.0f%%) are false sharing — pad or split the suspect blocks",
			falseShare, r.Split.Coherence, 100*float64(falseShare)/float64(r.Split.Coherence))
	case r.Imbalance >= 3 && remote*4 >= demand:
		return fmt.Sprintf("home-hotspot-bound: remote misses concentrate %.1fx over the mean on one home node — redistribute or migrate the hot pages",
			r.Imbalance)
	case r.Split.Coherence*2 >= demand:
		return fmt.Sprintf("communication-bound (%s): %d of %d misses are coherence misses, %.0f%% true sharing",
			r.dominantSharedPattern(), r.Split.Coherence, demand,
			100*float64(r.Split.TrueSharing)/float64(maxInt64(r.Split.Coherence, 1)))
	case r.Split.Replacement*2 >= demand:
		return "capacity-bound: misses are dominated by replacement, not sharing"
	default:
		return "cold/compute-bound: coherence traffic is not the bottleneck"
	}
}

// dominantSharedPattern names the communicating pattern (migratory,
// producer-consumer or widely-shared) with the most coherence misses.
func (r *Report) dominantSharedPattern() string {
	best, bestN := "migratory", int64(-1)
	for _, p := range r.Patterns {
		switch p.Pattern {
		case "migratory", "producer-consumer", "widely-shared":
			if p.Coherence > bestN {
				best, bestN = p.Pattern, p.Coherence
			}
		}
	}
	return best
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// PatternRows renders the per-pattern summary as perf.Table rows.
func (r *Report) PatternRows() [][]string {
	rows := [][]string{{"pattern", "blocks", "misses", "remote", "coherence", "upgrades"}}
	for _, p := range r.Patterns {
		rows = append(rows, []string{
			p.Pattern, fmt.Sprint(p.Blocks), fmt.Sprint(p.Misses),
			fmt.Sprint(p.Remote), fmt.Sprint(p.Coherence), fmt.Sprint(p.Upgrades),
		})
	}
	return rows
}

// SplitRows renders the exact miss-cause decomposition.
func (r *Report) SplitRows() [][]string {
	return [][]string{
		{"miss cause", "count"},
		{"cold", fmt.Sprint(r.Split.Cold)},
		{"replacement", fmt.Sprint(r.Split.Replacement)},
		{"coherence: true sharing", fmt.Sprint(r.Split.TrueSharing)},
		{"coherence: false sharing", fmt.Sprint(r.Split.FalseTotal())},
	}
}

func blockRows(title string, blocks []BlockReport, n int) [][]string {
	rows := [][]string{{title, "pattern", "rd/wr procs", "misses", "remote", "true", "false", "fanout", "words"}}
	for i, b := range blocks {
		if n > 0 && i >= n {
			break
		}
		rows = append(rows, []string{
			fmt.Sprintf("%#x", b.Block), b.Pattern,
			fmt.Sprintf("%d/%d", b.Readers, b.Writers),
			fmt.Sprint(b.Misses), fmt.Sprint(b.Remote),
			fmt.Sprint(b.TrueSharing), fmt.Sprint(b.FalseSharing),
			fmt.Sprint(b.MaxFanout), fmt.Sprint(b.WordsWritten),
		})
	}
	return rows
}

// TopBlockRows renders the top-n blocks by demand misses.
func (r *Report) TopBlockRows(n int) [][]string { return blockRows("block", r.TopBlocks, n) }

// SuspectRows renders the top-n false-sharing suspects.
func (r *Report) SuspectRows(n int) [][]string { return blockRows("suspect block", r.Suspects, n) }

// NodeRows renders the home-node remote-miss distribution.
func (r *Report) NodeRows() [][]string {
	rows := [][]string{{"home node", "remote misses served", "share"}}
	var total int64
	for _, n := range r.NodeRemote {
		total += n
	}
	for node, n := range r.NodeRemote {
		share := "0%"
		if total > 0 {
			share = fmt.Sprintf("%.1f%%", 100*float64(n)/float64(total))
		}
		rows = append(rows, []string{fmt.Sprint(node), fmt.Sprint(n), share})
	}
	return rows
}

// PageRows renders the top-n pages by remote misses.
func (r *Report) PageRows(n int) [][]string {
	rows := [][]string{{"page", "home", "remote misses"}}
	for i, p := range r.TopPages {
		if n > 0 && i >= n {
			break
		}
		rows = append(rows, []string{fmt.Sprintf("%#x", p.Page), fmt.Sprint(p.Home), fmt.Sprint(p.Remote)})
	}
	return rows
}
