// Package sharing is the simulator's sharing-pattern diagnosis layer: an
// online observer that classifies every cache block's sharing behaviour
// (read-only, private, migratory, producer-consumer, widely-shared),
// splits coherence misses into true and false sharing at word
// granularity, and attributes remote misses to home nodes to expose
// hotspots — the "why doesn't it scale" attribution the source paper
// performs by hand for each application.
//
// The observer follows the internal/check and internal/metrics
// discipline: it is gated by core.Config.Sharing, costs nothing but nil
// checks when off, and — because it only reads protocol events, never
// advancing a clock — perturbs simulated time by exactly zero when on.
//
// Capture and classification are split so the per-event cost stays off
// the simulation's critical path: the hooks append fixed-width packed
// records to a flat event log (a streaming store, no per-block state
// touched), and the exact classification state machine folds the log at
// the first snapshot or report boundary. The fold replays events in
// recorded order, so verdicts are identical to classifying at event
// time. Recording order must match the coherence-event order, so
// enabling the observer pins the parallel engine to one worker; the
// schedule is identical at any requested worker count, so its output is
// bit-identical across runs, engines and worker counts.
package sharing

import (
	"math/bits"

	"origin2000/internal/memclass"
)

// Sub-block footprint granularity: the classifier tracks accesses at
// 4-byte words, 32 of them per 128-byte block. core asserts at compile
// time that this matches its block size.
const (
	WordBytes     = 4
	WordsPerBlock = 32
)

// WordOf maps a byte address to its word index within the block.
func WordOf(addr uint64) int { return int(addr/WordBytes) % WordsPerBlock }

// Options configures the observer (carried in core.Config.Sharing).
type Options struct {
	// Enabled turns the classifier on. When false the machine never
	// constructs an observer and the hot path pays only nil checks.
	Enabled bool
}

// Pattern is a block's classified sharing behaviour.
type Pattern int

// Sharing patterns, from least to most coherence-intensive.
const (
	// ReadOnly blocks are never written, or written by a single
	// processor that never invalidated a reader (init-then-read-only).
	ReadOnly Pattern = iota
	// Private blocks are touched by exactly one processor.
	Private
	// Migratory blocks are written by several processors with ownership
	// moving between them: no write ever invalidated more than one copy
	// (the classic lock-protected-datum signature).
	Migratory
	// ProducerConsumer blocks have a single writer whose writes
	// repeatedly invalidate reader copies.
	ProducerConsumer
	// WidelyShared blocks are written by several processors with at
	// least one write invalidating two or more copies.
	WidelyShared

	NumPatterns
)

func (p Pattern) String() string {
	switch p {
	case ReadOnly:
		return "read-only"
	case Private:
		return "private"
	case Migratory:
		return "migratory"
	case ProducerConsumer:
		return "producer-consumer"
	case WidelyShared:
		return "widely-shared"
	}
	return "unknown"
}

// blockState is the per-block classifier state, packed into exactly two
// cache lines. The first line holds everything the per-access paths
// read or write — per-processor presence bitmasks (which copy is live,
// was ever held, died to an invalidation), the reader/writer footprint
// and access counters — so a cache hit touches one line and a demand
// miss two. The second line holds the miss-cause and fan-out counters
// only miss-class paths need.
//
// Per-processor state that only matters for blocks in coherence
// episodes (loss snapshots, pending word masks, per-word write
// sequences) lives in the observer's watch arena, allocated at a
// block's first invalidation: a block that misses but never coheres —
// the overwhelming majority — stays at 128 bytes with no per-copy
// records at all. Processors 64..127 overflow into the chunk's wide
// mask arrays, allocated only for machines that large.
//
// The counters are uint32: a single block absorbing 4 billion
// classified events is beyond any tracked configuration, and halving
// the struct halves the table's cache and zeroing footprint.
// maskWords is one 64-processor population of the five presence masks.
// Keeping them in one addressable struct lets the hooks resolve a
// processor's bits with a single pointer (the block's own words below
// processor 64, the chunk's wide array above) instead of five.
type maskWords struct {
	// Invariants: lost is set from invalidation to the next refill, so
	// lost != 0 means some victim is watching write sequences; live is
	// lazy (evictions are observed at the next miss, see OnEvict).
	live, everHeld, lost uint64
	readers, writers     uint64 // processors that ever read / wrote
}

type blockState struct {
	m maskWords // presence masks for processors 0..63

	reads, writes uint32
	wordsWritten  uint32 // union mask of words ever written
	// wordSeqID indexes the watch arena row; 0 = never invalidated.
	wordSeqID uint32
	// lastWriter is the owning processor plus one; 0 = never written
	// (the zero value must mean "untouched slot").
	lastWriter int16
	// pendingCnt counts copies awaiting true/false settlement; zero
	// lets the access paths skip the watch-row lookup entirely.
	pendingCnt int16
	_          [4]byte // line break: fields below are miss-path only

	page      uint32 // page number at the last demand miss
	home      int16  // home node at the last demand miss
	maxFanout int16  // largest single-write invalidation fan-out

	misses [memclass.NumClasses]uint32

	// Miss-cause split: every demand miss is cold (no prior copy),
	// replacement (copy lost to eviction) or coherence (copy lost to
	// invalidation); coherence misses further split true/settled-false/
	// still-pending, with coherence == trueShare + falseShare +
	// pendingCnt (the coherence total is derived, not stored).
	cold, replacement     uint32
	trueShare, falseShare uint32

	ownerChanges uint32 // writer-to-writer ownership transfers
	invals       uint32 // copies invalidated by writes to this block

	// seq is the block's write sequence, bumped per write while some
	// copy is lost to an invalidation and not yet refilled; the watch
	// row records each word's last-write sequence. A scalar per-victim
	// snapshot (lossSeq) against this replaces a full per-copy version
	// vector — same exact verdicts at a fraction of the state.
	seq uint32
	_   [8]byte // pad to 128 so chunk entries stay line-aligned
}

// touched reports whether the slot has ever recorded an event (embedded
// values start zeroed; every hook sets readers, writers or everHeld).
func (b *blockState) touched() bool {
	return b.m.readers|b.m.writers|b.m.everHeld != 0
}

// coherence reports the block's coherence-miss total.
func (b *blockState) coherence() int64 {
	return int64(b.trueShare) + int64(b.falseShare) + int64(b.pendingCnt)
}

// pendingCount reports coherence misses still awaiting settlement.
func (b *blockState) pendingCount() int64 { return int64(b.pendingCnt) }

// pageState accumulates remote-miss attribution for one page. A page is
// touched iff remote != 0 (it is only resolved to count a remote miss).
type pageState struct {
	home   int // home node at the page's last remote miss
	remote int64
}

// Observer is the per-machine sharing classifier. All recording methods
// are called from simulated-processor goroutines, which the engine
// serializes (the observer forces one worker), so no locking is needed
// and recording order is deterministic.
// Table geometry: the machine bump-allocates simulated addresses from
// zero, so block and page numbers are dense small integers and two-level
// arrays beat hash maps on the per-access hot path. A block chunk covers
// 4096 blocks (512KB of simulated memory) and allocates on first touch.
const (
	blockChunkShift = 12
	blockChunkSize  = 1 << blockChunkShift
	blockChunkMask  = blockChunkSize - 1
)

// hiChunk carries the presence masks for processors 64..127; allocated
// per chunk only when the machine has more than 64 processors.
type hiChunk struct {
	m [blockChunkSize]maskWords
}

// blockChunk is one two-level table leaf.
type blockChunk struct {
	blocks []blockState
	hi     *hiChunk // nil unless the observer is wide (>64 processors)
}

type Observer struct {
	nprocs, nnodes int
	// wide is set for machines with more than 64 processors, whose
	// presence bits overflow into per-chunk hi arrays. The common-size
	// hot paths test this one bool instead of resolving the chunk.
	wide   bool
	stride int // watch-arena row length in uint32s

	blocks []*blockChunk // two-level table indexed by block number
	pages  [][]pageState // two-level table indexed by page number
	npages int
	// watch is the coherence-episode arena: one row per block that was
	// ever invalidated, laid out as WordsPerBlock per-word last-write
	// sequences, then nprocs loss snapshots, then nprocs pending word
	// masks. Row 0 is the reserved "never invalidated" sentinel.
	watch []uint32
	// nodeRemote counts remote misses served by each home node — the
	// raw material for the hotspot/imbalance index.
	nodeRemote []int64
	// memo caches each processor's recently-accessed blocks. Word-
	// granularity access runs hit the same block dozens of times in a
	// row, and the block-table walk was the fold's dominant cost.
	// The cached pointers are stable (chunk arrays never move once
	// allocated), so the memo only resets when Restore rebuilds the
	// tables. Only the access paths install entries: invalidation
	// victims are by definition not about to be accessed.
	memo []blockMemo

	// log is the capture buffer: packed event records appended by the
	// hooks and folded through the apply methods by flush. It is drained
	// at snapshot/report boundaries and whenever it reaches
	// flushThreshold, bounding capture memory on long runs.
	log []uint64
}

// memoWays is the per-processor memo associativity. Strided kernels
// alternate between a source, a destination and a coefficient stream;
// one way per stream keeps all three resolving without a table walk.
const memoWays = 4

// blockMemo is one processor's recently-accessed block cache, replaced
// round-robin.
type blockMemo struct {
	block [memoWays]uint64
	b     [memoWays]*blockState
	next  uint32
}

// New creates an observer for a machine with nprocs processors spread
// over nnodes nodes.
func New(nprocs, nnodes int) *Observer {
	if nprocs < 1 {
		nprocs = 1
	}
	if nnodes < 1 {
		nnodes = 1
	}
	stride := WordsPerBlock + 2*nprocs
	return &Observer{
		nprocs:     nprocs,
		nnodes:     nnodes,
		wide:       nprocs > 64,
		stride:     stride,
		watch:      make([]uint32, stride), // row 0 sentinel
		nodeRemote: make([]int64, nnodes),
		memo:       make([]blockMemo, nprocs),
		// Pre-size the capture buffer to half its flush threshold:
		// repeated append-doubling of a multi-megabyte log was the
		// hooks' dominant cost, and fresh large spans are cheap (the
		// runtime maps them zeroed on demand).
		log: make([]uint64, 0, flushThreshold/2),
	}
}

// Procs reports the processor count the observer was built for.
func (o *Observer) Procs() int { return o.nprocs }

func (o *Observer) block(block uint64) *blockState {
	ci := block >> blockChunkShift
	if ci >= uint64(len(o.blocks)) {
		grown := make([]*blockChunk, ci+1)
		copy(grown, o.blocks)
		o.blocks = grown
	}
	c := o.blocks[ci]
	if c == nil {
		c = &blockChunk{blocks: make([]blockState, blockChunkSize)}
		if o.wide {
			c.hi = new(hiChunk)
		}
		o.blocks[ci] = c
	}
	return &c.blocks[block&blockChunkMask]
}

// blockOf resolves a block through proc's memo.
func (o *Observer) blockOf(proc int, block uint64) *blockState {
	m := &o.memo[proc]
	for i := 0; i < memoWays; i++ {
		if m.block[i] == block && m.b[i] != nil {
			return m.b[i]
		}
	}
	b := o.block(block)
	w := m.next % memoWays
	m.block[w], m.b[w] = block, b
	m.next = w + 1
	return b
}

// maskOf resolves where proc's presence bits live: the block's own mask
// words for the first 64 processors, the chunk's wide array above. One
// pointer plus a bit keeps the hooks width-agnostic at register cost.
func (o *Observer) maskOf(block uint64, b *blockState, proc int) (*maskWords, uint64) {
	if proc < 64 {
		return &b.m, 1 << uint(proc)
	}
	h := o.blocks[block>>blockChunkShift].hi
	return &h.m[block&blockChunkMask], 1 << uint(proc-64)
}

// anyLost reports whether any copy is watching (lost to invalidation
// and not yet refilled) — the gate for write-sequence bookkeeping.
func (o *Observer) anyLost(block uint64, b *blockState) bool {
	if b.m.lost != 0 {
		return true
	}
	if o.wide {
		return o.blocks[block>>blockChunkShift].hi.m[block&blockChunkMask].lost != 0
	}
	return false
}

// watchRow returns the block's coherence-episode row: per-word write
// sequences, per-processor loss snapshots, per-processor pending masks.
func (o *Observer) watchRow(id uint32) (wordSeq, lossSeq, pendingWords []uint32) {
	r := o.watch[int(id)*o.stride:]
	return r[:WordsPerBlock:WordsPerBlock],
		r[WordsPerBlock : WordsPerBlock+o.nprocs],
		r[WordsPerBlock+o.nprocs : WordsPerBlock+2*o.nprocs]
}

// ensureRow gives the block a watch row at its first invalidation.
func (o *Observer) ensureRow(b *blockState) {
	if b.wordSeqID == 0 {
		b.wordSeqID = uint32(len(o.watch) / o.stride)
		o.watch = append(o.watch, make([]uint32, o.stride)...)
	}
}

// bumpSeq records a write made while some victim is watching. Only
// watched writes advance the sequence: every comparison is against a
// snapshot taken at an invalidation, and the victim watches from that
// snapshot until its refill, so unwatched bumps could never be
// observed. lost != 0 implies the row exists (OnInvalidate ensures it).
func (o *Observer) bumpSeq(b *blockState, word int) {
	b.seq++
	ws, _, _ := o.watchRow(b.wordSeqID)
	ws[word] = b.seq
}

// settleAt checks proc's pending verdict against an access: touching
// any word remotely written while the processor was out proves the
// coherence miss brought data the processor needed — true sharing.
func (o *Observer) settleAt(b *blockState, proc, word int) {
	if b.wordSeqID == 0 {
		return
	}
	_, _, pw := o.watchRow(b.wordSeqID)
	if pw[proc]&(1<<uint(word)) != 0 {
		pw[proc] = 0
		b.pendingCnt--
		b.trueShare++
	}
}

// dropPending settles proc's pending verdict false: the copy died (or
// was displaced) before the processor touched a remotely-written word.
func (o *Observer) dropPending(b *blockState, proc int) {
	if b.pendingCnt == 0 || b.wordSeqID == 0 {
		return
	}
	_, _, pw := o.watchRow(b.wordSeqID)
	if pw[proc] != 0 {
		pw[proc] = 0
		b.pendingCnt--
		b.falseShare++
	}
}

// recordAccess folds one load or store into the block's footprint and
// pattern state. Write-sequence bumps happen here, AFTER miss
// classification, so a victim's loss snapshot taken during the same
// transaction's invalidation fan-out predates them.
func (o *Observer) recordAccess(block uint64, b *blockState, m *maskWords, bit uint64, proc, word int, write bool) {
	if write {
		b.writes++
		m.writers |= bit
		b.wordsWritten |= 1 << uint(word)
		if o.anyLost(block, b) {
			o.bumpSeq(b, word)
		}
		if b.lastWriter != int16(proc)+1 {
			if b.lastWriter != 0 {
				b.ownerChanges++
			}
			b.lastWriter = int16(proc) + 1
		}
	} else {
		b.reads++
		m.readers |= bit
	}
}

// Packed event-record layout. Every event is one log word carrying the
// block number (32 bits), processor (8), word index (5), a write bit
// and the event type; a demand miss appends a second word with its
// fill attributes (page, home, miss class, invalidation fan-out). The
// layouts cover every tracked configuration — block and page numbers
// are dense bump-allocated small integers, processors cap at 128 — and
// the hooks fall back to flushing and applying directly if an event
// ever overflows a field.
const (
	evHit = iota
	evMiss
	evUpgrade
	evInval
	evPrefetch

	evProcShift  = 32
	evWordShift  = 40
	evWriteBit   = 1 << 45
	evTypeShift  = 46
	evExtraShift = 49 // upgrade fan-out rides in the spare high bits

	exHomeShift   = 32 // miss extra word: home node plus one (0 = none)
	exClassShift  = 45
	exFanoutShift = 48

	// flushThreshold caps the capture buffer at 32MB; a fold mid-run is
	// triggered by log length alone, so it is deterministic.
	flushThreshold = 1 << 22
)

// OnHit records a load or store that hit in proc's cache. This is the
// hottest hook — one call per cache hit — so it only appends a packed
// record; classification happens when the log is folded.
func (o *Observer) OnHit(proc int, block uint64, word int, write bool) {
	if block>>32 != 0 {
		o.flush()
		o.applyHit(proc, block, word, write)
		return
	}
	rec := block | uint64(proc)<<evProcShift | uint64(word)<<evWordShift
	if write {
		rec |= evWriteBit
	}
	o.log = append(o.log, rec) // evHit is the zero type
	if len(o.log) >= flushThreshold {
		o.flush()
	}
}

// OnMiss records a demand miss and its fill attributes.
func (o *Observer) OnMiss(proc int, block uint64, word int, write bool, class memclass.Class, home int, page uint64, fanout int) {
	if block>>32 != 0 || page>>32 != 0 || uint(home+1) >= 1<<13 || uint(fanout) >= 1<<16 {
		o.flush()
		o.applyMiss(proc, block, word, write, class, home, page, fanout)
		return
	}
	rec := block | uint64(proc)<<evProcShift | uint64(word)<<evWordShift | evMiss<<evTypeShift
	if write {
		rec |= evWriteBit
	}
	ex := page | uint64(home+1)<<exHomeShift | uint64(class)<<exClassShift | uint64(fanout)<<exFanoutShift
	o.log = append(o.log, rec, ex)
	if len(o.log) >= flushThreshold {
		o.flush()
	}
}

// OnUpgrade records a write hit on a Shared line that obtained ownership
// by invalidating fanout other copies.
func (o *Observer) OnUpgrade(proc int, block uint64, word, fanout int) {
	if block>>32 != 0 || uint(fanout) >= 1<<15 {
		o.flush()
		o.applyUpgrade(proc, block, word, fanout)
		return
	}
	o.log = append(o.log, block|uint64(proc)<<evProcShift|uint64(word)<<evWordShift|
		evUpgrade<<evTypeShift|uint64(fanout)<<evExtraShift)
}

// OnPrefetchFill records a software-prefetch fill: the processor gains a
// copy without a classified demand miss (the prefetch masked it).
func (o *Observer) OnPrefetchFill(proc int, block uint64) {
	if block>>32 != 0 {
		o.flush()
		o.applyPrefetchFill(proc, block)
		return
	}
	o.log = append(o.log, block|uint64(proc)<<evProcShift|evPrefetch<<evTypeShift)
}

// OnInvalidate records proc's copy dying to another processor's write.
func (o *Observer) OnInvalidate(proc int, block uint64) {
	if block>>32 != 0 {
		o.flush()
		o.applyInvalidate(proc, block)
		return
	}
	o.log = append(o.log, block|uint64(proc)<<evProcShift|evInval<<evTypeShift)
}

// flush folds every captured event, in recorded order, through the
// classification state machine. Callers that read classifier state
// (Snap, Report) flush first; the verdicts are exactly those of
// event-time classification because the replay order is the event order.
func (o *Observer) flush() {
	log := o.log
	o.log = o.log[:0]
	for i := 0; i < len(log); i++ {
		rec := log[i]
		block := rec & 0xffffffff
		proc := int(rec >> evProcShift & 0xff)
		word := int(rec >> evWordShift & 0x1f)
		write := rec&evWriteBit != 0
		switch rec >> evTypeShift & 0x7 {
		case evHit:
			o.applyHit(proc, block, word, write)
		case evMiss:
			i++
			ex := log[i]
			o.applyMiss(proc, block, word, write,
				memclass.Class(ex>>exClassShift&0x7),
				int(ex>>exHomeShift&0x1fff)-1,
				ex&0xffffffff,
				int(ex>>exFanoutShift))
		case evUpgrade:
			o.applyUpgrade(proc, block, word, int(rec>>evExtraShift))
		case evInval:
			o.applyInvalidate(proc, block)
		case evPrefetch:
			o.applyPrefetchFill(proc, block)
		}
	}
}

// applyHit folds a cache hit. The common case touches only the memo and
// the block's first line; the watch row is consulted only when the
// pending count says a settlement is possible.
func (o *Observer) applyHit(proc int, block uint64, word int, write bool) {
	b := o.blockOf(proc, block)
	if b.pendingCnt != 0 {
		o.settleAt(b, proc, word)
	}
	if proc >= 64 {
		m, bit := o.maskOf(block, b, proc)
		o.recordAccess(block, b, m, bit, proc, word, write)
		return
	}
	if write {
		b.writes++
		b.m.writers |= 1 << uint(proc)
		b.wordsWritten |= 1 << uint(word)
		if o.anyLost(block, b) {
			o.bumpSeq(b, word)
		}
		if b.lastWriter != int16(proc)+1 {
			if b.lastWriter != 0 {
				b.ownerChanges++
			}
			b.lastWriter = int16(proc) + 1
		}
	} else {
		b.reads++
		b.m.readers |= 1 << uint(proc)
	}
}

// applyMiss folds a demand miss and its fill: class is the shared miss
// taxonomy (never Upgrade here), home the serving node, fanout the
// number of copies the transaction invalidated (write misses only).
// Recorded after the transaction completed and before any later event,
// so the write-sequence comparison against the processor's loss
// snapshot is exact.
func (o *Observer) applyMiss(proc int, block uint64, word int, write bool, class memclass.Class, home int, page uint64, fanout int) {
	b := o.blockOf(proc, block)
	m, bit := o.maskOf(block, b, proc)
	b.page, b.home = uint32(page), int16(home)
	b.misses[class]++

	switch {
	case m.live&bit != 0:
		// A miss with a live copy on record means the copy was silently
		// displaced. The directory is precise (evictions send
		// replacement hints), so invalidations never target evicted
		// copies and replacement is the only silent loss — which is why
		// OnEvict/OnWriteback need not touch the block at all. A
		// verdict still pending from the displaced residency settles
		// false, as an eviction-time settlement would have.
		b.replacement++
		o.dropPending(b, proc)
	case m.everHeld&bit == 0:
		b.cold++
	case m.lost&bit != 0:
		m.lost &^= bit // refill ends this copy's watch
		ws, ls, pw := o.watchRow(b.wordSeqID)
		var dirty uint32
		if b.seq != ls[proc] {
			for w := 0; w < WordsPerBlock; w++ {
				if ws[w] > ls[proc] {
					dirty |= 1 << uint(w)
				}
			}
		}
		switch {
		case dirty&(1<<uint(word)) != 0:
			b.trueShare++
		case dirty == 0:
			// Nothing was written while the processor was out: the
			// invalidation could not have carried data it needed.
			b.falseShare++
		default:
			pw[proc] = dirty // pending: settles on a later touch
			b.pendingCnt++
		}
	default:
		b.replacement++
	}
	m.live |= bit
	m.everHeld |= bit

	o.recordAccess(block, b, m, bit, proc, word, write)
	if write && fanout > 0 {
		b.invals += uint32(fanout)
		if int16(fanout) > b.maxFanout {
			b.maxFanout = int16(fanout)
		}
	}

	if class.Remote() {
		if home >= 0 && home < len(o.nodeRemote) {
			o.nodeRemote[home]++
		}
		p := o.pageOf(page)
		if p.remote == 0 {
			o.npages++
		}
		p.home = home
		p.remote++
	}
}

// applyUpgrade folds an ownership upgrade.
func (o *Observer) applyUpgrade(proc int, block uint64, word, fanout int) {
	b := o.blockOf(proc, block)
	b.misses[memclass.Upgrade]++
	if b.pendingCnt != 0 {
		o.settleAt(b, proc, word)
	}
	m, bit := o.maskOf(block, b, proc)
	o.recordAccess(block, b, m, bit, proc, word, true)
	if fanout > 0 {
		b.invals += uint32(fanout)
		if int16(fanout) > b.maxFanout {
			b.maxFanout = int16(fanout)
		}
	}
}

// applyPrefetchFill folds a software-prefetch fill.
func (o *Observer) applyPrefetchFill(proc int, block uint64) {
	b := o.block(block)
	m, bit := o.maskOf(block, b, proc)
	// The previous copy's verdict can no longer change.
	o.dropPending(b, proc)
	m.lost &^= bit // prefetch refill ends the watch like a demand fill
	m.live |= bit
	m.everHeld |= bit
}

// applyInvalidate folds an invalidation of proc's copy. A still-pending
// coherence miss settles false: the copy was invalidated before the
// processor ever touched a remotely-written word.
func (o *Observer) applyInvalidate(proc int, block uint64) {
	b := o.block(block)
	m, bit := o.maskOf(block, b, proc)
	o.dropPending(b, proc)
	// First invalidation ever: the block starts tracking per-word write
	// sequences from here on.
	o.ensureRow(b)
	_, ls, _ := o.watchRow(b.wordSeqID)
	ls[proc] = b.seq // the victim watches from this snapshot until refill
	m.live &^= bit
	m.lost |= bit
	m.everHeld |= bit
}

// OnDowngrade records proc's exclusive copy demoting to Shared on a
// remote read. The copy survives, so nothing settles or is lost.
func (o *Observer) OnDowngrade(proc int, block uint64) {}

// OnEvict records proc's copy dying to capacity/conflict replacement
// (clean victims; dirty victims arrive via OnWriteback). Deliberately a
// no-op: the presence bit stays live, and the next demand miss on a
// live bit classifies as a replacement — identical verdicts to
// eviction-time bookkeeping, because the precise directory guarantees
// no invalidation ever targets an evicted copy. Evictions outnumber
// misses on cache-thrashing workloads, so not touching cold block state
// here is a large share of the observer's run-time budget.
func (o *Observer) OnEvict(proc int, block uint64) {}

// OnWriteback records a dirty victim written back to its home — a
// replacement loss, observed lazily exactly like OnEvict.
func (o *Observer) OnWriteback(proc int, block uint64) {}

// forEachBlock visits every touched block in ascending block order —
// the canonical order Snap and Report rely on.
func (o *Observer) forEachBlock(fn func(block uint64, b *blockState)) {
	for ci := range o.blocks {
		c := o.blocks[ci]
		if c == nil {
			continue
		}
		for i := range c.blocks {
			b := &c.blocks[i]
			t := b.touched()
			if !t && c.hi != nil {
				h := &c.hi.m[i]
				t = h.readers|h.writers|h.everHeld != 0
			}
			if t {
				fn(uint64(ci)<<blockChunkShift|uint64(i), b)
			}
		}
	}
}

func (o *Observer) pageOf(page uint64) *pageState {
	ci := page >> blockChunkShift
	if ci >= uint64(len(o.pages)) {
		grown := make([][]pageState, ci+1)
		copy(grown, o.pages)
		o.pages = grown
	}
	c := o.pages[ci]
	if c == nil {
		c = make([]pageState, blockChunkSize)
		o.pages[ci] = c
	}
	return &c[page&blockChunkMask]
}

// forEachPage visits every touched page in ascending page order.
func (o *Observer) forEachPage(fn func(page uint64, p *pageState)) {
	for ci := range o.pages {
		c := o.pages[ci]
		for i := range c {
			if c[i].remote != 0 {
				fn(uint64(ci)<<blockChunkShift|uint64(i), &c[i])
			}
		}
	}
}

// hiMasks returns the processor-64..127 mask population (zero for
// common-width machines) for report- and snapshot-time counting.
func (o *Observer) hiMasks(block uint64) maskWords {
	if !o.wide {
		return maskWords{}
	}
	return o.blocks[block>>blockChunkShift].hi.m[block&blockChunkMask]
}

// patternOf derives the block's classification from its accumulated
// state (the state machine is documented in DESIGN.md §15).
func (o *Observer) patternOf(block uint64, b *blockState) Pattern {
	hi := o.hiMasks(block)
	writers := bits.OnesCount64(b.m.writers) + bits.OnesCount64(hi.writers)
	touched := bits.OnesCount64(b.m.readers|b.m.writers) + bits.OnesCount64(hi.readers|hi.writers)
	switch {
	case writers == 0:
		return ReadOnly
	case touched == 1:
		return Private
	case writers == 1:
		if b.invals == 0 {
			return ReadOnly // written only before any reader held a copy
		}
		return ProducerConsumer
	case b.maxFanout <= 1:
		return Migratory
	default:
		return WidelyShared
	}
}

// popcount32 counts set bits in a word mask.
func popcount32(m uint32) int { return bits.OnesCount32(m) }
