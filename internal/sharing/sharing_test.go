package sharing

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"origin2000/internal/memclass"
)

// findBlock returns the report entry for one block.
func findBlock(t *testing.T, r *Report, block uint64) BlockReport {
	t.Helper()
	for _, b := range r.TopBlocks {
		if b.Block == block {
			return b
		}
	}
	t.Fatalf("block %#x not in report", block)
	return BlockReport{}
}

// TestPatternReadOnly pins that a block written once by its initializer
// and then only read classifies read-only, and that a never-written
// block does too.
func TestPatternReadOnly(t *testing.T) {
	o := New(4, 2)
	// Block 1: pure reads from everyone.
	for proc := 0; proc < 4; proc++ {
		o.OnMiss(proc, 1, 0, false, memclass.RemoteClean, 1, 0, 0)
		o.OnHit(proc, 1, 3, false)
	}
	// Block 2: proc 0 writes it cold (no other copies, fanout 0), then
	// everyone reads.
	o.OnMiss(0, 2, 0, true, memclass.Local, 0, 0, 0)
	for proc := 1; proc < 4; proc++ {
		o.OnMiss(proc, 2, 0, false, memclass.RemoteDirty, 0, 0, 0)
	}
	r := o.Report(0)
	if p := findBlock(t, r, 1).Pattern; p != "read-only" {
		t.Errorf("unwritten block pattern = %q, want read-only", p)
	}
	if p := findBlock(t, r, 2).Pattern; p != "read-only" {
		t.Errorf("init-then-read block pattern = %q, want read-only", p)
	}
}

// TestPatternPrivate pins that a block touched by one processor only —
// reads and writes — classifies private.
func TestPatternPrivate(t *testing.T) {
	o := New(4, 2)
	o.OnMiss(2, 7, 0, false, memclass.Local, 0, 0, 0)
	o.OnHit(2, 7, 1, true)
	o.OnHit(2, 7, 1, false)
	if p := findBlock(t, o.Report(0), 7).Pattern; p != "private" {
		t.Errorf("pattern = %q, want private", p)
	}
}

// TestPatternMigratory pins the lock-protected-counter signature:
// several processors read-modify-write the same word in turn, each
// ownership transfer invalidating exactly one previous holder. The
// block must classify migratory and its coherence misses must all be
// TRUE sharing (every miss fetches the previous owner's update).
func TestPatternMigratory(t *testing.T) {
	o := New(4, 2)
	const blk, word = 9, 5
	// Proc 0 initializes the counter.
	o.OnMiss(0, blk, word, true, memclass.Local, 0, 0, 0)
	prev := 0
	for turn := 1; turn < 8; turn++ {
		proc := turn % 4
		if proc == prev {
			proc = (proc + 1) % 4
		}
		// Read miss: 3-hop, downgrades the previous owner (who keeps a
		// Shared copy).
		o.OnDowngrade(prev, blk)
		o.OnMiss(proc, blk, word, false, memclass.RemoteDirty, 0, 0, 0)
		// Write upgrade: invalidates exactly the previous owner's copy.
		o.OnInvalidate(prev, blk)
		o.OnUpgrade(proc, blk, word, 1)
		prev = proc
	}
	b := findBlock(t, o.Report(0), blk)
	if b.Pattern != "migratory" {
		t.Errorf("pattern = %q, want migratory", b.Pattern)
	}
	if b.Coherence == 0 {
		t.Fatal("no coherence misses recorded")
	}
	if b.TrueSharing != b.Coherence || b.FalseSharing != 0 {
		t.Errorf("migratory counter split true=%d false=%d of %d coherence misses, want all true",
			b.TrueSharing, b.FalseSharing, b.Coherence)
	}
}

// TestPatternProducerConsumer pins the single-writer/many-reader flag:
// one producer repeatedly writes, invalidating its consumers.
func TestPatternProducerConsumer(t *testing.T) {
	o := New(4, 2)
	const blk = 11
	o.OnMiss(0, blk, 0, true, memclass.Local, 0, 0, 0)
	for round := 0; round < 3; round++ {
		for proc := 1; proc < 4; proc++ {
			o.OnDowngrade(0, blk)
			o.OnMiss(proc, blk, 0, false, memclass.RemoteDirty, 0, 0, 0)
		}
		for proc := 1; proc < 4; proc++ {
			o.OnInvalidate(proc, blk)
		}
		o.OnUpgrade(0, blk, 0, 3)
	}
	b := findBlock(t, o.Report(0), blk)
	if b.Pattern != "producer-consumer" {
		t.Errorf("pattern = %q, want producer-consumer", b.Pattern)
	}
	if b.MaxFanout != 3 {
		t.Errorf("max fanout = %d, want 3", b.MaxFanout)
	}
}

// TestPatternWidelyShared pins the multi-writer broadcast signature:
// several writers, at least one write invalidating many copies.
func TestPatternWidelyShared(t *testing.T) {
	o := New(4, 2)
	const blk = 13
	for proc := 0; proc < 4; proc++ {
		o.OnMiss(proc, blk, 0, false, memclass.RemoteClean, 1, 0, 0)
	}
	for _, victim := range []int{1, 2, 3} {
		o.OnInvalidate(victim, blk)
	}
	o.OnUpgrade(0, blk, 0, 3)
	o.OnInvalidate(0, blk)
	o.OnMiss(1, blk, 0, true, memclass.RemoteDirty, 1, 0, 1)
	if p := findBlock(t, o.Report(0), blk).Pattern; p != "widely-shared" {
		t.Errorf("pattern = %q, want widely-shared", p)
	}
}

// TestFalseSharingSplit pins the word-footprint split on the canonical
// false-sharing microworkload: two processors ping-pong one block while
// writing DISJOINT words. Every coherence miss must settle false, the
// block must surface as a suspect with padding advice, and the run-wide
// verdict must flag false sharing.
func TestFalseSharingSplit(t *testing.T) {
	o := New(2, 2)
	const blk = 21
	// Cold start: proc 0 writes word 0, proc 1 writes word 8.
	o.OnMiss(0, blk, 0, true, memclass.Local, 0, 0, 0)
	o.OnInvalidate(0, blk)
	o.OnMiss(1, blk, 8, true, memclass.RemoteDirty, 0, 0, 1)
	// Ping-pong: each write miss invalidates the other's copy first
	// (the transaction's fan-out), then classifies — exactly the order
	// the core hot path produces.
	for round := 0; round < 10; round++ {
		o.OnInvalidate(1, blk)
		o.OnMiss(0, blk, 0, true, memclass.RemoteDirty, 0, 0, 1)
		o.OnInvalidate(0, blk)
		o.OnMiss(1, blk, 8, true, memclass.RemoteDirty, 0, 0, 1)
	}
	r := o.Report(8)
	b := findBlock(t, r, blk)
	if b.Coherence != 20 {
		t.Fatalf("coherence misses = %d, want 20", b.Coherence)
	}
	if b.TrueSharing != 0 || b.FalseSharing != 20 {
		t.Errorf("split true=%d false=%d, want 0/20", b.TrueSharing, b.FalseSharing)
	}
	if len(r.Suspects) == 0 || r.Suspects[0].Block != blk {
		t.Fatalf("block %#x not the top false-sharing suspect: %+v", uint64(blk), r.Suspects)
	}
	if !strings.Contains(r.Suspects[0].Advice, "pad") {
		t.Errorf("suspect advice %q does not suggest padding", r.Suspects[0].Advice)
	}
	if !strings.Contains(r.Verdict, "false-sharing-bound") {
		t.Errorf("verdict = %q, want false-sharing-bound", r.Verdict)
	}
}

// TestTrueSharingSplit pins the complementary case: the same ping-pong
// on the SAME word is pure true sharing.
func TestTrueSharingSplit(t *testing.T) {
	o := New(2, 2)
	const blk, word = 22, 4
	o.OnMiss(0, blk, word, true, memclass.Local, 0, 0, 0)
	for round := 0; round < 10; round++ {
		o.OnInvalidate(0, blk)
		o.OnMiss(1, blk, word, true, memclass.RemoteDirty, 0, 0, 1)
		o.OnInvalidate(1, blk)
		o.OnMiss(0, blk, word, true, memclass.RemoteDirty, 0, 0, 1)
	}
	b := findBlock(t, o.Report(0), blk)
	if b.FalseSharing != 0 || b.TrueSharing != b.Coherence {
		t.Errorf("split true=%d false=%d of %d, want all true", b.TrueSharing, b.FalseSharing, b.Coherence)
	}
}

// TestPendingSettlesTrueOnLaterTouch pins the deferred settlement rule:
// a coherence miss on an untouched word stays pending and flips to true
// sharing the moment the processor reads a remotely-written word.
func TestPendingSettlesTrueOnLaterTouch(t *testing.T) {
	o := New(2, 2)
	const blk = 23
	o.OnMiss(0, blk, 0, true, memclass.Local, 0, 0, 0) // proc 0 writes word 0
	o.OnInvalidate(0, blk)
	o.OnMiss(1, blk, 8, true, memclass.RemoteDirty, 0, 0, 1) // proc 1 writes word 8
	o.OnInvalidate(1, blk)
	// Proc 0 re-misses on word 0 (its own word): pending.
	o.OnMiss(0, blk, 0, false, memclass.RemoteDirty, 0, 0, 0)
	b := findBlock(t, o.Report(0), blk)
	if b.TrueSharing != 0 {
		t.Fatalf("premature true verdict: %+v", b)
	}
	// Now proc 0 reads word 8 — the remotely-written word: true.
	o.OnHit(0, blk, 8, false)
	b = findBlock(t, o.Report(0), blk)
	if b.TrueSharing != 1 {
		t.Errorf("true = %d after touching the dirty word, want 1", b.TrueSharing)
	}
}

// TestSplitExactness pins the accounting identity on a mixed workload:
// every demand miss lands in exactly one cause bucket and coherence
// misses split exactly into true + false + pending.
func TestSplitExactness(t *testing.T) {
	o := New(4, 2)
	for blk := uint64(0); blk < 32; blk++ {
		for proc := 0; proc < 4; proc++ {
			o.OnMiss(proc, blk, int(blk%WordsPerBlock), proc%2 == 0, memclass.RemoteClean, int(blk%2), blk>>7, 0)
		}
		o.OnInvalidate(1, blk)
		o.OnUpgrade(0, blk, int(blk%WordsPerBlock), 1)
		o.OnEvict(2, blk)
		o.OnMiss(1, blk, 0, false, memclass.RemoteDirty, int(blk%2), blk>>7, 0)
		o.OnMiss(2, blk, 0, false, memclass.Local, int(blk%2), blk>>7, 0)
	}
	r := o.Report(0)
	demand := r.Misses[memclass.Local] + r.Misses[memclass.RemoteClean] + r.Misses[memclass.RemoteDirty]
	if got := r.Split.Cold + r.Split.Replacement + r.Split.Coherence; got != demand {
		t.Errorf("cause buckets sum to %d, demand misses = %d", got, demand)
	}
	if got := r.Split.TrueSharing + r.Split.FalseSharing + r.Split.Pending; got != r.Split.Coherence {
		t.Errorf("true+false+pending = %d, coherence = %d", got, r.Split.Coherence)
	}
}

// TestHotspotImbalance pins the home-node attribution: when one node
// serves every remote miss, the imbalance index is the node count and
// the verdict calls out the hotspot.
func TestHotspotImbalance(t *testing.T) {
	o := New(8, 4)
	for blk := uint64(0); blk < 16; blk++ {
		for proc := 0; proc < 8; proc++ {
			o.OnMiss(proc, blk, 0, false, memclass.RemoteClean, 2, blk/4, 0)
		}
	}
	r := o.Report(4)
	if r.Imbalance != 4 {
		t.Errorf("imbalance = %g, want 4 (one of four nodes serves all)", r.Imbalance)
	}
	if r.NodeRemote[2] != 16*8 {
		t.Errorf("node 2 served %d, want %d", r.NodeRemote[2], 16*8)
	}
	if !strings.Contains(r.Verdict, "home-hotspot") {
		t.Errorf("verdict = %q, want home-hotspot", r.Verdict)
	}
	if len(r.TopPages) != 4 || r.TopPages[0].Home != 2 || r.TopPages[0].Remote != 4*8 {
		t.Errorf("top pages malformed: %+v", r.TopPages)
	}
}

// TestSnapRestoreRoundTrip pins that Snap → Restore reproduces the
// observer exactly: the restored observer's snapshot and report are
// deep-equal to the original's, through a JSON encode/decode like the
// checkpoint codec performs.
func TestSnapRestoreRoundTrip(t *testing.T) {
	o := New(4, 2)
	o.OnMiss(0, 5, 0, true, memclass.Local, 0, 0, 0)
	o.OnInvalidate(0, 5)
	o.OnMiss(1, 5, 8, true, memclass.RemoteDirty, 0, 0, 1)
	o.OnInvalidate(1, 5)
	o.OnMiss(0, 5, 0, false, memclass.RemoteDirty, 0, 0, 0) // pending
	o.OnMiss(2, 6, 3, false, memclass.RemoteClean, 1, 0, 0)
	o.OnEvict(2, 6)

	sn := o.Snap()
	data, err := json.Marshal(sn)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snap
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	o2 := New(4, 2)
	if err := o2.Restore(decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o.Snap(), o2.Snap()) {
		t.Error("restored snapshot differs from original")
	}
	if !reflect.DeepEqual(o.Report(16), o2.Report(16)) {
		t.Error("restored report differs from original")
	}
	// The pending miss must still settle correctly after restore.
	o.OnHit(0, 5, 8, false)
	o2.OnHit(0, 5, 8, false)
	if !reflect.DeepEqual(o.Report(16), o2.Report(16)) {
		t.Error("post-restore settlement diverged")
	}

	// Mismatched shapes are refused.
	if err := New(8, 2).Restore(decoded); err == nil {
		t.Error("Restore accepted a snapshot with the wrong processor count")
	}
	if err := New(4, 4).Restore(decoded); err == nil {
		t.Error("Restore accepted a snapshot with the wrong node count")
	}
}
