package sharing

import (
	"fmt"

	"origin2000/internal/directory"
	"origin2000/internal/memclass"
)

// CopySnap is one processor's copy record in a BlockSnap.
type CopySnap struct {
	Proc        int    `json:"proc"`
	Live        bool   `json:"live,omitempty"`
	EverHeld    bool   `json:"ever_held,omitempty"`
	LostToInval bool   `json:"lost_to_inval,omitempty"`
	LossSeq     uint32 `json:"loss_seq,omitempty"`
	Pending     bool   `json:"pending,omitempty"`
	PendingMask uint32 `json:"pending_mask,omitempty"`
}

// BlockSnap is the classifier's serialized state for one block. Copies
// are sorted by processor so encoding is canonical.
type BlockSnap struct {
	Block        uint64                     `json:"block"`
	Page         uint64                     `json:"page"`
	Home         int                        `json:"home"`
	Readers      directory.Sharers          `json:"readers"`
	Writers      directory.Sharers          `json:"writers"`
	Reads        int64                      `json:"reads"`
	Writes       int64                      `json:"writes"`
	Misses       [memclass.NumClasses]int64 `json:"misses"`
	Cold         int64                      `json:"cold"`
	Replacement  int64                      `json:"replacement"`
	Coherence    int64                      `json:"coherence"`
	TrueShare    int64                      `json:"true_share"`
	FalseShare   int64                      `json:"false_share"`
	LastWriter   int16                      `json:"last_writer"`
	OwnerChanges int64                      `json:"owner_changes"`
	Invals       int64                      `json:"invals"`
	MaxFanout    int32                      `json:"max_fanout"`
	Seq          uint32                     `json:"seq"`
	WordSeq      [WordsPerBlock]uint32      `json:"word_seq"`
	WordsWritten uint32                     `json:"words_written"`
	Copies       []CopySnap                 `json:"copies,omitempty"`
}

// PageSnap is one page's remote-miss attribution record.
type PageSnap struct {
	Page   uint64 `json:"page"`
	Home   int    `json:"home"`
	Remote int64  `json:"remote"`
}

// Snap is the observer's full serializable state, in canonical order
// (blocks and pages ascending, copies by processor).
type Snap struct {
	Procs      int         `json:"procs"`
	Nodes      int         `json:"nodes"`
	NodeRemote []int64     `json:"node_remote"`
	Blocks     []BlockSnap `json:"blocks"`
	Pages      []PageSnap  `json:"pages,omitempty"`
}

// Snap captures the observer's state in canonical order. Capturing
// folds the event log first, so the snapshot reflects every event
// recorded so far.
func (o *Observer) Snap() Snap {
	o.flush()
	s := Snap{
		Procs:      o.nprocs,
		Nodes:      o.nnodes,
		NodeRemote: append([]int64(nil), o.nodeRemote...),
	}
	o.forEachBlock(func(blk uint64, b *blockState) {
		hi := o.hiMasks(blk)
		bs := BlockSnap{
			Block: blk, Page: uint64(b.page), Home: int(b.home),
			Readers: directory.Sharers{b.m.readers, hi.readers},
			Writers: directory.Sharers{b.m.writers, hi.writers},
			Reads:   int64(b.reads), Writes: int64(b.writes),
			Cold: int64(b.cold), Replacement: int64(b.replacement),
			Coherence: b.coherence(),
			TrueShare: int64(b.trueShare), FalseShare: int64(b.falseShare),
			LastWriter: b.lastWriter - 1, OwnerChanges: int64(b.ownerChanges),
			Invals: int64(b.invals), MaxFanout: int32(b.maxFanout),
			Seq: b.seq, WordsWritten: b.wordsWritten,
		}
		for c := range b.misses {
			bs.Misses[c] = int64(b.misses[c])
		}
		var ls, pw []uint32
		if b.wordSeqID != 0 {
			var ws []uint32
			ws, ls, pw = o.watchRow(b.wordSeqID)
			copy(bs.WordSeq[:], ws)
		}
		for proc := 0; proc < o.nprocs; proc++ {
			var live, held, lost bool
			if proc < 64 {
				bit := uint64(1) << uint(proc)
				live, held, lost = b.m.live&bit != 0, b.m.everHeld&bit != 0, b.m.lost&bit != 0
			} else {
				bit := uint64(1) << uint(proc-64)
				live, held, lost = hi.live&bit != 0, hi.everHeld&bit != 0, hi.lost&bit != 0
			}
			var loss, pend uint32
			if ls != nil {
				loss, pend = ls[proc], pw[proc]
			}
			if !live && !held && !lost && loss == 0 && pend == 0 {
				continue
			}
			bs.Copies = append(bs.Copies, CopySnap{
				Proc: proc, Live: live, EverHeld: held, LostToInval: lost,
				LossSeq: loss, Pending: pend != 0, PendingMask: pend,
			})
		}
		s.Blocks = append(s.Blocks, bs)
	})
	o.forEachPage(func(pg uint64, p *pageState) {
		s.Pages = append(s.Pages, PageSnap{Page: pg, Home: p.home, Remote: p.remote})
	})
	return s
}

// Restore overwrites the observer's state from a snapshot. The observer
// must have been created for the same processor and node counts.
func (o *Observer) Restore(s Snap) error {
	if s.Procs != o.nprocs {
		return fmt.Errorf("sharing: snapshot has %d processors, observer has %d", s.Procs, o.nprocs)
	}
	if s.Nodes != o.nnodes || len(s.NodeRemote) != o.nnodes {
		return fmt.Errorf("sharing: snapshot has %d nodes (%d counters), observer has %d",
			s.Nodes, len(s.NodeRemote), o.nnodes)
	}
	copy(o.nodeRemote, s.NodeRemote)
	// Unfolded events belong to the timeline being abandoned.
	o.log = o.log[:0]
	o.blocks = nil
	o.watch = make([]uint32, o.stride)
	var zeroSeq [WordsPerBlock]uint32
	for _, bs := range s.Blocks {
		b := o.block(bs.Block)
		b.page, b.home = uint32(bs.Page), int16(bs.Home)
		b.m.readers, b.m.writers = bs.Readers[0], bs.Writers[0]
		if o.wide {
			h := &o.blocks[bs.Block>>blockChunkShift].hi.m[bs.Block&blockChunkMask]
			h.readers, h.writers = bs.Readers[1], bs.Writers[1]
		}
		b.reads, b.writes = uint32(bs.Reads), uint32(bs.Writes)
		for c := range bs.Misses {
			b.misses[c] = uint32(bs.Misses[c])
		}
		b.cold, b.replacement = uint32(bs.Cold), uint32(bs.Replacement)
		b.trueShare, b.falseShare = uint32(bs.TrueShare), uint32(bs.FalseShare)
		b.lastWriter, b.ownerChanges = bs.LastWriter+1, uint32(bs.OwnerChanges)
		b.invals, b.maxFanout = uint32(bs.Invals), int16(bs.MaxFanout)
		b.seq, b.wordsWritten = bs.Seq, bs.WordsWritten
		needRow := bs.Seq != 0 || bs.WordSeq != zeroSeq
		for _, cs := range bs.Copies {
			if cs.Proc < 0 || cs.Proc >= o.nprocs {
				return fmt.Errorf("sharing: snapshot block %#x has copy for processor %d of %d",
					bs.Block, cs.Proc, o.nprocs)
			}
			if cs.LossSeq != 0 || cs.Pending || cs.PendingMask != 0 || cs.LostToInval {
				needRow = true
			}
		}
		var ls, pw []uint32
		if needRow {
			o.ensureRow(b)
			var ws []uint32
			ws, ls, pw = o.watchRow(b.wordSeqID)
			copy(ws, bs.WordSeq[:])
		}
		for _, cs := range bs.Copies {
			m, bit := o.maskOf(bs.Block, b, cs.Proc)
			if cs.Live {
				m.live |= bit
			}
			if cs.EverHeld {
				m.everHeld |= bit
			}
			if cs.LostToInval {
				m.lost |= bit
			}
			if ls != nil {
				ls[cs.Proc] = cs.LossSeq
				pw[cs.Proc] = cs.PendingMask
			}
			if cs.Pending {
				b.pendingCnt++
			}
		}
	}
	o.pages, o.npages = nil, 0
	for _, ps := range s.Pages {
		p := o.pageOf(ps.Page)
		if p.remote == 0 && ps.Remote != 0 {
			o.npages++
		}
		p.home, p.remote = ps.Home, ps.Remote
	}
	// The memo holds pointers into the tables just replaced.
	o.memo = make([]blockMemo, o.nprocs)
	return nil
}
