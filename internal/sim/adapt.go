package sim

// Adaptive window sizing. The conservative window width W trades fixed
// scheduling cost against ordering granularity: every window pays a
// runnable scan, heap fills, and a phase barrier, so round-trip-light
// phases want wide windows, while sync-heavy phases want narrow ones so
// cross-shard operations interleave at fine grain. AdaptWindow picks the
// next width from observables of the schedule that was just committed.
//
// Determinism argument: the observables are counts of scheduling events —
// chains dispatched, processors suspended into commit, commit-chain
// resumes — accumulated in virtual-time order by the engine. All three are
// pure functions of the simulated program and the previous window
// sequence, never of the worker count or host timing (a chain is counted
// when it is claimed, and the set of claimed chains per window is fixed;
// the commit phase is always serial). The next width is a pure function of
// the current width and those observables, so by induction the entire
// window sequence — and with it the full schedule — is identical on every
// run at every worker count.

// WindowObs summarizes the schedule committed since the previous window
// open: the deterministic virtual-time observables AdaptWindow reads.
type WindowObs struct {
	// Chains is the number of phase-1 shard chains dispatched: how much
	// shard-parallel work the span offered.
	Chains int64
	// Commits is the number of processors that suspended into a commit
	// queue: the span's cross-shard traffic (misses leaving their shard,
	// synchronization operations).
	Commits int64
	// CommitRuns is the number of serial commit-chain resumes: how often
	// the span fell back to serialized execution.
	CommitRuns int64
	// Shards is the engine's shard count — a setup constant, recorded here
	// so the policy can judge phase-1 occupancy (Chains vs the most chains
	// a window could dispatch concurrently).
	Shards int64
}

// AdaptWindow returns the next window width given the current width, the
// engine's base width (the floor, NewEngine's quantum), the ceiling, and
// the observables of the span just committed. It is a pure function: same
// inputs, same width, no hidden state — the property the engine's
// bit-identity at any worker count rests on.
//
// The policy: a span with no commit-chain activity proves nothing crossed
// shards, so no ordering was at stake and the window doubles (free speed).
// A span that dispatched fewer chains than the machine has shards also
// doubles, whatever its commit traffic: phase 1 ran underfilled, so the
// window's fixed turnover cost was paid for almost no parallel work, and
// the commit chain serializes the same operations at any width — widening
// is amortization, not lost interleaving. At full phase-1 occupancy the
// commit pressure decides: light commit traffic (under a quarter of the
// chains) still grows, a commit chain that resumed at least once per
// dispatched chain shrinks hard to restore fine-grained interleaving, and
// anything between shrinks gently.
func AdaptWindow(cur, base, max Time, o WindowObs) Time {
	if base <= 0 {
		base = DefaultQuantum
	}
	if max < base {
		max = base
	}
	if cur < base {
		cur = base
	}
	switch {
	case o.CommitRuns == 0:
		cur *= 2
	case o.Chains < o.Shards:
		cur *= 2
	case o.CommitRuns*4 <= o.Chains:
		cur += cur / 2
	case o.CommitRuns >= o.Chains:
		cur /= 4
	default:
		cur /= 2
	}
	if cur < base {
		cur = base
	}
	if cur > max {
		cur = max
	}
	return cur
}
