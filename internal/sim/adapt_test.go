package sim

import (
	"os"
	"reflect"
	"strconv"
	"testing"
)

// TestAdaptWindowPure pins the adaptive policy as a pure function: each row
// is (current width, base, ceiling, observables) -> next width, covering
// every branch and both clamps. If a change to the policy is intentional,
// update the rows — silently different widths would silently change every
// adaptive schedule.
func TestAdaptWindowPure(t *testing.T) {
	const us = Microsecond
	cases := []struct {
		name           string
		cur, base, max Time
		obs            WindowObs
		want           Time
	}{
		{"no-commit-doubles", 2 * us, us, 64 * us, WindowObs{Chains: 8, Shards: 8}, 4 * us},
		{"light-commit-grows-half", 4 * us, us, 64 * us, WindowObs{Chains: 8, Shards: 8, CommitRuns: 2}, 6 * us},
		{"commit-bound-quarters", 8 * us, us, 64 * us, WindowObs{Chains: 4, Shards: 4, CommitRuns: 4}, 2 * us},
		{"commit-exceeds-chains-quarters", 8 * us, us, 64 * us, WindowObs{Chains: 4, Shards: 4, CommitRuns: 9}, 2 * us},
		{"mixed-halves", 8 * us, us, 64 * us, WindowObs{Chains: 8, Shards: 8, CommitRuns: 3}, 4 * us},
		{"underfilled-doubles", 2 * us, us, 64 * us, WindowObs{Chains: 3, Shards: 8, CommitRuns: 50}, 4 * us},
		{"underfilled-beats-commit-bound", 8 * us, us, 64 * us, WindowObs{Chains: 1, Shards: 32, CommitRuns: 16}, 16 * us},
		{"floor-clamp", us, us, 64 * us, WindowObs{Chains: 2, Shards: 2, CommitRuns: 2}, us},
		{"ceiling-clamp", 48 * us, us, 64 * us, WindowObs{Chains: 8, Shards: 8}, 64 * us},
		{"cur-below-base-lifts", 100 * Nanosecond, us, 64 * us, WindowObs{Chains: 1, Shards: 1, CommitRuns: 1}, us},
		{"zero-base-defaults", 2 * us, 0, 64 * us, WindowObs{Chains: 8, Shards: 8}, 4 * us},
		{"max-below-base-lifts", 2 * us, 4 * us, us, WindowObs{Chains: 8, Shards: 8}, 4 * us},
		{"idle-window-doubles", 3 * us, us, 64 * us, WindowObs{}, 6 * us},
	}
	for _, c := range cases {
		if got := AdaptWindow(c.cur, c.base, c.max, c.obs); got != c.want {
			t.Errorf("%s: AdaptWindow(%v, %v, %v, %+v) = %v, want %v",
				c.name, c.cur, c.base, c.max, c.obs, got, c.want)
		}
	}
}

// adaptivePingPong runs a 2-proc shared-shard workload under adaptive
// windows and returns the final clocks, stats, and schedule shape.
func adaptivePingPong(t *testing.T, workers int) ([]Time, []Counters, SchedShape) {
	t.Helper()
	e := NewEngine(2, 500*Nanosecond)
	e.SetShards([]int{0, 0}, 1)
	e.SetAdaptiveWindow(0)
	e.SetWorkers(workers)
	var res Resource
	err := e.Run(func(p *Proc) {
		for i := 0; i < 2000; i++ {
			p.Advance(Time(100+50*p.ID())*Nanosecond, StatBusy)
			p.AwaitGlobal()
			p.AdvanceTo(res.Acquire(p.Now(), 40), StatSync)
			p.EndGlobal()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	now := make([]Time, 2)
	st := make([]Counters, 2)
	for i := 0; i < 2; i++ {
		now[i] = e.Proc(i).Now()
		st[i] = e.Proc(i).Counters
	}
	return now, st, e.Shape()
}

// TestAdaptiveWindowWorkerInvariance proves the adaptive width sequence is
// a pure function of the schedule: the whole run — clocks, stats, and the
// schedule shape including every window width — is bit-identical at
// workers 1, 2, and 8.
func TestAdaptiveWindowWorkerInvariance(t *testing.T) {
	baseNow, baseSt, baseShape := adaptivePingPong(t, 1)
	for _, w := range []int{2, 8} {
		now, st, shape := adaptivePingPong(t, w)
		if !reflect.DeepEqual(now, baseNow) || !reflect.DeepEqual(st, baseSt) {
			t.Fatalf("workers=%d diverged from workers=1:\n got %v %v\nwant %v %v", w, now, st, baseNow, baseSt)
		}
		if shape != baseShape {
			t.Fatalf("workers=%d schedule shape %+v != workers=1 shape %+v", w, shape, baseShape)
		}
	}
}

// TestRunAheadPingPong pins the run-ahead fast path structurally: a
// 2-processor machine whose processors share one shard and wake each other
// must run entirely inside run-ahead spans — no windowed rounds at all —
// and hand off directly between the processors.
func TestRunAheadPingPong(t *testing.T) {
	e := NewEngine(2, DefaultQuantum)
	e.SetShards([]int{0, 0}, 1)
	e.SetWorkers(2)
	err := e.Run(func(p *Proc) {
		for i := 0; i < 1000; i++ {
			p.Advance(10*Microsecond, StatBusy)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s := e.Shape()
	if s.RunAheadSpans < 1 {
		t.Fatalf("expected at least one run-ahead span, shape %+v", s)
	}
	if s.Windows != 0 {
		t.Fatalf("single-shard ping-pong should never open a window, shape %+v", s)
	}
	if s.RunAheadHandoffs == 0 {
		t.Fatalf("expected direct handoffs inside the run-ahead span, shape %+v", s)
	}
}

// TestSchedulerRoundTripRegression pins the engine's context-switch cost:
// the quantum-exceeding yield/resume cycle of BenchmarkSchedulerRoundTrip
// must stay within 1.25x of the serial-engine seed (242ns on the reference
// host, BENCH_1). The run-ahead fast path exists precisely to keep this
// number flat, so a regression here means the fast path stopped engaging.
//
// Wall-clock bound: skipped under -short, under -race (instrumentation
// dominates), and on hosts that differ from the reference (override the
// ceiling with ORIGIN_ROUNDTRIP_NS_MAX).
func TestSchedulerRoundTripRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bound: skipped under -short")
	}
	if raceEnabled {
		t.Skip("wall-clock bound: skipped under -race")
	}
	maxNS := 302.5 // 1.25 * 242.035ns (BENCH_1 serial seed)
	if s := os.Getenv("ORIGIN_ROUNDTRIP_NS_MAX"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad ORIGIN_ROUNDTRIP_NS_MAX %q: %v", s, err)
		}
		maxNS = v
	}
	// Best of three: host noise (a co-scheduled test binary, a GC cycle)
	// only ever adds time, so the minimum is the honest estimate of the
	// engine's cost against a fixed ceiling.
	got := 0.0
	for attempt := 0; attempt < 3; attempt++ {
		res := testing.Benchmark(BenchmarkSchedulerRoundTrip)
		ns := float64(res.T.Nanoseconds()) / float64(res.N)
		t.Logf("scheduler round-trip attempt %d: %.1f ns/op over %d iterations (ceiling %.1f)",
			attempt+1, ns, res.N, maxNS)
		if attempt == 0 || ns < got {
			got = ns
		}
		if got <= maxNS {
			break
		}
	}
	if got > maxNS {
		t.Errorf("scheduler round-trip %.1f ns/op exceeds %.1f ns/op ceiling", got, maxNS)
	}
}
