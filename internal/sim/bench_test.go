package sim

import "testing"

// BenchmarkAdvance measures the fast path of virtual-time accounting.
func BenchmarkAdvance(b *testing.B) {
	e := NewEngine(1, 0)
	err := e.Run(func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(Nanosecond, StatBusy)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSchedulerRoundTrip measures a full yield/resume cycle between
// two processors — the engine's context-switch cost.
func BenchmarkSchedulerRoundTrip(b *testing.B) {
	e := NewEngine(2, Nanosecond)
	err := e.Run(func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(10*Nanosecond, StatBusy) // exceeds the quantum: yields
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkResourceAcquire measures the contention-timeline operation.
func BenchmarkResourceAcquire(b *testing.B) {
	var r Resource
	t := Time(0)
	for i := 0; i < b.N; i++ {
		t = r.Acquire(t, 40)
	}
}
