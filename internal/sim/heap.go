package sim

// procHeap is a binary min-heap of runnable processors ordered by
// (clock, id). The id tie-break makes scheduling deterministic.
type procHeap []*Proc

func (h procHeap) less(i, j int) bool {
	if h[i].now != h[j].now {
		return h[i].now < h[j].now
	}
	return h[i].id < h[j].id
}

func (h procHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIndex = i
	h[j].heapIndex = j
}

func (h *procHeap) push(p *Proc) {
	*h = append(*h, p)
	p.heapIndex = len(*h) - 1
	h.up(p.heapIndex)
}

func (h *procHeap) pop() *Proc {
	old := *h
	n := len(old)
	p := old[0]
	old.swap(0, n-1)
	*h = old[:n-1]
	if n > 1 {
		h.down(0)
	}
	p.heapIndex = -1
	return p
}

// grow appends p without restoring heap order; callers follow a batch of
// grow calls with one reinit. Splitting the two turns k inserts into one
// O(n) rebuild (see Proc.WakeBatch).
func (h *procHeap) grow(p *Proc) {
	*h = append(*h, p)
	p.heapIndex = len(*h) - 1
}

// reinit restores heap order after a batch of grow appends: a bottom-up
// heapify. down maintains heapIndex through swap, and grow set the indexes
// of the appended tail, so every index is consistent afterwards.
func (h *procHeap) reinit() {
	for i := len(*h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h procHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h procHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
