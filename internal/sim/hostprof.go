package sim

// Host-time profiling hooks. The engine's virtual-time schedule is a pure
// function of simulation state — host timing must never feed back into it —
// so the profiler interface is strictly one-way: the engine notifies, the
// profiler records, and nothing flows back (no return values, no errors).
// Every call site is gated on a nil check, so an engine without a profiler
// pays one predictable branch per site and an engine with one is
// schedule-neutral by construction (the hooks read only host clocks and
// quantities the schedule already computed).
//
// Concurrency contract (what an implementation may assume):
//
//   - Lane events (ChainBegin/ChainEnd/StealAttempt) for one lane are
//     totally ordered by the engine's chain handoffs: the dispatch that
//     begins a lane's chain happens-before the chain's own events, and a
//     lane's end happens-before its next dispatch. Events for different
//     lanes are concurrent — per-lane state needs no locking, shared state
//     does.
//   - Serial events (SerialBegin/SerialEnd/WindowOpen) are emitted only
//     while at most one chain — or only the coordinator — is executing, and
//     consecutive emissions are linked by the engine's resume/yield channel
//     operations, so they are totally ordered.

// Serial-span kinds for HostProfiler.SerialBegin/SerialEnd. The serial
// track records the engine's inherently single-threaded stretches: the
// commit chain, the run-ahead fast path, and round turnover (the runnable
// scan, quiescent hook, and window open — coordinator- or chain-side).
const (
	SerialCommit = iota
	SerialRunAhead
	SerialTurnover
	NumSerialKinds
)

// SerialKindName names a serial-span kind for reports and exports.
func SerialKindName(kind int) string {
	switch kind {
	case SerialCommit:
		return "commit"
	case SerialRunAhead:
		return "run-ahead"
	case SerialTurnover:
		return "turnover"
	}
	return "unknown"
}

// HostProfiler receives host-time notifications from the engine. A lane is
// a host execution slot for phase-1 shard chains, in [0, Workers()): the
// coordinator dispatches up to Workers chains per window, one per lane, and
// a dying chain that steals the next shard keeps its lane.
type HostProfiler interface {
	// ChainBegin marks a phase-1 shard chain dispatched on lane.
	ChainBegin(lane int)
	// ChainEnd marks lane's current chain running dry.
	ChainEnd(lane int)
	// StealAttempt marks a dry chain on lane trying to claim another
	// shard's chain; hit reports whether one was claimed.
	StealAttempt(lane int, hit bool)
	// SerialBegin/SerialEnd bracket a serial-track span of the given kind.
	SerialBegin(kind int)
	SerialEnd(kind int)
	// WindowOpen samples the schedule at a window open: the width chosen
	// for the window, the number of shard chains it queued (the runnable
	// backlog phase 1 can spread over lanes), and the commit-queue depth.
	WindowOpen(width Time, backlog, commitDepth int)
}

// SetHostProfiler attaches hp to the engine (nil detaches). The profiler
// only observes: attaching one never changes the virtual-time schedule.
// Call before Run.
func (e *Engine) SetHostProfiler(hp HostProfiler) { e.prof = hp }
