package sim

// Counters accumulates event counts for one processor. The machine model
// increments these; they are not interpreted by the engine itself.
type Counters struct {
	Reads            int64 // shared-data load references
	Writes           int64 // shared-data store references
	Hits             int64 // cache hits
	LocalMisses      int64 // misses satisfied by the local node's memory
	RemoteClean      int64 // 2-hop misses satisfied by a remote home memory
	RemoteDirty      int64 // 3-hop misses requiring an intervention at a third node
	Upgrades         int64 // write hits to Shared lines (invalidation required)
	Invalidations    int64 // invalidation messages this processor caused
	Writebacks       int64 // dirty victims written back
	Prefetches       int64 // prefetches issued
	PrefetchHits     int64 // demand accesses fully or partly covered by a prefetch
	FetchOps         int64 // uncached at-memory fetch&op operations
	LockAcquires     int64
	BarrierWaits     int64
	PageMigrations   int64
	LocalStall       Time  // memory stall on local misses
	RemoteStall      Time  // memory stall on remote misses
	ContentionStall  Time  // portion of memory stall due to queueing
	SyncWait         Time  // portion of sync time spent waiting (imbalance)
	SyncOverhead     Time  // portion of sync time spent in the operation itself
	StolenTasks      int64 // tasks obtained by stealing (apps that steal)
	ExecutedTasks    int64 // tasks executed (apps with task queues)
	RemoteCapacity   int64 // capacity misses to remote homes (artifactual comm.)
	MigratedAccesses int64 // accesses that became local thanks to migration
}

// Add accumulates other into c.
func (c *Counters) Add(other *Counters) {
	c.Reads += other.Reads
	c.Writes += other.Writes
	c.Hits += other.Hits
	c.LocalMisses += other.LocalMisses
	c.RemoteClean += other.RemoteClean
	c.RemoteDirty += other.RemoteDirty
	c.Upgrades += other.Upgrades
	c.Invalidations += other.Invalidations
	c.Writebacks += other.Writebacks
	c.Prefetches += other.Prefetches
	c.PrefetchHits += other.PrefetchHits
	c.FetchOps += other.FetchOps
	c.LockAcquires += other.LockAcquires
	c.BarrierWaits += other.BarrierWaits
	c.PageMigrations += other.PageMigrations
	c.LocalStall += other.LocalStall
	c.RemoteStall += other.RemoteStall
	c.ContentionStall += other.ContentionStall
	c.SyncWait += other.SyncWait
	c.SyncOverhead += other.SyncOverhead
	c.StolenTasks += other.StolenTasks
	c.ExecutedTasks += other.ExecutedTasks
	c.RemoteCapacity += other.RemoteCapacity
	c.MigratedAccesses += other.MigratedAccesses
}

// Misses reports the total cache-miss count.
func (c *Counters) Misses() int64 { return c.LocalMisses + c.RemoteClean + c.RemoteDirty }

// Proc is one simulated processor. Application code receives a Proc and
// advances its virtual clock through the methods below. A Proc's methods
// must only be called from the goroutine the engine started for it.
type Proc struct {
	id        int
	e         *Engine
	now       Time
	limit     Time
	resume    chan struct{}
	blocked   bool
	finished  bool
	heapIndex int
	stats     [numStats]Time

	// Counters holds machine-model event counts for this processor.
	Counters Counters
}

// ID returns the processor's id in [0, NumProcs).
func (p *Proc) ID() int { return p.id }

// Engine returns the engine this processor belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the processor's current virtual time.
func (p *Proc) Now() Time { return p.now }

// Stat returns the accumulated time charged to bucket k.
func (p *Proc) Stat(k StatKind) Time { return p.stats[k] }

// Total returns the sum of all buckets: the processor's accounted time.
func (p *Proc) Total() Time {
	var t Time
	for _, s := range p.stats {
		t += s
	}
	return t
}

// Advance moves the clock forward by d and charges d to bucket k,
// yielding to the scheduler if the quantum is exhausted.
func (p *Proc) Advance(d Time, k StatKind) {
	if d < 0 {
		panic("sim: negative advance")
	}
	p.now += d
	p.stats[k] += d
	if p.now > p.limit {
		p.yield()
	}
}

// AdvanceTo moves the clock forward to time t (a no-op if already past t)
// and charges the elapsed duration to bucket k.
func (p *Proc) AdvanceTo(t Time, k StatKind) {
	if t > p.now {
		p.Advance(t-p.now, k)
	}
}

// Charge records d in bucket k without moving the clock. Synchronization
// primitives use it to attribute time that was accounted while blocked.
func (p *Proc) Charge(d Time, k StatKind) {
	if d < 0 {
		panic("sim: negative charge")
	}
	p.stats[k] += d
}

// Yield voluntarily returns control to the scheduler if this processor has
// exceeded its quantum. Long computations that do not touch simulated
// memory should call it periodically.
func (p *Proc) Yield() {
	if p.now > p.limit {
		p.yield()
	}
}

// park suspends the goroutine until the engine hands it control again. If
// the run was abandoned (deadlock or panic) the goroutine unwinds instead
// of leaking.
func (p *Proc) park() {
	<-p.resume
	if p.e.abandoned {
		panic(abandonRun{})
	}
}

// yield returns control to the scheduler after a quantum expiry. Fast path:
// if this processor is still the (clock, id) minimum, it extends its own
// run-ahead limit and keeps running with no channel traffic at all.
// Otherwise control passes directly to the min-clock runnable processor's
// goroutine — one handoff, no trip through the central Run loop.
func (p *Proc) yield() {
	e := p.e
	if len(e.heap) == 0 {
		p.limit = maxTime
		return
	}
	if m := e.heap[0]; p.now < m.now || (p.now == m.now && p.id < m.id) {
		p.limit = m.now + e.quantum
		return
	}
	e.heap.push(p)
	e.resumeNext()
	p.park()
}

// Block suspends this processor until another processor calls Wake on it.
// The caller is responsible for charging the waiting time (see Wake).
func (p *Proc) Block() {
	p.blocked = true
	e := p.e
	if len(e.heap) > 0 {
		e.resumeNext()
	} else {
		// Nothing runnable and this processor is blocked: every
		// unfinished processor is now stuck, so report a deadlock.
		e.yieldCh <- yieldEvent{p: p, kind: yieldIdle}
	}
	p.park()
}

// Wake makes q runnable again with its clock advanced to at least t. It
// must be called by the currently running processor (the scheduler is
// parked while application code runs, so the ready queue is safe to touch).
// The time q spent blocked is not charged automatically; the waker or the
// wakee charges it to the appropriate bucket.
func (p *Proc) Wake(q *Proc, t Time) {
	if !q.blocked {
		panic("sim: Wake on a processor that is not blocked")
	}
	if q.now < t {
		q.now = t
	}
	q.blocked = false
	p.e.heap.push(q)
	// The waker may have been resumed with a generous (even unbounded)
	// run-ahead limit while q was blocked; now that q is runnable the
	// waker must yield once it passes q's clock, or q would starve.
	if limit := q.now + p.e.quantum; p.limit > limit {
		p.limit = limit
	}
}

// Blocked reports whether q is currently suspended in Block.
func (p *Proc) Blocked() bool { return p.blocked }
