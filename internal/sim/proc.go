package sim

// Counters accumulates event counts for one processor. The machine model
// increments these; they are not interpreted by the engine itself.
type Counters struct {
	Reads            int64 // shared-data load references
	Writes           int64 // shared-data store references
	Hits             int64 // cache hits
	LocalMisses      int64 // misses satisfied by the local node's memory
	RemoteClean      int64 // 2-hop misses satisfied by a remote home memory
	RemoteDirty      int64 // 3-hop misses requiring an intervention at a third node
	Upgrades         int64 // write hits to Shared lines (invalidation required)
	Invalidations    int64 // invalidation messages this processor caused
	Writebacks       int64 // dirty victims written back
	Prefetches       int64 // prefetches issued
	PrefetchHits     int64 // demand accesses fully or partly covered by a prefetch
	FetchOps         int64 // uncached at-memory fetch&op operations
	LockAcquires     int64
	BarrierWaits     int64
	PageMigrations   int64
	LocalStall       Time  // memory stall on local misses
	RemoteStall      Time  // memory stall on remote misses
	ContentionStall  Time  // portion of memory stall due to queueing
	SyncWait         Time  // portion of sync time spent waiting (imbalance)
	SyncOverhead     Time  // portion of sync time spent in the operation itself
	StolenTasks      int64 // tasks obtained by stealing (apps that steal)
	ExecutedTasks    int64 // tasks executed (apps with task queues)
	RemoteCapacity   int64 // capacity misses to remote homes (artifactual comm.)
	MigratedAccesses int64 // accesses that became local thanks to migration
}

// Add accumulates other into c.
func (c *Counters) Add(other *Counters) {
	c.Reads += other.Reads
	c.Writes += other.Writes
	c.Hits += other.Hits
	c.LocalMisses += other.LocalMisses
	c.RemoteClean += other.RemoteClean
	c.RemoteDirty += other.RemoteDirty
	c.Upgrades += other.Upgrades
	c.Invalidations += other.Invalidations
	c.Writebacks += other.Writebacks
	c.Prefetches += other.Prefetches
	c.PrefetchHits += other.PrefetchHits
	c.FetchOps += other.FetchOps
	c.LockAcquires += other.LockAcquires
	c.BarrierWaits += other.BarrierWaits
	c.PageMigrations += other.PageMigrations
	c.LocalStall += other.LocalStall
	c.RemoteStall += other.RemoteStall
	c.ContentionStall += other.ContentionStall
	c.SyncWait += other.SyncWait
	c.SyncOverhead += other.SyncOverhead
	c.StolenTasks += other.StolenTasks
	c.ExecutedTasks += other.ExecutedTasks
	c.RemoteCapacity += other.RemoteCapacity
	c.MigratedAccesses += other.MigratedAccesses
}

// Misses reports the total cache-miss count.
func (c *Counters) Misses() int64 { return c.LocalMisses + c.RemoteClean + c.RemoteDirty }

// Proc is one simulated processor. Application code receives a Proc and
// advances its virtual clock through the methods below. A Proc's methods
// must only be called from the goroutine the engine started for it.
type Proc struct {
	id        int
	e         *Engine
	now       Time
	limit     Time // park when now exceeds this (window edge - 1)
	resume    chan struct{}
	blocked   bool
	finished  bool
	heapIndex int  // index in its shard heap or the commit heap; -1 when in neither
	shard     int  // static shard assignment (SetShards)
	lane      int  // host lane its phase-1 chain runs on (profiling only)
	mode      int8 // modePhase1 or modeCommit
	global    int  // open AwaitGlobal sections; >0 pins the proc to the commit chain
	seq       int64
	stats     [numStats]Time

	// Counters holds machine-model event counts for this processor.
	Counters Counters
}

// ID returns the processor's id in [0, NumProcs).
func (p *Proc) ID() int { return p.id }

// Engine returns the engine this processor belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the processor's current virtual time.
func (p *Proc) Now() Time { return p.now }

// Shard returns the processor's shard index.
func (p *Proc) Shard() int { return p.shard }

// Seq returns the processor's most recent commit sequence number: its
// position in the global (virtual time, proc, seq) commit order the last
// time it entered the commit phase. Diagnostics only.
func (p *Proc) Seq() int64 { return p.seq }

// Stat returns the accumulated time charged to bucket k.
func (p *Proc) Stat(k StatKind) Time { return p.stats[k] }

// Total returns the sum of all buckets: the processor's accounted time.
func (p *Proc) Total() Time {
	var t Time
	for _, s := range p.stats {
		t += s
	}
	return t
}

// Advance moves the clock forward by d and charges d to bucket k,
// yielding to the scheduler if the window is exhausted.
func (p *Proc) Advance(d Time, k StatKind) {
	if d < 0 {
		panic("sim: negative advance")
	}
	p.now += d
	p.stats[k] += d
	if p.now > p.limit {
		p.windowPark()
	}
}

// AdvanceTo moves the clock forward to time t (a no-op if already past t)
// and charges the elapsed duration to bucket k.
func (p *Proc) AdvanceTo(t Time, k StatKind) {
	if t > p.now {
		p.Advance(t-p.now, k)
	}
}

// Charge records d in bucket k without moving the clock. Synchronization
// primitives use it to attribute time that was accounted while blocked.
func (p *Proc) Charge(d Time, k StatKind) {
	if d < 0 {
		panic("sim: negative charge")
	}
	p.stats[k] += d
}

// Yield voluntarily returns control to the scheduler if this processor has
// exhausted its window. Long computations that do not touch simulated
// memory should call it periodically.
func (p *Proc) Yield() {
	if p.now > p.limit {
		p.windowPark()
	}
}

// park suspends the goroutine until the engine hands it control again. If
// the run was abandoned (deadlock or panic) the goroutine unwinds instead
// of leaking.
func (p *Proc) park() {
	<-p.resume
	if p.e.abandoned {
		panic(abandonRun{})
	}
}

// windowPark suspends this processor at the window edge: it hands its chain
// to the next processor and parks until a later window resumes it.
func (p *Proc) windowPark() {
	p.chainStep()
	p.park()
}

// chainStep continues this processor's chain after it stops running (window
// edge, Block, AwaitGlobal, or finish): it resumes the next processor of
// its phase-1 shard heap or of the commit heap, or reports the chain done
// to the coordinator. In phase 1 only processors of p's shard touch the
// shard heap, so chains from different shards never share mutable state.
func (p *Proc) chainStep() {
	e := p.e
	if e.runAhead {
		// Run-ahead fast path: hand control directly to the next-lowest
		// runnable clock of the lone active shard. A cross-shard wake
		// (raExit) invalidates the mode's precondition: drain the heap —
		// its processors stay runnable and the coordinator re-collects
		// them — and fall back to windowed scheduling.
		h := &e.shardHeaps[e.raShard]
		if e.raExit {
			for _, q := range *h {
				q.heapIndex = -1
			}
			*h = (*h)[:0]
			e.runAhead = false
			if e.prof != nil {
				e.prof.SerialEnd(SerialRunAhead)
			}
			e.yieldCh <- yieldEvent{p: p, kind: evChainDone, shard: -1}
			return
		}
		if !p.blocked && !p.finished {
			h.push(p)
		}
		if len(*h) > 0 {
			e.raHandoffs++
			e.raResume()
			return
		}
		e.runAhead = false
		if e.prof != nil {
			e.prof.SerialEnd(SerialRunAhead)
		}
		e.yieldCh <- yieldEvent{p: p, kind: evChainDone, shard: -1}
		return
	}
	if p.mode == modeCommit {
		if len(e.commit) > 0 {
			e.commitRuns++
			q := e.commit.pop()
			q.mode = modeCommit
			q.limit = e.windowEnd - 1
			q.resume <- struct{}{}
			return
		}
		// The commit chain is dry: the serial span that began at its
		// dispatch ends here, whichever goroutine carries the last commit.
		if e.prof != nil {
			e.prof.SerialEnd(SerialCommit)
		}
		if e.singleChain() && e.turnover() {
			return
		}
		e.yieldCh <- yieldEvent{p: p, kind: evChainDone, shard: -1}
		return
	}
	h := &e.shardHeaps[p.shard]
	if len(*h) > 0 {
		q := h.pop()
		q.lane = p.lane
		q.mode = modePhase1
		q.limit = e.windowEnd - 1
		q.resume <- struct{}{}
		return
	}
	// This chain is dry: claim the next undispatched shard's chain and keep
	// executing on this host worker (work stealing). The claim order is
	// shard order regardless of which chains claim, so the schedule is
	// unchanged; only idle time moves.
	if e.prof != nil {
		e.prof.ChainEnd(p.lane)
	}
	if e.startNextChain(p.lane, true) {
		return
	}
	if e.singleChain() {
		// Only one chain ever runs at a time, so when it runs dry this
		// goroutine can continue the schedule itself — the phase barrier
		// and the commit chain, then the next round — instead of
		// round-tripping through the coordinator. The order is exactly the
		// coordinator's (shard-major staged merge, (time, id) commits), so
		// the schedule is unchanged.
		for s := range e.staged {
			for _, q := range e.staged[s] {
				e.commitSeq++
				q.seq = e.commitSeq
				e.commit.push(q)
			}
			e.staged[s] = e.staged[s][:0]
		}
		if len(e.commit) > 0 {
			e.commitRuns++
			q := e.commit.pop()
			q.mode = modeCommit
			q.limit = e.windowEnd - 1
			if e.prof != nil {
				e.prof.SerialBegin(SerialCommit)
			}
			q.resume <- struct{}{}
			return
		}
		if e.turnover() {
			return
		}
	}
	e.yieldCh <- yieldEvent{p: p, kind: evChainDone, shard: p.shard}
}

// AwaitGlobal serializes this processor into the commit phase before an
// operation that may touch another shard's state. In phase 1 the processor
// suspends at its current clock and resumes — with the clock unchanged — in
// the window's serial commit phase, in global (virtual time, proc) order.
// In the commit phase (and in the run-ahead fast path, where the whole
// engine is one serial chain) it is already serialized: it continues
// immediately while it precedes every queued commit, or re-queues itself
// to keep commits in (virtual time, proc) order. With a single shard
// nothing is ever cross-shard, but the call still imposes the same commit
// schedule, so results are identical to a sharded run.
//
// The section stays open until the matching EndGlobal: across window
// edges and Block/Wake cycles in between, the processor is rescheduled on
// the commit chain — never on a phase-1 shard chain — so the cross-shard
// operation can span windows without ever running concurrently with
// another shard. Sections nest (a cross-shard access inside a barrier
// protocol opens a second one); the processor returns to phase-1
// scheduling when the outermost section closes.
// The return value reports whether the processor actually suspended: false
// means no other processor can have run between the call and the return,
// so simulated state the caller probed just before is still current. The
// value is a pure function of the deterministic schedule, so decisions
// keyed on it are identical across engines and worker counts.
func (p *Proc) AwaitGlobal() bool {
	e := p.e
	p.global++
	if p.mode == modeCommit {
		if len(e.commit) == 0 {
			return false
		}
		if m := e.commit[0]; p.now < m.now || (p.now == m.now && p.id < m.id) {
			return false
		}
		// A queued commit precedes us: hand the chain to it and wait our
		// turn. (The new minimum cannot be p: the old minimum beat it.)
		e.commit.push(p)
		e.commitRuns++
		q := e.commit.pop()
		q.mode = modeCommit
		q.limit = e.windowEnd - 1
		q.resume <- struct{}{}
		p.park()
		return true
	}
	// Phase 1: stage for this window's commit phase and continue the
	// shard chain. The coordinator merges staged processors into the
	// commit heap at the phase barrier.
	e.staged[p.shard] = append(e.staged[p.shard], p)
	p.chainStep()
	p.park()
	p.mode = modeCommit
	return true
}

// EndGlobal closes the section opened by the matching AwaitGlobal. The
// processor keeps executing serially until the window edge (the schedule is
// a function of virtual time only, so this costs nothing in determinism);
// from the next window on it is scheduled on its shard's phase-1 chain
// again.
func (p *Proc) EndGlobal() {
	if p.global <= 0 {
		panic("sim: EndGlobal without a matching AwaitGlobal")
	}
	p.global--
}

// Block suspends this processor until another processor calls Wake on it.
// The caller is responsible for charging the waiting time (see Wake).
func (p *Proc) Block() {
	p.blocked = true
	p.chainStep()
	p.park()
}

// Wake makes q runnable again with its clock advanced to at least t. The
// time q spent blocked is not charged automatically; the waker or the
// wakee charges it to the appropriate bucket.
//
// In the commit phase (where all synchronization runs — see AwaitGlobal) a
// wake inside the current window queues q for commit in (virtual time,
// proc) order; a later wake leaves q parked for its window. In phase 1
// only same-shard wakes are legal. In the run-ahead fast path a same-shard
// wake joins the run-ahead heap (bounding the waker's run-ahead by the
// wakee's clock); a cross-shard wake ends the mode — the waker yields at
// its next advance and the engine returns to windowed scheduling.
func (p *Proc) Wake(q *Proc, t Time) {
	if !q.blocked {
		panic("sim: Wake on a processor that is not blocked")
	}
	if q.now < t {
		q.now = t
	}
	q.blocked = false
	e := p.e
	if e.runAhead {
		if q.shard != e.raShard {
			e.raExit = true
			if p.limit > p.now-1 {
				p.limit = p.now - 1
			}
			return
		}
		e.shardHeaps[e.raShard].push(q)
		if l := q.now + e.window - 1; l < p.limit {
			p.limit = l
		}
		return
	}
	if p.mode == modeCommit {
		if q.now < e.windowEnd {
			e.commit.push(q)
		}
		return
	}
	if q.shard != p.shard {
		panic("sim: cross-shard Wake outside a global section")
	}
	if q.now < e.windowEnd {
		e.shardHeaps[p.shard].push(q)
	}
}

// WakeBatch wakes every processor in qs with its clock advanced to at
// least t. It is semantically identical to calling Wake(q, t) for each q
// in turn — the run queues are (clock, id) heaps, so arrival order never
// affects the schedule — but rebuilds the destination heap once (a bulk
// append and one O(n) heapify) instead of paying k ordered inserts: the
// batched commit-phase wakeup a barrier release fans out. It may only be
// called from the serialized commit chain or the run-ahead fast path,
// which is where every synchronization primitive runs (see AwaitGlobal).
func (p *Proc) WakeBatch(qs []*Proc, t Time) {
	if len(qs) == 0 {
		return
	}
	e := p.e
	if !e.runAhead && p.mode != modeCommit {
		panic("sim: WakeBatch outside the commit phase")
	}
	for _, q := range qs {
		if !q.blocked {
			panic("sim: Wake on a processor that is not blocked")
		}
		if q.now < t {
			q.now = t
		}
		q.blocked = false
	}
	if e.runAhead {
		h := &e.shardHeaps[e.raShard]
		for _, q := range qs {
			if q.shard != e.raShard {
				e.raExit = true
				continue
			}
			h.grow(q)
		}
		h.reinit()
		if e.raExit {
			if p.limit > p.now-1 {
				p.limit = p.now - 1
			}
		} else if len(*h) > 0 {
			if l := (*h)[0].now + e.window - 1; l < p.limit {
				p.limit = l
			}
		}
		return
	}
	grown := false
	for _, q := range qs {
		if q.now < e.windowEnd {
			e.commit.grow(q)
			grown = true
		}
	}
	if grown {
		e.commit.reinit()
	}
}

// Blocked reports whether q is currently suspended in Block.
func (p *Proc) Blocked() bool { return p.blocked }
