//go:build race

package sim

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
