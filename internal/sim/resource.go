package sim

// Resource models a shared hardware unit (a Hub controller, a memory bank,
// a router, a metarouter) as a service timeline. Transactions occupy the
// resource for a duration and queue behind earlier ones, which is how the
// engine models contention: the queueing delay a transaction experiences is
// the difference between its arrival time and its service start.
//
// The engine executes processors approximately in global virtual-time order
// (bounded by the scheduling quantum), so acquisitions arrive nearly sorted
// and the single free-at watermark is a faithful queue model at quanta small
// relative to transaction interarrival times.
type Resource struct {
	// Name identifies the resource in diagnostics ("hub3", "router0", ...).
	Name string

	// Observe, when set, is called on every acquisition with the request
	// time, the granted service start, and the occupancy — the tracing
	// layer's tap for building queueing-delay distributions. It must not
	// mutate simulated state; when nil (the default) Acquire pays one
	// branch.
	Observe func(at, start, occupancy Time)

	freeAt   Time
	busy     Time
	acquires int64
	queued   Time
}

// Acquire reserves the resource for occupancy starting no earlier than t and
// returns the service start time (>= t when the resource is backed up).
// Zero-occupancy acquisitions pass through untimed, so a latency-only model
// (every occupancy zeroed) sees no queueing at all.
func (r *Resource) Acquire(t, occupancy Time) Time {
	if occupancy == 0 {
		r.acquires++
		if r.Observe != nil {
			r.Observe(t, t, 0)
		}
		return t
	}
	start := t
	if r.freeAt > start {
		start = r.freeAt
		r.queued += start - t
	}
	r.freeAt = start + occupancy
	r.busy += occupancy
	r.acquires++
	if r.Observe != nil {
		r.Observe(t, start, occupancy)
	}
	return start
}

// Busy returns the total occupancy served so far.
func (r *Resource) Busy() Time { return r.busy }

// Backlog reports how far the resource's committed occupancy extends past
// now — the instantaneous queue depth in time units (zero when the resource
// would serve a new transaction immediately).
func (r *Resource) Backlog(now Time) Time {
	if r.freeAt <= now {
		return 0
	}
	return r.freeAt - now
}

// Queued returns the total queueing delay inflicted so far.
func (r *Resource) Queued() Time { return r.queued }

// Acquires returns the number of transactions served.
func (r *Resource) Acquires() int64 { return r.acquires }

// Utilization reports busy time as a fraction of total elapsed time.
func (r *Resource) Utilization(elapsed Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(r.busy) / float64(elapsed)
}

// Reset clears the timeline and statistics.
func (r *Resource) Reset() {
	r.freeAt = 0
	r.busy = 0
	r.acquires = 0
	r.queued = 0
}
