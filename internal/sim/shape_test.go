package sim

import "testing"

// windowedShape runs a 4-proc, 4-shard workload with global sections (so
// windows, phase-1 chains, and commit chains all occur) under the fixed
// window policy and returns the schedule shape.
func windowedShape(t *testing.T, workers int) SchedShape {
	t.Helper()
	e := NewEngine(4, 500*Nanosecond)
	e.SetShards([]int{0, 1, 2, 3}, 4)
	e.SetWorkers(workers)
	var res Resource
	err := e.Run(func(p *Proc) {
		for i := 0; i < 500; i++ {
			p.Advance(Time(100+30*p.ID())*Nanosecond, StatBusy)
			p.AwaitGlobal()
			p.AdvanceTo(res.Acquire(p.Now(), 40), StatSync)
			p.EndGlobal()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return e.Shape()
}

// TestSchedShapeInvariants pins the internal consistency of the schedule-
// shape counters on a windowed run: the per-window counters must be
// consistent with the totals, SchedStats must agree with Shape, and the
// fixed policy's window widths must all equal the quantum.
func TestSchedShapeInvariants(t *testing.T) {
	e := NewEngine(4, 500*Nanosecond)
	e.SetShards([]int{0, 1, 2, 3}, 4)
	e.SetWorkers(2)
	var res Resource
	err := e.Run(func(p *Proc) {
		for i := 0; i < 500; i++ {
			p.Advance(Time(100+30*p.ID())*Nanosecond, StatBusy)
			p.AwaitGlobal()
			p.AdvanceTo(res.Acquire(p.Now(), 40), StatSync)
			p.EndGlobal()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s := e.Shape()
	if s.Windows <= 0 || s.ShardChains <= 0 || s.Commits <= 0 || s.CommitRuns <= 0 {
		t.Fatalf("workload was built to exercise every counter, shape %+v", s)
	}
	// Fixed policy: every windowed round is exactly one quantum wide.
	if want := Time(s.Windows) * 500 * Nanosecond; s.WindowWidthSum != want {
		t.Errorf("WindowWidthSum = %v, want Windows*quantum = %v", s.WindowWidthSum, want)
	}
	// A window dispatches at most one phase-1 chain per shard.
	if s.ShardChains > 4*s.Windows {
		t.Errorf("ShardChains = %d exceeds shards*Windows = %d", s.ShardChains, 4*s.Windows)
	}
	// SchedStats is the same schedule viewed through the narrow accessor.
	windows, chains, commits := e.SchedStats()
	if windows != s.Windows || chains != s.ShardChains || commits != s.Commits {
		t.Errorf("SchedStats() = (%d, %d, %d), Shape() = %+v", windows, chains, commits, s)
	}
}

// TestSchedShapeWorkerInvariance proves the shape counters are properties
// of the schedule, not of the host: a multi-shard windowed run reports a
// bit-identical SchedShape at 1, 2, and 8 workers, even though workers=1
// takes the in-chain turnover path and workers>1 the coordinator path.
func TestSchedShapeWorkerInvariance(t *testing.T) {
	base := windowedShape(t, 1)
	for _, w := range []int{2, 8} {
		if s := windowedShape(t, w); s != base {
			t.Errorf("workers=%d shape %+v != workers=1 shape %+v", w, s, base)
		}
	}
}

// TestSchedShapeRunAhead pins the run-ahead span's accounting: a run that
// never leaves the fast path (all processors in one shard, no global
// sections) opens no windows, merges no commit queues, and executes no
// serial commit chains — run-ahead execution counts toward none of the
// windowed counters.
func TestSchedShapeRunAhead(t *testing.T) {
	e := NewEngine(2, DefaultQuantum)
	e.SetShards([]int{0, 0}, 1)
	e.SetWorkers(2)
	err := e.Run(func(p *Proc) {
		for i := 0; i < 1000; i++ {
			p.Advance(10*Microsecond, StatBusy)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s := e.Shape()
	if s.RunAheadSpans < 1 {
		t.Fatalf("expected a run-ahead span, shape %+v", s)
	}
	if s.Windows != 0 || s.WindowWidthSum != 0 {
		t.Errorf("run-ahead-only run opened windows: %+v", s)
	}
	if s.Commits != 0 || s.CommitRuns != 0 {
		t.Errorf("run-ahead-only run reports commit activity: %+v", s)
	}
	if s.ShardChains != 0 {
		t.Errorf("run-ahead-only run dispatched phase-1 chains: %+v", s)
	}
}
