// Package sim provides a deterministic direct-execution discrete-event
// engine for multiprocessor performance simulation.
//
// Each simulated processor runs application code in its own goroutine and
// owns a virtual clock. Execution proceeds in conservative time windows:
// the engine repeatedly picks the window [T, T+W) that contains the
// smallest runnable clock (W is the window from NewEngine, the old
// scheduling quantum) and runs every processor whose clock falls inside it
// up to the window edge, in two phases:
//
//   - Phase 1 executes each shard's processors independently. A shard is a
//     statically assigned group of processors (SetShards; by default all
//     processors form one shard) whose simulated state is disjoint from
//     every other shard's, so shards may execute on different host cores
//     with no synchronization beyond the window barrier. Within a shard,
//     processors run one at a time in deterministic (clock, id) order. An
//     operation that would touch another shard's state calls AwaitGlobal,
//     which suspends the processor into the commit queue.
//
//   - Phase 2 (commit) is single-threaded: suspended processors resume in
//     deterministic (virtual time, proc) order and perform their
//     cross-shard operations, continuing until they block, finish, or
//     reach the window edge.
//
// The two-phase schedule is identical at any worker count (SetWorkers):
// phase 1 shards are state-disjoint so their relative execution order
// cannot affect results, and phase 2 is always serial. A run with 8 host
// workers is therefore bit-identical to a run with 1 — same clocks, same
// statistics, same event order within every shard and within commit.
//
// Control passes directly between processor goroutines (one channel
// handoff per switch) along per-shard chains and along the commit chain.
// Within a window, shard chains are claimed from a shared counter in shard
// order: a chain that runs dry immediately starts the next unclaimed
// shard's chain on the same host worker (work stealing), so the central
// Run loop is involved only at window boundaries, for deadlock detection,
// and for panic propagation. Which host worker executes a shard never
// affects results — shards are state-disjoint and the claim order is
// fixed — so stealing only moves wall-clock time around.
//
// # Run-ahead fast path
//
// Whenever every runnable processor belongs to a single shard — one
// processor alive anywhere, a sequential section of a parallel program, or
// any program on a single-shard engine — windowed scheduling is pure
// overhead: there is nothing to run concurrently and nothing to commit.
// The engine then collapses into a run-ahead mode: the shard's runnable
// processors form one (clock, id) heap, and control passes directly from
// processor to processor, each running until it has advanced a window's
// width past the next-lowest runnable clock. This is the direct-handoff
// schedule of the original serial engine, with no window bookkeeping and
// no coordinator round-trips. The mode is entered and exited on conditions
// that are pure functions of the deterministic simulation state (the
// runnable set and its shard assignment — never the worker count or host
// timing), so results remain bit-identical at any worker count. Waking a
// processor of another shard ends the mode at the waker's next yield.
//
// # Adaptive windows
//
// With SetAdaptiveWindow the window width is resized at each window open
// from observables of the committed schedule itself (how many shard chains
// ran, how many processors crossed shards, how often the serial commit
// chain resumed since the previous open): spans with no cross-shard work
// or with phase 1 running underfilled widen the window — turnover is pure
// overhead there — and commit-heavy spans at full phase-1 occupancy shrink
// it back toward the base width. The inputs are virtual-time quantities,
// identical at any worker count, so the resulting schedule is too (see
// AdaptWindow).
//
// Shared hardware resources (memory controllers, network routers, ...) are
// modeled as Resource timelines: a transaction occupies a resource for some
// duration and queues behind earlier transactions, which is how the engine
// models contention.
//
// # Deterministic tie-breaks
//
// Every scheduling decision in the engine breaks virtual-time ties by
// processor id, so two runs of the same program produce identical virtual
// times and statistics:
//
//   - shard run order (phase 1): (clock, id) min-heap per shard
//   - commit order (phase 2): (suspend time, id) min-heap
//   - commit fast path: the running processor keeps executing only while
//     it is strictly (clock, id)-less than the commit-queue minimum
//   - run-ahead handoff order: the same (clock, id) heap
//   - deadlock reports: blocked ids sorted ascending
//   - panic propagation: when several shards panic in one window, the
//     panic from the lowest processor id is re-raised
package sim

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Time is a point or duration in virtual time, in picoseconds. Picoseconds
// keep processor cycles at non-round frequencies (e.g. 195 MHz) integral.
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// maxTime is the run-ahead limit of a processor with no runnable peers.
const maxTime Time = 1<<62 - 1

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Nanoseconds reports t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t)/int64(Nanosecond))
	}
}

// StatKind selects the execution-time bucket a duration is charged to,
// matching the paper's three-way breakdown (Section 3).
type StatKind int

const (
	// StatBusy is useful computation.
	StatBusy StatKind = iota
	// StatMemory is stall time waiting for cache misses.
	StatMemory
	// StatSync is time spent at synchronization events (wait + overhead).
	StatSync
	numStats
)

func (k StatKind) String() string {
	switch k {
	case StatBusy:
		return "Busy"
	case StatMemory:
		return "Memory"
	case StatSync:
		return "Sync"
	}
	return fmt.Sprintf("StatKind(%d)", int(k))
}

// DefaultQuantum is the default window width W. Processors inside a window
// may run up to W ahead of each other before the window barrier reorders
// them; smaller windows order resource acquisitions more precisely, larger
// windows run faster. (The name survives from the pre-windowed engine,
// whose run-ahead quantum played the same accuracy-vs-speed role with the
// same default.)
const DefaultQuantum = 1 * Microsecond

// Proc execution modes within a window.
const (
	// modePhase1: running inside its shard, restricted to shard-local state.
	modePhase1 int8 = iota
	// modeCommit: running in the serial commit phase (or the run-ahead fast
	// path), free to touch any state.
	modeCommit
)

type eventKind int

const (
	// evChainDone: a phase-1 shard chain, the commit chain, or the
	// run-ahead chain ran dry.
	evChainDone eventKind = iota
	// evPanic: a processor's body panicked; terminates its chain.
	evPanic
)

type yieldEvent struct {
	p     *Proc
	kind  eventKind
	shard int // chain identity: shard index, or -1 for the commit chain
	err   any // panic value when kind == evPanic
}

// abandonRun is panicked by parked processor goroutines when the engine
// abandons a run (deadlock or propagated panic) so their stacks unwind and
// the goroutines exit instead of leaking.
type abandonRun struct{}

// Engine coordinates a set of simulated processors.
type Engine struct {
	procs   []*Proc
	window  Time // current window width W
	workers int  // max concurrently executing shard chains in phase 1

	// Adaptive window sizing (SetAdaptiveWindow). The marks snapshot the
	// shape counters at the previous window open; the deltas are the
	// observables AdaptWindow resizes from.
	windowBase  Time // NewEngine's quantum: the fixed width, and the adaptive floor
	windowMax   Time // adaptive ceiling
	adaptive    bool
	markChains  int64
	markCommits int64
	markRuns    int64

	numShards  int
	shardHeaps []procHeap // phase-1 run queues, one per shard
	staged     [][]*Proc  // per-shard AwaitGlobal arrivals, merged at the phase barrier
	commit     procHeap   // phase-2 queue, ordered (suspend time, id)
	commitSeq  int64      // total commits so far; stamps Proc.seq at merge

	windowEnd Time // current window edge (exclusive); maxTime in run-ahead mode

	// Run-ahead fast path: every runnable processor is in shard raShard and
	// control passes directly between them through the shard's heap. raExit
	// is set when a cross-shard wake invalidates the mode's precondition.
	runAhead bool
	raShard  int
	raExit   bool

	// stealNext is the next shard index to claim for phase 1. Dispatch
	// claims shards in index order; a dying chain claims the next one
	// itself instead of round-tripping through the coordinator. Atomic
	// because chains of different shards race to claim; the claim order —
	// and therefore the schedule — is fixed regardless of who wins.
	stealNext atomic.Int64

	// Scheduling-shape statistics (deterministic: derived from the
	// schedule, not from host timing). windows counts windowed rounds,
	// shardChains the phase-1 chains dispatched across them — their ratio
	// is the average number of chains a window offers to run concurrently.
	// shardChains is atomic only because concurrent chains increment it;
	// its total is schedule-determined.
	windows     int64
	shardChains atomic.Int64
	commitRuns  int64 // commit-chain resumes (always serial)
	widthSum    Time  // total width of windowed rounds
	raSpans     int64 // run-ahead mode entries
	raHandoffs  int64 // direct handoffs inside run-ahead mode

	// Quiescent hook (SetQuiescentHook): called at every round open — the
	// only points where every processor is parked and a consistent snapshot
	// of the machine exists. quiesSeq counts round opens; it is carried
	// across Run calls (multi-phase programs) and reset by Reset, so it
	// addresses rounds stably across an entire experiment.
	quiescent QuiescentHook
	quiesSeq  int64

	// Host-time profiler (SetHostProfiler): nil when profiling is off.
	// Strictly observational — see hostprof.go for the contract.
	prof HostProfiler

	yieldCh   chan yieldEvent
	abandoned bool // set before resuming parked goroutines to unwind them
	wg        sync.WaitGroup
}

// NewEngine creates an engine with n processors and the given window width
// (DefaultQuantum if quantum <= 0). The engine starts with one shard
// containing every processor and one worker; see SetShards and SetWorkers.
func NewEngine(n int, quantum Time) *Engine {
	if n <= 0 {
		panic("sim: engine needs at least one processor")
	}
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	e := &Engine{
		window:     quantum,
		windowBase: quantum,
		workers:    1,
		yieldCh:    make(chan yieldEvent),
	}
	e.procs = make([]*Proc, n)
	for i := range e.procs {
		e.procs[i] = &Proc{
			id: i,
			e:  e,
			// Buffered so a yielding goroutine hands control off
			// without waiting for the next goroutine to be
			// scheduled; at most one token is ever outstanding.
			resume:    make(chan struct{}, 1),
			heapIndex: -1,
		}
	}
	e.setShardCount(1)
	return e
}

// SetShards assigns processor i to shard shardOf[i] (0 <= shard < n).
// Shards must partition simulated state: a processor running in phase 1
// may only touch state owned by its own shard, and must call AwaitGlobal
// before any operation that crosses shards. Call before Run.
func (e *Engine) SetShards(shardOf []int, n int) {
	if len(shardOf) != len(e.procs) {
		panic("sim: SetShards length mismatch")
	}
	if n < 1 {
		n = 1
	}
	for i, s := range shardOf {
		if s < 0 || s >= n {
			panic("sim: SetShards shard index out of range")
		}
		e.procs[i].shard = s
	}
	e.setShardCount(n)
}

func (e *Engine) setShardCount(n int) {
	e.numShards = n
	e.shardHeaps = make([]procHeap, n)
	e.staged = make([][]*Proc, n)
}

// NumShards reports the number of shards.
func (e *Engine) NumShards() int { return e.numShards }

// SetWorkers bounds how many shard chains execute concurrently in phase 1.
// Results are bit-identical at any worker count; 1 (the default) is the
// serial reference schedule.
func (e *Engine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	e.workers = n
}

// Workers reports the phase-1 worker bound.
func (e *Engine) Workers() int { return e.workers }

// Window reports the current window width W (the base width unless
// adaptive sizing has resized it).
func (e *Engine) Window() Time { return e.window }

// SetAdaptiveWindow lets the engine resize the window between the base
// width (NewEngine's quantum) and max (0 selects 64x the base) using the
// AdaptWindow policy. The policy's inputs are virtual-time observables of
// the committed schedule, so the resulting schedule — like everything else
// in the engine — is bit-identical at any worker count. Call before Run.
func (e *Engine) SetAdaptiveWindow(max Time) {
	if max <= 0 {
		max = 64 * e.windowBase
	}
	if max < e.windowBase {
		max = e.windowBase
	}
	e.adaptive = true
	e.windowMax = max
}

// Adaptive reports whether adaptive window sizing is enabled.
func (e *Engine) Adaptive() bool { return e.adaptive }

// NumProcs reports the number of simulated processors.
func (e *Engine) NumProcs() int { return len(e.procs) }

// Proc returns processor i.
func (e *Engine) Proc(i int) *Proc { return e.procs[i] }

// Procs returns all processors, ordered by id.
func (e *Engine) Procs() []*Proc { return e.procs }

// DeadlockError reports that no processor was runnable before all finished.
type DeadlockError struct {
	// Blocked lists the ids of processors stuck in Block.
	Blocked []int
}

func (d *DeadlockError) Error() string {
	ids := make([]string, len(d.Blocked))
	for i, id := range d.Blocked {
		ids[i] = fmt.Sprint(id)
	}
	return "sim: deadlock, blocked processors: " + strings.Join(ids, ",")
}

// Run executes body once per processor under the virtual-time scheduler and
// returns when all processors have finished. It returns a *DeadlockError if
// every unfinished processor is blocked. Panics inside body are re-raised on
// the caller's goroutine.
//
// Run may be called repeatedly; virtual clocks and statistics carry over, so
// successive phases accumulate. Use Reset to start fresh.
func (e *Engine) Run(body func(p *Proc)) error {
	e.abandoned = false
	e.runAhead = false
	e.raExit = false
	e.commit = e.commit[:0]
	for s := range e.shardHeaps {
		e.shardHeaps[s] = e.shardHeaps[s][:0]
		e.staged[s] = e.staged[s][:0]
	}
	for _, p := range e.procs {
		p.finished = false
		p.blocked = false
		p.mode = modePhase1
		p.global = 0
		p.heapIndex = -1
		e.wg.Add(1)
		go e.runProc(p, body)
	}
	for {
		// Between windows every live processor is parked: finished,
		// blocked in Block, or runnable and waiting for its next window.
		if e.prof != nil {
			e.prof.SerialBegin(SerialTurnover)
		}
		runnable, finished := 0, 0
		var minNow Time = maxTime
		loneShard, oneShard := -1, true
		quiet := true
		for _, p := range e.procs {
			if p.finished {
				finished++
				continue
			}
			if p.global > 0 {
				quiet = false
			}
			if p.blocked {
				continue
			}
			runnable++
			if p.now < minNow {
				minNow = p.now
			}
			if loneShard < 0 {
				loneShard = p.shard
			} else if p.shard != loneShard {
				oneShard = false
			}
		}
		if finished == len(e.procs) {
			if e.prof != nil {
				e.prof.SerialEnd(SerialTurnover)
			}
			return nil
		}
		if runnable == 0 {
			if e.prof != nil {
				e.prof.SerialEnd(SerialTurnover)
			}
			return e.deadlock()
		}
		e.quiesce(minNow, quiet, true)
		if oneShard {
			// Run-ahead fast path: every runnable processor is in one
			// shard, so windowing has nothing to order. Control passes
			// directly between the shard's processors until a cross-shard
			// wake re-populates another shard.
			if e.prof != nil {
				e.prof.SerialEnd(SerialTurnover)
			}
			e.enterRunAhead(loneShard)
			e.awaitChains(1)
			continue
		}

		e.openWindow(minNow)
		if e.prof != nil {
			e.prof.SerialEnd(SerialTurnover)
		}

		// Phase 1: claim shard chains in index order, up to the worker
		// bound; each dying chain claims the next itself (work stealing),
		// so one evChainDone arrives per initial claim.
		outstanding := 0
		for outstanding < e.workers && e.startNextChain(outstanding, false) {
			outstanding++
		}
		for outstanding > 0 {
			ev := <-e.yieldCh
			outstanding--
			if ev.kind == evPanic {
				e.propagate(ev, outstanding)
			}
		}

		// Phase barrier: merge the shards' AwaitGlobal arrivals into the
		// commit queue. The heap orders commits by (suspend time, id), so
		// the merge result is independent of shard execution order; the
		// shard-major visit order only assigns the diagnostic seq stamps.
		for s := range e.staged {
			for _, p := range e.staged[s] {
				e.commitSeq++
				p.seq = e.commitSeq
				e.commit.push(p)
			}
			e.staged[s] = e.staged[s][:0]
		}

		// Phase 2: one serial commit chain in (suspend time, id) order.
		if len(e.commit) > 0 {
			e.commitRuns++
			p := e.commit.pop()
			p.mode = modeCommit
			p.limit = e.windowEnd - 1
			if e.prof != nil {
				e.prof.SerialBegin(SerialCommit)
			}
			p.resume <- struct{}{}
			e.awaitChains(1)
		}
	}
}

// openWindow opens the window [T, T+W) around the smallest runnable clock
// minNow and queues every in-window processor: the commit heap for open
// global sections (their cross-shard operation spans the window edge, or
// they were woken mid-protocol — they must stay serialized), the shard
// heaps for everyone else. With adaptive sizing enabled it first resizes W
// from the schedule observed since the previous open. Runs with no chain
// executing (the coordinator between rounds, or the last chain of the
// previous window during turnover).
func (e *Engine) openWindow(minNow Time) {
	if e.adaptive {
		chains := e.shardChains.Load()
		if e.windows > 0 {
			e.window = AdaptWindow(e.window, e.windowBase, e.windowMax, WindowObs{
				Chains:     chains - e.markChains,
				Commits:    e.commitSeq - e.markCommits,
				CommitRuns: e.commitRuns - e.markRuns,
				Shards:     int64(e.numShards),
			})
		}
		e.markChains = chains
		e.markCommits = e.commitSeq
		e.markRuns = e.commitRuns
	}
	T := minNow - minNow%e.window
	e.windowEnd = T + e.window
	e.windows++
	e.widthSum += e.window
	for _, q := range e.procs {
		if q.finished || q.blocked || q.now >= e.windowEnd {
			continue
		}
		if q.global > 0 {
			q.mode = modeCommit
			e.commit.push(q)
		} else {
			e.shardHeaps[q.shard].push(q)
		}
	}
	e.stealNext.Store(0)
	if e.prof != nil {
		backlog := 0
		for s := range e.shardHeaps {
			if len(e.shardHeaps[s]) > 0 {
				backlog++
			}
		}
		e.prof.WindowOpen(e.window, backlog, len(e.commit))
	}
}

// startNextChain claims undispatched shards in index order until it finds
// one with queued work, dispatches that shard's chain by resuming its
// (clock, id) minimum on the given lane, and reports whether a chain was
// started. Safe to call from concurrent chains: the claim counter hands
// each shard to exactly one caller, and only that caller touches the
// shard's heap. steal marks calls from a dying chain (profiling only — the
// claim semantics are identical).
func (e *Engine) startNextChain(lane int, steal bool) bool {
	for {
		s := int(e.stealNext.Add(1)) - 1
		if s >= e.numShards {
			if e.prof != nil && steal {
				e.prof.StealAttempt(lane, false)
			}
			return false
		}
		h := &e.shardHeaps[s]
		if len(*h) == 0 {
			continue
		}
		p := h.pop()
		p.lane = lane
		p.mode = modePhase1
		p.limit = e.windowEnd - 1
		e.shardChains.Add(1)
		if e.prof != nil {
			if steal {
				e.prof.StealAttempt(lane, true)
			}
			e.prof.ChainBegin(lane)
		}
		p.resume <- struct{}{}
		return true
	}
}

// enterRunAhead collapses the engine into the run-ahead fast path: every
// runnable processor (all in shard s) joins the shard's heap and the
// minimum runs first. Callable from the coordinator or from the last chain
// of a dying window (turnover).
func (e *Engine) enterRunAhead(s int) {
	e.runAhead = true
	e.raExit = false
	e.raShard = s
	e.raSpans++
	e.windowEnd = maxTime
	h := &e.shardHeaps[s]
	for _, p := range e.procs {
		if !p.finished && !p.blocked {
			h.push(p)
		}
	}
	if e.prof != nil {
		e.prof.SerialBegin(SerialRunAhead)
	}
	e.raResume()
}

// raResume pops the run-ahead heap's minimum and resumes it, allowed to
// run one window width past the next-lowest runnable clock (unbounded when
// it has no runnable peer).
func (e *Engine) raResume() {
	h := &e.shardHeaps[e.raShard]
	q := h.pop()
	q.mode = modeCommit
	if len(*h) > 0 {
		q.limit = (*h)[0].now + e.window - 1
	} else {
		q.limit = maxTime
	}
	q.resume <- struct{}{}
}

// singleChain reports whether at most one chain can ever be executing, so
// a dying chain may continue the schedule in-chain (see Proc.chainStep)
// instead of waking the coordinator: either the engine has a single shard,
// or phase 1 is limited to one worker.
func (e *Engine) singleChain() bool {
	return e.workers == 1 || e.numShards == 1
}

// turnover opens the next scheduling round from inside the chain
// (singleChain engines only): when the last chain of a window runs dry the
// window is over, and the chain itself can start the next one — or enter
// the run-ahead fast path — skipping two coordinator round-trips per
// round. The decision inputs (the runnable set and its shards) and the
// dispatch order are exactly the coordinator's, so the schedule is
// unchanged. Returns false (the caller then wakes the coordinator) when
// the run is over or deadlocked: finish and deadlock reporting stay with
// the coordinator.
func (e *Engine) turnover() bool {
	if e.prof != nil {
		e.prof.SerialBegin(SerialTurnover)
	}
	runnable := 0
	var minNow Time = maxTime
	loneShard, oneShard := -1, true
	quiet := true
	for _, q := range e.procs {
		if q.finished {
			continue
		}
		if q.global > 0 {
			quiet = false
		}
		if q.blocked {
			continue
		}
		runnable++
		if q.now < minNow {
			minNow = q.now
		}
		if loneShard < 0 {
			loneShard = q.shard
		} else if q.shard != loneShard {
			oneShard = false
		}
	}
	if runnable == 0 {
		if e.prof != nil {
			e.prof.SerialEnd(SerialTurnover)
		}
		return false
	}
	e.quiesce(minNow, quiet, false)
	if oneShard {
		if e.prof != nil {
			e.prof.SerialEnd(SerialTurnover)
		}
		e.enterRunAhead(loneShard)
		return true
	}
	e.openWindow(minNow)
	if e.prof != nil {
		e.prof.SerialEnd(SerialTurnover)
	}
	// Turnover runs in-chain only on singleChain engines, where at most one
	// chain ever executes: the next chain is always lane 0.
	if e.startNextChain(0, false) {
		return true
	}
	// Every processor in the window is inside an open global section: the
	// window is all commit phase.
	e.commitRuns++
	q := e.commit.pop()
	q.mode = modeCommit
	q.limit = e.windowEnd - 1
	if e.prof != nil {
		e.prof.SerialBegin(SerialCommit)
	}
	q.resume <- struct{}{}
	return true
}

// SchedStats reports the schedule's shape: windowed rounds executed,
// phase-1 shard chains dispatched across them, and processors merged into
// commit queues. shardChains/windows is the average number of chains a
// window offered to run concurrently — the schedule's available
// parallelism, identical at any worker count. Run-ahead execution counts
// toward none of these (see Shape).
func (e *Engine) SchedStats() (windows, shardChains, commits int64) {
	return e.windows, e.shardChains.Load(), e.commitSeq
}

// SchedShape is the engine's full scheduling-shape report. Every field is
// derived from the deterministic schedule — never from host timing — so it
// is bit-identical at any worker count.
type SchedShape struct {
	Windows          int64 // windowed rounds executed
	ShardChains      int64 // phase-1 chains dispatched across them
	Commits          int64 // processors merged into commit queues
	CommitRuns       int64 // serial commit-chain resumes
	RunAheadSpans    int64 // entries into the run-ahead fast path
	RunAheadHandoffs int64 // direct processor handoffs inside run-ahead spans
	WindowWidthSum   Time  // total width of windowed rounds (avg = sum/Windows)
}

// Shape reports the schedule's shape counters.
func (e *Engine) Shape() SchedShape {
	return SchedShape{
		Windows:          e.windows,
		ShardChains:      e.shardChains.Load(),
		Commits:          e.commitSeq,
		CommitRuns:       e.commitRuns,
		RunAheadSpans:    e.raSpans,
		RunAheadHandoffs: e.raHandoffs,
		WindowWidthSum:   e.widthSum,
	}
}

// awaitChains waits for n chains to terminate, re-raising on panic events.
func (e *Engine) awaitChains(n int) {
	for n > 0 {
		ev := <-e.yieldCh
		n--
		if ev.kind == evPanic {
			e.propagate(ev, n)
		}
	}
}

// propagate drains the remaining outstanding chains after a panic, picks
// the deterministic winner when several shards panicked in the same window
// (lowest processor id), unwinds every parked goroutine, and re-raises.
// It never returns.
func (e *Engine) propagate(first yieldEvent, outstanding int) {
	winner := first
	for outstanding > 0 {
		ev := <-e.yieldCh
		outstanding--
		if ev.kind == evPanic && ev.p.id < winner.p.id {
			winner = ev
		}
	}
	e.release()
	panic(winner.err)
}

// deadlock collects the blocked processor set and releases every parked
// goroutine so none leak.
func (e *Engine) deadlock() error {
	d := &DeadlockError{}
	for _, p := range e.procs {
		if p.blocked {
			d.Blocked = append(d.Blocked, p.id)
		}
	}
	sort.Ints(d.Blocked)
	e.release()
	return d
}

// release unwinds every parked processor goroutine (they observe the
// abandoned flag, panic abandonRun, and exit) and waits for them, so no
// stale goroutine can steal a resume token from a later Run. It must only
// be called from Run with no chain executing: every unfinished processor
// is then parked on its resume channel. (Panicked processors are marked
// finished before their event is sent.)
func (e *Engine) release() {
	e.abandoned = true
	for _, p := range e.procs {
		if !p.finished {
			p.resume <- struct{}{}
		}
	}
	e.wg.Wait()
	e.runAhead = false
	e.commit = e.commit[:0]
	for s := range e.shardHeaps {
		e.shardHeaps[s] = e.shardHeaps[s][:0]
		e.staged[s] = e.staged[s][:0]
	}
	for _, p := range e.procs {
		p.heapIndex = -1
	}
}

func (e *Engine) runProc(p *Proc, body func(*Proc)) {
	defer e.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abandonRun); ok {
				return // run abandoned (deadlock/panic); just exit
			}
			p.finished = true
			e.yieldCh <- yieldEvent{p: p, kind: evPanic, shard: p.shard, err: r}
		}
	}()
	p.park()
	if e.prof != nil {
		// With profiling on, label the goroutine so CPU profiles attribute
		// samples to the simulated processor and its shard. Labels are
		// host-side metadata only; the schedule cannot observe them.
		pprof.Do(context.Background(),
			pprof.Labels("sim_proc", strconv.Itoa(p.id), "sim_shard", strconv.Itoa(p.shard)),
			func(context.Context) { body(p) })
	} else {
		body(p)
	}
	p.finished = true
	p.chainStep()
}

// MaxTime returns the largest processor clock: the parallel completion time.
func (e *Engine) MaxTime() Time {
	var m Time
	for _, p := range e.procs {
		if p.now > m {
			m = p.now
		}
	}
	return m
}

// Reset zeroes every processor's clock and statistics, preparing the engine
// for an independent run.
func (e *Engine) Reset() {
	for _, p := range e.procs {
		p.now = 0
		p.limit = 0
		p.blocked = false
		p.finished = false
		p.mode = modePhase1
		p.global = 0
		p.seq = 0
		for k := range p.stats {
			p.stats[k] = 0
		}
		p.Counters = Counters{}
	}
	e.window = e.windowBase
	e.quiesSeq = 0
	e.commitSeq = 0
	e.windows = 0
	e.shardChains.Store(0)
	e.commitRuns = 0
	e.widthSum = 0
	e.raSpans = 0
	e.raHandoffs = 0
	e.markChains = 0
	e.markCommits = 0
	e.markRuns = 0
}
