// Package sim provides a deterministic direct-execution discrete-event
// engine for multiprocessor performance simulation.
//
// Each simulated processor runs application code in its own goroutine and
// owns a virtual clock. Execution proceeds in conservative time windows:
// the engine repeatedly picks the window [T, T+W) that contains the
// smallest runnable clock (W is the window from NewEngine, the old
// scheduling quantum) and runs every processor whose clock falls inside it
// up to the window edge, in two phases:
//
//   - Phase 1 executes each shard's processors independently. A shard is a
//     statically assigned group of processors (SetShards; by default all
//     processors form one shard) whose simulated state is disjoint from
//     every other shard's, so shards may execute on different host cores
//     with no synchronization beyond the window barrier. Within a shard,
//     processors run one at a time in deterministic (clock, id) order. An
//     operation that would touch another shard's state calls AwaitGlobal,
//     which suspends the processor into the commit queue.
//
//   - Phase 2 (commit) is single-threaded: suspended processors resume in
//     deterministic (virtual time, proc) order and perform their
//     cross-shard operations, continuing until they block, finish, or
//     reach the window edge.
//
// The two-phase schedule is identical at any worker count (SetWorkers):
// phase 1 shards are state-disjoint so their relative execution order
// cannot affect results, and phase 2 is always serial. A run with 8 host
// workers is therefore bit-identical to a run with 1 — same clocks, same
// statistics, same event order within every shard and within commit.
//
// Control passes directly between processor goroutines (one channel
// handoff per switch) along per-shard chains and along the commit chain;
// the central Run loop is involved once per chain per window, at window
// boundaries, for deadlock detection, and for panic propagation.
//
// When exactly one processor is runnable the engine enters an inline mode
// with no window bookkeeping at all, so sequential executions (and the
// sequential sections of parallel ones) pay no windowing overhead.
//
// Shared hardware resources (memory controllers, network routers, ...) are
// modeled as Resource timelines: a transaction occupies a resource for some
// duration and queues behind earlier transactions, which is how the engine
// models contention.
//
// # Deterministic tie-breaks
//
// Every scheduling decision in the engine breaks virtual-time ties by
// processor id, so two runs of the same program produce identical virtual
// times and statistics:
//
//   - shard run order (phase 1): (clock, id) min-heap per shard
//   - commit order (phase 2): (suspend time, id) min-heap
//   - commit fast path: the running processor keeps executing only while
//     it is strictly (clock, id)-less than the commit-queue minimum
//   - deadlock reports: blocked ids sorted ascending
//   - panic propagation: when several shards panic in one window, the
//     panic from the lowest processor id is re-raised
package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Time is a point or duration in virtual time, in picoseconds. Picoseconds
// keep processor cycles at non-round frequencies (e.g. 195 MHz) integral.
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// maxTime is the run-ahead limit of a processor with no runnable peers.
const maxTime Time = 1<<62 - 1

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Nanoseconds reports t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t)/int64(Nanosecond))
	}
}

// StatKind selects the execution-time bucket a duration is charged to,
// matching the paper's three-way breakdown (Section 3).
type StatKind int

const (
	// StatBusy is useful computation.
	StatBusy StatKind = iota
	// StatMemory is stall time waiting for cache misses.
	StatMemory
	// StatSync is time spent at synchronization events (wait + overhead).
	StatSync
	numStats
)

func (k StatKind) String() string {
	switch k {
	case StatBusy:
		return "Busy"
	case StatMemory:
		return "Memory"
	case StatSync:
		return "Sync"
	}
	return fmt.Sprintf("StatKind(%d)", int(k))
}

// DefaultQuantum is the default window width W. Processors inside a window
// may run up to W ahead of each other before the window barrier reorders
// them; smaller windows order resource acquisitions more precisely, larger
// windows run faster. (The name survives from the pre-windowed engine,
// whose run-ahead quantum played the same accuracy-vs-speed role with the
// same default.)
const DefaultQuantum = 1 * Microsecond

// Proc execution modes within a window.
const (
	// modePhase1: running inside its shard, restricted to shard-local state.
	modePhase1 int8 = iota
	// modeCommit: running in the serial commit phase (or inline mode),
	// free to touch any state.
	modeCommit
)

type eventKind int

const (
	// evChainDone: a phase-1 shard chain or the commit chain ran dry.
	evChainDone eventKind = iota
	// evPanic: a processor's body panicked; terminates its chain.
	evPanic
)

type yieldEvent struct {
	p     *Proc
	kind  eventKind
	shard int // chain identity: shard index, or -1 for the commit chain
	err   any // panic value when kind == evPanic
}

// abandonRun is panicked by parked processor goroutines when the engine
// abandons a run (deadlock or propagated panic) so their stacks unwind and
// the goroutines exit instead of leaking.
type abandonRun struct{}

// Engine coordinates a set of simulated processors.
type Engine struct {
	procs   []*Proc
	window  Time // window width W (NewEngine's quantum)
	workers int  // max concurrently executing shard chains in phase 1

	numShards  int
	shardHeaps []procHeap // phase-1 run queues, one per shard
	staged     [][]*Proc  // per-shard AwaitGlobal arrivals, merged at the phase barrier
	commit     procHeap   // phase-2 queue, ordered (suspend time, id)
	commitSeq  int64      // total commits so far; stamps Proc.seq at merge

	windowEnd Time // current window edge (exclusive); maxTime in inline mode
	inline    bool // exactly one runnable processor: no windowing at all

	// Scheduling-shape statistics (deterministic: derived from the
	// schedule, not from host timing). windows counts windowed rounds,
	// shardChains the phase-1 chains dispatched across them — their ratio
	// is the average number of chains a window offers to run concurrently.
	windows     int64
	shardChains int64

	yieldCh   chan yieldEvent
	abandoned bool // set before resuming parked goroutines to unwind them
	wg        sync.WaitGroup
}

// NewEngine creates an engine with n processors and the given window width
// (DefaultQuantum if quantum <= 0). The engine starts with one shard
// containing every processor and one worker; see SetShards and SetWorkers.
func NewEngine(n int, quantum Time) *Engine {
	if n <= 0 {
		panic("sim: engine needs at least one processor")
	}
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	e := &Engine{
		window:  quantum,
		workers: 1,
		yieldCh: make(chan yieldEvent),
	}
	e.procs = make([]*Proc, n)
	for i := range e.procs {
		e.procs[i] = &Proc{
			id: i,
			e:  e,
			// Buffered so a yielding goroutine hands control off
			// without waiting for the next goroutine to be
			// scheduled; at most one token is ever outstanding.
			resume:    make(chan struct{}, 1),
			heapIndex: -1,
		}
	}
	e.setShardCount(1)
	return e
}

// SetShards assigns processor i to shard shardOf[i] (0 <= shard < n).
// Shards must partition simulated state: a processor running in phase 1
// may only touch state owned by its own shard, and must call AwaitGlobal
// before any operation that crosses shards. Call before Run.
func (e *Engine) SetShards(shardOf []int, n int) {
	if len(shardOf) != len(e.procs) {
		panic("sim: SetShards length mismatch")
	}
	if n < 1 {
		n = 1
	}
	for i, s := range shardOf {
		if s < 0 || s >= n {
			panic("sim: SetShards shard index out of range")
		}
		e.procs[i].shard = s
	}
	e.setShardCount(n)
}

func (e *Engine) setShardCount(n int) {
	e.numShards = n
	e.shardHeaps = make([]procHeap, n)
	e.staged = make([][]*Proc, n)
}

// NumShards reports the number of shards.
func (e *Engine) NumShards() int { return e.numShards }

// SetWorkers bounds how many shard chains execute concurrently in phase 1.
// Results are bit-identical at any worker count; 1 (the default) is the
// serial reference schedule.
func (e *Engine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	e.workers = n
}

// Workers reports the phase-1 worker bound.
func (e *Engine) Workers() int { return e.workers }

// Window reports the window width W.
func (e *Engine) Window() Time { return e.window }

// NumProcs reports the number of simulated processors.
func (e *Engine) NumProcs() int { return len(e.procs) }

// Proc returns processor i.
func (e *Engine) Proc(i int) *Proc { return e.procs[i] }

// Procs returns all processors, ordered by id.
func (e *Engine) Procs() []*Proc { return e.procs }

// DeadlockError reports that no processor was runnable before all finished.
type DeadlockError struct {
	// Blocked lists the ids of processors stuck in Block.
	Blocked []int
}

func (d *DeadlockError) Error() string {
	ids := make([]string, len(d.Blocked))
	for i, id := range d.Blocked {
		ids[i] = fmt.Sprint(id)
	}
	return "sim: deadlock, blocked processors: " + strings.Join(ids, ",")
}

// Run executes body once per processor under the virtual-time scheduler and
// returns when all processors have finished. It returns a *DeadlockError if
// every unfinished processor is blocked. Panics inside body are re-raised on
// the caller's goroutine.
//
// Run may be called repeatedly; virtual clocks and statistics carry over, so
// successive phases accumulate. Use Reset to start fresh.
func (e *Engine) Run(body func(p *Proc)) error {
	e.abandoned = false
	e.inline = false
	e.commit = e.commit[:0]
	for s := range e.shardHeaps {
		e.shardHeaps[s] = e.shardHeaps[s][:0]
		e.staged[s] = e.staged[s][:0]
	}
	for _, p := range e.procs {
		p.finished = false
		p.blocked = false
		p.mode = modePhase1
		p.global = 0
		p.heapIndex = -1
		e.wg.Add(1)
		go e.runProc(p, body)
	}
	for {
		// Between windows every live processor is parked: finished,
		// blocked in Block, or runnable and waiting for its next window.
		runnable, finished := 0, 0
		var minNow Time = maxTime
		var lone *Proc
		for _, p := range e.procs {
			switch {
			case p.finished:
				finished++
			case !p.blocked:
				runnable++
				lone = p
				if p.now < minNow {
					minNow = p.now
				}
			}
		}
		if finished == len(e.procs) {
			return nil
		}
		if runnable == 0 {
			return e.deadlock()
		}
		if runnable == 1 {
			// Inline mode: a single runnable processor needs no
			// windowing. It runs until it finishes, blocks, or wakes a
			// peer (which ends inline mode at its next advance).
			e.inline = true
			e.windowEnd = maxTime
			lone.mode = modeCommit
			lone.limit = maxTime
			lone.resume <- struct{}{}
			e.awaitChains(1)
			e.inline = false
			continue
		}

		// Window [T, T+W) around the smallest runnable clock. Windows
		// with no runnable clocks are never scheduled.
		T := minNow - minNow%e.window
		e.windowEnd = T + e.window

		// Phase 1: per-shard chains over the processors inside the window.
		// A processor inside an open global section (its cross-shard
		// operation spans the window edge, or it was woken mid-protocol)
		// must stay serialized: it skips phase 1 and rejoins the commit
		// chain directly.
		for _, p := range e.procs {
			if p.finished || p.blocked || p.now >= e.windowEnd {
				continue
			}
			if p.global > 0 {
				p.mode = modeCommit
				e.commit.push(p)
			} else {
				e.shardHeaps[p.shard].push(p)
			}
		}
		e.windows++
		dispatched := 0
		outstanding := 0
		for dispatched < e.numShards && outstanding < e.workers {
			if e.startShard(dispatched) {
				outstanding++
			}
			dispatched++
		}
		for outstanding > 0 {
			ev := <-e.yieldCh
			outstanding--
			if ev.kind == evPanic {
				e.propagate(ev, outstanding)
			}
			for dispatched < e.numShards && outstanding < e.workers {
				if e.startShard(dispatched) {
					outstanding++
				}
				dispatched++
			}
		}

		// Phase barrier: merge the shards' AwaitGlobal arrivals into the
		// commit queue. The heap orders commits by (suspend time, id), so
		// the merge result is independent of shard execution order; the
		// shard-major visit order only assigns the diagnostic seq stamps.
		for s := range e.staged {
			for _, p := range e.staged[s] {
				e.commitSeq++
				p.seq = e.commitSeq
				e.commit.push(p)
			}
			e.staged[s] = e.staged[s][:0]
		}

		// Phase 2: one serial commit chain in (suspend time, id) order.
		if len(e.commit) > 0 {
			p := e.commit.pop()
			p.mode = modeCommit
			p.limit = e.windowEnd - 1
			p.resume <- struct{}{}
			e.awaitChains(1)
		}
	}
}

// startShard dispatches shard s's phase-1 chain by resuming its (clock, id)
// minimum, reporting whether the shard had any work.
func (e *Engine) startShard(s int) bool {
	h := &e.shardHeaps[s]
	if len(*h) == 0 {
		return false
	}
	p := h.pop()
	p.mode = modePhase1
	p.limit = e.windowEnd - 1
	e.shardChains++
	p.resume <- struct{}{}
	return true
}

// singleChain reports whether at most one chain can ever be executing, so
// a dying chain may continue the schedule in-chain (see Proc.chainStep)
// instead of waking the coordinator: either the engine has a single shard,
// or phase 1 is limited to one worker.
func (e *Engine) singleChain() bool {
	return e.workers == 1 || e.numShards == 1
}

// turnover opens the next window from inside the chain (singleChain
// engines only): when the last chain of a window runs dry the window is
// over, and the chain itself can start the next one, skipping two
// coordinator round-trips per window. The schedule is exactly the one the
// coordinator would have produced — same window base, same heap order,
// same commit stamps — so results and SchedStats are unchanged. Returns
// false (the caller then wakes the coordinator) when the run is over,
// deadlocked, or down to one runnable processor: finish, deadlock
// reporting, and inline mode stay with the coordinator.
func (e *Engine) turnover() bool {
	runnable := 0
	var minNow Time = maxTime
	for _, q := range e.procs {
		if q.finished || q.blocked {
			continue
		}
		runnable++
		if q.now < minNow {
			minNow = q.now
		}
	}
	if runnable < 2 {
		return false
	}
	T := minNow - minNow%e.window
	e.windowEnd = T + e.window
	for _, q := range e.procs {
		if q.finished || q.blocked || q.now >= e.windowEnd {
			continue
		}
		if q.global > 0 {
			q.mode = modeCommit
			e.commit.push(q)
		} else {
			e.shardHeaps[q.shard].push(q)
		}
	}
	e.windows++
	for s := 0; s < e.numShards; s++ {
		if e.startShard(s) {
			return true
		}
	}
	// Every processor in the window is inside an open global section: the
	// window is all commit phase.
	q := e.commit.pop()
	q.mode = modeCommit
	q.limit = e.windowEnd - 1
	q.resume <- struct{}{}
	return true
}

// SchedStats reports the schedule's shape: windowed rounds executed,
// phase-1 shard chains dispatched across them, and processors merged into
// commit queues. shardChains/windows is the average number of chains a
// window offered to run concurrently — the schedule's available
// parallelism, identical at any worker count. Inline-mode execution counts
// toward none of these.
func (e *Engine) SchedStats() (windows, shardChains, commits int64) {
	return e.windows, e.shardChains, e.commitSeq
}

// awaitChains waits for n chains to terminate, re-raising on panic events.
func (e *Engine) awaitChains(n int) {
	for n > 0 {
		ev := <-e.yieldCh
		n--
		if ev.kind == evPanic {
			e.propagate(ev, n)
		}
	}
}

// propagate drains the remaining outstanding chains after a panic, picks
// the deterministic winner when several shards panicked in the same window
// (lowest processor id), unwinds every parked goroutine, and re-raises.
// It never returns.
func (e *Engine) propagate(first yieldEvent, outstanding int) {
	winner := first
	for outstanding > 0 {
		ev := <-e.yieldCh
		outstanding--
		if ev.kind == evPanic && ev.p.id < winner.p.id {
			winner = ev
		}
	}
	e.release()
	panic(winner.err)
}

// deadlock collects the blocked processor set and releases every parked
// goroutine so none leak.
func (e *Engine) deadlock() error {
	d := &DeadlockError{}
	for _, p := range e.procs {
		if p.blocked {
			d.Blocked = append(d.Blocked, p.id)
		}
	}
	sort.Ints(d.Blocked)
	e.release()
	return d
}

// release unwinds every parked processor goroutine (they observe the
// abandoned flag, panic abandonRun, and exit) and waits for them, so no
// stale goroutine can steal a resume token from a later Run. It must only
// be called from Run with no chain executing: every unfinished processor
// is then parked on its resume channel. (Panicked processors are marked
// finished before their event is sent.)
func (e *Engine) release() {
	e.abandoned = true
	for _, p := range e.procs {
		if !p.finished {
			p.resume <- struct{}{}
		}
	}
	e.wg.Wait()
	e.commit = e.commit[:0]
	for s := range e.shardHeaps {
		e.shardHeaps[s] = e.shardHeaps[s][:0]
		e.staged[s] = e.staged[s][:0]
	}
	for _, p := range e.procs {
		p.heapIndex = -1
	}
}

func (e *Engine) runProc(p *Proc, body func(*Proc)) {
	defer e.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abandonRun); ok {
				return // run abandoned (deadlock/panic); just exit
			}
			p.finished = true
			e.yieldCh <- yieldEvent{p: p, kind: evPanic, shard: p.shard, err: r}
		}
	}()
	p.park()
	body(p)
	p.finished = true
	p.chainStep()
}

// MaxTime returns the largest processor clock: the parallel completion time.
func (e *Engine) MaxTime() Time {
	var m Time
	for _, p := range e.procs {
		if p.now > m {
			m = p.now
		}
	}
	return m
}

// Reset zeroes every processor's clock and statistics, preparing the engine
// for an independent run.
func (e *Engine) Reset() {
	for _, p := range e.procs {
		p.now = 0
		p.limit = 0
		p.blocked = false
		p.finished = false
		p.mode = modePhase1
		p.global = 0
		p.seq = 0
		for k := range p.stats {
			p.stats[k] = 0
		}
		p.Counters = Counters{}
	}
	e.commitSeq = 0
	e.windows = 0
	e.shardChains = 0
}
