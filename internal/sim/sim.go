// Package sim provides a deterministic direct-execution discrete-event
// engine for multiprocessor performance simulation.
//
// Each simulated processor runs application code in its own goroutine and
// owns a virtual clock. Exactly one processor goroutine executes at a time;
// the engine always resumes the runnable processor with the smallest clock
// and lets it run ahead until its clock exceeds the next processor's clock
// by a quantum, it blocks on synchronization, or it finishes. Scheduling is
// deterministic: ties are broken by processor id, so two runs of the same
// program produce identical virtual times and statistics.
//
// Control passes directly from a yielding processor goroutine to the next
// min-clock processor's goroutine (one channel handoff per switch); the
// central Run loop is involved only at start, when a processor finishes,
// for deadlock detection, and for panic propagation.
//
// Shared hardware resources (memory controllers, network routers, ...) are
// modeled as Resource timelines: a transaction occupies a resource for some
// duration and queues behind earlier transactions, which is how the engine
// models contention.
package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Time is a point or duration in virtual time, in picoseconds. Picoseconds
// keep processor cycles at non-round frequencies (e.g. 195 MHz) integral.
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// maxTime is the run-ahead limit of a processor with no runnable peers.
const maxTime Time = 1<<62 - 1

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Nanoseconds reports t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t)/int64(Nanosecond))
	}
}

// StatKind selects the execution-time bucket a duration is charged to,
// matching the paper's three-way breakdown (Section 3).
type StatKind int

const (
	// StatBusy is useful computation.
	StatBusy StatKind = iota
	// StatMemory is stall time waiting for cache misses.
	StatMemory
	// StatSync is time spent at synchronization events (wait + overhead).
	StatSync
	numStats
)

func (k StatKind) String() string {
	switch k {
	case StatBusy:
		return "Busy"
	case StatMemory:
		return "Memory"
	case StatSync:
		return "Sync"
	}
	return fmt.Sprintf("StatKind(%d)", int(k))
}

// DefaultQuantum is the default run-ahead bound. A processor may execute
// until its clock exceeds the next-lowest runnable clock by this much before
// control passes to that processor. Smaller quanta order resource
// acquisitions more precisely; larger quanta run faster.
const DefaultQuantum = 1 * Microsecond

type yieldKind int

const (
	// yieldFinished: a processor's body returned.
	yieldFinished yieldKind = iota
	// yieldIdle: a processor blocked with no runnable peers (deadlock).
	yieldIdle
	// yieldPanic: a processor's body panicked.
	yieldPanic
)

type yieldEvent struct {
	p    *Proc
	kind yieldKind
	err  any // panic value when kind == yieldPanic
}

// abandonRun is panicked by parked processor goroutines when the engine
// abandons a run (deadlock or propagated panic) so their stacks unwind and
// the goroutines exit instead of leaking.
type abandonRun struct{}

// Engine coordinates a set of simulated processors.
type Engine struct {
	procs     []*Proc
	heap      procHeap
	quantum   Time
	yieldCh   chan yieldEvent
	abandoned bool // set before resuming parked goroutines to unwind them
	wg        sync.WaitGroup
	finished  int
}

// NewEngine creates an engine with n processors and the given scheduling
// quantum (DefaultQuantum if quantum <= 0).
func NewEngine(n int, quantum Time) *Engine {
	if n <= 0 {
		panic("sim: engine needs at least one processor")
	}
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	e := &Engine{
		quantum: quantum,
		yieldCh: make(chan yieldEvent),
	}
	e.procs = make([]*Proc, n)
	for i := range e.procs {
		e.procs[i] = &Proc{
			id: i,
			e:  e,
			// Buffered so a yielding goroutine hands control off
			// without waiting for the next goroutine to be
			// scheduled; at most one token is ever outstanding.
			resume:    make(chan struct{}, 1),
			heapIndex: -1,
		}
	}
	return e
}

// NumProcs reports the number of simulated processors.
func (e *Engine) NumProcs() int { return len(e.procs) }

// Proc returns processor i.
func (e *Engine) Proc(i int) *Proc { return e.procs[i] }

// Procs returns all processors, ordered by id.
func (e *Engine) Procs() []*Proc { return e.procs }

// DeadlockError reports that no processor was runnable before all finished.
type DeadlockError struct {
	// Blocked lists the ids of processors stuck in Block.
	Blocked []int
}

func (d *DeadlockError) Error() string {
	ids := make([]string, len(d.Blocked))
	for i, id := range d.Blocked {
		ids[i] = fmt.Sprint(id)
	}
	return "sim: deadlock, blocked processors: " + strings.Join(ids, ",")
}

// Run executes body once per processor under the virtual-time scheduler and
// returns when all processors have finished. It returns a *DeadlockError if
// every unfinished processor is blocked. Panics inside body are re-raised on
// the caller's goroutine.
//
// Run may be called repeatedly; virtual clocks and statistics carry over, so
// successive phases accumulate. Use Reset to start fresh.
func (e *Engine) Run(body func(p *Proc)) error {
	e.finished = 0
	e.heap = e.heap[:0]
	e.abandoned = false
	for _, p := range e.procs {
		p.finished = false
		p.blocked = false
		e.heap.push(p)
		e.wg.Add(1)
		go e.runProc(p, body)
	}
	// Start the min-clock processor. From here control passes directly
	// between processor goroutines; the loop below sees only terminal
	// events.
	e.resumeNext()
	for {
		ev := <-e.yieldCh
		switch ev.kind {
		case yieldFinished:
			e.finished++
			if e.finished == len(e.procs) {
				return nil
			}
			if len(e.heap) == 0 {
				return e.deadlock()
			}
			e.resumeNext()
		case yieldIdle:
			return e.deadlock()
		case yieldPanic:
			e.release() // unwind parked goroutines before re-raising
			panic(ev.err)
		}
	}
}

// resumeNext pops the min-clock runnable processor, sets its run-ahead
// limit from the new heap minimum, and transfers control to it.
func (e *Engine) resumeNext() {
	p := e.heap.pop()
	if len(e.heap) > 0 {
		p.limit = e.heap[0].now + e.quantum
	} else {
		p.limit = maxTime
	}
	p.resume <- struct{}{}
}

// deadlock collects the blocked processor set and releases every parked
// goroutine so none leak.
func (e *Engine) deadlock() error {
	d := &DeadlockError{}
	for _, p := range e.procs {
		if p.blocked {
			d.Blocked = append(d.Blocked, p.id)
		}
	}
	sort.Ints(d.Blocked)
	e.release()
	return d
}

// release unwinds every parked processor goroutine (they observe the
// abandoned flag, panic abandonRun, and exit) and waits for them, so no
// stale goroutine can steal a resume token from a later Run. It must only
// be called from Run with no processor goroutine executing: parked
// goroutines are exactly those blocked in Block or sitting in the heap.
func (e *Engine) release() {
	e.abandoned = true
	for _, p := range e.procs {
		if p.blocked || p.heapIndex >= 0 {
			p.resume <- struct{}{}
		}
	}
	e.wg.Wait()
}

func (e *Engine) runProc(p *Proc, body func(*Proc)) {
	defer e.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abandonRun); ok {
				return // run abandoned (deadlock/panic); just exit
			}
			// Exactly one processor goroutine executes at a time, so
			// the Run loop is necessarily waiting on yieldCh here.
			e.yieldCh <- yieldEvent{p: p, kind: yieldPanic, err: r}
		}
	}()
	p.park()
	body(p)
	p.finished = true
	e.yieldCh <- yieldEvent{p: p, kind: yieldFinished}
}

// MaxTime returns the largest processor clock: the parallel completion time.
func (e *Engine) MaxTime() Time {
	var m Time
	for _, p := range e.procs {
		if p.now > m {
			m = p.now
		}
	}
	return m
}

// Reset zeroes every processor's clock and statistics, preparing the engine
// for an independent run.
func (e *Engine) Reset() {
	for _, p := range e.procs {
		p.now = 0
		p.limit = 0
		p.blocked = false
		p.finished = false
		for k := range p.stats {
			p.stats[k] = 0
		}
		p.Counters = Counters{}
	}
}
