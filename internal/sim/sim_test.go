package sim

import (
	"reflect"
	"runtime"
	"testing"
	"testing/quick"
	"time"
)

func TestAdvanceChargesBuckets(t *testing.T) {
	e := NewEngine(1, 0)
	err := e.Run(func(p *Proc) {
		p.Advance(100*Nanosecond, StatBusy)
		p.Advance(50*Nanosecond, StatMemory)
		p.Advance(25*Nanosecond, StatSync)
	})
	if err != nil {
		t.Fatal(err)
	}
	p := e.Proc(0)
	if got := p.Stat(StatBusy); got != 100*Nanosecond {
		t.Errorf("busy = %v, want 100ns", got)
	}
	if got := p.Stat(StatMemory); got != 50*Nanosecond {
		t.Errorf("memory = %v, want 50ns", got)
	}
	if got := p.Stat(StatSync); got != 25*Nanosecond {
		t.Errorf("sync = %v, want 25ns", got)
	}
	if got := p.Total(); got != 175*Nanosecond {
		t.Errorf("total = %v, want 175ns", got)
	}
	if got := p.Now(); got != 175*Nanosecond {
		t.Errorf("now = %v, want 175ns", got)
	}
}

func TestSchedulerRunsLowestClockFirst(t *testing.T) {
	// Processor 0 advances in large steps, processor 1 in small ones.
	// With a tiny quantum the interleaving must follow virtual time.
	e := NewEngine(2, 10*Nanosecond)
	var order []int
	err := e.Run(func(p *Proc) {
		step := Time(100+900*p.ID()) * Nanosecond // p0: 100ns, p1: 1000ns
		for i := 0; i < 5; i++ {
			order = append(order, p.ID())
			p.Advance(step, StatBusy)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// p0 takes 5 steps of 100ns; p1 takes 5 steps of 1000ns. All of p0's
	// steps except possibly the first interleave before p1's second step.
	count0Before := 0
	for i, id := range order {
		if id == 1 && i > 2 {
			break
		}
		if id == 0 {
			count0Before++
		}
	}
	if count0Before < 3 {
		t.Errorf("expected p0 to run ahead of slow p1, order = %v", order)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() [4]Time {
		e := NewEngine(4, 0)
		err := e.Run(func(p *Proc) {
			for i := 0; i < 100; i++ {
				p.Advance(Time(1+p.ID()*7+i%13)*Nanosecond, StatBusy)
				p.Advance(Time(300)*Nanosecond, StatMemory)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		var out [4]Time
		for i := range out {
			out[i] = e.Proc(i).Now()
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("non-deterministic clocks: %v vs %v", a, b)
	}
}

func TestBlockWake(t *testing.T) {
	e := NewEngine(2, 0)
	err := e.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Block() // woken by p1 at 500ns
			if p.Now() < 500*Nanosecond {
				t.Errorf("p0 woke at %v, want >= 500ns", p.Now())
			}
		} else {
			p.Advance(500*Nanosecond, StatBusy)
			q := p.Engine().Proc(0)
			for !q.Blocked() {
				p.Advance(10*Nanosecond, StatBusy)
			}
			p.Wake(q, p.Now())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine(2, 0)
	err := e.Run(func(p *Proc) {
		p.Block() // nobody ever wakes anyone
	})
	d, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if len(d.Blocked) != 2 {
		t.Errorf("blocked = %v, want both processors", d.Blocked)
	}
}

func TestDeadlockReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		e := NewEngine(8, 0)
		err := e.Run(func(p *Proc) {
			if p.ID()%2 == 0 {
				p.Block() // never woken
			}
		})
		if _, ok := err.(*DeadlockError); !ok {
			t.Fatalf("err = %v, want *DeadlockError", err)
		}
	}
	// The blocked goroutines must have been released, not left parked on
	// their resume channels. Allow a moment for released goroutines to
	// finish exiting.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Errorf("goroutines leaked across deadlocked runs: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestEngineReusableAfterDeadlock(t *testing.T) {
	e := NewEngine(4, 0)
	err := e.Run(func(p *Proc) {
		if p.ID() == 3 {
			p.Block()
		}
	})
	if _, ok := err.(*DeadlockError); !ok {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	// A subsequent Run must work and must not have its resumes stolen by
	// stale goroutines from the abandoned run.
	if err := e.Run(func(p *Proc) { p.Advance(Nanosecond, StatBusy) }); err != nil {
		t.Fatal(err)
	}
}

// TestCountersAddCoversEveryField sets every field of a Counters via
// reflection and checks Add accumulates each one, so a newly added counter
// cannot be silently dropped from aggregated results.
func TestCountersAddCoversEveryField(t *testing.T) {
	var src Counters
	rv := reflect.ValueOf(&src).Elem()
	for i := 0; i < rv.NumField(); i++ {
		f := rv.Field(i)
		if f.Kind() != reflect.Int64 {
			t.Fatalf("Counters.%s: unexpected kind %v (update this test and Add)",
				rv.Type().Field(i).Name, f.Kind())
		}
		f.SetInt(int64(i + 1))
	}
	var dst Counters
	dst.Add(&src)
	dst.Add(&src) // twice: catches '=' written instead of '+='
	rd := reflect.ValueOf(&dst).Elem()
	for i := 0; i < rd.NumField(); i++ {
		if got, want := rd.Field(i).Int(), int64(2*(i+1)); got != want {
			t.Errorf("Counters.Add drops or mis-accumulates field %s: got %d, want %d",
				rd.Type().Field(i).Name, got, want)
		}
	}
}

func TestPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic to propagate from processor body")
		}
	}()
	e := NewEngine(2, 0)
	_ = e.Run(func(p *Proc) {
		if p.ID() == 1 {
			panic("boom")
		}
		p.Advance(Nanosecond, StatBusy)
	})
}

func TestResourceQueueing(t *testing.T) {
	var r Resource
	// Two back-to-back transactions at t=0: second queues behind first.
	s1 := r.Acquire(0, 100)
	s2 := r.Acquire(0, 100)
	if s1 != 0 || s2 != 100 {
		t.Errorf("starts = %d,%d; want 0,100", s1, s2)
	}
	// A transaction arriving after the backlog drains starts immediately.
	s3 := r.Acquire(500, 100)
	if s3 != 500 {
		t.Errorf("start = %d, want 500", s3)
	}
	if r.Busy() != 300 {
		t.Errorf("busy = %d, want 300", r.Busy())
	}
	if r.Queued() != 100 {
		t.Errorf("queued = %d, want 100", r.Queued())
	}
}

func TestResourceMonotonicProperty(t *testing.T) {
	// Property: service starts never precede arrivals, and never precede
	// the previous transaction's completion.
	f := func(arrivals []uint32, occ []uint16) bool {
		var r Resource
		var prevEnd Time
		for i, a := range arrivals {
			if len(occ) == 0 {
				return true
			}
			o := Time(occ[i%len(occ)]) + 1
			t := Time(a)
			start := r.Acquire(t, o)
			if start < t || start < prevEnd {
				return false
			}
			prevEnd = start + o
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEngineReset(t *testing.T) {
	e := NewEngine(2, 0)
	if err := e.Run(func(p *Proc) { p.Advance(Microsecond, StatBusy) }); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	for _, p := range e.Procs() {
		if p.Now() != 0 || p.Total() != 0 {
			t.Errorf("proc %d not reset: now=%v total=%v", p.ID(), p.Now(), p.Total())
		}
	}
	// Engine is reusable after Reset.
	if err := e.Run(func(p *Proc) { p.Advance(Nanosecond, StatBusy) }); err != nil {
		t.Fatal(err)
	}
	if got := e.MaxTime(); got != Nanosecond {
		t.Errorf("MaxTime = %v, want 1ns", got)
	}
}

func TestRunAccumulatesAcrossPhases(t *testing.T) {
	e := NewEngine(2, 0)
	for phase := 0; phase < 3; phase++ {
		if err := e.Run(func(p *Proc) { p.Advance(100*Nanosecond, StatBusy) }); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Proc(0).Now(); got != 300*Nanosecond {
		t.Errorf("clock after 3 phases = %v, want 300ns", got)
	}
}
