package sim

// This file is the engine's side of the checkpoint layer (internal/snapshot):
// a quiescent hook announcing round boundaries — the only points where a
// consistent snapshot of the machine exists — and Snap views of the engine,
// processor, and resource state for serialization.
//
// # Why round boundaries are safe snapshot points
//
// Between scheduling rounds every processor goroutine is parked: finished,
// blocked in Block, or waiting for its next window. No application code is
// on any stack mid-operation — each processor's continuation is fully
// described by (clock, blocked, finished, shard, open global sections) plus
// the deterministic program it runs. A round boundary with no open global
// section ("quiet") additionally guarantees no cross-shard protocol is in
// flight, so directory, cache, and synchronization state are mutually
// consistent. The hook fires at every round open — windowed or run-ahead —
// which is a pure function of the schedule, so the sequence of hook calls
// (and the seq stamps) is bit-identical across engines and worker counts.

// QuiescentHook observes round boundaries. seq is the 1-based round-open
// counter (carried across Run calls, reset by Reset), minNow the smallest
// runnable clock of the opening round, and quiet whether no unfinished
// processor holds an open global section — the precondition for a
// consistent snapshot. The hook runs with every processor parked and may
// read any simulated state; it must not mutate it.
type QuiescentHook func(seq int64, minNow Time, quiet bool)

// SetQuiescentHook installs fn to be called at every round open. A nil fn
// removes the hook. The round counter advances whether or not a hook is
// installed, so seq values are a property of the schedule alone.
func (e *Engine) SetQuiescentHook(fn QuiescentHook) { e.quiescent = fn }

// QuiesSeq reports the number of round opens so far.
func (e *Engine) QuiesSeq() int64 { return e.quiesSeq }

// quiesce advances the round counter and invokes the quiescent hook. It
// runs with no chain executing: every unfinished processor is parked. On
// the coordinator path a hook panic must release the parked goroutines
// before propagating (on a chain path the panic unwinds through runProc's
// recover, which already routes through propagate → release).
func (e *Engine) quiesce(minNow Time, quiet, coordinator bool) {
	e.quiesSeq++
	if e.quiescent == nil {
		return
	}
	if coordinator {
		defer func() {
			if r := recover(); r != nil {
				e.release()
				panic(r)
			}
		}()
	}
	e.quiescent(e.quiesSeq, minNow, quiet)
}

// ProcSnap is the serializable state of one processor at a quiescent point.
type ProcSnap struct {
	ID       int   `json:"id"`
	Now      Time  `json:"now"`
	Blocked  bool  `json:"blocked,omitempty"`
	Finished bool  `json:"finished,omitempty"`
	Shard    int   `json:"shard"`
	Global   int   `json:"global,omitempty"`
	Seq      int64 `json:"seq,omitempty"`

	Busy   Time `json:"busy"`
	Memory Time `json:"memory"`
	Sync   Time `json:"sync"`

	Counters Counters `json:"counters"`
}

// Snap captures the processor's state. Only meaningful from a quiescent
// hook (the processor is parked; nothing is mid-flight on its stack).
func (p *Proc) Snap() ProcSnap {
	return ProcSnap{
		ID:       p.id,
		Now:      p.now,
		Blocked:  p.blocked,
		Finished: p.finished,
		Shard:    p.shard,
		Global:   p.global,
		Seq:      p.seq,
		Busy:     p.stats[StatBusy],
		Memory:   p.stats[StatMemory],
		Sync:     p.stats[StatSync],
		Counters: p.Counters,
	}
}

// EngineSnap is the serializable scheduling state of the engine at a
// quiescent point: window sizing, cursors, shape counters, and every
// processor. Together with the deterministic program it fully determines
// the rest of the run.
type EngineSnap struct {
	Window     Time  `json:"window"`
	WindowBase Time  `json:"window_base"`
	WindowMax  Time  `json:"window_max,omitempty"`
	Adaptive   bool  `json:"adaptive,omitempty"`
	NumShards  int   `json:"num_shards"`
	QuiesSeq   int64 `json:"quies_seq"`

	MarkChains  int64 `json:"mark_chains,omitempty"`
	MarkCommits int64 `json:"mark_commits,omitempty"`
	MarkRuns    int64 `json:"mark_runs,omitempty"`

	CommitSeq        int64 `json:"commit_seq"`
	Windows          int64 `json:"windows"`
	ShardChains      int64 `json:"shard_chains"`
	CommitRuns       int64 `json:"commit_runs"`
	WindowWidthSum   Time  `json:"window_width_sum"`
	RunAheadSpans    int64 `json:"run_ahead_spans"`
	RunAheadHandoffs int64 `json:"run_ahead_handoffs"`

	Procs []ProcSnap `json:"procs"`
}

// Snap captures the engine's scheduling state. Only meaningful from a
// quiescent hook.
func (e *Engine) Snap() EngineSnap {
	s := EngineSnap{
		Window:           e.window,
		WindowBase:       e.windowBase,
		WindowMax:        e.windowMax,
		Adaptive:         e.adaptive,
		NumShards:        e.numShards,
		QuiesSeq:         e.quiesSeq,
		MarkChains:       e.markChains,
		MarkCommits:      e.markCommits,
		MarkRuns:         e.markRuns,
		CommitSeq:        e.commitSeq,
		Windows:          e.windows,
		ShardChains:      e.shardChains.Load(),
		CommitRuns:       e.commitRuns,
		WindowWidthSum:   e.widthSum,
		RunAheadSpans:    e.raSpans,
		RunAheadHandoffs: e.raHandoffs,
		Procs:            make([]ProcSnap, len(e.procs)),
	}
	for i, p := range e.procs {
		s.Procs[i] = p.Snap()
	}
	return s
}

// ResourceSnap is the serializable state of one Resource timeline.
type ResourceSnap struct {
	Name     string `json:"name"`
	FreeAt   Time   `json:"free_at"`
	Busy     Time   `json:"busy"`
	Queued   Time   `json:"queued"`
	Acquires int64  `json:"acquires"`
}

// Snap captures the resource's timeline state.
func (r *Resource) Snap() ResourceSnap {
	return ResourceSnap{
		Name:     r.Name,
		FreeAt:   r.freeAt,
		Busy:     r.busy,
		Queued:   r.queued,
		Acquires: r.acquires,
	}
}
