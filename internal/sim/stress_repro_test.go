package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// TestWorkerInvarianceStress runs a seeded pseudo-random workload — mixed
// advances, global sections, resource acquires, blocks and cross-shard
// wakes — at several worker counts and requires bit-identical statistics.
func TestWorkerInvarianceStress(t *testing.T) {
	type snap struct {
		Now   []Time
		Stats [][numStats]Time
		Acq   []int64
	}
	run := func(t *testing.T, workers int, seed uint64, procs, shards int, window Time) snap {
		e := NewEngine(procs, window)
		shardOf := make([]int, procs)
		for i := range shardOf {
			shardOf[i] = i % shards
		}
		e.SetShards(shardOf, shards)
		e.SetWorkers(workers)
		res := make([]Resource, shards)
		var blocked []*Proc // guarded by global sections only
		runners := procs    // procs neither blocked nor retired
		err := e.Run(func(p *Proc) {
			rng := seed ^ uint64(p.ID())*0x9e3779b97f4a7c15
			next := func(n uint64) uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng % n
			}
			for i := 0; i < 200; i++ {
				switch next(6) {
				case 0, 1:
					p.Advance(Time(10+next(300))*Nanosecond, StatBusy)
				case 2:
					// Shard-local resource acquire.
					s := p.shard
					start := res[s].Acquire(p.Now(), Time(next(50))*Nanosecond)
					p.AdvanceTo(start, StatMemory)
				case 3:
					// Cross-shard work under a global section.
					p.AwaitGlobal()
					s := int(next(uint64(shards)))
					start := res[s].Acquire(p.Now(), Time(next(50))*Nanosecond)
					p.AdvanceTo(start+20*Nanosecond, StatMemory)
					p.EndGlobal()
				case 4:
					// Maybe wake a blocked peer (cross-shard allowed).
					p.AwaitGlobal()
					if len(blocked) > 0 {
						q := blocked[len(blocked)-1]
						blocked = blocked[:len(blocked)-1]
						runners++
						p.Wake(q, p.Now()+Time(next(200))*Nanosecond)
					}
					p.EndGlobal()
				case 5:
					// Block and wait for a peer. Safe whenever at least
					// one other processor is still runnable: the last
					// runnable processor never blocks, and its epilogue
					// drains the blocked list before it retires.
					p.AwaitGlobal()
					if runners > 1 && len(blocked) < 8 {
						blocked = append(blocked, p)
						runners--
						p.EndGlobal()
						p.Block()
					} else {
						p.EndGlobal()
					}
				}
			}
			// Epilogue: drain any still-blocked peers, then retire.
			p.AwaitGlobal()
			for len(blocked) > 0 {
				q := blocked[len(blocked)-1]
				blocked = blocked[:len(blocked)-1]
				runners++
				p.Wake(q, p.Now())
			}
			runners--
			p.EndGlobal()
		})
		if err != nil {
			t.Fatalf("workers=%d seed=%d: %v", workers, seed, err)
		}
		var s snap
		for _, p := range e.Procs() {
			s.Now = append(s.Now, p.Now())
			s.Stats = append(s.Stats, p.stats)
		}
		for i := range res {
			s.Acq = append(s.Acq, res[i].Acquires())
		}
		return s
	}
	shapes := []struct {
		procs, shards int
		window        Time
	}{
		{12, 4, 500 * Nanosecond},
		{12, 4, 5 * Microsecond},
		{16, 2, 200 * Nanosecond},
		{8, 8, 1 * Microsecond},
		{6, 1, 300 * Nanosecond},
	}
	for si, sh := range shapes {
		sh := sh
		t.Run(fmt.Sprintf("shape%d", si), func(t *testing.T) {
			for seed := uint64(1); seed <= 40; seed++ {
				ref := run(t, 1, seed, sh.procs, sh.shards, sh.window)
				for _, w := range []int{2, 4, 8} {
					got := run(t, w, seed, sh.procs, sh.shards, sh.window)
					if !reflect.DeepEqual(got, ref) {
						t.Fatalf("seed %d: workers=%d diverges from workers=1\nref %+v\ngot %+v", seed, w, ref, got)
					}
				}
			}
		})
	}
}
